// Sensor-network clustering — the paper's motivating application.
//
// A random geometric graph models radio reachability between sensors on a
// unit square. Battery cost of acting as a cluster head varies per sensor.
// A weighted dominating set = a set of cluster heads such that every
// sensor has a head in radio range, minimizing total battery cost.
//
//   $ ./sensor_network [n] [radius] [seed]
#include <cstdlib>
#include <iostream>

#include "arboricity/core_decomposition.hpp"
#include "arboricity/pseudoarboricity.hpp"
#include "baselines/greedy.hpp"
#include "core/solvers.hpp"
#include "gen/random_graphs.hpp"
#include "gen/weights.hpp"

using namespace arbods;

int main(int argc, char** argv) {
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 2000;
  const double radius = argc > 2 ? std::atof(argv[2]) : 0.035;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  Rng rng(seed);
  Graph g = gen::random_geometric(n, radius, rng);
  std::cout << "sensors: " << n << ", radio links: " << g.num_edges()
            << ", max degree: " << g.max_degree() << "\n";

  // Geometric graphs are sparse; measure the orientability promise the
  // algorithm needs (pseudoarboricity <= arboricity).
  const NodeId alpha = std::max<NodeId>(1, pseudoarboricity(g));
  std::cout << "measured pseudoarboricity (alpha promise): " << alpha << "\n";

  // Battery cost: heavy-tailed (a few sensors are nearly depleted).
  auto costs = gen::power_law_weights(n, 1.4, 500, rng);
  WeightedGraph wg(std::move(g), std::move(costs));

  MdsResult heads = solve_mds_deterministic(wg, alpha, 0.25);
  heads.validate(wg);

  auto greedy = baselines::greedy_dominating_set(wg);

  std::cout << "\ncluster heads chosen:     " << heads.dominating_set.size()
            << " of " << n << "\n";
  std::cout << "total battery cost:       " << heads.weight << "\n";
  std::cout << "certified OPT lower bnd:  " << heads.packing_lower_bound
            << " (ratio " << heads.certified_ratio() << ", analytic bound "
            << (2 * alpha + 1) * 1.25 << ")\n";
  std::cout << "centralized greedy cost:  " << wg.total_weight(greedy)
            << " (needs global knowledge)\n";
  std::cout << "CONGEST rounds used:      " << heads.stats.rounds
            << "  — each sensor only talked to radio neighbors, "
            << heads.stats.max_message_bits << "-bit messages\n";
  return 0;
}
