// Quickstart: build a small weighted graph, run the Theorem 1.1 algorithm,
// and inspect the result and its certificates.
//
//   $ ./quickstart
#include <iostream>

#include "core/solvers.hpp"
#include "graph/builder.hpp"
#include "graph/verify.hpp"

using namespace arbods;

int main() {
  // A toy network: two hubs (0 and 5) bridged by node 4, each hub serving
  // four pendant clients: hub 0 -> {1,2,3,8}, hub 5 -> {6,7,9,10}.
  GraphBuilder b(11);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(0, 8);
  b.add_edge(0, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  b.add_edge(5, 7);
  b.add_edge(5, 9);
  b.add_edge(5, 10);
  Graph g = std::move(b).build();

  // Hubs are expensive to operate, clients cheap.
  std::vector<Weight> weights{20, 1, 1, 1, 3, 20, 1, 1, 1, 1, 1};
  WeightedGraph wg(std::move(g), std::move(weights));

  // The graph is a tree, so arboricity alpha = 1. eps trades rounds for
  // approximation: (2*1+1)*(1+0.2) = 3.6-approximation here.
  MdsResult result = solve_mds_deterministic(wg, /*alpha=*/1, /*eps=*/0.2);

  std::cout << "dominating set:";
  for (NodeId v : result.dominating_set) std::cout << " " << v;
  std::cout << "\ntotal weight:        " << result.weight << "\n";
  std::cout << "dual lower bound:    " << result.packing_lower_bound
            << "  (certified: OPT >= this)\n";
  std::cout << "certified ratio:     " << result.certified_ratio()
            << "  (analytic bound 3.6)\n";
  std::cout << "CONGEST rounds:      " << result.stats.rounds << "\n";
  std::cout << "max message width:   " << result.stats.max_message_bits
            << " bits\n";

  // Certificates can be re-checked independently at any time.
  result.validate(wg);
  std::cout << "independent verification: OK\n";
  return 0;
}
