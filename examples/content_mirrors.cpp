// Content-mirror placement on a web-like graph.
//
// Barabási–Albert preferential attachment approximates the low-arboricity
// structure of web/social graphs (the paper's second motivation). Nodes
// are hosts; hosting a mirror costs more on high-traffic (high-degree)
// hosts. Every host must be adjacent to a mirror. Compares Theorem 1.1
// with the randomized Theorem 1.2 at several t — expressed as one
// scenario (src/harness/scenario.hpp): four solver columns on one
// instance, every run sharing a single pooled Network.
//
//   $ ./content_mirrors [n] [m_per_node]
#include <cstdlib>
#include <iostream>
#include <string>

#include "gen/random_graphs.hpp"
#include "gen/weights.hpp"
#include "harness/scenario.hpp"

using namespace arbods;

int main(int argc, char** argv) {
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 5000;
  const NodeId m = argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 4;

  Rng rng(99);
  Graph g = gen::barabasi_albert(n, m, rng);
  std::cout << "hosts: " << n << ", links: " << g.num_edges()
            << ", max degree: " << g.max_degree()
            << " (degeneracy <= " << m << " by construction)\n";

  // Hosting cost grows with degree (popular hosts are expensive).
  auto costs = gen::degree_proportional_weights(g);
  harness::CorpusInstance inst{"web_hosts",
                               WeightedGraph(std::move(g), std::move(costs)),
                               /*alpha=*/m, /*forest=*/false,
                               /*unit_weights=*/false, "ba"};

  harness::ScenarioSpec spec;
  {
    harness::SolverParams det;
    det.alpha = m;
    det.eps = 0.2;
    spec.solvers.push_back({"det", det, "Theorem 1.1 deterministic"});
  }
  for (const std::int64_t t : {1, 2, 4}) {
    harness::SolverParams params;
    params.alpha = m;
    params.t = t;
    spec.solvers.push_back(
        {"randomized", params, "Theorem 1.2 randomized (t=" +
                                   std::to_string(t) + ")"});
  }
  spec.validate = true;
  const std::vector<const harness::CorpusInstance*> instances = {&inst};
  const auto rows = harness::run_scenario(spec, instances);

  for (const auto& row : rows) {
    const MdsResult& res = row.result;
    std::cout << "\n" << row.solver << ":\n"
              << "  mirrors: " << res.dominating_set.size()
              << ", cost: " << res.weight << ", rounds: " << res.stats.rounds
              << ", certified ratio: " << res.certified_ratio() << "\n";
    for (const PhaseStats& phase : res.stats.phases)
      std::cout << "    phase " << phase.name << ": " << phase.rounds
                << " rounds, " << phase.messages << " messages\n";
  }
  std::cout << "\nTake-away: the randomized variant buys a ~2x better "
               "approximation constant for proportionally more rounds.\n";
  return 0;
}
