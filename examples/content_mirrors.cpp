// Content-mirror placement on a web-like graph.
//
// Barabási–Albert preferential attachment approximates the low-arboricity
// structure of web/social graphs (the paper's second motivation). Nodes
// are hosts; hosting a mirror costs more on high-traffic (high-degree)
// hosts. Every host must be adjacent to a mirror. Compares Theorem 1.1
// with the randomized Theorem 1.2 at several t.
//
//   $ ./content_mirrors [n] [m_per_node]
#include <cstdlib>
#include <iostream>

#include "core/solvers.hpp"
#include "gen/random_graphs.hpp"
#include "gen/weights.hpp"

using namespace arbods;

int main(int argc, char** argv) {
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 5000;
  const NodeId m = argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 4;

  Rng rng(99);
  Graph g = gen::barabasi_albert(n, m, rng);
  std::cout << "hosts: " << n << ", links: " << g.num_edges()
            << ", max degree: " << g.max_degree()
            << " (degeneracy <= " << m << " by construction)\n";

  // Hosting cost grows with degree (popular hosts are expensive).
  auto costs = gen::degree_proportional_weights(g);
  WeightedGraph wg(std::move(g), std::move(costs));
  const NodeId alpha = m;

  MdsResult det = solve_mds_deterministic(wg, alpha, 0.2);
  det.validate(wg);
  std::cout << "\nTheorem 1.1 deterministic:\n"
            << "  mirrors: " << det.dominating_set.size()
            << ", cost: " << det.weight << ", rounds: " << det.stats.rounds
            << ", certified ratio: " << det.certified_ratio() << "\n";

  for (std::int64_t t : {1, 2, 4}) {
    MdsResult rnd = solve_mds_randomized(wg, alpha, t);
    rnd.validate(wg);
    std::cout << "Theorem 1.2 randomized (t=" << t << "):\n"
              << "  mirrors: " << rnd.dominating_set.size()
              << ", cost: " << rnd.weight << ", rounds: " << rnd.stats.rounds
              << ", certified ratio: " << rnd.certified_ratio() << "\n";
  }
  std::cout << "\nTake-away: the randomized variant buys a ~2x better "
               "approximation constant for proportionally more rounds.\n";
  return 0;
}
