// Service-station placement on a planar road network.
//
// Planar graphs have arboricity <= 3, so the paper's algorithm gives a
// 7(1+eps)-approximation in O(log Delta) rounds — compare with the exact
// optimum (small instance) and with the unknown-alpha variant (Remark 4.5)
// that needs no promise at all.
//
//   $ ./road_network [n]
#include <cstdlib>
#include <iostream>

#include "baselines/exact.hpp"
#include "core/solvers.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/weights.hpp"

using namespace arbods;

int main(int argc, char** argv) {
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 1500;

  Rng rng(31);
  // Stacked triangulation: a maximal planar graph (alpha <= 3).
  Graph g = gen::planar_stacked_triangulation(n, rng);
  std::cout << "junctions: " << n << ", road segments: " << g.num_edges()
            << "\n";

  // Land cost per junction: uniform 1..50.
  auto costs = gen::uniform_weights(n, 50, rng);
  WeightedGraph wg(std::move(g), std::move(costs));

  MdsResult stations = solve_mds_deterministic(wg, 3, 0.25);
  stations.validate(wg);
  std::cout << "\nwith alpha = 3 promised (planar):\n"
            << "  stations: " << stations.dominating_set.size()
            << ", land cost: " << stations.weight
            << ", rounds: " << stations.stats.rounds
            << ", certified ratio: " << stations.certified_ratio() << "\n";

  MdsResult no_promise = solve_mds_unknown_alpha(wg, 0.25);
  no_promise.validate(wg);
  std::cout << "with alpha unknown (Remark 4.5):\n"
            << "  stations: " << no_promise.dominating_set.size()
            << ", land cost: " << no_promise.weight
            << ", rounds: " << no_promise.stats.rounds << "\n";

  if (n <= 60) {
    auto exact = baselines::exact_dominating_set(wg);
    if (exact)
      std::cout << "exact OPT (branch&bound): " << exact->weight
                << "  -> true ratio "
                << static_cast<double>(stations.weight) / exact->weight << "\n";
  } else {
    std::cout << "(run with n <= 60 to also compute the exact optimum)\n";
  }
  return 0;
}
