// Command-line front end: run any algorithm in the library on a graph
// file (see graph/io.hpp for the format) or on a named generator.
//
//   arbods_cli <algorithm> (--file PATH | --gen FAMILY --n N) [options]
//
// Algorithms are resolved through the solver registry
// (src/harness/registry.hpp) — `arbods_cli list` prints the table —
// plus the centralized "greedy" baseline.
// options:    --alpha A (default: measured pseudoarboricity)
//             --eps E (default 0.25)   --t T (default 2)   --k K (default 2)
//             --weights unit|uniform|powerlaw|degree|invdegree (default unit)
//             --seed S
//             --threads W (simulator worker pool; 0 = all hardware threads,
//                          default 1; results identical for every W)
//             --shards K (simulator shard count; default 1 = single-arena
//                         Network, K > 1 = ShardedNetwork over K shards;
//                         results identical for every K)
//             --pin (pin worker threads to CPUs + shard-affine dispatch;
//                    placement only, results unchanged)
//             --auto-replan (adopt traffic-refined shard plans at phase
//                            boundaries; results unchanged)
// families:   tree | forest2 | forest5 | grid | planar | ba2 | ba4 | er
#include <cstring>
#include <iostream>
#include <string>

#include "arboricity/pseudoarboricity.hpp"
#include "baselines/greedy.hpp"
#include "common/check.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "harness/scenario.hpp"

using namespace arbods;

namespace {

void print_solver_table(std::ostream& os) {
  os << "registered solvers:\n";
  for (const auto& info : harness::all_solvers()) {
    os << "  " << info.name;
    for (std::size_t pad = info.name.size(); pad < 18; ++pad) os << ' ';
    os << info.theorem << " — " << info.guarantee << "\n";
  }
  os << "  greedy            centralized Johnson greedy baseline\n";
}

[[noreturn]] void usage() {
  std::cerr << "usage: arbods_cli <algorithm|list>\n"
               "                  (--file PATH | --gen tree|forest2|forest5|"
               "grid|planar|ba2|ba4|er --n N)\n"
               "                  [--alpha A] [--eps E] [--t T] [--k K]\n"
               "                  [--weights unit|uniform|powerlaw|degree|"
               "invdegree] [--seed S] [--threads W] [--shards K]\n"
               "                  [--pin] [--auto-replan] [--trace-out PATH]\n";
  print_solver_table(std::cerr);
  std::exit(2);
}

Graph make_graph(const std::string& family, NodeId n, Rng& rng) {
  if (family == "tree") return gen::random_tree_prufer(n, rng);
  if (family == "forest2") return gen::k_tree_union(n, 2, rng);
  if (family == "forest5") return gen::k_tree_union(n, 5, rng);
  if (family == "grid") {
    NodeId side = 1;
    while (side * side < n) ++side;
    return gen::grid(side, side);
  }
  if (family == "planar") return gen::planar_stacked_triangulation(n, rng);
  if (family == "ba2") return gen::barabasi_albert(n, 2, rng);
  if (family == "ba4") return gen::barabasi_albert(n, 4, rng);
  if (family == "er") return gen::erdos_renyi_gnp(n, 6.0 / n, rng);
  std::cerr << "unknown family '" << family << "'\n";
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string algo = argv[1];
  if (algo == "list") {
    print_solver_table(std::cout);
    return 0;
  }
  if (algo != "greedy" && harness::find_solver(algo) == nullptr) {
    std::cerr << "unknown algorithm '" << algo << "'\n";
    usage();
  }

  std::string file, family, weights = "unit";
  NodeId n = 1000;
  harness::SolverParams params;
  params.alpha = 0;  // 0 = measure below
  std::uint64_t seed = 1;
  bool pin = false;
  bool auto_replan = false;
  std::string trace_out;
  for (int i = 2; i < argc; ++i) {
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--file")) file = need("--file");
    else if (!std::strcmp(argv[i], "--gen")) family = need("--gen");
    else if (!std::strcmp(argv[i], "--n")) n = static_cast<NodeId>(std::stoul(need("--n")));
    else if (!std::strcmp(argv[i], "--alpha")) params.alpha = static_cast<NodeId>(std::stoul(need("--alpha")));
    else if (!std::strcmp(argv[i], "--eps")) params.eps = std::stod(need("--eps"));
    else if (!std::strcmp(argv[i], "--t")) params.t = std::stoll(need("--t"));
    else if (!std::strcmp(argv[i], "--k")) params.k = std::stoi(need("--k"));
    else if (!std::strcmp(argv[i], "--weights")) weights = need("--weights");
    else if (!std::strcmp(argv[i], "--seed")) seed = std::stoull(need("--seed"));
    else if (!std::strcmp(argv[i], "--threads")) params.threads = std::stoi(need("--threads"));
    else if (!std::strcmp(argv[i], "--shards")) params.shards = std::stoi(need("--shards"));
    else if (!std::strcmp(argv[i], "--pin")) pin = true;
    else if (!std::strcmp(argv[i], "--auto-replan")) auto_replan = true;
    else if (!std::strcmp(argv[i], "--trace-out")) trace_out = need("--trace-out");
    else usage();
  }

  Rng rng(seed);
  Graph g = !file.empty() ? load_graph(file) : make_graph(family, n, rng);
  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << "\n";
  if (params.alpha == 0) {
    params.alpha = std::max<NodeId>(1, pseudoarboricity(g));
    std::cout << "alpha (measured pseudoarboricity): " << params.alpha
              << "\n";
  }
  WeightedGraph wg = gen::with_weights(std::move(g), weights, rng);

  if (algo == "greedy") {
    auto set = baselines::greedy_dominating_set(wg);
    std::cout << "set size: " << set.size()
              << "\nweight:   " << wg.total_weight(set) << " (centralized)\n";
    return 0;
  }

  // A CLI invocation is a one-cell scenario: one solver x one instance x
  // one width, run through the same batch engine as the exp* sweeps.
  const harness::SolverInfo& info = harness::solver(algo);
  harness::CorpusInstance inst{"cli", std::move(wg), params.alpha,
                               /*forest=*/false, weights == "unit", family};
  inst.forest = is_forest(inst.wg.graph());
  harness::ScenarioSpec spec;
  const int width = params.threads >= 0 ? params.threads : 1;
  // -1 = default (unsharded); anything else is validated by the scenario
  // runner so `--shards 0` fails loudly instead of silently running K=1.
  const int shard_count = params.shards == -1 ? 1 : params.shards;
  params.threads = -1;
  params.shards = -1;
  spec.solvers.push_back({std::string(algo), params, std::string(algo)});
  spec.thread_widths = {width};
  spec.shard_counts = {shard_count};
  spec.seeds = {seed};
  spec.skip_inapplicable = false;
  spec.validate = false;  // validated below with an explicit tolerance
  spec.base_config.seed = seed;
  spec.base_config.pin_threads = pin;
  spec.base_config.auto_replan = auto_replan;
  spec.trace_out = trace_out;

  const std::vector<const harness::CorpusInstance*> instances = {&inst};
  std::vector<harness::ScenarioRow> rows;
  try {
    rows = harness::run_scenario(spec, instances);
  } catch (const CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  const MdsResult& res = rows.front().result;

  res.validate(inst.wg, 1e-5);
  std::cout << "solver:          " << info.name << " (" << info.theorem
            << ", " << info.guarantee << ")\n"
            << "set size:        " << res.dominating_set.size() << "\n"
            << "weight:          " << res.weight << "\n"
            << "dual lower bnd:  " << res.packing_lower_bound << "\n";
  if (res.packing_lower_bound > 0)
    std::cout << "certified ratio: " << res.certified_ratio() << "\n";
  std::cout << "CONGEST rounds:  " << res.stats.rounds << "\n"
            << "messages:        " << res.stats.messages << "\n"
            << "max msg bits:    " << res.stats.max_message_bits << "\n";
  if (shard_count > 1)
    std::cout << "shards:          " << shard_count
              << " (bit-identical to the unsharded run)\n";
  for (const PhaseStats& phase : res.stats.phases)
    std::cout << "  phase " << phase.name << ": " << phase.rounds
              << " rounds, " << phase.messages << " messages, "
              << phase.total_bits << " bits\n";
  const obs::TimingStats& timing = res.stats.timing;
  std::cout << "timing:          compute " << timing.compute_seconds
            << "s, flip " << timing.flip_seconds << "s, merge "
            << timing.merge_seconds << "s, retransmit "
            << timing.retransmit_seconds << "s\n";
  if (!trace_out.empty())
    std::cout << "trace:           " << trace_out
              << " (open in Perfetto / chrome://tracing)\n";
  std::cout << "verified:        OK\n";
  return 0;
}
