// Observability-layer tests: the TraceRecorder's ring/ordering/intern
// contracts, Chrome trace-event export shape, the timing breakdown's
// exclusion from every stats comparison (tracing must never be able to
// break a determinism verdict), the flight recorder's last-N-rounds
// window, and the scenario plumbing (trace files, last_rounds rows, the
// v7 JSON columns).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "congest/network.hpp"
#include "core/mds_result.hpp"
#include "gen/classic.hpp"
#include "harness/corpus.hpp"
#include "harness/scenario.hpp"
#include "obs/trace.hpp"
#include "shard/sharded_network.hpp"

namespace arbods {
namespace {

// Floods for a fixed number of rounds through the active-set path, so a
// traced run exercises chunk dispatch, flips, and (sharded) bridge
// merges while staying deterministic.
class FixedRoundFlood final : public DistributedAlgorithm {
 public:
  explicit FixedRoundFlood(std::int64_t rounds) : rounds_(rounds) {}

  void initialize(Network& net) override {
    net.for_nodes([&](NodeId v) {
      net.broadcast(v, Message::tagged(1).add_id(v));
    });
  }

  void process_round(Network& net) override {
    net.for_active_nodes([&](NodeId v) {
      net.broadcast(v, Message::tagged(1).add_id(v));
      net.arm(v);
    });
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= rounds_;
  }

 private:
  std::int64_t rounds_;
};

// ------------------------------------------------------------ recorder

TEST(TraceRecorder, SnapshotMergesRingsInStartOrder) {
  obs::TraceRecorder rec(2, 16);
  const std::int64_t b = obs::monotonic_ns();
  rec.record(0, "outer", b + 100, b + 500);
  rec.record(0, "inner", b + 200, b + 300, /*pid=*/0, /*arg=*/7);
  rec.record(1, "other", b + 150, b + 250);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "other");
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[0].tid, 0);
  EXPECT_EQ(events[1].tid, 1);
  EXPECT_EQ(events[2].arg, 7);
  // The inner span nests inside the outer one on the same track.
  EXPECT_GE(events[2].ts_ns, events[0].ts_ns);
  EXPECT_LE(events[2].ts_ns + events[2].dur_ns,
            events[0].ts_ns + events[0].dur_ns);
  EXPECT_EQ(rec.dropped_events(), 0);
}

TEST(TraceRecorder, FullRingOverwritesOldestEvents) {
  obs::TraceRecorder rec(1, 4);
  const std::int64_t b = obs::monotonic_ns();
  for (int i = 0; i < 10; ++i)
    rec.record(0, "ev", b + i * 10, b + i * 10 + 5, 0, i);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(events[static_cast<std::size_t>(i)].arg, 6 + i)
        << "the ring must keep the most recent window";
  EXPECT_EQ(rec.dropped_events(), 6);

  rec.clear();
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.dropped_events(), 0);
}

TEST(TraceRecorder, InternDeduplicatesAndSurvivesClear) {
  obs::TraceRecorder rec(1, 4);
  const char* a = rec.intern("phase:partial_ds");
  const char* b = rec.intern("phase:partial_ds");
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::string(a), "phase:partial_ds");
  rec.clear();
  // Interned names outlive clear() — spans recorded after a reset may
  // still reference names interned before it (pooled Network reuse).
  EXPECT_EQ(rec.intern("phase:partial_ds"), a);
}

// ---------------------------------------------------------- JSON export

TEST(ChromeJson, WriterEmitsCompleteEventsAndProcessMetadata) {
  obs::TraceGroup group;
  group.label = "cell";
  obs::TraceEvent outer;
  outer.name = "outer";
  outer.ts_ns = 1000;
  outer.dur_ns = 4000;
  obs::TraceEvent inner;
  inner.name = "inner";
  inner.ts_ns = 2000;
  inner.dur_ns = 1000;
  inner.pid = 1;
  inner.tid = 1;
  inner.arg = 5;
  group.events = {outer, inner};

  std::ostringstream os;
  obs::write_chrome_json(os, std::span<const obs::TraceGroup>(&group, 1));
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("cell · driver"), std::string::npos);
  EXPECT_NE(json.find("cell · shard 0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);  // 1000 ns
  EXPECT_NE(json.find("\"dur\":4.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"count\":5}"), std::string::npos);
}

// -------------------------------------------------- timing breakdown

TEST(TimingStats, ExcludedFromEveryStatsComparison) {
  PhaseStats a, b;
  a.name = b.name = "main";
  a.rounds = b.rounds = 3;
  b.timing.compute_seconds = 42.0;
  EXPECT_TRUE(a == b) << "PhaseStats equality must ignore timing";

  RunStats ra, rb;
  ra.rounds = rb.rounds = 3;
  ra.phases.push_back(a);
  rb.phases.push_back(b);
  rb.timing.flip_seconds = 1.0;
  EXPECT_TRUE(ra == rb) << "RunStats equality must ignore timing";

  MdsResult ma, mb;
  mb.stats.timing.merge_seconds = 9.0;
  EXPECT_TRUE(ma == mb) << "the determinism audit compares MdsResults — "
                           "timing in there would break every traced run";
}

TEST(TimingStats, RunAccumulatesComputeAndFlipSeconds) {
  const auto wg = WeightedGraph::uniform(gen::cycle(32));
  Network net(wg);  // tracing OFF — the breakdown is always measured
  FixedRoundFlood algo(6);
  const RunStats stats = net.run(algo, 100);
  EXPECT_EQ(stats.rounds, 6);
  EXPECT_GT(stats.timing.compute_seconds, 0.0);
  EXPECT_GT(stats.timing.flip_seconds, 0.0);
  EXPECT_EQ(stats.timing.merge_seconds, 0.0);  // no bridge on 1 shard
  ASSERT_EQ(stats.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.phases[0].timing.compute_seconds,
                   stats.timing.compute_seconds);
  EXPECT_EQ(net.tracer(), nullptr) << "default config must not trace";
}

// ------------------------------------------------------------- tracing

TEST(Tracing, SnapshotContainsNestedPhaseRoundAndChunkSpans) {
  const auto wg = WeightedGraph::uniform(gen::cycle(16));
  CongestConfig cfg;
  cfg.trace.enabled = true;
  Network net(wg, cfg);
  FixedRoundFlood algo(4);
  net.run(algo, 100);

  ASSERT_NE(net.tracer(), nullptr);
  const auto events = net.tracer()->snapshot();
  ASSERT_FALSE(events.empty());

  const obs::TraceEvent* phase = nullptr;
  bool saw_round = false, saw_flip = false, saw_init = false,
       saw_chunk = false;
  for (const auto& e : events) {
    if (e.name == "phase:main") phase = &e;
    saw_round |= e.name == "round";
    saw_flip |= e.name == "flip";
    saw_init |= e.name == "initialize";
    saw_chunk |= e.name == "chunk:active" || e.name == "chunk:nodes";
  }
  ASSERT_NE(phase, nullptr);
  EXPECT_TRUE(saw_round);
  EXPECT_TRUE(saw_flip);
  EXPECT_TRUE(saw_init);
  EXPECT_TRUE(saw_chunk);

  // Every span lies inside the phase span, and the snapshot is ordered
  // by start time — the invariants chrome://tracing nesting relies on.
  const std::int64_t phase_end = phase->ts_ns + phase->dur_ns;
  std::int64_t prev_ts = events.front().ts_ns;
  std::int64_t round_args = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.ts_ns, phase->ts_ns);
    EXPECT_LE(e.ts_ns + e.dur_ns, phase_end);
    EXPECT_GE(e.ts_ns, prev_ts);
    prev_ts = e.ts_ns;
    if (e.name == "round") {
      ++round_args;
      EXPECT_EQ(e.arg, round_args) << "round spans carry the round number";
    }
  }
  EXPECT_EQ(round_args, 4);
}

TEST(Tracing, ShardedRunRecordsBridgeMergesOnShardRows) {
  const auto wg = WeightedGraph::uniform(gen::grid(8, 8));
  CongestConfig cfg;
  cfg.threads = 2;
  cfg.shards = 2;
  cfg.trace.enabled = true;
  auto net = shard::make_network(wg, cfg);
  FixedRoundFlood algo(6);
  net->run(algo, 100);

  ASSERT_NE(net->tracer(), nullptr);
  bool saw_shard_row = false, saw_merge = false;
  for (const auto& e : net->tracer()->snapshot()) {
    saw_shard_row |= e.pid > 0;
    saw_merge |= e.name == std::string("bridge:merge");
  }
  EXPECT_TRUE(saw_shard_row) << "shard-side spans carry pid = shard + 1";
  EXPECT_TRUE(saw_merge);
  EXPECT_GT(net->stats().timing.merge_seconds, 0.0);
}

TEST(Tracing, EnabledTracingKeepsResultsBitIdentical) {
  const auto corpus = harness::small_corpus(21);
  const std::vector<const harness::CorpusInstance*> one = {&corpus.front()};

  harness::ScenarioSpec plain;
  plain.solvers = {{"det", std::nullopt, ""}};
  plain.thread_widths = {1, 4};
  plain.shard_counts = {1, 2};
  const auto untraced = harness::run_scenario(plain, one);

  harness::ScenarioSpec traced = plain;
  const std::string trace_path = ::testing::TempDir() + "obs_trace.json";
  traced.trace_out = trace_path;
  const auto rows = harness::run_scenario(traced, one);

  ASSERT_EQ(rows.size(), untraced.size());
  EXPECT_TRUE(harness::all_identical(rows));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].result.dominating_set,
              untraced[i].result.dominating_set);
    EXPECT_EQ(rows[i].result.weight, untraced[i].result.weight);
    EXPECT_TRUE(rows[i].result.stats == untraced[i].result.stats)
        << "tracing changed logical statistics";
  }

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file was not written";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // One labeled process row per traced cell.
  EXPECT_NE(json.find("t1 s1"), std::string::npos);
  EXPECT_NE(json.find("t4 s2"), std::string::npos);
  std::remove(trace_path.c_str());
}

// ----------------------------------------------------- flight recorder

TEST(FlightRecorder, KeepsExactlyTheLastNRounds) {
  const auto wg = WeightedGraph::uniform(gen::cycle(12));
  CongestConfig cfg;
  cfg.trace.flight_rounds = 5;  // independent of trace.enabled
  Network net(wg, cfg);

  FixedRoundFlood algo(12);
  const RunStats stats = net.run(algo, 100);
  EXPECT_EQ(stats.rounds, 12);
  const auto recs = net.flight_records();
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].round, 8 + static_cast<std::int64_t>(i));
    EXPECT_EQ(recs[i].active, 12);  // every node re-arms every round
    EXPECT_EQ(recs[i].delivered, 24);  // 12 nodes x 2 cycle neighbors
    EXPECT_GT(recs[i].bits, 0);
    EXPECT_EQ(recs[i].dropped, 0);
  }

  // Fewer rounds than the ring: all of them survive, oldest first.
  FixedRoundFlood brief(3);
  net.run(brief, 100);
  const auto few = net.flight_records();
  ASSERT_EQ(few.size(), 3u);
  EXPECT_EQ(few.front().round, 1);
  EXPECT_EQ(few.back().round, 3);

  std::ostringstream os;
  net.dump_flight_recorder(os, "unit-test dump");
  const std::string dump = os.str();
  EXPECT_NE(dump.find("[flight recorder] unit-test dump"), std::string::npos);
  EXPECT_NE(dump.find("3 round(s)"), std::string::npos);
  EXPECT_NE(dump.find("round 1"), std::string::npos);
}

TEST(FlightRecorder, DisabledByDefaultAndCostsNothing) {
  const auto wg = WeightedGraph::uniform(gen::cycle(8));
  Network net(wg);
  FixedRoundFlood algo(4);
  net.run(algo, 100);
  EXPECT_TRUE(net.flight_records().empty());
}

TEST(FlightRecorder, StarvedScenarioRowsCarryLastRounds) {
  const auto corpus = harness::small_corpus(22);
  const std::vector<const harness::CorpusInstance*> one = {&corpus.front()};

  harness::ScenarioSpec spec;
  spec.solvers = {{"det", std::nullopt, ""},
                  {"greedy-threshold", std::nullopt, ""}};
  // A 1-round phase budget starves every multi-round phase: rows either
  // terminate via hit_round_limit or die on a violated invariant —
  // tolerate_failures arms the flight recorder (default 8 rounds) so
  // both outcomes carry context.
  spec.base_config.round_limit = 1;
  spec.tolerate_failures = true;
  const auto rows = harness::run_scenario(spec, one);
  ASSERT_FALSE(rows.empty());

  const harness::ScenarioRow* starved = nullptr;
  for (const auto& row : rows) {
    ASSERT_TRUE(row.failed || row.result.stats.hit_round_limit)
        << "a 1-round budget cannot complete " << row.solver;
    EXPECT_LE(row.last_rounds.size(), 8u);
    if (!row.last_rounds.empty()) starved = &row;
  }
  ASSERT_NE(starved, nullptr) << "no starved row captured flight records";

  std::ostringstream os;
  harness::write_scenario_json(
      os, std::span<const harness::ScenarioRow>(starved, 1));
  const std::string json = os.str();
  EXPECT_NE(json.find("\"last_rounds\": [{\"round\": "), std::string::npos);
}

// -------------------------------------------------------- scenario JSON

TEST(ScenarioJson, SchemaV7EmitsTimingColumnsAtFixedPrecision) {
  harness::ScenarioRow row;
  row.instance = "inst";
  row.family = "fam";
  row.seconds = 0.000123456;
  row.result.stats.timing.compute_seconds = 1.5;
  obs::FlightRecord rec;
  rec.round = 9;
  rec.active = 4;
  rec.delivered = 10;
  row.last_rounds = {rec};

  std::ostringstream os;
  harness::write_scenario_json(os,
                               std::span<const harness::ScenarioRow>(&row, 1));
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 7"), std::string::npos);
  // Fixed 9-decimal seconds: sub-millisecond values survive round-trip.
  EXPECT_NE(json.find("\"seconds\": 0.000123456"), std::string::npos);
  EXPECT_NE(json.find("\"compute_seconds\": 1.500000000"),
            std::string::npos);
  EXPECT_NE(json.find("\"flip_seconds\": 0.000000000"), std::string::npos);
  EXPECT_NE(json.find("\"merge_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"retransmit_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"last_rounds\": [{\"round\": 9, \"active\": 4, "
                      "\"delivered\": 10"),
            std::string::npos);
}

}  // namespace
}  // namespace arbods
