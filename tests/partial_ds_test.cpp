// Property tests for Lemma 4.1 / Lemma 3.2 — the primal-dual partial
// dominating set. Every paper-stated property is re-checked by independent
// verifier code across a sweep of graph families, weights, and epsilons.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/partial_ds.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/verify.hpp"

namespace arbods {
namespace {

struct Instance {
  std::string name;
  WeightedGraph wg;
  NodeId alpha;  // orientability promise (pseudoarboricity upper bound)
};

std::vector<Instance> make_instances() {
  std::vector<Instance> out;
  Rng rng(2024);
  out.push_back({"tree_unit",
                 WeightedGraph::uniform(gen::random_tree_prufer(200, rng)), 1});
  out.push_back(
      {"tree_weighted",
       WeightedGraph(gen::random_tree_prufer(200, rng),
                     gen::uniform_weights(200, 50, rng)),
       1});
  out.push_back({"forest2_unit",
                 WeightedGraph::uniform(gen::k_tree_union(150, 2, rng)), 2});
  {
    Graph g = gen::k_tree_union(150, 3, rng);
    auto w = gen::uniform_weights(g.num_nodes(), 100, rng);
    out.push_back({"forest3_weighted", WeightedGraph(std::move(g), std::move(w)), 3});
  }
  out.push_back({"grid", WeightedGraph::uniform(gen::grid(12, 12)), 2});
  out.push_back({"star", WeightedGraph::uniform(gen::star(100)), 1});
  {
    Graph g = gen::barabasi_albert(200, 3, rng);
    auto w = gen::power_law_weights(g.num_nodes(), 1.3, 200, rng);
    out.push_back({"ba3_powerlaw", WeightedGraph(std::move(g), std::move(w)), 3});
  }
  {
    Graph g = gen::planar_stacked_triangulation(150, rng);
    out.push_back({"planar", WeightedGraph::uniform(std::move(g)), 3});
  }
  out.push_back({"cycle", WeightedGraph::uniform(gen::cycle(101)), 1});
  {
    Graph g = gen::grid(10, 10);
    auto w = gen::degree_proportional_weights(g);
    out.push_back({"grid_degw", WeightedGraph(std::move(g), std::move(w)), 2});
  }
  return out;
}

struct Case {
  std::size_t instance;
  double eps;
};

class PartialDsProperty : public ::testing::TestWithParam<Case> {
 protected:
  static const std::vector<Instance>& instances() {
    static const std::vector<Instance> kInstances = make_instances();
    return kInstances;
  }
};

TEST_P(PartialDsProperty, Lemma41PropertiesHold) {
  const auto& [idx, eps] = GetParam();
  const Instance& inst = instances()[idx];
  const WeightedGraph& wg = inst.wg;
  const double lambda =
      1.0 / ((2.0 * static_cast<double>(inst.alpha) + 1.0) * (1.0 + eps));

  Network net(wg);
  PartialDsParams params{eps, lambda, inst.alpha};
  PartialDominatingSet algo(params);
  RunStats stats = net.run(algo, 1000000);
  ASSERT_FALSE(stats.hit_round_limit);

  const auto& x = algo.packing();
  const auto& dominated = algo.dominated();
  const auto taus = wg.all_tau();

  // Observation 4.2: feasibility at all times; we check the final state.
  EXPECT_TRUE(is_feasible_packing(wg, x, 1e-6)) << inst.name;

  // Property (b) / Observation 4.3: undominated above the bar, dominated
  // below it (small slack for the fixed-point message codec).
  for (NodeId v = 0; v < wg.num_nodes(); ++v) {
    const double bar = lambda * static_cast<double>(taus[v]);
    if (!dominated[v]) {
      EXPECT_GE(x[v], bar * (1 - 1e-9)) << inst.name << " node " << v;
    } else {
      EXPECT_LE(x[v], bar * (1 + 1e-6)) << inst.name << " node " << v;
    }
  }

  // Property (a): w_S <= alpha * (1/(1+eps) - lambda(alpha+1))^{-1}
  //               * sum_{v in N+(S)} x_v.
  const double factor =
      static_cast<double>(inst.alpha) /
      (1.0 / (1.0 + eps) -
       lambda * (static_cast<double>(inst.alpha) + 1.0));
  Weight ws = 0;
  double dominated_mass = 0.0;
  for (NodeId v = 0; v < wg.num_nodes(); ++v) {
    if (algo.in_partial_set()[v]) ws += wg.weight(v);
    if (dominated[v]) dominated_mass += x[v];
  }
  EXPECT_LE(static_cast<double>(ws), factor * dominated_mass * (1 + 1e-6))
      << inst.name;

  // S's domination bookkeeping matches an independent recomputation.
  const auto mask = dominated_mask(wg.graph(), algo.partial_set());
  for (NodeId v = 0; v < wg.num_nodes(); ++v)
    EXPECT_EQ(mask[v], dominated[v]) << inst.name << " node " << v;

  // Round complexity: r <= log_{1+eps}(lambda*(Delta+1)) + 1 and the
  // simulator used O(r) rounds.
  const double delta = wg.graph().max_degree();
  const double r_bound =
      std::log(lambda * (delta + 1.0)) / std::log1p(eps) + 1.0;
  EXPECT_LE(static_cast<double>(algo.iterations()), std::max(0.0, r_bound) + 1)
      << inst.name;
  EXPECT_LE(stats.rounds, 2 * algo.iterations() + 3) << inst.name;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::size_t n = make_instances().size();
  for (std::size_t i = 0; i < n; ++i)
    for (double eps : {0.1, 0.3, 0.7})
      cases.push_back({i, eps});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartialDsProperty,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return "i" + std::to_string(info.param.instance) +
                                  "_eps" +
                                  std::to_string(static_cast<int>(
                                      info.param.eps * 10));
                         });

// ------------------------------------------------------------ sanity cases

TEST(PartialDs, RejectsBadParameters) {
  EXPECT_THROW(PartialDominatingSet({1.5, 0.1, 1}), CheckError);
  EXPECT_THROW(PartialDominatingSet({0.5, 0.0, 1}), CheckError);
  EXPECT_THROW(PartialDominatingSet({0.5, 0.9, 1}), CheckError);  // >= limit
}

TEST(PartialDs, IterationFormulaMatchesPaperWindow) {
  // (1+eps)^{r-1}/(Delta+1) <= lambda < (1+eps)^r/(Delta+1)
  for (double eps : {0.1, 0.5}) {
    for (NodeId delta : {1u, 10u, 1000u}) {
      for (double lambda : {0.01, 0.1, 0.3}) {
        const std::int64_t r = partial_ds_iterations(eps, lambda, delta);
        if (lambda < 1.0 / (delta + 1.0)) {
          EXPECT_EQ(r, 0);
        } else {
          EXPECT_GE(r, 1);
          EXPECT_LE(std::pow(1 + eps, static_cast<double>(r - 1)) / (delta + 1),
                    lambda * (1 + 1e-12));
          EXPECT_GT(std::pow(1 + eps, static_cast<double>(r)) / (delta + 1),
                    lambda * (1 - 1e-12));
        }
      }
    }
  }
}

TEST(PartialDs, EmptyGraph) {
  auto wg = WeightedGraph::uniform(Graph(0));
  Network net(wg);
  PartialDominatingSet algo({0.5, 0.2, 1});
  RunStats stats = net.run(algo, 100);
  EXPECT_FALSE(stats.hit_round_limit);
  EXPECT_TRUE(algo.partial_set().empty());
}

TEST(PartialDs, IsolatedNodesStayUndominatedWithSmallLambda) {
  // lambda < 1/(Delta+1) = 1: zero iterations, S empty, everyone keeps
  // x_v = tau_v and is "undominated" — property (b) trivially satisfied.
  WeightedGraph wg(Graph(5), {3, 1, 4, 1, 5});
  Network net(wg);
  PartialDominatingSet algo({0.5, 0.2, 1});
  net.run(algo, 100);
  EXPECT_TRUE(algo.partial_set().empty());
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_FALSE(algo.dominated()[v]);
    EXPECT_DOUBLE_EQ(algo.packing()[v], static_cast<double>(wg.weight(v)));
  }
}

TEST(PartialDs, TauWitnessIsCorrect) {
  WeightedGraph wg(gen::path(4), {9, 2, 7, 7});
  Network net(wg);
  PartialDominatingSet algo({0.5, 0.05, 1});
  net.run(algo, 1000);
  EXPECT_EQ(algo.tau(), (std::vector<Weight>{2, 2, 2, 7}));
  EXPECT_EQ(algo.tau_witness()[0], 1u);
  EXPECT_EQ(algo.tau_witness()[1], 1u);
  EXPECT_EQ(algo.tau_witness()[2], 1u);
  EXPECT_EQ(algo.tau_witness()[3], 2u);  // min weight 7, tie -> lower id
}

}  // namespace
}  // namespace arbods
