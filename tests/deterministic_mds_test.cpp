// Tests for Theorem 1.1 / Theorem 3.1: validity, the (2a+1)(1+eps)
// approximation certificate, exact-ratio checks against OPT on small
// instances, and the O(log(Delta/alpha)/eps) round complexity.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "baselines/exact.hpp"
#include "core/deterministic_mds.hpp"
#include "core/solvers.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/verify.hpp"

namespace arbods {
namespace {

struct Instance {
  std::string name;
  WeightedGraph wg;
  NodeId alpha;
};

std::vector<Instance> make_instances() {
  std::vector<Instance> out;
  Rng rng(77);
  out.push_back({"tree", WeightedGraph::uniform(gen::random_tree_prufer(300, rng)), 1});
  {
    Graph g = gen::random_tree_prufer(300, rng);
    auto w = gen::uniform_weights(300, 64, rng);
    out.push_back({"tree_w", WeightedGraph(std::move(g), std::move(w)), 1});
  }
  out.push_back({"forest2", WeightedGraph::uniform(gen::k_tree_union(250, 2, rng)), 2});
  {
    Graph g = gen::k_tree_union(250, 4, rng);
    auto w = gen::power_law_weights(250, 1.5, 128, rng);
    out.push_back({"forest4_w", WeightedGraph(std::move(g), std::move(w)), 4});
  }
  out.push_back({"grid", WeightedGraph::uniform(gen::grid(15, 15)), 2});
  out.push_back({"star", WeightedGraph::uniform(gen::star(400)), 1});
  {
    Graph g = gen::barabasi_albert(300, 2, rng);
    out.push_back({"ba2", WeightedGraph::uniform(std::move(g)), 2});
  }
  {
    Graph g = gen::random_maximal_outerplanar(200, rng);
    auto w = gen::degree_proportional_weights(g);
    out.push_back({"outerplanar_w", WeightedGraph(std::move(g), std::move(w)), 2});
  }
  return out;
}

struct Case {
  std::size_t instance;
  double eps;
};

class Theorem11Test : public ::testing::TestWithParam<Case> {
 protected:
  static const std::vector<Instance>& instances() {
    static const std::vector<Instance> kInstances = make_instances();
    return kInstances;
  }
};

TEST_P(Theorem11Test, ApproximationCertificateAndValidity) {
  const auto& [idx, eps] = GetParam();
  const Instance& inst = instances()[idx];
  MdsResult res = solve_mds_deterministic(inst.wg, inst.alpha, eps);

  // Independent validity + feasibility re-check.
  res.validate(inst.wg, 1e-5);

  // The proof of Theorem 1.1 shows weight <= (2a+1)(1+eps) * sum_v x_v;
  // our certificate re-derives exactly that inequality from the output.
  const double bound =
      (2.0 * static_cast<double>(inst.alpha) + 1.0) * (1.0 + eps);
  EXPECT_LE(res.certified_ratio(), bound * (1 + 1e-6))
      << inst.name << " eps=" << eps;

  // Lemma 2.1: the packing sum is a genuine lower bound (cross-check the
  // feasibility tolerance did not hide a violation).
  EXPECT_TRUE(is_feasible_packing(inst.wg, res.packing, 1e-5));
  EXPECT_GT(res.packing_lower_bound, 0.0);
}

TEST_P(Theorem11Test, RoundComplexityWithinTheoremBound) {
  const auto& [idx, eps] = GetParam();
  const Instance& inst = instances()[idx];
  MdsResult res = solve_mds_deterministic(inst.wg, inst.alpha, eps);
  const double delta = inst.wg.graph().max_degree();
  // r <= log_{1+eps}(lambda (Delta+1)) + 1 with lambda = 1/((2a+1)(1+eps));
  // simulator rounds <= 2r + 5 (weight prologue + completion).
  const double lam = theorem11_lambda(inst.alpha, eps);
  const double r_bound =
      std::max(0.0, std::log(lam * (delta + 1.0)) / std::log1p(eps)) + 1.0;
  EXPECT_LE(static_cast<double>(res.stats.rounds), 2 * r_bound + 5.0)
      << inst.name;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (std::size_t i = 0; i < make_instances().size(); ++i)
    for (double eps : {0.1, 0.5})
      cases.push_back({i, eps});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem11Test, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return "i" + std::to_string(info.param.instance) +
                                  "_eps" +
                                  std::to_string(
                                      static_cast<int>(info.param.eps * 10));
                         });

// ------------------------------------------------- exact-ratio spot checks

TEST(Theorem11, TrueRatioAgainstOptOnSmallWeightedForests) {
  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::random_forest(24, 3, rng);
    auto w = gen::uniform_weights(24, 20, rng);
    WeightedGraph wg(std::move(g), std::move(w));
    auto exact = baselines::exact_dominating_set(wg);
    ASSERT_TRUE(exact.has_value());
    MdsResult res = solve_mds_deterministic(wg, 1, 0.2);
    res.validate(wg, 1e-5);
    const double ratio =
        static_cast<double>(res.weight) / static_cast<double>(exact->weight);
    EXPECT_LE(ratio, 3.0 * 1.2 + 1e-9) << "trial " << trial;  // (2*1+1)(1+eps)
  }
}

TEST(Theorem11, TrueRatioAgainstOptOnSmallAlpha2) {
  Rng rng(89);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = gen::k_tree_union(20, 2, rng);
    WeightedGraph wg = WeightedGraph::uniform(std::move(g));
    auto exact = baselines::exact_dominating_set(wg);
    ASSERT_TRUE(exact.has_value());
    MdsResult res = solve_mds_deterministic(wg, 2, 0.3);
    const double ratio =
        static_cast<double>(res.weight) / static_cast<double>(exact->weight);
    EXPECT_LE(ratio, 5.0 * 1.3 + 1e-9) << "trial " << trial;
  }
}

// --------------------------------------------------------------- unweighted

TEST(Theorem31, UnweightedSelfCompletionMatchesGuarantee) {
  Rng rng(90);
  Graph g = gen::k_tree_union(300, 2, rng);
  auto wg = WeightedGraph::uniform(std::move(g));
  MdsResult res = solve_mds_unweighted(wg, 2, 0.25);
  res.validate(wg, 1e-5);
  EXPECT_LE(res.certified_ratio(), 5.0 * 1.25 * (1 + 1e-6));
}

TEST(Theorem31, SelfAndMinNeighborCompletionsBothValid) {
  Rng rng(91);
  Graph g = gen::grid(10, 10);
  auto wg = WeightedGraph::uniform(std::move(g));
  MdsResult self_res = solve_mds_unweighted(wg, 2, 0.5);
  MdsResult nbr_res = solve_mds_deterministic(wg, 2, 0.5);
  self_res.validate(wg, 1e-5);
  nbr_res.validate(wg, 1e-5);
  // Both completions start from the same partial set; min-neighbor requests
  // can coalesce on shared witnesses, so it never adds more than self-join.
  EXPECT_LE(nbr_res.weight, self_res.weight);
}

// ------------------------------------------------------------ corner cases

TEST(Theorem11, EmptyGraph) {
  auto wg = WeightedGraph::uniform(Graph(0));
  MdsResult res = solve_mds_deterministic(wg, 1, 0.5);
  EXPECT_TRUE(res.dominating_set.empty());
  EXPECT_EQ(res.weight, 0);
}

TEST(Theorem11, SingleNode) {
  auto wg = WeightedGraph::uniform(Graph(1));
  MdsResult res = solve_mds_deterministic(wg, 1, 0.5);
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(Theorem11, IsolatedNodesAllJoin) {
  WeightedGraph wg(Graph(6), {5, 4, 3, 2, 1, 9});
  MdsResult res = solve_mds_deterministic(wg, 1, 0.5);
  res.validate(wg, 1e-5);
  EXPECT_EQ(res.dominating_set.size(), 6u);
}

TEST(Theorem11, K2PicksTheCheaperEndpoint) {
  WeightedGraph wg(gen::path(2), {10, 1});
  MdsResult res = solve_mds_deterministic(wg, 1, 0.1);
  res.validate(wg, 1e-5);
  EXPECT_EQ(res.weight, 1);
  EXPECT_EQ(res.dominating_set, NodeSet{1});
}

TEST(Theorem11, ExpensiveHubAvoidedOnWeightedStar) {
  // Star whose hub is absurdly expensive: the algorithm must not pay it...
  // leaves each cost 1, so OPT = n-1 (all leaves) vs hub 10^6.
  const NodeId n = 30;
  std::vector<Weight> w(n, 1);
  w[0] = 1000000;
  WeightedGraph wg(gen::star(n), std::move(w));
  MdsResult res = solve_mds_deterministic(wg, 1, 0.2);
  res.validate(wg, 1e-5);
  EXPECT_LT(res.weight, 1000000);
}

TEST(Theorem11, CheapHubTakenOnWeightedStar) {
  // Hub costs 1, leaves cost 100: OPT = {hub}.
  const NodeId n = 30;
  std::vector<Weight> w(n, 100);
  w[0] = 1;
  WeightedGraph wg(gen::star(n), std::move(w));
  MdsResult res = solve_mds_deterministic(wg, 1, 0.2);
  res.validate(wg, 1e-5);
  EXPECT_EQ(res.weight, 1);
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(Theorem11, DeterministicAcrossRuns) {
  Rng rng(92);
  Graph g = gen::k_tree_union(100, 2, rng);
  auto wg = WeightedGraph::uniform(std::move(g));
  MdsResult a = solve_mds_deterministic(wg, 2, 0.3);
  MdsResult b = solve_mds_deterministic(wg, 2, 0.3);
  EXPECT_EQ(a.dominating_set, b.dominating_set);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(Theorem11, EpsilonTradesRoundsForQuality) {
  Rng rng(93);
  Graph g = gen::barabasi_albert(500, 2, rng);
  auto wg = WeightedGraph::uniform(std::move(g));
  MdsResult fine = solve_mds_deterministic(wg, 2, 0.05);
  MdsResult coarse = solve_mds_deterministic(wg, 2, 0.8);
  EXPECT_GT(fine.stats.rounds, coarse.stats.rounds);
}

TEST(Theorem11, LambdaOverrideIsHonored) {
  Rng rng(94);
  Graph g = gen::random_tree_prufer(100, rng);
  auto wg = WeightedGraph::uniform(std::move(g));
  DeterministicMdsParams p;
  p.eps = 0.5;
  p.alpha = 1;
  p.lambda = 1e-9;  // below 1/(Delta+1): partial phase is skipped entirely
  Network net(wg);
  MdsResult res = run_deterministic_mds(net, p);
  res.validate(wg, 1e-5);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Theorem11, ReportsPartialAndCompletionPhaseBreakdown) {
  Rng rng(95);
  Graph g = gen::k_tree_union(120, 2, rng);
  auto wg = WeightedGraph::uniform(std::move(g));
  MdsResult res = solve_mds_deterministic(wg, 2, 0.3);
  ASSERT_EQ(res.stats.phases.size(), 2u);
  EXPECT_EQ(res.stats.phases[0].name, "partial_ds");
  EXPECT_EQ(res.stats.phases[1].name, "completion");
  // Thm 1.1 completion = request round + join round.
  EXPECT_EQ(res.stats.phases[1].rounds, 2);
  EXPECT_EQ(res.stats.phases[0].rounds + res.stats.phases[1].rounds,
            res.stats.rounds);
}

}  // namespace
}  // namespace arbods
