// Shard-affine execution tests: WorkerPool pinning semantics (worker 0
// never pinned, modulo wrap under over-subscription, unknown-CPU-count
// fallback), bit-identity of pinned + shard-affine runs against plain
// ones, phase-boundary auto-replanning bit-identity at every width and
// shard count, and a scenario where a replan demonstrably fires (skewed
// traffic on a deliberately cut-heavy boundary).
//
// Width/shard knobs follow the determinism suite: ARBODS_TEST_THREADS
// (default 8) and ARBODS_TEST_SHARDS (default 2, CI runs 4).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "congest/affinity.hpp"
#include "congest/worker_pool.hpp"
#include "gen/classic.hpp"
#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"
#include "protocol/runner.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_network.hpp"

namespace arbods {
namespace {

int test_thread_width() {
  if (const char* env = std::getenv("ARBODS_TEST_THREADS")) {
    const int w = std::atoi(env);
    if (w >= 1) return w;
  }
  return 8;
}

int test_shard_count() {
  if (const char* env = std::getenv("ARBODS_TEST_SHARDS")) {
    const int k = std::atoi(env);
    if (k >= 1) return k;
  }
  return 2;
}

// ------------------------------------------------------- WorkerPool pinning

TEST(WorkerPoolAffinity, PinCpuWrapsModuloTheCpuCount) {
  // Spawned worker w targets CPU w % cpus: over-subscribed pools share
  // cores round-robin instead of producing out-of-range masks.
  EXPECT_EQ(WorkerPool::pin_cpu(1, 4), 1);
  EXPECT_EQ(WorkerPool::pin_cpu(3, 4), 3);
  EXPECT_EQ(WorkerPool::pin_cpu(4, 4), 0);
  EXPECT_EQ(WorkerPool::pin_cpu(5, 4), 1);
  EXPECT_EQ(WorkerPool::pin_cpu(7, 1), 0);  // single-CPU box: all on CPU 0
}

TEST(WorkerPoolAffinity, CpuCountComesFromHardwareConcurrency) {
  // 0 means "unknown" and disables pinning; it is never negative.
  EXPECT_GE(affinity_cpu_count(), 0);
}

TEST(WorkerPoolAffinity, PinnedWorkerCountSemantics) {
  // A serial pool is just the calling thread, which is NEVER pinned —
  // the driver may be a test runner's thread.
  WorkerPool serial(1, /*pin_threads=*/true);
  EXPECT_EQ(serial.pinned_workers(), 0);

  // Without pin_threads the count stays zero regardless of platform.
  WorkerPool unpinned(4, /*pin_threads=*/false);
  EXPECT_EQ(unpinned.pinned_workers(), 0);

  // A pinned pool pins at most its SPAWNED workers (num_workers - 1);
  // where the platform supports affinity and the CPU count is known,
  // every spawned thread should pin (possibly all to CPU 0 on a 1-CPU
  // container — still a valid mask).
  WorkerPool pinned(4, /*pin_threads=*/true);
  EXPECT_GE(pinned.pinned_workers(), 0);
  EXPECT_LE(pinned.pinned_workers(), 3);
  if (affinity_supported() && affinity_cpu_count() > 0)
    EXPECT_EQ(pinned.pinned_workers(), 3);

  // Pinning is a placement hint only: the pool still dispatches work to
  // every worker exactly once.
  std::atomic<int> hits{0};
  pinned.run([&](int) { hits.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(hits.load(), 4);
}

// --------------------------------------------------- pinning bit-identity

TEST(Affinity, PinnedRunsAreBitIdenticalToUnpinnedOnes) {
  const int wide = test_thread_width();
  const int k = test_shard_count();
  const auto corpus = harness::small_corpus(7);
  int checked = 0;
  for (const auto& inst : corpus) {
    if (checked >= 3) break;  // three instances bound the runtime
    for (const char* name : {"det", "greedy-threshold"}) {
      const harness::SolverInfo* info = harness::find_solver(name);
      if (info == nullptr || !harness::solver_applicable(*info, inst))
        continue;
      harness::SolverParams params = harness::params_for(*info, inst);
      CongestConfig plain_cfg;
      plain_cfg.seed = 0xaff10001ULL;
      CongestConfig pinned_cfg = plain_cfg;
      pinned_cfg.pin_threads = true;
      for (const int threads : {1, wide}) {
        for (const int shards : {1, k}) {
          params.threads = threads;
          params.shards = shards;
          const MdsResult plain =
              harness::run_solver(name, inst.wg, params, plain_cfg);
          const MdsResult pinned =
              harness::run_solver(name, inst.wg, params, pinned_cfg);
          EXPECT_TRUE(plain == pinned)
              << name << " on " << inst.name << " diverged under pinning at "
              << threads << " threads, " << shards << " shards";
        }
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 1);
}

// ------------------------------------------------ auto-replan bit-identity

TEST(Affinity, AutoReplannedRunsAreBitIdenticalAtEveryWidthAndShardCount) {
  // "det" chains multiple phases, so replans can fire mid-protocol; the
  // reference is a plain unsharded run with replanning off. Pinning
  // rides along so the test covers the full shard-affine configuration.
  const int wide = test_thread_width();
  const auto corpus = harness::small_corpus(7);
  int checked = 0;
  for (const auto& inst : corpus) {
    if (checked >= 2) break;
    const harness::SolverInfo& info = harness::solver("det");
    if (!harness::solver_applicable(info, inst)) continue;
    harness::SolverParams params = harness::params_for(info, inst);
    CongestConfig base;
    base.seed = 0xaff20002ULL;

    params.threads = 1;
    const MdsResult reference =
        harness::run_solver("det", inst.wg, params, base);

    CongestConfig replan_cfg = base;
    replan_cfg.auto_replan = true;
    replan_cfg.pin_threads = true;
    for (const int threads : {1, wide}) {
      for (const int shards : {1, 2, 4}) {
        params.threads = threads;
        params.shards = shards;
        const MdsResult run =
            harness::run_solver("det", inst.wg, params, replan_cfg);
        EXPECT_TRUE(run == reference)
            << "det on " << inst.name << " diverged under auto-replan at "
            << threads << " threads, " << shards << " shards";
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 1);
}

// ----------------------------------------------- a replan actually fires

// Phase 1: nodes 31 and 32 of a path exchange a message every round for
// eight rounds — all measured traffic sits on the one edge the initial
// balanced plan cuts.
class HeavyBoundaryTraffic final : public protocol::Phase {
 public:
  std::string_view name() const override { return "heavy"; }
  void initialize(Network& net) override {
    rounds_ = 0;
    exchange(net);
  }
  void process_round(Network& net) override {
    ++rounds_;
    if (rounds_ < 8) exchange(net);
  }
  bool finished(const Network&) const override { return rounds_ >= 8; }

 private:
  static void exchange(Network& net) {
    net.send(31, 32, Message::tagged(0).add_id(31));
    net.send(32, 31, Message::tagged(0).add_id(32));
  }
  int rounds_ = 0;
};

// Phase 2 exists so the runner has a phase boundary to replan at.
class IdlePhase final : public protocol::Phase {
 public:
  std::string_view name() const override { return "idle"; }
  void initialize(Network&) override { done_ = false; }
  void process_round(Network&) override { done_ = true; }
  bool finished(const Network&) const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Affinity, SkewedTrafficTriggersAPhaseBoundaryReplan) {
  // Path of 64 nodes, balanced 2-shard plan cutting edge (31, 32): every
  // profiled bit crosses the cut, so the measured refiner finds a
  // cheaper boundary inside the balance window and the runner adopts it
  // (the win dwarfs the 5% hysteresis).
  WeightedGraph wg = WeightedGraph::uniform(gen::path(64));
  CongestConfig cfg;
  cfg.shards = 2;
  cfg.auto_replan = true;
  shard::ShardPlan balanced;
  balanced.node_begin = {0, 32, 64};
  shard::ShardedNetwork net(wg, cfg, balanced);
  ASSERT_EQ(net.plan().node_begin[1], 32);
  ASSERT_EQ(net.replans(), 0);

  HeavyBoundaryTraffic heavy;
  IdlePhase idle;
  protocol::ProtocolRunner runner(net);
  runner.run({&heavy, &idle});

  EXPECT_GE(net.replans(), 1);
  EXPECT_NE(net.plan().node_begin[1], 32)
      << "the adopted plan should have moved the boundary off the hot edge";
}

}  // namespace
}  // namespace arbods
