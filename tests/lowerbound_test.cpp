// Tests for the Section 5 lower-bound machinery: the H construction
// (Figure 1), its structural invariants, the reduction projection, and the
// truncated-round locality harness.
#include <gtest/gtest.h>

#include "arboricity/core_decomposition.hpp"
#include "arboricity/pseudoarboricity.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "gen/classic.hpp"
#include "graph/stats.hpp"
#include "graph/verify.hpp"
#include "lowerbound/h_construction.hpp"
#include "lowerbound/kmw_base.hpp"
#include "lowerbound/locality.hpp"

namespace arbods {
namespace {

using lowerbound::HConstruction;
using lowerbound::HRole;

// ----------------------------------------------------------- construction

TEST(HConstruction, NodeAndEdgeCountsMatchPaper) {
  Graph g = gen::complete_bipartite(3, 3);  // n=6, m=9
  const NodeId copies = 4;
  HConstruction h(g, copies);
  // |V| = copies*(n+m) + n, |E| = copies*(2m + n).
  EXPECT_EQ(h.h().num_nodes(), copies * (6 + 9) + 6);
  EXPECT_EQ(h.h().num_edges(), static_cast<std::size_t>(copies) * (2 * 9 + 6));
}

TEST(HConstruction, RolesAndOrigins) {
  Graph g = gen::path(3);  // n=3, m=2
  HConstruction h(g, 2);
  // Copy 0 nodes.
  EXPECT_EQ(h.role(h.copy_node(0, 1)), HRole::kCopy);
  EXPECT_EQ(h.origin(h.copy_node(0, 1)), 1u);
  EXPECT_EQ(h.copy_of(h.copy_node(0, 1)), 0u);
  // Middle node of edge 0 in copy 1.
  EXPECT_EQ(h.role(h.middle_node(1, 0)), HRole::kMiddle);
  EXPECT_EQ(h.copy_of(h.middle_node(1, 0)), 1u);
  // T nodes.
  EXPECT_EQ(h.role(h.t_node(2)), HRole::kT);
  EXPECT_EQ(h.origin(h.t_node(2)), 2u);
  EXPECT_EQ(h.copy_of(h.t_node(2)), kInvalidNode);
}

TEST(HConstruction, DegreesMatchTheConstruction) {
  Graph g = gen::complete_bipartite(2, 3);  // degrees 3,3,2,2,2; m=6
  const NodeId copies = 5;
  HConstruction h(g, copies);
  // T-node degree = copies.
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(h.h().degree(h.t_node(v)), copies);
  // Copy-node degree = deg_G + 1 (middles per incident edge + its T node).
  for (NodeId c = 0; c < copies; ++c)
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_EQ(h.h().degree(h.copy_node(c, v)), g.degree(v) + 1);
  // Middle nodes: exactly 2.
  for (NodeId c = 0; c < copies; ++c)
    for (NodeId j = 0; j < 6; ++j)
      EXPECT_EQ(h.h().degree(h.middle_node(c, j)), 2u);
}

TEST(HConstruction, ArboricityIsTwo) {
  Graph g = gen::complete_bipartite(3, 4);
  HConstruction h(g, 6);
  // The paper's witness orientation has out-degree <= 2 ...
  Orientation o = h.witness_orientation();
  EXPECT_LE(o.max_out_degree(), 2u);
  // ... and the density lower bound certifies it cannot be 1.
  auto bounds = arboricity_bounds(h.h());
  EXPECT_GE(bounds.lower, 2u);
  EXPECT_LE(pseudoarboricity(h.h()), 2u);
}

TEST(HConstruction, PaperChoiceOfCopiesDeltaSquared) {
  Graph g = gen::complete_bipartite(2, 2);  // Delta = 2
  const NodeId delta = g.max_degree();
  HConstruction h(g, delta * delta);
  // Max degree of H is max(Delta^2 for T, Delta+1 for copies, 2).
  EXPECT_EQ(h.h().max_degree(), delta * delta);
}

TEST(HConstruction, ProjectionOfValidDsIsFractionalVc) {
  Graph g = gen::complete_bipartite(3, 3);
  HConstruction h(g, 4);
  // Take a valid dominating set of H: greedy on uniform weights.
  auto wg = WeightedGraph::uniform(Graph(h.h()));
  auto ds = baselines::greedy_dominating_set(wg);
  ASSERT_TRUE(is_dominating_set(h.h(), ds));
  auto y = h.project_to_fractional_vc(ds);
  EXPECT_TRUE(lowerbound::is_fractional_vc(g, y));
}

TEST(HConstruction, Equation2UpperBoundHolds) {
  // OPT_MDS(H) <= Delta^2 * OPT_MVC(G) + n, checked exactly on a tiny base.
  Graph g = gen::path(3);  // Delta=2, OPT_MVC = 1 (the middle node)
  const NodeId copies = 4; // = Delta^2
  HConstruction h(g, copies);
  auto wg = WeightedGraph::uniform(Graph(h.h()));
  auto exact = baselines::exact_dominating_set(wg);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(exact->weight, static_cast<Weight>(copies) * 1 + 3);
}

// ------------------------------------------------------------------- bases

TEST(KmwBase, CirculantBipartiteRegularity) {
  Graph g = lowerbound::circulant_bipartite(8, 8, 3);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 24u);
  for (NodeId j = 8; j < 16; ++j) EXPECT_EQ(g.degree(j), 3u);
  // Bipartite: A side has no internal edges.
  for (NodeId u = 0; u < 8; ++u)
    for (NodeId v : g.neighbors(u)) EXPECT_GE(v, 8u);
}

TEST(KmwBase, LayeredClusterTreeShape) {
  Graph g = lowerbound::layered_cluster_tree(3, 2, 2);
  // Layers: 2, 4, 8 nodes.
  EXPECT_EQ(g.num_nodes(), 14u);
  EXPECT_TRUE(is_forest(g));  // tree-shaped expander substitute
}

TEST(KmwBase, FractionalVcValues) {
  EXPECT_NEAR(lowerbound::fractional_vc_value(gen::complete_bipartite(3, 5)),
              3.0, 1e-6);  // König: min VC = 3
  EXPECT_NEAR(lowerbound::fractional_vc_value(gen::cycle(4)), 2.0, 1e-6);
  // Odd cycle: fractional optimum n/2.
  EXPECT_NEAR(lowerbound::fractional_vc_value(gen::cycle(5)), 2.5, 1e-6);
}

TEST(KmwBase, IsFractionalVcChecker) {
  Graph g = gen::path(3);
  EXPECT_TRUE(lowerbound::is_fractional_vc(g, {0.5, 0.5, 0.5}));
  EXPECT_FALSE(lowerbound::is_fractional_vc(g, {0.4, 0.4, 0.4}));
}

TEST(KmwBase, MfvcAtLeastMOverDelta) {
  // The inequality OPT_MFVC >= m / Delta used in the proof.
  Graph g = lowerbound::circulant_bipartite(10, 10, 4);
  const double mfvc = lowerbound::fractional_vc_value(g);
  EXPECT_GE(mfvc + 1e-9,
            static_cast<double>(g.num_edges()) / g.max_degree());
}

// ---------------------------------------------------------------- locality

TEST(Locality, ForcedCompletionAlwaysValid) {
  Graph g = gen::complete_bipartite(4, 4);
  HConstruction h(g, 4);
  auto wg = WeightedGraph::uniform(Graph(h.h()));
  for (std::int64_t rounds : {2, 4, 8, 64}) {
    auto run = lowerbound::run_truncated(wg, 2, 0.3, rounds);
    EXPECT_TRUE(is_dominating_set(wg.graph(), run.set)) << rounds;
    EXPECT_EQ(wg.total_weight(run.set), run.weight);
  }
}

TEST(Locality, MoreRoundsNoWorseQuality) {
  Rng rng(900);
  Graph g = lowerbound::circulant_bipartite(12, 12, 4);
  HConstruction h(g, 6);
  auto wg = WeightedGraph::uniform(Graph(h.h()));
  auto few = lowerbound::run_truncated(wg, 2, 0.3, 3);
  auto many = lowerbound::run_truncated(wg, 2, 0.3, 1000);
  // The truncated execution is a prefix of the full one: S only grows, so
  // the force-completed remainder can only shrink.
  EXPECT_LE(many.forced, few.forced);
  // The full run must meet the Theorem 3.1 certificate.
  ASSERT_GT(many.packing_lower_bound, 0.0);
  EXPECT_LE(static_cast<double>(many.weight) / many.packing_lower_bound,
            5.0 * 1.3 * (1 + 1e-6));
}

TEST(Locality, FullRunMatchesTheoremQuality) {
  Graph g = gen::complete_bipartite(4, 4);
  HConstruction h(g, 8);
  auto wg = WeightedGraph::uniform(Graph(h.h()));
  auto run = lowerbound::run_truncated(wg, 2, 0.3, 100000);
  ASSERT_GT(run.packing_lower_bound, 0.0);
  const double ratio = static_cast<double>(run.weight) / run.packing_lower_bound;
  EXPECT_LE(ratio, 5.0 * 1.3 * (1 + 1e-6));
}

}  // namespace
}  // namespace arbods
