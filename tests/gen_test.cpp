// Tests for the workload generators: structure, sizes, and — crucially for
// this paper — the promised arboricity of every family.
#include <gtest/gtest.h>

#include <algorithm>

#include "arboricity/core_decomposition.hpp"
#include "arboricity/pseudoarboricity.hpp"
#include "common/check.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/stats.hpp"
#include "graph/verify.hpp"

namespace arbods {
namespace {

// ----------------------------------------------------------------- classic

TEST(Classic, PathCycleStar) {
  EXPECT_EQ(gen::path(7).num_edges(), 6u);
  EXPECT_EQ(gen::cycle(7).num_edges(), 7u);
  EXPECT_EQ(gen::star(7).num_edges(), 6u);
  EXPECT_EQ(gen::star(7).degree(0), 6u);
}

TEST(Classic, CliqueAndBipartite) {
  EXPECT_EQ(gen::clique(6).num_edges(), 15u);
  Graph kb = gen::complete_bipartite(3, 4);
  EXPECT_EQ(kb.num_edges(), 12u);
  EXPECT_EQ(kb.degree(0), 4u);
  EXPECT_EQ(kb.degree(3), 3u);
}

TEST(Classic, GridDegreesAndSize) {
  Graph g = gen::grid(3, 5);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_EQ(g.num_edges(), 3u * 4 + 5u * 2);
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Classic, KingGridArboricityAtMost4) {
  Graph g = gen::king_grid(8, 8);
  EXPECT_LE(pseudoarboricity(g), 4u);
}

TEST(Classic, TorusIsFourRegular) {
  Graph g = gen::torus(4, 5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Classic, BinaryTreeIsTree) {
  EXPECT_TRUE(is_tree(gen::binary_tree(31)));
}

TEST(Classic, CaterpillarIsTree) {
  Graph g = gen::caterpillar(5, 3);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_TRUE(is_tree(g));
}

TEST(Classic, BookHasArboricityTwo) {
  Graph g = gen::book(6);
  auto b = arboricity_bounds(g);
  EXPECT_EQ(b.upper, 2u);
}

TEST(Classic, SpiderIsTree) { EXPECT_TRUE(is_tree(gen::spider(4, 3))); }

// ------------------------------------------------------------------- trees

class RandomTreeTest : public ::testing::TestWithParam<NodeId> {};

TEST_P(RandomTreeTest, PruferTreeIsTree) {
  Rng rng(42);
  Graph t = gen::random_tree_prufer(GetParam(), rng);
  EXPECT_EQ(t.num_nodes(), GetParam());
  if (GetParam() >= 1) EXPECT_TRUE(is_tree(t));
}

TEST_P(RandomTreeTest, RecursiveTreeIsTree) {
  Rng rng(43);
  Graph t = gen::random_recursive_tree(GetParam(), rng);
  if (GetParam() >= 1) EXPECT_TRUE(is_tree(t));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTreeTest,
                         ::testing::Values<NodeId>(1, 2, 3, 4, 10, 100, 1000));

TEST(Trees, BoundedDegreeTreeRespectsCap) {
  Rng rng(44);
  for (NodeId cap : {2u, 3u, 5u}) {
    Graph t = gen::random_bounded_degree_tree(300, cap, rng);
    EXPECT_TRUE(is_tree(t));
    EXPECT_LE(t.max_degree(), cap);
  }
}

TEST(Trees, ForestHasKComponents) {
  Rng rng(45);
  Graph f = gen::random_forest(50, 7, rng);
  EXPECT_TRUE(is_forest(f));
  NodeId comp = 0;
  connected_components(f, &comp);
  EXPECT_EQ(comp, 7u);
}

TEST(Trees, PruferDistributionSanity) {
  // Over many 4-node trees, both the path and the star must appear.
  Rng rng(46);
  bool saw_star = false, saw_path = false;
  for (int i = 0; i < 200; ++i) {
    Graph t = gen::random_tree_prufer(4, rng);
    if (t.max_degree() == 3) saw_star = true;
    if (t.max_degree() == 2) saw_path = true;
  }
  EXPECT_TRUE(saw_star);
  EXPECT_TRUE(saw_path);
}

// ----------------------------------------------------------- random graphs

TEST(RandomGraphs, GnpEdgeCountInRange) {
  Rng rng(47);
  const NodeId n = 400;
  const double p = 0.02;
  Graph g = gen::erdos_renyi_gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.7);
  EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.3);
}

TEST(RandomGraphs, GnpExtremes) {
  Rng rng(48);
  EXPECT_EQ(gen::erdos_renyi_gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::erdos_renyi_gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(RandomGraphs, GnmExactCount) {
  Rng rng(49);
  Graph g = gen::erdos_renyi_gnm(50, 123, rng);
  EXPECT_EQ(g.num_edges(), 123u);
}

TEST(RandomGraphs, BarabasiAlbertDegeneracyBound) {
  Rng rng(50);
  for (NodeId m : {1u, 2u, 4u}) {
    Graph g = gen::barabasi_albert(500, m, rng);
    EXPECT_EQ(g.num_nodes(), 500u);
    // Each arriving node has degree m at arrival -> degeneracy <= m... the
    // seed clique can push it to m (clique of m+1 has degeneracy m).
    EXPECT_LE(core_decomposition(g).degeneracy, m);
  }
}

TEST(RandomGraphs, GeometricRadiusRespected) {
  Rng rng(51);
  Graph g = gen::random_geometric(300, 0.08, rng);
  // Just structural sanity: no degree can exceed n-1 and graph is simple.
  EXPECT_LE(g.max_degree(), 299u);
}

TEST(RandomGraphs, RandomBipartiteIsBipartite) {
  Rng rng(52);
  Graph g = gen::random_bipartite(20, 30, 0.2, rng);
  for (NodeId u = 0; u < 20; ++u)
    for (NodeId v : g.neighbors(u)) EXPECT_GE(v, 20u);
}

// ------------------------------------------------- arboricity families

class KTreeUnionTest : public ::testing::TestWithParam<NodeId> {};

TEST_P(KTreeUnionTest, ArboricityPinnedWithinOne) {
  const NodeId k = GetParam();
  Rng rng(53 + k);
  Graph g = gen::k_tree_union(400, k, rng);
  // Nash-Williams density lower bound and pseudoarboricity upper bound
  // must bracket k tightly.
  auto bounds = arboricity_bounds(g);
  EXPECT_LE(bounds.lower, k);
  const NodeId p = pseudoarboricity(g);
  EXPECT_LE(p, k);            // k-orientable by construction
  EXPECT_GE(p + 1, k);        // density keeps it from collapsing
}

INSTANTIATE_TEST_SUITE_P(K, KTreeUnionTest, ::testing::Values<NodeId>(1, 2, 3, 5));

TEST(ArbFamilies, PseudoforestUnionOrientable) {
  Rng rng(54);
  Graph g = gen::k_pseudoforest_union(200, 3, rng);
  EXPECT_LE(pseudoarboricity(g), 3u);
}

TEST(ArbFamilies, StackedTriangulationIs3Degenerate) {
  Rng rng(55);
  Graph g = gen::planar_stacked_triangulation(300, rng);
  EXPECT_EQ(g.num_edges(), 3u * 300 - 6);  // maximal planar edge count
  EXPECT_LE(core_decomposition(g).degeneracy, 3u);
}

TEST(ArbFamilies, OuterplanarDegeneracyAtMost2) {
  Rng rng(56);
  Graph g = gen::random_maximal_outerplanar(200, rng);
  EXPECT_EQ(g.num_edges(), 2u * 200 - 3);  // maximal outerplanar edge count
  EXPECT_LE(core_decomposition(g).degeneracy, 2u);
}

TEST(ArbFamilies, CliqueTreeStructure) {
  Rng rng(57);
  Graph g = gen::clique_tree(10, 5, rng);
  EXPECT_EQ(g.num_nodes(), 10u * 4 + 1);
  NodeId comp = 0;
  connected_components(g, &comp);
  EXPECT_EQ(comp, 1u);
  // Arboricity of K5 is 3 = ceil(5/2); the tree of cliques preserves it.
  auto b = arboricity_bounds(g);
  EXPECT_GE(b.upper, 3u);
  EXPECT_LE(pseudoarboricity(g), 3u);
}

TEST(ArbFamilies, PlantedDominatingSetCentersDominate) {
  Rng rng(58);
  Graph g = gen::planted_dominating_set(200, 8, 2, rng);
  NodeSet centers;
  for (NodeId c = 0; c < 8; ++c) centers.push_back(c);
  EXPECT_TRUE(is_dominating_set(g, centers));
}

// ----------------------------------------------------------------- weights

TEST(Weights, UnitWeights) {
  auto w = gen::unit_weights(5);
  EXPECT_EQ(w, (std::vector<Weight>{1, 1, 1, 1, 1}));
}

TEST(Weights, UniformRange) {
  Rng rng(59);
  auto w = gen::uniform_weights(2000, 50, rng);
  EXPECT_EQ(*std::min_element(w.begin(), w.end()), 1);
  EXPECT_EQ(*std::max_element(w.begin(), w.end()), 50);
}

TEST(Weights, PowerLawCapAndFloor) {
  Rng rng(60);
  auto w = gen::power_law_weights(2000, 1.1, 1000, rng);
  for (Weight x : w) {
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 1000);
  }
  // Heavy tail: some weight should exceed 100.
  EXPECT_GT(*std::max_element(w.begin(), w.end()), 100);
}

TEST(Weights, DegreeProportional) {
  Graph g = gen::star(5);
  auto w = gen::degree_proportional_weights(g);
  EXPECT_EQ(w[0], 5);  // hub: 1 + 4
  EXPECT_EQ(w[1], 2);
}

TEST(Weights, InverseDegree) {
  Graph g = gen::star(5);
  auto w = gen::inverse_degree_weights(g);
  EXPECT_EQ(w[0], 1);      // hub is cheapest
  EXPECT_EQ(w[1], 4);      // 1 + 4 - 1
}

TEST(Weights, WithWeightsSchemes) {
  Rng rng(61);
  for (const char* scheme : {"unit", "uniform", "powerlaw", "degree", "invdegree"}) {
    auto wg = gen::with_weights(gen::grid(4, 4), scheme, rng, 64);
    EXPECT_EQ(wg.num_nodes(), 16u);
    EXPECT_GE(wg.max_weight(), 1);
  }
  EXPECT_THROW(gen::with_weights(Graph(2), "nope", rng), CheckError);
}

}  // namespace
}  // namespace arbods
