// Self-healing layer (src/resilience/): the reliable-delivery channel's
// core contract — every registry solver's OUTPUT is bit-identical to its
// fault-free run when driven over a drop/duplicate/delay/reorder
// adversary with config.reliable_transport set, at every worker-pool
// width and shard count — plus the deterministic retransmission
// schedule, the kill_round=1 boundary semantics repair relies on, the
// post-kill repair protocol on a hand-built casualty, the
// "<solver>+repair" registry variants under a kill-only scenario sweep
// (cross-width/cross-shard determinism + the surviving-subgraph oracle),
// and FaultSpec/FaultPlan validation.
//
// The wide width honors ARBODS_TEST_THREADS (CI: 8) like the other
// determinism suites; the shard legs always run K in {1, 2, 4}.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_network.hpp"
#include "gen/classic.hpp"
#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"
#include "harness/scenario.hpp"
#include "resilience/reliable_channel.hpp"
#include "resilience/repair.hpp"

namespace arbods::resilience {
namespace {

int test_thread_width() {
  if (const char* env = std::getenv("ARBODS_TEST_THREADS")) {
    const int w = std::atoi(env);
    if (w >= 1) return w;
  }
  return 8;
}

// The transport promises identical solver OUTPUT, not identical
// statistics — the physical frames are the honest price of reliability.
::testing::AssertionResult outputs_identical(const MdsResult& a,
                                             const MdsResult& b) {
  if (a.dominating_set != b.dominating_set)
    return ::testing::AssertionFailure() << "dominating sets differ";
  if (a.weight != b.weight)
    return ::testing::AssertionFailure()
           << "weights differ: " << a.weight << " vs " << b.weight;
  if (a.packing != b.packing)  // exact double comparison, intentionally
    return ::testing::AssertionFailure() << "packing values differ";
  if (a.iterations != b.iterations)
    return ::testing::AssertionFailure()
           << "iterations differ: " << a.iterations << " vs " << b.iterations;
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------ retransmit schedule

TEST(ReliableChannel, RetransmitGapIsPureAndBounded) {
  // Pure function: same inputs, same gap, across repeated evaluation.
  for (std::uint32_t arc : {0u, 7u, 100000u})
    for (std::uint32_t seq : {0u, 1u, 65535u})
      for (int attempt = 0; attempt < 10; ++attempt)
        EXPECT_EQ(retransmit_gap(arc, seq, static_cast<std::uint8_t>(attempt)),
                  retransmit_gap(arc, seq, static_cast<std::uint8_t>(attempt)));
  // Attempt 0: RTT guard + 2^0 + jitter % 1 == exactly 3.
  EXPECT_EQ(retransmit_gap(3, 5, 0), 3);
  // Bounded exponential envelope: 2 + 2^min(a,5) <= gap < 2 + 2^(min(a,5)+1).
  for (std::uint32_t arc : {1u, 42u})
    for (int attempt = 0; attempt < 12; ++attempt) {
      const int a = attempt < 5 ? attempt : 5;
      const std::int64_t base = std::int64_t{1} << a;
      const std::int64_t gap =
          retransmit_gap(arc, 9, static_cast<std::uint8_t>(attempt));
      EXPECT_GE(gap, 2 + base) << "arc " << arc << " attempt " << attempt;
      EXPECT_LT(gap, 2 + 2 * base) << "arc " << arc << " attempt " << attempt;
    }
}

// ----------------------------------- output bit-identity under faults

TEST(ReliableChannel, EverySolverMatchesItsCleanOutputAcrossWidthsAndShards) {
  const int wide = test_thread_width();
  const auto corpus = harness::small_corpus(21);
  ASSERT_GE(corpus.size(), 3u);
  CongestConfig lossy;
  lossy.seed = 0x5e11ab1eULL;
  lossy.reliable_transport = true;
  lossy.fault.drop_prob = 0.1;
  lossy.fault.duplicate_prob = 0.1;
  lossy.fault.delay_prob = 0.2;
  lossy.fault.max_delay_rounds = 2;
  lossy.fault.reorder_prob = 0.2;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& inst = corpus[i];
    for (const harness::SolverInfo& info : harness::all_solvers()) {
      if (!harness::solver_applicable(info, inst)) continue;
      harness::SolverParams params = harness::params_for(info, inst);
      params.threads = -1;
      params.shards = -1;

      CongestConfig clean_cfg;
      clean_cfg.seed = lossy.seed;
      Network clean(inst.wg, clean_cfg);
      const MdsResult reference = info.run_on(clean, params);

      for (const int threads : {1, wide}) {
        for (const int shards : {1, 2, 4}) {
          CongestConfig cfg = lossy;
          cfg.threads = threads;
          cfg.shards = shards;
          const std::unique_ptr<Network> net =
              fault::make_network(inst.wg, cfg);
          const MdsResult res = info.run_on(*net, params);
          EXPECT_TRUE(outputs_identical(reference, res))
              << info.name << " on " << inst.name << " at threads=" << threads
              << " shards=" << shards;
          // The transport cannot be free: reliability costs physical
          // rounds (markers, acks, retransmissions).
          EXPECT_GT(res.stats.rounds, reference.stats.rounds)
              << info.name << " on " << inst.name;
          EXPECT_FALSE(res.stats.hit_round_limit)
              << info.name << " on " << inst.name;
        }
      }
    }
  }
}

TEST(ReliableChannel, ZeroFaultReliableRunStillMatchesCleanOutput) {
  // reliable_transport over a clean wire: the adapter alone (markers,
  // acks, virtual-round pacing) must not perturb the algorithm.
  const auto corpus = harness::small_corpus(4);
  const auto& inst = corpus.front();
  const harness::SolverInfo& info = harness::solver("det");
  harness::SolverParams params = harness::params_for(info, inst);
  params.threads = -1;
  params.shards = -1;
  CongestConfig cfg;
  cfg.seed = 0xc0feULL;
  Network clean(inst.wg, cfg);
  const MdsResult reference = info.run_on(clean, params);
  cfg.reliable_transport = true;
  Network wrapped(inst.wg, cfg);
  const MdsResult res = info.run_on(wrapped, params);
  EXPECT_TRUE(outputs_identical(reference, res));
}

// ----------------------------------------- kill_round = 1 boundary pin

// Minimal probe for the kill boundary: ids flood at initialize and at
// every process_round; per-round arrival counts are recorded.
class KillProbe final : public DistributedAlgorithm {
 public:
  explicit KillProbe(int rounds) : rounds_(rounds) {}

  std::vector<std::vector<int>> heard_;  // heard_[round][node] = records

  void initialize(Network& net) override {
    heard_.assign(static_cast<std::size_t>(rounds_) + 1,
                  std::vector<int>(net.num_nodes(), 0));
    for (NodeId v = 0; v < net.num_nodes(); ++v)
      net.broadcast(v, Message::tagged(0).add_id(v));
  }

  void process_round(Network& net) override {
    const std::int64_t r = net.current_round();
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      int count = 0;
      for (const MessageView mv : net.inbox(v)) {
        (void)mv;
        ++count;
      }
      heard_[static_cast<std::size_t>(r)][v] = count;
      net.broadcast(v, Message::tagged(0).add_id(v));
    }
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= rounds_;
  }

 private:
  int rounds_;
};

TEST(Repair, KillRoundOneDeliversInitializeSendsThenSilences) {
  // kill_round = 1 is the earliest legal kill: the node completes
  // initialize (round 0) and its round-0 broadcasts DELIVER at round 1,
  // but it is dead before its first process_round send and never
  // receives anything.
  const auto wg = WeightedGraph::uniform(gen::cycle(6));
  fault::FaultPlan plan;
  plan.kills = {{0, 1}};
  fault::FaultyNetwork net(wg, {}, plan);
  EXPECT_FALSE(net.alive(0));
  EXPECT_TRUE(net.alive(1));
  EXPECT_EQ(net.killed_nodes(), NodeSet{0});
  KillProbe probe(3);
  net.run(probe, 10);
  // Round 1: every node hears both neighbors — node 0's initialize
  // sends made it out before the kill took effect.
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(probe.heard_[1][v], 2);
  // From round 2 on, node 0's neighbors hear only their live neighbor.
  EXPECT_EQ(probe.heard_[2][1], 1);
  EXPECT_EQ(probe.heard_[2][5], 1);
  EXPECT_EQ(probe.heard_[3][1], 1);
  // The dead node itself hears nothing at any round >= 1.
  for (std::size_t r = 1; r < probe.heard_.size(); ++r)
    EXPECT_EQ(probe.heard_[r][0], 0) << "dead node heard at round " << r;
}

// -------------------------------------------------- repair semantics

TEST(Repair, UncoveredSurvivorsRecoverWhenTheirUniqueDominatorDies) {
  // Path 0-1-2 dominated by {1} alone; node 1 is killed, leaving both
  // leaves uncovered with no live neighbor at all — each must elect
  // itself. The repaired set is exactly the two survivors.
  const auto wg =
      WeightedGraph::uniform(Graph::from_edges(3, {{0, 1}, {1, 2}}));
  fault::FaultPlan plan;
  plan.kills = {{1, 1}};
  fault::FaultyNetwork net(wg, {}, plan);
  const RepairOutcome out = run_repair(net, {1});
  EXPECT_EQ(out.repaired_set, (NodeSet{0, 2}));
  EXPECT_EQ(out.repaired_nodes, 2);
  EXPECT_EQ(out.post_weight, 2);
  EXPECT_GT(out.repair_rounds, 0);
  EXPECT_LE(out.repair_rounds, 6);  // the protocol is O(1): 5 stages

  // The surviving-subgraph oracle agrees: {0, 2} dominates the alive
  // subgraph (and is optimal on it), while the dead original set does
  // not.
  const harness::CorpusInstance inst{"path3", wg, /*alpha=*/1,
                                     /*forest=*/true, /*unit_weights=*/true,
                                     /*family=*/""};
  const std::vector<std::uint8_t> alive = {1, 0, 1};
  const harness::SolverInfo& info = harness::solver("det+repair");
  harness::OracleOptions opts;
  opts.alive = &alive;

  MdsResult repaired;
  repaired.dominating_set = out.repaired_set;
  repaired.weight = out.post_weight;
  const auto ok = harness::check_solver_result(info, {}, inst, repaired, opts);
  EXPECT_TRUE(ok.ok) << ok.failure;
  EXPECT_DOUBLE_EQ(ok.opt, 2.0);
  EXPECT_DOUBLE_EQ(ok.ratio, 1.0);

  MdsResult dead;
  dead.dominating_set = {1};
  dead.weight = wg.weight(1);
  const auto bad = harness::check_solver_result(info, {}, inst, dead, opts);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.failure.find("undominated"), std::string::npos)
      << bad.failure;
}

TEST(Repair, RegistryListsOneRepairVariantPerSolver) {
  const auto base = harness::all_solvers();
  const auto repair = harness::repair_solvers();
  ASSERT_EQ(base.size(), repair.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const std::string expect = std::string(base[i].name) + "+repair";
    EXPECT_EQ(repair[i].name, expect);
    EXPECT_NE(harness::find_solver(expect), nullptr);
    // The base list stays pure: exhaustive clean sweeps must not pick
    // up the variants implicitly.
    EXPECT_EQ(base[i].name.find('+'), std::string_view::npos);
  }
  EXPECT_EQ(harness::find_solver("det+repair"), &repair.front());
  EXPECT_EQ(harness::find_solver("nope+repair"), nullptr);
}

// --------------------------------------- repair under the scenario axis

TEST(Repair, ScenarioRowsAreDeterministicAndPassTheSurvivingOracle) {
  const int wide = test_thread_width();
  const auto corpus = harness::small_corpus(13);
  const auto& inst = corpus.front();

  harness::ScenarioFault kills;
  kills.label = "kills";
  kills.spec.kill_prob = 0.3;
  kills.spec.kill_round = 2;
  const std::vector<std::uint8_t> alive =
      fault::alive_mask(inst.wg.graph(), kills.spec);
  std::size_t dead = 0;
  for (const std::uint8_t a : alive) dead += (a == 0);
  ASSERT_GT(dead, 0u) << "kill_prob too low for this corpus seed — the "
                         "sweep would test nothing";
  ASSERT_LT(dead, alive.size());

  harness::ScenarioSpec spec;
  spec.solvers = {{"det+repair", std::nullopt, ""},
                  {"greedy-threshold+repair", std::nullopt, ""}};
  spec.thread_widths = {1, wide};
  spec.shard_counts = {1, 2, 4};
  spec.fault_levels = {kills};
  spec.tolerate_failures = true;
  spec.base_config.round_limit = 400;
  const std::vector<const harness::CorpusInstance*> one = {&inst};
  const auto rows = harness::run_scenario(spec, one);
  ASSERT_EQ(rows.size(), 12u);  // 2 solvers x 2 widths x 3 shard counts
  EXPECT_TRUE(harness::all_identical(rows));

  harness::OracleOptions opts;
  opts.alive = &alive;
  for (const auto& row : rows) {
    // The whole point of the variant: the repaired result survives the
    // kill schedule instead of dying with it.
    EXPECT_FALSE(row.failed) << row.solver;
    EXPECT_GT(row.result.repair_rounds, 0) << row.solver;
    EXPECT_LE(row.result.repair_rounds, 6) << row.solver;
    EXPECT_EQ(row.result.post_repair_weight, row.result.weight) << row.solver;
    const harness::SolverInfo& info = harness::solver(row.solver);
    const auto rep = harness::check_solver_result(
        info, harness::params_for(info, inst), inst, row.result, opts);
    EXPECT_TRUE(rep.ok) << row.solver << " at threads=" << row.threads
                        << " shards=" << row.shards << ": " << rep.failure;
  }

  // The v5 repair columns and round-limit flag ride in the JSON rows.
  std::ostringstream os;
  harness::write_scenario_json(os, rows);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"hit_round_limit\": "), std::string::npos);
  EXPECT_NE(json.find("\"repair_rounds\": "), std::string::npos);
  EXPECT_NE(json.find("\"repaired_nodes\": "), std::string::npos);
  EXPECT_NE(json.find("\"post_repair_weight\": "), std::string::npos);
}

// ------------------------------------------------- spec/plan validation

TEST(FaultValidation, RejectsOutOfRangeSpecsAndPlans) {
  const auto g = gen::cycle(6);
  {
    fault::FaultSpec bad;
    bad.drop_prob = -0.1;
    EXPECT_THROW(fault::make_fault_plan(g, bad), CheckError);
  }
  {
    fault::FaultSpec bad;
    bad.duplicate_prob = 1.5;
    EXPECT_THROW(fault::make_fault_plan(g, bad), CheckError);
  }
  {
    fault::FaultSpec bad;
    bad.delay_prob = 0.5;
    bad.max_delay_rounds = -1;
    EXPECT_THROW(fault::make_fault_plan(g, bad), CheckError);
  }
  {
    // kill_round 0 would let a node die before its initialize sends
    // leave — a state no clean run can reach; rejected up front.
    fault::FaultSpec bad;
    bad.kill_prob = 0.1;
    bad.kill_round = 0;
    EXPECT_THROW(fault::make_fault_plan(g, bad), CheckError);
  }
  {
    fault::FaultPlan plan;
    plan.kills = {{0, 0}};
    EXPECT_THROW(fault::validate_fault_plan(g, plan), CheckError);
  }
  {
    fault::FaultPlan plan;
    plan.kills = {{99, 2}};
    EXPECT_THROW(fault::validate_fault_plan(g, plan), CheckError);
  }
}

}  // namespace
}  // namespace arbods::resilience
