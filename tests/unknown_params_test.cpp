// Tests for Remarks 4.4 (unknown Delta) and 4.5 (unknown alpha).
#include <gtest/gtest.h>

#include <cmath>

#include "core/solvers.hpp"
#include "core/unknown_params.hpp"
#include "protocol/runner.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/verify.hpp"

namespace arbods {
namespace {

// --------------------------------------------------------------- remark 4.4

class UnknownDeltaTest
    : public ::testing::TestWithParam<std::pair<NodeId, double>> {};

TEST_P(UnknownDeltaTest, ValidWithTheorem11Certificate) {
  auto [alpha, eps] = GetParam();
  Rng rng(500 + alpha);
  Graph g = gen::k_tree_union(250, alpha, rng);
  auto w = gen::uniform_weights(250, 64, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  MdsResult res = solve_mds_unknown_delta(wg, alpha, eps);
  res.validate(wg, 1e-5);
  // The remark keeps the (2a+1)(1+eps) guarantee; check it through the
  // certificate the algorithm itself produces.
  const double bound = (2.0 * alpha + 1.0) * (1.0 + eps);
  EXPECT_LE(res.certified_ratio(), bound * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    AlphaEps, UnknownDeltaTest,
    ::testing::Values(std::pair<NodeId, double>{1, 0.2},
                      std::pair<NodeId, double>{2, 0.5},
                      std::pair<NodeId, double>{3, 0.3},
                      std::pair<NodeId, double>{4, 0.7}));

TEST(UnknownDelta, RoundsScaleWithLogDeltaOverEps) {
  // Star: Delta = n-1. Rounds should stay O(log(Delta)/eps) + O(1).
  auto wg = WeightedGraph::uniform(gen::star(1000));
  MdsResult res = solve_mds_unknown_delta(wg, 1, 0.5);
  res.validate(wg, 1e-5);
  const double bound = std::log(1000.0) / std::log1p(0.5);
  EXPECT_LE(static_cast<double>(res.iterations), bound + 3.0);
  EXPECT_LE(res.stats.rounds, 3 * res.iterations + 5);
}

TEST(UnknownDelta, IsolatedNodesSelfCompleteImmediately) {
  WeightedGraph wg(Graph(4), {2, 3, 4, 5});
  MdsResult res = solve_mds_unknown_delta(wg, 1, 0.5);
  res.validate(wg, 1e-5);
  EXPECT_EQ(res.dominating_set.size(), 4u);
  EXPECT_LE(res.iterations, 2);
}

TEST(UnknownDelta, MatchesKnownDeltaQualityApproximately) {
  Rng rng(501);
  Graph g = gen::barabasi_albert(300, 2, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  MdsResult unknown = solve_mds_unknown_delta(wg, 2, 0.3);
  MdsResult known = solve_mds_deterministic(wg, 2, 0.3);
  unknown.validate(wg, 1e-5);
  // Same guarantee: neither should be more than the bound apart.
  const double bound = 5.0 * 1.3;
  EXPECT_LE(unknown.certified_ratio(), bound * (1 + 1e-6));
  EXPECT_LE(known.certified_ratio(), bound * (1 + 1e-6));
}

// --------------------------------------------------------------- remark 4.5

TEST(UnknownAlpha, ValidWithDoublingOrientation) {
  Rng rng(502);
  Graph g = gen::k_tree_union(200, 2, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  MdsResult res = solve_mds_unknown_alpha(wg, 0.5);
  res.validate(wg, 1e-5);
  EXPECT_GT(res.packing_lower_bound, 0.0);
}

TEST(UnknownAlpha, ValidWithKnownAlphaOrientation) {
  Rng rng(503);
  Graph g = gen::k_tree_union(200, 3, rng);
  auto w = gen::uniform_weights(200, 32, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  MdsResult res =
      solve_mds_unknown_alpha(wg, 0.5, {}, /*be_knows_alpha=*/true, 3);
  res.validate(wg, 1e-5);
  // Remark 4.5 bound: (2*hat_alpha+1)(1+eps) with hat_alpha <= (2+eps)*3;
  // certified ratio must respect the analytic bound with slack.
  const double hat_alpha_max = (2.0 + 0.5) * 3.0;
  EXPECT_LE(res.certified_ratio(),
            (2.0 * hat_alpha_max + 1.0) * 1.5 * (1 + 1e-6));
}

TEST(UnknownAlpha, TreeInstanceStaysCheap) {
  Rng rng(504);
  Graph g = gen::random_tree_prufer(300, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  MdsResult res = solve_mds_unknown_alpha(wg, 0.5);
  res.validate(wg, 1e-5);
  // alpha-hat <= (2+eps)*2 on trees with the doubling prologue, so the
  // certificate stays below (2*5+1)(1+eps).
  EXPECT_LE(res.certified_ratio(), 11.0 * 1.5 * (1 + 1e-6));
}

TEST(UnknownAlpha, RoundsIncludeOrientationPrologue) {
  Rng rng(505);
  Graph g = gen::k_tree_union(150, 2, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  Network net(wg);
  // Remark 4.5 as a two-phase pipeline: the orientation prologue publishes
  // per-node out-degrees, the adaptive loop binds against them.
  auto orientation = BarenboimElkinOrientation::with_unknown_alpha(0.5);
  AdaptiveMdsParams params;
  params.mode = AdaptiveMode::kUnknownAlpha;
  params.eps = 0.5;
  AdaptiveMds algo(params);
  RunStats stats = protocol::run_protocol(net, {&orientation, &algo});
  ASSERT_FALSE(stats.hit_round_limit);
  ASSERT_EQ(stats.phases.size(), 2u);
  EXPECT_EQ(stats.phases[0].name, "be_orientation");
  EXPECT_EQ(stats.phases[1].name, "adaptive_mds");
  EXPECT_GT(stats.phases[0].rounds, 0);  // the prologue paid real rounds
  EXPECT_EQ(stats.phases[0].rounds + stats.phases[1].rounds, stats.rounds);
  EXPECT_GT(algo.iterations(), 0);
  // Per-node lambdas were derived from local orientation estimates.
  for (NodeId v = 0; v < wg.num_nodes(); ++v)
    EXPECT_GT(algo.lambda_per_node()[v], 0.0);
}

TEST(UnknownAlpha, AdaptivePhaseWithoutPrologueIsRejected) {
  auto wg = WeightedGraph::uniform(gen::star(8));
  Network net(wg);
  AdaptiveMdsParams params;
  params.mode = AdaptiveMode::kUnknownAlpha;
  params.eps = 0.5;
  AdaptiveMds algo(params);
  EXPECT_THROW(net.run(algo, 100), CheckError);
}

TEST(UnknownAlpha, EmptyAndSingletonGraphs) {
  auto empty = WeightedGraph::uniform(Graph(0));
  EXPECT_TRUE(solve_mds_unknown_alpha(empty, 0.5).dominating_set.empty());
  auto single = WeightedGraph::uniform(Graph(1));
  MdsResult res = solve_mds_unknown_alpha(single, 0.5);
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(UnknownDelta, EmptyAndSingletonGraphs) {
  auto empty = WeightedGraph::uniform(Graph(0));
  EXPECT_TRUE(solve_mds_unknown_delta(empty, 1, 0.5).dominating_set.empty());
  auto single = WeightedGraph::uniform(Graph(1));
  MdsResult res = solve_mds_unknown_delta(single, 1, 0.5);
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(AdaptiveMds, RejectsBadEps) {
  AdaptiveMdsParams p;
  p.eps = 0.0;
  EXPECT_THROW(AdaptiveMds{p}, CheckError);
}

}  // namespace
}  // namespace arbods
