// Protocol-engine tests: PhaseContext handoff semantics, ProtocolRunner
// composition, Network reuse determinism (a run on a reset_for_reuse()
// Network is byte-identical to a run on a fresh Network, at 1 and 8
// threads), and the per-phase statistics breakdown (the sum over
// RunStats::phases equals the whole-run totals for every registry solver
// on the small corpus).
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "core/deterministic_mds.hpp"
#include "core/solvers.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"
#include "protocol/runner.hpp"

namespace arbods {
namespace {

int test_thread_width() {
  if (const char* env = std::getenv("ARBODS_TEST_THREADS")) {
    const int w = std::atoi(env);
    if (w >= 1) return w;
  }
  return 8;
}

::testing::AssertionResult results_identical(const MdsResult& a,
                                             const MdsResult& b) {
  if (a.dominating_set != b.dominating_set)
    return ::testing::AssertionFailure() << "dominating sets differ";
  if (a.weight != b.weight)
    return ::testing::AssertionFailure() << "weights differ";
  if (a.packing != b.packing)  // exact double comparison, intentionally
    return ::testing::AssertionFailure() << "packing values differ";
  if (a.iterations != b.iterations)
    return ::testing::AssertionFailure() << "iterations differ";
  if (!(a.stats == b.stats))  // includes the per-phase breakdown
    return ::testing::AssertionFailure()
           << "RunStats differ: rounds " << a.stats.rounds << "/"
           << b.stats.rounds << ", messages " << a.stats.messages << "/"
           << b.stats.messages << ", phases " << a.stats.phases.size() << "/"
           << b.stats.phases.size();
  // Catch-all via MdsResult::operator== so fields added later cannot
  // silently escape the audit.
  if (!(a == b))
    return ::testing::AssertionFailure() << "MdsResults differ";
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------------------ PhaseContext

struct IntSlot {
  int value = 0;
};
struct StringSlot {
  std::string value;
};

TEST(PhaseContext, PutFindGetShareAndReplace) {
  protocol::PhaseContext ctx;
  EXPECT_EQ(ctx.find<IntSlot>(), nullptr);
  EXPECT_THROW(ctx.get<IntSlot>(), CheckError);

  ctx.put(IntSlot{41});
  ctx.put(StringSlot{"handoff"});
  EXPECT_EQ(ctx.size(), 2u);
  EXPECT_EQ(ctx.get<IntSlot>().value, 41);
  EXPECT_EQ(ctx.get<StringSlot>().value, "handoff");

  // One slot per type: a second put replaces.
  ctx.put(IntSlot{42});
  EXPECT_EQ(ctx.size(), 2u);
  EXPECT_EQ(ctx.get<IntSlot>().value, 42);

  // share() keeps the value alive past clear().
  std::shared_ptr<IntSlot> kept = ctx.share<IntSlot>();
  ctx.clear();
  EXPECT_EQ(ctx.size(), 0u);
  EXPECT_EQ(ctx.find<IntSlot>(), nullptr);
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->value, 42);
}

// -------------------------------------------------- composition structure

TEST(ProtocolRunner, ComposedSolversReportTheirPhaseLists) {
  Rng rng(31);
  auto wg = WeightedGraph::uniform(gen::k_tree_union(80, 2, rng));

  const MdsResult rand = solve_mds_randomized(wg, 2, 2);
  ASSERT_EQ(rand.stats.phases.size(), 2u);
  EXPECT_EQ(rand.stats.phases[0].name, "partial_ds");
  EXPECT_EQ(rand.stats.phases[1].name, "extension");

  const MdsResult ua = solve_mds_unknown_alpha(wg, 0.4);
  ASSERT_EQ(ua.stats.phases.size(), 2u);
  EXPECT_EQ(ua.stats.phases[0].name, "be_orientation");
  EXPECT_EQ(ua.stats.phases[1].name, "adaptive_mds");

  const MdsResult ud = solve_mds_unknown_delta(wg, 2, 0.4);
  ASSERT_EQ(ud.stats.phases.size(), 1u);
  EXPECT_EQ(ud.stats.phases[0].name, "adaptive_mds");
}

TEST(ProtocolRunner, PhaseRoundLimitStopsThePipeline) {
  Rng rng(32);
  auto wg = WeightedGraph::uniform(gen::k_tree_union(60, 2, rng));
  Network net(wg);
  PartialDominatingSet partial({0.25, theorem11_lambda(1, 0.25), 1});
  CompletionPhase completion(CompletionMode::kMinWeightNeighbor);
  protocol::ProtocolRunner runner(net);
  const RunStats stats = runner.run({&partial, &completion}, /*max=*/1);
  EXPECT_TRUE(stats.hit_round_limit);
  ASSERT_EQ(stats.phases.size(), 1u);  // the pipeline stopped at phase 1
  EXPECT_TRUE(stats.phases[0].hit_round_limit);
  EXPECT_EQ(stats.phases[0].rounds, 1);
}

// ------------------------------------------------- per-phase stats sums

TEST(PhaseStats, SumOverPhasesEqualsRunTotalsForEveryRegistrySolver) {
  const auto corpus = harness::small_corpus(7);
  for (const auto& inst : corpus) {
    for (const harness::SolverInfo& info : harness::all_solvers()) {
      if (!harness::solver_applicable(info, inst)) continue;
      const harness::SolverParams params = harness::params_for(info, inst);
      const MdsResult res = harness::run_solver(info.name, inst.wg, params);
      ASSERT_FALSE(res.stats.phases.empty())
          << info.name << " on " << inst.name;
      std::int64_t rounds = 0, messages = 0, bits = 0;
      int max_bits = 0;
      for (const PhaseStats& phase : res.stats.phases) {
        EXPECT_FALSE(phase.name.empty());
        rounds += phase.rounds;
        messages += phase.messages;
        bits += phase.total_bits;
        max_bits = std::max(max_bits, phase.max_message_bits);
      }
      EXPECT_EQ(rounds, res.stats.rounds) << info.name << " on " << inst.name;
      EXPECT_EQ(messages, res.stats.messages)
          << info.name << " on " << inst.name;
      EXPECT_EQ(bits, res.stats.total_bits)
          << info.name << " on " << inst.name;
      EXPECT_EQ(max_bits, res.stats.max_message_bits)
          << info.name << " on " << inst.name;
    }
  }
}

// --------------------------------------------------- reuse determinism

// A dirty Network (arbitrary previous runs, grown scratch, advanced RNG
// streams) must reproduce a fresh Network's run bit-for-bit: set,
// certificate, iteration counts, statistics including the per-phase
// breakdown. Exercised at 1 thread and the CI width.
TEST(NetworkReuse, RunAfterReuseIsByteIdenticalToFreshNetwork) {
  Rng rng(33);
  auto wg = WeightedGraph::uniform(gen::k_tree_union(120, 2, rng));
  const char* dirtying[] = {"greedy-election", "det"};
  const char* solvers[] = {"det", "randomized", "unknown-alpha",
                           "greedy-threshold", "general"};
  for (const int threads : {1, test_thread_width()}) {
    CongestConfig cfg;
    cfg.threads = threads;
    cfg.seed = 0xfeed0001ULL;

    Network reused(wg, cfg);
    // Dirty the Network: unrelated runs grow scratch, advance RNG
    // streams, and leave per-phase stats behind.
    harness::SolverParams params;
    params.alpha = 2;
    for (const char* name : dirtying)
      harness::run_solver_on(name, reused, params);

    for (const char* name : solvers) {
      Network fresh(wg, cfg);
      const MdsResult want = harness::run_solver_on(name, fresh, params);
      const MdsResult got = harness::run_solver_on(name, reused, params);
      EXPECT_TRUE(results_identical(want, got))
          << name << " at " << threads << " threads";
    }
  }
}

TEST(NetworkReuse, ResetForReuseClearsObservableState) {
  Rng rng(34);
  auto wg = WeightedGraph::uniform(gen::k_tree_union(50, 2, rng));
  Network net(wg);
  harness::SolverParams params;
  params.alpha = 2;
  harness::run_solver_on("det", net, params);
  EXPECT_GT(net.stats().rounds, 0);
  EXPECT_FALSE(net.stats().phases.empty());

  net.reset_for_reuse();
  EXPECT_EQ(net.stats(), RunStats{});
  EXPECT_EQ(net.current_round(), 0);
  EXPECT_TRUE(net.active_nodes().empty());
}

// The RNG contract: every phase (and every run) starts from freshly
// seeded per-node streams, so a composed pipeline matches the old
// one-Network-per-phase drivers and reruns are reproducible.
TEST(NetworkReuse, RerunsOfARandomizedSolverAreIdentical) {
  Rng rng(35);
  auto wg = WeightedGraph::uniform(gen::barabasi_albert(150, 2, rng));
  Network net(wg);
  const MdsResult a = solve_mds_general(net, 2);
  const MdsResult b = solve_mds_general(net, 2);
  EXPECT_TRUE(results_identical(a, b));
}

}  // namespace
}  // namespace arbods
