// Tests for core decomposition, orientations, Dinic max-flow,
// pseudoarboricity, and the Barenboim–Elkin distributed orientation.
#include <gtest/gtest.h>

#include <cmath>

#include "arboricity/barenboim_elkin.hpp"
#include "arboricity/core_decomposition.hpp"
#include "arboricity/dinic.hpp"
#include "arboricity/orientation.hpp"
#include "arboricity/pseudoarboricity.hpp"
#include "common/check.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "graph/stats.hpp"

namespace arbods {
namespace {

// ---------------------------------------------------------------- peeling

TEST(CoreDecomposition, KnownDegeneracies) {
  EXPECT_EQ(core_decomposition(gen::path(10)).degeneracy, 1u);
  EXPECT_EQ(core_decomposition(gen::cycle(10)).degeneracy, 2u);
  EXPECT_EQ(core_decomposition(gen::clique(7)).degeneracy, 6u);
  EXPECT_EQ(core_decomposition(gen::grid(6, 6)).degeneracy, 2u);
  EXPECT_EQ(core_decomposition(Graph(4)).degeneracy, 0u);
}

TEST(CoreDecomposition, OrderIsAPermutation) {
  Rng rng(1);
  Graph g = gen::k_tree_union(100, 2, rng);
  auto cd = core_decomposition(g);
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId v : cd.order) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(seen[v]);
    EXPECT_EQ(cd.order[cd.position[v]], v);
  }
}

TEST(CoreDecomposition, CoreNumbersMonotoneAlongOrder) {
  Rng rng(2);
  Graph g = gen::barabasi_albert(200, 3, rng);
  auto cd = core_decomposition(g);
  for (std::size_t i = 1; i < cd.order.size(); ++i)
    EXPECT_LE(cd.core[cd.order[i - 1]], cd.core[cd.order[i]]);
}

TEST(CoreDecomposition, CliqueCoreNumbers) {
  auto cd = core_decomposition(gen::clique(5));
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(cd.core[v], 4u);
}

TEST(ArboricityBounds, BracketsTruth) {
  // Trees: exactly 1; cycles: 1 <= alpha=... cycle arboricity is 2 but
  // density bound gives ceil(n/(n-1)) = 2 only for small n; accept bracket.
  auto tb = arboricity_bounds(gen::path(50));
  EXPECT_EQ(tb.lower, 1u);
  EXPECT_EQ(tb.upper, 1u);
  auto kb = arboricity_bounds(gen::clique(8));  // arboricity = 4
  EXPECT_LE(kb.lower, 4u);
  EXPECT_GE(kb.upper, 4u);
  EXPECT_EQ(kb.lower, 4u);  // density bound is tight on cliques
}

// ------------------------------------------------------------- orientation

TEST(Orientation, DegeneracyOrientationIsValidAndBounded) {
  Rng rng(3);
  Graph g = gen::k_tree_union(150, 3, rng);
  Orientation o = degeneracy_orientation(g);
  o.validate();
  EXPECT_LE(o.max_out_degree(), core_decomposition(g).degeneracy);
}

TEST(Orientation, ValidateCatchesDoubleOrientation) {
  Graph g = gen::path(2);
  std::vector<std::vector<NodeId>> out{{1}, {0}};
  Orientation o(g, std::move(out));
  EXPECT_THROW(o.validate(), CheckError);
}

TEST(Orientation, ValidateCatchesMissingEdge) {
  Graph g = gen::path(3);
  std::vector<std::vector<NodeId>> out{{1}, {}, {}};
  Orientation o(g, std::move(out));
  EXPECT_THROW(o.validate(), CheckError);
}

TEST(Orientation, InNeighborsAreConsistent) {
  Graph g = gen::cycle(6);
  Orientation o = degeneracy_orientation(g);
  auto in = o.in_neighbors();
  std::size_t arcs = 0;
  for (NodeId v = 0; v < 6; ++v) arcs += in[v].size();
  EXPECT_EQ(arcs, g.num_edges());
}

TEST(Orientation, PseudoforestLayersPartitionEdges) {
  Rng rng(4);
  Graph g = gen::k_tree_union(80, 3, rng);
  Orientation o = optimal_orientation(g);
  auto layers = o.pseudoforest_layers();
  std::size_t total = 0;
  for (const auto& layer : layers) {
    total += layer.size();
    // Out-degree <= 1 within a layer: tails are distinct.
    std::vector<NodeId> tails;
    for (const Edge& e : layer) tails.push_back(e.u);
    std::sort(tails.begin(), tails.end());
    EXPECT_TRUE(std::adjacent_find(tails.begin(), tails.end()) == tails.end());
  }
  EXPECT_EQ(total, g.num_edges());
}

// ------------------------------------------------------------------- dinic

TEST(Dinic, UnitPath) {
  Dinic d(3);
  d.add_edge(0, 1, 1);
  d.add_edge(1, 2, 1);
  EXPECT_EQ(d.max_flow(0, 2), 1);
}

TEST(Dinic, ParallelPathsSumCapacity) {
  Dinic d(4);
  d.add_edge(0, 1, 3);
  d.add_edge(1, 3, 3);
  d.add_edge(0, 2, 2);
  d.add_edge(2, 3, 2);
  EXPECT_EQ(d.max_flow(0, 3), 5);
}

TEST(Dinic, BottleneckRespected) {
  Dinic d(4);
  d.add_edge(0, 1, 10);
  d.add_edge(1, 2, 1);
  d.add_edge(2, 3, 10);
  EXPECT_EQ(d.max_flow(0, 3), 1);
}

TEST(Dinic, ClassicCrossNetwork) {
  // The classic 4-node diamond with a cross edge.
  Dinic d(4);
  d.add_edge(0, 1, 10);
  d.add_edge(0, 2, 10);
  d.add_edge(1, 2, 1);
  d.add_edge(1, 3, 10);
  d.add_edge(2, 3, 10);
  EXPECT_EQ(d.max_flow(0, 3), 20);
}

TEST(Dinic, FlowOnReportsPerEdgeFlow) {
  Dinic d(3);
  int e01 = d.add_edge(0, 1, 5);
  int e12 = d.add_edge(1, 2, 3);
  EXPECT_EQ(d.max_flow(0, 2), 3);
  EXPECT_EQ(d.flow_on(e01), 3);
  EXPECT_EQ(d.flow_on(e12), 3);
}

TEST(Dinic, BipartiteMatchingViaFlow) {
  // K_{3,3} minus a perfect matching still has a perfect matching.
  Dinic d(8);  // 0 = s, 1..3 left, 4..6 right, 7 = t
  for (int l = 1; l <= 3; ++l) d.add_edge(0, l, 1);
  for (int r = 4; r <= 6; ++r) d.add_edge(r, 7, 1);
  for (int l = 1; l <= 3; ++l)
    for (int r = 4; r <= 6; ++r)
      if (r - 3 != l) d.add_edge(l, r, 1);
  EXPECT_EQ(d.max_flow(0, 7), 3);
}

// --------------------------------------------------------- pseudoarboricity

TEST(Pseudoarboricity, KnownValues) {
  EXPECT_EQ(pseudoarboricity(gen::path(20)), 1u);
  EXPECT_EQ(pseudoarboricity(gen::cycle(20)), 1u);  // one cycle: out-deg 1
  EXPECT_EQ(pseudoarboricity(gen::grid(5, 5)), 2u);
  EXPECT_EQ(pseudoarboricity(Graph(5)), 0u);
  // K5: m/n = 10/5 = 2.
  EXPECT_EQ(pseudoarboricity(gen::clique(5)), 2u);
  // K4: ceil(6/4) = 2.
  EXPECT_EQ(pseudoarboricity(gen::clique(4)), 2u);
}

TEST(Pseudoarboricity, OrientationAchievesOptimum) {
  Rng rng(5);
  Graph g = gen::k_tree_union(60, 3, rng);
  NodeId p = pseudoarboricity(g);
  Orientation o = min_out_degree_orientation(g, p);
  o.validate();
  EXPECT_LE(o.max_out_degree(), p);
  EXPECT_FALSE(orientable_with_out_degree(g, p - 1));
}

TEST(Pseudoarboricity, MatchesDensityOnCliques) {
  for (NodeId n : {3u, 4u, 5u, 6u, 7u, 8u}) {
    const NodeId m = n * (n - 1) / 2;
    EXPECT_EQ(pseudoarboricity(gen::clique(n)), (m + n - 1) / n) << "n=" << n;
  }
}

// --------------------------------------------------------- barenboim-elkin

class BeTest : public ::testing::TestWithParam<std::pair<NodeId, double>> {};

TEST_P(BeTest, OrientationWithinBound) {
  auto [alpha, eps] = GetParam();
  Rng rng(6 + alpha);
  Graph g = gen::k_tree_union(300, alpha, rng);
  auto res = barenboim_elkin_orient(g, alpha, eps);
  res.orientation.validate();
  EXPECT_LE(res.orientation.max_out_degree(),
            static_cast<NodeId>(std::floor((2.0 + eps) * alpha)));
  // Round bound: O(log n / log((2+eps)/2)) phases.
  const double phases_bound =
      2.0 + std::log(301.0) / std::log((2.0 + eps) / 2.0);
  EXPECT_LE(static_cast<double>(res.rounds), phases_bound + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaEps, BeTest,
    ::testing::Values(std::pair<NodeId, double>{1, 0.5},
                      std::pair<NodeId, double>{2, 0.5},
                      std::pair<NodeId, double>{3, 1.0},
                      std::pair<NodeId, double>{2, 0.25}));

TEST(BarenboimElkin, LevelsAreSet) {
  Rng rng(7);
  Graph g = gen::random_tree_prufer(50, rng);
  auto res = barenboim_elkin_orient(g, 1, 1.0);
  for (auto level : res.levels) EXPECT_GE(level, 0);
}

TEST(BarenboimElkin, UnknownAlphaDoublingConverges) {
  Rng rng(8);
  Graph g = gen::k_tree_union(200, 4, rng);
  WeightedGraph wg = WeightedGraph::uniform(Graph(g));
  Network net(wg);
  auto algo = BarenboimElkinOrientation::with_unknown_alpha(1.0);
  RunStats stats = net.run(algo, 100000);
  EXPECT_FALSE(stats.hit_round_limit);
  Orientation o = algo.extract_orientation(g);
  o.validate();
  // Final guess <= 2*alpha => out-degree <= (2+eps)*2*alpha = 24.
  EXPECT_LE(algo.final_guess(), 8u);
  EXPECT_LE(o.max_out_degree(), 24u);
}

TEST(BarenboimElkin, StarRetiresInOnePhaseWithLargePromise) {
  Graph g = gen::star(100);
  auto res = barenboim_elkin_orient(g, 50, 1.0);
  // Threshold 150 >= every degree: everyone retires in phase 1.
  EXPECT_EQ(res.rounds, 1);
}

TEST(BarenboimElkin, LocalOutDegreeEstimates) {
  Rng rng(9);
  Graph g = gen::k_tree_union(100, 2, rng);
  WeightedGraph wg = WeightedGraph::uniform(Graph(g));
  Network net(wg);
  BarenboimElkinOrientation algo(2, 0.5);
  net.run(algo, 100000);
  auto est = algo.local_out_degree(g);
  Orientation o = algo.extract_orientation(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_GE(est[v], o.out_degree(v));
}

}  // namespace
}  // namespace arbods
