// The solver-registry harness: name resolution, parameter-schema
// rejection, full corpus x solver oracle sweep, and the CONGEST
// message-cap enforcement regression for every registered solver.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/trees.hpp"
#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"

namespace arbods::harness {
namespace {

WeightedGraph small_instance() {
  Rng rng(42);
  return WeightedGraph::uniform(gen::k_tree_union(24, 2, rng));
}

// ------------------------------------------------------------- resolution

TEST(Registry, EveryExpectedNameResolvesAndIsUnique) {
  const std::vector<std::string_view> expected = {
      "det",           "unweighted",    "randomized",
      "general",       "unknown-delta", "unknown-alpha",
      "tree",          "greedy-threshold", "greedy-election"};
  EXPECT_EQ(all_solvers().size(), expected.size());
  std::set<std::string_view> seen;
  for (std::string_view name : expected) {
    const SolverInfo* info = find_solver(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->theorem.empty());
    EXPECT_FALSE(info->guarantee.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate " << name;
  }
  EXPECT_EQ(solver_names().size(), expected.size());
}

TEST(Registry, UnknownNamesAreRejectedWithTheKnownList) {
  EXPECT_EQ(find_solver("nope"), nullptr);
  try {
    solver("nope");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown solver"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("det"), std::string::npos);
  }
  WeightedGraph wg = small_instance();
  EXPECT_THROW(run_solver("does-not-exist", wg), CheckError);
}

// ------------------------------------------------------------ bad params

TEST(Registry, BadParamsAreRejectedPerSchema) {
  WeightedGraph wg = small_instance();
  SolverParams p;

  p.alpha = 0;
  EXPECT_THROW(run_solver("det", wg, p), CheckError);
  p = {};
  p.eps = 0.0;
  EXPECT_THROW(run_solver("det", wg, p), CheckError);
  p.eps = 1.5;
  EXPECT_THROW(run_solver("unknown-alpha", wg, p), CheckError);
  p = {};
  p.t = 0;
  EXPECT_THROW(run_solver("randomized", wg, p), CheckError);
  p = {};
  p.k = 0;
  EXPECT_THROW(run_solver("general", wg, p), CheckError);
  p = {};
  p.threads = -2;  // threads is validated for every solver (-1 = inherit)
  EXPECT_THROW(run_solver("det", wg, p), CheckError);
  EXPECT_THROW(run_solver("greedy-election", wg, p), CheckError);
}

TEST(Registry, SchemaOnlyGuardsDeclaredFields) {
  // A solver must ignore out-of-range values of fields it does not read.
  WeightedGraph wg = small_instance();
  SolverParams p;
  p.alpha = 2;
  p.eps = -7.0;  // not in randomized's schema
  p.t = 1;
  EXPECT_NO_THROW(run_solver("randomized", wg, p));
}

TEST(Registry, TreeSolverRejectsNonForests) {
  WeightedGraph wg = small_instance();  // union of 2 trees: has cycles
  EXPECT_THROW(run_solver("tree", wg), CheckError);
}

// -------------------------------------------------- corpus x solver sweep

TEST(Harness, EveryRegisteredSolverPassesTheOracleOnTheSmallCorpus) {
  const auto corpus = small_corpus(7);
  ASSERT_GE(corpus.size(), 10u);
  for (const auto& inst : corpus) {
    for (const SolverInfo& info : all_solvers()) {
      if (!solver_applicable(info, inst)) continue;
      const SolverParams params = params_for(info, inst);
      const MdsResult res = run_solver(info.name, inst.wg, params);
      const OracleReport rep = check_solver_result(info, params, inst, res);
      EXPECT_TRUE(rep.ok) << info.name << " on " << inst.name << ": "
                          << rep.failure;
    }
  }
}

TEST(Harness, OracleComputesOptAndRatioOnSmallInstances) {
  const auto corpus = small_corpus(11);
  const auto& inst = corpus.front();
  const SolverInfo& info = solver("det");
  const SolverParams params = params_for(info, inst);
  const MdsResult res = run_solver(info.name, inst.wg, params);
  const OracleReport rep = check_solver_result(info, params, inst, res);
  ASSERT_TRUE(rep.ok) << rep.failure;
  EXPECT_GT(rep.opt, 0.0);
  EXPECT_GE(rep.ratio, 1.0 - 1e-9);
  EXPECT_LE(rep.ratio, info.approx_bound(inst.wg, params) + 1e-9);
}

TEST(Harness, OracleFlagsAnInvalidSet) {
  const auto corpus = small_corpus(13);
  const auto& inst = corpus.front();
  const SolverInfo& info = solver("det");
  const SolverParams params = params_for(info, inst);
  MdsResult res = run_solver(info.name, inst.wg, params);
  res.dominating_set.clear();  // break it
  res.weight = 0;
  res.packing.clear();
  const OracleReport rep = check_solver_result(info, params, inst, res);
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.failure.empty());
}

// --------------------------------------------- CONGEST cap regression

TEST(Harness, MessageBitCapsAreEnforcedForEverySolver) {
  // With a deliberately tiny cap every solver's very first send must
  // throw: enforcement lives in the Network, not in solver goodwill.
  Rng rng(99);
  WeightedGraph wg = WeightedGraph::uniform(gen::random_tree_prufer(32, rng));
  CongestConfig tiny;
  tiny.max_message_bits_override = 1;
  for (const SolverInfo& info : all_solvers()) {
    SolverParams p;
    p.alpha = 1;
    EXPECT_THROW(run_solver(info.name, wg, p, tiny), CheckError)
        << info.name << " ran to completion under a 1-bit message cap";
  }
}

TEST(Harness, DisablingEnforcementLetsOversizedMessagesThrough) {
  Rng rng(99);
  WeightedGraph wg = WeightedGraph::uniform(gen::random_tree_prufer(32, rng));
  CongestConfig loose;
  loose.max_message_bits_override = 1;
  loose.enforce_message_size = false;
  const MdsResult res = run_solver("det", wg, {}, loose);
  EXPECT_GT(res.stats.max_message_bits, 1);  // observed but not enforced
}

}  // namespace
}  // namespace arbods::harness
