// Fault-injection engine: semantics of each fault class (drop, duplicate,
// delay, reorder, kill) on a hand-built probe protocol, the determinism
// contract for faulty runs (bit-identical across worker-pool widths AND
// shard counts for every registry solver), zero-fault transparency
// (decorated == undecorated, bit for bit), round-limit termination under
// total message loss, per-phase fault-counter consistency, and the
// scenario runner's fault axis / schema-v4 JSON fields.
//
// The wide width honors ARBODS_TEST_THREADS (CI: 8) like the clean
// determinism suite; the shard leg always runs K in {1, 2, 4}.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_network.hpp"
#include "gen/classic.hpp"
#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"
#include "harness/scenario.hpp"
#include "shard/sharded_network.hpp"

namespace arbods::fault {
namespace {

int test_thread_width() {
  if (const char* env = std::getenv("ARBODS_TEST_THREADS")) {
    const int w = std::atoi(env);
    if (w >= 1) return w;
  }
  return 8;
}

::testing::AssertionResult results_identical(const MdsResult& a,
                                             const MdsResult& b) {
  if (a.dominating_set != b.dominating_set)
    return ::testing::AssertionFailure() << "dominating sets differ";
  if (a.weight != b.weight)
    return ::testing::AssertionFailure()
           << "weights differ: " << a.weight << " vs " << b.weight;
  if (a.packing != b.packing)  // exact double comparison, intentionally
    return ::testing::AssertionFailure() << "packing values differ";
  if (a.iterations != b.iterations)
    return ::testing::AssertionFailure()
           << "iterations differ: " << a.iterations << " vs " << b.iterations;
  if (!(a.stats == b.stats))
    return ::testing::AssertionFailure()
           << "RunStats differ: rounds " << a.stats.rounds << "/"
           << b.stats.rounds << ", messages " << a.stats.messages << "/"
           << b.stats.messages << ", dropped " << a.stats.dropped << "/"
           << b.stats.dropped << ", duplicated " << a.stats.duplicated << "/"
           << b.stats.duplicated << ", delayed " << a.stats.delayed << "/"
           << b.stats.delayed << ", killed " << a.stats.killed << "/"
           << b.stats.killed;
  return ::testing::AssertionSuccess();
}

// The moderately hostile adversary the cross-width/cross-shard audit
// runs every registry solver under.
CongestConfig faulty_config() {
  CongestConfig cfg;
  cfg.seed = 0xfa017ULL;
  cfg.fault.drop_prob = 0.05;
  cfg.fault.duplicate_prob = 0.05;
  cfg.fault.delay_prob = 0.3;
  cfg.fault.max_delay_rounds = 3;
  cfg.fault.reorder_prob = 0.2;
  cfg.fault.kill_prob = 0.02;
  cfg.fault.kill_round = 2;
  cfg.round_limit = 300;
  return cfg;
}

// ---------------------------------------------------------------- probe

// Deterministic flood probe: every node broadcasts its id at round 0 and
// (optionally) again during round 1; each round every node records how
// many records arrived and the sum of the sender ids they carried.
class FloodProbe final : public DistributedAlgorithm {
 public:
  explicit FloodProbe(int rounds, bool resend_round1 = false)
      : rounds_(rounds), resend_round1_(resend_round1) {}

  // received_[r][v] = (records, id-sum) delivered to v at round r.
  std::vector<std::vector<std::pair<int, std::int64_t>>> received_;

  void initialize(Network& net) override {
    received_.assign(static_cast<std::size_t>(rounds_) + 1,
                     std::vector<std::pair<int, std::int64_t>>(
                         net.num_nodes(), {0, 0}));
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      net.broadcast(v, Message::tagged(0).add_id(v));
      net.arm(v);
    }
  }

  void process_round(Network& net) override {
    const std::int64_t r = net.current_round();
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      int count = 0;
      std::int64_t sum = 0;
      for (const MessageView m : net.inbox(v)) {
        ++count;
        sum += static_cast<std::int64_t>(m.id_at(1));
        EXPECT_EQ(m.sender(), m.id_at(1));  // diversion keeps sender honest
      }
      received_[static_cast<std::size_t>(r)][v] = {count, sum};
      if (resend_round1_ && r == 1)
        net.broadcast(v, Message::tagged(0).add_id(v));
    }
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= rounds_;
  }

 private:
  int rounds_;
  bool resend_round1_;
};

int total_received(const FloodProbe& probe) {
  int total = 0;
  for (const auto& per_round : probe.received_)
    for (const auto& [count, sum] : per_round) total += count;
  return total;
}

// ------------------------------------------------- per-fault semantics

TEST(FaultyNetwork, DropProbabilityOneDeliversNothing) {
  const auto wg = WeightedGraph::uniform(gen::cycle(6));
  FaultPlan plan;
  plan.drop_prob = 1.0;
  FaultyNetwork net(wg, {}, plan);
  FloodProbe probe(3);
  const RunStats stats = net.run(probe, 10);
  EXPECT_EQ(total_received(probe), 0);
  EXPECT_EQ(stats.messages, 12);  // the senders still paid for the slots
  EXPECT_EQ(stats.dropped, 12);
  EXPECT_EQ(stats.duplicated, 0);
  EXPECT_EQ(stats.delayed, 0);
  EXPECT_EQ(stats.killed, 0);
}

TEST(FaultyNetwork, DuplicateProbabilityOneDeliversEveryRecordTwice) {
  const auto wg = WeightedGraph::uniform(gen::cycle(6));
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  FaultyNetwork net(wg, {}, plan);
  FloodProbe probe(2);
  const RunStats stats = net.run(probe, 10);
  EXPECT_EQ(stats.messages, 12);
  EXPECT_EQ(stats.duplicated, 12);
  EXPECT_EQ(total_received(probe), 24);
  for (NodeId v = 0; v < 6; ++v) {
    const auto [count, sum] = probe.received_[1][v];
    const std::int64_t left = (v + 5) % 6, right = (v + 1) % 6;
    EXPECT_EQ(count, 4);
    EXPECT_EQ(sum, 2 * (left + right));
  }
}

TEST(FaultyNetwork, DelayedRecordsArriveWithinTheBound) {
  const auto wg = WeightedGraph::uniform(gen::cycle(6));
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.max_delay_rounds = 3;
  FaultyNetwork net(wg, {}, plan);
  FloodProbe probe(5);
  const RunStats stats = net.run(probe, 10);
  EXPECT_EQ(stats.delayed, 12);
  // Undelayed arrival would be round 1; a delay of d in [1, 3] lands in
  // rounds 2..4 — nothing earlier, nothing later, nothing lost.
  int by_round[6] = {0, 0, 0, 0, 0, 0};
  for (std::size_t r = 0; r < probe.received_.size(); ++r)
    for (const auto& [count, sum] : probe.received_[r])
      by_round[r] += count;
  EXPECT_EQ(by_round[0], 0);
  EXPECT_EQ(by_round[1], 0);
  EXPECT_EQ(by_round[2] + by_round[3] + by_round[4], 12);
  EXPECT_EQ(by_round[5], 0);
}

TEST(FaultyNetwork, ReorderKeepsEveryInboxMultisetIntact) {
  const auto wg = WeightedGraph::uniform(gen::king_grid(3, 3));
  const NodeId n = wg.num_nodes();
  FaultPlan plan;
  plan.reorder_prob = 1.0;
  FaultyNetwork net(wg, {}, plan);
  FloodProbe probe(2);
  const RunStats stats = net.run(probe, 10);
  EXPECT_EQ(stats.messages,
            static_cast<std::int64_t>(2 * wg.graph().num_edges()));
  EXPECT_EQ(stats.dropped, 0);
  // Diversion changes inbox positions, never content: every node still
  // receives exactly one record from each neighbor.
  const Graph& g = wg.graph();
  for (NodeId v = 0; v < n; ++v) {
    const auto [count, sum] = probe.received_[1][v];
    std::int64_t expect_sum = 0;
    int expect_count = 0;
    for (const NodeId u : g.neighbors(v)) {
      expect_sum += u;
      ++expect_count;
    }
    EXPECT_EQ(count, expect_count) << "node " << v;
    EXPECT_EQ(sum, expect_sum) << "node " << v;
  }
}

TEST(FaultyNetwork, KilledNodeNeitherSendsNorReceives) {
  const auto wg = WeightedGraph::uniform(gen::cycle(6));
  FaultPlan plan;
  plan.kills = {{0, 1}};  // node 0 dies at round 1
  FaultyNetwork net(wg, {}, plan);
  FloodProbe probe(3, /*resend_round1=*/true);
  const RunStats stats = net.run(probe, 10);
  // Round-0 broadcasts: node 0's own sends leave before the kill, but the
  // two records addressed to it arrive at round 1 — suppressed. Round-1
  // broadcasts: node 0 is dead, so its 2 records are stillborn, and the 2
  // addressed to it are suppressed on arrival.
  EXPECT_EQ(stats.killed, 6);
  EXPECT_EQ(stats.messages, 22);  // 12 at round 0 + 10 from live senders
  for (std::size_t r = 1; r < probe.received_.size(); ++r)
    EXPECT_EQ(probe.received_[r][0].first, 0) << "dead node heard round " << r;
  // Node 0's neighbors hear it at round 1 (pre-kill send) but not after.
  EXPECT_EQ(probe.received_[1][1].first, 2);
  EXPECT_EQ(probe.received_[2][1].first, 1);  // only node 2 is still talking
}

// ------------------------------------------------ plan derivation / API

TEST(FaultPlan, MakeFaultPlanSamplesKillsAndValidates) {
  const auto g = gen::cycle(64);
  FaultSpec spec;
  spec.kill_prob = 0.5;
  spec.kill_round = 7;
  const FaultPlan plan = make_fault_plan(g, spec);
  EXPECT_FALSE(plan.kills.empty());
  EXPECT_LT(plan.kills.size(), 64u);
  for (const KillEvent& k : plan.kills) EXPECT_EQ(k.round, 7);
  // Pure-hash sampling: derived twice, identical twice.
  EXPECT_EQ(plan, make_fault_plan(g, spec));

  FaultSpec bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(make_fault_plan(g, bad), CheckError);
  FaultPlan misfit;
  misfit.arc_drop.assign(3, 0.5);  // cycle(64) has 128 arcs
  EXPECT_THROW(FaultyNetwork(WeightedGraph::uniform(g), {}, misfit),
               CheckError);
}

TEST(FaultPlan, FaultLabelSummarizesTheSpec) {
  EXPECT_EQ(fault_label(FaultSpec{}), "none");
  FaultSpec spec;
  spec.drop_prob = 0.1;
  spec.delay_prob = 0.2;
  spec.max_delay_rounds = 4;
  EXPECT_EQ(fault_label(spec), "drop=0.1,delay=0.2x4");
}

TEST(FaultyNetwork, MakeNetworkDispatchesOnTheSpec) {
  const auto wg = WeightedGraph::uniform(gen::cycle(8));
  CongestConfig cfg;
  EXPECT_EQ(dynamic_cast<FaultyNetwork*>(make_network(wg, cfg).get()),
            nullptr);
  cfg.fault.drop_prob = 0.1;
  EXPECT_NE(dynamic_cast<FaultyNetwork*>(make_network(wg, cfg).get()),
            nullptr);
}

// ------------------------------------------------------- transparency

TEST(FaultyNetwork, ZeroFaultPlanIsBitIdenticalToUndecorated) {
  const auto corpus = harness::small_corpus(11);
  ASSERT_GE(corpus.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& inst = corpus[i];
    for (const char* name : {"det", "randomized", "greedy-threshold"}) {
      const harness::SolverInfo& info = harness::solver(name);
      if (!harness::solver_applicable(info, inst)) continue;
      harness::SolverParams params = harness::params_for(info, inst);
      params.threads = -1;
      params.shards = -1;

      CongestConfig cfg;
      cfg.seed = 0xc1ea50ULL;
      Network clean(inst.wg, cfg);
      const MdsResult undecorated = info.run_on(clean, params);

      FaultyNetwork faulty(inst.wg, cfg, FaultPlan{});
      const MdsResult decorated = info.run_on(faulty, params);

      EXPECT_TRUE(results_identical(undecorated, decorated))
          << name << " on " << inst.name;
      EXPECT_EQ(decorated.stats.dropped, 0);
      EXPECT_EQ(decorated.stats.duplicated, 0);
      EXPECT_EQ(decorated.stats.delayed, 0);
      EXPECT_EQ(decorated.stats.killed, 0);
    }
  }
}

// ------------------------------------------- cross-width / cross-shard

// A faulty run's outcome: either a result or the (deterministic) check
// failure it died with — both must be identical across configurations.
struct Outcome {
  std::optional<MdsResult> result;
  std::string error;
};

Outcome run_outcome(const harness::SolverInfo& info,
                    const harness::CorpusInstance& inst,
                    const harness::SolverParams& params, int threads,
                    int shards) {
  CongestConfig cfg = faulty_config();
  cfg.threads = threads;
  cfg.shards = shards;
  Outcome out;
  try {
    const std::unique_ptr<Network> net = make_network(inst.wg, cfg);
    out.result = info.run_on(*net, params);
  } catch (const CheckError& e) {
    out.error = e.what();
  }
  return out;
}

TEST(FaultyDeterminism, EverySolverIsBitIdenticalAcrossWidthsAndShards) {
  const int wide = test_thread_width();
  const auto corpus = harness::small_corpus(7);
  ASSERT_GE(corpus.size(), 10u);
  for (const auto& inst : corpus) {
    for (const harness::SolverInfo& info : harness::all_solvers()) {
      if (!harness::solver_applicable(info, inst)) continue;
      harness::SolverParams params = harness::params_for(info, inst);
      params.threads = -1;
      params.shards = -1;

      const Outcome reference = run_outcome(info, inst, params, 1, 1);
      for (const int threads : {1, wide}) {
        for (const int shards : {1, 2, 4}) {
          if (threads == 1 && shards == 1) continue;
          const Outcome other = run_outcome(info, inst, params, threads,
                                            shards);
          ASSERT_EQ(reference.result.has_value(), other.result.has_value())
              << info.name << " on " << inst.name << " at " << threads
              << " threads, " << shards << " shards: one run failed ("
              << reference.error << other.error << ")";
          if (reference.result.has_value()) {
            EXPECT_TRUE(results_identical(*reference.result, *other.result))
                << info.name << " on " << inst.name << " at " << threads
                << " threads, " << shards << " shards";
          } else {
            EXPECT_EQ(reference.error, other.error)
                << info.name << " on " << inst.name;
          }
        }
      }
    }
  }
}

// --------------------------------------------- starvation / accounting

// Termination predicate that genuinely needs the network: finished only
// once node 1 has heard anything. Total loss starves it forever, so only
// the round-limit cap can end the run.
class WaitForEcho final : public DistributedAlgorithm {
 public:
  void initialize(Network& net) override {
    net.broadcast(0, Message::tagged(0).add_id(0));
    net.arm(0);
  }
  void process_round(Network& net) override {
    if (!net.inbox(1).empty()) heard_ = true;
    net.broadcast(0, Message::tagged(0).add_id(0));
  }
  bool finished(const Network&) const override { return heard_; }

 private:
  bool heard_ = false;
};

TEST(FaultyNetwork, TotalLossTerminatesViaTheRoundLimit) {
  const auto wg = WeightedGraph::uniform(gen::cycle(6));
  CongestConfig cfg;
  cfg.fault.drop_prob = 1.0;
  cfg.round_limit = 25;
  FaultyNetwork net(wg, cfg);
  WaitForEcho starved;
  const RunStats stats = net.run(starved, 1'000'000);
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_EQ(stats.rounds, 25);
  EXPECT_EQ(stats.dropped, stats.messages);

  // And every registry solver still terminates within the cap — either
  // converging without the network (fixed-budget phases, trivial
  // decisions) or dying loudly from a starved invariant; spinning past
  // the cap is the one forbidden outcome.
  const auto corpus = harness::small_corpus(3);
  const auto& inst = corpus.front();
  for (const harness::SolverInfo& info : harness::all_solvers()) {
    if (!harness::solver_applicable(info, inst)) continue;
    harness::SolverParams params = harness::params_for(info, inst);
    params.threads = -1;
    params.shards = -1;
    const std::unique_ptr<Network> solver_net = make_network(inst.wg, cfg);
    try {
      const MdsResult res = info.run_on(*solver_net, params);
      ASSERT_FALSE(res.stats.phases.empty()) << info.name;
      for (const PhaseStats& phase : res.stats.phases)
        EXPECT_LE(phase.rounds, 25) << info.name << " phase " << phase.name;
    } catch (const CheckError&) {
      for (const PhaseStats& phase : solver_net->stats().phases)
        EXPECT_LE(phase.rounds, 25) << info.name << " phase " << phase.name;
    }
  }
}

TEST(FaultyNetwork, FaultCountersSumConsistentlyAcrossPhases) {
  const auto corpus = harness::small_corpus(5);
  const auto& inst = corpus.front();
  const harness::SolverInfo& info = harness::solver("det");
  harness::SolverParams params = harness::params_for(info, inst);
  params.threads = -1;
  params.shards = -1;
  const CongestConfig cfg = faulty_config();
  const std::unique_ptr<Network> net = make_network(inst.wg, cfg);
  const MdsResult res = info.run_on(*net, params);
  std::int64_t dropped = 0, duplicated = 0, delayed = 0, killed = 0;
  for (const PhaseStats& phase : res.stats.phases) {
    dropped += phase.dropped;
    duplicated += phase.duplicated;
    delayed += phase.delayed;
    killed += phase.killed;
  }
  EXPECT_EQ(dropped, res.stats.dropped);
  EXPECT_EQ(duplicated, res.stats.duplicated);
  EXPECT_EQ(delayed, res.stats.delayed);
  EXPECT_EQ(killed, res.stats.killed);
  EXPECT_GT(res.stats.dropped + res.stats.delayed, 0)
      << "the adversary never fired — the probabilities are too low for "
         "this corpus";
}

// ------------------------------------------------------ scenario layer

TEST(FaultyScenario, FaultAxisStampsRowsAndSchemaJson) {
  const auto corpus = harness::small_corpus(9);
  harness::ScenarioSpec spec;
  spec.solvers = {{"greedy-threshold", std::nullopt, ""}};
  spec.thread_widths = {1, 2};
  spec.seeds = {7, 8};
  harness::ScenarioFault lossy;
  lossy.label = "lossy";
  lossy.spec.drop_prob = 0.2;
  lossy.spec.delay_prob = 0.2;
  lossy.spec.max_delay_rounds = 2;
  spec.fault_levels = {{}, lossy};
  spec.tolerate_failures = true;
  spec.base_config.round_limit = 200;
  const std::vector<const harness::CorpusInstance*> one = {&corpus.front()};
  const auto rows = harness::run_scenario(spec, one);
  ASSERT_EQ(rows.size(), 8u);  // 2 widths x 2 seeds x 2 fault levels
  EXPECT_TRUE(harness::all_identical(rows));
  bool saw_faulty = false;
  for (const auto& row : rows) {
    EXPECT_TRUE(row.fault == "none" || row.fault == "lossy");
    if (row.fault == "none") {
      EXPECT_EQ(row.result.stats.dropped, 0);
    } else if (!row.failed) {
      saw_faulty = true;
      EXPECT_GT(row.result.stats.dropped + row.result.stats.delayed, 0);
    }
  }
  EXPECT_TRUE(saw_faulty);

  std::ostringstream os;
  harness::write_scenario_json(os, rows);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"fault\": \"lossy\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": "), std::string::npos);
  EXPECT_NE(json.find("\"failed\": false"), std::string::npos);
}

TEST(FaultyScenario, MedianOfAveragesTheCentralPair) {
  std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(harness::median_of(even), 2.5);
  std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(harness::median_of(odd), 2.0);
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(harness::median_of(empty), 0.0);
}

}  // namespace
}  // namespace arbods::fault
