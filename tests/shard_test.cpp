// Sharded-simulator suite: the deterministic partitioner, and the
// ShardedNetwork + inter-shard bridge against the unsharded Network.
//
// The load-bearing contract is *bit-identity*: for every shard count K,
// every worker-pool width, and every registry solver, a sharded run must
// reproduce the unsharded run exactly — MdsResult, per-node delivery
// traces (sender-ordered inboxes), per-round active sets, and RunStats
// including the per-phase breakdown. The shard-boundary regression block
// drives cut-edge-heavy families (grid, ba3) at K in {1, 2, 7} per the
// sharding plan's worst cases: K=1 (facade with no cut edges), K=2 (one
// boundary), K=7 (odd count, unbalanced tail blocks).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "graph/weighted_graph.hpp"
#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"
#include "harness/scenario.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_network.hpp"

namespace arbods::shard {
namespace {

int test_thread_width() {
  if (const char* env = std::getenv("ARBODS_TEST_THREADS")) {
    const int w = std::atoi(env);
    if (w >= 1) return w;
  }
  return 8;
}

// ------------------------------------------------------------ partitioner

TEST(ShardPlanTest, ContiguousBlocksCoverEveryNode) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(500, 3, rng);
  for (const int k : {1, 2, 3, 7, 16}) {
    const ShardPlan plan = partition_contiguous(g, k);
    ASSERT_EQ(plan.num_shards(), k);
    EXPECT_EQ(plan.node_begin.front(), 0u);
    EXPECT_EQ(plan.node_begin.back(), g.num_nodes());
    for (int s = 0; s < k; ++s) {
      EXPECT_LT(plan.shard_begin(s), plan.shard_end(s)) << "empty shard " << s;
      for (NodeId v = plan.shard_begin(s); v < plan.shard_end(s); ++v) {
        EXPECT_EQ(plan.shard_of(v), s);
        EXPECT_EQ(plan.local_id(v), v - plan.shard_begin(s));
      }
    }
  }
}

TEST(ShardPlanTest, BalancesArcsAcrossShards) {
  Rng rng(11);
  const Graph g = gen::barabasi_albert(2000, 3, rng);
  const int k = 4;
  const ShardPlan plan = partition_contiguous(g, k);
  std::vector<std::int64_t> arcs(k, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    arcs[plan.shard_of(v)] += g.degree(v);
  const std::int64_t total = 2 * static_cast<std::int64_t>(g.num_edges());
  for (int s = 0; s < k; ++s) {
    EXPECT_GT(arcs[s], total / k / 2) << "shard " << s << " starved";
    EXPECT_LT(arcs[s], total * 2 / k) << "shard " << s << " overloaded";
  }
}

TEST(ShardPlanTest, ShardCountClampsToNodeCount) {
  const Graph g = gen::grid(2, 2);
  const ShardPlan plan = partition_contiguous(g, 64);
  EXPECT_EQ(plan.num_shards(), 4);
  const ShardPlan one = partition_contiguous(g, 1);
  EXPECT_EQ(one.num_shards(), 1);
  EXPECT_EQ(cut_arcs(g, one), 0);
}

TEST(ShardPlanTest, RefinementNeverIncreasesCutAndIsDeterministic) {
  Rng rng(3);
  const std::vector<Graph> graphs = [&] {
    std::vector<Graph> gs;
    gs.push_back(gen::grid(20, 20));
    gs.push_back(gen::barabasi_albert(400, 3, rng));
    gs.push_back(gen::random_tree_prufer(400, rng));
    return gs;
  }();
  for (const Graph& g : graphs) {
    for (const int k : {2, 3, 7}) {
      const ShardPlan base = partition_contiguous(g, k);
      const ShardPlan refined = refine_boundaries(g, base);
      EXPECT_LE(cut_arcs(g, refined), cut_arcs(g, base));
      EXPECT_EQ(refined, refine_boundaries(g, base)) << "nondeterministic";
      EXPECT_EQ(make_shard_plan(g, k), make_shard_plan(g, k));
    }
  }
}

TEST(ShardPlanTest, RefinementFindsTheNarrowWaist) {
  // Two dense cliques joined by a single edge, sized so the arc-balanced
  // boundary lands inside a clique; the reducer must slide it to the
  // 1-edge waist.
  const NodeId half = 12;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < half; ++u)
    for (NodeId v = u + 1; v < half; ++v) {
      edges.push_back({u, v});
      edges.push_back({static_cast<NodeId>(half + u),
                       static_cast<NodeId>(half + v)});
    }
  edges.push_back({half - 1, half});
  const Graph g = Graph::from_edges(2 * half, edges);
  const ShardPlan refined = make_shard_plan(g, 2);
  EXPECT_EQ(cut_arcs(g, refined), 2);  // the waist edge, both directions
}

// ------------------------------------------- facade construction surface

TEST(MakeNetworkTest, ReturnsPlainNetworkForOneShardAndFacadeOtherwise) {
  Rng rng(5);
  const WeightedGraph wg =
      WeightedGraph::uniform(gen::barabasi_albert(100, 3, rng));
  CongestConfig cfg;
  cfg.shards = 1;
  auto plain = make_network(wg, cfg);
  EXPECT_EQ(dynamic_cast<ShardedNetwork*>(plain.get()), nullptr);
  cfg.shards = 4;
  auto sharded = make_network(wg, cfg);
  auto* facade = dynamic_cast<ShardedNetwork*>(sharded.get());
  ASSERT_NE(facade, nullptr);
  EXPECT_EQ(facade->num_shards(), 4);
  // Shard arenas partition the unsharded arena layout exactly.
  EXPECT_EQ(facade->arena_words(), plain->arena_words());
  cfg.shards = 1'000'000;  // clamps to n
  auto clamped = make_network(wg, cfg);
  EXPECT_EQ(dynamic_cast<ShardedNetwork*>(clamped.get())->num_shards(), 100);
}

// ------------------------------------------------- scripted trace engine
//
// Every node broadcasts a tagged quantized random real each round and
// coin-flips a directed probe to a random neighbor — the same script the
// congest differential test uses — while the driver also snapshots the
// active set each round. Traces pin delivery content *and* order.

struct Rec {
  std::int64_t round;
  NodeId sender;
  int tag;
  std::int64_t level;
  double real;
  NodeId id;

  friend bool operator==(const Rec&, const Rec&) = default;
};

class ScriptedTraffic : public DistributedAlgorithm {
 public:
  explicit ScriptedTraffic(std::int64_t send_rounds)
      : send_rounds_(send_rounds) {}

  void initialize(Network& net) override {
    trace_.assign(net.num_nodes(), {});
    active_trace_.clear();
    net.for_nodes([&](NodeId v) { emit(net, v); });
  }

  void process_round(Network& net) override {
    const auto active = net.active_nodes();
    active_trace_.emplace_back(active.begin(), active.end());
    net.for_nodes([&](NodeId v) {
      for (const MessageView m : net.inbox(v)) {
        Rec r{net.current_round(), m.sender(), m.tag(), 0, -1.0, kInvalidNode};
        if (r.tag == 1) {
          r.level = m.level_at(1);
          r.real = m.real_at(2);
        } else {
          r.id = m.id_at(1);
        }
        trace_[v].push_back(r);
      }
      if (net.current_round() < send_rounds_) emit(net, v);
    });
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= send_rounds_;
  }

  const std::vector<std::vector<Rec>>& trace() const { return trace_; }
  const std::vector<std::vector<NodeId>>& active_trace() const {
    return active_trace_;
  }

 private:
  void emit(Network& net, NodeId v) {
    Rng& rng = net.rng(v);
    const double x = rng.next_double();
    net.broadcast(v, Message::tagged(1)
                         .add_level(net.current_round() & 7)
                         .add_real(x));
    const auto nb = net.neighbors(v);
    if (!nb.empty() && rng.next_bernoulli(0.5)) {
      const NodeId to = nb[rng.next_below(nb.size())];
      net.send(v, to, Message::tagged(2).add_id(v));
    }
  }

  std::int64_t send_rounds_;
  std::vector<std::vector<Rec>> trace_;
  std::vector<std::vector<NodeId>> active_trace_;
};

// Runs the script on the given Network and returns (stats, traces).
struct ScriptRun {
  RunStats stats;
  std::vector<std::vector<Rec>> trace;
  std::vector<std::vector<NodeId>> active;
};

ScriptRun run_script(Network& net, std::int64_t send_rounds) {
  ScriptedTraffic algo(send_rounds);
  ScriptRun out;
  out.stats = net.run(algo);
  out.trace = algo.trace();
  out.active = algo.active_trace();
  return out;
}

// The shard-boundary regression block: cut-edge-heavy families at
// K in {1, 2, 7} must bit-match K=1 and the pre-shard Network.
TEST(ShardBoundaryTest, TracesActiveSetsAndStatsMatchUnshardedOnCutHeavyGraphs) {
  const int wide = test_thread_width();
  Rng rng(17);
  std::vector<std::pair<const char*, Graph>> graphs;
  graphs.emplace_back("grid", gen::grid(16, 16));
  graphs.emplace_back("ba3", gen::barabasi_albert(256, 3, rng));
  constexpr std::int64_t kSendRounds = 10;

  for (auto& [name, g] : graphs) {
    const WeightedGraph wg = WeightedGraph::uniform(std::move(g));
    CongestConfig cfg;
    cfg.seed = 0xbeef0042ULL;
    cfg.threads = 1;
    Network reference(wg, cfg);
    const ScriptRun expected = run_script(reference, kSendRounds);

    for (const int k : {1, 2, 7}) {
      for (const int threads : {1, wide}) {
        CongestConfig scfg = cfg;
        scfg.threads = threads;
        scfg.shards = k;
        ShardedNetwork sharded(wg, scfg);
        const ScriptRun got = run_script(sharded, kSendRounds);
        EXPECT_EQ(got.stats, expected.stats)
            << name << " K=" << k << " threads=" << threads;
        EXPECT_EQ(got.trace, expected.trace)
            << name << " K=" << k << " threads=" << threads;
        EXPECT_EQ(got.active, expected.active)
            << name << " K=" << k << " threads=" << threads;
        if (k > 1) {
          EXPECT_GT(sharded.bridge_records(), 0)
              << name << " K=" << k << ": bridge never exercised";
        } else {
          EXPECT_EQ(sharded.bridge_records(), 0);
        }
      }
    }
  }
}

TEST(ShardBoundaryTest, BridgedLanesSpillAndRegrowLikeLocalOnes) {
  // A lane region of 2 words cannot hold even one record, so every
  // deposit — including every bridge merge — takes the spill/regrow
  // path; the sharded run must still bit-match the unsharded one.
  Rng rng(23);
  const WeightedGraph wg =
      WeightedGraph::uniform(gen::barabasi_albert(120, 3, rng));
  CongestConfig cfg;
  cfg.seed = 99;
  cfg.lane_capacity_words_hint = 2;
  Network reference(wg, cfg);
  const ScriptRun expected = run_script(reference, 8);

  CongestConfig scfg = cfg;
  scfg.shards = 3;
  ShardedNetwork sharded(wg, scfg);
  const ScriptRun got = run_script(sharded, 8);
  EXPECT_EQ(got.stats, expected.stats);
  EXPECT_EQ(got.trace, expected.trace);
  EXPECT_GT(sharded.bridge_records(), 0);
}

TEST(ShardBoundaryTest, ReuseAcrossRunsStaysBitIdentical) {
  Rng rng(31);
  const WeightedGraph wg =
      WeightedGraph::uniform(gen::barabasi_albert(200, 3, rng));
  CongestConfig cfg;
  cfg.shards = 4;
  cfg.threads = 2;
  ShardedNetwork sharded(wg, cfg);
  const ScriptRun first = run_script(sharded, 6);
  const std::int64_t first_bridge = sharded.bridge_records();
  EXPECT_GT(first_bridge, 0);
  const ScriptRun again = run_script(sharded, 6);
  EXPECT_EQ(first.stats, again.stats);
  EXPECT_EQ(first.trace, again.trace);
  EXPECT_EQ(first.active, again.active);
  // run() resets, so the bridge counter reports one run's traffic.
  EXPECT_EQ(sharded.bridge_records(), first_bridge);
}

// --------------------------------------------- registry solver bit-identity

TEST(ShardedSolversTest, EverySolverBitMatchesUnshardedOnTheSmallCorpus) {
  const int wide = test_thread_width();
  const auto corpus = harness::small_corpus(7);
  ASSERT_GE(corpus.size(), 10u);
  for (const auto& inst : corpus) {
    for (const harness::SolverInfo& info : harness::all_solvers()) {
      if (!harness::solver_applicable(info, inst)) continue;
      harness::SolverParams params = harness::params_for(info, inst);
      CongestConfig cfg;
      cfg.seed = 0xdead0002ULL;
      params.threads = 1;
      const MdsResult reference =
          harness::run_solver(info.name, inst.wg, params, cfg);
      ASSERT_FALSE(reference.stats.phases.empty());

      for (const int k : {2, 4}) {
        for (const int threads : {1, wide}) {
          harness::SolverParams sparams = params;
          sparams.threads = threads;
          sparams.shards = k;
          const MdsResult sharded =
              harness::run_solver(info.name, inst.wg, sparams, cfg);
          // One comparison covers the result, the totals, and the
          // per-phase breakdown (RunStats includes phases).
          EXPECT_EQ(sharded, reference)
              << info.name << " on " << inst.name << " K=" << k
              << " threads=" << threads;
        }
      }
    }
  }
}

// ----------------------------------------------------- scenario integration

TEST(ShardedScenarioTest, ShardSweepIsDeterministicAndStampsRows) {
  const auto corpus = harness::small_corpus(13);
  harness::ScenarioSpec spec;
  spec.solvers.push_back({"det", std::nullopt, "det"});
  spec.solvers.push_back({"greedy-threshold", std::nullopt, "gt"});
  spec.thread_widths = {1, 2};
  spec.shard_counts = {1, 2, 4};
  const std::vector<const harness::CorpusInstance*> instances = {
      &corpus.front()};
  const auto rows = harness::run_scenario(spec, instances);
  ASSERT_EQ(rows.size(), 2u * 2u * 3u);
  EXPECT_TRUE(harness::all_identical(rows));
  for (const auto& row : rows)
    EXPECT_TRUE(row.shards == 1 || row.shards == 2 || row.shards == 4);

  std::ostringstream os;
  harness::write_scenario_json(os, rows);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"shards\": 4"), std::string::npos);
}

}  // namespace
}  // namespace arbods::shard
