// Sharded-simulator suite: the deterministic partitioner, and the
// ShardedNetwork + inter-shard bridge against the unsharded Network.
//
// The load-bearing contract is *bit-identity*: for every shard count K,
// every worker-pool width, and every registry solver, a sharded run must
// reproduce the unsharded run exactly — MdsResult, per-node delivery
// traces (sender-ordered inboxes), per-round active sets, and RunStats
// including the per-phase breakdown. The shard-boundary regression block
// drives cut-edge-heavy families (grid, ba3) at K in {1, 2, 7} per the
// sharding plan's worst cases: K=1 (facade with no cut edges), K=2 (one
// boundary), K=7 (odd count, unbalanced tail blocks).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "graph/weighted_graph.hpp"
#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"
#include "harness/scenario.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_network.hpp"

namespace arbods::shard {
namespace {

int test_thread_width() {
  if (const char* env = std::getenv("ARBODS_TEST_THREADS")) {
    const int w = std::atoi(env);
    if (w >= 1) return w;
  }
  return 8;
}

// ------------------------------------------------------------ partitioner

TEST(ShardPlanTest, ContiguousBlocksCoverEveryNode) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(500, 3, rng);
  for (const int k : {1, 2, 3, 7, 16}) {
    const ShardPlan plan = partition_contiguous(g, k);
    ASSERT_EQ(plan.num_shards(), k);
    EXPECT_EQ(plan.node_begin.front(), 0u);
    EXPECT_EQ(plan.node_begin.back(), g.num_nodes());
    for (int s = 0; s < k; ++s) {
      EXPECT_LT(plan.shard_begin(s), plan.shard_end(s)) << "empty shard " << s;
      for (NodeId v = plan.shard_begin(s); v < plan.shard_end(s); ++v) {
        EXPECT_EQ(plan.shard_of(v), s);
        EXPECT_EQ(plan.local_id(v), v - plan.shard_begin(s));
      }
    }
  }
}

TEST(ShardPlanTest, BalancesArcsAcrossShards) {
  Rng rng(11);
  const Graph g = gen::barabasi_albert(2000, 3, rng);
  const int k = 4;
  const ShardPlan plan = partition_contiguous(g, k);
  std::vector<std::int64_t> arcs(k, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    arcs[plan.shard_of(v)] += g.degree(v);
  const std::int64_t total = 2 * static_cast<std::int64_t>(g.num_edges());
  for (int s = 0; s < k; ++s) {
    EXPECT_GT(arcs[s], total / k / 2) << "shard " << s << " starved";
    EXPECT_LT(arcs[s], total * 2 / k) << "shard " << s << " overloaded";
  }
}

TEST(ShardPlanTest, ShardCountClampsToNodeCount) {
  const Graph g = gen::grid(2, 2);
  const ShardPlan plan = partition_contiguous(g, 64);
  EXPECT_EQ(plan.num_shards(), 4);
  const ShardPlan one = partition_contiguous(g, 1);
  EXPECT_EQ(one.num_shards(), 1);
  EXPECT_EQ(cut_arcs(g, one), 0);
}

TEST(ShardPlanTest, RefinementNeverIncreasesCutAndIsDeterministic) {
  Rng rng(3);
  const std::vector<Graph> graphs = [&] {
    std::vector<Graph> gs;
    gs.push_back(gen::grid(20, 20));
    gs.push_back(gen::barabasi_albert(400, 3, rng));
    gs.push_back(gen::random_tree_prufer(400, rng));
    return gs;
  }();
  for (const Graph& g : graphs) {
    for (const int k : {2, 3, 7}) {
      const ShardPlan base = partition_contiguous(g, k);
      const ShardPlan refined = refine_boundaries(g, base);
      EXPECT_LE(cut_arcs(g, refined), cut_arcs(g, base));
      EXPECT_EQ(refined, refine_boundaries(g, base)) << "nondeterministic";
      EXPECT_EQ(make_shard_plan(g, k), make_shard_plan(g, k));
    }
  }
}

// Receiver-side CSR arc index of (u -> v): v's contiguous in-arc range,
// at u's rank among v's sorted neighbors — the indexing cut_volume and
// the traffic profile share.
std::size_t arc_index(const Graph& g, NodeId u, NodeId v) {
  std::size_t l = 0;
  for (NodeId w = 0; w < g.num_nodes(); ++w)
    for (const NodeId s : g.neighbors(w)) {
      if (w == v && s == u) return l;
      ++l;
    }
  ADD_FAILURE() << "no arc " << u << " -> " << v;
  return 0;
}

TEST(ShardPlanTest, CutVolumeWeightsCutArcsByMeasuredTraffic) {
  const Graph g = gen::grid(1, 8);  // the path 0-1-...-7
  ShardPlan plan;
  plan.node_begin = {0, 4, 8};
  // Empty and all-zero profiles reduce to the raw cut count.
  EXPECT_EQ(cut_volume(g, plan, {}), cut_arcs(g, plan));
  std::vector<std::uint64_t> vol(2 * g.num_edges(), 0);
  EXPECT_EQ(cut_volume(g, plan, vol), cut_arcs(g, plan));
  // Load the two directed arcs of the cut edge (3, 4).
  vol[arc_index(g, 3, 4)] = 100;
  vol[arc_index(g, 4, 3)] = 50;
  EXPECT_EQ(cut_volume(g, plan, vol), cut_arcs(g, plan) + 150);
  // Volume on a non-cut arc is free.
  vol[arc_index(g, 0, 1)] = 999;
  EXPECT_EQ(cut_volume(g, plan, vol), cut_arcs(g, plan) + 150);
}

TEST(ShardPlanTest, WeightedRefinementMovesBoundaryOffTheHotEdge) {
  const Graph g = gen::grid(1, 8);  // the path 0-1-...-7
  ShardPlan plan;
  plan.node_begin = {0, 4, 8};
  // Unweighted: every boundary position on a path is crossed by exactly
  // one edge, so no strictly better position exists and the plan holds.
  EXPECT_EQ(refine_boundaries(g, plan, 0.5).node_begin[1], 4u);
  // An empty profile must reproduce the unweighted sweep bit-for-bit.
  EXPECT_EQ(refine_boundaries(g, plan, {}, 0.5), refine_boundaries(g, plan, 0.5));
  // Weighted: the cut edge (3, 4) carries measured traffic, so the
  // boundary slides to the first in-band position over a cold edge.
  std::vector<std::uint64_t> vol(2 * g.num_edges(), 0);
  vol[arc_index(g, 3, 4)] = 100;
  vol[arc_index(g, 4, 3)] = 50;
  const ShardPlan refined = refine_boundaries(g, plan, vol, 0.5);
  EXPECT_EQ(refined.node_begin[1], 3u);
  EXPECT_LT(cut_volume(g, refined, vol), cut_volume(g, plan, vol));
  EXPECT_EQ(refined, refine_boundaries(g, plan, vol, 0.5))
      << "nondeterministic";
}

TEST(ShardPlanTest, RefinementFindsTheNarrowWaist) {
  // Two dense cliques joined by a single edge, sized so the arc-balanced
  // boundary lands inside a clique; the reducer must slide it to the
  // 1-edge waist.
  const NodeId half = 12;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < half; ++u)
    for (NodeId v = u + 1; v < half; ++v) {
      edges.push_back({u, v});
      edges.push_back({static_cast<NodeId>(half + u),
                       static_cast<NodeId>(half + v)});
    }
  edges.push_back({half - 1, half});
  const Graph g = Graph::from_edges(2 * half, edges);
  const ShardPlan refined = make_shard_plan(g, 2);
  EXPECT_EQ(cut_arcs(g, refined), 2);  // the waist edge, both directions
}

// ------------------------------------------- facade construction surface

TEST(MakeNetworkTest, ReturnsPlainNetworkForOneShardAndFacadeOtherwise) {
  Rng rng(5);
  const WeightedGraph wg =
      WeightedGraph::uniform(gen::barabasi_albert(100, 3, rng));
  CongestConfig cfg;
  cfg.shards = 1;
  auto plain = make_network(wg, cfg);
  EXPECT_EQ(dynamic_cast<ShardedNetwork*>(plain.get()), nullptr);
  cfg.shards = 4;
  auto sharded = make_network(wg, cfg);
  auto* facade = dynamic_cast<ShardedNetwork*>(sharded.get());
  ASSERT_NE(facade, nullptr);
  EXPECT_EQ(facade->num_shards(), 4);
  // Shard arenas partition the unsharded arena layout exactly.
  EXPECT_EQ(facade->arena_words(), plain->arena_words());
  cfg.shards = 1'000'000;  // clamps to n
  auto clamped = make_network(wg, cfg);
  EXPECT_EQ(dynamic_cast<ShardedNetwork*>(clamped.get())->num_shards(), 100);
}

// ------------------------------------------------- scripted trace engine
//
// Every node broadcasts a tagged quantized random real each round and
// coin-flips a directed probe to a random neighbor — the same script the
// congest differential test uses — while the driver also snapshots the
// active set each round. Traces pin delivery content *and* order.

struct Rec {
  std::int64_t round;
  NodeId sender;
  int tag;
  std::int64_t level;
  double real;
  NodeId id;

  friend bool operator==(const Rec&, const Rec&) = default;
};

class ScriptedTraffic : public DistributedAlgorithm {
 public:
  /// `bursts` repeats the per-node emission within a round, so one round
  /// deposits several records per lane — the flip-merge stress knob (with
  /// a tiny lane hint every one of them spills).
  explicit ScriptedTraffic(std::int64_t send_rounds, int bursts = 1)
      : send_rounds_(send_rounds), bursts_(bursts) {}

  void initialize(Network& net) override {
    trace_.assign(net.num_nodes(), {});
    active_trace_.clear();
    net.for_nodes([&](NodeId v) { emit(net, v); });
  }

  void process_round(Network& net) override {
    const auto active = net.active_nodes();
    active_trace_.emplace_back(active.begin(), active.end());
    net.for_nodes([&](NodeId v) {
      for (const MessageView m : net.inbox(v)) {
        Rec r{net.current_round(), m.sender(), m.tag(), 0, -1.0, kInvalidNode};
        if (r.tag == 1) {
          r.level = m.level_at(1);
          r.real = m.real_at(2);
        } else {
          r.id = m.id_at(1);
        }
        trace_[v].push_back(r);
      }
      if (net.current_round() < send_rounds_) emit(net, v);
    });
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= send_rounds_;
  }

  const std::vector<std::vector<Rec>>& trace() const { return trace_; }
  const std::vector<std::vector<NodeId>>& active_trace() const {
    return active_trace_;
  }

 private:
  void emit(Network& net, NodeId v) {
    Rng& rng = net.rng(v);
    for (int b = 0; b < bursts_; ++b) {
      const double x = rng.next_double();
      net.broadcast(v, Message::tagged(1)
                           .add_level(net.current_round() & 7)
                           .add_real(x));
      const auto nb = net.neighbors(v);
      if (!nb.empty() && rng.next_bernoulli(0.5)) {
        const NodeId to = nb[rng.next_below(nb.size())];
        net.send(v, to, Message::tagged(2).add_id(v));
      }
    }
  }

  std::int64_t send_rounds_;
  int bursts_ = 1;
  std::vector<std::vector<Rec>> trace_;
  std::vector<std::vector<NodeId>> active_trace_;
};

// Runs the script on the given Network and returns (stats, traces).
struct ScriptRun {
  RunStats stats;
  std::vector<std::vector<Rec>> trace;
  std::vector<std::vector<NodeId>> active;
};

ScriptRun run_script(Network& net, std::int64_t send_rounds, int bursts = 1) {
  ScriptedTraffic algo(send_rounds, bursts);
  ScriptRun out;
  out.stats = net.run(algo);
  out.trace = algo.trace();
  out.active = algo.active_trace();
  return out;
}

// The shard-boundary regression block: cut-edge-heavy families at
// K in {1, 2, 7} must bit-match K=1 and the pre-shard Network.
TEST(ShardBoundaryTest, TracesActiveSetsAndStatsMatchUnshardedOnCutHeavyGraphs) {
  const int wide = test_thread_width();
  Rng rng(17);
  std::vector<std::pair<const char*, Graph>> graphs;
  graphs.emplace_back("grid", gen::grid(16, 16));
  graphs.emplace_back("ba3", gen::barabasi_albert(256, 3, rng));
  constexpr std::int64_t kSendRounds = 10;

  for (auto& [name, g] : graphs) {
    const WeightedGraph wg = WeightedGraph::uniform(std::move(g));
    CongestConfig cfg;
    cfg.seed = 0xbeef0042ULL;
    cfg.threads = 1;
    Network reference(wg, cfg);
    const ScriptRun expected = run_script(reference, kSendRounds);

    for (const int k : {1, 2, 7}) {
      for (const int threads : {1, wide}) {
        CongestConfig scfg = cfg;
        scfg.threads = threads;
        scfg.shards = k;
        ShardedNetwork sharded(wg, scfg);
        const ScriptRun got = run_script(sharded, kSendRounds);
        EXPECT_EQ(got.stats, expected.stats)
            << name << " K=" << k << " threads=" << threads;
        EXPECT_EQ(got.trace, expected.trace)
            << name << " K=" << k << " threads=" << threads;
        EXPECT_EQ(got.active, expected.active)
            << name << " K=" << k << " threads=" << threads;
        if (k > 1) {
          EXPECT_GT(sharded.bridge_records(), 0)
              << name << " K=" << k << ": bridge never exercised";
        } else {
          EXPECT_EQ(sharded.bridge_records(), 0);
        }
      }
    }
  }
}

TEST(ShardBoundaryTest, BridgedLanesSpillAndRegrowLikeLocalOnes) {
  // A lane region of 2 words cannot hold even one record, so every
  // deposit — including every bridge merge — takes the spill/regrow
  // path; the sharded run must still bit-match the unsharded one.
  Rng rng(23);
  const WeightedGraph wg =
      WeightedGraph::uniform(gen::barabasi_albert(120, 3, rng));
  CongestConfig cfg;
  cfg.seed = 99;
  cfg.lane_capacity_words_hint = 2;
  Network reference(wg, cfg);
  const ScriptRun expected = run_script(reference, 8);

  CongestConfig scfg = cfg;
  scfg.shards = 3;
  ShardedNetwork sharded(wg, scfg);
  const ScriptRun got = run_script(sharded, 8);
  EXPECT_EQ(got.stats, expected.stats);
  EXPECT_EQ(got.trace, expected.trace);
  EXPECT_GT(sharded.bridge_records(), 0);
}

TEST(ShardBoundaryTest, ParallelFlipMergeBitMatchesUnderSpillingBurstLoad) {
  // Stress for the parallel per-destination flip merge: three emissions
  // per node per round over a 2-word lane hint means MANY cut lanes
  // overflow in the same round, so the merge tasks drive the members'
  // spill buffers from pool workers concurrently. Traces, active sets,
  // and stats must still bit-match the unsharded serial reference at
  // every shard count and pool width.
  const int wide = test_thread_width();
  Rng rng(41);
  const WeightedGraph wg =
      WeightedGraph::uniform(gen::barabasi_albert(192, 4, rng));
  CongestConfig cfg;
  cfg.seed = 0x51ab0007ULL;
  cfg.lane_capacity_words_hint = 2;  // no record fits: every deposit spills
  Network reference(wg, cfg);
  const ScriptRun expected = run_script(reference, 8, /*bursts=*/3);

  for (const int k : {2, 7}) {
    for (const int threads : {1, wide}) {
      CongestConfig scfg = cfg;
      scfg.threads = threads;
      scfg.shards = k;
      ShardedNetwork sharded(wg, scfg);
      const ScriptRun got = run_script(sharded, 8, /*bursts=*/3);
      EXPECT_EQ(got.stats, expected.stats)
          << "K=" << k << " threads=" << threads;
      EXPECT_EQ(got.trace, expected.trace)
          << "K=" << k << " threads=" << threads;
      EXPECT_EQ(got.active, expected.active)
          << "K=" << k << " threads=" << threads;
      EXPECT_GT(sharded.bridge_records(), 0);
    }
  }
}

// Broadcasts a fixed record from every node in [lo, hi) each round; the
// deterministic traffic source for the shrink / accounting / placement
// regressions below (no RNG, no inbox dependence).
class SelectiveFlood final : public DistributedAlgorithm {
 public:
  SelectiveFlood(NodeId lo, NodeId hi, std::int64_t rounds)
      : lo_(lo), hi_(hi), rounds_(rounds) {}

  void initialize(Network& net) override {
    net.for_nodes([&](NodeId v) {
      if (v >= lo_ && v < hi_) emit(net, v);
    });
  }

  void process_round(Network& net) override {
    net.for_nodes([&](NodeId v) {
      if (v >= lo_ && v < hi_ && net.current_round() < rounds_) emit(net, v);
    });
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= rounds_;
  }

 private:
  static void emit(Network& net, NodeId v) {
    net.broadcast(v, Message::tagged(1).add_id(v).add_real(0.25));
  }

  NodeId lo_;
  NodeId hi_;
  std::int64_t rounds_;
};

// Complete bipartite K_{40,40} with the shard boundary on the waist:
// every broadcast crosses the bridge, so each direction's relay segment
// carries thousands of words per round.
WeightedGraph bipartite_cut_instance() {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 40; ++u)
    for (NodeId v = 40; v < 80; ++v) edges.push_back({u, v});
  return WeightedGraph::uniform(Graph::from_edges(80, edges));
}

TEST(ShardBoundaryTest, ShrinkReleasesQuietSegmentsAndKeepsBusyOnes) {
  // Regression: shrink_scratch used to judge every relay segment against
  // one GLOBAL pair of high-water marks, so a segment that stayed quiet
  // for a whole run kept capacity sized for the busiest segment's peak.
  // Run A loads both directions; run B (same Network, reset by run())
  // loads only the 0 -> 1 direction. After run B the quiet 1 -> 0
  // segment must have released its run-A capacity while the busy one
  // keeps its.
  const WeightedGraph wg = bipartite_cut_instance();
  CongestConfig cfg;
  cfg.shards = 2;
  ShardPlan plan;
  plan.node_begin = {0, 40, 80};
  ShardedNetwork sharded(wg, cfg, plan);
  ASSERT_EQ(sharded.num_shards(), 2);

  SelectiveFlood both(0, 80, 4);
  sharded.run(both);
  ASSERT_GT(sharded.relay_words_capacity(0, 1, 0),
            std::size_t{1024});  // run A grew both directions
  ASSERT_GT(sharded.relay_words_capacity(1, 0, 0), std::size_t{1024});

  SelectiveFlood forward_only(0, 40, 4);
  sharded.run(forward_only);
  EXPECT_GT(sharded.relay_words_capacity(0, 1, 0), std::size_t{1024})
      << "busy segment lost its capacity";
  EXPECT_LT(sharded.relay_words_capacity(1, 0, 0), std::size_t{1024})
      << "quiet segment still sized for the busiest segment's peak";
  EXPECT_LT(sharded.relay_recs_capacity(1, 0, 0),
            sharded.relay_recs_capacity(0, 1, 0));
}

TEST(ShardBoundaryTest, PhaseResetFoldsPendingSegmentsIntoHighWaters) {
  // Regression: a phase that ends with relay records still pending (sent,
  // never flipped) used to discard them at the next clear_all_lanes
  // WITHOUT folding their sizes into the high-water marks — so the
  // post-phase shrink treated the segment as idle and released capacity
  // the next phase immediately re-pays. The records must also still be
  // counted by the bridged-volume matrix (they crossed at send time),
  // while bridge_records() keeps counting only *merged* records.
  const WeightedGraph wg = bipartite_cut_instance();
  CongestConfig cfg;
  cfg.shards = 2;
  ShardPlan plan;
  plan.node_begin = {0, 40, 80};
  ShardedNetwork sharded(wg, cfg, plan);
  sharded.reset_for_reuse();

  // rounds = 0: initialize() sends 1600 cut broadcasts, finished() is
  // already true, so no flip ever merges them.
  SelectiveFlood burst(0, 40, 0);
  sharded.run_phase(burst, "burst");
  EXPECT_EQ(sharded.bridge_records(), 0) << "nothing was merged";
  EXPECT_GT(sharded.bridged_words(0, 1), 0) << "pending volume not counted";

  SelectiveFlood quiet(0, 0, 2);
  sharded.run_phase(quiet, "quiet");
  EXPECT_GT(sharded.relay_words_capacity(0, 1, 0), std::size_t{1024})
      << "pending burst capacity was shrunk away as if the segment were idle";
}

TEST(ShardBoundaryTest, MeasuredPlanMovesBoundaryToColdEdgeAndKeepsBits) {
  // End-to-end traffic-aware placement: on the path 0-...-31 with K = 2
  // the structural plan puts the boundary at 16, inside the hot window
  // [14, 18) that broadcasts every round. The measured profile must slide
  // it to 13 — the first in-slack-band position over a cold edge — and
  // adopting the measured plan must leave the results bit-identical
  // while eliminating the bridge volume for this traffic.
  const WeightedGraph wg = WeightedGraph::uniform(gen::grid(1, 32));
  CongestConfig cfg;
  Network reference(wg, cfg);
  SelectiveFlood hot_ref(14, 18, 6);
  const RunStats expected = reference.run(hot_ref);

  CongestConfig scfg = cfg;
  scfg.shards = 2;
  ShardedNetwork sharded(wg, scfg);
  ASSERT_EQ(sharded.plan().node_begin[1], 16u);
  sharded.enable_traffic_profile();
  SelectiveFlood hot(14, 18, 6);
  EXPECT_EQ(sharded.run(hot), expected);
  const std::int64_t volume_before =
      sharded.bridged_words(0, 1) + sharded.bridged_words(1, 0);
  EXPECT_GT(volume_before, 0);

  const ShardPlan measured = sharded.measured_plan();
  EXPECT_EQ(measured.node_begin[1], 13u);
  EXPECT_EQ(measured, sharded.measured_plan()) << "nondeterministic";

  sharded.adopt_plan(measured);
  SelectiveFlood hot_again(14, 18, 6);
  EXPECT_EQ(sharded.run(hot_again), expected)
      << "re-planning changed the bits";
  const std::int64_t volume_after =
      sharded.bridged_words(0, 1) + sharded.bridged_words(1, 0);
  EXPECT_LT(volume_after, volume_before);
  EXPECT_EQ(volume_after, 0) << "hot window still straddles the boundary";

  // The scripted mixed traffic must also stay bit-identical on the
  // adopted plan (broadcasts + directed probes + active-set snapshots).
  Network script_ref(wg, cfg);
  const ScriptRun want = run_script(script_ref, 6);
  const ScriptRun got = run_script(sharded, 6);
  EXPECT_EQ(got.stats, want.stats);
  EXPECT_EQ(got.trace, want.trace);
  EXPECT_EQ(got.active, want.active);
}

TEST(ShardBoundaryTest, ReuseAcrossRunsStaysBitIdentical) {
  Rng rng(31);
  const WeightedGraph wg =
      WeightedGraph::uniform(gen::barabasi_albert(200, 3, rng));
  CongestConfig cfg;
  cfg.shards = 4;
  cfg.threads = 2;
  ShardedNetwork sharded(wg, cfg);
  const ScriptRun first = run_script(sharded, 6);
  const std::int64_t first_bridge = sharded.bridge_records();
  EXPECT_GT(first_bridge, 0);
  const ScriptRun again = run_script(sharded, 6);
  EXPECT_EQ(first.stats, again.stats);
  EXPECT_EQ(first.trace, again.trace);
  EXPECT_EQ(first.active, again.active);
  // run() resets, so the bridge counter reports one run's traffic.
  EXPECT_EQ(sharded.bridge_records(), first_bridge);
}

// --------------------------------------------- registry solver bit-identity

TEST(ShardedSolversTest, EverySolverBitMatchesUnshardedOnTheSmallCorpus) {
  const int wide = test_thread_width();
  const auto corpus = harness::small_corpus(7);
  ASSERT_GE(corpus.size(), 10u);
  for (const auto& inst : corpus) {
    for (const harness::SolverInfo& info : harness::all_solvers()) {
      if (!harness::solver_applicable(info, inst)) continue;
      harness::SolverParams params = harness::params_for(info, inst);
      CongestConfig cfg;
      cfg.seed = 0xdead0002ULL;
      params.threads = 1;
      const MdsResult reference =
          harness::run_solver(info.name, inst.wg, params, cfg);
      ASSERT_FALSE(reference.stats.phases.empty());

      for (const int k : {2, 4}) {
        for (const int threads : {1, wide}) {
          harness::SolverParams sparams = params;
          sparams.threads = threads;
          sparams.shards = k;
          const MdsResult sharded =
              harness::run_solver(info.name, inst.wg, sparams, cfg);
          // One comparison covers the result, the totals, and the
          // per-phase breakdown (RunStats includes phases).
          EXPECT_EQ(sharded, reference)
              << info.name << " on " << inst.name << " K=" << k
              << " threads=" << threads;
        }
      }
    }
  }
}

// ----------------------------------------------------- scenario integration

TEST(ShardedScenarioTest, ShardSweepIsDeterministicAndStampsRows) {
  const auto corpus = harness::small_corpus(13);
  harness::ScenarioSpec spec;
  spec.solvers.push_back({"det", std::nullopt, "det"});
  spec.solvers.push_back({"greedy-threshold", std::nullopt, "gt"});
  spec.thread_widths = {1, 2};
  spec.shard_counts = {1, 2, 4};
  const std::vector<const harness::CorpusInstance*> instances = {
      &corpus.front()};
  const auto rows = harness::run_scenario(spec, instances);
  ASSERT_EQ(rows.size(), 2u * 2u * 3u);
  EXPECT_TRUE(harness::all_identical(rows));
  for (const auto& row : rows) {
    EXPECT_TRUE(row.shards == 1 || row.shards == 2 || row.shards == 4);
    // Schema v3: K-1 per-boundary bridge-volume counters per row, empty
    // for unsharded rows (a plain Network has no bridge).
    EXPECT_EQ(row.bridged_bytes.size(),
              static_cast<std::size_t>(row.shards - 1));
  }

  std::ostringstream os;
  harness::write_scenario_json(os, rows);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": " +
                      std::to_string(harness::kScenarioJsonSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"shards\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"bridged_bytes\": []"), std::string::npos);
  EXPECT_NE(json.find("\"bridged_bytes\": ["), std::string::npos);
}

}  // namespace
}  // namespace arbods::shard
