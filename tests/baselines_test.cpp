// Tests for the comparator algorithms: centralized greedy, exact
// branch-and-bound, exact tree DP, LW-style distributed greedy, the
// simplex LP solver, and Bansal-Umboh rounding.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baselines/bansal_umboh.hpp"
#include "baselines/distributed_greedy.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "baselines/simplex.hpp"
#include "baselines/tree_dp.hpp"
#include "common/check.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/verify.hpp"

namespace arbods {
namespace {

// Brute-force OPT by subset enumeration, n <= 20.
Weight brute_force_opt(const WeightedGraph& wg) {
  const NodeId n = wg.num_nodes();
  EXPECT_LE(n, 20u);
  Weight best = std::numeric_limits<Weight>::max();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    NodeSet set;
    for (NodeId v = 0; v < n; ++v)
      if (mask & (1u << v)) set.push_back(v);
    if (!is_dominating_set(wg.graph(), set)) continue;
    best = std::min(best, wg.total_weight(set));
  }
  return best;
}

// ------------------------------------------------------------------ greedy

TEST(Greedy, ValidOnVariousGraphs) {
  Rng rng(800);
  for (int i = 0; i < 5; ++i) {
    Graph g = gen::erdos_renyi_gnp(120, 0.05, rng);
    auto w = gen::uniform_weights(120, 32, rng);
    WeightedGraph wg(std::move(g), std::move(w));
    auto set = baselines::greedy_dominating_set(wg);
    EXPECT_TRUE(is_dominating_set(wg.graph(), set));
    EXPECT_TRUE(is_valid_node_set(wg.graph(), set));
  }
}

TEST(Greedy, OptimalOnStar) {
  auto wg = WeightedGraph::uniform(gen::star(30));
  auto set = baselines::greedy_dominating_set(wg);
  EXPECT_EQ(set, NodeSet{0});
}

TEST(Greedy, PrefersCheapCoverage) {
  // Hub weight 2 vs 10 leaves of weight 1: greedy takes the hub
  // (2/10 < 1/1... per-element price 0.2).
  std::vector<Weight> w(11, 1);
  w[0] = 2;
  WeightedGraph wg(gen::star(11), std::move(w));
  auto set = baselines::greedy_dominating_set(wg);
  EXPECT_EQ(set, NodeSet{0});
}

TEST(Greedy, HandlesIsolatedNodes) {
  WeightedGraph wg(Graph(5), {1, 2, 3, 4, 5});
  auto set = baselines::greedy_dominating_set(wg);
  EXPECT_EQ(set.size(), 5u);
}

TEST(Greedy, WithinLnBoundOnSmallInstances) {
  Rng rng(801);
  for (int i = 0; i < 6; ++i) {
    Graph g = gen::erdos_renyi_gnp(14, 0.25, rng);
    WeightedGraph wg = WeightedGraph::uniform(std::move(g));
    auto set = baselines::greedy_dominating_set(wg);
    const Weight opt = brute_force_opt(wg);
    const double hn = 1.0 + std::log(wg.graph().max_degree() + 1.0);
    EXPECT_LE(static_cast<double>(wg.total_weight(set)),
              hn * static_cast<double>(opt) + 1e-9);
  }
}

// ------------------------------------------------------------------- exact

TEST(Exact, MatchesBruteForceUnweighted) {
  Rng rng(802);
  for (int i = 0; i < 8; ++i) {
    Graph g = gen::erdos_renyi_gnp(13, 0.2, rng);
    WeightedGraph wg = WeightedGraph::uniform(std::move(g));
    auto res = baselines::exact_dominating_set(wg);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->weight, brute_force_opt(wg)) << "trial " << i;
    EXPECT_TRUE(is_dominating_set(wg.graph(), res->set));
    EXPECT_EQ(wg.total_weight(res->set), res->weight);
  }
}

TEST(Exact, MatchesBruteForceWeighted) {
  Rng rng(803);
  for (int i = 0; i < 8; ++i) {
    Graph g = gen::erdos_renyi_gnp(12, 0.25, rng);
    auto w = gen::uniform_weights(12, 9, rng);
    WeightedGraph wg(std::move(g), std::move(w));
    auto res = baselines::exact_dominating_set(wg);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->weight, brute_force_opt(wg)) << "trial " << i;
  }
}

TEST(Exact, SolvesModerateSparseInstances) {
  Rng rng(804);
  Graph g = gen::k_tree_union(34, 2, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  auto res = baselines::exact_dominating_set(wg);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(is_dominating_set(wg.graph(), res->set));
}

TEST(Exact, BudgetExhaustionReturnsNullopt) {
  Rng rng(805);
  Graph g = gen::erdos_renyi_gnp(40, 0.3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  auto res = baselines::exact_dominating_set(wg, /*node_budget=*/10);
  EXPECT_FALSE(res.has_value());
}

// ----------------------------------------------------------------- tree dp

TEST(TreeDp, MatchesExactOnSmallForests) {
  Rng rng(806);
  for (int i = 0; i < 10; ++i) {
    Graph g = gen::random_forest(16, 3, rng);
    auto w = gen::uniform_weights(16, 8, rng);
    WeightedGraph wg(std::move(g), std::move(w));
    auto dp = baselines::tree_dominating_set(wg);
    auto bb = baselines::exact_dominating_set(wg);
    ASSERT_TRUE(bb.has_value());
    EXPECT_EQ(dp.weight, bb->weight) << "trial " << i;
    EXPECT_TRUE(is_dominating_set(wg.graph(), dp.set));
    EXPECT_EQ(wg.total_weight(dp.set), dp.weight);
  }
}

TEST(TreeDp, LargeTreeValidAndConsistent) {
  Rng rng(807);
  Graph g = gen::random_tree_prufer(5000, rng);
  auto w = gen::uniform_weights(5000, 100, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  auto dp = baselines::tree_dominating_set(wg);
  EXPECT_TRUE(is_dominating_set(wg.graph(), dp.set));
}

TEST(TreeDp, RejectsNonForest) {
  auto wg = WeightedGraph::uniform(gen::cycle(5));
  EXPECT_THROW(baselines::tree_dominating_set(wg), CheckError);
}

TEST(TreeDp, PathKnownOptimum) {
  // P6 unweighted: OPT = 2 ({1,4}).
  auto wg = WeightedGraph::uniform(gen::path(6));
  EXPECT_EQ(baselines::tree_dominating_set(wg).weight, 2);
}

TEST(TreeDp, WeightedPathPrefersCheapCenters) {
  // 0-1-2 with weights 100, 1, 100: OPT = {1}.
  WeightedGraph wg(gen::path(3), {100, 1, 100});
  auto dp = baselines::tree_dominating_set(wg);
  EXPECT_EQ(dp.set, NodeSet{1});
}

TEST(TreeDp, IsolatedNodes) {
  WeightedGraph wg(Graph(3), {5, 6, 7});
  auto dp = baselines::tree_dominating_set(wg);
  EXPECT_EQ(dp.weight, 18);
}

// ------------------------------------------------------- threshold greedy

TEST(ThresholdGreedy, ValidAndPhaseBounded) {
  Rng rng(808);
  for (int i = 0; i < 4; ++i) {
    Graph g = gen::barabasi_albert(300, 3, rng);
    WeightedGraph wg = WeightedGraph::uniform(std::move(g));
    Network net(wg);
    baselines::ThresholdGreedyMds algo;
    RunStats stats = net.run(algo, 100000);
    ASSERT_FALSE(stats.hit_round_limit);
    MdsResult res = algo.result(net);
    res.validate(wg);
    EXPECT_LE(res.iterations,
              3 + static_cast<std::int64_t>(
                      std::ceil(std::log2(wg.graph().max_degree() + 1.0))));
  }
}

TEST(ThresholdGreedy, StarResolvedQuickly) {
  auto wg = WeightedGraph::uniform(gen::star(128));
  Network net(wg);
  baselines::ThresholdGreedyMds algo;
  net.run(algo, 10000);
  MdsResult res = algo.result(net);
  res.validate(wg);
  // Hub has full uncovered degree in phase 0 and joins alone.
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(ThresholdGreedy, EmptyGraph) {
  auto wg = WeightedGraph::uniform(Graph(0));
  Network net(wg);
  baselines::ThresholdGreedyMds algo;
  RunStats stats = net.run(algo, 10);
  EXPECT_FALSE(stats.hit_round_limit);
}

// ---------------------------------------------------------------- election

TEST(ElectionGreedy, ValidOnManyFamilies) {
  Rng rng(809);
  std::vector<Graph> graphs;
  graphs.push_back(gen::grid(10, 10));
  graphs.push_back(gen::random_tree_prufer(150, rng));
  graphs.push_back(gen::erdos_renyi_gnp(150, 0.05, rng));
  graphs.push_back(Graph(7));  // isolated nodes
  for (auto& g : graphs) {
    WeightedGraph wg = WeightedGraph::uniform(std::move(g));
    Network net(wg);
    baselines::ElectionGreedyMds algo;
    RunStats stats = net.run(algo, 10000);
    ASSERT_FALSE(stats.hit_round_limit);
    MdsResult res = algo.result(net);
    res.validate(wg);
  }
}

TEST(ElectionGreedy, CompletesInOnePhase) {
  Rng rng(810);
  auto wg = WeightedGraph::uniform(gen::random_tree_prufer(200, rng));
  Network net(wg);
  baselines::ElectionGreedyMds algo;
  RunStats stats = net.run(algo, 10000);
  EXPECT_LE(stats.rounds, 9);  // 4-round phase + termination checks
}

// ----------------------------------------------------------------- simplex

TEST(Simplex, TinyKnownLp) {
  // min x0 + x1 s.t. x0 + x1 >= 1, x0 >= 0.25 -> optimum 1 at (0.25, 0.75)
  // or (1, 0): value 1.
  std::vector<baselines::SparseRow> rows{
      {{0, 1.0}, {1, 1.0}},
      {{0, 1.0}},
  };
  auto res = baselines::solve_covering_lp(2, rows, {1.0, 0.25}, {1.0, 1.0});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, 1e-7);
}

TEST(Simplex, WeightedObjective) {
  // min 3a + b s.t. a + b >= 2 -> b = 2, objective 2.
  std::vector<baselines::SparseRow> rows{{{0, 1.0}, {1, 1.0}}};
  auto res = baselines::solve_covering_lp(2, rows, {2.0}, {3.0, 1.0});
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 2.0, 1e-7);
  EXPECT_NEAR(res.x[1], 2.0, 1e-7);
}

TEST(Simplex, FractionalMdsOnCycleIsNOver3) {
  // C_9: LP optimum n/3 = 3 (x_v = 1/3).
  auto wg = WeightedGraph::uniform(gen::cycle(9));
  auto res = baselines::solve_fractional_mds(wg);
  EXPECT_NEAR(res.objective, 3.0, 1e-6);
}

TEST(Simplex, FractionalMdsOnStarIsOne) {
  auto wg = WeightedGraph::uniform(gen::star(20));
  auto res = baselines::solve_fractional_mds(wg);
  EXPECT_NEAR(res.objective, 1.0, 1e-6);
}

TEST(Simplex, LpIsLowerBoundOnIntegralOpt) {
  Rng rng(811);
  for (int i = 0; i < 5; ++i) {
    Graph g = gen::erdos_renyi_gnp(14, 0.2, rng);
    WeightedGraph wg = WeightedGraph::uniform(std::move(g));
    auto lp = baselines::solve_fractional_mds(wg);
    const Weight opt = brute_force_opt(wg);
    EXPECT_LE(lp.objective, static_cast<double>(opt) + 1e-6);
    // LP solution is a feasible fractional dominating set.
    for (NodeId v = 0; v < wg.num_nodes(); ++v) {
      double cover = lp.x[v];
      for (NodeId u : wg.graph().neighbors(v)) cover += lp.x[u];
      EXPECT_GE(cover, 1.0 - 1e-7);
    }
  }
}

// ------------------------------------------------------------ bansal-umboh

TEST(BansalUmboh, ValidAndWithinBound) {
  Rng rng(812);
  for (NodeId alpha : {1u, 2u, 3u}) {
    Graph g = gen::k_tree_union(60, alpha, rng);
    auto res = baselines::bansal_umboh_dominating_set(g, alpha);
    EXPECT_TRUE(is_dominating_set(g, res.set));
    EXPECT_LE(static_cast<double>(res.set.size()),
              (2.0 * alpha + 1.0) * res.lp_value + 1e-6)
        << "alpha " << alpha;
  }
}

TEST(BansalUmboh, StarTakesHub) {
  auto res = baselines::bansal_umboh_dominating_set(gen::star(30), 1);
  EXPECT_TRUE(is_dominating_set(gen::star(30), res.set));
  EXPECT_NEAR(res.lp_value, 1.0, 1e-6);
}

}  // namespace
}  // namespace arbods
