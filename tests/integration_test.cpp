// Cross-cutting integration tests: every solver on the same instances,
// CONGEST compliance of all algorithms, quantization robustness, and
// end-to-end comparisons against exact optima.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bansal_umboh.hpp"
#include "baselines/distributed_greedy.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "baselines/simplex.hpp"
#include "core/solvers.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/transform.hpp"
#include "graph/verify.hpp"
#include "harness/registry.hpp"

namespace arbods {
namespace {

// ------------------------------------------------ all solvers, one instance

TEST(Integration, EverySolverProducesAValidSetOnTheSameGraph) {
  Rng rng(1000);
  Graph g0 = gen::k_tree_union(120, 2, rng);
  auto w = gen::uniform_weights(120, 16, rng);
  WeightedGraph wg(std::move(g0), std::move(w));

  harness::SolverParams params;
  params.alpha = 2;
  params.eps = 0.3;
  for (const auto& info : harness::all_solvers()) {
    if (info.forests_only) continue;  // k_tree_union(·, 2, ·) has cycles
    harness::run_solver(info.name, wg, params).validate(wg, 1e-5);
  }

  Network net1(wg);
  baselines::ThresholdGreedyMds tg;
  net1.run(tg, 100000);
  tg.result(net1).validate(wg);

  Network net2(wg);
  baselines::ElectionGreedyMds eg;
  net2.run(eg, 100000);
  eg.result(net2).validate(wg);
}

// ----------------------------------------------------- CONGEST compliance

TEST(Integration, AllDistributedAlgorithmsRespectMessageCap) {
  // The cap is enforced by the Network (throws on violation), so a clean
  // run *is* the proof; additionally assert the observed width against
  // the shared cap helper the Network itself uses.
  Rng rng(1001);
  Graph g = gen::barabasi_albert(400, 3, rng);
  auto w = gen::uniform_weights(400, 1000, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  WeightedGraph forest =
      WeightedGraph::uniform(gen::random_tree_prufer(100, rng));
  CongestConfig cfg;  // enforcement on by default

  harness::SolverParams params;
  params.alpha = 3;
  params.eps = 0.3;
  for (const auto& info : harness::all_solvers()) {
    const WeightedGraph& instance = info.forests_only ? forest : wg;
    const MdsResult res = harness::run_solver(info.name, instance, params, cfg);
    EXPECT_GT(res.stats.max_message_bits, 0) << info.name;
    EXPECT_LE(res.stats.max_message_bits,
              congest_message_cap(cfg, instance.num_nodes()))
        << info.name;
  }
}

TEST(Integration, QuantizationOffMatchesGuaranteeToo) {
  Rng rng(1002);
  Graph g = gen::k_tree_union(150, 2, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  CongestConfig precise;
  precise.quantize_reals = false;
  MdsResult a = solve_mds_deterministic(wg, 2, 0.3, precise);
  MdsResult b = solve_mds_deterministic(wg, 2, 0.3);  // quantized
  a.validate(wg, 1e-9);  // exact reals: tight feasibility
  b.validate(wg, 1e-5);
  // Both meet the certificate; solutions may differ only marginally.
  EXPECT_LE(a.certified_ratio(), 5.0 * 1.3 + 1e-9);
  EXPECT_LE(b.certified_ratio(), 5.0 * 1.3 * (1 + 1e-6));
}

// ----------------------------------------------------------- quality order

TEST(Integration, CertifiedBoundsAreConsistentWithExactOpt) {
  Rng rng(1003);
  Graph g = gen::k_tree_union(26, 2, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  auto exact = baselines::exact_dominating_set(wg);
  ASSERT_TRUE(exact.has_value());
  auto lp = baselines::solve_fractional_mds(wg);

  MdsResult ours = solve_mds_deterministic(wg, 2, 0.2);
  // Chain: packing sum <= LP <= OPT <= our weight.
  EXPECT_LE(ours.packing_lower_bound, lp.objective + 1e-6);
  EXPECT_LE(lp.objective, static_cast<double>(exact->weight) + 1e-6);
  EXPECT_GE(ours.weight, exact->weight);
}

TEST(Integration, OursBeatsThresholdGreedyOnAdversarialWeights) {
  // Weighted instance where degree-greedy pays heavy hubs: our algorithm
  // is weight-aware, the unweighted LW-style baseline is not.
  Rng rng(1004);
  Graph g = gen::star(200);
  std::vector<Weight> w(200, 1);
  w[0] = 100000;  // hub is expensive
  WeightedGraph wg(gen::star(200), std::move(w));

  MdsResult ours = solve_mds_deterministic(wg, 1, 0.2);
  Network net(wg);
  baselines::ThresholdGreedyMds tg;
  net.run(tg, 100000);
  MdsResult theirs = tg.result(net);
  EXPECT_LT(ours.weight, theirs.weight);
}

TEST(Integration, RandomizedBeatsDeterministicFactorForLargeAlpha) {
  // Theorem 1.2's point: ~alpha versus ~2*alpha. With alpha = 8 and unit
  // weights the certified ratios should reflect the gap on average.
  Rng rng(1005);
  Graph g = gen::k_tree_union(400, 8, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  MdsResult det = solve_mds_deterministic(wg, 8, 0.1);
  double rand_sum = 0;
  const int kSeeds = 3;
  for (int s = 0; s < kSeeds; ++s) {
    CongestConfig cfg;
    cfg.seed = 3000 + s;
    rand_sum += static_cast<double>(
        solve_mds_randomized(wg, 8, 8, cfg).weight);
  }
  // Not a theorem (variance, small n), but with these seeds the randomized
  // algorithm should not be more than ~15% behind, demonstrating parity or
  // better despite the much stronger analytic bound.
  EXPECT_LE(rand_sum / kSeeds, static_cast<double>(det.weight) * 1.15);
}

// -------------------------------------------------------------- robustness

TEST(Integration, DisconnectedGraphsHandledEverywhere) {
  Rng rng(1006);
  Graph a = gen::random_tree_prufer(40, rng);
  Graph b = gen::cycle(30);
  Graph c = Graph(5);
  Graph g = disjoint_union(disjoint_union(a, b), c);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  solve_mds_deterministic(wg, 2, 0.4).validate(wg, 1e-5);
  solve_mds_randomized(wg, 2, 1).validate(wg, 1e-5);
  solve_mds_unknown_alpha(wg, 0.4).validate(wg, 1e-5);
}

TEST(Integration, LargeWeightsStayWithinMessageBudget) {
  Rng rng(1007);
  Graph g = gen::random_tree_prufer(200, rng);
  std::vector<Weight> w(200);
  for (auto& x : w) x = rng.next_int(1, 1'000'000);
  WeightedGraph wg(std::move(g), std::move(w));
  MdsResult res = solve_mds_deterministic(wg, 1, 0.3);
  res.validate(wg, 1e-5);
}

TEST(Integration, AlphaOverestimateStillValidJustWeaker) {
  Rng rng(1008);
  Graph g = gen::random_tree_prufer(150, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  MdsResult tight = solve_mds_deterministic(wg, 1, 0.3);
  MdsResult loose = solve_mds_deterministic(wg, 10, 0.3);
  tight.validate(wg, 1e-5);
  loose.validate(wg, 1e-5);
  EXPECT_LE(tight.certified_ratio(), 3.0 * 1.3 * (1 + 1e-6));
  EXPECT_LE(loose.certified_ratio(), 21.0 * 1.3 * (1 + 1e-6));
}

TEST(Integration, BansalUmbohAndOursComparableOnUnweighted) {
  Rng rng(1009);
  Graph g = gen::k_tree_union(80, 2, rng);
  auto bu = baselines::bansal_umboh_dominating_set(g, 2);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  MdsResult ours = solve_mds_deterministic(wg, 2, 0.2);
  // Both are (2a+1)(1+eps)-style approximations of the same LP-ish bound.
  EXPECT_LE(static_cast<double>(ours.weight),
            5.0 * 1.2 * (bu.lp_value + 1e-9));
  EXPECT_LE(static_cast<double>(bu.set.size()), 5.0 * bu.lp_value + 1e-6);
}

}  // namespace
}  // namespace arbods
