// Property-style randomized sweep: for seeded random graphs with
// n <= 40, every registered solver must return a valid dominating set
// whose cost stays within its theorem's approximation bound times the
// exact optimum (computed by baselines/exact.hpp).
#include <gtest/gtest.h>

#include "baselines/exact.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/stats.hpp"
#include "graph/verify.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"

namespace arbods::harness {
namespace {

struct RandomInstance {
  std::string name;
  WeightedGraph wg;
  NodeId alpha;
  bool forest;
  bool unit_weights;
};

RandomInstance random_instance(std::uint64_t seed) {
  Rng rng(seed);
  const NodeId n = static_cast<NodeId>(rng.next_int(8, 40));
  const int family = static_cast<int>(rng.next_int(0, 3));
  Graph g(0);
  NodeId alpha = 1;
  switch (family) {
    case 0:
      g = gen::random_tree_prufer(n, rng);
      alpha = 1;
      break;
    case 1: {
      const NodeId k = static_cast<NodeId>(rng.next_int(2, 4));
      g = gen::k_tree_union(n, k, rng);
      alpha = k;
      break;
    }
    case 2:
      g = gen::random_forest(n, static_cast<NodeId>(rng.next_int(1, 3)), rng);
      alpha = 1;
      break;
    default:
      g = gen::barabasi_albert(n, 2, rng);
      alpha = 2;
      break;
  }
  const bool forest = is_forest(g);
  const bool unit = rng.next_int(0, 1) == 0;
  WeightedGraph wg =
      unit ? WeightedGraph::uniform(std::move(g))
           : WeightedGraph(std::move(g), gen::uniform_weights(n, 8, rng));
  return {"seed" + std::to_string(seed), std::move(wg), alpha, forest, unit};
}

TEST(Property, AllSolversValidAndWithinBoundOnRandomSmallGraphs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const RandomInstance ri = random_instance(seed);
    auto exact = baselines::exact_dominating_set(ri.wg);
    ASSERT_TRUE(exact.has_value()) << ri.name;
    const double opt = static_cast<double>(exact->weight);

    for (const SolverInfo& info : all_solvers()) {
      if (info.forests_only && !ri.forest) continue;
      SolverParams params;
      if (info.schema.alpha) params.alpha = ri.alpha;
      CongestConfig cfg;
      cfg.seed = 0xfeed0000ULL + seed;
      const MdsResult res = run_solver(info.name, ri.wg, params, cfg);

      EXPECT_TRUE(is_valid_node_set(ri.wg.graph(), res.dominating_set))
          << info.name << " on " << ri.name;
      EXPECT_TRUE(is_dominating_set(ri.wg.graph(), res.dominating_set))
          << info.name << " on " << ri.name;
      if (info.bound_needs_unit_weights && !ri.unit_weights) continue;
      const double bound = info.approx_bound(ri.wg, params);
      EXPECT_LE(static_cast<double>(res.weight), bound * opt * (1 + 1e-9))
          << info.name << " on " << ri.name << " (n=" << ri.wg.num_nodes()
          << ", alpha=" << ri.alpha << ", OPT=" << opt << ")";
    }
  }
}

TEST(Property, RunStatsInvariantsHoldForEverySolver) {
  // Simulator accounting invariants, for every solver on seeded random
  // graphs. A node may send at most one message per incident edge per
  // round, so with 2|E| directed edges and one possible round-0 send
  // burst from initialize(): messages <= (rounds + 1) * 2|E|. Every
  // message is between 1 bit and the enforced CONGEST cap wide.
  for (std::uint64_t seed = 40; seed <= 48; ++seed) {
    const RandomInstance ri = random_instance(seed);
    const auto directed_edges =
        static_cast<std::int64_t>(2 * ri.wg.graph().num_edges());
    for (const SolverInfo& info : all_solvers()) {
      if (info.forests_only && !ri.forest) continue;
      SolverParams params;
      if (info.schema.alpha) params.alpha = ri.alpha;
      CongestConfig cfg;
      cfg.seed = 0xabc0000ULL + seed;
      const MdsResult res = run_solver(info.name, ri.wg, params, cfg);
      const RunStats& s = res.stats;
      const int cap = congest_message_cap(cfg, ri.wg.num_nodes());

      EXPECT_GE(s.rounds, 1) << info.name << " on " << ri.name;
      EXPECT_FALSE(s.hit_round_limit) << info.name << " on " << ri.name;
      EXPECT_LE(s.messages, (s.rounds + 1) * directed_edges)
          << info.name << " on " << ri.name;
      EXPECT_LE(s.max_message_bits, cap) << info.name << " on " << ri.name;
      EXPECT_LE(s.total_bits,
                s.messages * static_cast<std::int64_t>(cap))
          << info.name << " on " << ri.name;
      EXPECT_GE(s.total_bits, s.messages)  // every message is >= 1 bit
          << info.name << " on " << ri.name;
      if (s.messages > 0) {
        EXPECT_GT(s.max_message_bits, 0) << info.name << " on " << ri.name;
        EXPECT_LE(static_cast<std::int64_t>(s.max_message_bits),
                  s.total_bits)
            << info.name << " on " << ri.name;
      }
    }
  }
}

TEST(Property, PackingLowerBoundNeverExceedsOpt) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    const RandomInstance ri = random_instance(seed);
    auto exact = baselines::exact_dominating_set(ri.wg);
    ASSERT_TRUE(exact.has_value());
    for (std::string_view name : {"det", "randomized", "unknown-alpha"}) {
      const SolverInfo& info = solver(name);
      SolverParams params;
      if (info.schema.alpha) params.alpha = ri.alpha;
      const MdsResult res = run_solver(name, ri.wg, params);
      EXPECT_LE(res.packing_lower_bound,
                static_cast<double>(exact->weight) * (1 + 1e-6))
          << name << " on " << ri.name;
    }
  }
}

}  // namespace
}  // namespace arbods::harness
