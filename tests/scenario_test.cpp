// Scenario batch-runner tests: expansion over {solvers x instances x
// widths x seeds x repeats}, bit-identity against the direct registry
// drivers, Network pooling (constructed once per (width, seed) and
// reused across solvers and repeats), parameter overrides, applicability
// skipping, and the JSON writer.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/oracle.hpp"
#include "harness/scenario.hpp"

namespace arbods::harness {
namespace {

std::vector<const CorpusInstance*> pointers(
    const std::vector<CorpusInstance>& corpus, std::size_t limit) {
  std::vector<const CorpusInstance*> out;
  for (std::size_t i = 0; i < corpus.size() && i < limit; ++i)
    out.push_back(&corpus[i]);
  return out;
}

TEST(Scenario, RowsMatchDirectRegistryRunsBitForBit) {
  const auto corpus = small_corpus(11);
  const auto instances = pointers(corpus, 4);

  ScenarioSpec spec;
  spec.solvers.push_back({"det", std::nullopt, ""});
  spec.solvers.push_back({"randomized", std::nullopt, ""});
  spec.thread_widths = {1, 4};
  spec.seeds = {77};
  const auto rows = run_scenario(spec, instances);
  ASSERT_EQ(rows.size(), instances.size() * 2 * 2);
  EXPECT_TRUE(all_identical(rows));

  for (const ScenarioRow& row : rows) {
    const CorpusInstance* inst = nullptr;
    for (const auto* candidate : instances)
      if (candidate->name == row.instance) inst = candidate;
    ASSERT_NE(inst, nullptr);
    SolverParams params = params_for(solver(row.solver), *inst);
    params.threads = row.threads;
    CongestConfig cfg;
    cfg.seed = row.seed;
    const MdsResult direct = run_solver(row.solver, inst->wg, params, cfg);
    EXPECT_EQ(direct.dominating_set, row.result.dominating_set)
        << row.solver << " on " << row.instance;
    EXPECT_EQ(direct.weight, row.result.weight);
    EXPECT_EQ(direct.packing, row.result.packing);
    EXPECT_TRUE(direct.stats == row.result.stats);
  }
}

TEST(Scenario, NetworkPoolConstructsOncePerConfigAndReuses) {
  const auto corpus = small_corpus(12);
  NetworkPool pool;
  CongestConfig serial;
  CongestConfig wide;
  wide.threads = 4;

  Network& a = pool.acquire(corpus[0].wg, serial);
  Network& b = pool.acquire(corpus[0].wg, serial);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(pool.constructed(), 1u);

  Network& c = pool.acquire(corpus[0].wg, wide);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(pool.constructed(), 2u);

  // A different graph under the same config is a different entry.
  pool.acquire(corpus[1].wg, serial);
  EXPECT_EQ(pool.constructed(), 3u);
  EXPECT_EQ(pool.size(), 3u);

  pool.clear();
  EXPECT_EQ(pool.size(), 0u);
  pool.acquire(corpus[0].wg, serial);
  EXPECT_EQ(pool.constructed(), 4u);
}

TEST(Scenario, RepeatsReuseTheNetworkAndStayIdentical) {
  const auto corpus = small_corpus(13);
  const auto instances = pointers(corpus, 1);
  ScenarioSpec spec;
  spec.solvers.push_back({"det", std::nullopt, ""});
  spec.solvers.push_back({"greedy-election", std::nullopt, ""});
  spec.repeats = 3;  // + warm-up: 4 runs per cell, one Network
  const auto rows = run_scenario(spec, instances);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(all_identical(rows));
  for (const auto& row : rows) EXPECT_EQ(row.repeats, 3);
}

TEST(Scenario, SolverParamOverridesAreHonored) {
  const auto corpus = small_corpus(14);
  const auto instances = pointers(corpus, 1);
  ScenarioSpec spec;
  for (const std::int64_t t : {1, 4}) {
    SolverParams params;
    params.alpha = corpus[0].alpha;
    params.t = t;
    spec.solvers.push_back(
        {"randomized", params, "rand_t" + std::to_string(t)});
  }
  const auto rows = run_scenario(spec, instances);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].solver, "rand_t1");
  EXPECT_EQ(rows[1].solver, "rand_t4");
  // Larger t = smaller lambda = more extension phases (paper iterations).
  EXPECT_LT(rows[0].result.iterations, rows[1].result.iterations);
}

TEST(Scenario, InapplicableSolversAreSkippedOrRejected) {
  const auto corpus = small_corpus(15);
  // cycle15 is not a forest; the tree solver cannot run on it.
  const CorpusInstance* cyclic = nullptr;
  for (const auto& inst : corpus)
    if (!inst.forest) cyclic = &inst;
  ASSERT_NE(cyclic, nullptr);
  const std::vector<const CorpusInstance*> instances = {cyclic};

  ScenarioSpec spec;
  spec.solvers.push_back({"tree", std::nullopt, ""});
  spec.solvers.push_back({"det", std::nullopt, ""});
  const auto rows = run_scenario(spec, instances);
  ASSERT_EQ(rows.size(), 1u);  // tree skipped, det ran
  EXPECT_EQ(rows[0].solver, "det");

  spec.skip_inapplicable = false;
  EXPECT_THROW(run_scenario(spec, instances), CheckError);
}

TEST(Scenario, JsonWriterEmitsTheExp12Schema) {
  const auto corpus = small_corpus(16);
  const auto instances = pointers(corpus, 1);
  ScenarioSpec spec;
  spec.solvers.push_back({"greedy-threshold", std::nullopt, ""});
  const auto rows = run_scenario(spec, instances);
  ASSERT_EQ(rows.size(), 1u);

  std::ostringstream os;
  write_scenario_json(os, rows);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"instance\": \"" + rows[0].instance + "\""),
            std::string::npos);
  for (const char* key :
       {"\"family\"", "\"n\"", "\"m\"", "\"solver\"", "\"threads\"",
        "\"seconds\"", "\"repeats\"", "\"rounds\"", "\"messages\"",
        "\"total_bits\"", "\"set_size\"", "\"weight\"", "\"identical\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"identical\": true"), std::string::npos);
}

TEST(Scenario, PerPhaseBreakdownSurvivesIntoRows) {
  const auto corpus = small_corpus(17);
  const auto instances = pointers(corpus, 1);
  ScenarioSpec spec;
  SolverParams params;
  params.alpha = corpus[0].alpha;
  spec.solvers.push_back({"randomized", params, ""});
  const auto rows = run_scenario(spec, instances);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].result.stats.phases.size(), 2u);
  EXPECT_EQ(rows[0].result.stats.phases[0].name, "partial_ds");
  EXPECT_EQ(rows[0].result.stats.phases[1].name, "extension");
}

}  // namespace
}  // namespace arbods::harness
