// Tests for the CONGEST simulator: message encoding and bit accounting,
// the packed wire format, delivery semantics, lane spill/regrowth, cap
// enforcement, active-set scheduling, per-node randomness, statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "congest/message.hpp"
#include "congest/network.hpp"
#include "gen/classic.hpp"

namespace arbods {
namespace {

// ---------------------------------------------------------------- messages

TEST(Message, TagAndFields) {
  Message m = Message::tagged(3);
  m.add_id(7).add_weight(100).add_level(5).add_flag(true).add_real(0.25);
  EXPECT_EQ(m.tag(), 3);
  EXPECT_EQ(m.id_at(1), 7u);
  EXPECT_EQ(m.weight_at(2), 100);
  EXPECT_EQ(m.level_at(3), 5);
  EXPECT_TRUE(m.flag_at(4));
  EXPECT_DOUBLE_EQ(m.real_at(5), 0.25);
}

TEST(Message, UntaggedTagIsMinusOne) {
  Message m;
  m.add_flag(false);
  EXPECT_EQ(m.tag(), -1);
}

TEST(Message, KindMismatchThrows) {
  Message m = Message::tagged(0);
  m.add_flag(true);
  EXPECT_THROW(m.id_at(1), CheckError);
  EXPECT_THROW(m.flag_at(5), CheckError);
}

TEST(Message, BitSizeUsesModelWidths) {
  MessageSizeModel model;
  model.id_bits = 10;
  model.weight_bits = 7;
  model.level_bits = 5;
  model.flag_bits = 1;
  model.real_bits = 32;
  model.tag_bits = 4;
  Message m = Message::tagged(1);
  m.add_id(3).add_weight(2).add_level(1).add_flag(true).add_real(1.0);
  EXPECT_EQ(m.bit_size(model), 4 + 10 + 7 + 5 + 1 + 32);
}

TEST(Message, QuantizeRealsRoundsThroughCodec) {
  Message m = Message::tagged(0);
  const double v = 0.1;  // not representable exactly in 25 mantissa bits
  m.add_real(v);
  m.quantize_reals(default_value_codec());
  const double q = m.real_at(1);
  EXPECT_NE(q, 0.0);
  EXPECT_NEAR(q, v, v * default_value_codec().relative_error_bound() * 1.01);
}

TEST(Message, InlineStorageOverflowKeepsFieldsAddressable) {
  Message m = Message::tagged(2);
  for (int i = 0; i < 20; ++i) m.add_level(i * 100);  // beyond kInlineFields
  EXPECT_EQ(m.num_fields(), 21u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(m.level_at(1 + i), i * 100);
}

// ------------------------------------------------------ packed wire format

TEST(Wire, EncodeDecodeRoundTripsEveryKind) {
  MessageSizeModel model;
  model.id_bits = 17;
  model.weight_bits = 23;
  model.level_bits = 29;
  model.flag_bits = 1;
  model.real_bits = default_value_codec().bit_width();
  model.tag_bits = 4;
  Message m = Message::tagged(9);
  m.add_id(12345).add_weight(4'000'000).add_level(123456789).add_flag(true)
      .add_real(0.375).add_flag(false).add_id(3);
  std::vector<std::uint64_t> buf(wire_words(m, model, true));
  EXPECT_EQ(wire_encode(m, 777, model, true, buf.data()), buf.size());
  EXPECT_EQ(wire_payload_bits(m, model), m.bit_size(model));

  MessageView view(buf.data(), &model, true);
  EXPECT_EQ(view.sender(), 777u);
  EXPECT_EQ(view.num_fields(), 8u);
  EXPECT_EQ(view.words(), buf.size());
  EXPECT_EQ(view.tag(), 9);
  EXPECT_EQ(view.id_at(1), 12345u);
  EXPECT_EQ(view.weight_at(2), 4'000'000);
  EXPECT_EQ(view.level_at(3), 123456789);
  EXPECT_TRUE(view.flag_at(4));
  const auto& codec = default_value_codec();
  EXPECT_EQ(view.real_at(5), codec.decode(codec.encode(0.375)));
  EXPECT_FALSE(view.flag_at(6));
  EXPECT_EQ(view.id_at(7), 3u);
  EXPECT_THROW(view.id_at(2), CheckError);    // kind mismatch
  EXPECT_THROW(view.flag_at(8), CheckError);  // out of range
}

TEST(Wire, RawDoublesWhenQuantizationDisabled) {
  MessageSizeModel model;
  Message m = Message::tagged(1);
  m.add_real(0.1);  // not representable in the codec
  std::vector<std::uint64_t> buf(wire_words(m, model, false));
  wire_encode(m, 5, model, false, buf.data());
  MessageView view(buf.data(), &model, false);
  EXPECT_EQ(view.real_at(1), 0.1);  // exact 64-bit round trip
}

TEST(Wire, ManyFieldRecordsSpanKindWords) {
  MessageSizeModel model;
  model.flag_bits = 1;
  Message m;  // untagged: 40 flags forces three kind words
  for (int i = 0; i < 40; ++i) m.add_flag(i % 3 == 0);
  std::vector<std::uint64_t> buf(wire_words(m, model, true));
  wire_encode(m, 1, model, true, buf.data());
  MessageView view(buf.data(), &model, true);
  EXPECT_EQ(view.tag(), -1);
  EXPECT_EQ(view.num_fields(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(view.flag_at(i), i % 3 == 0);
}

// ----------------------------------------------------------------- network

// Two-round protocol: round 1 every node broadcasts its id; round 2 every
// node records the sum of received ids.
class EchoAlgorithm final : public DistributedAlgorithm {
 public:
  std::vector<std::int64_t> sums;

  void initialize(Network& net) override {
    sums.assign(net.num_nodes(), -1);
    for (NodeId v = 0; v < net.num_nodes(); ++v)
      net.broadcast(v, Message::tagged(0).add_id(v));
    round_ = 0;
  }

  void process_round(Network& net) override {
    ++round_;
    if (round_ != 1) return;
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      std::int64_t sum = 0;
      for (const MessageView m : net.inbox(v)) {
        sum += m.id_at(1);
        EXPECT_EQ(m.sender(), m.id_at(1));  // sender metadata is faithful
      }
      sums[v] = sum;
    }
  }

  bool finished(const Network& net) const override {
    (void)net;
    return round_ >= 1;
  }

 private:
  int round_ = 0;
};

TEST(Network, BroadcastDeliversToAllNeighborsNextRound) {
  auto wg = WeightedGraph::uniform(gen::cycle(5));
  Network net(wg);
  EchoAlgorithm algo;
  RunStats stats = net.run(algo, 10);
  EXPECT_EQ(stats.rounds, 1);
  for (NodeId v = 0; v < 5; ++v) {
    const std::int64_t left = (v + 4) % 5, right = (v + 1) % 5;
    EXPECT_EQ(algo.sums[v], left + right);
  }
}

TEST(Network, MessageAndBitAccounting) {
  auto wg = WeightedGraph::uniform(gen::cycle(5));
  Network net(wg);
  EchoAlgorithm algo;
  RunStats stats = net.run(algo, 10);
  EXPECT_EQ(stats.messages, 10);  // 5 broadcasts x degree 2
  const int per_msg = net.size_model().tag_bits + net.size_model().id_bits;
  EXPECT_EQ(stats.total_bits, 10 * per_msg);
  EXPECT_EQ(stats.max_message_bits, per_msg);
}

TEST(Network, SendRejectsNonEdges) {
  auto wg = WeightedGraph::uniform(gen::path(3));
  Network net(wg);
  EXPECT_THROW(net.send(0, 2, Message::tagged(0)), CheckError);
}

// An algorithm that sends one oversized message.
class OversizeAlgorithm final : public DistributedAlgorithm {
 public:
  void initialize(Network& net) override {
    Message m = Message::tagged(0);
    for (int i = 0; i < 100; ++i) m.add_id(0);
    net.broadcast(0, std::move(m));
  }
  void process_round(Network&) override {}
  bool finished(const Network&) const override { return true; }
};

TEST(Network, EnforcesMessageCap) {
  auto wg = WeightedGraph::uniform(gen::path(2));
  Network net(wg);
  OversizeAlgorithm algo;
  EXPECT_THROW(net.run(algo, 10), CheckError);
}

TEST(Network, CapCanBeLifted) {
  auto wg = WeightedGraph::uniform(gen::path(2));
  CongestConfig cfg;
  cfg.enforce_message_size = false;
  Network net(wg, cfg);
  OversizeAlgorithm algo;
  RunStats stats = net.run(algo, 10);
  EXPECT_GT(stats.max_message_bits, net.max_message_bits());
}

TEST(Network, CapOverride) {
  auto wg = WeightedGraph::uniform(gen::path(2));
  CongestConfig cfg;
  cfg.max_message_bits_override = 123;
  Network net(wg, cfg);
  EXPECT_EQ(net.max_message_bits(), 123);
}

TEST(Network, DefaultCapScalesWithLogN) {
  auto small = WeightedGraph::uniform(Graph(4));
  auto big = WeightedGraph::uniform(Graph(1 << 20));
  Network net_small(small);
  Network net_big(big);
  EXPECT_GE(net_big.max_message_bits(), net_small.max_message_bits());
  EXPECT_LE(net_big.max_message_bits(), 4 * 21);
}

// Never-finishing algorithm to test the round limit.
class ForeverAlgorithm final : public DistributedAlgorithm {
 public:
  void initialize(Network&) override {}
  void process_round(Network&) override {}
  bool finished(const Network&) const override { return false; }
};

TEST(Network, RoundLimitReported) {
  auto wg = WeightedGraph::uniform(gen::path(3));
  Network net(wg);
  ForeverAlgorithm algo;
  RunStats stats = net.run(algo, 7);
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_EQ(stats.rounds, 7);
}

TEST(Network, PerNodeRngIsDeterministicAcrossNetworks) {
  auto wg = WeightedGraph::uniform(gen::path(4));
  CongestConfig cfg;
  cfg.seed = 777;
  Network a(wg, cfg), b(wg, cfg);
  for (NodeId v = 0; v < 4; ++v)
    EXPECT_EQ(a.rng(v).next_u64(), b.rng(v).next_u64());
}

TEST(Network, PerNodeRngStreamsDiffer) {
  auto wg = WeightedGraph::uniform(gen::path(4));
  Network net(wg);
  EXPECT_NE(net.rng(0).next_u64(), net.rng(1).next_u64());
}

TEST(Network, QuantizationAppliedOnSend) {
  auto wg = WeightedGraph::uniform(gen::path(2));

  class Probe final : public DistributedAlgorithm {
   public:
    double received = -1;
    void initialize(Network& net) override {
      net.send(0, 1, Message::tagged(0).add_real(0.1));
    }
    void process_round(Network& net) override {
      for (const MessageView m : net.inbox(1)) received = m.real_at(1);
    }
    bool finished(const Network&) const override { return received >= 0; }
  };

  Probe p;
  Network net(wg);
  net.run(p, 5);
  const auto& codec = default_value_codec();
  EXPECT_EQ(p.received, codec.decode(codec.encode(0.1)));
}

TEST(Network, WeightBitsReflectMaxWeight) {
  WeightedGraph wg(gen::path(3), {1, 100, 7});
  Network net(wg);
  EXPECT_EQ(net.size_model().weight_bits, 7);  // 100 needs 7 bits
}

// ------------------------------------------------- worker pool / for_nodes

TEST(Network, ForNodesVisitsEveryNodeExactlyOnce) {
  auto wg = WeightedGraph::uniform(gen::grid(13, 11));
  CongestConfig cfg;
  cfg.threads = 8;
  Network net(wg, cfg);
  EXPECT_EQ(net.num_workers(), 8);
  NodeFlags visits(wg.num_nodes(), 0);
  net.for_nodes([&](NodeId v) { ++visits[v]; });
  for (NodeId v = 0; v < wg.num_nodes(); ++v) EXPECT_EQ(visits[v], 1u);
}

TEST(Network, WorkerCountClampsToNodesAndHardware) {
  auto tiny = WeightedGraph::uniform(gen::path(3));
  CongestConfig cfg;
  cfg.threads = 64;
  Network net(tiny, cfg);
  EXPECT_EQ(net.num_workers(), 3);  // never more workers than nodes
  cfg.threads = 0;                  // hardware_concurrency, at least 1
  Network hw(tiny, cfg);
  EXPECT_GE(hw.num_workers(), 1);
}

// Every node broadcasts for a fixed number of rounds; the exact expected
// message/bit counts catch torn or dropped statistics when the counters
// are accumulated from the worker pool.
class BroadcastStorm final : public DistributedAlgorithm {
 public:
  static constexpr std::int64_t kRounds = 8;

  void initialize(Network&) override {}

  void process_round(Network& net) override {
    if (net.current_round() > kRounds) return;
    net.for_nodes([&](NodeId v) {
      net.broadcast(v, Message::tagged(1).add_id(v));
    });
  }

  bool finished(const Network& net) const override {
    return net.current_round() > kRounds;
  }
};

TEST(Network, ParallelStatsAccountingIsExactAndRaceFree) {
  auto wg = WeightedGraph::uniform(gen::grid(32, 32));  // m = 1984
  const std::int64_t directed = 2 * static_cast<std::int64_t>(
      wg.graph().num_edges());

  CongestConfig serial_cfg;
  serial_cfg.threads = 1;
  Network serial_net(wg, serial_cfg);
  BroadcastStorm serial_algo;
  const RunStats serial = serial_net.run(serial_algo, 100);

  CongestConfig wide_cfg;
  wide_cfg.threads = 8;
  Network wide_net(wg, wide_cfg);
  BroadcastStorm wide_algo;
  const RunStats wide = wide_net.run(wide_algo, 100);

  const int per_msg =
      serial_net.size_model().tag_bits + serial_net.size_model().id_bits;
  EXPECT_EQ(serial.messages, BroadcastStorm::kRounds * directed);
  EXPECT_EQ(serial.total_bits, serial.messages * per_msg);
  EXPECT_EQ(serial.max_message_bits, per_msg);
  EXPECT_TRUE(wide == serial);  // identical counters at any pool width
}

TEST(Network, CapViolationInsideWorkerPoolPropagates) {
  auto wg = WeightedGraph::uniform(gen::path(8));
  CongestConfig cfg;
  cfg.threads = 4;
  cfg.max_message_bits_override = 1;

  class OversizeEverywhere final : public DistributedAlgorithm {
   public:
    void initialize(Network& net) override {
      net.for_nodes([&](NodeId v) {
        net.broadcast(v, Message::tagged(0).add_id(v));
      });
    }
    void process_round(Network&) override {}
    bool finished(const Network&) const override { return true; }
  };

  Network net(wg, cfg);
  OversizeEverywhere algo;
  EXPECT_THROW(net.run(algo, 10), CheckError);
}

// Two sends on the same edge in the same round land in one lane with the
// send order preserved, after all broadcast deliveries of lower-id
// senders (inbox order is sender-major).
TEST(Network, InboxOrderIsSenderMajorWithinRound) {
  auto wg = WeightedGraph::uniform(gen::star(4));  // hub 0, leaves 1..3

  class TwoSends final : public DistributedAlgorithm {
   public:
    std::vector<int> hub_tags;
    void initialize(Network& net) override {
      net.send(2, 0, Message::tagged(5));
      net.send(2, 0, Message::tagged(6));
      net.send(1, 0, Message::tagged(7));
    }
    void process_round(Network& net) override {
      for (const MessageView m : net.inbox(0)) hub_tags.push_back(m.tag());
    }
    bool finished(const Network& net) const override {
      return net.current_round() >= 1;
    }
  };

  Network net(wg);
  TwoSends algo;
  const RunStats stats = net.run(algo, 5);
  EXPECT_EQ(stats.messages, 3);
  EXPECT_EQ(algo.hub_tags, (std::vector<int>{7, 5, 6}));
  EXPECT_EQ(net.inbox(0).size(), 3u);
  EXPECT_EQ(net.inbox(0).front().tag(), 7);
  EXPECT_TRUE(net.inbox(1).empty());
}

// ------------------------------------------------- lane spill and regrowth

// Tiny lane regions force the overflow path: records spill to per-worker
// side buffers mid-round, the next flip merges them back in send order and
// permanently regrows the lanes, after which delivery is spill-free and
// indistinguishable from the resident path.
TEST(Network, LaneOverflowSpillsAndRegrowsPreservingOrder) {
  auto wg = WeightedGraph::uniform(gen::star(4));  // hub 0, leaves 1..3

  class Chatty final : public DistributedAlgorithm {
   public:
    int checked_rounds = 0;
    void initialize(Network& net) override { burst(net); }
    void process_round(Network& net) override {
      std::vector<std::pair<NodeId, int>> got;
      for (const MessageView m : net.inbox(0))
        got.push_back({m.sender(), m.tag()});
      std::vector<std::pair<NodeId, int>> want;
      for (NodeId s = 1; s <= 3; ++s)
        for (int t = 0; t < 3; ++t) want.push_back({s, t});
      EXPECT_EQ(got, want);
      ++checked_rounds;
      if (net.current_round() < 3) burst(net);
    }
    bool finished(const Network& net) const override {
      return net.current_round() >= 3;
    }

   private:
    static void burst(Network& net) {
      for (NodeId s = 1; s <= 3; ++s)
        for (int t = 0; t < 3; ++t)
          net.send(s, 0, Message::tagged(t).add_id(s));
    }
  };

  for (const int threads : {1, 4}) {
    CongestConfig cfg;
    cfg.threads = threads;
    cfg.lane_capacity_words_hint = 1;  // no record fits its lane resident
    Network net(wg, cfg);
    Chatty algo;
    const RunStats stats = net.run(algo, 10);
    EXPECT_EQ(algo.checked_rounds, 3);
    EXPECT_EQ(stats.messages, 27);
  }
}

// --------------------------------------------------- active-set scheduling

// for_active_nodes visits exactly (message receivers ∪ armed nodes) of the
// round, each exactly once, regardless of duplicate deliveries or arms.
TEST(Network, ActiveSetIsReceiversPlusArmedDeduplicated) {
  auto wg = WeightedGraph::uniform(gen::path(6));

  class Probe final : public DistributedAlgorithm {
   public:
    std::vector<NodeId> round1, round2;
    void initialize(Network& net) override {
      net.send(0, 1, Message::tagged(1));
      net.send(2, 1, Message::tagged(2));  // node 1 receives twice
      net.arm(4);
      net.arm(4);  // duplicate arm
      net.arm(1);  // armed and receiving
    }
    void process_round(Network& net) override {
      if (net.current_round() == 1) {
        net.for_active_nodes([&](NodeId v) {
          round1.push_back(v);
          if (v == 4) net.arm(v);  // 4 re-arms, 1 resolves
        });
      } else {
        net.for_active_nodes([&](NodeId v) { round2.push_back(v); });
      }
    }
    bool finished(const Network& net) const override {
      return net.current_round() >= 2;
    }
  };

  Network net(wg);
  Probe p;
  net.run(p, 5);
  std::sort(p.round1.begin(), p.round1.end());
  EXPECT_EQ(p.round1, (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(p.round2, (std::vector<NodeId>{4}));  // only the re-armed node
}

// An arm_at wake whose target round never consults the active set (a
// for_nodes-only stage) is not dropped: it carries forward at each flip and
// fires in the first round that does look.
TEST(Network, ArmAtWakeCarriesAcrossActiveSetFreeRounds) {
  auto wg = WeightedGraph::uniform(gen::path(4));

  class Sleeper final : public DistributedAlgorithm {
   public:
    std::vector<std::pair<std::int64_t, NodeId>> wakes;
    void initialize(Network& net) override { net.arm_at(2, 1); }
    void process_round(Network& net) override {
      if (net.current_round() <= 2) {
        net.for_nodes([](NodeId) {});  // the due wake must survive these
        return;
      }
      net.for_active_nodes(
          [&](NodeId v) { wakes.push_back({net.current_round(), v}); });
    }
    bool finished(const Network& net) const override {
      return net.current_round() >= 4;
    }
  };

  Network net(wg);
  Sleeper s;
  net.run(s, 10);
  // Armed for round 1, deferred through rounds 1-2, delivered in round 3
  // exactly once, and not redelivered in round 4.
  EXPECT_EQ(s.wakes,
            (std::vector<std::pair<std::int64_t, NodeId>>{{3, 2}}));
}

// The active set is a pure function of the algorithm, not the pool width:
// contents match between a serial and a wide network at every round.
TEST(Network, ActiveSetContentsIndependentOfThreadWidth) {
  auto wg = WeightedGraph::uniform(gen::grid(9, 7));

  class Recorder final : public DistributedAlgorithm {
   public:
    std::vector<std::vector<NodeId>> per_round;
    void initialize(Network& net) override {
      net.for_nodes([&](NodeId v) {
        if (v % 3 == 0) net.broadcast(v, Message::tagged(0).add_id(v));
      });
    }
    void process_round(Network& net) override {
      auto active = net.active_nodes();
      per_round.emplace_back(active.begin(), active.end());
      std::sort(per_round.back().begin(), per_round.back().end());
      net.for_active_nodes([&](NodeId v) {
        if (v % 2 == 0 && net.current_round() < 3)
          net.broadcast(v, Message::tagged(1).add_id(v));
      });
    }
    bool finished(const Network& net) const override {
      return net.current_round() >= 4;
    }
  };

  CongestConfig serial_cfg;
  serial_cfg.threads = 1;
  Network serial_net(wg, serial_cfg);
  Recorder serial;
  serial_net.run(serial, 10);

  CongestConfig wide_cfg;
  wide_cfg.threads = 8;
  Network wide_net(wg, wide_cfg);
  Recorder wide;
  wide_net.run(wide, 10);

  ASSERT_EQ(serial.per_round.size(), wide.per_round.size());
  for (std::size_t r = 0; r < serial.per_round.size(); ++r)
    EXPECT_EQ(serial.per_round[r], wide.per_round[r]) << "round " << r;
}

}  // namespace
}  // namespace arbods
