// Tests for the randomized algorithms: Lemma 4.6 (the extension),
// Theorem 1.2 (alpha + O(alpha/t)), and Theorem 1.3 (general graphs).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/exact.hpp"
#include "core/randomized.hpp"
#include "core/solvers.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/verify.hpp"

namespace arbods {
namespace {

CongestConfig seeded(std::uint64_t seed) {
  CongestConfig cfg;
  cfg.seed = seed;
  return cfg;
}

// ----------------------------------------------------------- theorem 1.2

class Theorem12Test
    : public ::testing::TestWithParam<std::pair<NodeId, std::int64_t>> {};

TEST_P(Theorem12Test, ValidAndNeverUsesFallback) {
  auto [alpha, t] = GetParam();
  Rng rng(100 + alpha * 10 + static_cast<unsigned>(t));
  Graph g = gen::k_tree_union(250, alpha, rng);
  auto w = gen::uniform_weights(250, 32, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    MdsResult res = solve_mds_randomized(wg, alpha, t, seeded(seed));
    res.validate(wg, 1e-5);
    EXPECT_FALSE(res.used_fallback) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaT, Theorem12Test,
    ::testing::Values(std::pair<NodeId, std::int64_t>{2, 1},
                      std::pair<NodeId, std::int64_t>{2, 2},
                      std::pair<NodeId, std::int64_t>{4, 2},
                      std::pair<NodeId, std::int64_t>{4, 4},
                      std::pair<NodeId, std::int64_t>{8, 3}));

TEST(Theorem12, ParameterScheduleMatchesPaper) {
  auto p = theorem12_params(16, 2);
  EXPECT_DOUBLE_EQ(p.eps, 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(p.lambda, p.eps / 17.0);
  EXPECT_DOUBLE_EQ(p.gamma, 2.0);  // max(2, 16^{1/4} = 2)
  auto p2 = theorem12_params(10000, 1);
  EXPECT_GT(p2.gamma, 2.0);  // 10000^{1/2} = 100
}

TEST(Theorem12, QualityWithinAnalyticBoundOnAverage) {
  // Expected ratio <= alpha + O(alpha/t); we allow the full constant from
  // Lemma 4.6 (wS <= (a + a/t) LB, E[wS'] <= gamma(gamma+1)ceil(log_g 1/l) LB)
  // and check the *certified* ratio against it, averaged over seeds.
  const NodeId alpha = 4;
  const std::int64_t t = 2;
  Rng rng(321);
  Graph g = gen::k_tree_union(300, alpha, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  const auto sched = theorem12_params(alpha, t);
  const double ws_factor =
      alpha / (1.0 / (1.0 + sched.eps) - sched.lambda * (alpha + 1.0));
  const double ext_factor =
      sched.gamma * (sched.gamma + 1.0) *
      std::ceil(std::log(1.0 / sched.lambda) / std::log(sched.gamma));
  double total_ratio = 0;
  const int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    MdsResult res = solve_mds_randomized(wg, alpha, t, seeded(1000 + s));
    res.validate(wg, 1e-5);
    total_ratio += res.certified_ratio();
  }
  EXPECT_LE(total_ratio / kSeeds, (ws_factor + ext_factor) * 1.10);
}

TEST(Theorem12, LargerTImprovesApproximationOnAverage) {
  const NodeId alpha = 8;
  Rng rng(322);
  Graph g = gen::k_tree_union(400, alpha, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  auto avg_ratio = [&](std::int64_t t) {
    double sum = 0;
    for (int s = 0; s < 4; ++s)
      sum += solve_mds_randomized(wg, alpha, t, seeded(2000 + s))
                 .certified_ratio();
    return sum / 4;
  };
  // Not strictly monotone run-to-run, but t=4 should not be noticeably
  // worse than t=1 and rounds must grow.
  const double r1 = avg_ratio(1);
  const double r4 = avg_ratio(4);
  EXPECT_LE(r4, r1 * 1.15);
  MdsResult a = solve_mds_randomized(wg, alpha, 1, seeded(1));
  MdsResult b = solve_mds_randomized(wg, alpha, 4, seeded(1));
  EXPECT_GE(b.stats.rounds, a.stats.rounds);
}

TEST(Theorem12, SeedReproducibility) {
  Rng rng(323);
  Graph g = gen::k_tree_union(150, 3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  MdsResult a = solve_mds_randomized(wg, 3, 2, seeded(42));
  MdsResult b = solve_mds_randomized(wg, 3, 2, seeded(42));
  EXPECT_EQ(a.dominating_set, b.dominating_set);
}

// ----------------------------------------------------------- theorem 1.3

class Theorem13Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem13Test, ValidOnGeneralGraphs) {
  const int k = GetParam();
  Rng rng(400 + k);
  Graph g = gen::erdos_renyi_gnp(200, 0.05, rng);
  auto w = gen::uniform_weights(200, 16, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  for (std::uint64_t seed : {7ull, 8ull}) {
    MdsResult res = solve_mds_general(wg, k, seeded(seed));
    res.validate(wg, 1e-5);
    EXPECT_FALSE(res.used_fallback);
  }
}

INSTANTIATE_TEST_SUITE_P(K, Theorem13Test, ::testing::Values(1, 2, 3, 5));

TEST(Theorem13, RoundComplexityGrowsLikeKSquared) {
  Rng rng(401);
  Graph g = gen::erdos_renyi_gnp(300, 0.04, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  MdsResult r1 = solve_mds_general(wg, 1, seeded(5));
  MdsResult r4 = solve_mds_general(wg, 4, seeded(5));
  // k=1: gamma = Delta -> t = 1 phase of few iterations. k=4 runs more
  // phases of more iterations each.
  EXPECT_GT(r4.stats.rounds, r1.stats.rounds);
}

TEST(Theorem13, QualityBoundSpotCheck) {
  // E[w] <= Delta^{1/k}(Delta^{1/k}+1)(k+1) * OPT; compare the certified
  // ratio (vs the packing bound) with margin, averaged over seeds.
  Rng rng(402);
  Graph g = gen::erdos_renyi_gnp(150, 0.08, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  const double delta = wg.graph().max_degree();
  const int k = 2;
  const double gk = std::pow(delta, 1.0 / k);
  const double bound = gk * (gk + 1.0) * (k + 1);
  double total = 0;
  for (int s = 0; s < 5; ++s)
    total += solve_mds_general(wg, k, seeded(500 + s)).certified_ratio();
  EXPECT_LE(total / 5, bound * 1.2);
}

TEST(Theorem13, WorksOnCliqueAndStar) {
  auto clique = WeightedGraph::uniform(gen::clique(40));
  auto star = WeightedGraph::uniform(gen::star(60));
  for (int k : {1, 2, 3}) {
    MdsResult rc = solve_mds_general(clique, k, seeded(9));
    rc.validate(clique, 1e-5);
    MdsResult rs = solve_mds_general(star, k, seeded(9));
    rs.validate(star, 1e-5);
  }
}

// ----------------------------------------------------------- lemma 4.6 raw

TEST(Lemma46, ExtensionRejectsBadParams) {
  EXPECT_THROW(RandomizedExtension({0.0, 2.0}, std::nullopt), CheckError);
  EXPECT_THROW(RandomizedExtension({0.1, 1.0}, std::nullopt), CheckError);
}

TEST(Lemma46, PhaseAndIterationCountsMatchFormulas) {
  Rng rng(403);
  Graph g = gen::erdos_renyi_gnp(100, 0.06, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  const double delta = wg.graph().max_degree();
  RandomizedExtensionParams p;
  p.lambda = 1.0 / (delta + 1.0);
  p.gamma = 2.0;
  Network net(wg, seeded(11));
  RandomizedExtension ext(p, std::nullopt);
  RunStats stats = net.run(ext, 1000000);
  ASSERT_FALSE(stats.hit_round_limit);
  EXPECT_EQ(ext.iterations_per_phase(),
            1 + static_cast<std::int64_t>(
                    std::ceil(std::log2(delta + 1.0))));
  EXPECT_LE(ext.phases(), static_cast<std::int64_t>(
                              std::ceil(std::log2(1.0 / p.lambda))) +
                              1);
  MdsResult res = ext.result(net);
  res.validate(wg, 1e-5);
  EXPECT_FALSE(res.used_fallback);
}

TEST(Lemma46, SeededWithPartialStateCompletesIt) {
  // Seed with S = {hub} on a star: already dominating, must finish with
  // zero additional nodes.
  auto wg = WeightedGraph::uniform(gen::star(20));
  ExtensionSeed seed;
  seed.in_set.assign(20, false);
  seed.in_set[0] = true;
  seed.dominated.assign(20, true);
  seed.packing.assign(20, 1.0 / 20.0);
  Network net(wg, seeded(3));
  RandomizedExtension ext({0.05, 2.0}, std::move(seed));
  net.run(ext, 1000);
  MdsResult res = ext.result(net);
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(Lemma46, EmptyGraphTerminatesImmediately) {
  auto wg = WeightedGraph::uniform(Graph(0));
  Network net(wg);
  RandomizedExtension ext({0.5, 2.0}, std::nullopt);
  RunStats stats = net.run(ext, 10);
  EXPECT_FALSE(stats.hit_round_limit);
}

}  // namespace
}  // namespace arbods
