// Thread-count determinism: the simulator promises bit-identical results
// for every worker-pool width. For every registry solver on the small
// corpus we run 1-thread and 8-thread configurations twice each with the
// same seed and require the four MdsResults (set, weight, packing
// doubles, iteration counts) and RunStats to match exactly. A sharded
// leg (ShardedNetwork at ARBODS_TEST_SHARDS shards, wide width) must
// reproduce the same reference bit-for-bit through the inter-shard
// bridge.
//
// The 8-thread width is the CI "multi-threaded simulator config"; it can
// be overridden via the ARBODS_TEST_THREADS environment variable, as can
// the shard count via ARBODS_TEST_SHARDS (default 2, CI runs 4).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"

namespace arbods::harness {
namespace {

int test_thread_width() {
  if (const char* env = std::getenv("ARBODS_TEST_THREADS")) {
    const int w = std::atoi(env);
    if (w >= 1) return w;
  }
  return 8;
}

// Shard count for the sharded determinism leg (CI sets 4; default 2 so
// the inter-shard bridge is exercised by every plain ctest run too).
int test_shard_count() {
  if (const char* env = std::getenv("ARBODS_TEST_SHARDS")) {
    const int k = std::atoi(env);
    if (k >= 1) return k;
  }
  return 2;
}

::testing::AssertionResult results_identical(const MdsResult& a,
                                             const MdsResult& b) {
  if (a.dominating_set != b.dominating_set)
    return ::testing::AssertionFailure() << "dominating sets differ";
  if (a.weight != b.weight)
    return ::testing::AssertionFailure()
           << "weights differ: " << a.weight << " vs " << b.weight;
  if (a.packing != b.packing)  // exact double comparison, intentionally
    return ::testing::AssertionFailure() << "packing values differ";
  if (a.packing_lower_bound != b.packing_lower_bound)
    return ::testing::AssertionFailure() << "packing lower bounds differ";
  if (a.iterations != b.iterations)
    return ::testing::AssertionFailure()
           << "iterations differ: " << a.iterations << " vs " << b.iterations;
  if (a.used_fallback != b.used_fallback)
    return ::testing::AssertionFailure() << "used_fallback differs";
  if (!(a.stats == b.stats))
    return ::testing::AssertionFailure()
           << "RunStats differ: rounds " << a.stats.rounds << "/"
           << b.stats.rounds << ", messages " << a.stats.messages << "/"
           << b.stats.messages << ", bits " << a.stats.total_bits << "/"
           << b.stats.total_bits;
  return ::testing::AssertionSuccess();
}

TEST(Determinism, EverySolverIsBitIdenticalAcrossThreadCountsAndReruns) {
  const int wide = test_thread_width();
  const auto corpus = small_corpus(7);
  ASSERT_GE(corpus.size(), 10u);
  for (const auto& inst : corpus) {
    for (const SolverInfo& info : all_solvers()) {
      if (!solver_applicable(info, inst)) continue;
      SolverParams params = params_for(info, inst);
      CongestConfig cfg;
      cfg.seed = 0xdead0001ULL;

      params.threads = 1;
      const MdsResult serial_a = run_solver(info.name, inst.wg, params, cfg);
      const MdsResult serial_b = run_solver(info.name, inst.wg, params, cfg);
      params.threads = wide;
      const MdsResult wide_a = run_solver(info.name, inst.wg, params, cfg);
      const MdsResult wide_b = run_solver(info.name, inst.wg, params, cfg);
      params.shards = test_shard_count();
      const MdsResult sharded = run_solver(info.name, inst.wg, params, cfg);
      params.shards = -1;

      EXPECT_TRUE(results_identical(serial_a, serial_b))
          << info.name << " on " << inst.name << " (serial rerun)";
      EXPECT_TRUE(results_identical(serial_a, wide_a))
          << info.name << " on " << inst.name << " (1 vs " << wide
          << " threads)";
      EXPECT_TRUE(results_identical(wide_a, wide_b))
          << info.name << " on " << inst.name << " (" << wide
          << "-thread rerun)";
      EXPECT_TRUE(results_identical(serial_a, sharded))
          << info.name << " on " << inst.name << " (1 shard vs "
          << test_shard_count() << " shards at " << wide << " threads)";
    }
  }
}

TEST(Determinism, ThreadsZeroMeansHardwareWidthAndStaysIdentical) {
  const auto corpus = small_corpus(21);
  const auto& inst = corpus.front();
  const SolverInfo& info = solver("det");
  SolverParams params = params_for(info, inst);
  CongestConfig cfg;
  cfg.seed = 99;

  params.threads = 1;
  const MdsResult serial = run_solver(info.name, inst.wg, params, cfg);
  params.threads = 0;  // hardware_concurrency
  const MdsResult hw = run_solver(info.name, inst.wg, params, cfg);
  EXPECT_TRUE(results_identical(serial, hw));
}

}  // namespace
}  // namespace arbods::harness
