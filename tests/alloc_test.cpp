// Zero-steady-state-allocation regression for the simulator hot path.
//
// This binary replaces the global allocation functions with counting
// versions (the hook the whole suite can reuse: every operator new/delete
// pair funnels through count_alloc below). After a short warm-up — arena
// sizing, touched-list/active-list capacity growth — a full flood round
// (broadcast per node, cursor-read per inbox, buffer flip, active-set
// rebuild, stats reduction) must perform exactly zero allocations, at
// every worker-pool width. This is the contract the packed wire format
// exists to provide; any new heap traffic on the delivery path fails here
// deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "gen/classic.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* count_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* count_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return count_alloc(size); }
void* operator new[](std::size_t size) { return count_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return count_alloc_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return count_alloc_aligned(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace arbods {
namespace {

// Every node floods a (tag, id, real) record each round, reads its whole
// inbox through the cursor, and re-arms itself — exercising send, encode,
// delivery, active-set rebuild and the armed path together.
class FloodProbe final : public DistributedAlgorithm {
 public:
  // Warm-up must cover one full cycle of the 16-slot timer ring (each
  // bucket's first use allocates its node vector) plus the arena/touched
  // capacity growth of the first rounds.
  static constexpr std::int64_t kWarmupRounds = 20;
  static constexpr std::int64_t kMeasuredRounds = 12;

  std::uint64_t allocs_at_start = 0;
  std::uint64_t allocs_at_end = 0;
  double sink = 0;  // defeat dead-code elimination of the reads

  void initialize(Network& net) override {
    net.for_nodes([&](NodeId v) { flood(net, v); });
  }

  void process_round(Network& net) override {
    const std::int64_t r = net.current_round();
    if (r == kWarmupRounds)
      allocs_at_start = g_alloc_count.load(std::memory_order_relaxed);
    if (r == kWarmupRounds + kMeasuredRounds) {
      allocs_at_end = g_alloc_count.load(std::memory_order_relaxed);
      return;
    }
    net.for_active_nodes([&](NodeId v) {
      double sum = 0;
      for (const MessageView m : net.inbox(v)) sum += m.real_at(2);
      sums_[v] = sum;
      flood(net, v);
      net.arm(v);
    });
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= kWarmupRounds + kMeasuredRounds;
  }

  void prepare(NodeId n) { sums_.assign(n, 0.0); }

 private:
  static void flood(Network& net, NodeId v) {
    net.broadcast(v, Message::tagged(1).add_id(v).add_real(0.5));
  }

  std::vector<double> sums_;
};

void expect_zero_steady_state_allocs(int threads) {
  auto wg = WeightedGraph::uniform(gen::grid(48, 48));  // n = 2304, m = 4512
  CongestConfig cfg;
  cfg.threads = threads;
  Network net(wg, cfg);
  FloodProbe probe;
  probe.prepare(wg.num_nodes());
  const RunStats stats = net.run(probe, 100);
  EXPECT_GT(stats.messages, 0);
  ASSERT_GT(probe.allocs_at_start, 0u);  // warm-up did allocate
  EXPECT_EQ(probe.allocs_at_end - probe.allocs_at_start, 0u)
      << "steady-state rounds allocated (threads=" << threads << ")";
}

TEST(AllocRegression, SteadyStateRoundsAllocateNothingSerial) {
  expect_zero_steady_state_allocs(1);
}

TEST(AllocRegression, SteadyStateRoundsAllocateNothingParallel) {
  expect_zero_steady_state_allocs(4);
}

}  // namespace
}  // namespace arbods
