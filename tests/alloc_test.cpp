// Zero-steady-state-allocation regression for the simulator hot path.
//
// This binary replaces the global allocation functions with counting
// versions (the hook the whole suite can reuse: every operator new/delete
// pair funnels through count_alloc below). After a short warm-up — arena
// sizing, touched-list/active-list capacity growth — a full flood round
// (broadcast per node, cursor-read per inbox, buffer flip, active-set
// rebuild, stats reduction) must perform exactly zero allocations, at
// every worker-pool width. This is the contract the packed wire format
// exists to provide; any new heap traffic on the delivery path fails here
// deterministically.
//
// The same hook additionally watches allocations of one exact size (the
// message arenas) to pin the protocol engine's reuse contract: a composed
// two-phase solver on one Network constructs arena storage exactly once —
// the pre-engine drivers built a second Network (arenas, pool, mirror
// permutation) per phase.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "core/solvers.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "shard/sharded_network.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
// Exact-size watch (0 = off): counts allocations of `g_watch_size` bytes.
std::atomic<std::size_t> g_watch_size{0};
std::atomic<std::uint64_t> g_watch_hits{0};

void note_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t watched = g_watch_size.load(std::memory_order_relaxed);
  if (watched != 0 && size == watched)
    g_watch_hits.fetch_add(1, std::memory_order_relaxed);
}

void* count_alloc(std::size_t size) {
  note_alloc(size);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* count_alloc_aligned(std::size_t size, std::size_t align) {
  note_alloc(size);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return count_alloc(size); }
void* operator new[](std::size_t size) { return count_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return count_alloc_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return count_alloc_aligned(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace arbods {
namespace {

// Every node floods a (tag, id, real) record each round, reads its whole
// inbox through the cursor, and re-arms itself — exercising send, encode,
// delivery, active-set rebuild and the armed path together.
class FloodProbe final : public DistributedAlgorithm {
 public:
  // Warm-up must cover one full cycle of the 16-slot timer ring (each
  // bucket's first use allocates its node vector) plus the arena/touched
  // capacity growth of the first rounds.
  static constexpr std::int64_t kWarmupRounds = 20;
  static constexpr std::int64_t kMeasuredRounds = 12;

  std::uint64_t allocs_at_start = 0;
  std::uint64_t allocs_at_end = 0;
  double sink = 0;  // defeat dead-code elimination of the reads

  void initialize(Network& net) override {
    net.for_nodes([&](NodeId v) { flood(net, v); });
  }

  void process_round(Network& net) override {
    const std::int64_t r = net.current_round();
    if (r == kWarmupRounds)
      allocs_at_start = g_alloc_count.load(std::memory_order_relaxed);
    if (r == kWarmupRounds + kMeasuredRounds) {
      allocs_at_end = g_alloc_count.load(std::memory_order_relaxed);
      return;
    }
    net.for_active_nodes([&](NodeId v) {
      double sum = 0;
      for (const MessageView m : net.inbox(v)) sum += m.real_at(2);
      sums_[v] = sum;
      flood(net, v);
      net.arm(v);
    });
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= kWarmupRounds + kMeasuredRounds;
  }

  void prepare(NodeId n) { sums_.assign(n, 0.0); }

 private:
  static void flood(Network& net, NodeId v) {
    net.broadcast(v, Message::tagged(1).add_id(v).add_real(0.5));
  }

  std::vector<double> sums_;
};

void expect_zero_steady_state_allocs(int threads, int shards = 1,
                                     bool traced = false) {
  auto wg = WeightedGraph::uniform(gen::grid(48, 48));  // n = 2304, m = 4512
  CongestConfig cfg;
  cfg.threads = threads;
  cfg.shards = shards;
  if (traced) {
    // Tracing and the flight recorder must hold the same contract: the
    // span ring and flight ring are sized at construction / phase start,
    // so a steady-state round records into pre-grown storage only.
    cfg.trace.enabled = true;
    cfg.trace.flight_rounds = 8;
  }
  // shards = 1 constructs a plain Network, > 1 the sharded facade —
  // whose relay segments and parallel flip merge must also go quiet
  // after warm-up (segment/spill capacity growth happens early, then
  // every bridged record reuses the grown buffers).
  auto net = shard::make_network(wg, cfg);
  FloodProbe probe;
  probe.prepare(wg.num_nodes());
  const RunStats stats = net->run(probe, 100);
  EXPECT_GT(stats.messages, 0);
  ASSERT_GT(probe.allocs_at_start, 0u);  // warm-up did allocate
  EXPECT_EQ(probe.allocs_at_end - probe.allocs_at_start, 0u)
      << "steady-state rounds allocated (threads=" << threads
      << ", shards=" << shards << ")";
  if (shards > 1) {
    auto* facade = dynamic_cast<shard::ShardedNetwork*>(net.get());
    ASSERT_NE(facade, nullptr);
    EXPECT_GT(facade->bridge_records(), 0) << "bridge never exercised";
  }
}

TEST(AllocRegression, SteadyStateRoundsAllocateNothingSerial) {
  expect_zero_steady_state_allocs(1);
}

TEST(AllocRegression, SteadyStateRoundsAllocateNothingParallel) {
  expect_zero_steady_state_allocs(4);
}

TEST(AllocRegression, ShardedSteadyStateRoundsAllocateNothingSerial) {
  expect_zero_steady_state_allocs(1, /*shards=*/3);
}

TEST(AllocRegression, ShardedSteadyStateRoundsAllocateNothingParallel) {
  expect_zero_steady_state_allocs(4, /*shards=*/3);
}

TEST(AllocRegression, TracedSteadyStateRoundsAllocateNothingSerial) {
  expect_zero_steady_state_allocs(1, /*shards=*/1, /*traced=*/true);
}

TEST(AllocRegression, TracedShardedSteadyStateRoundsAllocateNothingParallel) {
  expect_zero_steady_state_allocs(4, /*shards=*/3, /*traced=*/true);
}

// The composed Theorem 1.2 pipeline (partial_ds + extension) used to
// build one Network per phase — two arena pairs, two mirror builds. On
// the protocol engine both phases share the caller's Network: arena
// storage (one allocation per double buffer) is constructed exactly once,
// and a follow-up reused run constructs none at all.
TEST(AllocRegression, TwoPhaseProtocolConstructsArenaStorageExactlyOnce) {
  Rng rng(4242);
  auto wg = WeightedGraph::uniform(gen::k_tree_union(512, 2, rng));

  // Learn the arena footprint from a probe Network over the same graph
  // (the lane layout is deterministic), then watch that exact size.
  std::size_t arena_bytes = 0;
  {
    Network probe(wg);
    arena_bytes = probe.arena_words() * sizeof(std::uint64_t);
  }
  ASSERT_GT(arena_bytes, 0u);

  g_watch_hits.store(0, std::memory_order_relaxed);
  g_watch_size.store(arena_bytes, std::memory_order_relaxed);
  Network net(wg);
  EXPECT_EQ(g_watch_hits.load(std::memory_order_relaxed), 2u)
      << "construction allocates the two double-buffer arenas";

  MdsResult res = solve_mds_randomized(net, 2, 2);
  EXPECT_EQ(res.stats.phases.size(), 2u);
  EXPECT_EQ(g_watch_hits.load(std::memory_order_relaxed), 2u)
      << "the two-phase run must reuse the Network's arenas";

  // Network reuse across runs: still no new arena storage.
  solve_mds_deterministic(net, 2, 0.3);
  EXPECT_EQ(g_watch_hits.load(std::memory_order_relaxed), 2u);
  g_watch_size.store(0, std::memory_order_relaxed);
}

}  // namespace
}  // namespace arbods
