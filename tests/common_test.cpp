// Unit tests for src/common: RNG, math helpers, fixed-point codec, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/check.hpp"
#include "common/fixed_point.hpp"
#include "common/math_util.hpp"
#include "common/random.hpp"
#include "common/table.hpp"

namespace arbods {
namespace {

// ----------------------------------------------------------------- checking

TEST(Check, PassingCheckDoesNothing) { ARBODS_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(ARBODS_CHECK(1 + 1 == 3), CheckError);
}

TEST(Check, MessageIsIncluded) {
  try {
    ARBODS_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

// ---------------------------------------------------------------------- rng

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyRoughlyMatches) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, SplitIsDeterministicAndIndependentOfState) {
  Rng a(99);
  Rng s1 = a.split(5);
  a.next_u64();  // advancing the parent must not change future splits
  Rng s2 = a.split(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(99);
  Rng s1 = a.split(1), s2 = a.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (s1.next_u64() == s2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SampleWithoutReplacementBasics) {
  Rng rng(33);
  auto s = rng.sample_without_replacement(100, 10);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
  for (auto x : s) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleFullRange) {
  Rng rng(34);
  auto s = rng.sample_without_replacement(8, 8);
  std::vector<std::uint64_t> want{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(s, want);
}

TEST(Rng, SampleDenseBranch) {
  Rng rng(35);
  auto s = rng.sample_without_replacement(10, 7);  // k > n/2 path
  EXPECT_EQ(s.size(), 7u);
  EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
}

// --------------------------------------------------------------------- math

TEST(MathUtil, CeilLog2KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(MathUtil, FloorLog2KnownValues) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1023), 9);
}

TEST(MathUtil, BitWidth) {
  EXPECT_EQ(bit_width_for(0), 1);
  EXPECT_EQ(bit_width_for(1), 1);
  EXPECT_EQ(bit_width_for(2), 2);
  EXPECT_EQ(bit_width_for(255), 8);
  EXPECT_EQ(bit_width_for(256), 9);
}

TEST(MathUtil, CeilLogBase) {
  EXPECT_EQ(ceil_log_base(2.0, 1.0), 0);
  EXPECT_EQ(ceil_log_base(2.0, 2.0), 1);
  EXPECT_EQ(ceil_log_base(2.0, 8.0), 3);
  EXPECT_EQ(ceil_log_base(2.0, 9.0), 4);
  EXPECT_EQ(ceil_log_base(1.5, 1.5), 1);
  // pow(1.1, 10) ~ 2.5937...
  EXPECT_EQ(ceil_log_base(1.1, 2.5937424601000002), 10);
}

TEST(MathUtil, IpowSaturating) {
  EXPECT_EQ(ipow_saturating(2, 10), 1024);
  EXPECT_EQ(ipow_saturating(10, 0), 1);
  EXPECT_EQ(ipow_saturating(0, 5), 0);
  EXPECT_EQ(ipow_saturating(2, 63), std::numeric_limits<std::int64_t>::max());
}

TEST(MathUtil, ApproxAndSlack) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(leq_with_slack(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(leq_with_slack(1.01, 1.0));
}

// -------------------------------------------------------------- fixed point

TEST(FixedPoint, ZeroRoundTrips) {
  const auto& c = default_value_codec();
  EXPECT_EQ(c.decode(c.encode(0.0)), 0.0);
}

TEST(FixedPoint, BitWidthMatchesLayout) {
  FixedPointCodec c(6, 25);
  EXPECT_EQ(c.bit_width(), 32);
}

TEST(FixedPoint, RelativeErrorBoundHolds) {
  const auto& c = default_value_codec();
  Rng rng(1234);
  for (int i = 0; i < 5000; ++i) {
    // Values spanning the packing-value range used by the algorithms.
    double mag = std::pow(10.0, rng.next_int(-6, 6));
    double v = (rng.next_double() + 0.01) * mag;
    double back = c.decode(c.encode(v));
    EXPECT_LE(std::fabs(back - v), c.relative_error_bound() * v * 1.0001)
        << "v=" << v;
  }
}

TEST(FixedPoint, NegativeValues) {
  const auto& c = default_value_codec();
  double v = -3.25;
  EXPECT_NEAR(c.decode(c.encode(v)), v, 1e-6);
}

TEST(FixedPoint, SaturatesInsteadOfOverflowing) {
  FixedPointCodec c(4, 4);  // tiny range
  double big = 1e30;
  double back = c.decode(c.encode(big));
  EXPECT_GT(back, 0.0);
  EXPECT_TRUE(std::isfinite(back));
}

TEST(FixedPoint, FlushesUnderflowToZero) {
  FixedPointCodec c(4, 4);
  EXPECT_EQ(c.decode(c.encode(1e-30)), 0.0);
}

TEST(FixedPoint, RejectsNonFinite) {
  const auto& c = default_value_codec();
  EXPECT_THROW(c.encode(std::numeric_limits<double>::infinity()), CheckError);
  EXPECT_THROW(c.encode(std::numeric_limits<double>::quiet_NaN()), CheckError);
}

TEST(FixedPoint, MonotoneOnSamples) {
  const auto& c = default_value_codec();
  double prev = 0.0;
  for (double v = 0.001; v < 100.0; v *= 1.37) {
    double q = c.decode(c.encode(v));
    EXPECT_GE(q, prev);
    prev = q;
  }
}

// -------------------------------------------------------------------- table

TEST(Table, RendersAlignedMarkdown) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::string md = t.to_markdown();
  EXPECT_NE(md.find("| name   | value |"), std::string::npos);
  EXPECT_NE(md.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_int(-7), "-7");
}

}  // namespace
}  // namespace arbods
