// Differential test: the flat-buffer double-buffered Network against a
// retained minimal reference delivery loop (the pre-refactor semantics:
// one growable outbox/inbox vector per node, swapped between rounds).
//
// Both simulators drive the same scripted randomized protocol — every
// node broadcasts a quantized random real each round and coin-flips a
// directed probe to a random neighbor — using identical per-node RNG
// streams. The per-node delivery traces (round, sender, tag, payload),
// the round count, the message count and the exact total bit volume must
// agree, at every worker-pool width.
//
// Delivery-order contract encoded here: messages in an inbox arrive
// ordered by sender id (adjacency lists are sorted and each node emits
// its round's sends in one pass), with per-sender send order preserved.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "congest/message.hpp"
#include "congest/network.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"

namespace arbods {
namespace {

constexpr int kTagValue = 1;
constexpr int kTagProbe = 2;
constexpr std::int64_t kSendRounds = 12;

struct Delivery {
  std::int64_t round;
  NodeId sender;
  int tag;
  std::int64_t level;
  double real;  // quantized payload (kTagValue) or -1
  NodeId id;    // probe payload (kTagProbe) or kInvalidNode

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

using Trace = std::vector<std::vector<Delivery>>;  // per receiver

// Shared by both simulators: M is Message (reference loop, which tracks
// senders out of band) or MessageView (the wire cursor, which carries the
// sender in the record header).
template <typename M>
Delivery record(std::int64_t round, NodeId sender, const M& m) {
  Delivery d{round, sender, m.tag(), 0, -1.0, kInvalidNode};
  if (d.tag == kTagValue) {
    d.level = m.level_at(1);
    d.real = m.real_at(2);
  } else {
    d.id = m.id_at(1);
  }
  return d;
}

// The scripted per-node round action, shared verbatim by both simulators:
// draws from the node's RNG in a fixed order, then emits one broadcast
// and (on a coin flip) one directed probe.
template <typename BroadcastFn, typename SendFn>
void scripted_sends(NodeId v, std::int64_t round, std::span<const NodeId> nb,
                    Rng& rng, BroadcastFn&& bcast, SendFn&& probe) {
  const double x = rng.next_double();
  bcast(Message::tagged(kTagValue).add_level(round & 7).add_real(x));
  if (!nb.empty() && rng.next_bernoulli(0.5)) {
    const NodeId to = nb[rng.next_below(nb.size())];
    probe(to, Message::tagged(kTagProbe).add_id(v));
  }
}

// ------------------------------------------------- reference delivery loop

struct ReferenceStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t total_bits = 0;
  int max_message_bits = 0;
};

// Minimal pre-refactor delivery loop: per-node message vectors, swapped
// between rounds, chronological send order (which equals sender order
// because the driver processes nodes in ascending id order).
ReferenceStats run_reference(const WeightedGraph& wg,
                             const MessageSizeModel& model,
                             std::uint64_t seed, Trace& trace) {
  const NodeId n = wg.num_nodes();
  const auto& codec = default_value_codec();
  std::vector<Rng> rngs;
  rngs.reserve(n);
  Rng base(seed);
  for (NodeId v = 0; v < n; ++v) rngs.push_back(base.split(v));

  std::vector<std::vector<Message>> inboxes(n), outboxes(n);
  ReferenceStats stats;
  trace.assign(n, {});

  // Senders tracked alongside each outbox entry (the reference loop has no
  // access to Message's private sender field).
  std::vector<std::vector<NodeId>> out_senders(n), in_senders(n);

  for (std::int64_t round = 1; round <= kSendRounds + 1; ++round) {
    ++stats.rounds;
    for (NodeId v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < inboxes[v].size(); ++i)
        trace[v].push_back(record(round, in_senders[v][i], inboxes[v][i]));
    }
    if (round <= kSendRounds) {
      for (NodeId v = 0; v < n; ++v) {
        scripted_sends(
            v, round, wg.graph().neighbors(v), rngs[v],
            [&](Message m) {
              for (NodeId to : wg.graph().neighbors(v)) {
                Message copy = m;
                copy.quantize_reals(codec);
                const int bits = copy.bit_size(model);
                ++stats.messages;
                stats.total_bits += bits;
                stats.max_message_bits =
                    std::max(stats.max_message_bits, bits);
                out_senders[to].push_back(v);
                outboxes[to].push_back(std::move(copy));
              }
            },
            [&](NodeId to, Message m) {
              m.quantize_reals(codec);
              const int bits = m.bit_size(model);
              ++stats.messages;
              stats.total_bits += bits;
              stats.max_message_bits = std::max(stats.max_message_bits, bits);
              out_senders[to].push_back(v);
              outboxes[to].push_back(std::move(m));
            });
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      inboxes[v].clear();
      in_senders[v].clear();
      std::swap(inboxes[v], outboxes[v]);
      std::swap(in_senders[v], out_senders[v]);
    }
  }
  return stats;
}

// ------------------------------------------------------ Network-side algo

class ScriptedAlgorithm final : public DistributedAlgorithm {
 public:
  Trace trace;

  void initialize(Network& net) override {
    trace.assign(net.num_nodes(), {});
  }

  void process_round(Network& net) override {
    const std::int64_t round = net.current_round();
    net.for_nodes([&](NodeId v) {
      for (const MessageView m : net.inbox(v))
        trace[v].push_back(record(round, m.sender(), m));
      if (round <= kSendRounds) {
        scripted_sends(
            v, round, net.neighbors(v), net.rng(v),
            [&](Message m) { net.broadcast(v, std::move(m)); },
            [&](NodeId to, Message m) { net.send(v, to, std::move(m)); });
      }
    });
  }

  bool finished(const Network& net) const override {
    return net.current_round() >= kSendRounds + 1;
  }
};

// ---------------------------------------------------------------- the test

void expect_differential_match(const WeightedGraph& wg, std::uint64_t seed,
                               int threads) {
  CongestConfig cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  Network net(wg, cfg);

  Trace ref_trace;
  const ReferenceStats ref =
      run_reference(wg, net.size_model(), seed, ref_trace);

  ScriptedAlgorithm algo;
  const RunStats stats = net.run(algo, 1000);

  EXPECT_EQ(stats.rounds, ref.rounds);
  EXPECT_EQ(stats.messages, ref.messages);
  EXPECT_EQ(stats.total_bits, ref.total_bits);
  EXPECT_EQ(stats.max_message_bits, ref.max_message_bits);
  ASSERT_EQ(algo.trace.size(), ref_trace.size());
  for (NodeId v = 0; v < wg.num_nodes(); ++v) {
    EXPECT_EQ(algo.trace[v], ref_trace[v]) << "trace mismatch at node " << v
                                           << " (threads=" << threads << ")";
  }
}

TEST(Differential, FlatBuffersMatchReferenceOnRandomGraphs) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    Rng rng(seed);
    const NodeId n = 200;
    WeightedGraph wg(gen::erdos_renyi_gnp(n, 6.0 / n, rng),
                     std::vector<Weight>(n, 1));
    expect_differential_match(wg, seed * 1000, 1);
    expect_differential_match(wg, seed * 1000, 8);
  }
}

TEST(Differential, FlatBuffersMatchReferenceOnScaleFreeAndTrees) {
  Rng rng(77);
  WeightedGraph ba = WeightedGraph::uniform(gen::barabasi_albert(150, 2, rng));
  WeightedGraph tree =
      WeightedGraph::uniform(gen::random_tree_prufer(180, rng));
  for (const int threads : {1, 8}) {
    expect_differential_match(ba, 501, threads);
    expect_differential_match(tree, 502, threads);
  }
}

}  // namespace
}  // namespace arbods
