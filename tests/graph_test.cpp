// Unit tests for src/graph: CSR graph, builder, verifiers, stats, I/O,
// transforms.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "gen/classic.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph/transform.hpp"
#include "graph/verify.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods {
namespace {

Graph triangle() { return Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}}); }

// ------------------------------------------------------------------- graph

TEST(Graph, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, IsolatedNodes) {
  Graph g(5);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(g.is_isolated(v));
}

TEST(Graph, BasicAdjacency) {
  Graph g = triangle();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, NeighborsAreSorted) {
  Graph g = Graph::from_edges(5, {{3, 1}, {3, 4}, {3, 0}, {3, 2}});
  auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, DuplicateEdgesCollapse) {
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, SelfLoopRejected) {
  EXPECT_THROW(Graph::from_edges(2, {{1, 1}}), CheckError);
}

TEST(Graph, OutOfRangeEdgeRejected) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), CheckError);
}

TEST(Graph, EdgesCanonicalForm) {
  Graph g = triangle();
  auto es = g.edges();
  ASSERT_EQ(es.size(), 3u);
  for (const Edge& e : es) EXPECT_LT(e.u, e.v);
}

TEST(Graph, BuilderAddNode) {
  GraphBuilder b(2);
  NodeId c = b.add_node();
  EXPECT_EQ(c, 2u);
  b.add_edge(0, c);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Graph, MaxDegreeStar) {
  Graph g = gen::star(10);
  EXPECT_EQ(g.max_degree(), 9u);
}

// ---------------------------------------------------------------- weighted

TEST(WeightedGraph, RejectsNonPositiveWeights) {
  EXPECT_THROW(WeightedGraph(Graph(2), {1, 0}), CheckError);
  EXPECT_THROW(WeightedGraph(Graph(2), {1, -5}), CheckError);
}

TEST(WeightedGraph, RejectsSizeMismatch) {
  EXPECT_THROW(WeightedGraph(Graph(3), {1, 1}), CheckError);
}

TEST(WeightedGraph, UniformIsAllOnes) {
  auto wg = WeightedGraph::uniform(gen::path(4));
  EXPECT_TRUE(wg.is_uniform());
  EXPECT_EQ(wg.max_weight(), 1);
  EXPECT_EQ(wg.weight_bits(), 1);
}

TEST(WeightedGraph, TauIsClosedNeighborhoodMin) {
  // path 0-1-2 with weights 5, 1, 9.
  WeightedGraph wg(gen::path(3), {5, 1, 9});
  EXPECT_EQ(wg.tau(0), 1);  // neighbor 1
  EXPECT_EQ(wg.tau(1), 1);  // itself
  EXPECT_EQ(wg.tau(2), 1);  // neighbor 1
  auto taus = wg.all_tau();
  EXPECT_EQ(taus, (std::vector<Weight>{1, 1, 1}));
}

TEST(WeightedGraph, TauOfIsolatedNodeIsOwnWeight) {
  WeightedGraph wg(Graph(2), {7, 3});
  EXPECT_EQ(wg.tau(0), 7);
  EXPECT_EQ(wg.tau(1), 3);
}

TEST(WeightedGraph, TotalWeight) {
  WeightedGraph wg(gen::path(3), {5, 1, 9});
  NodeSet s{0, 2};
  EXPECT_EQ(wg.total_weight(s), 14);
}

// ------------------------------------------------------------------ verify

TEST(Verify, DominatingSetOnPath) {
  Graph g = gen::path(5);
  EXPECT_TRUE(is_dominating_set(g, std::vector<NodeId>{1, 3}));
  EXPECT_FALSE(is_dominating_set(g, std::vector<NodeId>{0, 4}));
  EXPECT_FALSE(is_dominating_set(g, std::vector<NodeId>{}));
}

TEST(Verify, EmptyGraphIsDominatedByEmptySet) {
  Graph g(0);
  EXPECT_TRUE(is_dominating_set(g, std::vector<NodeId>{}));
}

TEST(Verify, UndominatedNodes) {
  Graph g = gen::path(5);
  auto un = undominated_nodes(g, std::vector<NodeId>{0});
  EXPECT_EQ(un, (std::vector<NodeId>{2, 3, 4}));
}

TEST(Verify, VertexCover) {
  Graph g = triangle();
  EXPECT_TRUE(is_vertex_cover(g, std::vector<NodeId>{0, 1}));
  EXPECT_FALSE(is_vertex_cover(g, std::vector<NodeId>{0}));
}

TEST(Verify, ValidNodeSetRejectsDuplicatesAndRange) {
  Graph g(3);
  EXPECT_TRUE(is_valid_node_set(g, std::vector<NodeId>{0, 2}));
  EXPECT_FALSE(is_valid_node_set(g, std::vector<NodeId>{0, 0}));
  EXPECT_FALSE(is_valid_node_set(g, std::vector<NodeId>{3}));
}

TEST(Verify, FeasiblePacking) {
  auto wg = WeightedGraph::uniform(gen::path(3));
  std::vector<double> ok{0.3, 0.3, 0.3};
  std::vector<double> bad{0.6, 0.6, 0.6};  // X_1 = 1.8 > 1
  EXPECT_TRUE(is_feasible_packing(wg, ok));
  EXPECT_FALSE(is_feasible_packing(wg, bad));
  EXPECT_DOUBLE_EQ(packing_lower_bound(ok), 0.9);
}

// ------------------------------------------------------------------- stats

TEST(Stats, ComponentsOfForest) {
  Graph g = Graph::from_edges(5, {{0, 1}, {2, 3}});
  NodeId count = 0;
  auto comp = connected_components(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
}

TEST(Stats, ForestAndTreePredicates) {
  EXPECT_TRUE(is_forest(gen::path(6)));
  EXPECT_TRUE(is_tree(gen::path(6)));
  EXPECT_TRUE(is_forest(Graph(3)));
  EXPECT_FALSE(is_tree(Graph(3)));  // disconnected
  EXPECT_FALSE(is_forest(gen::cycle(4)));
  EXPECT_FALSE(is_tree(gen::cycle(4)));
}

TEST(Stats, BfsDistancesOnPath) {
  Graph g = gen::path(4);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Stats, BfsUnreachableMarkedN) {
  Graph g(3);
  auto d = bfs_distances(g, 1);
  EXPECT_EQ(d[0], 3u);
  EXPECT_EQ(d[1], 0u);
}

TEST(Stats, DegeneracyKnownValues) {
  EXPECT_EQ(compute_stats(gen::path(10)).degeneracy, 1u);
  EXPECT_EQ(compute_stats(gen::cycle(10)).degeneracy, 2u);
  EXPECT_EQ(compute_stats(gen::clique(6)).degeneracy, 5u);
  EXPECT_EQ(compute_stats(gen::grid(5, 5)).degeneracy, 2u);
  EXPECT_EQ(compute_stats(gen::star(50)).degeneracy, 1u);
}

TEST(Stats, DegreeHistogram) {
  auto h = degree_histogram(gen::star(5));
  // 4 leaves of degree 1, one hub of degree 4.
  EXPECT_EQ(h[1], 4u);
  EXPECT_EQ(h[4], 1u);
}

TEST(Stats, FullStatsOnGrid) {
  auto s = compute_stats(gen::grid(4, 4));
  EXPECT_EQ(s.n, 16u);
  EXPECT_EQ(s.m, 24u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.num_isolated, 0u);
}

// ---------------------------------------------------------------------- io

TEST(Io, GraphRoundTrip) {
  Graph g = gen::grid(3, 4);
  std::stringstream ss;
  write_graph(ss, g);
  Graph back = read_graph(ss);
  EXPECT_EQ(back, g);
}

TEST(Io, WeightedRoundTrip) {
  WeightedGraph wg(gen::path(4), {4, 3, 2, 1});
  std::stringstream ss;
  write_weighted_graph(ss, wg);
  WeightedGraph back = read_weighted_graph(ss);
  EXPECT_EQ(back.graph(), wg.graph());
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(back.weight(v), wg.weight(v));
}

TEST(Io, CommentsSkipped) {
  std::stringstream ss("# a comment\n3 1\n# another\n0 2\n");
  Graph g = read_graph(ss);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Io, TruncatedInputThrows) {
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW(read_graph(ss), CheckError);
}

// --------------------------------------------------------------- transform

TEST(Transform, InducedSubgraph) {
  Graph g = gen::cycle(5);
  std::vector<NodeId> keep{0, 1, 2};
  auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 0-1, 1-2 survive; 0-4,2-3 cut
  EXPECT_EQ(sub.to_original, keep);
}

TEST(Transform, InducedSubgraphRejectsDuplicates) {
  Graph g = gen::path(3);
  EXPECT_THROW(induced_subgraph(g, std::vector<NodeId>{0, 0}), CheckError);
}

TEST(Transform, DisjointUnionShiftsIds) {
  Graph u = disjoint_union(gen::path(2), gen::path(3));
  EXPECT_EQ(u.num_nodes(), 5u);
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(2, 3));
  EXPECT_TRUE(u.has_edge(3, 4));
  EXPECT_FALSE(u.has_edge(1, 2));
}

TEST(Transform, DisjointCopies) {
  Graph c = disjoint_copies(gen::path(3), 4);
  EXPECT_EQ(c.num_nodes(), 12u);
  EXPECT_EQ(c.num_edges(), 8u);
  NodeId comp_count = 0;
  connected_components(c, &comp_count);
  EXPECT_EQ(comp_count, 4u);
}

TEST(Transform, SubdivideEdges) {
  Graph s = subdivide_edges(triangle());
  EXPECT_EQ(s.num_nodes(), 6u);
  EXPECT_EQ(s.num_edges(), 6u);
  // Original nodes are pairwise non-adjacent after subdivision.
  EXPECT_FALSE(s.has_edge(0, 1));
  // Middle nodes have degree exactly 2.
  for (NodeId v = 3; v < 6; ++v) EXPECT_EQ(s.degree(v), 2u);
}

TEST(Transform, SubdividedCycleIsLongerCycle) {
  Graph s = subdivide_edges(gen::cycle(4));
  EXPECT_EQ(s.num_nodes(), 8u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(s.degree(v), 2u);
  NodeId comp = 0;
  connected_components(s, &comp);
  EXPECT_EQ(comp, 1u);
}

TEST(Transform, Overlay) {
  Graph a = Graph::from_edges(3, {{0, 1}});
  Graph b = Graph::from_edges(3, {{1, 2}, {0, 1}});
  Graph o = overlay(a, b);
  EXPECT_EQ(o.num_edges(), 2u);
}

TEST(Transform, Complement) {
  Graph c = complement(gen::path(3));  // path 0-1-2 -> single edge 0-2
  EXPECT_EQ(c.num_edges(), 1u);
  EXPECT_TRUE(c.has_edge(0, 2));
}

}  // namespace
}  // namespace arbods
