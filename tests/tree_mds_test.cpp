// Tests for Observation A.1: the single-round 3-approximation on forests.
#include <gtest/gtest.h>

#include "baselines/tree_dp.hpp"
#include "core/solvers.hpp"
#include "gen/classic.hpp"
#include "gen/trees.hpp"
#include "graph/verify.hpp"

namespace arbods {
namespace {

double tree_ratio(const Graph& g) {
  WeightedGraph wg = WeightedGraph::uniform(Graph(g));
  MdsResult res = solve_mds_tree(wg);
  res.validate(wg);
  auto opt = baselines::tree_dominating_set(wg);
  EXPECT_GE(opt.weight, 1);
  return static_cast<double>(res.weight) / static_cast<double>(opt.weight);
}

class TreeRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeRatioTest, RandomTreeWithin3) {
  Rng rng(600 + GetParam());
  Graph t = gen::random_tree_prufer(200 + 17 * GetParam(), rng);
  EXPECT_LE(tree_ratio(t), 3.0 + 1e-12);
}

TEST_P(TreeRatioTest, RandomForestWithin3) {
  Rng rng(700 + GetParam());
  Graph f = gen::random_forest(150 + 11 * GetParam(), 5, rng);
  EXPECT_LE(tree_ratio(f), 3.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Trials, TreeRatioTest, ::testing::Range(0, 8));

TEST(TreeMds, PathOfFive) {
  // Internal nodes of P5 = {1,2,3}; OPT = {1,3} (size 2); ratio 1.5.
  auto wg = WeightedGraph::uniform(gen::path(5));
  MdsResult res = solve_mds_tree(wg);
  EXPECT_EQ(res.dominating_set, (NodeSet{1, 2, 3}));
}

TEST(TreeMds, StarTakesOnlyHub) {
  auto wg = WeightedGraph::uniform(gen::star(50));
  MdsResult res = solve_mds_tree(wg);
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(TreeMds, SingleNodeJoins) {
  auto wg = WeightedGraph::uniform(Graph(1));
  MdsResult res = solve_mds_tree(wg);
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(TreeMds, IsolatedNodesAllJoin) {
  auto wg = WeightedGraph::uniform(Graph(4));
  MdsResult res = solve_mds_tree(wg);
  EXPECT_EQ(res.dominating_set.size(), 4u);
}

TEST(TreeMds, K2LowerIdJoins) {
  auto wg = WeightedGraph::uniform(gen::path(2));
  MdsResult res = solve_mds_tree(wg);
  EXPECT_EQ(res.dominating_set, NodeSet{0});
}

TEST(TreeMds, ManyK2Components) {
  Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}, {4, 5}});
  auto wg = WeightedGraph::uniform(std::move(g));
  MdsResult res = solve_mds_tree(wg);
  res.validate(wg);
  EXPECT_EQ(res.dominating_set, (NodeSet{0, 2, 4}));
}

TEST(TreeMds, CaterpillarInternalsOnly) {
  // Caterpillar: spine of 4, 2 legs each. Internal nodes = spine.
  auto wg = WeightedGraph::uniform(gen::caterpillar(4, 2));
  MdsResult res = solve_mds_tree(wg);
  res.validate(wg);
  EXPECT_EQ(res.dominating_set, (NodeSet{0, 1, 2, 3}));
}

TEST(TreeMds, RunsInOneSimulatorRound) {
  Rng rng(601);
  auto wg = WeightedGraph::uniform(gen::random_tree_prufer(500, rng));
  MdsResult res = solve_mds_tree(wg);
  EXPECT_EQ(res.stats.rounds, 1);
}

TEST(TreeMds, WorstCaseRatioApproached) {
  // Spider with legs of length 2: internal nodes = center + legs midpoints;
  // OPT = midpoints only... ratio tends to (legs+1)/legs * ... sanity: <= 3.
  auto wg = WeightedGraph::uniform(gen::spider(6, 2));
  MdsResult res = solve_mds_tree(wg);
  res.validate(wg);
  auto opt = baselines::tree_dominating_set(wg);
  EXPECT_LE(res.weight, 3 * opt.weight);
}

}  // namespace
}  // namespace arbods
