// E9 — CONGEST compliance: every algorithm's widest message stays under
// the O(log n) cap as n grows (the cap itself is enforced at runtime; this
// table shows the actual headroom).
#include <cmath>

#include "bench_util.hpp"
#include "core/solvers.hpp"

using namespace arbods;

int main() {
  std::cout << "# E9 — message width vs the CONGEST cap\n\n";
  Table t({"n", "cap (bits)", "Thm1.1 max", "Thm1.2 max", "Thm1.3 max",
           "Rem4.4 max", "Rem4.5 max", "msgs/edge/round Thm1.1"});
  for (NodeId n : {256u, 1024u, 4096u, 16384u}) {
    Rng rng(9000 + n);
    Graph g = gen::k_tree_union(n, 3, rng);
    auto w = gen::uniform_weights(n, 1000, rng);
    WeightedGraph wg(std::move(g), std::move(w));
    const std::size_t m = wg.graph().num_edges();

    MdsResult r1 = solve_mds_deterministic(wg, 3, 0.3);
    MdsResult r2 = solve_mds_randomized(wg, 3, 2);
    MdsResult r3 = solve_mds_general(wg, 2);
    MdsResult r4 = solve_mds_unknown_delta(wg, 3, 0.3);
    MdsResult r5 = solve_mds_unknown_alpha(wg, 0.3);
    Network net(wg);  // for the cap value

    const double per_edge_round =
        static_cast<double>(r1.stats.messages) /
        (static_cast<double>(m) * static_cast<double>(r1.stats.rounds));
    t.add_row({Table::fmt_int(n), Table::fmt_int(net.max_message_bits()),
               Table::fmt_int(r1.stats.max_message_bits),
               Table::fmt_int(r2.stats.max_message_bits),
               Table::fmt_int(r3.stats.max_message_bits),
               Table::fmt_int(r4.stats.max_message_bits),
               Table::fmt_int(r5.stats.max_message_bits),
               Table::fmt(per_edge_round, 3)});
  }
  t.print(std::cout);
  std::cout << "Claim check: all observed widths <= cap = "
               "max(64, 4*ceil(log2(n+1))) bits; per-edge-per-round message "
               "load is <= 2 (one per direction).\n";
  return 0;
}
