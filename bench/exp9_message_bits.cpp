// E9 — CONGEST compliance: every algorithm's widest message stays under
// the O(log n) cap as n grows (the cap itself is enforced at runtime; this
// table shows the actual headroom). Solvers are enumerated through the
// harness registry; the forests-only solver is skipped on this family.
#include <cmath>

#include "bench_util.hpp"
#include "harness/oracle.hpp"

using namespace arbods;

int main() {
  std::cout << "# E9 — message width vs the CONGEST cap\n\n";

  std::vector<const harness::SolverInfo*> solvers;
  std::vector<std::string> header = {"n", "cap (bits)"};
  for (const auto& info : harness::all_solvers()) {
    if (info.forests_only) continue;  // family below is not a forest
    solvers.push_back(&info);
    header.push_back(std::string(info.name) + " max");
  }
  header.push_back("msgs/edge/round (det)");

  Table t(header);
  for (NodeId n : {256u, 1024u, 4096u, 16384u}) {
    Rng rng(9000 + n);
    Graph g = gen::k_tree_union(n, 3, rng);
    auto w = gen::uniform_weights(n, 1000, rng);
    WeightedGraph wg(std::move(g), std::move(w));
    const std::size_t m = wg.graph().num_edges();

    harness::SolverParams params;
    params.alpha = 3;
    params.eps = 0.3;

    std::vector<std::string> row = {
        Table::fmt_int(n),
        Table::fmt_int(congest_message_cap(CongestConfig{}, n))};
    double per_edge_round = 0.0;
    for (const auto* info : solvers) {
      MdsResult res = harness::run_solver(info->name, wg, params);
      row.push_back(Table::fmt_int(res.stats.max_message_bits));
      if (info->name == "det")
        per_edge_round =
            static_cast<double>(res.stats.messages) /
            (static_cast<double>(m) * static_cast<double>(res.stats.rounds));
    }
    row.push_back(Table::fmt(per_edge_round, 3));
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "Claim check: all observed widths <= cap = "
               "max(64, 4*ceil(log2(n+1))) bits; per-edge-per-round message "
               "load is <= 2 (one per direction).\n";
  return 0;
}
