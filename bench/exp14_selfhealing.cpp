// Experiment 14: self-healing — raw solvers vs "<solver>+repair" vs
// reliable-transport runs across the exp13 fault ladder.
//
// Three columns per base solver:
//   raw        the registry solver as-is; under the heavy (killing)
//              level it may starve into a CheckError (failed=true) or a
//              round-limit hit — the casualty baseline.
//   +repair    the registry's repair variant: same solver, then the
//              O(1)-round post-kill re-cover (src/resilience/repair.*).
//              Its rows carry repair_rounds / repaired_nodes /
//              post_repair_weight (schema v5) and must stay failed=false
//              where the raw run died.
//   +rel       the base solver under config.reliable_transport=true
//              (src/resilience/reliable_channel.*) on the KILL-FREE
//              ladder (kills are crash-stop, out of the channel's
//              scope): exactly-once sender-ordered delivery makes the
//              solver's OUTPUT bit-identical to its clean run — this
//              driver hard-checks that, not just the cross-width
//              determinism audit.
//
//   exp14_selfhealing [--solvers name1,...] [--levels none,light,...]
//                     [--threads W1,...] [--shards K1,...]
//                     [--seeds S1,...] [--repeats N]
//                     [--round-limit R] [--rel-round-limit R] [--smoke]
//
// stdout: one JSON object per row (schema v5 — hit_round_limit and the
// repair columns join the v4 fields), ready for CI artifact upload.
// stderr: the per-(solver, level) envelope table. Exits 1 on a
// determinism violation or a reliable-run output mismatch.
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fault/fault_spec.hpp"
#include "harness/corpus.hpp"
#include "harness/scenario.hpp"

using namespace arbods;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

std::vector<int> split_ints(const std::string& csv) {
  std::vector<int> out;
  for (const std::string& s : split_list(csv)) out.push_back(std::stoi(s));
  return out;
}

std::vector<std::uint64_t> split_u64s(const std::string& csv) {
  std::vector<std::uint64_t> out;
  for (const std::string& s : split_list(csv)) out.push_back(std::stoull(s));
  return out;
}

/// exp13's escalation ladder, byte-for-byte — the two experiments must
/// measure the same adversary.
harness::ScenarioFault named_level(const std::string& name) {
  harness::ScenarioFault level;
  level.label = name;
  fault::FaultSpec& s = level.spec;
  if (name == "none") return level;
  if (name == "light") {
    s.drop_prob = 0.01;
    s.duplicate_prob = 0.01;
    s.delay_prob = 0.05;
    s.max_delay_rounds = 2;
    return level;
  }
  if (name == "moderate") {
    s.drop_prob = 0.05;
    s.duplicate_prob = 0.05;
    s.delay_prob = 0.2;
    s.max_delay_rounds = 3;
    s.reorder_prob = 0.1;
    return level;
  }
  if (name == "heavy") {
    s.drop_prob = 0.15;
    s.duplicate_prob = 0.1;
    s.delay_prob = 0.3;
    s.max_delay_rounds = 4;
    s.reorder_prob = 0.2;
    s.kill_prob = 0.05;
    s.kill_round = 3;
    return level;
  }
  std::cerr << "unknown fault level '" << name
            << "' (known: none, light, moderate, heavy)\n";
  std::exit(2);
}

[[noreturn]] void usage() {
  std::cerr << "usage: exp14_selfhealing [--solvers name1,name2,...]\n"
               "                         [--levels none,light,moderate,heavy]\n"
               "                         [--threads W1,W2,...] [--shards "
               "K1,K2,...]\n"
               "                         [--seeds S1,S2,...] [--repeats N]\n"
               "                         [--round-limit R] "
               "[--rel-round-limit R]\n"
               "                         [--smoke] [--trace-out PATH]\n"
               "  --trace-out writes the raw sweep's trace to PATH and the\n"
               "  reliable-transport sweep's to PATH.rel\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> solvers = {"det", "randomized", "greedy-threshold"};
  std::vector<std::string> level_names = {"none", "light", "moderate",
                                          "heavy"};
  std::vector<int> threads = {1, 4};
  std::vector<int> shards = {1, 2};
  std::vector<std::uint64_t> seeds = {12345};
  int repeats = 1;
  std::int64_t round_limit = 2000;
  // Reliable transport trades rounds for delivery (every virtual round
  // costs at least one physical round plus retransmission tails), so its
  // sweep gets a budget that bounds runaway loss without clipping honest
  // recovery.
  std::int64_t rel_round_limit = 50000;
  bool smoke = false;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--solvers")) solvers = split_list(need("--solvers"));
    else if (!std::strcmp(argv[i], "--levels")) level_names = split_list(need("--levels"));
    else if (!std::strcmp(argv[i], "--threads")) threads = split_ints(need("--threads"));
    else if (!std::strcmp(argv[i], "--shards")) shards = split_ints(need("--shards"));
    else if (!std::strcmp(argv[i], "--seeds")) seeds = split_u64s(need("--seeds"));
    else if (!std::strcmp(argv[i], "--repeats")) repeats = std::stoi(need("--repeats"));
    else if (!std::strcmp(argv[i], "--round-limit")) round_limit = std::stoll(need("--round-limit"));
    else if (!std::strcmp(argv[i], "--rel-round-limit")) rel_round_limit = std::stoll(need("--rel-round-limit"));
    else if (!std::strcmp(argv[i], "--smoke")) smoke = true;
    else if (!std::strcmp(argv[i], "--trace-out")) trace_out = need("--trace-out");
    else usage();
  }
  if (repeats < 1) repeats = 1;
  if (smoke) {
    // CI preset, matching exp13's: small corpus, two solvers, the full
    // ladder, one seed — every column (raw casualty, repair recovery,
    // reliable bit-identity) exercised in seconds.
    solvers = {"det", "greedy-threshold"};
    threads = {1, 4};
    shards = {1, 2};
  }

  std::vector<harness::CorpusInstance> corpus;
  if (smoke) {
    auto small = harness::small_corpus(seeds.front());
    for (std::size_t i = 0; i < small.size() && corpus.size() < 4; i += 3)
      corpus.push_back(std::move(small[i]));
  } else {
    corpus = harness::standard_corpus(/*weighted=*/true, seeds.front());
  }

  // Sweep A: raw and "+repair" registry solvers over the full ladder
  // (kills included — that is what repair is for).
  harness::ScenarioSpec raw_spec;
  for (const std::string& name : solvers) {
    raw_spec.solvers.push_back({name, std::nullopt, name});
    raw_spec.solvers.push_back(
        {name + "+repair", std::nullopt, name + "+repair"});
  }
  raw_spec.fault_levels.clear();
  for (const std::string& name : level_names)
    raw_spec.fault_levels.push_back(named_level(name));
  raw_spec.thread_widths = threads;
  raw_spec.shard_counts = shards;
  raw_spec.seeds = seeds;
  raw_spec.repeats = repeats;
  raw_spec.base_config.round_limit = round_limit;
  raw_spec.tolerate_failures = true;
  raw_spec.keep_certificates = false;
  raw_spec.trace_out = trace_out;

  // Sweep B: base solvers under reliable transport, same ladder with the
  // kill dial zeroed (a crashed node retransmits nothing; the channel's
  // contract covers drop/duplicate/delay/reorder only).
  harness::ScenarioSpec rel_spec = raw_spec;
  rel_spec.solvers.clear();
  for (const std::string& name : solvers)
    rel_spec.solvers.push_back({name, std::nullopt, name + "+rel"});
  for (harness::ScenarioFault& level : rel_spec.fault_levels) {
    level.spec.kill_prob = 0.0;
    level.spec.kill_round = fault::FaultSpec{}.kill_round;
  }
  rel_spec.base_config.reliable_transport = true;
  rel_spec.base_config.round_limit = rel_round_limit;
  // Two sweeps cannot share one output file; the reliable leg (the one
  // with retransmit spans) gets a .rel sibling.
  rel_spec.trace_out = trace_out.empty() ? trace_out : trace_out + ".rel";

  std::vector<harness::ScenarioRow> rows = harness::run_scenario(raw_spec, corpus);
  {
    auto rel_rows = harness::run_scenario(rel_spec, corpus);
    rows.insert(rows.end(), std::make_move_iterator(rel_rows.begin()),
                std::make_move_iterator(rel_rows.end()));
  }
  harness::write_scenario_json(std::cout, rows);

  // Clean-twin lookup: the "none" weight/rounds of the same
  // (instance, solver, seed, threads, shards) cell.
  std::map<std::string, std::pair<double, double>> clean;
  auto cell_key = [](const harness::ScenarioRow& row) {
    std::ostringstream key;
    key << row.instance << '\x1f' << row.solver << '\x1f' << row.seed
        << '\x1f' << row.threads << '\x1f' << row.shards;
    return key.str();
  };
  for (const auto& row : rows)
    if (row.fault == "none" && !row.failed)
      clean[cell_key(row)] = {static_cast<double>(row.result.weight),
                              static_cast<double>(row.result.stats.rounds)};

  // One envelope row per (solver, fault level), aggregated over
  // instances, seeds, widths, and shard counts.
  struct Envelope {
    double weight_ratio_sum = 0.0;
    double extra_rounds_sum = 0.0;
    int compared = 0;
    std::int64_t killed = 0, repair_rounds = 0, repaired = 0;
    int cells = 0, failed = 0, limited = 0;
  };
  std::map<std::pair<std::string, std::string>, Envelope> envelopes;
  for (const auto& row : rows) {
    Envelope& env = envelopes[{row.solver, row.fault}];
    ++env.cells;
    if (row.failed) {
      ++env.failed;
      continue;
    }
    env.killed += row.result.stats.killed;
    env.repair_rounds += row.result.repair_rounds;
    env.repaired += row.result.repaired_nodes;
    if (row.result.stats.hit_round_limit) ++env.limited;
    const auto it = clean.find(cell_key(row));
    if (it != clean.end() && it->second.first > 0.0) {
      env.weight_ratio_sum += static_cast<double>(row.result.weight) /
                              it->second.first;
      env.extra_rounds_sum +=
          static_cast<double>(row.result.stats.rounds) - it->second.second;
      ++env.compared;
    }
  }

  Table table({"solver", "fault", "cells", "weight_vs_clean", "extra_rounds",
               "killed", "repair_rounds", "repaired", "limited", "failed"});
  for (const auto& [key, env] : envelopes) {
    const double ratio =
        env.compared > 0 ? env.weight_ratio_sum / env.compared : 0.0;
    const double extra =
        env.compared > 0 ? env.extra_rounds_sum / env.compared : 0.0;
    table.add_row({key.first, key.second, Table::fmt_int(env.cells),
                   Table::fmt(ratio, 4), Table::fmt(extra, 1),
                   Table::fmt_int(env.killed),
                   Table::fmt_int(env.repair_rounds),
                   Table::fmt_int(env.repaired), Table::fmt_int(env.limited),
                   Table::fmt_int(env.failed)});
  }
  std::cerr << "\nExperiment 14: self-healing envelopes (weight_vs_clean = "
               "avg faulty/clean weight of the same cell; +rel rows must "
               "pin it at exactly 1)\n";
  table.print(std::cerr);

  int violations = 0;
  for (const auto& row : rows) {
    if (!row.identical) {
      std::cerr << "DETERMINISM VIOLATION: " << row.instance << " / "
                << row.solver << " / " << row.fault
                << " at threads=" << row.threads << " shards=" << row.shards
                << "\n";
      ++violations;
    }
    // The reliable channel's whole contract: the solver's output under
    // faults is the clean output. Weight is a faithful proxy (the
    // determinism audit already pins the full result per level).
    if (row.solver.size() > 4 &&
        row.solver.compare(row.solver.size() - 4, 4, "+rel") == 0 &&
        row.fault != "none" && !row.failed) {
      const auto it = clean.find(cell_key(row));
      if (it != clean.end() &&
          static_cast<double>(row.result.weight) != it->second.first) {
        std::cerr << "RELIABLE OUTPUT MISMATCH: " << row.instance << " / "
                  << row.solver << " / " << row.fault
                  << " weight " << row.result.weight << " != clean "
                  << it->second.first << "\n";
        ++violations;
      }
    }
  }
  return violations > 0 ? 1 : 0;
}
