// Experiment 12: simulator scaling — instance size x worker-pool width.
//
// Sweeps the scaling corpus tier (src/harness/corpus.hpp) against a list
// of thread counts for one or more registry solvers and reports one JSON
// object per run on stdout (a JSON array), ready for plotting or CI
// artifact upload:
//
//   exp12_scaling [--sizes 10000,50000,100000] [--threads 1,2,4,8]
//                 [--solvers greedy-threshold] [--families tree,forest2,...]
//                 [--seed S] [--repeats N] [--smoke]
//
// Every (instance, solver) cell is run once per thread count on the SAME
// cached instance; the simulator guarantees bit-identical MdsResults for
// every width, which this binary re-checks (`identical` field) so a sweep
// doubles as an end-to-end determinism audit at scale. With --repeats N a
// cell is run N extra times after an untimed warm-up run and the reported
// `seconds` is the median (every repeat is also determinism-checked), so
// checked-in baselines such as BENCH_exp12.json track the perf trajectory
// instead of scheduler noise. `--smoke` is the CI preset: one small
// instance, widths 1 and 4.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "harness/registry.hpp"

using namespace arbods;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

std::vector<int> split_ints(const std::string& csv) {
  std::vector<int> out;
  for (const std::string& s : split_list(csv)) out.push_back(std::stoi(s));
  return out;
}

[[noreturn]] void usage() {
  std::cerr << "usage: exp12_scaling [--sizes N1,N2,...] [--threads "
               "W1,W2,...]\n"
               "                     [--solvers name1,name2,...] [--families "
               "f1,f2,...]\n"
               "                     [--seed S] [--repeats N] [--smoke]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {10'000, 50'000, 100'000};
  std::vector<int> threads = {1, 2, 4, 8};
  std::vector<std::string> solvers = {"greedy-threshold"};
  std::vector<std::string> families = {"tree", "forest2", "ba3"};
  std::uint64_t seed = 12345;
  int repeats = 1;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--sizes")) sizes = split_ints(need("--sizes"));
    else if (!std::strcmp(argv[i], "--threads")) threads = split_ints(need("--threads"));
    else if (!std::strcmp(argv[i], "--solvers")) solvers = split_list(need("--solvers"));
    else if (!std::strcmp(argv[i], "--families")) families = split_list(need("--families"));
    else if (!std::strcmp(argv[i], "--seed")) seed = std::stoull(need("--seed"));
    else if (!std::strcmp(argv[i], "--repeats")) repeats = std::stoi(need("--repeats"));
    else if (!std::strcmp(argv[i], "--smoke")) {
      sizes = {10'000};
      threads = {1, 4};
      families = {"forest2"};
    } else usage();
  }
  if (repeats < 1) repeats = 1;

  const auto corpus = harness::scaling_corpus();
  std::cout << "[\n";
  bool first_row = true;
  for (const auto& spec : corpus) {
    bool size_selected = false;
    for (int n : sizes) size_selected |= spec.n == static_cast<NodeId>(n);
    bool family_selected = false;
    for (const auto& f : families) family_selected |= f == spec.family;
    if (!size_selected || !family_selected) continue;

    const harness::CorpusInstance& inst =
        harness::scaling_instance(spec, seed);
    for (const std::string& solver_name : solvers) {
      const harness::SolverInfo& info = harness::solver(solver_name);
      harness::SolverParams params = harness::params_for(info, inst);

      MdsResult reference;
      bool have_reference = false;
      for (const int w : threads) {
        params.threads = w;
        CongestConfig cfg;
        cfg.seed = seed;
        // Warm-up run (untimed) when repeating, then median-of-N timing;
        // every repeat must reproduce the same result bit-for-bit.
        bool identical = true;
        MdsResult res;
        std::vector<double> samples;
        samples.reserve(static_cast<std::size_t>(repeats));
        for (int rep = 0; rep < (repeats > 1 ? repeats + 1 : repeats); ++rep) {
          Stopwatch timer;
          MdsResult run =
              harness::run_solver(solver_name, inst.wg, params, cfg);
          const double seconds = timer.elapsed_seconds();
          const bool warmup = repeats > 1 && rep == 0;
          if (!warmup) samples.push_back(seconds);
          if (!have_reference) {
            reference = run;
            have_reference = true;
          } else {
            identical &= run.dominating_set == reference.dominating_set &&
                         run.weight == reference.weight &&
                         run.stats == reference.stats;
          }
          res = std::move(run);
        }
        std::sort(samples.begin(), samples.end());
        const double seconds = samples[samples.size() / 2];

        if (!first_row) std::cout << ",\n";
        first_row = false;
        std::cout << "  {\"instance\": \"" << inst.name << "\", \"family\": \""
                  << spec.family << "\", \"n\": " << spec.n
                  << ", \"m\": " << inst.wg.graph().num_edges()
                  << ", \"solver\": \"" << solver_name
                  << "\", \"threads\": " << w << ", \"seconds\": " << seconds
                  << ", \"repeats\": " << repeats
                  << ", \"rounds\": " << res.stats.rounds
                  << ", \"messages\": " << res.stats.messages
                  << ", \"total_bits\": " << res.stats.total_bits
                  << ", \"set_size\": " << res.dominating_set.size()
                  << ", \"weight\": " << res.weight
                  << ", \"identical\": " << (identical ? "true" : "false")
                  << "}";
        if (!identical) {
          std::cerr << "DETERMINISM VIOLATION: " << inst.name << " / "
                    << solver_name << " at threads=" << w << "\n";
          std::cout << "\n]\n";
          return 1;
        }
      }
    }
  }
  std::cout << "\n]\n";
  return 0;
}
