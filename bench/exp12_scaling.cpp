// Experiment 12: simulator scaling — instance size x worker-pool width
// x shard count.
//
// A thin shell over the scenario batch runner (src/harness/scenario.hpp):
// the selected scaling-corpus instances x solvers x thread widths x shard
// counts expand into one ScenarioSpec, run on pooled Networks (one
// Network per (instance, width, shards), constructed once and reused
// across repeats), and the rows print as one JSON object per run on
// stdout (a JSON array), ready for plotting or CI artifact upload:
//
//   exp12_scaling [--sizes 10000,50000,100000] [--threads 1,2,4,8]
//                 [--shards 1,2,4] [--solvers greedy-threshold]
//                 [--families tree,forest2,...]
//                 [--seed S] [--repeats N] [--pin] [--auto-replan] [--smoke]
//
// --pin pins the worker pools to CPUs and turns on shard-affine dispatch
// + first-touch arena placement; --auto-replan lets ProtocolRunner adopt
// traffic-refined shard plans at phase boundaries. Both are placement
// knobs: rows carry `pinned`/`replans` (schema v6) but results stay
// bit-identical, so the determinism audit covers them too. Pipe one
// pinned and one unpinned JSON through `compare_bench.py --speedup` to
// check the "sharding is free" claim per (solver, n, threads).
//
// Every (instance, solver) cell is run once per thread count and shard
// count on the SAME cached instance; the simulator guarantees
// bit-identical MdsResults for every width and every shard count, which
// the scenario runner re-checks (`identical` field) so a sweep doubles
// as an end-to-end determinism audit at scale. With
// --repeats N a cell is run N extra times after an untimed warm-up run
// and the reported `seconds` is the median (every repeat is also
// determinism-checked), so checked-in baselines such as BENCH_exp12.json
// track the perf trajectory instead of scheduler noise. `--smoke` is the
// CI preset: one small instance, widths 1 and 4.
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

using namespace arbods;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

std::vector<int> split_ints(const std::string& csv) {
  std::vector<int> out;
  for (const std::string& s : split_list(csv)) out.push_back(std::stoi(s));
  return out;
}

[[noreturn]] void usage() {
  std::cerr << "usage: exp12_scaling [--sizes N1,N2,...] [--threads "
               "W1,W2,...] [--shards K1,K2,...]\n"
               "                     [--solvers name1,name2,...] [--families "
               "f1,f2,...]\n"
               "                     [--seed S] [--repeats N] [--pin] "
               "[--auto-replan] [--smoke]\n"
               "                     [--trace-out PATH]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {10'000, 50'000, 100'000};
  std::vector<int> threads = {1, 2, 4, 8};
  std::vector<int> shards = {1};
  std::vector<std::string> solvers = {"greedy-threshold"};
  std::vector<std::string> families = {"tree", "forest2", "ba3"};
  std::uint64_t seed = 12345;
  int repeats = 1;
  bool pin = false;
  bool auto_replan = false;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--sizes")) sizes = split_ints(need("--sizes"));
    else if (!std::strcmp(argv[i], "--threads")) threads = split_ints(need("--threads"));
    else if (!std::strcmp(argv[i], "--shards")) shards = split_ints(need("--shards"));
    else if (!std::strcmp(argv[i], "--solvers")) solvers = split_list(need("--solvers"));
    else if (!std::strcmp(argv[i], "--families")) families = split_list(need("--families"));
    else if (!std::strcmp(argv[i], "--seed")) seed = std::stoull(need("--seed"));
    else if (!std::strcmp(argv[i], "--repeats")) repeats = std::stoi(need("--repeats"));
    else if (!std::strcmp(argv[i], "--pin")) pin = true;
    else if (!std::strcmp(argv[i], "--auto-replan")) auto_replan = true;
    else if (!std::strcmp(argv[i], "--trace-out")) trace_out = need("--trace-out");
    else if (!std::strcmp(argv[i], "--smoke")) {
      sizes = {10'000};
      threads = {1, 4};
      families = {"forest2"};
    } else usage();
  }
  if (repeats < 1) repeats = 1;

  harness::ScenarioSpec spec;
  for (const std::string& name : solvers)
    spec.solvers.push_back({name, std::nullopt, name});
  spec.thread_widths = threads;
  spec.shard_counts = shards;
  spec.seeds = {seed};
  spec.repeats = repeats;
  spec.base_config.seed = seed;
  spec.base_config.pin_threads = pin;
  spec.base_config.auto_replan = auto_replan;
  spec.trace_out = trace_out;
  // The JSON only reads scalar fields; don't hold one O(n) certificate
  // per row across a 500k-node sweep.
  spec.keep_certificates = false;

  std::vector<const harness::CorpusInstance*> instances;
  for (const auto& scaling_spec : harness::scaling_corpus()) {
    bool size_selected = false;
    for (int n : sizes) size_selected |= scaling_spec.n == static_cast<NodeId>(n);
    bool family_selected = false;
    for (const auto& f : families) family_selected |= f == scaling_spec.family;
    if (!size_selected || !family_selected) continue;
    instances.push_back(&harness::scaling_instance(scaling_spec, seed));
  }

  const auto rows = harness::run_scenario(spec, instances);
  harness::write_scenario_json(std::cout, rows);
  for (const auto& row : rows) {
    if (row.identical) continue;
    std::cerr << "DETERMINISM VIOLATION: " << row.instance << " / "
              << row.solver << " at threads=" << row.threads
              << " shards=" << row.shards << "\n";
    return 1;
  }
  return 0;
}
