// Shared helpers for the experiment binaries. Each binary prints
// GitHub-flavoured markdown tables so results can be pasted into
// EXPERIMENTS.md verbatim.
//
// Instances come from the shared harness corpus (src/harness/corpus.hpp)
// and solvers are enumerated through the registry
// (src/harness/registry.hpp) — no per-binary instance or solver lists.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "baselines/simplex.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/weighted_graph.hpp"
#include "harness/corpus.hpp"
#include "harness/registry.hpp"

namespace arbods::bench {

using NamedInstance = harness::CorpusInstance;

/// The standard experiment families (kept small enough for laptop runs).
inline std::vector<NamedInstance> standard_instances(bool weighted,
                                                     std::uint64_t seed) {
  return harness::standard_corpus(weighted, seed);
}

/// Best available lower bound on OPT: exact LP for small instances, else
/// the instance's own dual certificate (caller-provided packing bound).
inline double lp_or_packing_bound(const WeightedGraph& wg,
                                  double packing_bound,
                                  NodeId lp_limit = 600) {
  if (wg.num_nodes() <= lp_limit)
    return baselines::solve_fractional_mds(wg).objective;
  return packing_bound;
}

inline std::string fmt_ratio(double num, double den) {
  return den > 0 ? Table::fmt(num / den, 3) : "n/a";
}

}  // namespace arbods::bench
