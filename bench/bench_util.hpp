// Shared helpers for the experiment binaries (see DESIGN.md section 5 and
// EXPERIMENTS.md). Each binary prints GitHub-flavoured markdown tables so
// results can be pasted into EXPERIMENTS.md verbatim.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "baselines/simplex.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::bench {

struct NamedInstance {
  std::string name;
  WeightedGraph wg;
  NodeId alpha;  // orientability promise used by the algorithms
};

/// The standard experiment families (kept small enough for laptop runs).
inline std::vector<NamedInstance> standard_instances(bool weighted,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NamedInstance> out;
  auto weigh = [&](Graph g) {
    if (!weighted) return WeightedGraph::uniform(std::move(g));
    auto w = gen::uniform_weights(g.num_nodes(), 100, rng);
    return WeightedGraph(std::move(g), std::move(w));
  };
  out.push_back({"tree_n4096", weigh(gen::random_tree_prufer(4096, rng)), 1});
  out.push_back({"forest2_n4096", weigh(gen::k_tree_union(4096, 2, rng)), 2});
  out.push_back({"forest5_n4096", weigh(gen::k_tree_union(4096, 5, rng)), 5});
  out.push_back({"grid_64x64", weigh(gen::grid(64, 64)), 2});
  out.push_back({"planar3tree_n4096",
                 weigh(gen::planar_stacked_triangulation(4096, rng)), 3});
  out.push_back({"outerplanar_n4096",
                 weigh(gen::random_maximal_outerplanar(4096, rng)), 2});
  out.push_back({"ba2_n4096", weigh(gen::barabasi_albert(4096, 2, rng)), 2});
  out.push_back({"ba4_n4096", weigh(gen::barabasi_albert(4096, 4, rng)), 4});
  out.push_back({"star_n4096", weigh(gen::star(4096)), 1});
  return out;
}

/// Best available lower bound on OPT: exact LP for small instances, else
/// the instance's own dual certificate (caller-provided packing bound).
inline double lp_or_packing_bound(const WeightedGraph& wg,
                                  double packing_bound,
                                  NodeId lp_limit = 600) {
  if (wg.num_nodes() <= lp_limit)
    return baselines::solve_fractional_mds(wg).objective;
  return packing_bound;
}

inline std::string fmt_ratio(double num, double den) {
  return den > 0 ? Table::fmt(num / den, 3) : "n/a";
}

}  // namespace arbods::bench
