// M2 — google-benchmark micro-benchmarks for the graph/arboricity
// substrates: peeling, orientations, max-flow pseudoarboricity, verifiers.
#include <benchmark/benchmark.h>

#include "arboricity/core_decomposition.hpp"
#include "arboricity/pseudoarboricity.hpp"
#include "baselines/greedy.hpp"
#include "baselines/tree_dp.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/trees.hpp"
#include "graph/verify.hpp"

namespace arbods {
namespace {

void BM_CoreDecomposition(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(10);
  Graph g = gen::k_tree_union(n, 4, rng);
  for (auto _ : state) {
    auto cd = core_decomposition(g);
    benchmark::DoNotOptimize(cd.degeneracy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_CoreDecomposition)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_DegeneracyOrientation(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(11);
  Graph g = gen::k_tree_union(n, 4, rng);
  for (auto _ : state) {
    auto o = degeneracy_orientation(g);
    benchmark::DoNotOptimize(o.max_out_degree());
  }
}
BENCHMARK(BM_DegeneracyOrientation)->Arg(1 << 12)->Arg(1 << 15);

void BM_Pseudoarboricity(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(12);
  Graph g = gen::k_tree_union(n, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pseudoarboricity(g));
  }
}
BENCHMARK(BM_Pseudoarboricity)->Arg(1 << 8)->Arg(1 << 10)->Arg(1 << 12);

void BM_GreedyDominatingSet(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(13);
  Graph g = gen::k_tree_union(n, 3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  for (auto _ : state) {
    auto set = baselines::greedy_dominating_set(wg);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GreedyDominatingSet)->Arg(1 << 12)->Arg(1 << 15);

void BM_TreeDp(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(14);
  Graph g = gen::random_tree_prufer(n, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  for (auto _ : state) {
    auto res = baselines::tree_dominating_set(wg);
    benchmark::DoNotOptimize(res.weight);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreeDp)->Arg(1 << 12)->Arg(1 << 16);

void BM_DominatingSetVerifier(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(15);
  Graph g = gen::k_tree_union(n, 3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  auto set = baselines::greedy_dominating_set(wg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_dominating_set(wg.graph(), set));
  }
}
BENCHMARK(BM_DominatingSetVerifier)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
}  // namespace arbods
