// E1 — Theorem 1.1 / Theorem 3.1 approximation quality.
//
// For every standard family, runs the deterministic algorithm at two
// epsilons and reports: the certified ratio (weight / packing lower
// bound), the ratio against the exact LP bound where tractable, and the
// analytic bound (2a+1)(1+eps). Paper claim reproduced: every measured
// ratio is below its analytic bound, typically far below.
#include "bench_util.hpp"

using namespace arbods;

int main() {
  std::cout << "# E1 — approximation ratio of Theorem 1.1 (weighted) / "
               "Theorem 3.1 (unweighted)\n\n";
  for (bool weighted : {false, true}) {
    std::cout << (weighted ? "## weighted (uniform 1..100)\n"
                           : "## unweighted\n");
    Table t({"instance", "alpha", "eps", "|DS| weight", "dual LB", "LP LB",
             "ratio(vs dual)", "ratio(vs LP)", "bound (2a+1)(1+eps)",
             "rounds"});
    const harness::SolverInfo& solver =
        harness::solver(weighted ? "det" : "unweighted");
    for (auto& inst : bench::standard_instances(weighted, 12345)) {
      for (double eps : {0.1, 0.5}) {
        harness::SolverParams params;
        params.alpha = inst.alpha;
        params.eps = eps;
        MdsResult res = harness::run_solver(solver.name, inst.wg, params);
        res.validate(inst.wg, 1e-5);
        // Exact LP bound only where the simplex is fast (small n).
        const bool has_lp = inst.wg.num_nodes() <= 600;
        const double lp = has_lp
                              ? bench::lp_or_packing_bound(
                                    inst.wg, res.packing_lower_bound)
                              : 0.0;
        const double bound = solver.approx_bound(inst.wg, params);
        t.add_row({inst.name, Table::fmt_int(inst.alpha), Table::fmt(eps, 2),
                   Table::fmt_int(res.weight),
                   Table::fmt(res.packing_lower_bound, 1),
                   has_lp ? Table::fmt(lp, 1) : "-",
                   Table::fmt(res.certified_ratio(), 3),
                   has_lp ? bench::fmt_ratio(static_cast<double>(res.weight), lp)
                          : "-",
                   Table::fmt(bound, 2), Table::fmt_int(res.stats.rounds)});
      }
    }
    t.print(std::cout);
  }
  return 0;
}
