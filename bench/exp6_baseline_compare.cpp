// E6 — "improves on all previous results": ours vs the baselines on the
// same instances. Every registered solver that applies to the instance
// runs via the harness registry; baselines follow. Columns report
// solution weight, ratio vs the best lower bound, and CONGEST rounds
// (centralized baselines shown as "central").
#include "bench_util.hpp"
#include "baselines/bansal_umboh.hpp"
#include "baselines/distributed_greedy.hpp"
#include "baselines/greedy.hpp"
#include "harness/oracle.hpp"
#include "harness/scenario.hpp"

using namespace arbods;

namespace {

struct Row {
  std::string algo;
  double weight;
  std::string rounds;
};

}  // namespace

int main() {
  std::cout << "# E6 — comparison against prior algorithms\n\n";
  Rng rng(616);

  std::vector<bench::NamedInstance> insts;
  insts.push_back({"forest3_n256_unw",
                   WeightedGraph::uniform(gen::k_tree_union(256, 3, rng)), 3,
                   false, true});
  {
    Graph g = gen::k_tree_union(256, 3, rng);
    auto w = gen::uniform_weights(256, 100, rng);
    insts.push_back({"forest3_n256_w", WeightedGraph(std::move(g), std::move(w)),
                     3, false, false});
  }
  insts.push_back({"planar_n256_unw",
                   WeightedGraph::uniform(
                       gen::planar_stacked_triangulation(256, rng)),
                   3, false, true});
  insts.push_back(
      {"ba2_n256_unw",
       WeightedGraph::uniform(gen::barabasi_albert(256, 2, rng)), 2, false,
       true});

  for (auto& inst : insts) {
    const double lp = baselines::solve_fractional_mds(inst.wg).objective;
    std::cout << "## " << inst.name << " (alpha<=" << inst.alpha
              << ", LP bound = " << Table::fmt(lp, 1) << ")\n";
    std::vector<Row> rows;

    // Ours + the distributed baselines: one scenario over every registry
    // solver that applies to this instance (cardinality-only solvers are
    // skipped on weighted instances — their weight column would not be a
    // weighted-MDS result), all sharing one pooled Network.
    harness::ScenarioSpec spec;
    for (const auto& info : harness::all_solvers()) {
      if (!harness::solver_applicable(info, inst)) continue;
      if (info.bound_needs_unit_weights && !inst.unit_weights) continue;
      harness::SolverParams params = harness::params_for(info, inst);
      params.eps = 0.2;  // historical E6 configuration
      params.t = 4;
      spec.solvers.push_back({std::string(info.name), params,
                              "ours " + std::string(info.theorem) + " (" +
                                  std::string(info.name) + ")"});
    }
    // The LW-style distributed baselines run on every instance (weighted
    // included — they just ignore weights), as contrast rows.
    spec.solvers.push_back(
        {"greedy-threshold", std::nullopt, "LW10-style det greedy"});
    spec.solvers.push_back(
        {"greedy-election", std::nullopt, "election heuristic"});
    spec.validate = true;
    const std::vector<const harness::CorpusInstance*> instances = {&inst};
    for (const auto& cell : harness::run_scenario(spec, instances)) {
      rows.push_back({cell.solver, double(cell.result.weight),
                      std::to_string(cell.result.stats.rounds)});
    }

    {
      auto set = baselines::greedy_dominating_set(inst.wg);
      rows.push_back({"Johnson greedy", double(inst.wg.total_weight(set)),
                      "central"});
    }
    if (inst.unit_weights) {
      auto bu = baselines::bansal_umboh_dominating_set(inst.wg.graph(),
                                                       inst.alpha);
      rows.push_back({"Bansal-Umboh LP round",
                      double(inst.wg.total_weight(bu.set)),
                      "central (distrib: O(log^2 D / eps^4))"});
    }

    Table t({"algorithm", "weight", "ratio vs LP", "CONGEST rounds"});
    for (const auto& row : rows)
      t.add_row({row.algo, Table::fmt(row.weight, 0),
                 bench::fmt_ratio(row.weight, lp), row.rounds});
    t.print(std::cout);
  }
  std::cout << "Claim check: our ratio beats the LW-style baseline at "
               "comparable or fewer rounds, and matches BU17 quality while "
               "being a genuinely distributed O(log Delta) algorithm.\n";
  return 0;
}
