// E8 — the Section 5 lower-bound construction (Figure 1 / Theorem 1.4).
//
// Part 1: structural verification of H(G) — node/edge counts, max degree,
//         the arboricity-2 witness, and the Eq. (2) chain via the
//         fractional VC of the base graph.
// Part 2: the locality phenomenon — quality of the truncated algorithm as
//         a function of the allowed rounds on H: the curve only flattens
//         after ~log(Delta) rounds, the shape Theorem 1.4 predicts no
//         algorithm can avoid.
#include <cmath>

#include "bench_util.hpp"
#include "arboricity/core_decomposition.hpp"
#include "arboricity/pseudoarboricity.hpp"
#include "lowerbound/h_construction.hpp"
#include "lowerbound/kmw_base.hpp"
#include "lowerbound/locality.hpp"

using namespace arbods;
using lowerbound::HConstruction;

int main() {
  std::cout << "# E8 — lower-bound construction H (Sec. 5, Fig. 1)\n\n";

  std::cout << "## structure of H(G) for bipartite bases G\n";
  Table s({"base G", "n(G)", "m(G)", "D(G)", "copies", "n(H)", "m(H)",
           "D(H)", "arboricity(H) lo..hi", "witness outdeg", "MFVC(G)",
           "Eq.(2) RHS (D^2+D)*MFVC"});
  struct Base {
    std::string name;
    Graph g;
  };
  std::vector<Base> bases;
  bases.push_back({"K_{3,3}", gen::complete_bipartite(3, 3)});
  bases.push_back({"circ(12,12,4)", lowerbound::circulant_bipartite(12, 12, 4)});
  bases.push_back({"circ(20,20,5)", lowerbound::circulant_bipartite(20, 20, 5)});
  for (auto& base : bases) {
    const NodeId delta = base.g.max_degree();
    const NodeId copies = delta * delta;
    HConstruction h(base.g, copies);
    auto bounds = arboricity_bounds(h.h());
    Orientation witness = h.witness_orientation();
    const double mfvc = lowerbound::fractional_vc_value(base.g);
    s.add_row({base.name, Table::fmt_int(base.g.num_nodes()),
               Table::fmt_int(static_cast<long long>(base.g.num_edges())),
               Table::fmt_int(delta), Table::fmt_int(copies),
               Table::fmt_int(h.h().num_nodes()),
               Table::fmt_int(static_cast<long long>(h.h().num_edges())),
               Table::fmt_int(h.h().max_degree()),
               std::to_string(bounds.lower) + ".." + std::to_string(bounds.upper),
               Table::fmt_int(witness.max_out_degree()),
               Table::fmt(mfvc, 1),
               Table::fmt((double(delta) * delta + delta) * mfvc, 1)});
  }
  s.print(std::cout);

  std::cout << "## locality: truncated-round quality on H(circ(16,16,6))\n";
  Graph base = lowerbound::circulant_bipartite(16, 16, 6);
  HConstruction h(base, 36);
  auto wg = WeightedGraph::uniform(Graph(h.h()));
  Table t({"rounds allowed", "rounds used", "set weight", "force-completed",
           "weight/dual-LB"});
  for (std::int64_t rounds : {2, 3, 4, 6, 8, 12, 16, 24, 48, 100000}) {
    auto run = lowerbound::run_truncated(wg, 2, 0.3, rounds);
    t.add_row({Table::fmt_int(rounds), Table::fmt_int(run.rounds_used),
               Table::fmt_int(run.weight),
               Table::fmt_int(static_cast<long long>(run.forced)),
               run.packing_lower_bound > 0
                   ? Table::fmt(run.weight / run.packing_lower_bound, 3)
                   : "n/a"});
  }
  t.print(std::cout);
  std::cout << "Claim check: arboricity(H) = 2 exactly; Eq. (2) chain holds; "
               "truncated quality degrades sharply below ~log2(Delta(H)) = "
            << Table::fmt(std::log2(double(h.h().max_degree())), 1)
            << " rounds.\n";
  return 0;
}
