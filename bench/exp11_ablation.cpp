// E11 — ablations of simulator/algorithm design choices called out in
// DESIGN.md:
//   (a) message quantization (32-bit fixed-point codec) vs exact reals:
//       does the information limit cost solution quality?
//   (b) completion mode (Thm 1.1 min-weight-neighbor vs Thm 3.1 self):
//       how much does weight-aware completion save on weighted inputs?
//   (c) lambda (the partial/completion split): quality as the split moves.
#include "bench_util.hpp"
#include "core/deterministic_mds.hpp"
#include "core/solvers.hpp"
#include "protocol/runner.hpp"

using namespace arbods;

int main() {
  std::cout << "# E11 — ablations\n\n";
  Rng rng(1111);
  Graph g0 = gen::k_tree_union(4096, 3, rng);
  auto w = gen::power_law_weights(4096, 1.3, 1000, rng);
  WeightedGraph wg(std::move(g0), std::move(w));
  const NodeId alpha = 3;
  const double eps = 0.2;

  std::cout << "## (a) message quantization\n";
  Table a({"codec", "weight", "certified ratio", "max msg bits"});
  for (bool quantize : {true, false}) {
    CongestConfig cfg;
    cfg.quantize_reals = quantize;
    MdsResult res = solve_mds_deterministic(wg, alpha, eps, cfg);
    res.validate(wg, quantize ? 1e-5 : 1e-9);
    a.add_row({quantize ? "32-bit fixed-point (CONGEST)" : "exact double",
               Table::fmt_int(res.weight),
               Table::fmt(res.certified_ratio(), 4),
               Table::fmt_int(res.stats.max_message_bits)});
  }
  a.print(std::cout);

  std::cout << "## (b) completion mode on weighted input\n";
  Table b({"completion", "weight", "certified ratio", "rounds"});
  Network reused(wg);  // one Network serves every ablation cell below
  for (auto mode : {CompletionMode::kMinWeightNeighbor, CompletionMode::kSelf}) {
    DeterministicMdsParams p;
    p.eps = eps;
    p.alpha = alpha;
    p.completion = mode;
    MdsResult res = run_deterministic_mds(reused, p);
    res.validate(wg, 1e-5);
    b.add_row({mode == CompletionMode::kSelf ? "self (Thm 3.1)"
                                             : "min-weight neighbor (Thm 1.1)",
               Table::fmt_int(res.weight),
               Table::fmt(res.certified_ratio(), 3),
               Table::fmt_int(res.stats.rounds)});
  }
  b.print(std::cout);

  std::cout << "## (c) lambda split (Thm 1.1 default = "
            << Table::fmt(theorem11_lambda(alpha, eps), 4) << ")\n";
  Table c({"lambda", "partial w(S)", "total weight", "certified ratio",
           "rounds"});
  const double limit = 1.0 / ((alpha + 1.0) * (1.0 + eps));
  for (double frac : {0.2, 0.5, 0.8, 0.95}) {
    // Spelled out as an explicit phase list (instead of
    // run_deterministic_mds) because the ablation wants the partial
    // phase's own set alongside the final result.
    PartialDominatingSet partial({eps, frac * limit, alpha});
    CompletionPhase completion(CompletionMode::kMinWeightNeighbor);
    protocol::run_protocol(reused, {&partial, &completion});
    MdsResult res = completion.result(reused);
    res.validate(wg, 1e-5);
    Weight ws = 0;
    for (NodeId v = 0; v < wg.num_nodes(); ++v)
      if (partial.in_partial_set()[v]) ws += wg.weight(v);
    c.add_row({Table::fmt(frac * limit, 4), Table::fmt_int(ws),
               Table::fmt_int(res.weight),
               Table::fmt(res.certified_ratio(), 3),
               Table::fmt_int(res.stats.rounds)});
  }
  c.print(std::cout);
  std::cout << "Take-aways: quantization costs < 0.1% quality while "
               "bounding messages at 36 bits; weight-aware completion "
               "dominates self-completion on weighted inputs; the Thm 1.1 "
               "lambda is near the sweet spot of the split.\n";
  return 0;
}
