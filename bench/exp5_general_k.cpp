// E5 — Theorem 1.3 on general graphs: k sweep. Approximation
// O(k * Delta^{2/k}) in O(k^2) rounds; the paper's improvement over
// KMW06 is the dropped log(Delta) factor, quoted in the bound column.
#include <cmath>

#include "bench_util.hpp"
#include "core/solvers.hpp"

using namespace arbods;

int main() {
  std::cout << "# E5 — Theorem 1.3 general graphs (k sweep)\n\n";
  struct Inst {
    std::string name;
    WeightedGraph wg;
  };
  Rng rng(5151);
  std::vector<Inst> insts;
  insts.push_back({"ER(2048, p=8/n)",
                   WeightedGraph::uniform(gen::erdos_renyi_gnp(
                       2048, 8.0 / 2048.0, rng))});
  {
    Graph g = gen::erdos_renyi_gnp(1024, 0.03, rng);
    auto w = gen::uniform_weights(1024, 64, rng);
    insts.push_back({"ER(1024, p=0.03) weighted",
                     WeightedGraph(std::move(g), std::move(w))});
  }
  insts.push_back({"clique_tree(60, K12)",
                   WeightedGraph::uniform(gen::clique_tree(60, 12, rng))});

  for (auto& inst : insts) {
    std::cout << "## " << inst.name
              << " (Delta = " << inst.wg.graph().max_degree() << ")\n";
    const double delta = inst.wg.graph().max_degree();
    Table t({"k", "weight (avg 3 seeds)", "certified ratio",
             "paper bound kD^{2/k}(1+o(1))", "KMW06 bound (x log D)",
             "rounds"});
    for (int k : {1, 2, 3, 4, 6}) {
      double weight_sum = 0, ratio_sum = 0, rounds_sum = 0;
      for (int s = 0; s < 3; ++s) {
        CongestConfig cfg;
        cfg.seed = 6000 + 13 * s;
        MdsResult res = solve_mds_general(inst.wg, k, cfg);
        res.validate(inst.wg, 1e-5);
        weight_sum += static_cast<double>(res.weight);
        ratio_sum += res.certified_ratio();
        rounds_sum += static_cast<double>(res.stats.rounds);
      }
      const double gk = std::pow(delta, 1.0 / k);
      const double bound = gk * (gk + 1.0) * (k + 1);
      t.add_row({Table::fmt_int(k), Table::fmt(weight_sum / 3, 0),
                 Table::fmt(ratio_sum / 3, 3), Table::fmt(bound, 1),
                 Table::fmt(bound * std::log2(delta + 1), 1),
                 Table::fmt(rounds_sum / 3, 0)});
    }
    t.print(std::cout);
  }
  std::cout << "Claim check: measured ratios sit below the paper bound, "
               "which is itself log(Delta) below the KMW06 column.\n";
  return 0;
}
