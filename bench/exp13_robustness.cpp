// Experiment 13: robustness envelopes — solver quality and round cost
// under escalating adversarial fault levels.
//
// A thin shell over the scenario batch runner's fault axis
// (src/harness/scenario.hpp + src/fault/): the selected corpus x solvers
// x named fault levels expand into one ScenarioSpec whose rows carry the
// four fault counters (dropped / duplicated / delayed / killed), and the
// sweep doubles as a determinism audit — a faulty run promises
// bit-identical results across every thread width and shard count, which
// the runner re-checks per cell.
//
//   exp13_robustness [--solvers name1,...] [--levels none,light,...]
//                    [--threads W1,...] [--shards K1,...]
//                    [--seeds S1,...] [--repeats N]
//                    [--round-limit R] [--smoke]
//
// stdout: one JSON object per row (schema v4 — seed, fault label, fault
// counters, failed flag), ready for CI artifact upload and the
// tools/compare_bench.py gate. stderr: the per-(solver, level) envelope
// table — average weight inflation and extra rounds versus that solver's
// clean ("none") cells, the summed fault counters, and the number of
// cells whose solver died under the fault load (tolerate_failures keeps
// the sweep alive and marks them failed=true instead of aborting).
// Exits 1 on a determinism violation.
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fault/fault_spec.hpp"
#include "harness/corpus.hpp"
#include "harness/scenario.hpp"

using namespace arbods;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

std::vector<int> split_ints(const std::string& csv) {
  std::vector<int> out;
  for (const std::string& s : split_list(csv)) out.push_back(std::stoi(s));
  return out;
}

std::vector<std::uint64_t> split_u64s(const std::string& csv) {
  std::vector<std::uint64_t> out;
  for (const std::string& s : split_list(csv)) out.push_back(std::stoull(s));
  return out;
}

/// The named escalation ladder. Levels are cumulative in spirit (heavier
/// levels raise every dial), so the envelope reads as one curve per
/// solver.
harness::ScenarioFault named_level(const std::string& name) {
  harness::ScenarioFault level;
  level.label = name;
  fault::FaultSpec& s = level.spec;
  if (name == "none") return level;
  if (name == "light") {
    s.drop_prob = 0.01;
    s.duplicate_prob = 0.01;
    s.delay_prob = 0.05;
    s.max_delay_rounds = 2;
    return level;
  }
  if (name == "moderate") {
    s.drop_prob = 0.05;
    s.duplicate_prob = 0.05;
    s.delay_prob = 0.2;
    s.max_delay_rounds = 3;
    s.reorder_prob = 0.1;
    return level;
  }
  if (name == "heavy") {
    s.drop_prob = 0.15;
    s.duplicate_prob = 0.1;
    s.delay_prob = 0.3;
    s.max_delay_rounds = 4;
    s.reorder_prob = 0.2;
    s.kill_prob = 0.05;
    s.kill_round = 3;
    return level;
  }
  std::cerr << "unknown fault level '" << name
            << "' (known: none, light, moderate, heavy)\n";
  std::exit(2);
}

[[noreturn]] void usage() {
  std::cerr << "usage: exp13_robustness [--solvers name1,name2,...]\n"
               "                        [--levels none,light,moderate,heavy]\n"
               "                        [--threads W1,W2,...] [--shards "
               "K1,K2,...]\n"
               "                        [--seeds S1,S2,...] [--repeats N]\n"
               "                        [--round-limit R] [--smoke] "
               "[--trace-out PATH]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> solvers = {"det", "randomized", "greedy-threshold"};
  std::vector<std::string> level_names = {"none", "light", "moderate",
                                          "heavy"};
  std::vector<int> threads = {1, 4};
  std::vector<int> shards = {1, 2};
  std::vector<std::uint64_t> seeds = {12345};
  int repeats = 1;
  std::int64_t round_limit = 2000;
  bool smoke = false;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--solvers")) solvers = split_list(need("--solvers"));
    else if (!std::strcmp(argv[i], "--levels")) level_names = split_list(need("--levels"));
    else if (!std::strcmp(argv[i], "--threads")) threads = split_ints(need("--threads"));
    else if (!std::strcmp(argv[i], "--shards")) shards = split_ints(need("--shards"));
    else if (!std::strcmp(argv[i], "--seeds")) seeds = split_u64s(need("--seeds"));
    else if (!std::strcmp(argv[i], "--repeats")) repeats = std::stoi(need("--repeats"));
    else if (!std::strcmp(argv[i], "--round-limit")) round_limit = std::stoll(need("--round-limit"));
    else if (!std::strcmp(argv[i], "--smoke")) smoke = true;
    else if (!std::strcmp(argv[i], "--trace-out")) trace_out = need("--trace-out");
    else usage();
  }
  if (repeats < 1) repeats = 1;
  if (smoke) {
    // CI preset: small corpus, two solvers, the full level ladder, one
    // seed — enough to exercise every counter and both decorated paths
    // (plain and sharded inner engines) in seconds.
    solvers = {"det", "greedy-threshold"};
    threads = {1, 4};
    shards = {1, 2};
  }

  harness::ScenarioSpec spec;
  for (const std::string& name : solvers)
    spec.solvers.push_back({name, std::nullopt, name});
  spec.fault_levels.clear();
  for (const std::string& name : level_names)
    spec.fault_levels.push_back(named_level(name));
  spec.thread_widths = threads;
  spec.shard_counts = shards;
  spec.seeds = seeds;
  spec.repeats = repeats;
  // A starved solver must terminate (via PhaseStats::hit_round_limit)
  // rather than spin, and may die on a violated invariant — both are
  // data points of the envelope, not sweep aborts.
  spec.base_config.round_limit = round_limit;
  spec.tolerate_failures = true;
  spec.keep_certificates = false;
  spec.trace_out = trace_out;

  std::vector<harness::CorpusInstance> corpus;
  if (smoke) {
    auto small = harness::small_corpus(seeds.front());
    for (std::size_t i = 0; i < small.size() && corpus.size() < 4; i += 3)
      corpus.push_back(std::move(small[i]));
  } else {
    corpus = harness::standard_corpus(/*weighted=*/true, seeds.front());
  }

  const auto rows = harness::run_scenario(spec, corpus);
  harness::write_scenario_json(std::cout, rows);

  // Clean-twin lookup: the "none" weight/rounds of the same
  // (instance, solver, seed, threads, shards) cell.
  std::map<std::string, std::pair<double, double>> clean;
  auto cell_key = [](const harness::ScenarioRow& row) {
    std::ostringstream key;
    key << row.instance << '\x1f' << row.solver << '\x1f' << row.seed
        << '\x1f' << row.threads << '\x1f' << row.shards;
    return key.str();
  };
  for (const auto& row : rows)
    if (row.fault == "none" && !row.failed)
      clean[cell_key(row)] = {row.result.weight,
                              static_cast<double>(row.result.stats.rounds)};

  // One envelope row per (solver, fault level), aggregated over
  // instances, seeds, widths, and shard counts.
  struct Envelope {
    double weight_ratio_sum = 0.0;
    double extra_rounds_sum = 0.0;
    int compared = 0;
    std::int64_t dropped = 0, duplicated = 0, delayed = 0, killed = 0;
    int cells = 0, failed = 0, limited = 0;
  };
  std::map<std::pair<std::string, std::string>, Envelope> envelopes;
  for (const auto& row : rows) {
    Envelope& env = envelopes[{row.solver, row.fault}];
    ++env.cells;
    if (row.failed) {
      ++env.failed;
      continue;
    }
    env.dropped += row.result.stats.dropped;
    env.duplicated += row.result.stats.duplicated;
    env.delayed += row.result.stats.delayed;
    env.killed += row.result.stats.killed;
    if (row.result.stats.hit_round_limit) ++env.limited;
    const auto it = clean.find(cell_key(row));
    if (it != clean.end() && it->second.first > 0.0) {
      env.weight_ratio_sum += row.result.weight / it->second.first;
      env.extra_rounds_sum +=
          static_cast<double>(row.result.stats.rounds) - it->second.second;
      ++env.compared;
    }
  }

  Table table({"solver", "fault", "cells", "weight_vs_clean", "extra_rounds",
               "dropped", "duplicated", "delayed", "killed", "limited",
               "failed"});
  for (const auto& [key, env] : envelopes) {
    const double ratio =
        env.compared > 0 ? env.weight_ratio_sum / env.compared : 0.0;
    const double extra =
        env.compared > 0 ? env.extra_rounds_sum / env.compared : 0.0;
    table.add_row({key.first, key.second, Table::fmt_int(env.cells), Table::fmt(ratio, 4),
                   Table::fmt(extra, 1), Table::fmt_int(env.dropped),
                   Table::fmt_int(env.duplicated), Table::fmt_int(env.delayed),
                   Table::fmt_int(env.killed), Table::fmt_int(env.limited),
                   Table::fmt_int(env.failed)});
  }
  std::cerr << "\nExperiment 13: robustness envelopes (weight_vs_clean = "
               "avg faulty/clean weight of the same cell)\n";
  table.print(std::cerr);

  for (const auto& row : rows) {
    if (row.identical) continue;
    std::cerr << "DETERMINISM VIOLATION: " << row.instance << " / "
              << row.solver << " / " << row.fault
              << " at threads=" << row.threads << " shards=" << row.shards
              << "\n";
    return 1;
  }
  return 0;
}
