// E4 — Theorem 1.2: the t trade-off. Ratio approaches alpha as t grows;
// rounds grow linearly in t. Compared against Theorem 1.1 on the same
// instance (the paper's point: ~alpha instead of ~2*alpha).
//
// Runs as one scenario: the deterministic solver plus the randomized
// solver at t in {1,2,4,8}, x 3 seeds, all on one pooled Network per
// seed (the scenario runner resets it between cells).
#include "bench_util.hpp"
#include "core/solvers.hpp"
#include "harness/scenario.hpp"

using namespace arbods;

int main() {
  std::cout << "# E4 — Theorem 1.2 randomized (alpha + O(alpha/t))\n\n";
  Rng rng(4242);
  const NodeId alpha = 8;
  Graph g = gen::k_tree_union(4096, alpha, rng);
  auto w = gen::uniform_weights(4096, 100, rng);
  harness::CorpusInstance inst{"forest8_n4096", WeightedGraph(std::move(g), std::move(w)),
                               alpha, /*forest=*/false, /*unit_weights=*/false,
                               "forest8"};

  MdsResult det = solve_mds_deterministic(inst.wg, alpha, 0.1);
  det.validate(inst.wg, 1e-5);

  harness::ScenarioSpec spec;
  for (const std::int64_t tt : {1, 2, 4, 8}) {
    harness::SolverParams params;
    params.alpha = alpha;
    params.t = tt;
    spec.solvers.push_back(
        {"randomized", params, "randomized_t" + std::to_string(tt)});
  }
  spec.seeds = {5000, 5097, 5194};  // 5000 + 97 * s
  spec.validate = true;
  const std::vector<const harness::CorpusInstance*> instances = {&inst};
  const auto rows = harness::run_scenario(spec, instances);

  Table t({"algorithm", "t", "weight (avg of 3 seeds)", "certified ratio",
           "rounds", "fallback"});
  t.add_row({"Thm 1.1 det (eps=0.1)", "-", Table::fmt_int(det.weight),
             Table::fmt(det.certified_ratio(), 3),
             Table::fmt_int(det.stats.rounds), "-"});
  int idx = 0;
  for (const std::int64_t tt : {1, 2, 4, 8}) {
    double weight_sum = 0, ratio_sum = 0, rounds_sum = 0;
    bool any_fallback = false;
    const int kSeeds = static_cast<int>(spec.seeds.size());
    for (int s = 0; s < kSeeds; ++s) {
      const MdsResult& res = rows[static_cast<std::size_t>(idx++)].result;
      weight_sum += static_cast<double>(res.weight);
      ratio_sum += res.certified_ratio();
      rounds_sum += static_cast<double>(res.stats.rounds);
      any_fallback |= res.used_fallback;
    }
    t.add_row({"Thm 1.2 rand", Table::fmt_int(tt),
               Table::fmt(weight_sum / kSeeds, 0),
               Table::fmt(ratio_sum / kSeeds, 3),
               Table::fmt(rounds_sum / kSeeds, 0),
               any_fallback ? "YES (bug!)" : "no"});
  }
  t.print(std::cout);
  std::cout << "Claim check: randomized weight < deterministic weight for "
               "large alpha; rounds grow with t; fallback never fires.\n";
  return 0;
}
