// E4 — Theorem 1.2: the t trade-off. Ratio approaches alpha as t grows;
// rounds grow linearly in t. Compared against Theorem 1.1 on the same
// instance (the paper's point: ~alpha instead of ~2*alpha).
#include "bench_util.hpp"
#include "core/solvers.hpp"

using namespace arbods;

int main() {
  std::cout << "# E4 — Theorem 1.2 randomized (alpha + O(alpha/t))\n\n";
  Rng rng(4242);
  const NodeId alpha = 8;
  Graph g = gen::k_tree_union(4096, alpha, rng);
  auto w = gen::uniform_weights(4096, 100, rng);
  WeightedGraph wg(std::move(g), std::move(w));

  MdsResult det = solve_mds_deterministic(wg, alpha, 0.1);
  det.validate(wg, 1e-5);

  Table t({"algorithm", "t", "weight (avg of 3 seeds)", "certified ratio",
           "rounds", "fallback"});
  t.add_row({"Thm 1.1 det (eps=0.1)", "-", Table::fmt_int(det.weight),
             Table::fmt(det.certified_ratio(), 3),
             Table::fmt_int(det.stats.rounds), "-"});
  for (std::int64_t tt : {1, 2, 4, 8}) {
    double weight_sum = 0, ratio_sum = 0, rounds_sum = 0;
    bool any_fallback = false;
    const int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      CongestConfig cfg;
      cfg.seed = 5000 + 97 * s;
      MdsResult res = solve_mds_randomized(wg, alpha, tt, cfg);
      res.validate(wg, 1e-5);
      weight_sum += static_cast<double>(res.weight);
      ratio_sum += res.certified_ratio();
      rounds_sum += static_cast<double>(res.stats.rounds);
      any_fallback |= res.used_fallback;
    }
    t.add_row({"Thm 1.2 rand", Table::fmt_int(tt),
               Table::fmt(weight_sum / kSeeds, 0),
               Table::fmt(ratio_sum / kSeeds, 3),
               Table::fmt(rounds_sum / kSeeds, 0),
               any_fallback ? "YES (bug!)" : "no"});
  }
  t.print(std::cout);
  std::cout << "Claim check: randomized weight < deterministic weight for "
               "large alpha; rounds grow with t; fallback never fires.\n";
  return 0;
}
