// E7 — Observation A.1: single-round 3-approximation on forests, measured
// against the exact tree DP.
#include "bench_util.hpp"
#include "baselines/tree_dp.hpp"
#include "core/solvers.hpp"

using namespace arbods;

int main() {
  std::cout << "# E7 — trees (Observation A.1): 1 round, ratio <= 3\n\n";
  Rng rng(717);
  struct Inst {
    std::string name;
    Graph g;
  };
  std::vector<Inst> insts;
  insts.push_back({"path_n4096", gen::path(4096)});
  insts.push_back({"random_tree_n4096", gen::random_tree_prufer(4096, rng)});
  insts.push_back({"recursive_tree_n4096", gen::random_recursive_tree(4096, rng)});
  insts.push_back({"caterpillar_512x7", gen::caterpillar(512, 7)});
  insts.push_back({"star_n4096", gen::star(4096)});
  insts.push_back({"spider_64x64", gen::spider(64, 64)});
  insts.push_back({"binary_tree_n4095", gen::binary_tree(4095)});
  insts.push_back({"forest_n4096_k16", gen::random_forest(4096, 16, rng)});

  Table t({"instance", "alg weight", "OPT (tree DP)", "ratio", "rounds"});
  for (auto& inst : insts) {
    auto wg = WeightedGraph::uniform(std::move(inst.g));
    MdsResult res = solve_mds_tree(wg);
    res.validate(wg);
    auto opt = baselines::tree_dominating_set(wg);
    t.add_row({inst.name, Table::fmt_int(res.weight),
               Table::fmt_int(opt.weight),
               bench::fmt_ratio(static_cast<double>(res.weight),
                                static_cast<double>(opt.weight)),
               Table::fmt_int(res.stats.rounds)});
  }
  t.print(std::cout);
  std::cout << "Claim check: every ratio <= 3.0 and rounds = 1.\n";
  return 0;
}
