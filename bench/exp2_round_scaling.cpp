// E2 — round complexity scaling (the "figure" of Theorem 1.1):
//   (a) rounds vs Delta at fixed alpha, eps — should grow as log(Delta),
//   (b) rounds vs 1/eps at fixed graph — should grow linearly.
#include <cmath>

#include "bench_util.hpp"
#include "core/solvers.hpp"

using namespace arbods;

int main() {
  std::cout << "# E2 — rounds = O(log(Delta/alpha)/eps)\n\n";

  std::cout << "## (a) Delta sweep on stars (alpha = 1, eps = 0.5)\n";
  Table a({"n = Delta+1", "log2(Delta)", "iterations r", "rounds",
           "rounds/log2(Delta)"});
  for (int k = 4; k <= 16; k += 2) {
    const NodeId n = NodeId{1} << k;
    auto wg = WeightedGraph::uniform(gen::star(n));
    MdsResult res = solve_mds_deterministic(wg, 1, 0.5);
    res.validate(wg, 1e-5);
    const double lg = std::log2(static_cast<double>(n - 1));
    a.add_row({Table::fmt_int(n), Table::fmt(lg, 1),
               Table::fmt_int(res.iterations), Table::fmt_int(res.stats.rounds),
               Table::fmt(res.stats.rounds / lg, 2)});
  }
  a.print(std::cout);

  std::cout << "## (b) eps sweep on BA(4096, m=3) (alpha = 3)\n";
  Table b({"eps", "1/eps", "iterations r", "rounds", "rounds*eps",
           "certified ratio", "bound"});
  Rng rng(777);
  Graph g = gen::barabasi_albert(4096, 3, rng);
  auto wg = WeightedGraph::uniform(std::move(g));
  for (double eps : {0.8, 0.4, 0.2, 0.1, 0.05, 0.025}) {
    MdsResult res = solve_mds_deterministic(wg, 3, eps);
    res.validate(wg, 1e-5);
    b.add_row({Table::fmt(eps, 3), Table::fmt(1.0 / eps, 1),
               Table::fmt_int(res.iterations), Table::fmt_int(res.stats.rounds),
               Table::fmt(res.stats.rounds * eps, 2),
               Table::fmt(res.certified_ratio(), 3),
               Table::fmt(7.0 * (1 + eps), 2)});
  }
  b.print(std::cout);
  return 0;
}
