// E3 — Lemma 4.1 partial dominating set: properties (a) and (b) and the
// dual feasibility invariant (Obs 4.2/4.3), swept over lambda.
#include "bench_util.hpp"
#include "core/partial_ds.hpp"
#include "graph/verify.hpp"

using namespace arbods;

int main() {
  std::cout << "# E3 — Lemma 4.1 partial dominating set (lambda sweep)\n\n";
  Rng rng(999);
  Graph g = gen::k_tree_union(4096, 3, rng);
  auto w = gen::uniform_weights(4096, 100, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  const NodeId alpha = 3;
  const double eps = 0.3;

  Table t({"lambda", "iterations r", "w(S)", "sum x (dominated)",
           "prop (a) factor", "measured w(S)/sum", "undominated",
           "min undom x/(lambda*tau)", "packing feasible"});
  for (double frac : {0.05, 0.25, 0.5, 0.9}) {
    const double limit = 1.0 / ((alpha + 1.0) * (1.0 + eps));
    const double lambda = frac * limit;
    Network net(wg);
    PartialDominatingSet algo({eps, lambda, alpha});
    net.run(algo, 1000000);

    Weight ws = 0;
    double dominated_mass = 0;
    NodeId undominated = 0;
    double min_margin = 1e300;
    const auto taus = wg.all_tau();
    for (NodeId v = 0; v < wg.num_nodes(); ++v) {
      if (algo.in_partial_set()[v]) ws += wg.weight(v);
      if (algo.dominated()[v]) {
        dominated_mass += algo.packing()[v];
      } else {
        ++undominated;
        min_margin = std::min(
            min_margin, algo.packing()[v] / (lambda * static_cast<double>(taus[v])));
      }
    }
    const double factor =
        alpha / (1.0 / (1.0 + eps) - lambda * (alpha + 1.0));
    t.add_row({Table::fmt(lambda, 5), Table::fmt_int(algo.iterations()),
               Table::fmt_int(ws), Table::fmt(dominated_mass, 1),
               Table::fmt(factor, 2),
               dominated_mass > 0
                   ? Table::fmt(static_cast<double>(ws) / dominated_mass, 2)
                   : "0",
               Table::fmt_int(undominated),
               undominated > 0 ? Table::fmt(min_margin, 3) : "n/a",
               is_feasible_packing(wg, algo.packing(), 1e-5) ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "Claim check: measured w(S)/sum <= prop-(a) factor; "
               "min undominated margin >= 1; feasibility always 'yes'.\n";
  return 0;
}
