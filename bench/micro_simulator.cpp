// M1 — google-benchmark micro-benchmarks: wire-format encode/decode,
// simulator round throughput and end-to-end solver cost per node.
#include <benchmark/benchmark.h>

#include <vector>

#include "congest/message.hpp"
#include "core/solvers.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "shard/sharded_network.hpp"

namespace arbods {
namespace {

// ------------------------------------------------------------- wire format

// Encode throughput for the typical solver record (tag + id + real).
void BM_WireEncode(benchmark::State& state) {
  MessageSizeModel model;
  model.id_bits = 17;
  Message m = Message::tagged(3);
  m.add_id(54321).add_real(0.37);
  std::vector<std::uint64_t> buf(wire_words_bound(m));
  std::int64_t bits_total = 0;
  for (auto _ : state) {
    int bits = 0;
    const std::size_t words = wire_encode(m, 99, model, true, buf.data(), &bits);
    benchmark::DoNotOptimize(words);
    bits_total += bits;
  }
  benchmark::DoNotOptimize(bits_total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireEncode);

// Cursor walk over a lane of packed records: tag dispatch plus one typed
// field read per message, the receiver-side hot loop.
void BM_WireDecodeCursor(benchmark::State& state) {
  MessageSizeModel model;
  model.id_bits = 17;
  constexpr int kMessages = 64;
  Message m = Message::tagged(3);
  m.add_id(54321).add_real(0.37);
  const std::size_t words = wire_words(m, model, true);
  std::vector<std::uint64_t> lane(words * kMessages);
  for (int i = 0; i < kMessages; ++i)
    wire_encode(m, static_cast<NodeId>(i), model, true,
                lane.data() + words * static_cast<std::size_t>(i));
  for (auto _ : state) {
    double sum = 0;
    std::size_t off = 0;
    while (off < lane.size()) {
      const MessageView view(lane.data() + off, &model, true);
      if (view.tag() == 3) sum += view.real_at(2);
      off += view.words();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_WireDecodeCursor);

void BM_NetworkBroadcastRound(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  Graph g = gen::k_tree_union(n, 3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));

  class Flood final : public DistributedAlgorithm {
   public:
    void initialize(Network& net) override {
      for (NodeId v = 0; v < net.num_nodes(); ++v)
        net.broadcast(v, Message::tagged(0).add_real(0.5));
    }
    void process_round(Network& net) override {
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        double sum = 0;
        for (const MessageView m : net.inbox(v)) sum += m.real_at(1);
        benchmark::DoNotOptimize(sum);
        net.broadcast(v, Message::tagged(0).add_real(0.5));
      }
    }
    bool finished(const Network&) const override { return false; }
  };

  for (auto _ : state) {
    Network net(wg);
    Flood algo;
    net.run(algo, 10);
  }
  state.SetItemsProcessed(state.iterations() * 10 *
                          static_cast<std::int64_t>(wg.graph().num_edges()) * 2);
}
BENCHMARK(BM_NetworkBroadcastRound)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

// Same flood through the active-set scheduler (every node re-arms), which
// is the steady-state shape of the ported solvers: measures the packed
// wire format plus worklist rebuild per delivered message.
void BM_NetworkFloodActiveSet(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(6);
  Graph g = gen::k_tree_union(n, 3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));

  class ActiveFlood final : public DistributedAlgorithm {
   public:
    void initialize(Network& net) override {
      net.for_nodes([&](NodeId v) {
        net.broadcast(v, Message::tagged(0).add_real(0.5));
        net.arm(v);
      });
    }
    void process_round(Network& net) override {
      net.for_active_nodes([&](NodeId v) {
        double sum = 0;
        for (const MessageView m : net.inbox(v)) sum += m.real_at(1);
        benchmark::DoNotOptimize(sum);
        net.broadcast(v, Message::tagged(0).add_real(0.5));
        net.arm(v);
      });
    }
    bool finished(const Network&) const override { return false; }
  };

  for (auto _ : state) {
    Network net(wg);
    ActiveFlood algo;
    net.run(algo, 10);
  }
  state.SetItemsProcessed(state.iterations() * 10 *
                          static_cast<std::int64_t>(wg.graph().num_edges()) * 2);
}
BENCHMARK(BM_NetworkFloodActiveSet)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

// Flood rounds through the sharded facade: the flip-time bridge merge
// (one task per destination shard on the worker pool) is the piece under
// measurement — shards = 1 is the plain-Network baseline, and the
// (shards, threads) grid shows how much of the old serial-merge overhead
// the parallel flip recovers.
void BM_BridgeMerge(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  Rng rng(8);
  Graph g = gen::k_tree_union(n, 3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  CongestConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;

  class Flood final : public DistributedAlgorithm {
   public:
    void initialize(Network& net) override {
      net.for_nodes([&](NodeId v) {
        net.broadcast(v, Message::tagged(0).add_real(0.5));
      });
    }
    void process_round(Network& net) override {
      net.for_nodes([&](NodeId v) {
        double sum = 0;
        for (const MessageView m : net.inbox(v)) sum += m.real_at(1);
        benchmark::DoNotOptimize(sum);
        net.broadcast(v, Message::tagged(0).add_real(0.5));
      });
    }
    bool finished(const Network&) const override { return false; }
  };

  auto net = shard::make_network(wg, cfg);
  Flood algo;
  net->run(algo, 2);  // warm-up: arenas, relay segments, spill growth
  for (auto _ : state) {
    net->run(algo, 10);
  }
  state.SetItemsProcessed(state.iterations() * 10 *
                          static_cast<std::int64_t>(wg.graph().num_edges()) * 2);
}
BENCHMARK(BM_BridgeMerge)
    ->Args({1 << 15, 1, 8})
    ->Args({1 << 15, 4, 8})
    ->Args({1 << 15, 8, 8});

// The phase-boundary auto-replan step in isolation: profile-driven
// boundary refinement (measured_plan) plus the member rebuild
// (adopt_plan) on a flood-warmed traffic profile. This is the cost
// ProtocolRunner pays between phases when CongestConfig::auto_replan
// adopts a plan, amortized against whole phases of rounds — the grid
// shows it stays small relative to BM_BridgeMerge's per-round work.
void BM_FlipReplan(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  Rng rng(9);
  Graph g = gen::k_tree_union(n, 3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  CongestConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;

  class Flood final : public DistributedAlgorithm {
   public:
    void initialize(Network& net) override {
      net.for_nodes([&](NodeId v) {
        net.broadcast(v, Message::tagged(0).add_real(0.5));
      });
    }
    void process_round(Network& net) override {
      net.for_nodes([&](NodeId v) {
        double sum = 0;
        for (const MessageView m : net.inbox(v)) sum += m.real_at(1);
        benchmark::DoNotOptimize(sum);
        net.broadcast(v, Message::tagged(0).add_real(0.5));
      });
    }
    bool finished(const Network&) const override { return false; }
  };

  shard::ShardedNetwork net(wg, cfg);
  net.enable_traffic_profile();
  Flood algo;
  net.run(algo, 4);  // warm-up + populate the per-arc traffic profile
  for (auto _ : state) {
    shard::ShardPlan refined = net.measured_plan();
    benchmark::DoNotOptimize(refined.node_begin.data());
    net.adopt_plan(std::move(refined));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FlipReplan)
    ->Args({1 << 15, 4, 8})
    ->Args({1 << 15, 8, 8});

void BM_SolveDeterministic(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  Graph g = gen::k_tree_union(n, 3, rng);
  auto w = gen::uniform_weights(n, 100, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  for (auto _ : state) {
    auto res = solve_mds_deterministic(wg, 3, 0.3);
    benchmark::DoNotOptimize(res.weight);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolveDeterministic)->Arg(1 << 10)->Arg(1 << 13);

void BM_SolveRandomized(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  Graph g = gen::k_tree_union(n, 4, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    CongestConfig cfg;
    cfg.seed = ++seed;
    auto res = solve_mds_randomized(wg, 4, 2, cfg);
    benchmark::DoNotOptimize(res.weight);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolveRandomized)->Arg(1 << 10)->Arg(1 << 12);

void BM_GeneratorKTreeUnion(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    Graph g = gen::k_tree_union(n, 3, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GeneratorKTreeUnion)->Arg(1 << 12)->Arg(1 << 15);

void BM_GeneratorBarabasiAlbert(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    Graph g = gen::barabasi_albert(n, 3, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GeneratorBarabasiAlbert)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
}  // namespace arbods
