// M1 — google-benchmark micro-benchmarks: simulator round throughput and
// end-to-end solver cost per node.
#include <benchmark/benchmark.h>

#include "core/solvers.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"

namespace arbods {
namespace {

void BM_NetworkBroadcastRound(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  Graph g = gen::k_tree_union(n, 3, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));

  class Flood final : public DistributedAlgorithm {
   public:
    void initialize(Network& net) override {
      for (NodeId v = 0; v < net.num_nodes(); ++v)
        net.broadcast(v, Message::tagged(0).add_real(0.5));
    }
    void process_round(Network& net) override {
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        double sum = 0;
        for (const Message& m : net.inbox(v)) sum += m.real_at(1);
        benchmark::DoNotOptimize(sum);
        net.broadcast(v, Message::tagged(0).add_real(0.5));
      }
    }
    bool finished(const Network&) const override { return false; }
  };

  for (auto _ : state) {
    Network net(wg);
    Flood algo;
    net.run(algo, 10);
  }
  state.SetItemsProcessed(state.iterations() * 10 *
                          static_cast<std::int64_t>(wg.graph().num_edges()) * 2);
}
BENCHMARK(BM_NetworkBroadcastRound)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

void BM_SolveDeterministic(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  Graph g = gen::k_tree_union(n, 3, rng);
  auto w = gen::uniform_weights(n, 100, rng);
  WeightedGraph wg(std::move(g), std::move(w));
  for (auto _ : state) {
    auto res = solve_mds_deterministic(wg, 3, 0.3);
    benchmark::DoNotOptimize(res.weight);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolveDeterministic)->Arg(1 << 10)->Arg(1 << 13);

void BM_SolveRandomized(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  Graph g = gen::k_tree_union(n, 4, rng);
  WeightedGraph wg = WeightedGraph::uniform(std::move(g));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    CongestConfig cfg;
    cfg.seed = ++seed;
    auto res = solve_mds_randomized(wg, 4, 2, cfg);
    benchmark::DoNotOptimize(res.weight);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolveRandomized)->Arg(1 << 10)->Arg(1 << 12);

void BM_GeneratorKTreeUnion(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    Graph g = gen::k_tree_union(n, 3, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GeneratorKTreeUnion)->Arg(1 << 12)->Arg(1 << 15);

void BM_GeneratorBarabasiAlbert(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    Graph g = gen::barabasi_albert(n, 3, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GeneratorBarabasiAlbert)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
}  // namespace arbods
