// E10 — Remarks 4.4 and 4.5: the unknown-parameter variants keep their
// approximation while paying the stated extra rounds.
#include "bench_util.hpp"
#include "core/solvers.hpp"

using namespace arbods;

int main() {
  std::cout << "# E10 — unknown Delta (Rem 4.4) / unknown alpha (Rem 4.5)\n\n";
  Table t({"instance", "variant", "weight", "certified ratio",
           "analytic bound", "rounds"});
  Rng rng(1010);
  struct Inst {
    std::string name;
    WeightedGraph wg;
    NodeId alpha;
  };
  std::vector<Inst> insts;
  insts.push_back(
      {"tree_n2048", WeightedGraph::uniform(gen::random_tree_prufer(2048, rng)), 1});
  {
    Graph g = gen::k_tree_union(2048, 3, rng);
    auto w = gen::uniform_weights(2048, 100, rng);
    insts.push_back({"forest3_n2048_w", WeightedGraph(std::move(g), std::move(w)), 3});
  }
  insts.push_back(
      {"ba2_n2048", WeightedGraph::uniform(gen::barabasi_albert(2048, 2, rng)), 2});

  const double eps = 0.3;
  for (auto& inst : insts) {
    const double bound11 = (2.0 * inst.alpha + 1.0) * (1.0 + eps);
    {
      MdsResult res = solve_mds_deterministic(inst.wg, inst.alpha, eps);
      res.validate(inst.wg, 1e-5);
      t.add_row({inst.name, "Thm 1.1 (all known)", Table::fmt_int(res.weight),
                 Table::fmt(res.certified_ratio(), 3), Table::fmt(bound11, 2),
                 Table::fmt_int(res.stats.rounds)});
    }
    {
      MdsResult res = solve_mds_unknown_delta(inst.wg, inst.alpha, eps);
      res.validate(inst.wg, 1e-5);
      t.add_row({inst.name, "Rem 4.4 (Delta unknown)",
                 Table::fmt_int(res.weight),
                 Table::fmt(res.certified_ratio(), 3), Table::fmt(bound11, 2),
                 Table::fmt_int(res.stats.rounds)});
    }
    {
      MdsResult res = solve_mds_unknown_alpha(inst.wg, eps);
      res.validate(inst.wg, 1e-5);
      t.add_row({inst.name, "Rem 4.5 (alpha unknown, doubling BE)",
                 Table::fmt_int(res.weight),
                 Table::fmt(res.certified_ratio(), 3),
                 "(2a+1)(2+O(eps)) w/ a-hat", Table::fmt_int(res.stats.rounds)});
    }
    {
      MdsResult res = solve_mds_unknown_alpha(inst.wg, eps, {}, true, inst.alpha);
      res.validate(inst.wg, 1e-5);
      t.add_row({inst.name, "Rem 4.5 (BE given alpha)",
                 Table::fmt_int(res.weight),
                 Table::fmt(res.certified_ratio(), 3),
                 "(2a+1)(2+O(eps)) w/ a-hat", Table::fmt_int(res.stats.rounds)});
    }
  }
  t.print(std::cout);
  std::cout << "Claim check: unknown-parameter variants match Thm 1.1 "
               "quality within their bounds; rounds grow to O(log n / eps) "
               "as stated.\n";
  return 0;
}
