// Bansal–Umboh (IPL 2017) LP-rounding for unweighted MDS on bounded
// arboricity graphs, with the Dvořák (2019) parameter optimization that
// yields the (2*alpha+1)-approximation the paper cites.
//
// Rounding: given an optimal fractional dominating set y,
//   S1 = { v : y_v >= 1/(2*alpha+1) },
//   S  = S1 ∪ { v : v undominated by S1 }.
// |S| <= (2*alpha+1) * LP <= (2*alpha+1) * OPT on arboricity-alpha graphs.
//
// The LP is solved exactly with the simplex substrate, so this baseline is
// the *centralized* comparator; the paper's distributed comparator is the
// KMW06 LP-approximation pipeline whose round cost O(log^2 Delta / eps^4)
// we quote analytically in the experiment tables.
#pragma once

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods::baselines {

struct BansalUmbohResult {
  NodeSet set;
  double lp_value = 0.0;  // certified lower bound on OPT
};

/// Unweighted instance; alpha must upper-bound the arboricity for the
/// guarantee to hold (the returned set is a valid dominating set for any
/// alpha).
BansalUmbohResult bansal_umboh_dominating_set(const Graph& g, NodeId alpha);

}  // namespace arbods::baselines
