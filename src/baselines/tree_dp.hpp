// Exact weighted minimum dominating set on forests via the classic
// three-state tree DP:
//   IN        v is in the set
//   COVERED   v not in the set, dominated by a child
//   EXPOSED   v not in the set, not yet dominated (parent must join)
// Linear time; the ground truth for all arboricity-1 experiments.
#pragma once

#include "common/types.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::baselines {

struct TreeDpResult {
  NodeSet set;
  Weight weight = 0;
};

/// wg.graph() must be a forest (CheckError otherwise).
TreeDpResult tree_dominating_set(const WeightedGraph& wg);

}  // namespace arbods::baselines
