#include "baselines/greedy.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"

namespace arbods::baselines {

NodeSet greedy_dominating_set(const WeightedGraph& wg) {
  const Graph& g = wg.graph();
  const NodeId n = g.num_nodes();
  std::vector<bool> dominated(n, false);
  std::vector<NodeId> gain(n);  // # undominated nodes in N+(v)
  for (NodeId v = 0; v < n; ++v) gain[v] = g.degree(v) + 1;

  // Lazy priority queue keyed by weight/gain; stale entries are skipped by
  // re-checking the stored gain against the current one.
  struct Entry {
    double ratio;
    NodeId node;
    NodeId gain_at_push;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.ratio > b.ratio; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v)
    heap.push({static_cast<double>(wg.weight(v)) / gain[v], v, gain[v]});

  NodeSet result;
  NodeId num_dominated = 0;
  auto mark = [&](NodeId u) {
    if (dominated[u]) return;
    dominated[u] = true;
    ++num_dominated;
    // u's domination reduces the gain of every node that could cover it.
    if (gain[u] > 0) --gain[u];
    for (NodeId w : g.neighbors(u))
      if (gain[w] > 0) --gain[w];
  };

  while (num_dominated < n) {
    ARBODS_CHECK(!heap.empty());
    Entry e = heap.top();
    heap.pop();
    if (e.gain_at_push != gain[e.node]) {
      if (gain[e.node] > 0)
        heap.push({static_cast<double>(wg.weight(e.node)) / gain[e.node],
                   e.node, gain[e.node]});
      continue;
    }
    if (gain[e.node] == 0) continue;
    result.push_back(e.node);
    mark(e.node);
    for (NodeId u : g.neighbors(e.node)) mark(u);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace arbods::baselines
