#include "baselines/distributed_greedy.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace arbods::baselines {

// ---------------------------------------------------------------- threshold

void ThresholdGreedyMds::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  in_set_.assign(n, false);
  covered_.assign(n, false);
  uncovered_degree_.resize(n);
  for (NodeId v = 0; v < n; ++v) uncovered_degree_[v] = net.degree(v) + 1;
  num_uncovered_ = n;
  phase_ = 0;
  max_phase_ = 2 + ceil_log2(static_cast<std::uint64_t>(net.graph().max_degree()) + 1);
  stage_ = n == 0 ? Stage::kDone : Stage::kJoin;
}

void ThresholdGreedyMds::recount_uncovered(const Network& net) {
  // Derived from the per-node covered_ flags after each parallel section
  // instead of decremented in place, so the worker pool never contends on
  // a shared counter (and the count cannot be torn or dropped).
  num_uncovered_ = 0;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (!covered_[v]) ++num_uncovered_;
}

void ThresholdGreedyMds::process_round(Network& net) {
  switch (stage_) {
    case Stage::kJoin: {
      // Absorb "became covered" notices from the previous phase.
      net.for_nodes([&](NodeId v) {
        for (const Message& m : net.inbox(v)) {
          if (m.tag() == kTagCovered) {
            ARBODS_CHECK(uncovered_degree_[v] > 0);
            --uncovered_degree_[v];
          }
        }
      });
      const double theta =
          (static_cast<double>(net.graph().max_degree()) + 1.0) /
          std::pow(2.0, static_cast<double>(phase_));
      const bool last_call = theta <= 1.0;
      net.for_nodes([&](NodeId v) {
        if (in_set_[v] || uncovered_degree_[v] == 0) return;
        if (static_cast<double>(uncovered_degree_[v]) >= theta ||
            (last_call && uncovered_degree_[v] >= 1)) {
          in_set_[v] = true;
          bool was_uncovered = !covered_[v];
          if (was_uncovered) {
            covered_[v] = true;
            --uncovered_degree_[v];
          }
          // One message per edge per round: the join flag also tells
          // neighbors whether v just left the uncovered set.
          net.broadcast(v, Message::tagged(kTagJoin).add_flag(was_uncovered));
        }
      });
      recount_uncovered(net);
      ++phase_;
      stage_ = Stage::kCoverUpdate;
      break;
    }

    case Stage::kCoverUpdate: {
      net.for_nodes([&](NodeId v) {
        bool newly_covered = false;
        for (const Message& m : net.inbox(v)) {
          if (m.tag() != kTagJoin) continue;
          if (!covered_[v]) {
            covered_[v] = true;
            --uncovered_degree_[v];
            newly_covered = true;
          }
          if (m.flag_at(1)) {  // the joiner itself left the uncovered set
            ARBODS_CHECK(uncovered_degree_[v] > 0);
            --uncovered_degree_[v];
          }
        }
        if (newly_covered) net.broadcast(v, Message::tagged(kTagCovered));
      });
      recount_uncovered(net);
      stage_ = (num_uncovered_ == 0 || phase_ > max_phase_) ? Stage::kDone
                                                            : Stage::kJoin;
      ARBODS_CHECK_MSG(num_uncovered_ == 0 || phase_ <= max_phase_,
                       "threshold greedy did not cover everything in "
                           << max_phase_ << " phases");
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool ThresholdGreedyMds::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult ThresholdGreedyMds::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_set_[v]) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.iterations = phase_;
  res.stats = net.stats();
  return res;
}

// ----------------------------------------------------------------- election

void ElectionGreedyMds::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  in_set_.assign(n, false);
  covered_.assign(n, false);
  self_nominated_.assign(n, false);
  uncovered_degree_.assign(n, 0);
  num_uncovered_ = n;
  stage_ = n == 0 ? Stage::kDone : Stage::kUncov;
  (void)net;
}

void ElectionGreedyMds::recount_uncovered(const Network& net) {
  // Same rationale as ThresholdGreedyMds::recount_uncovered: keep the
  // termination counter out of the parallel sections.
  num_uncovered_ = 0;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (!covered_[v]) ++num_uncovered_;
}

void ElectionGreedyMds::process_round(Network& net) {
  switch (stage_) {
    case Stage::kUncov: {
      // (Later phases:) absorb joins, then uncovered nodes re-announce.
      net.for_nodes([&](NodeId v) {
        for (const Message& m : net.inbox(v)) {
          if (m.tag() == kTagJoin && !covered_[v]) covered_[v] = true;
        }
      });
      recount_uncovered(net);
      if (num_uncovered_ == 0) {
        stage_ = Stage::kDone;
        break;
      }
      net.for_nodes([&](NodeId v) {
        if (!covered_[v]) net.broadcast(v, Message::tagged(kTagUncov));
      });
      stage_ = Stage::kCount;
      break;
    }

    case Stage::kCount: {
      net.for_nodes([&](NodeId v) {
        NodeId count = covered_[v] ? 0 : 1;
        for (const Message& m : net.inbox(v))
          if (m.tag() == kTagUncov) ++count;
        uncovered_degree_[v] = count;
        net.broadcast(v, Message::tagged(kTagCount).add_level(count));
      });
      stage_ = Stage::kNominate;
      break;
    }

    case Stage::kNominate: {
      net.for_nodes([&](NodeId v) {
        self_nominated_[v] = false;
        if (covered_[v]) return;
        NodeId best = v;
        NodeId best_count = uncovered_degree_[v];
        for (const Message& m : net.inbox(v)) {
          if (m.tag() != kTagCount) continue;
          const NodeId c = static_cast<NodeId>(m.level_at(1));
          if (c > best_count || (c == best_count && m.sender() < best)) {
            best = m.sender();
            best_count = c;
          }
        }
        if (best == v)
          self_nominated_[v] = true;
        else
          net.send(v, best, Message::tagged(kTagNominate));
      });
      stage_ = Stage::kJoin;
      break;
    }

    case Stage::kJoin: {
      net.for_nodes([&](NodeId u) {
        bool nominated = self_nominated_[u];
        for (const Message& m : net.inbox(u))
          if (m.tag() == kTagNominate) nominated = true;
        if (nominated && !in_set_[u]) {
          in_set_[u] = true;
          covered_[u] = true;
          net.broadcast(u, Message::tagged(kTagJoin));
        }
      });
      recount_uncovered(net);
      stage_ = Stage::kUncov;
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool ElectionGreedyMds::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult ElectionGreedyMds::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_set_[v]) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.stats = net.stats();
  return res;
}

}  // namespace arbods::baselines
