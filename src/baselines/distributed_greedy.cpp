#include "baselines/distributed_greedy.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace arbods::baselines {

// Both baselines are event-driven and run on the simulator's active set:
// a node is visited only when a message arrives or when it re-armed
// itself. An *unresolved* node (one that may still have to join) re-arms
// every round it runs, so it stays on the worklist without receiving
// anything; once resolved it stops arming and drops off — from then on it
// is only woken by neighbors' messages. A round therefore costs
// O(unresolved + deliveries), not O(n), and the tail of a mostly-converged
// instance is processed in time proportional to the remaining frontier.
//
// The global uncovered counter is maintained through per-worker
// WorkerCounter deltas reduced after each parallel section (never a shared
// counter, never an O(n) recount), which keeps the termination check exact
// and bit-identical at every pool width.

// ---------------------------------------------------------------- threshold

void ThresholdGreedyMds::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  in_set_.assign(n, false);
  covered_.assign(n, false);
  uncovered_degree_.resize(n);
  covered_delta_.assign(static_cast<std::size_t>(net.num_workers()),
                        WorkerCounter{});
  num_uncovered_ = n;
  phase_ = 0;
  delta_plus_1_ = net.graph().max_degree() + 1;
  max_phase_ = 2 + ceil_log2(static_cast<std::uint64_t>(delta_plus_1_));
  stage_ = n == 0 ? Stage::kDone : Stage::kJoin;
  // Every node sleeps until the phase where the halving threshold first
  // reaches its current uncovered degree — not one round earlier.
  net.for_nodes([&](NodeId v) {
    uncovered_degree_[v] = net.degree(v) + 1;
    net.arm_at(v, join_round_for(uncovered_degree_[v]));
  });
}

// The kJoin round of the first phase p with theta(p) = (Delta+1)/2^p <=
// ucd, i.e. p = ceil(log2(ceil((Delta+1)/ucd))); kJoin of phase p runs at
// round 2p+1. Exact in integers, and theta(p) is exact in doubles too
// (power-of-two division), so the wake round and the float comparison in
// process_round can never disagree.
std::int64_t ThresholdGreedyMds::join_round_for(NodeId ucd) const {
  const std::uint64_t ratio =
      (static_cast<std::uint64_t>(delta_plus_1_) + ucd - 1) / ucd;
  return 2 * ceil_log2(ratio) + 1;
}

void ThresholdGreedyMds::reduce_covered() {
  for (WorkerCounter& d : covered_delta_) {
    ARBODS_CHECK(static_cast<std::int64_t>(num_uncovered_) >= d.value);
    num_uncovered_ -= static_cast<NodeId>(d.value);
    d.value = 0;
  }
}

void ThresholdGreedyMds::process_round(Network& net) {
  switch (stage_) {
    case Stage::kJoin: {
      const double theta = static_cast<double>(delta_plus_1_) /
                           std::pow(2.0, static_cast<double>(phase_));
      const bool last_call = theta <= 1.0;
      net.for_active_nodes([&](NodeId v) {
        // Absorb "became covered" notices from the previous phase.
        for (const MessageView m : net.inbox(v)) {
          if (m.tag() == kTagCovered) {
            ARBODS_CHECK(uncovered_degree_[v] > 0);
            --uncovered_degree_[v];
          }
        }
        if (in_set_[v] || uncovered_degree_[v] == 0) return;
        if (static_cast<double>(uncovered_degree_[v]) >= theta ||
            (last_call && uncovered_degree_[v] >= 1)) {
          in_set_[v] = true;
          bool was_uncovered = !covered_[v];
          if (was_uncovered) {
            covered_[v] = true;
            --uncovered_degree_[v];
            ++covered_delta_[net.worker_index()].value;
          }
          // One message per edge per round: the join flag also tells
          // neighbors whether v just left the uncovered set.
          net.broadcast(v, Message::tagged(kTagJoin).add_flag(was_uncovered));
        }
        // A still-unresolved node sleeps until the phase where the halved
        // threshold reaches its (possibly just-reduced) uncovered degree;
        // a covered-notice arriving earlier wakes it and it re-schedules.
        if (!in_set_[v] && uncovered_degree_[v] > 0)
          net.arm_at(v, join_round_for(uncovered_degree_[v]));
      });
      reduce_covered();
      ++phase_;
      stage_ = Stage::kCoverUpdate;
      break;
    }

    case Stage::kCoverUpdate: {
      net.for_active_nodes([&](NodeId v) {
        bool newly_covered = false;
        for (const MessageView m : net.inbox(v)) {
          if (m.tag() != kTagJoin) continue;
          if (!covered_[v]) {
            covered_[v] = true;
            --uncovered_degree_[v];
            ++covered_delta_[net.worker_index()].value;
            newly_covered = true;
          }
          if (m.flag_at(1)) {  // the joiner itself left the uncovered set
            ARBODS_CHECK(uncovered_degree_[v] > 0);
            --uncovered_degree_[v];
          }
        }
        if (newly_covered) net.broadcast(v, Message::tagged(kTagCovered));
        if (!in_set_[v] && uncovered_degree_[v] > 0)
          net.arm_at(v, join_round_for(uncovered_degree_[v]));
      });
      reduce_covered();
      stage_ = (num_uncovered_ == 0 || phase_ > max_phase_) ? Stage::kDone
                                                            : Stage::kJoin;
      ARBODS_CHECK_MSG(num_uncovered_ == 0 || phase_ <= max_phase_,
                       "threshold greedy did not cover everything in "
                           << max_phase_ << " phases");
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool ThresholdGreedyMds::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult ThresholdGreedyMds::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_set_[v]) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.iterations = phase_;
  res.stats = net.stats();
  return res;
}

// ----------------------------------------------------------------- election

void ElectionGreedyMds::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  in_set_.assign(n, false);
  covered_.assign(n, false);
  self_nominated_.assign(n, false);
  uncovered_degree_.assign(n, 0);
  covered_delta_.assign(static_cast<std::size_t>(net.num_workers()),
                        WorkerCounter{});
  num_uncovered_ = n;
  stage_ = n == 0 ? Stage::kDone : Stage::kUncov;
  net.for_nodes([&](NodeId v) { net.arm(v); });
}

void ElectionGreedyMds::reduce_covered() {
  for (WorkerCounter& d : covered_delta_) {
    ARBODS_CHECK(static_cast<std::int64_t>(num_uncovered_) >= d.value);
    num_uncovered_ -= static_cast<NodeId>(d.value);
    d.value = 0;
  }
}

void ElectionGreedyMds::process_round(Network& net) {
  switch (stage_) {
    case Stage::kUncov: {
      // (Later phases:) absorb joins, then still-uncovered nodes
      // re-announce and stay on the worklist.
      net.for_active_nodes([&](NodeId v) {
        for (const MessageView m : net.inbox(v)) {
          if (m.tag() == kTagJoin && !covered_[v]) {
            covered_[v] = true;
            ++covered_delta_[net.worker_index()].value;
          }
        }
        if (!covered_[v]) {
          net.broadcast(v, Message::tagged(kTagUncov));
          net.arm(v);
        }
      });
      reduce_covered();
      if (num_uncovered_ == 0) {
        stage_ = Stage::kDone;
        break;
      }
      stage_ = Stage::kCount;
      break;
    }

    case Stage::kCount: {
      // Active nodes are the closed neighborhoods of uncovered nodes —
      // exactly the nodes with a positive uncovered count. A count-0 node
      // can never win an election (every uncovered node counts at least
      // itself), so unlike the all-nodes sweep this stage replaces, such
      // nodes stay silent instead of broadcasting a useless zero.
      net.for_active_nodes([&](NodeId v) {
        NodeId count = covered_[v] ? 0 : 1;
        for (const MessageView m : net.inbox(v))
          if (m.tag() == kTagUncov) ++count;
        uncovered_degree_[v] = count;
        if (count > 0)
          net.broadcast(v, Message::tagged(kTagCount).add_level(count));
        if (!covered_[v]) net.arm(v);
      });
      stage_ = Stage::kNominate;
      break;
    }

    case Stage::kNominate: {
      net.for_active_nodes([&](NodeId v) {
        if (covered_[v]) return;
        net.arm(v);
        self_nominated_[v] = false;
        NodeId best = v;
        NodeId best_count = uncovered_degree_[v];
        for (const MessageView m : net.inbox(v)) {
          if (m.tag() != kTagCount) continue;
          const NodeId c = static_cast<NodeId>(m.level_at(1));
          if (c > best_count || (c == best_count && m.sender() < best)) {
            best = m.sender();
            best_count = c;
          }
        }
        if (best == v)
          self_nominated_[v] = true;
        else
          net.send(v, best, Message::tagged(kTagNominate));
      });
      stage_ = Stage::kJoin;
      break;
    }

    case Stage::kJoin: {
      net.for_active_nodes([&](NodeId u) {
        bool nominated = self_nominated_[u] != 0;
        self_nominated_[u] = false;
        for (const MessageView m : net.inbox(u))
          if (m.tag() == kTagNominate) nominated = true;
        if (nominated && !in_set_[u]) {
          in_set_[u] = true;
          if (!covered_[u]) {
            covered_[u] = true;
            ++covered_delta_[net.worker_index()].value;
          }
          net.broadcast(u, Message::tagged(kTagJoin));
        }
        if (!covered_[u]) net.arm(u);
      });
      reduce_covered();
      stage_ = Stage::kUncov;
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool ElectionGreedyMds::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult ElectionGreedyMds::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_set_[v]) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.stats = net.stats();
  return res;
}

}  // namespace arbods::baselines
