#include "baselines/exact.hpp"

#include <algorithm>

#include "baselines/greedy.hpp"
#include "common/check.hpp"

namespace arbods::baselines {

namespace {

struct Searcher {
  const WeightedGraph& wg;
  const Graph& g;
  std::int64_t budget;
  std::int64_t explored = 0;
  bool aborted = false;

  std::vector<int> cover_count;  // how many chosen nodes dominate v
  std::vector<bool> chosen;
  Weight current = 0;
  Weight best = 0;
  NodeSet best_set;

  explicit Searcher(const WeightedGraph& w, std::int64_t node_budget)
      : wg(w), g(w.graph()), budget(node_budget),
        cover_count(w.num_nodes(), 0), chosen(w.num_nodes(), false) {}

  void choose(NodeId v) {
    chosen[v] = true;
    current += wg.weight(v);
    ++cover_count[v];
    for (NodeId u : g.neighbors(v)) ++cover_count[u];
  }

  void unchoose(NodeId v) {
    chosen[v] = false;
    current -= wg.weight(v);
    --cover_count[v];
    for (NodeId u : g.neighbors(v)) --cover_count[u];
  }

  /// Lower bound on the additional weight needed: greedily pick pairwise
  /// 2-separated undominated nodes; their cheapest dominators are disjoint.
  Weight remaining_lower_bound() {
    Weight bound = 0;
    std::vector<bool> blocked(g.num_nodes(), false);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (cover_count[v] > 0 || blocked[v]) continue;
      // tau over the *current* instance: cheapest node able to dominate v.
      Weight tau = wg.weight(v);
      for (NodeId u : g.neighbors(v)) tau = std::min(tau, wg.weight(u));
      bound += tau;
      // Block everything within distance 2 of v so dominator sets stay
      // disjoint.
      blocked[v] = true;
      for (NodeId u : g.neighbors(v)) {
        blocked[u] = true;
        for (NodeId w2 : g.neighbors(u)) blocked[w2] = true;
      }
    }
    return bound;
  }

  void dfs() {
    if (aborted) return;
    if (++explored > budget) {
      aborted = true;
      return;
    }
    if (current + remaining_lower_bound() >= best) return;
    // First undominated node.
    NodeId pivot = kInvalidNode;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (cover_count[v] == 0) {
        pivot = v;
        break;
      }
    }
    if (pivot == kInvalidNode) {  // everything dominated: incumbent update
      best = current;
      best_set.clear();
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        if (chosen[v]) best_set.push_back(v);
      return;
    }
    // One of N+(pivot) must be chosen. Try cheapest-first for better
    // incumbents early.
    std::vector<NodeId> candidates{pivot};
    for (NodeId u : g.neighbors(pivot)) candidates.push_back(u);
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
      return wg.weight(a) != wg.weight(b) ? wg.weight(a) < wg.weight(b)
                                          : a < b;
    });
    for (NodeId c : candidates) {
      choose(c);
      dfs();
      unchoose(c);
      if (aborted) return;
    }
  }
};

}  // namespace

std::optional<ExactResult> exact_dominating_set(const WeightedGraph& wg,
                                                std::int64_t node_budget) {
  Searcher s(wg, node_budget);
  // Seed the incumbent with greedy (+1 so an equal-weight optimum is still
  // discovered and recorded by the search).
  NodeSet greedy = greedy_dominating_set(wg);
  const Weight greedy_weight = wg.total_weight(greedy);
  s.best = greedy_weight + 1;
  s.best_set = greedy;
  s.dfs();
  if (s.aborted) return std::nullopt;
  ExactResult res;
  if (s.best > greedy_weight) {
    res.set = std::move(greedy);  // nothing beat it: greedy was optimal
    res.weight = greedy_weight;
  } else {
    res.set = s.best_set;
    res.weight = s.best;
    std::sort(res.set.begin(), res.set.end());
  }
  res.nodes_explored = s.explored;
  return res;
}

}  // namespace arbods::baselines
