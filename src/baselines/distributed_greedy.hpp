// Distributed greedy baselines in the style of Lenzen & Wattenhofer
// (DISC 2010), the algorithms our paper improves on.
//
// ThresholdGreedyMds (deterministic, unweighted): phases i = 0,1,...,
// threshold theta_i = (Delta+1)/2^i; every node whose uncovered closed
// degree reaches theta_i joins. The max uncovered degree halves per phase,
// so O(log Delta) phases suffice; on arboricity-alpha graphs the weight
// added per phase is O(alpha * OPT), giving the O(alpha log Delta)
// approximation shape of LW10's deterministic algorithm.
//
// ElectionGreedyMds (deterministic, unweighted): each uncovered node
// nominates the member of its closed neighborhood with the largest
// uncovered degree (ties by id); nominated nodes join. Every uncovered
// node is adjacent to its nominee, so one 4-round phase completes the
// set — the classical "vote for your best neighbor" O(1)-round heuristic.
// No worst-case approximation guarantee; measured empirically as a
// quality/latency contrast point in the baseline table.
#pragma once

#include <vector>

#include "core/mds_result.hpp"
#include "protocol/phase.hpp"

namespace arbods::baselines {

class ThresholdGreedyMds final : public protocol::Phase {
 public:
  ThresholdGreedyMds() = default;

  std::string_view name() const override { return "greedy_threshold"; }
  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;
  MdsResult result(const Network& net) const;

  static constexpr int kTagJoin = 1;
  static constexpr int kTagCovered = 2;

 private:
  enum class Stage { kJoin, kCoverUpdate, kDone };

  void reduce_covered();
  std::int64_t join_round_for(NodeId ucd) const;

  Stage stage_ = Stage::kJoin;
  std::int64_t phase_ = 0;
  std::int64_t max_phase_ = 0;
  NodeId delta_plus_1_ = 1;
  NodeFlags in_set_;
  NodeFlags covered_;
  std::vector<NodeId> uncovered_degree_;  // |N+(v) ∩ uncovered|
  std::vector<WorkerCounter> covered_delta_;  // per-worker cover events
  NodeId num_uncovered_ = 0;
};

class ElectionGreedyMds final : public protocol::Phase {
 public:
  ElectionGreedyMds() = default;

  std::string_view name() const override { return "greedy_election"; }
  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;
  MdsResult result(const Network& net) const;

  static constexpr int kTagUncov = 1;
  static constexpr int kTagCount = 2;
  static constexpr int kTagNominate = 3;
  static constexpr int kTagJoin = 4;

 private:
  enum class Stage { kUncov, kCount, kNominate, kJoin, kDone };

  void reduce_covered();

  Stage stage_ = Stage::kUncov;
  NodeFlags in_set_;
  NodeFlags covered_;
  NodeFlags self_nominated_;
  std::vector<NodeId> uncovered_degree_;
  std::vector<WorkerCounter> covered_delta_;  // per-worker cover events
  NodeId num_uncovered_ = 0;
};

}  // namespace arbods::baselines
