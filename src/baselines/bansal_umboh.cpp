#include "baselines/bansal_umboh.hpp"

#include <algorithm>

#include "baselines/simplex.hpp"
#include "common/check.hpp"
#include "graph/verify.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::baselines {

BansalUmbohResult bansal_umboh_dominating_set(const Graph& g, NodeId alpha) {
  ARBODS_CHECK(alpha >= 1);
  WeightedGraph wg = WeightedGraph::uniform(Graph(g));
  LpResult lp = solve_fractional_mds(wg);

  const double threshold = 1.0 / (2.0 * static_cast<double>(alpha) + 1.0);
  NodeSet s1;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (lp.x[v] >= threshold - 1e-12) s1.push_back(v);

  NodeSet set = s1;
  for (NodeId v : undominated_nodes(g, s1)) set.push_back(v);
  std::sort(set.begin(), set.end());

  BansalUmbohResult res;
  res.set = std::move(set);
  res.lp_value = lp.objective;
  return res;
}

}  // namespace arbods::baselines
