// Exact weighted minimum dominating set by branch-and-bound.
//
// Intended for the small instances the experiments use to measure true
// approximation ratios (n up to ~40 on sparse graphs). Branches on the
// first undominated node (one of its closed neighbors must be chosen),
// prunes with the incumbent and a mutual-exclusion lower bound built from
// 2-separated undominated nodes.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::baselines {

struct ExactResult {
  NodeSet set;       // an optimal dominating set (sorted)
  Weight weight = 0; // its weight == OPT
  std::int64_t nodes_explored = 0;
};

/// Exact OPT. `node_budget` caps the search tree; returns nullopt if the
/// budget is exhausted before optimality is proven.
std::optional<ExactResult> exact_dominating_set(
    const WeightedGraph& wg, std::int64_t node_budget = 50'000'000);

}  // namespace arbods::baselines
