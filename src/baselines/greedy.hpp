// Centralized greedy for weighted dominating set (Johnson 1974 /
// Chvátal): repeatedly pick the node minimizing
// weight / (#newly dominated nodes). ln(Delta+1)-approximation; the
// classical quality reference for all experiments.
#pragma once

#include "common/types.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::baselines {

/// Returns a dominating set (sorted). O(m log n)-ish with a lazy heap.
NodeSet greedy_dominating_set(const WeightedGraph& wg);

}  // namespace arbods::baselines
