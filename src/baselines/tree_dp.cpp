#include "baselines/tree_dp.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "common/check.hpp"
#include "graph/stats.hpp"

namespace arbods::baselines {

namespace {

constexpr Weight kInf = std::numeric_limits<Weight>::max() / 4;

enum State : int { kIn = 0, kCovered = 1, kExposed = 2 };

}  // namespace

TreeDpResult tree_dominating_set(const WeightedGraph& wg) {
  const Graph& g = wg.graph();
  ARBODS_CHECK_MSG(is_forest(g), "tree_dominating_set requires a forest");
  const NodeId n = g.num_nodes();

  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<NodeId> bfs_order;
  bfs_order.reserve(n);
  std::vector<bool> visited(n, false);

  // dp[v][state]; choice bookkeeping for reconstruction.
  std::vector<std::array<Weight, 3>> dp(n);
  // For kCovered we must force one child IN; record which.
  std::vector<NodeId> forced_child(n, kInvalidNode);

  for (NodeId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    // BFS to fix parents and an order whose reverse is a post-order.
    const std::size_t comp_begin = bfs_order.size();
    visited[root] = true;
    bfs_order.push_back(root);
    for (std::size_t i = comp_begin; i < bfs_order.size(); ++i) {
      NodeId u = bfs_order[i];
      for (NodeId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          parent[v] = u;
          bfs_order.push_back(v);
        }
      }
    }
    // Bottom-up DP.
    for (std::size_t i = bfs_order.size(); i-- > comp_begin;) {
      NodeId v = bfs_order[i];
      Weight in = wg.weight(v);
      Weight covered = 0;      // provisional: no child forced IN yet
      Weight exposed = 0;
      Weight best_force = kInf;  // min extra cost to force one child IN
      NodeId force = kInvalidNode;
      for (NodeId c : g.neighbors(v)) {
        if (c == parent[v]) continue;
        const auto& d = dp[c];
        in += std::min({d[kIn], d[kCovered], d[kExposed]});
        const Weight child_free = std::min(d[kIn], d[kCovered]);
        covered = std::min(covered + child_free, kInf);
        exposed = std::min(exposed + child_free, kInf);
        const Weight force_cost =
            d[kIn] >= kInf ? kInf : d[kIn] - child_free;
        if (force_cost < best_force) {
          best_force = force_cost;
          force = c;
        }
      }
      if (force == kInvalidNode) {
        covered = kInf;  // leaf (or no children): cannot be child-covered
      } else {
        covered = std::min(covered + best_force, kInf);
      }
      dp[v] = {in, covered, exposed};
      forced_child[v] = force;
    }
  }

  // Top-down reconstruction.
  TreeDpResult res;
  std::vector<int> state(n, -1);
  for (std::size_t i = 0; i < bfs_order.size(); ++i) {
    NodeId v = bfs_order[i];
    if (parent[v] == kInvalidNode) {
      state[v] = dp[v][kIn] <= dp[v][kCovered] ? kIn : kCovered;
    }
    const int sv = state[v];
    ARBODS_CHECK(sv >= 0);
    if (sv == kIn) res.set.push_back(v);
    // Assign children states consistent with sv.
    for (NodeId c : g.neighbors(v)) {
      if (c == parent[v]) continue;
      const auto& d = dp[c];
      if (sv == kIn) {
        // child free among all three states
        if (d[kExposed] <= d[kIn] && d[kExposed] <= d[kCovered])
          state[c] = kExposed;
        else
          state[c] = d[kIn] <= d[kCovered] ? kIn : kCovered;
      } else if (sv == kExposed) {
        state[c] = d[kIn] <= d[kCovered] ? kIn : kCovered;
      } else {  // kCovered: the forced child must be IN, others take the min
        if (c == forced_child[v])
          state[c] = kIn;
        else
          state[c] = d[kIn] <= d[kCovered] ? kIn : kCovered;
      }
    }
  }
  std::sort(res.set.begin(), res.set.end());
  res.weight = wg.total_weight(res.set);
  return res;
}

}  // namespace arbods::baselines
