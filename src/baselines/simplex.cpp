#include "baselines/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace arbods::baselines {

namespace {

constexpr double kTol = 1e-9;

class Tableau {
 public:
  // Layout: columns [0, n) original, [n, n+m) surplus, [n+m, n+2m)
  // artificial, column n+2m = rhs.
  Tableau(int num_vars, const std::vector<SparseRow>& rows,
          const std::vector<double>& rhs, const std::vector<double>& costs)
      : n_(num_vars), m_(static_cast<int>(rows.size())),
        width_(num_vars + 2 * static_cast<int>(rows.size()) + 1),
        t_(rows.size(), std::vector<double>(width_, 0.0)),
        cost_row_(width_, 0.0), basis_(rows.size()), costs_(costs) {
    for (int i = 0; i < m_; ++i) {
      for (const auto& [j, a] : rows[i]) t_[i][j] = a;
      t_[i][n_ + i] = -1.0;       // surplus
      t_[i][n_ + m_ + i] = 1.0;   // artificial
      t_[i][width_ - 1] = rhs[i];
      ARBODS_CHECK_MSG(rhs[i] >= 0.0, "rhs must be nonnegative");
      basis_[i] = n_ + m_ + i;
    }
  }

  bool solve() {
    // Phase 1: minimize the sum of artificials.
    std::fill(cost_row_.begin(), cost_row_.end(), 0.0);
    for (int j = n_ + m_; j < n_ + 2 * m_; ++j) cost_row_[j] = 1.0;
    price_out();
    run_pivots(/*allow_artificial_entering=*/false);
    if (objective() > 1e-7) return false;  // infeasible
    drive_out_artificials();

    // Phase 2: the real objective.
    std::fill(cost_row_.begin(), cost_row_.end(), 0.0);
    for (int j = 0; j < n_; ++j) cost_row_[j] = costs_[j];
    price_out();
    run_pivots(/*allow_artificial_entering=*/false);
    return true;
  }

  double objective() const { return -cost_row_[width_ - 1]; }

  std::vector<double> primal() const {
    std::vector<double> x(n_, 0.0);
    for (int i = 0; i < m_; ++i)
      if (basis_[i] < n_) x[basis_[i]] = t_[i][width_ - 1];
    return x;
  }

 private:
  // Make reduced costs of basic columns zero.
  void price_out() {
    for (int i = 0; i < m_; ++i) {
      const double c = cost_row_[basis_[i]];
      if (std::fabs(c) > 0.0)
        for (int j = 0; j < width_; ++j) cost_row_[j] -= c * t_[i][j];
    }
  }

  void pivot(int row, int col) {
    const double p = t_[row][col];
    for (int j = 0; j < width_; ++j) t_[row][j] /= p;
    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double f = t_[i][col];
      if (std::fabs(f) > 0.0)
        for (int j = 0; j < width_; ++j) t_[i][j] -= f * t_[row][j];
    }
    const double f = cost_row_[col];
    if (std::fabs(f) > 0.0)
      for (int j = 0; j < width_; ++j) cost_row_[j] -= f * t_[row][j];
    basis_[row] = col;
  }

  void run_pivots(bool allow_artificial_entering) {
    const int limit_col = allow_artificial_entering ? width_ - 1 : n_ + m_;
    for (;;) {
      // Bland: smallest-index column with negative reduced cost.
      int enter = -1;
      for (int j = 0; j < limit_col; ++j) {
        if (cost_row_[j] < -kTol) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return;  // optimal
      // Ratio test (Bland tie-break: smallest basis variable).
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        if (t_[i][enter] > kTol) {
          const double ratio = t_[i][width_ - 1] / t_[i][enter];
          if (ratio < best_ratio - kTol ||
              (ratio < best_ratio + kTol &&
               (leave < 0 || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      ARBODS_CHECK_MSG(leave >= 0, "LP unbounded (covering LPs never are)");
      pivot(leave, enter);
    }
  }

  // After phase 1, swap any basic artificial for a non-artificial column.
  void drive_out_artificials() {
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_ + m_) continue;
      int col = -1;
      for (int j = 0; j < n_ + m_; ++j) {
        if (std::fabs(t_[i][j]) > kTol) {
          col = j;
          break;
        }
      }
      if (col >= 0) pivot(i, col);
      // else: the row is redundant (all-zero); the artificial stays basic
      // at value 0 and never re-enters with a nonzero value.
    }
  }

  int n_, m_, width_;
  std::vector<std::vector<double>> t_;
  std::vector<double> cost_row_;
  std::vector<int> basis_;
  std::vector<double> costs_;
};

}  // namespace

LpResult solve_covering_lp(int num_vars, const std::vector<SparseRow>& rows,
                           const std::vector<double>& rhs,
                           const std::vector<double>& costs) {
  ARBODS_CHECK(rows.size() == rhs.size());
  ARBODS_CHECK(static_cast<int>(costs.size()) == num_vars);
  Tableau tab(num_vars, rows, rhs, costs);
  LpResult res;
  res.feasible = tab.solve();
  if (res.feasible) {
    res.objective = tab.objective();
    res.x = tab.primal();
  }
  return res;
}

LpResult solve_fractional_mds(const WeightedGraph& wg) {
  const Graph& g = wg.graph();
  const int n = static_cast<int>(g.num_nodes());
  std::vector<SparseRow> rows(n);
  std::vector<double> rhs(n, 1.0);
  std::vector<double> costs(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    rows[v].push_back({static_cast<int>(v), 1.0});
    for (NodeId u : g.neighbors(v)) rows[v].push_back({static_cast<int>(u), 1.0});
    costs[v] = static_cast<double>(wg.weight(v));
  }
  LpResult res = solve_covering_lp(n, rows, rhs, costs);
  ARBODS_CHECK_MSG(res.feasible, "dominating LP must be feasible");
  return res;
}

}  // namespace arbods::baselines
