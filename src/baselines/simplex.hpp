// Dense two-phase primal simplex with Bland's rule, for the small covering
// LPs the experiments solve exactly (fractional dominating set).
//
// Solves   min c.x   s.t.  A.x >= b,  x >= 0
// by introducing surplus and artificial variables. Bland's rule guarantees
// termination; intended for instances up to a few hundred rows.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::baselines {

struct LpResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<double> x;  // primal solution (original variables only)
};

/// Sparse row: list of (column, coefficient).
using SparseRow = std::vector<std::pair<int, double>>;

/// General covering-form solver.
LpResult solve_covering_lp(int num_vars, const std::vector<SparseRow>& rows,
                           const std::vector<double>& rhs,
                           const std::vector<double>& costs);

/// The fractional weighted dominating set LP:
///   min sum_v w_v y_v   s.t.  sum_{u in N+(v)} y_u >= 1  for all v, y >= 0.
/// Its optimum is a lower bound on OPT (integral), used as a certified
/// denominator in the experiment tables.
LpResult solve_fractional_mds(const WeightedGraph& wg);

}  // namespace arbods::baselines
