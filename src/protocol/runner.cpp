#include "protocol/runner.hpp"

#include <algorithm>

#include "resilience/reliable_channel.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_network.hpp"

namespace arbods::protocol {

namespace {

// Phase-boundary auto-replanning (CongestConfig::auto_replan): refine
// the shard plan against the traffic measured so far and adopt it when
// the win clears the hysteresis threshold. Runs between phases only —
// the facade returns to the fresh-construction observable state, which
// is exactly what the next run_phase expects — and is deterministic at
// every width and shard count because the profile is (the determinism
// suite pins replanned runs bit-identical). Plain Networks have no
// sharded core and skip out here.
void maybe_replan(Network& net) {
  shard::ShardedNetwork* sharded = net.sharded_core();
  if (sharded == nullptr) return;
  // Evaluation span (driver thread, between phases); an adoption
  // additionally records its own "replan:adopt" span inside adopt_plan.
  obs::ScopedSpan span(net.tracer(), 0, "replan:eval");
  shard::ShardPlan refined = sharded->measured_plan();
  if (refined == sharded->plan()) return;
  const auto profile = sharded->traffic_profile();
  const std::int64_t current =
      shard::cut_volume(net.graph(), sharded->plan(), profile);
  const std::int64_t next =
      shard::cut_volume(net.graph(), refined, profile);
  const double hysteresis = std::max(0.0, net.config().replan_hysteresis);
  if (static_cast<double>(next) >=
      (1.0 - hysteresis) * static_cast<double>(current))
    return;
  sharded->adopt_plan(std::move(refined));
}

}  // namespace

RunStats ProtocolRunner::run(std::span<Phase* const> phases,
                             std::int64_t max_rounds_per_phase) {
  net_->reset_for_reuse();
  ctx_.clear();
  // Auto-replanning needs the per-arc traffic profile from phase one on;
  // reset_for_reuse just zeroed any previous run's, so (re)enabling here
  // is idempotent. A pooled facade keeps the plan the previous run
  // converged to — repeated runs start from the refined placement.
  // Single-phase protocols have no boundary to replan at, so they skip
  // the profile entirely — its one-add-per-message cost would buy
  // nothing.
  const bool auto_replan = net_->config().auto_replan && phases.size() > 1;
  if (auto_replan)
    if (shard::ShardedNetwork* sharded = net_->sharded_core())
      sharded->enable_traffic_profile();
  // With reliable_transport set, every phase runs behind the
  // reliable-delivery adapter: the wrapped phase executes on a clean
  // virtual network while ReliablePhase speaks the seq/ack/retransmit
  // protocol on this (possibly faulty) one. Solvers opt in through
  // config alone — no phase list changes anywhere.
  const bool rel = net_->config().reliable_transport;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    Phase* phase = phases[i];
    ARBODS_CHECK(phase != nullptr);
    if (rel) {
      resilience::ReliablePhase wrapped(*phase);
      wrapped.bind(ctx_);
      const PhaseStats& ps =
          net_->run_phase(wrapped, wrapped.name(), max_rounds_per_phase);
      if (ps.hit_round_limit) break;
      wrapped.publish(*net_, ctx_);
    } else {
      phase->bind(ctx_);
      const PhaseStats& ps =
          net_->run_phase(*phase, phase->name(), max_rounds_per_phase);
      if (ps.hit_round_limit) break;  // callers check RunStats::hit_round_limit
      phase->publish(*net_, ctx_);
    }
    if (auto_replan && i + 1 < phases.size()) maybe_replan(*net_);
  }
  return net_->stats();
}

RunStats ProtocolRunner::run(std::initializer_list<Phase*> phases,
                             std::int64_t max_rounds_per_phase) {
  return run(std::span<Phase* const>(phases.begin(), phases.size()),
             max_rounds_per_phase);
}

RunStats run_protocol(Network& net, std::initializer_list<Phase*> phases,
                      std::int64_t max_rounds_per_phase) {
  ProtocolRunner runner(net);
  return runner.run(phases, max_rounds_per_phase);
}

}  // namespace arbods::protocol
