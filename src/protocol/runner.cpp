#include "protocol/runner.hpp"

namespace arbods::protocol {

RunStats ProtocolRunner::run(std::span<Phase* const> phases,
                             std::int64_t max_rounds_per_phase) {
  net_->reset_for_reuse();
  ctx_.clear();
  for (Phase* phase : phases) {
    ARBODS_CHECK(phase != nullptr);
    phase->bind(ctx_);
    const PhaseStats& ps =
        net_->run_phase(*phase, phase->name(), max_rounds_per_phase);
    if (ps.hit_round_limit) break;  // callers check RunStats::hit_round_limit
    phase->publish(*net_, ctx_);
  }
  return net_->stats();
}

RunStats ProtocolRunner::run(std::initializer_list<Phase*> phases,
                             std::int64_t max_rounds_per_phase) {
  return run(std::span<Phase* const>(phases.begin(), phases.size()),
             max_rounds_per_phase);
}

RunStats run_protocol(Network& net, std::initializer_list<Phase*> phases,
                      std::int64_t max_rounds_per_phase) {
  ProtocolRunner runner(net);
  return runner.run(phases, max_rounds_per_phase);
}

}  // namespace arbods::protocol
