#include "protocol/runner.hpp"

#include "resilience/reliable_channel.hpp"

namespace arbods::protocol {

RunStats ProtocolRunner::run(std::span<Phase* const> phases,
                             std::int64_t max_rounds_per_phase) {
  net_->reset_for_reuse();
  ctx_.clear();
  // With reliable_transport set, every phase runs behind the
  // reliable-delivery adapter: the wrapped phase executes on a clean
  // virtual network while ReliablePhase speaks the seq/ack/retransmit
  // protocol on this (possibly faulty) one. Solvers opt in through
  // config alone — no phase list changes anywhere.
  const bool rel = net_->config().reliable_transport;
  for (Phase* phase : phases) {
    ARBODS_CHECK(phase != nullptr);
    if (rel) {
      resilience::ReliablePhase wrapped(*phase);
      wrapped.bind(ctx_);
      const PhaseStats& ps =
          net_->run_phase(wrapped, wrapped.name(), max_rounds_per_phase);
      if (ps.hit_round_limit) break;
      wrapped.publish(*net_, ctx_);
      continue;
    }
    phase->bind(ctx_);
    const PhaseStats& ps =
        net_->run_phase(*phase, phase->name(), max_rounds_per_phase);
    if (ps.hit_round_limit) break;  // callers check RunStats::hit_round_limit
    phase->publish(*net_, ctx_);
  }
  return net_->stats();
}

RunStats ProtocolRunner::run(std::initializer_list<Phase*> phases,
                             std::int64_t max_rounds_per_phase) {
  return run(std::span<Phase* const>(phases.begin(), phases.size()),
             max_rounds_per_phase);
}

RunStats run_protocol(Network& net, std::initializer_list<Phase*> phases,
                      std::int64_t max_rounds_per_phase) {
  ProtocolRunner runner(net);
  return runner.run(phases, max_rounds_per_phase);
}

}  // namespace arbods::protocol
