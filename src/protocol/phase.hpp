// The protocol layer: composable phases over one reused Network.
//
// The paper's headline algorithms are *compositions* — Theorem 1.2 chains
// the Lemma 4.1 partial-dominating-set phase into the Lemma 4.6 extension,
// and the unknown-parameter variants (Remarks 4.4/4.5) bolt a
// Barenboim–Elkin orientation prologue onto the main loop. A Phase is one
// such building block: a DistributedAlgorithm plus a stable name (for the
// per-phase statistics breakdown) and typed handoff slots through which a
// phase passes per-node state (packing values, orientation out-degrees,
// membership flags) to its successors.
//
// Handoff model: a PhaseContext is a small type-keyed blackboard. A
// finishing phase publish()es a handoff struct (e.g. PartialDsHandoff);
// a later phase bind()s against the context before its initialize() and
// pulls the inputs it declares. One slot per type — publishing the same
// type twice replaces the slot (the paper's pipelines are linear).
//
// Phases run on ONE Network via ProtocolRunner (see runner.hpp): each
// phase starts from the fresh-construction observable state of the shared
// Network (Network::run_phase), so a composition is bit-identical to the
// old one-Network-per-phase drivers while constructing arenas, worker
// pool, and RNG streams exactly once.
#pragma once

#include <memory>
#include <string_view>
#include <typeinfo>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "congest/network.hpp"

namespace arbods::protocol {

/// Type-keyed handoff storage shared by the phases of one protocol run.
/// Values are held by shared_ptr so a phase may retain its input handoff
/// beyond the runner's lifetime (result assembly happens after run()).
class PhaseContext {
 public:
  /// Stores `value` under its type, replacing any previous slot of the
  /// same type. Returns a reference to the stored value.
  template <typename T>
  T& put(T value) {
    auto holder = std::make_shared<T>(std::move(value));
    T* raw = holder.get();
    for (Slot& s : slots_) {
      if (*s.type == typeid(T)) {
        s.value = std::move(holder);
        return *raw;
      }
    }
    slots_.push_back(Slot{&typeid(T), std::move(holder)});
    return *raw;
  }

  /// The slot of type T, or nullptr when no phase published one.
  template <typename T>
  T* find() const {
    for (const Slot& s : slots_)
      if (*s.type == typeid(T)) return static_cast<T*>(s.value.get());
    return nullptr;
  }

  /// Shared ownership of the slot of type T (nullptr when absent); lets
  /// a phase keep its input alive independently of the context.
  template <typename T>
  std::shared_ptr<T> share() const {
    for (const Slot& s : slots_)
      if (*s.type == typeid(T)) return std::static_pointer_cast<T>(s.value);
    return nullptr;
  }

  /// The slot of type T; throws CheckError naming the type when absent.
  template <typename T>
  T& get() const {
    T* value = find<T>();
    ARBODS_CHECK_MSG(value != nullptr, "phase handoff missing: no '"
                                           << typeid(T).name()
                                           << "' slot was published");
    return *value;
  }

  void clear() { slots_.clear(); }
  std::size_t size() const { return slots_.size(); }

 private:
  struct Slot {
    const std::type_info* type;
    std::shared_ptr<void> value;
  };
  std::vector<Slot> slots_;
};

/// One composable stage of a protocol. A Phase is a DistributedAlgorithm
/// (so it can equally be driven standalone through Network::run) extended
/// with a stable name and the handoff hooks:
///
///   bind(ctx)      before initialize(): read the inputs this phase
///                  declares from earlier phases' handoffs.
///   publish(ctx)   after finished(): write this phase's handoff for
///                  later phases.
///
/// The locality discipline extends to handoffs: a phase may only publish
/// state its nodes computed locally, and a binding phase treats the slot
/// as per-node initial state (exactly what the old drivers copied between
/// their per-phase Networks).
class Phase : public DistributedAlgorithm {
 public:
  /// Stable identifier used for the per-phase statistics breakdown
  /// (RunStats::phases) and scenario reports.
  virtual std::string_view name() const = 0;

  /// Reads this phase's declared inputs from the context. Called by the
  /// runner immediately before initialize(); default: no inputs.
  virtual void bind(PhaseContext& ctx) { (void)ctx; }

  /// Publishes this phase's outputs. Called by the runner once finished()
  /// holds; default: no outputs.
  virtual void publish(Network& net, PhaseContext& ctx) {
    (void)net;
    (void)ctx;
  }
};

}  // namespace arbods::protocol
