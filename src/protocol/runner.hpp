// ProtocolRunner: executes a sequence of Phases on one reused Network.
//
// The runner owns the PhaseContext, resets the Network once up front
// (reset_for_reuse — arenas/pool/RNG storage survive), then for each
// phase: bind(ctx) -> Network::run_phase (which appends the phase's
// rounds/messages/bits to RunStats::phases) -> publish(ctx). A phase that
// exhausts its round budget stops the pipeline; the limit is visible both
// on the phase's entry and on RunStats::hit_round_limit.
//
// Composed solvers in core/solvers.cpp are declarative phase lists over
// this runner; the scenario batch harness (src/harness/scenario.hpp)
// reuses one Network across whole sweeps the same way.
#pragma once

#include <initializer_list>
#include <span>

#include "protocol/phase.hpp"

namespace arbods::protocol {

class ProtocolRunner {
 public:
  explicit ProtocolRunner(Network& net) : net_(&net) {}

  /// Runs the phases in order; each phase gets `max_rounds_per_phase`.
  /// Returns the accumulated statistics (totals + per-phase breakdown).
  RunStats run(std::span<Phase* const> phases,
               std::int64_t max_rounds_per_phase = 1'000'000);
  RunStats run(std::initializer_list<Phase*> phases,
               std::int64_t max_rounds_per_phase = 1'000'000);

  /// The handoff blackboard (inspectable after run; cleared at the next).
  PhaseContext& context() { return ctx_; }
  Network& network() { return *net_; }

 private:
  Network* net_;
  PhaseContext ctx_;
};

/// One-shot convenience for the common "compose and run once" shape.
RunStats run_protocol(Network& net, std::initializer_list<Phase*> phases,
                      std::int64_t max_rounds_per_phase = 1'000'000);

}  // namespace arbods::protocol
