// Structural graph transformations (used heavily by the Section 5
// lower-bound construction and by the generators).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods {

/// Result of an induced-subgraph extraction: the subgraph plus the map
/// from new ids to original ids.
struct Subgraph {
  Graph graph;
  std::vector<NodeId> to_original;  // size = graph.num_nodes()
};

/// Induced subgraph on `nodes` (duplicates rejected).
Subgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

/// Disjoint union: nodes of `b` are shifted by a.num_nodes().
Graph disjoint_union(const Graph& a, const Graph& b);

/// k disjoint copies of g; copy i occupies ids [i*n, (i+1)*n).
Graph disjoint_copies(const Graph& g, NodeId k);

/// Subdivides every edge once: each edge {u,v} becomes u—x—v with a fresh
/// middle node x. Middle nodes get ids n, n+1, ... in the lexicographic
/// order of the original edges (u < v).
Graph subdivide_edges(const Graph& g);

/// Union of edge sets of two graphs over the same node set.
Graph overlay(const Graph& a, const Graph& b);

/// Complement graph (for small n only; quadratic).
Graph complement(const Graph& g);

}  // namespace arbods
