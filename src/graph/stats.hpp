// Structural graph statistics used by tests and the experiment harness.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods {

struct GraphStats {
  NodeId n = 0;
  std::size_t m = 0;
  NodeId max_degree = 0;
  double avg_degree = 0.0;
  NodeId num_components = 0;
  NodeId num_isolated = 0;
  /// Degeneracy (max core number). Arboricity satisfies
  /// degeneracy/2 < arboricity <= degeneracy (Nash-Williams).
  NodeId degeneracy = 0;
};

GraphStats compute_stats(const Graph& g);

/// Connected component id per node (0-based, BFS order).
std::vector<NodeId> connected_components(const Graph& g, NodeId* count = nullptr);

/// True iff g has no cycle.
bool is_forest(const Graph& g);

/// True iff g is connected and has no cycle.
bool is_tree(const Graph& g);

/// BFS distances from src (kInvalidNode-distance encoded as n).
std::vector<NodeId> bfs_distances(const Graph& g, NodeId src);

/// Degree histogram: hist[d] = #nodes of degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

}  // namespace arbods
