#include "graph/transform.hpp"

#include <unordered_map>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace arbods {

Subgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  std::unordered_map<NodeId, NodeId> to_new;
  to_new.reserve(nodes.size() * 2);
  std::vector<NodeId> to_original(nodes.begin(), nodes.end());
  for (NodeId i = 0; i < nodes.size(); ++i) {
    ARBODS_CHECK(nodes[i] < g.num_nodes());
    bool inserted = to_new.emplace(nodes[i], i).second;
    ARBODS_CHECK_MSG(inserted, "duplicate node " << nodes[i]);
  }
  GraphBuilder b(static_cast<NodeId>(nodes.size()));
  for (NodeId i = 0; i < nodes.size(); ++i) {
    for (NodeId v : g.neighbors(nodes[i])) {
      auto it = to_new.find(v);
      if (it != to_new.end() && i < it->second) b.add_edge(i, it->second);
    }
  }
  return {std::move(b).build(), std::move(to_original)};
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  GraphBuilder out(a.num_nodes() + b.num_nodes());
  for (const Edge& e : a.edges()) out.add_edge(e.u, e.v);
  const NodeId shift = a.num_nodes();
  for (const Edge& e : b.edges()) out.add_edge(e.u + shift, e.v + shift);
  return std::move(out).build();
}

Graph disjoint_copies(const Graph& g, NodeId k) {
  const NodeId n = g.num_nodes();
  GraphBuilder out(n * k);
  const auto edges = g.edges();
  for (NodeId i = 0; i < k; ++i)
    for (const Edge& e : edges) out.add_edge(e.u + i * n, e.v + i * n);
  return std::move(out).build();
}

Graph subdivide_edges(const Graph& g) {
  const auto edges = g.edges();
  GraphBuilder out(g.num_nodes() + static_cast<NodeId>(edges.size()));
  NodeId mid = g.num_nodes();
  for (const Edge& e : edges) {
    out.add_edge(e.u, mid);
    out.add_edge(mid, e.v);
    ++mid;
  }
  return std::move(out).build();
}

Graph overlay(const Graph& a, const Graph& b) {
  ARBODS_CHECK(a.num_nodes() == b.num_nodes());
  GraphBuilder out(a.num_nodes());
  for (const Edge& e : a.edges()) out.add_edge(e.u, e.v);
  for (const Edge& e : b.edges()) out.add_edge(e.u, e.v);
  return std::move(out).build();
}

Graph complement(const Graph& g) {
  const NodeId n = g.num_nodes();
  GraphBuilder out(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (!g.has_edge(u, v)) out.add_edge(u, v);
  return std::move(out).build();
}

}  // namespace arbods
