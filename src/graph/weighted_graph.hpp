// A Graph together with positive integer node weights.
//
// The paper assumes weights are positive integers bounded by n^c; the
// constructor enforces positivity, and weight_bits() reports the width used
// by the CONGEST message-size accounting.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods {

class WeightedGraph {
 public:
  /// Takes ownership of g and weights. weights.size() must equal
  /// g.num_nodes(); every weight must be >= 1.
  WeightedGraph(Graph g, std::vector<Weight> weights);

  /// All weights 1 (the unweighted problem).
  static WeightedGraph uniform(Graph g);

  const Graph& graph() const { return graph_; }
  NodeId num_nodes() const { return graph_.num_nodes(); }

  Weight weight(NodeId v) const;
  std::span<const Weight> weights() const { return weights_; }

  /// Sum of weights over a node set.
  Weight total_weight(std::span<const NodeId> nodes) const;

  /// Largest node weight (>= 1; returns 1 for the empty graph).
  Weight max_weight() const;

  /// min weight in the closed neighborhood N+(v) — the paper's tau_v.
  Weight tau(NodeId v) const;

  /// All tau values (computed once, O(m)).
  std::vector<Weight> all_tau() const;

  /// Bits needed to transmit any single weight.
  int weight_bits() const;

  /// True iff every weight equals 1.
  bool is_uniform() const;

 private:
  Graph graph_;
  std::vector<Weight> weights_;
};

}  // namespace arbods
