#include "graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace arbods {

namespace {
// Reads the next non-comment token.
std::string next_token(std::istream& is) {
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    return tok;
  }
  return {};
}

std::uint64_t next_u64(std::istream& is, const char* what) {
  std::string tok = next_token(is);
  ARBODS_CHECK_MSG(!tok.empty(), "unexpected EOF reading " << what);
  return std::stoull(tok);
}
}  // namespace

void write_graph(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) os << e.u << " " << e.v << "\n";
}

Graph read_graph(std::istream& is) {
  NodeId n = static_cast<NodeId>(next_u64(is, "node count"));
  std::size_t m = next_u64(is, "edge count");
  GraphBuilder b(n);
  b.reserve_edges(m);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = static_cast<NodeId>(next_u64(is, "edge endpoint"));
    NodeId v = static_cast<NodeId>(next_u64(is, "edge endpoint"));
    b.add_edge(u, v);
  }
  return std::move(b).build();
}

void write_weighted_graph(std::ostream& os, const WeightedGraph& wg) {
  write_graph(os, wg.graph());
  os << "weights\n";
  for (NodeId v = 0; v < wg.num_nodes(); ++v) os << wg.weight(v) << "\n";
}

WeightedGraph read_weighted_graph(std::istream& is) {
  Graph g = read_graph(is);
  std::string marker = next_token(is);
  ARBODS_CHECK_MSG(marker == "weights", "expected 'weights' marker, got '"
                                            << marker << "'");
  std::vector<Weight> w(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    w[v] = static_cast<Weight>(next_u64(is, "weight"));
  return WeightedGraph(std::move(g), std::move(w));
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  ARBODS_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_graph(os, g);
  ARBODS_CHECK_MSG(os.good(), "write to " << path << " failed");
}

Graph load_graph(const std::string& path) {
  std::ifstream is(path);
  ARBODS_CHECK_MSG(is.good(), "cannot open " << path);
  return read_graph(is);
}

}  // namespace arbods
