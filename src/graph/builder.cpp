#include "graph/builder.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace arbods {

GraphBuilder::GraphBuilder(NodeId n) : n_(n) {}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  ARBODS_CHECK_MSG(u < n_ && v < n_,
                   "edge (" << u << "," << v << ") out of range n=" << n_);
  ARBODS_CHECK_MSG(u != v, "self-loop at node " << u);
  edges_.push_back({u, v});
}

NodeId GraphBuilder::add_node() { return n_++; }

Graph GraphBuilder::build() && {
  Graph g(n_);
  // Count directed arcs (both orientations), then fill and sort each list.
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& e : edges_) {
    ++counts[e.u + 1];
    ++counts[e.v + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) counts[i] += counts[i - 1];
  g.offsets_ = counts;  // copy of the prefix sums; counts reused as cursors
  g.adj_.resize(edges_.size() * 2);
  for (const Edge& e : edges_) {
    g.adj_[counts[e.u]++] = e.v;
    g.adj_[counts[e.v]++] = e.u;
  }
  // Sort and dedup each adjacency list, then recompact.
  std::vector<NodeId> compact;
  compact.reserve(g.adj_.size());
  std::vector<std::size_t> new_offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (NodeId v = 0; v < n_; ++v) {
    auto first = g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto last = g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(first, last);
    auto unique_end = std::unique(first, last);
    new_offsets[v] = compact.size();
    compact.insert(compact.end(), first, unique_end);
  }
  new_offsets[n_] = compact.size();
  g.offsets_ = std::move(new_offsets);
  g.adj_ = std::move(compact);
  return g;
}

}  // namespace arbods
