#include "graph/graph.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace arbods {

Graph::Graph(NodeId n) : n_(n), offsets_(static_cast<std::size_t>(n) + 1, 0) {}

Graph Graph::from_edges(NodeId n, const std::vector<Edge>& edges) {
  GraphBuilder b(n);
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
  return std::move(b).build();
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  ARBODS_DCHECK(v < n_);
  return {adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

NodeId Graph::degree(NodeId v) const {
  ARBODS_DCHECK(v < n_);
  return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
}

NodeId Graph::max_degree() const {
  NodeId d = 0;
  for (NodeId v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  ARBODS_DCHECK(u < n_ && v < n_);
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < n_; ++u)
    for (NodeId v : neighbors(u))
      if (u < v) out.push_back({u, v});
  return out;
}

}  // namespace arbods
