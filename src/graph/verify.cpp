#include "graph/verify.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace arbods {

std::vector<bool> dominated_mask(const Graph& g, std::span<const NodeId> set) {
  std::vector<bool> dom(g.num_nodes(), false);
  for (NodeId s : set) {
    ARBODS_CHECK(s < g.num_nodes());
    dom[s] = true;
    for (NodeId u : g.neighbors(s)) dom[u] = true;
  }
  return dom;
}

bool is_dominating_set(const Graph& g, std::span<const NodeId> set) {
  auto dom = dominated_mask(g, set);
  return std::all_of(dom.begin(), dom.end(), [](bool b) { return b; });
}

std::vector<NodeId> undominated_nodes(const Graph& g,
                                      std::span<const NodeId> set) {
  auto dom = dominated_mask(g, set);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (!dom[v]) out.push_back(v);
  return out;
}

bool is_vertex_cover(const Graph& g, std::span<const NodeId> set) {
  std::vector<bool> in(g.num_nodes(), false);
  for (NodeId s : set) {
    ARBODS_CHECK(s < g.num_nodes());
    in[s] = true;
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.neighbors(u))
      if (u < v && !in[u] && !in[v]) return false;
  return true;
}

bool is_valid_node_set(const Graph& g, std::span<const NodeId> set) {
  std::unordered_set<NodeId> seen;
  seen.reserve(set.size() * 2);
  for (NodeId v : set) {
    if (v >= g.num_nodes()) return false;
    if (!seen.insert(v).second) return false;
  }
  return true;
}

bool is_feasible_packing(const WeightedGraph& wg, std::span<const double> x,
                         double tol) {
  const Graph& g = wg.graph();
  ARBODS_CHECK(x.size() == g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    double sum = x[u];
    for (NodeId v : g.neighbors(u)) sum += x[v];
    if (!leq_with_slack(sum, static_cast<double>(wg.weight(u)), tol))
      return false;
  }
  return true;
}

double packing_lower_bound(std::span<const double> x) {
  double sum = 0;
  for (double v : x) sum += v;
  return sum;
}

}  // namespace arbods
