// Immutable undirected simple graph in CSR (compressed sparse row) form.
//
// Nodes are dense ids in [0, n). Adjacency lists are sorted, enabling
// O(log d) membership tests and cache-friendly scans. Self-loops are
// rejected; parallel edges are collapsed by the builder.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace arbods {

class Graph {
 public:
  /// Empty graph with n isolated nodes.
  explicit Graph(NodeId n = 0);

  /// Builds from an edge list. Self-loops are a contract violation
  /// (CheckError); duplicate edges (in either orientation) are collapsed.
  static Graph from_edges(NodeId n, const std::vector<Edge>& edges);

  NodeId num_nodes() const { return n_; }
  std::size_t num_edges() const { return adj_.size() / 2; }

  /// Sorted open neighborhood of v.
  std::span<const NodeId> neighbors(NodeId v) const;

  NodeId degree(NodeId v) const;

  /// Maximum degree Delta (0 for the empty graph).
  NodeId max_degree() const;

  /// O(log degree(u)) membership test.
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges, each once, with u < v, sorted lexicographically.
  std::vector<Edge> edges() const;

  /// True if v has no neighbors.
  bool is_isolated(NodeId v) const { return degree(v) == 0; }

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  friend class GraphBuilder;
  NodeId n_ = 0;
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adj_;           // size 2m, sorted per node
};

}  // namespace arbods
