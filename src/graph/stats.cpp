#include "graph/stats.hpp"

#include <deque>
#include <numeric>

#include "common/check.hpp"

namespace arbods {

std::vector<NodeId> connected_components(const Graph& g, NodeId* count) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> comp(n, kInvalidNode);
  NodeId next = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidNode) continue;
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.neighbors(u)) {
        if (comp[v] == kInvalidNode) {
          comp[v] = next;
          queue.push_back(v);
        }
      }
    }
    ++next;
  }
  if (count != nullptr) *count = next;
  return comp;
}

bool is_forest(const Graph& g) {
  NodeId num_comp = 0;
  connected_components(g, &num_comp);
  // A graph is a forest iff m = n - #components.
  return g.num_edges() == g.num_nodes() - num_comp;
}

bool is_tree(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  NodeId num_comp = 0;
  connected_components(g, &num_comp);
  return num_comp == 1 && g.num_edges() == g.num_nodes() - 1;
}

std::vector<NodeId> bfs_distances(const Graph& g, NodeId src) {
  const NodeId n = g.num_nodes();
  ARBODS_CHECK(src < n);
  std::vector<NodeId> dist(n, n);
  dist[src] = 0;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == n) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(static_cast<std::size_t>(g.max_degree()) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(v)];
  return hist;
}

namespace {

// Linear-time peeling: repeatedly remove a minimum-degree node; the largest
// degree seen at removal time is the degeneracy (Matula & Beck 1983).
NodeId compute_degeneracy(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  std::vector<NodeId> deg(n);
  NodeId max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket queue over degrees.
  std::vector<std::vector<NodeId>> bucket(max_deg + 1);
  for (NodeId v = 0; v < n; ++v) bucket[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  NodeId degeneracy = 0;
  NodeId cursor = 0;
  for (NodeId removed_count = 0; removed_count < n; ++removed_count) {
    // Find the lowest non-empty bucket; cursor can step back by at most one
    // per removal, so the total work is O(n + m).
    while (cursor > 0 && !bucket[cursor - 1].empty()) --cursor;
    while (bucket[cursor].empty()) ++cursor;
    NodeId v = bucket[cursor].back();
    bucket[cursor].pop_back();
    if (removed[v] || deg[v] != cursor) {
      // Stale entry; re-examine this bucket.
      --removed_count;
      continue;
    }
    removed[v] = true;
    degeneracy = std::max(degeneracy, cursor);
    for (NodeId u : g.neighbors(v)) {
      if (!removed[u]) {
        --deg[u];
        bucket[deg[u]].push_back(u);
      }
    }
  }
  return degeneracy;
}

}  // namespace

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.n = g.num_nodes();
  s.m = g.num_edges();
  s.max_degree = g.max_degree();
  s.avg_degree = s.n == 0 ? 0.0 : 2.0 * static_cast<double>(s.m) / s.n;
  connected_components(g, &s.num_components);
  for (NodeId v = 0; v < s.n; ++v)
    if (g.is_isolated(v)) ++s.num_isolated;
  s.degeneracy = compute_degeneracy(g);
  return s;
}

}  // namespace arbods
