// Mutable edge accumulator producing an immutable Graph.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods {

class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n);

  NodeId num_nodes() const { return n_; }

  /// Adds an undirected edge. Self-loops are rejected (CheckError);
  /// duplicates are tolerated and collapsed at build().
  void add_edge(NodeId u, NodeId v);

  /// Adds a fresh isolated node; returns its id.
  NodeId add_node();

  void reserve_edges(std::size_t m) { edges_.reserve(m); }

  std::size_t num_pending_edges() const { return edges_.size(); }

  /// Finalizes into CSR form. Consumes the builder.
  Graph build() &&;

 private:
  NodeId n_;
  std::vector<Edge> edges_;
};

}  // namespace arbods
