#include "graph/weighted_graph.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace arbods {

WeightedGraph::WeightedGraph(Graph g, std::vector<Weight> weights)
    : graph_(std::move(g)), weights_(std::move(weights)) {
  ARBODS_CHECK_MSG(weights_.size() == graph_.num_nodes(),
                   "weights size " << weights_.size() << " != n "
                                   << graph_.num_nodes());
  for (std::size_t v = 0; v < weights_.size(); ++v)
    ARBODS_CHECK_MSG(weights_[v] >= 1,
                     "weight of node " << v << " is " << weights_[v]
                                       << "; must be >= 1");
}

WeightedGraph WeightedGraph::uniform(Graph g) {
  std::vector<Weight> w(g.num_nodes(), 1);
  return WeightedGraph(std::move(g), std::move(w));
}

Weight WeightedGraph::weight(NodeId v) const {
  ARBODS_DCHECK(v < num_nodes());
  return weights_[v];
}

Weight WeightedGraph::total_weight(std::span<const NodeId> nodes) const {
  Weight sum = 0;
  for (NodeId v : nodes) sum += weight(v);
  return sum;
}

Weight WeightedGraph::max_weight() const {
  Weight w = 1;
  for (Weight x : weights_) w = std::max(w, x);
  return w;
}

Weight WeightedGraph::tau(NodeId v) const {
  Weight t = weight(v);
  for (NodeId u : graph_.neighbors(v)) t = std::min(t, weight(u));
  return t;
}

std::vector<Weight> WeightedGraph::all_tau() const {
  std::vector<Weight> t(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) t[v] = tau(v);
  return t;
}

int WeightedGraph::weight_bits() const {
  return bit_width_for(static_cast<std::uint64_t>(max_weight()));
}

bool WeightedGraph::is_uniform() const {
  return std::all_of(weights_.begin(), weights_.end(),
                     [](Weight w) { return w == 1; });
}

}  // namespace arbods
