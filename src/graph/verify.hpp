// Independent verifiers for solution certificates.
//
// These are deliberately written as naive direct checks (no sharing with the
// algorithms they validate) so tests catch algorithmic bugs rather than
// reproduce them.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods {

/// True iff every node is in `set` or adjacent to a member of `set`.
bool is_dominating_set(const Graph& g, std::span<const NodeId> set);

/// Nodes not dominated by `set` (empty iff is_dominating_set).
std::vector<NodeId> undominated_nodes(const Graph& g,
                                      std::span<const NodeId> set);

/// True iff every edge has at least one endpoint in `set`.
bool is_vertex_cover(const Graph& g, std::span<const NodeId> set);

/// Closed-neighborhood coverage bitmap of `set`.
std::vector<bool> dominated_mask(const Graph& g, std::span<const NodeId> set);

/// Checks that `set` contains no duplicate ids and all ids are < n.
bool is_valid_node_set(const Graph& g, std::span<const NodeId> set);

/// Dual (packing) feasibility from Lemma 2.1: for every u,
/// sum_{v in N+(u)} x_v <= w_u (within `tol` relative slack).
bool is_feasible_packing(const WeightedGraph& wg, std::span<const double> x,
                         double tol = 1e-9);

/// The certified lower bound of Lemma 2.1: sum_v x_v <= OPT.
double packing_lower_bound(std::span<const double> x);

}  // namespace arbods
