// Plain-text edge-list I/O.
//
// Format (whitespace separated, '#' comments allowed):
//   n m
//   u v          (m lines, 0-based endpoints)
// Weighted variant appends a line "weights" followed by n integers.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods {

void write_graph(std::ostream& os, const Graph& g);
Graph read_graph(std::istream& is);

void write_weighted_graph(std::ostream& os, const WeightedGraph& wg);
WeightedGraph read_weighted_graph(std::istream& is);

/// Convenience file wrappers (throw CheckError on I/O failure).
void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);

}  // namespace arbods
