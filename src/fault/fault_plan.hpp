// FaultPlan: the fully elaborated adversary a FaultyNetwork executes.
//
// A plan is the rich form of a FaultSpec: uniform per-record
// probabilities plus optional per-arc drop/duplicate overrides (indexed
// by receiver-side CSR arc, the same indexing ShardedNetwork's traffic
// profile uses) and an explicit node-kill schedule keyed by round.
// make_fault_plan derives one from a spec — sampling the kill set with a
// pure hash of (fault_seed, node) — or a test/bench builds one directly
// to target specific arcs and nodes.
//
// Determinism contract: every decision a FaultyNetwork takes from a plan
// is a pure hash of (plan.seed, arc, round, record-index) — no RNG state,
// no iteration order — so a fixed plan produces bit-identical results,
// delivery traces, and fault counters at every worker-pool width and
// shard count (tested in tests/fault_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "fault/fault_spec.hpp"
#include "graph/graph.hpp"

namespace arbods::fault {

/// Crash-stop kill: from `round` on, `node` sends nothing and receives
/// nothing (in-flight records to it are suppressed on arrival).
struct KillEvent {
  NodeId node = 0;
  std::int64_t round = 0;

  friend bool operator==(const KillEvent&, const KillEvent&) = default;
};

struct FaultPlan {
  /// Seed of every fault decision hash.
  std::uint64_t seed = FaultSpec{}.fault_seed;
  /// Uniform per-record probabilities (see FaultSpec for semantics).
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  int max_delay_rounds = 0;
  double reorder_prob = 0.0;
  /// Per-arc overrides, indexed by receiver-side CSR arc; empty = use the
  /// uniform probability for every arc. When non-empty the size must be
  /// the arc count (2m) of the graph the FaultyNetwork runs on.
  std::vector<double> arc_drop;
  std::vector<double> arc_duplicate;
  /// Explicit kill schedule (a node listed twice dies at the earlier
  /// round).
  std::vector<KillEvent> kills;

  bool enabled() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 ||
           (delay_prob > 0.0 && max_delay_rounds > 0) || reorder_prob > 0.0 ||
           !arc_drop.empty() || !arc_duplicate.empty() || !kills.empty();
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Elaborates a FaultSpec into a plan for `g`: uniform probabilities are
/// copied, and each node joins the kill schedule (at spec.kill_round)
/// with independent probability kill_prob, decided by a pure hash of
/// (fault_seed, node). Throws CheckError on out-of-range probabilities.
FaultPlan make_fault_plan(const Graph& g, const FaultSpec& spec);

/// Validates `plan` against `g` (probabilities in [0, 1], per-arc vector
/// sizes, kill targets in range); throws CheckError on violation.
void validate_fault_plan(const Graph& g, const FaultPlan& plan);

/// Compact human-readable summary of a spec ("none" when inert, else
/// e.g. "drop=0.1,dup=0.05,delay=0.2x4,reorder=0.1,kill=0.01@1") —
/// the default fault-level label in scenario rows.
std::string fault_label(const FaultSpec& spec);

/// Survivor mask of the kill schedule `spec` induces on `g`: mask[v] is
/// nonzero iff v is never killed. A pure function of (g, spec) — the
/// same schedule a FaultyNetwork over that pair samples — so the
/// surviving-subgraph oracle can recompute who survives without
/// replaying the run.
std::vector<std::uint8_t> alive_mask(const Graph& g, const FaultSpec& spec);

namespace detail {

/// Base hash of one record's fault decisions: a mix64 chain over
/// (seed, arc, round, record-index). Successive draws for the same
/// record re-mix the running value (see FaultyNetwork::inject_record).
inline std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t arc,
                                std::int64_t round, std::uint32_t index) {
  std::uint64_t h = mix64(seed ^ 0x9e3779b97f4a7c15ULL);
  h = mix64(h ^ arc);
  h = mix64(h ^ static_cast<std::uint64_t>(round));
  h = mix64(h ^ index);
  return h;
}

/// Maps a draw to [0, 1) with 53 uniform mantissa bits.
inline double unit_real(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace detail

}  // namespace arbods::fault
