// FaultSpec: the configuration-level description of an adversarial fault
// model, embedded in CongestConfig so every harness layer (registry,
// scenario runner, bench binaries) can request a faulty run without new
// plumbing. A default-constructed spec is inert: fault::make_network
// returns the ordinary (sharded or plain) simulator for it, and a
// FaultyNetwork built over an all-zero spec is bit-identical to running
// without the decorator.
//
// The spec is deliberately a flat value type (no vectors) so
// CongestConfig keeps its defaulted operator== — NetworkPool keys pooled
// Networks on config equality. Per-arc probability overrides and explicit
// kill schedules live in fault::FaultPlan (fault_plan.hpp), which
// make_fault_plan derives from this spec or a caller builds directly.
#pragma once

#include <cstdint>

namespace arbods::fault {

struct FaultSpec {
  /// Probability a sent record is silently discarded (still counted in
  /// messages/total_bits: the sender paid for the slot).
  double drop_prob = 0.0;
  /// Probability a surviving record is delivered twice; the extra copy
  /// draws its own delay and counts in `duplicated`, not in `messages`.
  double duplicate_prob = 0.0;
  /// Probability a copy is held back, paired with the bound below.
  double delay_prob = 0.0;
  /// Maximum extra rounds a delayed copy is held (delay is uniform on
  /// [1, max_delay_rounds]); 0 disables delays regardless of delay_prob.
  int max_delay_rounds = 0;
  /// Probability a copy is diverted to a uniformly random lane of the
  /// SAME receiver — it arrives at a different inbox position with its
  /// true sender id intact, so sender-order assumptions break while the
  /// message content stays honest.
  double reorder_prob = 0.0;
  /// Per-node probability of being scheduled for a crash-stop kill.
  double kill_prob = 0.0;
  /// Round at which every killed node dies: from that round on it sends
  /// nothing and receives nothing (records already in flight to it are
  /// suppressed on arrival and counted in `killed`).
  std::int64_t kill_round = 1;
  /// Seed for every fault decision; independent of CongestConfig::seed so
  /// the same protocol randomness can be replayed under different fault
  /// draws and vice versa.
  std::uint64_t fault_seed = 0xfa17'5eedULL;

  /// Whether this spec asks for any fault at all (the make_network
  /// dispatch test: false = no decorator, zero overhead).
  bool enabled() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 ||
           (delay_prob > 0.0 && max_delay_rounds > 0) || reorder_prob > 0.0 ||
           kill_prob > 0.0;
  }

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

}  // namespace arbods::fault
