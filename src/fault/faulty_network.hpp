// FaultyNetwork: an adversarial decorator over the CONGEST simulator.
//
// The decorator derives from Network through the same facade seams
// ShardedNetwork uses, and owns an *inner* delivery engine — a plain
// Network in shard-member mode (full node range, scratch sized for the
// decorator's pool) when config.shards <= 1, a ShardedNetwork otherwise.
// Algorithms, ProtocolRunner phases, and the scenario runner drive the
// decorator through the unchanged Network surface; inboxes, RNG streams,
// and timers delegate to the inner engine, while every send/broadcast is
// intercepted:
//
//   1. the record is encoded once (CONGEST cap check and bit accounting
//      exactly as on the clean path — the sender paid for the slot even
//      if the adversary eats it);
//   2. its fault decisions are drawn from a pure hash of
//      (plan.seed, receiver-side arc, round, per-arc record index) —
//      dead sender -> suppress (killed), drop -> discard (dropped),
//      duplicate -> a second copy with independent draws (duplicated),
//      bounded delay d in [1, max_delay_rounds] (delayed), reorder ->
//      divert to a uniformly random lane of the same receiver (the
//      record keeps its true sender id, so only its inbox position —
//      i.e. the sender-sorted arrival order — changes);
//   3. an undisturbed copy (d == 0, original lane) deposits straight
//      into the inner engine through the deposit_wire seam — the same
//      single-writer lane path as a clean send, from the same worker;
//      disturbed copies park in the calling worker's timer-wheel-backed
//      holding buffer and are injected at the flip of their arrival
//      round, after sorting by (lane, send round, origin arc, record
//      index, copy) — a unique total order, so the arena bytes are
//      identical at every pool width.
//
// Determinism contract: a fixed FaultPlan yields bit-identical results,
// traces, and fault counters at every thread width and shard count, and
// a zero-fault plan is bit-identical to running without the decorator
// (every record then takes the direct path in send order). Tested in
// tests/fault_test.cpp against every registry solver.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "fault/fault_plan.hpp"

namespace arbods::fault {

class FaultyNetwork final : public Network {
 public:
  /// Elaborates config.fault via make_fault_plan.
  FaultyNetwork(const WeightedGraph& wg, CongestConfig config);
  /// Runs a caller-built plan (validated against the graph).
  FaultyNetwork(const WeightedGraph& wg, CongestConfig config, FaultPlan plan);
  ~FaultyNetwork() override;

  const FaultPlan& plan() const { return plan_; }
  /// The inner delivery engine (diagnostics/tests).
  const Network& inner() const { return *inner_; }

  /// True iff v is NOT in the kill schedule. Note the schedule view:
  /// a node with a future kill_round still counts as killed here —
  /// repair and the surviving-subgraph oracle reason about who survives
  /// the whole plan, which is a pure function of (graph, spec) and so
  /// recomputable by any checker without replaying the run.
  bool alive(NodeId v) const {
    return kill_round_[v] == std::numeric_limits<std::int64_t>::max();
  }
  /// The scheduled kill set, sorted ascending (the complement of alive()).
  std::vector<NodeId> killed_nodes() const;

  // --- Network seams ---
  Rng& rng(NodeId v) override { return inner_->rng(v); }
  void send(NodeId from, NodeId to, const Message& m) override;
  void broadcast(NodeId from, const Message& m) override;
  InboxView inbox(NodeId v) const override { return inner_->inbox(v); }
  void arm_at(NodeId v, std::int64_t round) override {
    inner_->arm_at(v, round);
  }
  std::size_t arena_words() const override { return inner_->arena_words(); }
  void reset_for_reuse() override;
  /// Unwraps to the inner sharded engine (nullptr when the decorator
  /// runs over a plain Network), so phase-boundary auto-replanning and
  /// harness reporting compose with fault injection. Note the fault
  /// path delivers via deposit_wire, which bypasses the facade's send
  /// accounting: under this decorator the traffic profile stays empty
  /// and measured_plan() reduces to the structural refiner.
  shard::ShardedNetwork* sharded_core() override {
    return inner_->sharded_core();
  }

 private:
  /// One disturbed record parked until its arrival round. The sort key
  /// (lane, send_round, arc, seq, copy) is unique per record — `arc` is
  /// the origin arc, so two records diverted into the same lane with
  /// equal sequence numbers still order deterministically.
  struct HeldRec {
    std::uint32_t lane;   // delivery lane (after any diversion)
    std::uint32_t begin;  // word range in the bucket's `words`
    std::uint32_t end;
    std::uint32_t arc;    // origin receiver-side arc
    std::uint32_t seq;    // per-(arc, round) record index
    std::int64_t send_round;
    std::uint8_t copy;    // 0 = original, 1 = duplicate
  };
  /// Ring bucket of one worker's holding wheel, keyed by arrival round.
  /// The ring size exceeds the largest possible delay, so at most one
  /// live arrival round ever maps to a bucket.
  struct HoldBucket {
    std::int64_t round = -1;
    std::vector<std::uint64_t> words;
    std::vector<HeldRec> recs;
  };
  struct HoldWheel {
    std::vector<HoldBucket> ring;  // size is a power of two
    std::size_t words_highwater = 0;
    std::size_t recs_highwater = 0;
  };

  void flip_buffers() override;
  void clear_all_lanes() override;
  void reseed_node_rngs() override;
  void rebuild_active_set() override;
  void shrink_scratch() override;
  std::int64_t pending_spill_records() const override;

  void init_from_plan(const WeightedGraph& wg, const CongestConfig& config);
  /// The per-record intercept described in the header comment.
  void inject_record(std::size_t w, NodeId from, std::uint32_t glane,
                     std::size_t nwords, int bits);
  void hold(std::size_t w, std::int64_t arrival, const HeldRec& rec,
            const std::uint64_t* words, std::size_t nwords);
  bool node_dead(NodeId v, std::int64_t at_round) const {
    return kill_round_[v] <= at_round;
  }

  FaultPlan plan_;
  std::unique_ptr<Network> inner_;
  /// Round each node dies at (INT64_MAX = never), from plan_.kills.
  std::vector<std::int64_t> kill_round_;
  bool any_kills_ = false;
  /// Per-arc record index within the current round: seq_idx_[arc] counts
  /// records arc has carried in the round seq_round_[arc]. Each arc has a
  /// single writer (its tail), so the counters are race-free; the pair
  /// resets lazily per round and fully at phase boundaries.
  std::vector<std::int64_t> seq_round_;
  std::vector<std::uint32_t> seq_idx_;
  /// Per-worker holding wheels for disturbed records.
  std::vector<HoldWheel> wheels_;
  /// Flip-time drain scratch: one entry per record due this arrival
  /// round, sorted into the unique delivery order.
  struct DrainRef {
    const HoldBucket* bucket;
    const HeldRec* rec;
  };
  std::vector<DrainRef> drain_;
};

/// The construction point the harness layers use: dispatches on
/// config.fault.enabled() — a FaultyNetwork when faults are requested,
/// otherwise shard::make_network's plain/sharded simulator. Callers hold
/// the result as Network& and never learn which they got.
std::unique_ptr<Network> make_network(const WeightedGraph& wg,
                                      const CongestConfig& config);

}  // namespace arbods::fault
