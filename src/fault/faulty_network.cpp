#include "fault/faulty_network.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <tuple>

#include "common/check.hpp"
#include "common/shrink.hpp"
#include "shard/sharded_network.hpp"

namespace arbods::fault {

using arbods::detail::maybe_shrink;
using detail::fault_hash;
using detail::unit_real;

FaultyNetwork::FaultyNetwork(const WeightedGraph& wg, CongestConfig config)
    : Network(wg, config, FacadeInit{}),
      plan_(make_fault_plan(wg.graph(), config.fault)) {
  init_from_plan(wg, config);
}

FaultyNetwork::FaultyNetwork(const WeightedGraph& wg, CongestConfig config,
                             FaultPlan plan)
    : Network(wg, config, FacadeInit{}), plan_(std::move(plan)) {
  init_from_plan(wg, config);
}

FaultyNetwork::~FaultyNetwork() = default;

void FaultyNetwork::init_from_plan(const WeightedGraph& wg,
                                   const CongestConfig& config) {
  validate_fault_plan(wg.graph(), plan_);
  const NodeId n = wg.graph().num_nodes();
  const std::size_t arcs = mirror_.size();
  seq_round_.assign(arcs, -1);
  seq_idx_.assign(arcs, 0);
  kill_round_.assign(n, std::numeric_limits<std::int64_t>::max());
  for (const KillEvent& k : plan_.kills) {
    kill_round_[k.node] = std::min(kill_round_[k.node], k.round);
    any_kills_ = true;
  }
  // Ring size strictly exceeds the largest delay + the one-round delivery
  // offset, so live arrival rounds map to distinct buckets.
  const std::size_t ring = std::bit_ceil(
      static_cast<std::size_t>(std::max(plan_.max_delay_rounds, 0)) + 2);
  wheels_.resize(worker_stats_.size());
  for (HoldWheel& wheel : wheels_) wheel.ring.resize(ring);

  // The inner delivery engine. Unsharded: a plain Network in shard-member
  // mode over the full node range — it owns arenas, RNG streams, timers,
  // and active-set state for every node, sizes its per-worker scratch for
  // the decorator's pool (whose threads execute the deposits), and owns
  // no pool of its own. Sharded: a full ShardedNetwork facade; its pool
  // width matches the decorator's (both derive from config.threads), so
  // worker slots pass through the deposit seam unchanged.
  CongestConfig inner_cfg = config;
  inner_cfg.fault = FaultSpec{};  // the decorator owns the faults
  // One recorder per decorator stack: the decorator (FacadeInit above)
  // owns it; the inner engine records into the same rings through the
  // shared sink installed below.
  inner_cfg.trace.enabled = false;
  const int k = std::clamp(config.shards, 1,
                           std::max<int>(1, static_cast<int>(n)));
  if (k <= 1) {
    inner_.reset(new Network(
        wg, inner_cfg,
        SliceInit{0, n, static_cast<int>(worker_stats_.size())}));
  } else {
    inner_cfg.shards = k;
    inner_ = std::make_unique<shard::ShardedNetwork>(wg, inner_cfg);
  }
  inner_->tracer_ = tracer_;
}

std::vector<NodeId> FaultyNetwork::killed_nodes() const {
  std::vector<NodeId> killed;
  for (NodeId v = 0; v < static_cast<NodeId>(kill_round_.size()); ++v)
    if (!alive(v)) killed.push_back(v);
  return killed;
}

void FaultyNetwork::send(NodeId from, NodeId to, const Message& m) {
  const std::size_t arc = resolve_arc(from, to);
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, from, &bits);
  inject_record(w, from, mirror_[arc], need, bits);
}

void FaultyNetwork::broadcast(NodeId from, const Message& m) {
  const auto nb = graph().neighbors(from);
  if (nb.empty()) return;
  // Encode (and cap-check) once; every fan-out record then draws its own
  // fault decisions — per-arc accounting sums to exactly the clean
  // broadcast's folded slot update.
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, from, &bits);
  const std::size_t begin = offsets_[from];
  for (std::size_t i = 0; i < nb.size(); ++i)
    inject_record(w, from, mirror_[begin + i], need, bits);
}

void FaultyNetwork::inject_record(std::size_t w, NodeId from,
                                  std::uint32_t glane, std::size_t nwords,
                                  int bits) {
  WorkerStats& ws = worker_stats_[w];
  if (any_kills_ && node_dead(from, round_)) {
    // A crashed node sends nothing; the record never existed on the wire.
    ++ws.killed;
    return;
  }
  ++ws.messages;
  ws.total_bits += bits;
  ws.max_message_bits = std::max(ws.max_message_bits, bits);

  // Per-(arc, round) record index: together with the arc and round it
  // names this record uniquely, and the arc's tail is its only writer.
  if (seq_round_[glane] != round_) {
    seq_round_[glane] = round_;
    seq_idx_[glane] = 0;
  }
  const std::uint32_t seq = seq_idx_[glane]++;
  std::uint64_t h = fault_hash(plan_.seed, glane, round_, seq);
  auto draw = [&h]() {
    h = mix64(h + 0x9e3779b97f4a7c15ULL);
    return h;
  };

  const double p_drop =
      plan_.arc_drop.empty() ? plan_.drop_prob : plan_.arc_drop[glane];
  if (p_drop > 0.0 && unit_real(draw()) < p_drop) {
    ++ws.dropped;  // the sender still paid: messages/bits stay counted
    return;
  }
  const double p_dup = plan_.arc_duplicate.empty() ? plan_.duplicate_prob
                                                   : plan_.arc_duplicate[glane];
  const bool duplicate = p_dup > 0.0 && unit_real(draw()) < p_dup;
  const NodeId receiver = lane_receiver_[glane];
  const std::uint64_t* words = scratch_[w].data();

  const int copies = duplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    int d = 0;
    if (plan_.delay_prob > 0 && plan_.max_delay_rounds > 0 &&
        unit_real(draw()) < plan_.delay_prob)
      d = 1 + static_cast<int>(
                  draw() % static_cast<std::uint64_t>(plan_.max_delay_rounds));
    std::uint32_t lane = glane;
    if (plan_.reorder_prob > 0 && unit_real(draw()) < plan_.reorder_prob) {
      // Divert to a uniformly random lane of the SAME receiver: the true
      // sender id rides inside the record, so only the inbox position
      // (the sender-sorted arrival order) changes.
      const std::size_t deg = offsets_[receiver + 1] - offsets_[receiver];
      lane = static_cast<std::uint32_t>(offsets_[receiver] + draw() % deg);
    }
    const std::int64_t arrival = round_ + 1 + d;
    if (any_kills_ && node_dead(receiver, arrival)) {
      ++ws.killed;  // arrives after the receiver crashed: suppressed
      continue;
    }
    if (c == 1) ++ws.duplicated;
    if (d > 0) ++ws.delayed;
    if (d == 0 && lane == glane) {
      // Undisturbed: straight into the inner engine from this worker,
      // exactly the clean delivery path (bit-identical for a zero plan).
      inner_->deposit_wire(glane, words, nwords);
    } else {
      hold(w, arrival,
           HeldRec{lane, 0, 0, glane, seq, round_,
                   static_cast<std::uint8_t>(c)},
           words, nwords);
    }
  }
}

void FaultyNetwork::hold(std::size_t w, std::int64_t arrival,
                         const HeldRec& rec, const std::uint64_t* words,
                         std::size_t nwords) {
  HoldWheel& wheel = wheels_[w];
  HoldBucket& bucket =
      wheel.ring[static_cast<std::size_t>(arrival) & (wheel.ring.size() - 1)];
  if (bucket.round != arrival) {
    // Stale (drained or phase-cleared) bucket: recycle. A live collision
    // is impossible — the ring is wider than the delay bound.
    ARBODS_DCHECK(bucket.round <= round_);
    bucket.round = arrival;
    bucket.words.clear();
    bucket.recs.clear();
  }
  const std::uint32_t b = static_cast<std::uint32_t>(bucket.words.size());
  bucket.words.insert(bucket.words.end(), words, words + nwords);
  HeldRec held = rec;
  held.begin = b;
  held.end = b + static_cast<std::uint32_t>(nwords);
  bucket.recs.push_back(held);
}

void FaultyNetwork::flip_buffers() {
  // Inject every held record due next round, in a canonical order that no
  // per-worker bucketing can perturb: the sort key is unique per record,
  // so the arena bytes after the drain are a pure function of the
  // algorithm + plan. Held records land after this round's direct
  // deposits within a lane — also width-independent, since direct
  // deposits have the lane's single writer.
  const std::int64_t arrival = round_ + 1;
  drain_.clear();
  for (HoldWheel& wheel : wheels_) {
    HoldBucket& bucket = wheel.ring[static_cast<std::size_t>(arrival) &
                                    (wheel.ring.size() - 1)];
    if (bucket.round != arrival) continue;
    for (const HeldRec& rec : bucket.recs) drain_.push_back({&bucket, &rec});
  }
  if (!drain_.empty()) {
    std::sort(drain_.begin(), drain_.end(),
              [](const DrainRef& a, const DrainRef& b) {
                return std::tie(a.rec->lane, a.rec->send_round, a.rec->arc,
                                a.rec->seq, a.rec->copy) <
                       std::tie(b.rec->lane, b.rec->send_round, b.rec->arc,
                                b.rec->seq, b.rec->copy);
              });
    for (const DrainRef& ref : drain_)
      inner_->deposit_wire(ref.rec->lane,
                           ref.bucket->words.data() + ref.rec->begin,
                           ref.rec->end - ref.rec->begin);
    drain_.clear();
    for (HoldWheel& wheel : wheels_) {
      HoldBucket& bucket = wheel.ring[static_cast<std::size_t>(arrival) &
                                      (wheel.ring.size() - 1)];
      if (bucket.round != arrival) continue;
      wheel.words_highwater =
          std::max(wheel.words_highwater, bucket.words.size());
      wheel.recs_highwater = std::max(wheel.recs_highwater, bucket.recs.size());
      bucket.round = -1;
      bucket.words.clear();
      bucket.recs.clear();
    }
  }
  // The decorator's flip time lands in the outer run_phase's flip
  // accounting; the inner facade's per-destination merge time accrues in
  // its OWN stats_.timing, so harvest the delta into ours — the
  // decorator's stats are the ones the run reports.
  const double merge_before = inner_->stats_.timing.merge_seconds;
  inner_->flip_buffers();
  stats_.timing.merge_seconds +=
      inner_->stats_.timing.merge_seconds - merge_before;
  inner_->round_ = round_ + 1;  // lockstep: the caller advances ours next
  active_dirty_ = true;
}

std::int64_t FaultyNetwork::pending_spill_records() const {
  return inner_->pending_spill_records();
}

void FaultyNetwork::clear_all_lanes() {
  // Phase/reuse boundary: drop everything in flight (undelivered held
  // records included — statistics counted them at send time, exactly as
  // the clean simulator drops undelivered out-arena records).
  inner_->round_ = round_;
  inner_->clear_all_lanes();
  for (HoldWheel& wheel : wheels_) {
    for (HoldBucket& bucket : wheel.ring) {
      wheel.words_highwater =
          std::max(wheel.words_highwater, bucket.words.size());
      wheel.recs_highwater = std::max(wheel.recs_highwater, bucket.recs.size());
      bucket.round = -1;
      bucket.words.clear();
      bucket.recs.clear();
    }
  }
  std::fill(seq_round_.begin(), seq_round_.end(), -1);
  active_list_.clear();
  active_dirty_ = false;
}

void FaultyNetwork::reseed_node_rngs() {
  if (rng_streams_fresh_) return;
  inner_->rng_streams_fresh_ = false;  // the decorator tracks freshness
  inner_->reseed_node_rngs();
  rng_streams_fresh_ = true;
}

void FaultyNetwork::rebuild_active_set() {
  active_dirty_ = false;
  if (inner_->active_dirty_) inner_->rebuild_active_set();
  active_list_ = inner_->active_list_;
  active_highwater_ = std::max(active_highwater_, active_list_.size());
}

void FaultyNetwork::shrink_scratch() {
  inner_->shrink_scratch();
  for (HoldWheel& wheel : wheels_) {
    for (HoldBucket& bucket : wheel.ring) {
      maybe_shrink(bucket.words, wheel.words_highwater);
      maybe_shrink(bucket.recs, wheel.recs_highwater);
    }
    wheel.words_highwater = 0;
    wheel.recs_highwater = 0;
  }
  maybe_shrink(drain_, 0);
  maybe_shrink(active_list_, active_highwater_);
}

void FaultyNetwork::reset_for_reuse() {
  inner_->reset_for_reuse();
  // inner_ restored its image-fresh RNG streams; record that so the
  // base-class reset (whose virtual reseed call lands on our override)
  // does not pay a second restore.
  rng_streams_fresh_ = true;
  Network::reset_for_reuse();
}

std::unique_ptr<Network> make_network(const WeightedGraph& wg,
                                      const CongestConfig& config) {
  if (!config.fault.enabled()) return shard::make_network(wg, config);
  return std::make_unique<FaultyNetwork>(wg, config);
}

}  // namespace arbods::fault
