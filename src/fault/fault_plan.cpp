#include "fault/fault_plan.hpp"

#include <sstream>

#include "common/check.hpp"

namespace arbods::fault {

namespace {

void check_prob(double p, const char* name) {
  ARBODS_CHECK_MSG(p >= 0.0 && p <= 1.0,
                   "fault probability " << name << " = " << p
                                        << " outside [0, 1]");
}

}  // namespace

FaultPlan make_fault_plan(const Graph& g, const FaultSpec& spec) {
  check_prob(spec.drop_prob, "drop_prob");
  check_prob(spec.duplicate_prob, "duplicate_prob");
  check_prob(spec.delay_prob, "delay_prob");
  check_prob(spec.reorder_prob, "reorder_prob");
  check_prob(spec.kill_prob, "kill_prob");
  ARBODS_CHECK_MSG(spec.max_delay_rounds >= 0,
                   "max_delay_rounds must be >= 0, got "
                       << spec.max_delay_rounds);
  ARBODS_CHECK_MSG(spec.kill_round >= 1,
                   "kill_round must be >= 1 (a node can die no earlier than "
                   "the first process_round), got "
                       << spec.kill_round);
  FaultPlan plan;
  plan.seed = spec.fault_seed;
  plan.drop_prob = spec.drop_prob;
  plan.duplicate_prob = spec.duplicate_prob;
  plan.delay_prob = spec.delay_prob;
  plan.max_delay_rounds = spec.max_delay_rounds;
  plan.reorder_prob = spec.reorder_prob;
  if (spec.kill_prob > 0.0) {
    const NodeId n = g.num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      // Pure hash per node (arc slot 0 is never a node decision: the kill
      // domain is separated from the record domain by the ~seed flip).
      const std::uint64_t h = detail::fault_hash(~plan.seed, v, 0, 0);
      if (detail::unit_real(h) < spec.kill_prob)
        plan.kills.push_back({v, spec.kill_round});
    }
  }
  return plan;
}

void validate_fault_plan(const Graph& g, const FaultPlan& plan) {
  check_prob(plan.drop_prob, "drop_prob");
  check_prob(plan.duplicate_prob, "duplicate_prob");
  check_prob(plan.delay_prob, "delay_prob");
  check_prob(plan.reorder_prob, "reorder_prob");
  ARBODS_CHECK_MSG(plan.max_delay_rounds >= 0,
                   "max_delay_rounds must be >= 0, got "
                       << plan.max_delay_rounds);
  const std::size_t arcs = static_cast<std::size_t>(2) * g.num_edges();
  ARBODS_CHECK_MSG(plan.arc_drop.empty() || plan.arc_drop.size() == arcs,
                   "arc_drop has " << plan.arc_drop.size()
                                   << " entries; graph has " << arcs
                                   << " arcs");
  ARBODS_CHECK_MSG(
      plan.arc_duplicate.empty() || plan.arc_duplicate.size() == arcs,
      "arc_duplicate has " << plan.arc_duplicate.size()
                           << " entries; graph has " << arcs << " arcs");
  for (const double p : plan.arc_drop) check_prob(p, "arc_drop[]");
  for (const double p : plan.arc_duplicate) check_prob(p, "arc_duplicate[]");
  for (const KillEvent& k : plan.kills) {
    ARBODS_CHECK_MSG(k.node < g.num_nodes(),
                     "kill targets node " << k.node << " of an "
                                          << g.num_nodes() << "-node graph");
    ARBODS_CHECK_MSG(k.round >= 1,
                     "kill of node " << k.node << " scheduled for round "
                                     << k.round << "; kills start at round 1");
  }
}

std::vector<std::uint8_t> alive_mask(const Graph& g, const FaultSpec& spec) {
  std::vector<std::uint8_t> alive(g.num_nodes(), 1);
  const FaultPlan plan = make_fault_plan(g, spec);
  for (const KillEvent& k : plan.kills) alive[k.node] = 0;
  return alive;
}

std::string fault_label(const FaultSpec& spec) {
  if (!spec.enabled()) return "none";
  std::ostringstream os;
  const char* sep = "";
  if (spec.drop_prob > 0.0) {
    os << sep << "drop=" << spec.drop_prob;
    sep = ",";
  }
  if (spec.duplicate_prob > 0.0) {
    os << sep << "dup=" << spec.duplicate_prob;
    sep = ",";
  }
  if (spec.delay_prob > 0.0 && spec.max_delay_rounds > 0) {
    os << sep << "delay=" << spec.delay_prob << "x" << spec.max_delay_rounds;
    sep = ",";
  }
  if (spec.reorder_prob > 0.0) {
    os << sep << "reorder=" << spec.reorder_prob;
    sep = ",";
  }
  if (spec.kill_prob > 0.0) {
    os << sep << "kill=" << spec.kill_prob << "@" << spec.kill_round;
    sep = ",";
  }
  return os.str();
}

}  // namespace arbods::fault
