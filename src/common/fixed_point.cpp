#include "common/fixed_point.hpp"

#include <cmath>

#include "common/check.hpp"

namespace arbods {

FixedPointCodec::FixedPointCodec(int exp_bits, int mant_bits)
    : exp_bits_(exp_bits), mant_bits_(mant_bits) {
  ARBODS_CHECK(exp_bits >= 2 && exp_bits <= 11);
  ARBODS_CHECK(mant_bits >= 1 && mant_bits <= 52);
  bias_ = (1 << (exp_bits - 1)) - 1;
}

std::uint64_t FixedPointCodec::encode(double v) const {
  ARBODS_CHECK_MSG(std::isfinite(v), "cannot encode non-finite value " << v);
  std::uint64_t sign = v < 0.0 ? 1 : 0;
  double a = std::fabs(v);
  if (a == 0.0) return sign << (exp_bits_ + mant_bits_);

  int e = 0;
  double frac = std::frexp(a, &e);  // a = frac * 2^e, frac in [0.5, 1)
  // Re-normalize to mantissa in [1, 2): a = m * 2^(e-1).
  double m = frac * 2.0;
  int biased = (e - 1) + bias_;
  const int max_exp = (1 << exp_bits_) - 1;
  if (biased < 1) {  // underflow -> flush to zero
    return sign << (exp_bits_ + mant_bits_);
  }
  std::uint64_t mant =
      static_cast<std::uint64_t>(std::llround((m - 1.0) * std::ldexp(1.0, mant_bits_)));
  if (mant >= (std::uint64_t{1} << mant_bits_)) {  // rounding carried into exponent
    mant = 0;
    ++biased;
  }
  if (biased > max_exp) {  // overflow -> saturate to the largest finite value
    biased = max_exp;
    mant = (std::uint64_t{1} << mant_bits_) - 1;
  }
  return (sign << (exp_bits_ + mant_bits_)) |
         (static_cast<std::uint64_t>(biased) << mant_bits_) | mant;
}

double FixedPointCodec::decode(std::uint64_t bits) const {
  const std::uint64_t mant_mask = (std::uint64_t{1} << mant_bits_) - 1;
  const std::uint64_t exp_mask = (std::uint64_t{1} << exp_bits_) - 1;
  std::uint64_t mant = bits & mant_mask;
  std::uint64_t biased = (bits >> mant_bits_) & exp_mask;
  std::uint64_t sign = (bits >> (mant_bits_ + exp_bits_)) & 1;
  if (biased == 0 && mant == 0) return sign ? -0.0 : 0.0;
  double m = 1.0 + static_cast<double>(mant) * std::ldexp(1.0, -mant_bits_);
  double a = std::ldexp(m, static_cast<int>(biased) - bias_);
  return sign ? -a : a;
}

double FixedPointCodec::relative_error_bound() const {
  return std::ldexp(1.0, -mant_bits_);
}

const FixedPointCodec& default_value_codec() {
  static const FixedPointCodec codec(6, 25);
  return codec;
}

}  // namespace arbods
