// Basic scalar types shared across the library.
//
// The whole code base indexes nodes with a dense 32-bit id in [0, n).
// Weights are 64-bit integers; the paper assumes positive integer weights
// bounded by n^c for a constant c, and all our generators respect that.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace arbods {

/// Dense node identifier in [0, n).
using NodeId = std::uint32_t;

/// Node weight. Positive integer (the unweighted problem uses weight 1).
using Weight = std::int64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "unknown / infinite weight".
inline constexpr Weight kInfiniteWeight = std::numeric_limits<Weight>::max();

/// An undirected edge as an (unordered) pair of endpoints.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A set of nodes represented as a sorted vector of ids.
using NodeSet = std::vector<NodeId>;

/// Per-node boolean flags, one byte per node. Used instead of
/// std::vector<bool> wherever distinct nodes' flags are written
/// concurrently from the simulator's worker pool (vector<bool> packs
/// eight nodes into one byte, so per-element writes would race).
using NodeFlags = std::vector<std::uint8_t>;

}  // namespace arbods
