// Minimal leveled logger.
//
// Library code logs sparingly (algorithms are silent by default); benches
// and examples raise the level for progress reporting.
#pragma once

#include <sstream>
#include <string>

namespace arbods {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace arbods

#define ARBODS_LOG(level) ::arbods::detail::LogLine(::arbods::LogLevel::level)
