// Post-run shrink policy for per-worker scratch vectors: a run that once
// touched millions of entries must not pin that capacity for the owning
// object's lifetime. Contents are preserved; only excess capacity (4x
// past twice the observed high-water mark, and past a 1024-entry floor)
// is released. Shared by the Network's scratch buffers and the sharded
// facade's relay segments so the retention policy cannot diverge.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace arbods::detail {

template <typename T>
void maybe_shrink(std::vector<T>& v, std::size_t used) {
  const std::size_t target = std::max<std::size_t>(2 * used, 64);
  if (v.capacity() > 1024 && v.capacity() / 4 > target) {
    std::vector<T> tmp;
    tmp.reserve(std::max(target, v.size()));
    tmp.assign(v.begin(), v.end());
    v.swap(tmp);
  }
}

}  // namespace arbods::detail
