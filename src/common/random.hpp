// Deterministic, seedable pseudo-random number generation.
//
// All randomized algorithms in this library take an explicit 64-bit seed and
// derive per-node sub-streams with split(); runs are exactly reproducible
// across platforms (we avoid std::uniform_*_distribution, whose output is
// implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace arbods {

/// SplitMix64: used for seeding and cheap hashing of stream ids.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of a value (one splitmix64 step from `x`).
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** by Blackman & Vigna. Fast, high-quality, 256-bit state.
class Rng {
 public:
  /// Seeds the four state words via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Unbiased (rejection sampling).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bernoulli(double p);

  /// Derives an independent generator for stream `stream_id`.
  /// Deterministic function of (this seed, stream_id); does not advance *this.
  Rng split(std::uint64_t stream_id) const;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n) (k <= n).
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

 private:
  std::uint64_t seed_ = 0;  // retained so split() is a pure function of seed
  std::uint64_t s_[4] = {};
};

}  // namespace arbods
