// Lightweight runtime checking.
//
// ARBODS_CHECK is always on (it guards API contracts and invariants whose
// violation would silently corrupt results); ARBODS_DCHECK compiles out in
// NDEBUG builds and is for hot-loop assertions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace arbods {

/// Thrown when a checked invariant or precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace arbods

#define ARBODS_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::arbods::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define ARBODS_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream arbods_os_;                                    \
      arbods_os_ << msg;                                                \
      ::arbods::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                     arbods_os_.str());                 \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define ARBODS_DCHECK(expr) ((void)0)
#else
#define ARBODS_DCHECK(expr) ARBODS_CHECK(expr)
#endif
