// Quantized floating-point codec for CONGEST messages.
//
// The paper's packing values are reals of the form w * (1+eps)^k / (Delta+1)
// with integer w <= n^c; they fit in O(log n) bits. To make that concrete in
// the simulator, real-valued message fields are encoded as
// (sign 1 bit, exponent `exp_bits`, mantissa `mant_bits`) — a miniature
// custom float. Encoding is value-lossy (round to nearest) but the relative
// error is 2^-mant_bits, far below the (1+eps) granularity the algorithms
// care about; tests verify the round-trip error bound.
#pragma once

#include <cstdint>

namespace arbods {

/// Codec for a fixed (exp_bits, mant_bits) layout.
class FixedPointCodec {
 public:
  /// exp_bits in [2, 11], mant_bits in [1, 52].
  FixedPointCodec(int exp_bits, int mant_bits);

  /// Total encoded width: 1 + exp_bits + mant_bits.
  int bit_width() const { return 1 + exp_bits_ + mant_bits_; }

  /// Encodes v (round-to-nearest; saturates to the representable range;
  /// non-finite inputs are rejected with CheckError).
  std::uint64_t encode(double v) const;

  /// Decodes a value previously produced by encode().
  double decode(std::uint64_t bits) const;

  /// Upper bound on relative round-trip error for normal values.
  double relative_error_bound() const;

 private:
  int exp_bits_;
  int mant_bits_;
  int bias_;
};

/// The default codec used for packing values in messages: 6 exponent bits
/// (range ~2^-31 .. 2^32) and 25 mantissa bits => 32-bit fields.
const FixedPointCodec& default_value_codec();

}  // namespace arbods
