#include "common/random.hpp"

#include <algorithm>
#include <unordered_set>

namespace arbods {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro256** must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  ARBODS_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  ARBODS_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split(std::uint64_t stream_id) const {
  return Rng(mix64(seed_ ^ mix64(stream_id ^ 0xd1b54a32d192ed03ULL)));
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  ARBODS_CHECK(k <= n);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k > n / 2) {
    // Dense case: partial Fisher-Yates over an explicit index vector.
    std::vector<std::uint64_t> idx(n);
    for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      std::uint64_t j = i + next_below(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {
    // Sparse case: rejection sampling into a hash set.
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(static_cast<std::size_t>(k * 2));
    while (out.size() < k) {
      std::uint64_t x = next_below(n);
      if (seen.insert(x).second) out.push_back(x);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace arbods
