// Aligned-markdown table printer for the experiment harness.
//
// Every bench binary emits its results through this so EXPERIMENTS.md rows
// can be pasted verbatim from bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace arbods {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience formatters.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders as a GitHub-flavored markdown table with aligned columns.
  std::string to_markdown() const;

  /// Prints to the stream (markdown) followed by a blank line.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace arbods
