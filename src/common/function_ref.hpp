// Non-owning reference to a callable.
//
// Used on the simulator's dispatch hot path instead of std::function, whose
// construction heap-allocates whenever the capture list exceeds the
// implementation's small-buffer size — that would be one allocation per
// parallel section per round. A FunctionRef is two words, never allocates,
// and the referenced callable only needs to outlive the synchronous call
// chain it is passed down.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace arbods {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference; calling it is undefined. Exists so callers can store a
  /// FunctionRef member and publish a real one before each dispatch.
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): by design
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* ctx, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(ctx))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return call_ != nullptr; }

  R operator()(Args... args) const {
    return call_(ctx_, std::forward<Args>(args)...);
  }

 private:
  void* ctx_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace arbods
