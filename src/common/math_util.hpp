// Small integer/float math helpers used throughout the library.
#pragma once

#include <cstdint>

namespace arbods {

/// ceil(log2(x)) for x >= 1; returns 0 for x == 1.
int ceil_log2(std::uint64_t x);

/// floor(log2(x)) for x >= 1.
int floor_log2(std::uint64_t x);

/// Number of bits needed to represent values in [0, x] (at least 1).
int bit_width_for(std::uint64_t x);

/// Smallest integer r >= 0 with base^r >= x  (base > 1, x >= 1).
/// Computed with integer-free logic on doubles plus verification.
int ceil_log_base(double base, double x);

/// Integer power with overflow saturation to INT64_MAX.
std::int64_t ipow_saturating(std::int64_t base, int exp);

/// True if |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

/// a <= b allowing tol relative slack (for checking packing feasibility
/// computed in floating point).
bool leq_with_slack(double a, double b, double tol = 1e-9);

}  // namespace arbods
