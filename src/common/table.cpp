#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace arbods {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ARBODS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ARBODS_CHECK_MSG(cells.size() == headers_.size(),
                   "row arity " << cells.size() << " != header arity "
                                << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::to_markdown() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::ostringstream& os) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    os << "\n";
  };

  std::ostringstream os;
  emit_row(headers_, os);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row, os);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_markdown() << "\n"; }

}  // namespace arbods
