#include "common/math_util.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace arbods {

int floor_log2(std::uint64_t x) {
  ARBODS_CHECK(x >= 1);
  return 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) {
  ARBODS_CHECK(x >= 1);
  int f = floor_log2(x);
  return ((std::uint64_t{1} << f) == x) ? f : f + 1;
}

int bit_width_for(std::uint64_t x) {
  if (x == 0) return 1;
  return floor_log2(x) + 1;
}

int ceil_log_base(double base, double x) {
  ARBODS_CHECK(base > 1.0);
  ARBODS_CHECK(x >= 1.0);
  if (x <= 1.0) return 0;
  // Start from the float estimate, then fix up with exact comparisons so the
  // result is insensitive to log() rounding.
  int r = std::max(0, static_cast<int>(std::ceil(std::log(x) / std::log(base))));
  while (std::pow(base, r) < x) ++r;
  while (r > 0 && std::pow(base, r - 1) >= x) --r;
  return r;
}

std::int64_t ipow_saturating(std::int64_t base, int exp) {
  ARBODS_CHECK(base >= 0 && exp >= 0);
  std::int64_t result = 1;
  for (int i = 0; i < exp; ++i) {
    if (base != 0 && result > std::numeric_limits<std::int64_t>::max() / base)
      return std::numeric_limits<std::int64_t>::max();
    result *= base;
  }
  return result;
}

bool approx_equal(double a, double b, double tol) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

bool leq_with_slack(double a, double b, double tol) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return a <= b + tol * scale;
}

}  // namespace arbods
