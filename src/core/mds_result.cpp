#include "core/mds_result.hpp"

#include "common/check.hpp"
#include "graph/verify.hpp"

namespace arbods {

double MdsResult::certified_ratio() const {
  ARBODS_CHECK_MSG(packing_lower_bound > 0.0,
                   "no packing certificate available");
  return static_cast<double>(weight) / packing_lower_bound;
}

void MdsResult::validate(const WeightedGraph& wg, double tol) const {
  ARBODS_CHECK_MSG(is_valid_node_set(wg.graph(), dominating_set),
                   "result set contains duplicates or out-of-range ids");
  const auto missing = undominated_nodes(wg.graph(), dominating_set);
  ARBODS_CHECK_MSG(missing.empty(), missing.size() << " nodes undominated, "
                                                      "first: "
                                                   << missing.front());
  ARBODS_CHECK_MSG(wg.total_weight(dominating_set) == weight,
                   "recorded weight " << weight << " != actual "
                                      << wg.total_weight(dominating_set));
  if (!packing.empty()) {
    ARBODS_CHECK_MSG(is_feasible_packing(wg, packing, tol),
                     "packing certificate infeasible");
  }
}

}  // namespace arbods
