// Lemma 4.6: the randomized set-extension algorithm, plus its two
// instantiations:
//   * Theorem 1.2 — (alpha + O(alpha/t))-approximation in O(t log Delta)
//     rounds: Lemma 4.1 with eps = 1/(4t), lambda = eps/(alpha+1), then
//     Lemma 4.6 with gamma = max(2, alpha^{1/(2t)}).
//   * Theorem 1.3 — O(k * Delta^{2/k})-approximation on general graphs in
//     O(k^2) rounds: Lemma 4.6 alone with S = empty, lambda = 1/(Delta+1),
//     gamma = Delta^{1/k}.
//
// Communication schedule per phase (t = ceil(log_gamma 1/lambda) phases):
//   round P   undominated nodes bump x by gamma (not in phase 1) and
//             broadcast it; receivers will rebuild X_u from scratch
//   then r = ceil(log_gamma(Delta+1)) + 1 iterations of
//     round S   refresh X_u (V/D messages), recompute Gamma membership
//               (u not in S∪S' and X_u >= w_u/gamma), sample with
//               probability p, sampled nodes join S' and announce (J
//               message carrying their x and an "I was undominated" flag);
//               p <- min(gamma*p, 1)
//     round D   nodes newly dominated by a J announce (D message carrying
//               their x) so neighbors can deduct them from X_u
//
// Termination is deterministic (the last iteration of every phase samples
// with p = 1); a defensive fallback completes any leftover node and sets
// used_fallback — the test suite asserts it never fires.
#pragma once

#include <optional>
#include <vector>

#include "core/mds_result.hpp"
#include "core/partial_ds.hpp"

namespace arbods {

struct RandomizedExtensionParams {
  double lambda = 0.0;  // property (b) promise on the initial packing
  double gamma = 2.0;   // > 1
};

/// Initial state handed from Lemma 4.1 (all empty => S = empty set and the
/// extension runs its own weight prologue with x_v = tau_v/(Delta+1)).
struct ExtensionSeed {
  NodeFlags in_set;              // S
  NodeFlags dominated;           // N+(S)
  std::vector<double> packing;   // x
};

class RandomizedExtension final : public protocol::Phase {
 public:
  /// With std::nullopt the phase runs unseeded (Theorem 1.3) — unless a
  /// preceding partial_ds phase published a PartialDsHandoff, which
  /// bind() adopts as the seed (Theorem 1.2's composition). An explicit
  /// seed always wins.
  RandomizedExtension(RandomizedExtensionParams params,
                      std::optional<ExtensionSeed> seed);

  std::string_view name() const override { return "extension"; }
  void bind(protocol::PhaseContext& ctx) override;
  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;

  MdsResult result(const Network& net) const;

  std::int64_t phases() const { return t_; }
  std::int64_t iterations_per_phase() const { return r_; }
  bool used_fallback() const { return used_fallback_; }

  static constexpr int kTagWeight = 1;
  static constexpr int kTagValue = 2;     // V: phase-start packing value
  static constexpr int kTagJoin = 3;      // J: joined S' (x, was_undominated)
  static constexpr int kTagDominated = 4; // D: became dominated (x)

 private:
  enum class Stage { kAwaitWeights, kSample, kDominate, kFallback, kDone };

  void start_phase(Network& net);
  void reduce_dominated();

  RandomizedExtensionParams params_;
  std::optional<ExtensionSeed> seed_;
  Stage stage_ = Stage::kAwaitWeights;
  std::int64_t t_ = 0;  // total phases
  std::int64_t r_ = 0;  // iterations per phase
  std::int64_t phase_ = 0;
  std::int64_t iter_ = 0;
  double p_ = 0.0;
  bool used_fallback_ = false;

  std::vector<double> x_;
  /// Snapshot of x before any phase multiplication: stays feasible for the
  /// global packing LP (the working x_ is only feasible for the residual
  /// subproblem after each gamma-scaling), so this is what the returned
  /// certificate uses.
  std::vector<double> initial_x_;
  std::vector<double> big_x_;  // X_u over undominated closed neighbors
  NodeFlags in_set_;   // S union S'
  NodeFlags dominated_;
  std::vector<WorkerCounter> dominated_delta_;  // per-worker events
  NodeId num_undominated_ = 0;
};

}  // namespace arbods
