#include "core/tree_mds.hpp"

#include "common/check.hpp"

namespace arbods {

void TreeMds::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  in_set_.assign(n, 0);
  stage_ = n == 0 ? Stage::kDone : Stage::kAwaitDegrees;
  // Isolated nodes receive nothing but still must decide, so every node
  // arms itself for the one decision round.
  net.for_nodes([&](NodeId v) {
    net.broadcast(v, Message::tagged(kTagDegree).add_level(net.degree(v)));
    net.arm(v);
  });
}

void TreeMds::process_round(Network& net) {
  if (stage_ != Stage::kAwaitDegrees) return;
  net.for_active_nodes([&](NodeId v) {
    const NodeId deg = net.degree(v);
    if (deg >= 2) {
      in_set_[v] = 1;  // internal node
    } else if (deg == 0) {
      in_set_[v] = 1;  // isolated: nobody else can dominate it
    } else {
      // Single neighbor; join only if it is also a leaf and we tie-break.
      // Under a faulty network the neighbor's announcement may have been
      // dropped or delayed past this round — with no information the leaf
      // joins, which keeps it covered no matter what the neighbor decides.
      const InboxView inbox = net.inbox(v);
      if (inbox.empty()) {
        in_set_[v] = 1;
      } else {
        const MessageView m = inbox.front();
        ARBODS_CHECK(m.tag() == kTagDegree);
        if (m.level_at(1) == 1 && v < m.sender()) in_set_[v] = 1;
      }
    }
  });
  stage_ = Stage::kDone;
}

bool TreeMds::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult TreeMds::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_set_[v] != 0) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.iterations = 1;
  res.stats = net.stats();
  return res;
}

}  // namespace arbods
