// Theorem 1.1 (weighted) and Theorem 3.1 (unweighted):
// (2alpha+1)(1+eps)-approximate MDS in O(log(Delta/alpha)/eps) CONGEST
// rounds, deterministic.
//
// Structure: run Lemma 4.1 with lambda = 1/((2alpha+1)(1+eps)); then every
// still-undominated node v brings one dominator into the set:
//   * kMinWeightNeighbor (Thm 1.1): the node of weight tau_v in N+(v)
//     (v knows it from the weight prologue; 2 completion rounds), or
//   * kSelf (Thm 3.1, unweighted): v itself (1 completion round).
#pragma once

#include <optional>

#include "core/mds_result.hpp"
#include "core/partial_ds.hpp"

namespace arbods {

enum class CompletionMode {
  kMinWeightNeighbor,  // Theorem 1.1
  kSelf,               // Theorem 3.1 (intended for unweighted instances)
};

struct DeterministicMdsParams {
  double eps = 0.5;
  NodeId alpha = 1;
  CompletionMode completion = CompletionMode::kMinWeightNeighbor;
  /// Override lambda; by default 1/((2*alpha+1)(1+eps)) per Theorem 1.1.
  std::optional<double> lambda;
};

class DeterministicMds final : public DistributedAlgorithm {
 public:
  explicit DeterministicMds(DeterministicMdsParams params);

  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;

  /// Assembles the result (valid once finished).
  MdsResult result(const Network& net) const;

  const PartialDominatingSet& partial() const { return partial_; }

  static constexpr int kTagRequest = 4;

 private:
  enum class Stage { kPartial, kRequest, kCompletionJoin, kDone };

  DeterministicMdsParams params_;
  PartialDominatingSet partial_;
  Stage stage_ = Stage::kPartial;
  NodeFlags in_final_;  // S union S'
};

/// The lambda of Theorem 1.1.
double theorem11_lambda(NodeId alpha, double eps);

}  // namespace arbods
