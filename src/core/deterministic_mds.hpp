// Theorem 1.1 (weighted) and Theorem 3.1 (unweighted):
// (2alpha+1)(1+eps)-approximate MDS in O(log(Delta/alpha)/eps) CONGEST
// rounds, deterministic.
//
// Structure (a two-phase ProtocolRunner pipeline): run Lemma 4.1
// (core/partial_ds.hpp) with lambda = 1/((2alpha+1)(1+eps)); then the
// CompletionPhase brings one dominator per still-undominated node v into
// the set:
//   * kMinWeightNeighbor (Thm 1.1): the node of weight tau_v in N+(v)
//     (v knows it from the weight prologue; 2 completion rounds), or
//   * kSelf (Thm 3.1, unweighted): v itself (1 completion round).
// The CompletionPhase binds against the PartialDsHandoff the partial
// phase publishes; run_deterministic_mds composes the two on a caller
// -provided (reusable) Network.
#pragma once

#include <memory>
#include <optional>

#include "core/mds_result.hpp"
#include "core/partial_ds.hpp"

namespace arbods {

enum class CompletionMode {
  kMinWeightNeighbor,  // Theorem 1.1
  kSelf,               // Theorem 3.1 (intended for unweighted instances)
};

struct DeterministicMdsParams {
  double eps = 0.5;
  NodeId alpha = 1;
  CompletionMode completion = CompletionMode::kMinWeightNeighbor;
  /// Override lambda; by default 1/((2*alpha+1)(1+eps)) per Theorem 1.1.
  std::optional<double> lambda;
};

/// Completion of Theorem 1.1/3.1 as a reusable phase: every node left
/// undominated by the preceding partial_ds phase pulls its tau-witness
/// (or itself) into the final set. Reads the PartialDsHandoff.
class CompletionPhase final : public protocol::Phase {
 public:
  explicit CompletionPhase(CompletionMode mode);

  std::string_view name() const override { return "completion"; }
  void bind(protocol::PhaseContext& ctx) override;
  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;

  /// Assembles the result (valid once finished): S union S', the packing
  /// certificate and iteration count inherited from the partial phase,
  /// and the Network's accumulated (all-phase) statistics.
  MdsResult result(const Network& net) const;

  static constexpr int kTagRequest = 4;

 private:
  enum class Stage { kRequest, kCompletionJoin, kDone };

  CompletionMode mode_;
  std::shared_ptr<const PartialDsHandoff> partial_;
  Stage stage_ = Stage::kRequest;
  NodeFlags in_final_;  // S union S'
};

/// Composes partial_ds + completion on the caller's Network (constructed
/// once, reusable): the Theorem 1.1 / Theorem 3.1 pipeline, with the
/// per-phase statistics breakdown in the returned result's stats.
MdsResult run_deterministic_mds(Network& net,
                                const DeterministicMdsParams& params,
                                std::int64_t max_rounds_per_phase = 1'000'000);

/// The lambda of Theorem 1.1.
double theorem11_lambda(NodeId alpha, double eps);

}  // namespace arbods
