#include "core/solvers.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/distributed_greedy.hpp"
#include "common/check.hpp"
#include "core/deterministic_mds.hpp"
#include "core/partial_ds.hpp"
#include "core/randomized.hpp"
#include "core/tree_mds.hpp"
#include "core/unknown_params.hpp"
#include "protocol/runner.hpp"

namespace arbods {

namespace {

std::int64_t round_budget(const Network& net) {
  // Generous a-priori bound per phase: every algorithm here is O(polylog)
  // rounds, but the unknown-parameter variants scale with
  // log n * log W / eps.
  return 400000 + 40 * static_cast<std::int64_t>(net.num_nodes());
}

void check_budget(const RunStats& stats) {
  ARBODS_CHECK_MSG(!stats.hit_round_limit,
                   "round budget exceeded (phase '"
                       << (stats.phases.empty() ? "?"
                                                : stats.phases.back().name)
                       << "')");
}

}  // namespace

MdsResult solve_mds_deterministic(Network& net, NodeId alpha, double eps) {
  DeterministicMdsParams params;
  params.eps = eps;
  params.alpha = alpha;
  params.completion = CompletionMode::kMinWeightNeighbor;
  return run_deterministic_mds(net, params, round_budget(net));
}

MdsResult solve_mds_deterministic(const WeightedGraph& wg, NodeId alpha,
                                  double eps, CongestConfig config) {
  Network net(wg, config);
  return solve_mds_deterministic(net, alpha, eps);
}

MdsResult solve_mds_unweighted(Network& net, NodeId alpha, double eps) {
  DeterministicMdsParams params;
  params.eps = eps;
  params.alpha = alpha;
  params.completion = CompletionMode::kSelf;
  return run_deterministic_mds(net, params, round_budget(net));
}

MdsResult solve_mds_unweighted(const WeightedGraph& wg, NodeId alpha,
                               double eps, CongestConfig config) {
  Network net(wg, config);
  return solve_mds_unweighted(net, alpha, eps);
}

Theorem12Params theorem12_params(NodeId alpha, std::int64_t t) {
  ARBODS_CHECK(alpha >= 1 && t >= 1);
  Theorem12Params p;
  p.eps = 1.0 / (4.0 * static_cast<double>(t));
  p.lambda = p.eps / (static_cast<double>(alpha) + 1.0);
  p.gamma = std::max(2.0, std::pow(static_cast<double>(alpha),
                                   1.0 / (2.0 * static_cast<double>(t))));
  return p;
}

MdsResult solve_mds_randomized(Network& net, NodeId alpha, std::int64_t t) {
  const Theorem12Params sched = theorem12_params(alpha, t);
  // Theorem 1.2: Lemma 4.1 hands (S, x) to Lemma 4.6 via the phase
  // context; both phases share net's arenas/pool/RNG storage.
  PartialDominatingSet partial({sched.eps, sched.lambda, alpha});
  RandomizedExtension ext({sched.lambda, sched.gamma}, std::nullopt);
  check_budget(protocol::run_protocol(net, {&partial, &ext},
                                      round_budget(net)));
  MdsResult res = ext.result(net);
  res.iterations = partial.iterations() + ext.phases();
  return res;
}

MdsResult solve_mds_randomized(const WeightedGraph& wg, NodeId alpha,
                               std::int64_t t, CongestConfig config) {
  Network net(wg, config);
  return solve_mds_randomized(net, alpha, t);
}

MdsResult solve_mds_general(Network& net, int k) {
  ARBODS_CHECK(k >= 1);
  const double delta = static_cast<double>(net.graph().max_degree());
  RandomizedExtensionParams ep;
  ep.lambda = 1.0 / (delta + 1.0);
  ep.gamma = std::max(1.5, std::pow(delta, 1.0 / static_cast<double>(k)));
  RandomizedExtension ext(ep, std::nullopt);
  check_budget(protocol::run_protocol(net, {&ext}, round_budget(net)));
  return ext.result(net);
}

MdsResult solve_mds_general(const WeightedGraph& wg, int k,
                            CongestConfig config) {
  Network net(wg, config);
  return solve_mds_general(net, k);
}

MdsResult solve_mds_unknown_delta(Network& net, NodeId alpha, double eps) {
  AdaptiveMdsParams params;
  params.mode = AdaptiveMode::kUnknownDelta;
  params.alpha = alpha;
  params.eps = eps;
  AdaptiveMds algo(params);
  check_budget(protocol::run_protocol(net, {&algo}, round_budget(net)));
  return algo.result(net);
}

MdsResult solve_mds_unknown_delta(const WeightedGraph& wg, NodeId alpha,
                                  double eps, CongestConfig config) {
  Network net(wg, config);
  return solve_mds_unknown_delta(net, alpha, eps);
}

MdsResult solve_mds_unknown_alpha(Network& net, double eps,
                                  bool be_knows_alpha, NodeId be_alpha_hint) {
  // Remark 4.5: the Barenboim–Elkin orientation prologue publishes the
  // per-node out-degrees the adaptive loop derives its lambdas from.
  BarenboimElkinOrientation orientation =
      be_knows_alpha
          ? BarenboimElkinOrientation(std::max<NodeId>(1, be_alpha_hint), eps)
          : BarenboimElkinOrientation::with_unknown_alpha(eps);
  AdaptiveMdsParams params;
  params.mode = AdaptiveMode::kUnknownAlpha;
  params.eps = eps;
  AdaptiveMds algo(params);
  check_budget(protocol::run_protocol(net, {&orientation, &algo},
                                      round_budget(net)));
  return algo.result(net);
}

MdsResult solve_mds_unknown_alpha(const WeightedGraph& wg, double eps,
                                  CongestConfig config, bool be_knows_alpha,
                                  NodeId be_alpha_hint) {
  Network net(wg, config);
  return solve_mds_unknown_alpha(net, eps, be_knows_alpha, be_alpha_hint);
}

MdsResult solve_mds_tree(Network& net) {
  TreeMds algo;
  check_budget(protocol::run_protocol(net, {&algo}, round_budget(net)));
  return algo.result(net);
}

MdsResult solve_mds_tree(const WeightedGraph& wg, CongestConfig config) {
  Network net(wg, config);
  return solve_mds_tree(net);
}

MdsResult solve_mds_greedy_threshold(Network& net) {
  baselines::ThresholdGreedyMds algo;
  check_budget(protocol::run_protocol(net, {&algo}, round_budget(net)));
  return algo.result(net);
}

MdsResult solve_mds_greedy_threshold(const WeightedGraph& wg,
                                     CongestConfig config) {
  Network net(wg, config);
  return solve_mds_greedy_threshold(net);
}

MdsResult solve_mds_greedy_election(Network& net) {
  baselines::ElectionGreedyMds algo;
  check_budget(protocol::run_protocol(net, {&algo}, round_budget(net)));
  return algo.result(net);
}

MdsResult solve_mds_greedy_election(const WeightedGraph& wg,
                                    CongestConfig config) {
  Network net(wg, config);
  return solve_mds_greedy_election(net);
}

}  // namespace arbods
