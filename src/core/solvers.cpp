#include "core/solvers.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/distributed_greedy.hpp"
#include "common/check.hpp"
#include "core/deterministic_mds.hpp"
#include "core/partial_ds.hpp"
#include "core/randomized.hpp"
#include "core/tree_mds.hpp"
#include "core/unknown_params.hpp"

namespace arbods {

namespace {

void accumulate(RunStats& into, const RunStats& from) {
  into.rounds += from.rounds;
  into.messages += from.messages;
  into.total_bits += from.total_bits;
  into.max_message_bits = std::max(into.max_message_bits, from.max_message_bits);
  into.hit_round_limit = into.hit_round_limit || from.hit_round_limit;
}

std::int64_t round_budget(const WeightedGraph& wg) {
  // Generous a-priori bound: every algorithm here is O(polylog) rounds,
  // but the unknown-parameter variants scale with log n * log W / eps.
  return 400000 + 40 * static_cast<std::int64_t>(wg.num_nodes());
}

}  // namespace

MdsResult solve_mds_deterministic(const WeightedGraph& wg, NodeId alpha,
                                  double eps, CongestConfig config) {
  Network net(wg, config);
  DeterministicMdsParams params;
  params.eps = eps;
  params.alpha = alpha;
  params.completion = CompletionMode::kMinWeightNeighbor;
  DeterministicMds algo(params);
  RunStats stats = net.run(algo, round_budget(wg));
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return algo.result(net);
}

MdsResult solve_mds_unweighted(const WeightedGraph& wg, NodeId alpha,
                               double eps, CongestConfig config) {
  Network net(wg, config);
  DeterministicMdsParams params;
  params.eps = eps;
  params.alpha = alpha;
  params.completion = CompletionMode::kSelf;
  DeterministicMds algo(params);
  RunStats stats = net.run(algo, round_budget(wg));
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return algo.result(net);
}

Theorem12Params theorem12_params(NodeId alpha, std::int64_t t) {
  ARBODS_CHECK(alpha >= 1 && t >= 1);
  Theorem12Params p;
  p.eps = 1.0 / (4.0 * static_cast<double>(t));
  p.lambda = p.eps / (static_cast<double>(alpha) + 1.0);
  p.gamma = std::max(2.0, std::pow(static_cast<double>(alpha),
                                   1.0 / (2.0 * static_cast<double>(t))));
  return p;
}

MdsResult solve_mds_randomized(const WeightedGraph& wg, NodeId alpha,
                               std::int64_t t, CongestConfig config) {
  const Theorem12Params sched = theorem12_params(alpha, t);

  // Phase 1: Lemma 4.1.
  Network net1(wg, config);
  PartialDsParams pp;
  pp.eps = sched.eps;
  pp.lambda = sched.lambda;
  pp.alpha = alpha;
  PartialDominatingSet partial(pp);
  RunStats stats1 = net1.run(partial, round_budget(wg));
  ARBODS_CHECK_MSG(!stats1.hit_round_limit, "round budget exceeded (phase 1)");

  // Phase 2: Lemma 4.6 seeded with (S, x).
  ExtensionSeed seed;
  seed.in_set = partial.in_partial_set();
  seed.dominated = partial.dominated();
  seed.packing = partial.packing();

  Network net2(wg, config);
  RandomizedExtensionParams ep;
  ep.lambda = sched.lambda;
  ep.gamma = sched.gamma;
  RandomizedExtension ext(ep, std::move(seed));
  RunStats stats2 = net2.run(ext, round_budget(wg));
  ARBODS_CHECK_MSG(!stats2.hit_round_limit, "round budget exceeded (phase 2)");

  MdsResult res = ext.result(net2);
  accumulate(res.stats, stats1);
  res.iterations = partial.iterations() + ext.phases();
  return res;
}

MdsResult solve_mds_general(const WeightedGraph& wg, int k,
                            CongestConfig config) {
  ARBODS_CHECK(k >= 1);
  const double delta = static_cast<double>(wg.graph().max_degree());
  Network net(wg, config);
  RandomizedExtensionParams ep;
  ep.lambda = 1.0 / (delta + 1.0);
  ep.gamma = std::max(1.5, std::pow(delta, 1.0 / static_cast<double>(k)));
  RandomizedExtension ext(ep, std::nullopt);
  RunStats stats = net.run(ext, round_budget(wg));
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return ext.result(net);
}

MdsResult solve_mds_unknown_delta(const WeightedGraph& wg, NodeId alpha,
                                  double eps, CongestConfig config) {
  Network net(wg, config);
  AdaptiveMdsParams params;
  params.mode = AdaptiveMode::kUnknownDelta;
  params.alpha = alpha;
  params.eps = eps;
  AdaptiveMds algo(params);
  RunStats stats = net.run(algo, round_budget(wg));
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return algo.result(net);
}

MdsResult solve_mds_unknown_alpha(const WeightedGraph& wg, double eps,
                                  CongestConfig config, bool be_knows_alpha,
                                  NodeId be_alpha_hint) {
  Network net(wg, config);
  AdaptiveMdsParams params;
  params.mode = AdaptiveMode::kUnknownAlpha;
  params.eps = eps;
  params.be_knows_alpha = be_knows_alpha;
  params.be_alpha_hint = be_alpha_hint;
  AdaptiveMds algo(params);
  RunStats stats = net.run(algo, round_budget(wg));
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return algo.result(net);
}

MdsResult solve_mds_tree(const WeightedGraph& wg, CongestConfig config) {
  Network net(wg, config);
  TreeMds algo;
  RunStats stats = net.run(algo, round_budget(wg));
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return algo.result(net);
}

MdsResult solve_mds_greedy_threshold(const WeightedGraph& wg,
                                     CongestConfig config) {
  Network net(wg, config);
  baselines::ThresholdGreedyMds algo;
  RunStats stats = net.run(algo, round_budget(wg));
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return algo.result(net);
}

MdsResult solve_mds_greedy_election(const WeightedGraph& wg,
                                    CongestConfig config) {
  Network net(wg, config);
  baselines::ElectionGreedyMds algo;
  RunStats stats = net.run(algo, round_budget(wg));
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return algo.result(net);
}

}  // namespace arbods
