#include "core/unknown_params.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/verify.hpp"

namespace arbods {

AdaptiveMds::AdaptiveMds(AdaptiveMdsParams params) : params_(params) {
  ARBODS_CHECK(params_.eps > 0.0 && params_.eps < 1.0);
  if (params_.mode == AdaptiveMode::kUnknownDelta)
    ARBODS_CHECK(params_.alpha >= 1);
}

void AdaptiveMds::bind(protocol::PhaseContext& ctx) {
  if (params_.mode == AdaptiveMode::kUnknownAlpha)
    orientation_ = ctx.share<OrientationHandoff>();
}

void AdaptiveMds::reduce_dominated() {
  for (WorkerCounter& d : dominated_delta_) {
    ARBODS_CHECK(static_cast<std::int64_t>(num_undominated_) >= d.value);
    num_undominated_ -= static_cast<NodeId>(d.value);
    d.value = 0;
  }
}

void AdaptiveMds::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  x_.assign(n, 0.0);
  lambda_.assign(n, 0.0);
  tau_.assign(n, 0);
  tau_witness_.assign(n, kInvalidNode);
  in_final_.assign(n, false);
  dominated_.assign(n, false);
  pending_join_announce_.assign(n, false);
  dominated_delta_.assign(static_cast<std::size_t>(net.num_workers()),
                          WorkerCounter{});
  num_undominated_ = n;
  iterations_ = 0;
  first_value_round_ = true;

  if (n == 0) {
    stage_ = Stage::kDone;
    return;
  }
  const bool unknown_alpha = params_.mode == AdaptiveMode::kUnknownAlpha;
  if (unknown_alpha) {
    ARBODS_CHECK_MSG(orientation_ != nullptr &&
                         orientation_->out_degree.size() == n,
                     "AdaptiveMds(kUnknownAlpha) requires a preceding "
                     "be_orientation phase (no OrientationHandoff published)");
  }
  // Publish weight + degree (Remark 4.4) or weight + orientation
  // out-degree (Remark 4.5, from the prologue's handoff).
  net.for_nodes([&](NodeId v) {
    const std::int64_t info =
        unknown_alpha ? orientation_->out_degree[v] : net.degree(v);
    net.broadcast(v, Message::tagged(kTagInfo)
                         .add_weight(net.weight(v))
                         .add_level(info));
  });
  stage_ = Stage::kInfoExchange;
}

void AdaptiveMds::process_round(Network& net) {
  const NodeId n = net.num_nodes();
  const double one_plus_eps = 1.0 + params_.eps;

  switch (stage_) {
    case Stage::kInfoExchange: {
      const bool unknown_delta = params_.mode == AdaptiveMode::kUnknownDelta;
      net.for_nodes([&](NodeId v) {
        Weight best = net.weight(v);
        NodeId witness = v;
        // For kUnknownDelta: max closed-neighborhood size, incl. own.
        std::int64_t max_info = unknown_delta
                                    ? net.degree(v) + 1
                                    : orientation_->out_degree[v];
        for (const MessageView m : net.inbox(v)) {
          if (m.tag() != kTagInfo) continue;
          const Weight w = m.weight_at(1);
          if (w < best || (w == best && m.sender() < witness)) {
            best = w;
            witness = m.sender();
          }
          std::int64_t info = m.level_at(2);
          if (unknown_delta) info += 1;
          max_info = std::max(max_info, info);
        }
        tau_[v] = best;
        tau_witness_[v] = witness;
        if (unknown_delta) {
          x_[v] = static_cast<double>(best) / static_cast<double>(max_info);
          lambda_[v] = 1.0 / ((2.0 * params_.alpha + 1.0) * one_plus_eps);
        } else {
          x_[v] = static_cast<double>(best) / (static_cast<double>(n) + 1.0);
          // hat_alpha_v = max out-degree over N+(v).
          lambda_[v] = 1.0 / ((2.0 * static_cast<double>(max_info) + 1.0) *
                              one_plus_eps);
        }
      });
      first_value_round_ = true;
      stage_ = Stage::kValueRound;
      break;
    }

    case Stage::kValueRound: {
      ++iterations_;
      const bool first = first_value_round_;
      net.for_nodes([&](NodeId v) {
        // (1) absorb join announcements from the previous join round.
        if (!dominated_[v]) {
          for (const MessageView m : net.inbox(v)) {
            if (m.tag() == kTagJoin) {
              dominated_[v] = true;
              ++dominated_delta_[net.worker_index()].value;
              break;
            }
          }
        }
        // (2) step 3 of the previous iteration: bump if still undominated.
        if (!first && !dominated_[v]) x_[v] *= one_plus_eps;
        // (3) the Remarks' extra step: self-completion once past lambda_v.
        if (!dominated_[v] &&
            x_[v] > lambda_[v] * static_cast<double>(tau_[v])) {
          dominated_[v] = true;  // the witness join is guaranteed
          ++dominated_delta_[net.worker_index()].value;
          if (tau_witness_[v] == v) {
            in_final_[v] = true;
            pending_join_announce_[v] = true;  // announced next join round
          } else {
            net.send(v, tau_witness_[v], Message::tagged(kTagRequest));
          }
        }
        net.broadcast(v, Message::tagged(kTagValue).add_real(x_[v]));
      });
      reduce_dominated();
      first_value_round_ = false;
      stage_ = Stage::kJoinRound;
      break;
    }

    case Stage::kJoinRound: {
      net.for_nodes([&](NodeId u) {
        bool join = false;
        double sum = x_[u];
        for (const MessageView m : net.inbox(u)) {
          if (m.tag() == kTagValue) sum += m.real_at(1);
          if (m.tag() == kTagRequest) join = true;  // carries tau for someone
        }
        const bool fresh_join =
            !in_final_[u] &&
            (join ||
             sum >= static_cast<double>(net.weight(u)) / one_plus_eps);
        if (fresh_join) {
          in_final_[u] = true;
          if (!dominated_[u]) {
            dominated_[u] = true;
            ++dominated_delta_[net.worker_index()].value;
          }
        }
        if (fresh_join || pending_join_announce_[u]) {
          pending_join_announce_[u] = false;
          net.broadcast(u, Message::tagged(kTagJoin));
        }
      });
      reduce_dominated();
      stage_ = num_undominated_ == 0 ? Stage::kDone : Stage::kValueRound;
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool AdaptiveMds::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult AdaptiveMds::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_final_[v]) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.packing = x_;
  res.packing_lower_bound = packing_lower_bound(res.packing);
  res.iterations = iterations_;
  res.stats = net.stats();
  return res;
}

}  // namespace arbods
