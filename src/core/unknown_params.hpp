// Remarks 4.4 and 4.5: the algorithm when Delta or alpha is unknown.
//
// Both variants share one loop (the paper presents 4.5 as "similar to 4.4
// with an extra step"): Lemma 4.1 iterations augmented with a per-iteration
// self-completion step — any undominated node whose packing value has
// crossed lambda_v * tau_v immediately pulls its tau-witness into the final
// set instead of waiting for a global phase boundary it cannot detect.
//
//   kUnknownDelta (Remark 4.4): x_v starts at tau_v / max_{u in N+(v)}|N+(u)|
//     (one degree exchange), lambda_v = 1/((2*alpha+1)(1+eps)); terminates
//     after O(log(Delta)/eps) iterations with the Theorem 1.1 guarantee.
//
//   kUnknownAlpha (Remark 4.5): composed as a two-phase pipeline — a
//     BarenboimElkinOrientation prologue phase publishes per-node
//     out-degrees (OrientationHandoff), this phase binds against them;
//     hat_alpha_v = max out-degree over N+(v) gives the per-node
//     lambda_v = 1/((2*hat_alpha_v+1)(1+eps)); x_v starts at tau_v/(n+1).
//     O(log n / eps) iterations; approximation (2*alpha+1)(2+O(eps)).
#pragma once

#include <memory>
#include <vector>

#include "arboricity/barenboim_elkin.hpp"
#include "core/mds_result.hpp"

namespace arbods {

enum class AdaptiveMode {
  kUnknownDelta,  // Remark 4.4
  kUnknownAlpha,  // Remark 4.5 (requires an orientation prologue phase)
};

struct AdaptiveMdsParams {
  AdaptiveMode mode = AdaptiveMode::kUnknownDelta;
  double eps = 0.5;
  /// Required (and used) only for kUnknownDelta.
  NodeId alpha = 1;
};

class AdaptiveMds final : public protocol::Phase {
 public:
  explicit AdaptiveMds(AdaptiveMdsParams params);

  std::string_view name() const override { return "adaptive_mds"; }
  /// kUnknownAlpha: adopts the OrientationHandoff a preceding
  /// BarenboimElkinOrientation phase published (checked at initialize).
  void bind(protocol::PhaseContext& ctx) override;
  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;

  MdsResult result(const Network& net) const;

  std::int64_t iterations() const { return iterations_; }
  const std::vector<double>& lambda_per_node() const { return lambda_; }

  static constexpr int kTagInfo = 1;     // weight + degree/out-degree
  static constexpr int kTagValue = 2;    // packing value
  static constexpr int kTagJoin = 3;     // joined the set (S or S')
  static constexpr int kTagRequest = 4;  // "please join, you carry tau_v"

 private:
  enum class Stage { kInfoExchange, kValueRound, kJoinRound, kDone };

  AdaptiveMdsParams params_;
  std::shared_ptr<const OrientationHandoff> orientation_;
  Stage stage_ = Stage::kInfoExchange;
  std::int64_t iterations_ = 0;
  bool first_value_round_ = true;

  std::vector<double> x_;
  std::vector<double> lambda_;
  std::vector<Weight> tau_;
  std::vector<NodeId> tau_witness_;
  NodeFlags in_final_;              // S union S'
  NodeFlags dominated_;             // includes "pending" requesters
  /// Self-witness joins decided in a value round announce in the next join
  /// round (join announcements are only absorbed in value rounds, so
  /// broadcasting them from a value round would be lost).
  NodeFlags pending_join_announce_;
  std::vector<WorkerCounter> dominated_delta_;  // per-worker events
  NodeId num_undominated_ = 0;

  void reduce_dominated();
};

}  // namespace arbods
