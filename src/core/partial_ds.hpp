// Lemma 4.1: the primal-dual partial dominating set (the paper's engine).
//
// Given eps in (0,1) and 0 < lambda < 1/((alpha+1)(1+eps)), computes a set
// S and packing values {x_v} with
//   (a) w_S <= alpha * (1/(1+eps) - lambda*(alpha+1))^{-1} * sum_{v in N+(S)} x_v
//   (b) x_v >= lambda * tau_v for every undominated v,
// in O(log(Delta * lambda) / eps) CONGEST rounds, where
// tau_v = min weight in the closed neighborhood of v.
//
// Communication schedule (2 rounds per paper-iteration):
//   round 0 (init)   every node broadcasts its weight        -> tau_v
//   value round      absorb joins, bump x if undominated, broadcast x_v
//   join round       sum neighbor values into X_u; join S if
//                    X_u >= w_u/(1+eps); broadcast the join flag
// After the final join round one trailing value round applies the last
// multiplication to still-undominated nodes (their r-th bump).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "congest/network.hpp"
#include "protocol/phase.hpp"

namespace arbods {

struct PartialDsParams {
  double eps = 0.5;     // (0,1)
  double lambda = 0.0;  // must satisfy 0 < lambda < 1/((alpha+1)(1+eps))
  NodeId alpha = 1;     // arboricity promise (used only for validation)
};

/// What Lemma 4.1 hands to its successors (the completion phase of
/// Theorem 1.1/3.1, the randomized extension of Theorem 1.2): the partial
/// set S, the dominated indicator N+(S), the packing certificate, and the
/// tau witnesses every node learned in the weight prologue. (The tau
/// values themselves stay on the phase — no downstream phase reads them;
/// see PartialDominatingSet::tau().)
struct PartialDsHandoff {
  NodeFlags in_set;               // S
  NodeFlags dominated;            // N+(S)
  std::vector<double> packing;    // x (feasible for the global LP)
  std::vector<NodeId> tau_witness;  // carrier of tau_v
  std::int64_t iterations = 0;    // r from Lemma 4.1
};

class PartialDominatingSet final : public protocol::Phase {
 public:
  explicit PartialDominatingSet(PartialDsParams params);

  std::string_view name() const override { return "partial_ds"; }
  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;
  /// Publishes the PartialDsHandoff for downstream phases.
  void publish(Network& net, protocol::PhaseContext& ctx) override;

  // --- results (valid once finished) ---
  const NodeFlags& in_partial_set() const { return in_s_; }
  const NodeFlags& dominated() const { return dominated_; }
  const std::vector<double>& packing() const { return x_; }
  const std::vector<Weight>& tau() const { return tau_; }
  /// Per-node minimum-weight closed neighbor (carrier of tau_v).
  const std::vector<NodeId>& tau_witness() const { return tau_witness_; }
  std::int64_t iterations() const { return r_; }
  NodeSet partial_set() const;

  static constexpr int kTagWeight = 1;
  static constexpr int kTagValue = 2;
  static constexpr int kTagJoin = 3;

 private:
  enum class Stage { kAwaitWeights, kValueRound, kJoinRound, kDone };

  void absorb_joins(Network& net, NodeId v);

  PartialDsParams params_;
  std::int64_t r_ = 0;          // number of paper iterations
  std::int64_t iter_done_ = 0;  // completed join rounds
  Stage stage_ = Stage::kAwaitWeights;

  std::vector<double> x_;
  std::vector<Weight> tau_;
  std::vector<NodeId> tau_witness_;
  NodeFlags in_s_;
  NodeFlags dominated_;
};

/// r from the proof of Lemma 4.1: the integer >= 1 with
/// (1+eps)^{r-1}/(Delta+1) <= lambda < (1+eps)^r/(Delta+1),
/// or 0 when lambda < 1/(Delta+1) (the loop is skipped, S stays empty).
std::int64_t partial_ds_iterations(double eps, double lambda, NodeId delta);

}  // namespace arbods
