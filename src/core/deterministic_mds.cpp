#include "core/deterministic_mds.hpp"

#include "common/check.hpp"
#include "graph/verify.hpp"
#include "protocol/runner.hpp"

namespace arbods {

double theorem11_lambda(NodeId alpha, double eps) {
  return 1.0 / ((2.0 * static_cast<double>(alpha) + 1.0) * (1.0 + eps));
}

CompletionPhase::CompletionPhase(CompletionMode mode) : mode_(mode) {}

void CompletionPhase::bind(protocol::PhaseContext& ctx) {
  partial_ = ctx.share<PartialDsHandoff>();
  ARBODS_CHECK_MSG(partial_ != nullptr,
                   "CompletionPhase requires a preceding partial_ds phase "
                   "(no PartialDsHandoff published)");
}

void CompletionPhase::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  ARBODS_CHECK(partial_ != nullptr && partial_->in_set.size() == n);
  in_final_.assign(n, false);
  net.for_nodes([&](NodeId v) { in_final_[v] = partial_->in_set[v]; });
  if (n == 0) {
    stage_ = Stage::kDone;
    return;
  }
  // The request waits for round 1 rather than firing here: the round
  // count then matches the pre-decomposition driver exactly (the copy
  // above is the work its phase-transition round did).
  stage_ = mode_ == CompletionMode::kSelf ? Stage::kCompletionJoin
                                          : Stage::kRequest;
}

void CompletionPhase::process_round(Network& net) {
  switch (stage_) {
    case Stage::kRequest: {
      // Every undominated v asks the tau-witness in N+(v) to join.
      net.for_nodes([&](NodeId v) {
        if (partial_->dominated[v]) return;
        const NodeId target = partial_->tau_witness[v];
        if (target == v) {
          in_final_[v] = true;  // v itself carries tau_v
        } else {
          net.send(v, target, Message::tagged(kTagRequest));
        }
      });
      stage_ = Stage::kCompletionJoin;
      break;
    }

    case Stage::kCompletionJoin: {
      if (mode_ == CompletionMode::kSelf) {
        net.for_nodes([&](NodeId v) {
          if (!partial_->dominated[v]) in_final_[v] = true;
        });
      } else {
        // The active set this round is exactly the kTagRequest receivers
        // (the partial phase is quiescent), so the completion costs
        // O(undominated), not O(n).
        net.for_active_nodes([&](NodeId u) {
          for (const MessageView m : net.inbox(u)) {
            if (m.tag() == kTagRequest) {
              in_final_[u] = true;
              break;
            }
          }
        });
      }
      stage_ = Stage::kDone;
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool CompletionPhase::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult CompletionPhase::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_final_[v]) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.packing = partial_->packing;
  res.packing_lower_bound = packing_lower_bound(res.packing);
  res.iterations = partial_->iterations;
  res.stats = net.stats();
  return res;
}

MdsResult run_deterministic_mds(Network& net,
                                const DeterministicMdsParams& params,
                                std::int64_t max_rounds_per_phase) {
  PartialDsParams pp;
  pp.eps = params.eps;
  pp.alpha = params.alpha;
  pp.lambda = params.lambda.value_or(theorem11_lambda(params.alpha, params.eps));
  PartialDominatingSet partial(pp);
  CompletionPhase completion(params.completion);
  const RunStats stats =
      protocol::run_protocol(net, {&partial, &completion}, max_rounds_per_phase);
  ARBODS_CHECK_MSG(!stats.hit_round_limit, "round budget exceeded");
  return completion.result(net);
}

}  // namespace arbods
