#include "core/deterministic_mds.hpp"

#include "common/check.hpp"
#include "graph/verify.hpp"

namespace arbods {

double theorem11_lambda(NodeId alpha, double eps) {
  return 1.0 / ((2.0 * static_cast<double>(alpha) + 1.0) * (1.0 + eps));
}

namespace {
PartialDsParams make_partial_params(const DeterministicMdsParams& p) {
  PartialDsParams pp;
  pp.eps = p.eps;
  pp.alpha = p.alpha;
  pp.lambda = p.lambda.value_or(theorem11_lambda(p.alpha, p.eps));
  return pp;
}
}  // namespace

DeterministicMds::DeterministicMds(DeterministicMdsParams params)
    : params_(params), partial_(make_partial_params(params)) {}

void DeterministicMds::initialize(Network& net) {
  stage_ = net.num_nodes() == 0 ? Stage::kDone : Stage::kPartial;
  in_final_.assign(net.num_nodes(), false);
  partial_.initialize(net);
}

void DeterministicMds::process_round(Network& net) {
  switch (stage_) {
    case Stage::kPartial: {
      partial_.process_round(net);
      if (!partial_.finished(net)) break;
      net.for_nodes(
          [&](NodeId v) { in_final_[v] = partial_.in_partial_set()[v]; });
      // Completion starts next round; kSelf needs no communication at all
      // but we keep one announce round so neighbors learn their dominator
      // (each node must know whether it is in the output set — it does —
      // and the round count stays O(1) extra either way).
      stage_ = params_.completion == CompletionMode::kSelf
                   ? Stage::kCompletionJoin
                   : Stage::kRequest;
      break;
    }

    case Stage::kRequest: {
      // Every undominated v asks the tau-witness in N+(v) to join.
      net.for_nodes([&](NodeId v) {
        if (partial_.dominated()[v]) return;
        const NodeId target = partial_.tau_witness()[v];
        if (target == v) {
          in_final_[v] = true;  // v itself carries tau_v
        } else {
          net.send(v, target, Message::tagged(kTagRequest));
        }
      });
      stage_ = Stage::kCompletionJoin;
      break;
    }

    case Stage::kCompletionJoin: {
      if (params_.completion == CompletionMode::kSelf) {
        net.for_nodes([&](NodeId v) {
          if (!partial_.dominated()[v]) in_final_[v] = true;
        });
      } else {
        // The active set this round is exactly the kTagRequest receivers
        // (the partial stage is quiescent), so the completion costs
        // O(undominated), not O(n).
        net.for_active_nodes([&](NodeId u) {
          for (const MessageView m : net.inbox(u)) {
            if (m.tag() == kTagRequest) {
              in_final_[u] = true;
              break;
            }
          }
        });
      }
      stage_ = Stage::kDone;
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool DeterministicMds::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult DeterministicMds::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_final_[v]) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.packing = partial_.packing();
  res.packing_lower_bound = packing_lower_bound(res.packing);
  res.iterations = partial_.iterations();
  res.stats = net.stats();
  return res;
}

}  // namespace arbods
