#include "core/partial_ds.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace arbods {

std::int64_t partial_ds_iterations(double eps, double lambda, NodeId delta) {
  const double target = lambda * (static_cast<double>(delta) + 1.0);
  if (target < 1.0) return 0;  // lambda < 1/(Delta+1): loop skipped entirely
  std::int64_t r = 0;
  double p = 1.0;
  while (p <= target) {
    p *= (1.0 + eps);
    ++r;
  }
  return r;  // (1+eps)^{r-1} <= lambda*(Delta+1) < (1+eps)^r
}

PartialDominatingSet::PartialDominatingSet(PartialDsParams params)
    : params_(params) {
  ARBODS_CHECK_MSG(params_.eps > 0.0 && params_.eps < 1.0,
                   "eps must be in (0,1), got " << params_.eps);
  const double limit =
      1.0 / ((static_cast<double>(params_.alpha) + 1.0) * (1.0 + params_.eps));
  ARBODS_CHECK_MSG(params_.lambda > 0.0 && params_.lambda < limit,
                   "lambda=" << params_.lambda
                             << " violates 0 < lambda < 1/((alpha+1)(1+eps))="
                             << limit);
}

void PartialDominatingSet::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  x_.assign(n, 0.0);
  tau_.assign(n, 0);
  tau_witness_.assign(n, kInvalidNode);
  in_s_.assign(n, false);
  dominated_.assign(n, false);
  iter_done_ = 0;
  r_ = partial_ds_iterations(params_.eps, params_.lambda,
                             net.graph().max_degree());
  stage_ = n == 0 ? Stage::kDone : Stage::kAwaitWeights;
  net.for_nodes([&](NodeId v) {
    net.broadcast(v, Message::tagged(kTagWeight).add_weight(net.weight(v)));
  });
}

void PartialDominatingSet::absorb_joins(Network& net, NodeId v) {
  for (const MessageView m : net.inbox(v)) {
    if (m.tag() == kTagJoin) dominated_[v] = true;
  }
}

void PartialDominatingSet::process_round(Network& net) {
  const double one_plus_eps = 1.0 + params_.eps;
  const double delta_plus_1 =
      static_cast<double>(net.graph().max_degree()) + 1.0;

  switch (stage_) {
    case Stage::kAwaitWeights: {
      // tau_v = min weight in N+(v), witness = the argmin (ties: lowest id).
      const bool loop_skipped = r_ == 0;
      net.for_nodes([&](NodeId v) {
        Weight best = net.weight(v);
        NodeId witness = v;
        for (const MessageView m : net.inbox(v)) {
          if (m.tag() != kTagWeight) continue;
          const Weight w = m.weight_at(1);
          if (w < best || (w == best && m.sender() < witness)) {
            best = w;
            witness = m.sender();
          }
        }
        tau_[v] = best;
        tau_witness_[v] = witness;
        x_[v] = static_cast<double>(best) / delta_plus_1;
        if (!loop_skipped)
          net.broadcast(v, Message::tagged(kTagValue).add_real(x_[v]));
      });
      stage_ = loop_skipped ? Stage::kDone : Stage::kJoinRound;
      break;
    }

    case Stage::kValueRound: {
      // Step 3 of the previous iteration (bump undominated), fused with the
      // value broadcast that opens this iteration.
      const bool trailing = iter_done_ == r_;  // last bump; the loop is over
      net.for_nodes([&](NodeId v) {
        absorb_joins(net, v);
        if (!dominated_[v]) x_[v] *= one_plus_eps;
        if (!trailing)
          net.broadcast(v, Message::tagged(kTagValue).add_real(x_[v]));
      });
      stage_ = trailing ? Stage::kDone : Stage::kJoinRound;
      break;
    }

    case Stage::kJoinRound: {
      net.for_nodes([&](NodeId u) {
        double sum = x_[u];
        for (const MessageView m : net.inbox(u)) {
          if (m.tag() == kTagValue) sum += m.real_at(1);
        }
        if (!in_s_[u] &&
            sum >= static_cast<double>(net.weight(u)) / one_plus_eps) {
          in_s_[u] = true;
          dominated_[u] = true;
          net.broadcast(u, Message::tagged(kTagJoin));
        }
      });
      ++iter_done_;
      stage_ = Stage::kValueRound;
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool PartialDominatingSet::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

void PartialDominatingSet::publish(Network& net, protocol::PhaseContext& ctx) {
  (void)net;
  PartialDsHandoff handoff;
  handoff.in_set = in_s_;
  handoff.dominated = dominated_;
  handoff.packing = x_;
  handoff.tau_witness = tau_witness_;
  handoff.iterations = r_;
  ctx.put(std::move(handoff));
}

NodeSet PartialDominatingSet::partial_set() const {
  NodeSet s;
  for (NodeId v = 0; v < in_s_.size(); ++v)
    if (in_s_[v]) s.push_back(v);
  return s;
}

}  // namespace arbods
