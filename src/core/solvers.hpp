// Public one-call drivers for every algorithm in the paper.
//
// Every solver is a ProtocolRunner phase list (src/protocol/) executed on
// ONE Network. Composed algorithms (Theorem 1.2's partial_ds + extension,
// Remark 4.5's be_orientation + adaptive_mds, Theorem 1.1/3.1's
// partial_ds + completion) reuse that single Network across their phases
// — arenas, worker pool, and RNG streams are constructed exactly once —
// and the returned MdsResult::stats carries the per-phase breakdown
// (RunStats::phases) for free; there is no hand-rolled stats math.
//
// Each driver comes in two flavours:
//   * (const WeightedGraph&, ..., CongestConfig): constructs a Network
//     and delegates — the classic one-call form.
//   * (Network&, ...): runs on the caller's Network, which may be reused
//     across runs and solvers (reset happens inside the runner). This is
//     what the scenario batch harness pools.
//
//   solve_mds_deterministic   Theorem 1.1   (2a+1)(1+eps), O(log(Delta/a)/eps)
//   solve_mds_unweighted      Theorem 3.1   same bound, completion = self
//   solve_mds_randomized      Theorem 1.2   a + O(a/t), O(t log Delta), rand.
//   solve_mds_general         Theorem 1.3   O(k Delta^{2/k}), O(k^2), rand.
//   solve_mds_unknown_delta   Remark 4.4
//   solve_mds_unknown_alpha   Remark 4.5
//   solve_mds_tree            Observation A.1 (forests, unweighted)
#pragma once

#include "core/mds_result.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods {

/// Theorem 1.1. alpha >= 1 must upper-bound the arboricity; eps in (0,1).
MdsResult solve_mds_deterministic(const WeightedGraph& wg, NodeId alpha,
                                  double eps, CongestConfig config = {});
MdsResult solve_mds_deterministic(Network& net, NodeId alpha, double eps);

/// Theorem 3.1 (intended for unit weights; the undominated nodes join
/// themselves). Same guarantee as Theorem 1.1 on unweighted instances.
MdsResult solve_mds_unweighted(const WeightedGraph& wg, NodeId alpha,
                               double eps, CongestConfig config = {});
MdsResult solve_mds_unweighted(Network& net, NodeId alpha, double eps);

/// Theorem 1.2. t in [1, alpha/log(alpha)] (clamped); randomized —
/// expected approximation alpha + O(alpha/t).
MdsResult solve_mds_randomized(const WeightedGraph& wg, NodeId alpha,
                               std::int64_t t, CongestConfig config = {});
MdsResult solve_mds_randomized(Network& net, NodeId alpha, std::int64_t t);

/// Theorem 1.3 on general graphs (no arboricity promise). k >= 1.
MdsResult solve_mds_general(const WeightedGraph& wg, int k,
                            CongestConfig config = {});
MdsResult solve_mds_general(Network& net, int k);

/// Remark 4.4 (Delta unknown; alpha known).
MdsResult solve_mds_unknown_delta(const WeightedGraph& wg, NodeId alpha,
                                  double eps, CongestConfig config = {});
MdsResult solve_mds_unknown_delta(Network& net, NodeId alpha, double eps);

/// Remark 4.5 (alpha unknown; n known). be_knows_alpha selects the
/// orientation prologue flavour: the doubling alpha-free variant (false)
/// or BE10 handed be_alpha_hint as in the remark's citation (true).
MdsResult solve_mds_unknown_alpha(const WeightedGraph& wg, double eps,
                                  CongestConfig config = {},
                                  bool be_knows_alpha = false,
                                  NodeId be_alpha_hint = 1);
MdsResult solve_mds_unknown_alpha(Network& net, double eps,
                                  bool be_knows_alpha = false,
                                  NodeId be_alpha_hint = 1);

/// Observation A.1 (forests; unweighted semantics).
MdsResult solve_mds_tree(const WeightedGraph& wg, CongestConfig config = {});
MdsResult solve_mds_tree(Network& net);

/// Lenzen–Wattenhofer-style threshold greedy baseline
/// (baselines/distributed_greedy.hpp): O(alpha log Delta) on unit
/// weights, deterministic, O(log Delta) phases.
MdsResult solve_mds_greedy_threshold(const WeightedGraph& wg,
                                     CongestConfig config = {});
MdsResult solve_mds_greedy_threshold(Network& net);

/// "Vote for your best neighbor" election greedy baseline: O(1) phases,
/// no worst-case approximation guarantee.
MdsResult solve_mds_greedy_election(const WeightedGraph& wg,
                                    CongestConfig config = {});
MdsResult solve_mds_greedy_election(Network& net);

/// The Theorem 1.2 parameter schedule (exposed for tests/benches):
struct Theorem12Params {
  double eps;
  double lambda;
  double gamma;
};
Theorem12Params theorem12_params(NodeId alpha, std::int64_t t);

}  // namespace arbods
