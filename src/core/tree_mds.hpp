// Observation A.1: on forests (arboricity 1), taking every internal node
// is a single-round 3-approximation of the unweighted MDS.
//
// Corner cases the one-line recipe misses, handled with the same single
// degree-exchange round: isolated nodes must join, and in a K2 component
// (two mutual leaves) the lower-id endpoint joins.
#pragma once

#include <vector>

#include "core/mds_result.hpp"
#include "protocol/phase.hpp"

namespace arbods {

class TreeMds final : public protocol::Phase {
 public:
  TreeMds() = default;

  std::string_view name() const override { return "tree_mds"; }
  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;

  MdsResult result(const Network& net) const;

  static constexpr int kTagDegree = 1;

 private:
  enum class Stage { kAwaitDegrees, kDone };
  Stage stage_ = Stage::kAwaitDegrees;
  // Byte flags, not std::vector<bool>: process_round writes in_set_[v] from
  // parallel workers, and packed bits would race across neighbouring nodes.
  NodeFlags in_set_;
};

}  // namespace arbods
