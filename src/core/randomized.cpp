#include "core/randomized.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "graph/verify.hpp"

namespace arbods {

RandomizedExtension::RandomizedExtension(RandomizedExtensionParams params,
                                         std::optional<ExtensionSeed> seed)
    : params_(params), seed_(std::move(seed)) {
  ARBODS_CHECK_MSG(params_.lambda > 0.0, "lambda must be positive");
  ARBODS_CHECK_MSG(params_.gamma > 1.0, "gamma must exceed 1");
}

void RandomizedExtension::bind(protocol::PhaseContext& ctx) {
  if (seed_.has_value()) return;
  if (const PartialDsHandoff* h = ctx.find<PartialDsHandoff>()) {
    ExtensionSeed seed;
    seed.in_set = h->in_set;
    seed.dominated = h->dominated;
    seed.packing = h->packing;
    seed_ = std::move(seed);
  }
}

void RandomizedExtension::reduce_dominated() {
  for (WorkerCounter& d : dominated_delta_) {
    ARBODS_CHECK(static_cast<std::int64_t>(num_undominated_) >= d.value);
    num_undominated_ -= static_cast<NodeId>(d.value);
    d.value = 0;
  }
}

void RandomizedExtension::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  const NodeId delta = net.graph().max_degree();
  t_ = std::max<std::int64_t>(
      1, ceil_log_base(params_.gamma, 1.0 / params_.lambda));
  r_ = 1 + std::max<std::int64_t>(
               0, ceil_log_base(params_.gamma,
                                static_cast<double>(delta) + 1.0));
  phase_ = 0;
  iter_ = 0;
  used_fallback_ = false;
  big_x_.assign(n, 0.0);
  dominated_delta_.assign(static_cast<std::size_t>(net.num_workers()),
                          WorkerCounter{});

  if (seed_.has_value()) {
    ARBODS_CHECK(seed_->in_set.size() == n && seed_->dominated.size() == n &&
                 seed_->packing.size() == n);
    in_set_ = seed_->in_set;
    dominated_ = seed_->dominated;
    x_ = seed_->packing;
    num_undominated_ = 0;
    for (NodeId v = 0; v < n; ++v)
      if (!dominated_[v]) ++num_undominated_;
    if (n == 0 || num_undominated_ == 0) {
      stage_ = Stage::kDone;
      return;
    }
    start_phase(net);
    return;
  }

  // Theorem 1.3 mode: S empty, x_v = tau_v/(Delta+1) after a weight round.
  in_set_.assign(n, false);
  dominated_.assign(n, false);
  x_.assign(n, 0.0);
  num_undominated_ = n;
  if (n == 0) {
    stage_ = Stage::kDone;
    return;
  }
  net.for_nodes([&](NodeId v) {
    net.broadcast(v, Message::tagged(kTagWeight).add_weight(net.weight(v)));
  });
  stage_ = Stage::kAwaitWeights;
}

void RandomizedExtension::start_phase(Network& net) {
  if (phase_ == 0) initial_x_ = x_;
  ++phase_;
  iter_ = 0;
  p_ = 1.0 / (static_cast<double>(net.graph().max_degree()) + 1.0);
  const bool first_phase = phase_ == 1;
  net.for_nodes([&](NodeId v) {
    if (!dominated_[v]) {
      if (!first_phase) x_[v] *= params_.gamma;
      net.broadcast(v, Message::tagged(kTagValue).add_real(x_[v]));
    }
  });
  stage_ = Stage::kSample;
}

void RandomizedExtension::process_round(Network& net) {
  const NodeId n = net.num_nodes();

  switch (stage_) {
    case Stage::kAwaitWeights: {
      const double delta_plus_1 =
          static_cast<double>(net.graph().max_degree()) + 1.0;
      net.for_nodes([&](NodeId v) {
        Weight best = net.weight(v);
        for (const MessageView m : net.inbox(v))
          if (m.tag() == kTagWeight) best = std::min(best, m.weight_at(1));
        x_[v] = static_cast<double>(best) / delta_plus_1;
      });
      start_phase(net);
      break;
    }

    case Stage::kSample: {
      ++iter_;
      const bool phase_opening = iter_ == 1;
      net.for_nodes([&](NodeId u) {
        if (phase_opening) {
          // Rebuild X_u from the phase-start broadcasts.
          double sum = dominated_[u] ? 0.0 : x_[u];
          for (const MessageView m : net.inbox(u))
            if (m.tag() == kTagValue) sum += m.real_at(1);
          big_x_[u] = sum;
        } else {
          // Deduct neighbors that announced domination last round.
          for (const MessageView m : net.inbox(u))
            if (m.tag() == kTagDominated) big_x_[u] -= m.real_at(1);
        }
        // Gamma membership + sampling.
        if (in_set_[u]) return;
        if (big_x_[u] <
            static_cast<double>(net.weight(u)) / params_.gamma)
          return;
        if (!net.rng(u).next_bernoulli(p_)) return;
        in_set_[u] = true;
        const bool was_undominated = !dominated_[u];
        if (was_undominated) {
          dominated_[u] = true;
          ++dominated_delta_[net.worker_index()].value;
          big_x_[u] -= x_[u];
        }
        net.broadcast(u, Message::tagged(kTagJoin)
                             .add_real(x_[u])
                             .add_flag(was_undominated));
      });
      reduce_dominated();
      p_ = std::min(p_ * params_.gamma, 1.0);
      stage_ = Stage::kDominate;
      break;
    }

    case Stage::kDominate: {
      net.for_nodes([&](NodeId v) {
        bool newly_dominated = false;
        for (const MessageView m : net.inbox(v)) {
          if (m.tag() != kTagJoin) continue;
          // A joining neighbor dominates v ...
          if (!dominated_[v]) {
            dominated_[v] = true;
            ++dominated_delta_[net.worker_index()].value;
            big_x_[v] -= x_[v];
            newly_dominated = true;
          }
          // ... and if it was undominated, its x leaves X_v.
          if (m.flag_at(2)) big_x_[v] -= m.real_at(1);
        }
        if (newly_dominated)
          net.broadcast(v, Message::tagged(kTagDominated).add_real(x_[v]));
      });
      reduce_dominated();
      if (iter_ < r_) {
        stage_ = Stage::kSample;
      } else if (num_undominated_ > 0 && phase_ < t_) {
        start_phase(net);
      } else if (num_undominated_ > 0) {
        stage_ = Stage::kFallback;  // should be unreachable (see header)
      } else {
        stage_ = Stage::kDone;
      }
      break;
    }

    case Stage::kFallback: {
      used_fallback_ = true;
      for (NodeId v = 0; v < n; ++v) {
        if (!dominated_[v]) {
          in_set_[v] = true;
          dominated_[v] = true;
          --num_undominated_;
          net.broadcast(v, Message::tagged(kTagJoin)
                               .add_real(x_[v])
                               .add_flag(true));
        }
      }
      stage_ = Stage::kDone;
      break;
    }

    case Stage::kDone:
      break;
  }
}

bool RandomizedExtension::finished(const Network& net) const {
  (void)net;
  return stage_ == Stage::kDone;
}

MdsResult RandomizedExtension::result(const Network& net) const {
  ARBODS_CHECK(stage_ == Stage::kDone);
  MdsResult res;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (in_set_[v]) res.dominating_set.push_back(v);
  res.weight = net.weighted_graph().total_weight(res.dominating_set);
  res.packing = initial_x_.empty() ? x_ : initial_x_;
  res.packing_lower_bound = packing_lower_bound(res.packing);
  res.iterations = phase_;
  res.used_fallback = used_fallback_;
  res.stats = net.stats();
  return res;
}

}  // namespace arbods
