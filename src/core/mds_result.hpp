// Result object returned by every dominating-set solver, carrying enough
// certificates to re-verify the solution independently.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "congest/network.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods {

struct MdsResult {
  /// The dominating set, sorted ascending.
  NodeSet dominating_set;

  /// Total weight of the set.
  Weight weight = 0;

  /// Final packing values (Lemma 2.1 dual); empty if the algorithm does
  /// not produce one (e.g. the tree algorithm).
  std::vector<double> packing;

  /// sum_v x_v — a certified lower bound on OPT when `packing` is feasible.
  double packing_lower_bound = 0.0;

  /// Paper-level iterations of the main loop (r in Lemma 4.1, phase count
  /// in Lemma 4.6, ...). Simulator rounds are in `stats`.
  std::int64_t iterations = 0;

  /// True if a defensive fallback path ran (must stay false; tested).
  bool used_fallback = false;

  // Self-healing columns, nonzero only for the "<solver>+repair"
  // registry variants (src/resilience/repair.hpp): rounds the post-kill
  // repair phase consumed, nodes its election added, and the repaired
  // set's total weight (== `weight` on those variants; kept as its own
  // column so raw and +repair rows stay comparable in scenario JSON).
  std::int64_t repair_rounds = 0;
  std::int64_t repaired_nodes = 0;
  Weight post_repair_weight = 0;

  /// Simulator statistics for the full run (all composed phases).
  RunStats stats;

  /// Bitwise equality over every field (packing doubles compared
  /// exactly, statistics including the per-phase breakdown) — the
  /// determinism audits' single source of truth.
  friend bool operator==(const MdsResult&, const MdsResult&) = default;

  /// weight / packing_lower_bound: an upper bound on the achieved
  /// approximation ratio (>= the true ratio since the bound is <= OPT).
  /// Requires a non-trivial packing.
  double certified_ratio() const;

  /// Throws CheckError unless the set is a valid dominating set of wg,
  /// the recorded weight matches, and (when present) the packing is
  /// feasible within `tol`.
  void validate(const WeightedGraph& wg, double tol = 1e-6) const;
};

}  // namespace arbods
