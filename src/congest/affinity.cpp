#include "congest/affinity.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#if defined(ARBODS_HAVE_NUMA)
#include <numa.h>
#include <numaif.h>
#include <unistd.h>

#include <cstdint>
#endif

namespace arbods {

bool affinity_supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

int affinity_cpu_count() {
  return static_cast<int>(std::thread::hardware_concurrency());
}

bool pin_thread_to_cpu(std::thread::native_handle_type handle, int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
#else
  (void)handle;
  (void)cpu;
  return false;
#endif
}

bool bind_memory_to_cpu(void* ptr, std::size_t bytes, int cpu) {
#if defined(ARBODS_HAVE_NUMA)
  if (ptr == nullptr || bytes == 0 || cpu < 0) return false;
  if (numa_available() < 0) return false;
  const int node = numa_node_of_cpu(cpu);
  if (node < 0) return false;
  // mbind wants page-aligned ranges; round the start up and the end down
  // so only whole pages fully inside the allocation are advised.
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  const std::uintptr_t p = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t begin =
      (p + static_cast<std::uintptr_t>(page) - 1) &
      ~(static_cast<std::uintptr_t>(page) - 1);
  const std::uintptr_t end =
      (p + bytes) & ~(static_cast<std::uintptr_t>(page) - 1);
  if (begin >= end) return false;
  unsigned long mask[(NUMA_NUM_NODES + 8 * sizeof(unsigned long) - 1) /
                     (8 * sizeof(unsigned long))] = {};
  mask[static_cast<std::size_t>(node) / (8 * sizeof(unsigned long))] |=
      1UL << (static_cast<std::size_t>(node) % (8 * sizeof(unsigned long)));
  return mbind(reinterpret_cast<void*>(begin), end - begin, MPOL_PREFERRED,
               mask, NUMA_NUM_NODES, 0) == 0;
#else
  (void)ptr;
  (void)bytes;
  (void)cpu;
  return false;
#endif
}

}  // namespace arbods
