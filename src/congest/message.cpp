#include "congest/message.hpp"

#include <bit>

#include "common/check.hpp"

namespace arbods {

int MessageSizeModel::width_of(FieldKind kind) const {
  switch (kind) {
    case FieldKind::kNodeId: return id_bits;
    case FieldKind::kWeight: return weight_bits;
    case FieldKind::kLevel: return level_bits;
    case FieldKind::kFlag: return flag_bits;
    case FieldKind::kReal: return real_bits;
    case FieldKind::kTag: return tag_bits;
  }
  return 0;
}

// ----------------------------------------------------------------- builder

Message& Message::push(const Field& f) {
  if (size_ < kInlineFields) {
    inline_[size_] = f;
  } else {
    overflow_.push_back(f);
  }
  ++size_;
  return *this;
}

const Field& Message::field(std::size_t i) const {
  ARBODS_CHECK_MSG(i < size_, "field index " << i << " out of range");
  return i < kInlineFields ? inline_[i] : overflow_[i - kInlineFields];
}

Message Message::tagged(int tag) {
  Message m;
  m.push({FieldKind::kTag, tag, 0.0});
  return m;
}

Message& Message::add_id(NodeId v) {
  return push({FieldKind::kNodeId, static_cast<std::int64_t>(v), 0.0});
}

Message& Message::add_weight(Weight w) {
  return push({FieldKind::kWeight, w, 0.0});
}

Message& Message::add_level(std::int64_t level) {
  return push({FieldKind::kLevel, level, 0.0});
}

Message& Message::add_flag(bool b) {
  return push({FieldKind::kFlag, b ? 1 : 0, 0.0});
}

Message& Message::add_real(double x) {
  return push({FieldKind::kReal, 0, x});
}

Message& Message::add_tag(int tag) {
  return push({FieldKind::kTag, tag, 0.0});
}

const Field& Message::field_checked(std::size_t i, FieldKind kind) const {
  const Field& f = field(i);
  ARBODS_CHECK_MSG(f.kind == kind, "field " << i << " kind mismatch");
  return f;
}

int Message::tag() const {
  if (size_ == 0 || inline_[0].kind != FieldKind::kTag) return -1;
  return static_cast<int>(inline_[0].ivalue);
}

int Message::tag_at(std::size_t i) const {
  return static_cast<int>(field_checked(i, FieldKind::kTag).ivalue);
}

NodeId Message::id_at(std::size_t i) const {
  return static_cast<NodeId>(field_checked(i, FieldKind::kNodeId).ivalue);
}

Weight Message::weight_at(std::size_t i) const {
  return field_checked(i, FieldKind::kWeight).ivalue;
}

std::int64_t Message::level_at(std::size_t i) const {
  return field_checked(i, FieldKind::kLevel).ivalue;
}

bool Message::flag_at(std::size_t i) const {
  return field_checked(i, FieldKind::kFlag).ivalue != 0;
}

double Message::real_at(std::size_t i) const {
  return field_checked(i, FieldKind::kReal).rvalue;
}

int Message::bit_size(const MessageSizeModel& model) const {
  int bits = 0;
  for (std::size_t i = 0; i < size_; ++i) bits += model.width_of(kind_at(i));
  return bits;
}

void Message::quantize_reals(const FixedPointCodec& codec) {
  for (std::size_t i = 0; i < size_; ++i) {
    Field& f = i < kInlineFields ? inline_[i] : overflow_[i - kInlineFields];
    if (f.kind == FieldKind::kReal) f.rvalue = codec.decode(codec.encode(f.rvalue));
  }
}

// --------------------------------------------------------------- wire form

namespace {

constexpr std::size_t kKindsPerWord = 16;  // 4-bit nibbles

std::size_t kind_words(std::size_t num_fields) {
  return (num_fields + kKindsPerWord - 1) / kKindsPerWord;
}

// Bit stream helpers over a zeroed payload region. `pos` is a bit offset;
// values span at most two words (width <= 64).
void put_bits(std::uint64_t* payload, std::size_t pos, std::uint64_t value,
              int width) {
  if (width == 0) return;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  value &= mask;
  const std::size_t word = pos >> 6;
  const int off = static_cast<int>(pos & 63);
  payload[word] |= value << off;
  if (off + width > 64) payload[word + 1] |= value >> (64 - off);
}

std::uint64_t get_bits(const std::uint64_t* payload, std::size_t pos,
                       int width) {
  if (width == 0) return 0;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  const std::size_t word = pos >> 6;
  const int off = static_cast<int>(pos & 63);
  std::uint64_t v = payload[word] >> off;
  if (off + width > 64) v |= payload[word + 1] << (64 - off);
  return v & mask;
}

// The integer payload of a field as the wire carries it.
std::uint64_t field_wire_value(const Field& f, bool quantized_reals) {
  if (f.kind != FieldKind::kReal)
    return static_cast<std::uint64_t>(f.ivalue);
  if (quantized_reals) return default_value_codec().encode(f.rvalue);
  return std::bit_cast<std::uint64_t>(f.rvalue);
}

}  // namespace

int wire_field_bits(FieldKind kind, const MessageSizeModel& model,
                    bool quantized_reals) {
  if (kind == FieldKind::kReal && !quantized_reals) return 64;
  const int w = model.width_of(kind);
  ARBODS_DCHECK(w >= 0 && w <= 64);
  return w;
}

int wire_payload_bits(const Message& m, const MessageSizeModel& model) {
  return m.bit_size(model);
}

std::size_t wire_words(const Message& m, const MessageSizeModel& model,
                       bool quantized_reals) {
  const std::size_t nf = m.num_fields();
  std::size_t payload_bits = 0;
  for (std::size_t i = 0; i < nf; ++i)
    payload_bits += static_cast<std::size_t>(
        wire_field_bits(m.kind_at(i), model, quantized_reals));
  return 1 + kind_words(nf) + (payload_bits + 63) / 64;
}

std::size_t wire_encode(const Message& m, NodeId sender,
                        const MessageSizeModel& model, bool quantized_reals,
                        std::uint64_t* dst, int* accounted_bits) {
  const std::size_t nf = m.num_fields();
  ARBODS_CHECK_MSG(nf <= 0xffff, "message with " << nf << " fields");
  const std::size_t kwords = kind_words(nf);
  std::uint64_t* payload = dst + 1 + kwords;

  // Kind nibbles, payload bit length and accounted bit length in one pass.
  std::size_t payload_bits = 0;
  int model_bits = 0;
  for (std::size_t w = 0; w < kwords; ++w) {
    std::uint64_t packed = 0;
    const std::size_t base = w * kKindsPerWord;
    const std::size_t end = std::min(nf - base, kKindsPerWord);
    for (std::size_t j = 0; j < end; ++j) {
      const FieldKind kind = m.kind_at(base + j);
      packed |= static_cast<std::uint64_t>(kind) << (4 * j);
      payload_bits += static_cast<std::size_t>(
          wire_field_bits(kind, model, quantized_reals));
      model_bits += model.width_of(kind);
    }
    dst[1 + w] = packed;
  }
  if (accounted_bits != nullptr) *accounted_bits = model_bits;
  const std::size_t payload_words = (payload_bits + 63) / 64;
  const std::size_t total = 1 + kwords + payload_words;
  ARBODS_CHECK_MSG(total <= 0xffff, "wire record of " << total << " words");

  dst[0] = static_cast<std::uint64_t>(sender) |
           (static_cast<std::uint64_t>(nf) << 32) |
           (static_cast<std::uint64_t>(total) << 48);

  for (std::size_t w = 0; w < payload_words; ++w) payload[w] = 0;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    const Field& f = m.field(i);
    const int width = wire_field_bits(f.kind, model, quantized_reals);
    const std::uint64_t value = field_wire_value(f, quantized_reals);
    // The wire is lossless for every value the solvers send: ids < n,
    // weights <= the instance maximum, levels/counters within the model's
    // budget, tags < 16. A wider value here (including a negative integer
    // field, which sign-extends to all-ones) is a solver bug, not a
    // quantization channel — fail loudly instead of truncating to garbage.
    ARBODS_CHECK_MSG(width >= 64 || (value >> width) == 0,
                     "field " << i << " value " << value << " exceeds "
                              << width << "-bit wire width");
    put_bits(payload, pos, value, width);
    pos += static_cast<std::size_t>(width);
  }
  return total;
}

// ------------------------------------------------------------------ views

FieldKind MessageView::kind_at(std::size_t i) const {
  ARBODS_CHECK_MSG(i < num_fields(), "field index " << i << " out of range");
  const std::uint64_t word = words_[1 + i / kKindsPerWord];
  return static_cast<FieldKind>((word >> (4 * (i % kKindsPerWord))) & 0xf);
}

std::uint64_t MessageView::payload_bits_at(std::size_t i, FieldKind kind) const {
  const std::size_t nf = num_fields();
  ARBODS_CHECK_MSG(i < nf, "field index " << i << " out of range");
  ARBODS_CHECK_MSG(kind_at(i) == kind, "field " << i << " kind mismatch");
  const std::uint64_t* payload = words_ + 1 + kind_words(nf);
  std::size_t pos = 0;
  for (std::size_t j = 0; j < i; ++j)
    pos += static_cast<std::size_t>(
        wire_field_bits(kind_at(j), *model_, quantized_));
  return get_bits(payload, pos, wire_field_bits(kind, *model_, quantized_));
}

int MessageView::tag() const {
  // The hottest accessor in the simulator (called once per delivered
  // message by every multiplexing algorithm): hand-specialized for field 0
  // at payload offset 0 — three dependent loads and a mask, no scans.
  const std::size_t nf = (words_[0] >> 32) & 0xffffu;
  if (nf == 0 || static_cast<FieldKind>(words_[1] & 0xf) != FieldKind::kTag)
    return -1;
  const std::uint64_t* payload = words_ + 1 + kind_words(nf);
  const int width = model_->tag_bits;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  return static_cast<int>(payload[0] & mask);
}

int MessageView::tag_at(std::size_t i) const {
  return static_cast<int>(payload_bits_at(i, FieldKind::kTag));
}

NodeId MessageView::id_at(std::size_t i) const {
  return static_cast<NodeId>(payload_bits_at(i, FieldKind::kNodeId));
}

Weight MessageView::weight_at(std::size_t i) const {
  return static_cast<Weight>(payload_bits_at(i, FieldKind::kWeight));
}

std::int64_t MessageView::level_at(std::size_t i) const {
  return static_cast<std::int64_t>(payload_bits_at(i, FieldKind::kLevel));
}

bool MessageView::flag_at(std::size_t i) const {
  return payload_bits_at(i, FieldKind::kFlag) != 0;
}

double MessageView::real_at(std::size_t i) const {
  const std::uint64_t bits = payload_bits_at(i, FieldKind::kReal);
  if (quantized_) return default_value_codec().decode(bits);
  return std::bit_cast<double>(bits);
}

}  // namespace arbods
