#include "congest/message.hpp"

#include "common/check.hpp"

namespace arbods {

int MessageSizeModel::width_of(FieldKind kind) const {
  switch (kind) {
    case FieldKind::kNodeId: return id_bits;
    case FieldKind::kWeight: return weight_bits;
    case FieldKind::kLevel: return level_bits;
    case FieldKind::kFlag: return flag_bits;
    case FieldKind::kReal: return real_bits;
    case FieldKind::kTag: return tag_bits;
  }
  return 0;
}

Message Message::tagged(int tag) {
  Message m;
  m.fields_.push_back({FieldKind::kTag, tag, 0.0});
  return m;
}

Message& Message::add_id(NodeId v) {
  fields_.push_back({FieldKind::kNodeId, static_cast<std::int64_t>(v), 0.0});
  return *this;
}

Message& Message::add_weight(Weight w) {
  fields_.push_back({FieldKind::kWeight, w, 0.0});
  return *this;
}

Message& Message::add_level(std::int64_t level) {
  fields_.push_back({FieldKind::kLevel, level, 0.0});
  return *this;
}

Message& Message::add_flag(bool b) {
  fields_.push_back({FieldKind::kFlag, b ? 1 : 0, 0.0});
  return *this;
}

Message& Message::add_real(double x) {
  fields_.push_back({FieldKind::kReal, 0, x});
  return *this;
}

const Field& Message::field_checked(std::size_t i, FieldKind kind) const {
  ARBODS_CHECK_MSG(i < fields_.size(), "field index " << i << " out of range");
  ARBODS_CHECK_MSG(fields_[i].kind == kind, "field " << i << " kind mismatch");
  return fields_[i];
}

int Message::tag() const {
  if (fields_.empty() || fields_[0].kind != FieldKind::kTag) return -1;
  return static_cast<int>(fields_[0].ivalue);
}

NodeId Message::id_at(std::size_t i) const {
  return static_cast<NodeId>(field_checked(i, FieldKind::kNodeId).ivalue);
}

Weight Message::weight_at(std::size_t i) const {
  return field_checked(i, FieldKind::kWeight).ivalue;
}

std::int64_t Message::level_at(std::size_t i) const {
  return field_checked(i, FieldKind::kLevel).ivalue;
}

bool Message::flag_at(std::size_t i) const {
  return field_checked(i, FieldKind::kFlag).ivalue != 0;
}

double Message::real_at(std::size_t i) const {
  return field_checked(i, FieldKind::kReal).rvalue;
}

int Message::bit_size(const MessageSizeModel& model) const {
  int bits = 0;
  for (const Field& f : fields_) bits += model.width_of(f.kind);
  return bits;
}

void Message::quantize_reals(const FixedPointCodec& codec) {
  for (Field& f : fields_)
    if (f.kind == FieldKind::kReal) f.rvalue = codec.decode(codec.encode(f.rvalue));
}

}  // namespace arbods
