// Round-synchronous CONGEST network simulator.
//
// Execution model (matching Section 2 of the paper):
//   * The communication graph equals the input graph.
//   * Time advances in synchronous rounds. In every round each node may
//     send one message per incident edge (possibly different per edge);
//     messages are delivered at the start of the next round.
//   * Message width is capped at O(log n) bits: `max_message_bits`
//     (default 4 * ceil(log2(n+1)), at least 32). Oversized sends throw.
//   * Initially a node knows only: its id, its weight, its neighbor count,
//     and the globally known parameters the algorithm is promised
//     (Delta, alpha, n, eps) — what an algorithm reads is by discipline
//     restricted to the NodeView API plus its own per-node state.
//
// A DistributedAlgorithm owns all per-node state (struct-of-vectors) and is
// driven by Network::run(). This keeps the hot loop virtual-call-free per
// node and allocation-free per round, while the NodeView/send API preserves
// the locality discipline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "congest/message.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods {

struct CongestConfig {
  /// Message cap = max(64, log_factor * ceil(log2(n+1))) bits, unless
  /// explicitly overridden by max_message_bits_override.
  int log_factor = 4;
  int max_message_bits_override = 0;  // 0 = derive from log_factor
  /// Enforce the cap (disable only for diagnostics).
  bool enforce_message_size = true;
  /// Quantize kReal fields through the fixed-point codec at send time.
  bool quantize_reals = true;
  /// Seed for all per-node randomness.
  std::uint64_t seed = 0xa5a5a5a5ULL;
};

/// The per-message bit cap a Network with this config enforces on an
/// n-node instance. Shared with tests/oracles so they assert the exact
/// number the simulator uses.
int congest_message_cap(const CongestConfig& config, NodeId n);

struct RunStats {
  std::int64_t rounds = 0;            // process_round invocations
  std::int64_t messages = 0;          // per-edge message deliveries
  std::int64_t total_bits = 0;        // sum of message widths
  int max_message_bits = 0;           // widest single message observed
  bool hit_round_limit = false;
};

class Network;

/// Base class for round-synchronous distributed algorithms.
///
/// Contract: `initialize` and `process_round` must treat per-node state in
/// a local manner — the code for node v may read only v's own state, v's
/// inbox, and the public instance parameters. Verified by code review and
/// by the message-size/round statistics the simulator reports.
class DistributedAlgorithm {
 public:
  virtual ~DistributedAlgorithm() = default;

  /// Set up per-node state; may send round-0 messages.
  virtual void initialize(Network& net) = 0;

  /// One synchronous round: every node reads its inbox and sends.
  virtual void process_round(Network& net) = 0;

  /// Global termination predicate (checked by the driver after each round;
  /// in a real network this is knowledge of the a-priori round bound).
  virtual bool finished(const Network& net) const = 0;
};

class Network {
 public:
  Network(const WeightedGraph& wg, CongestConfig config = {});

  // --- topology / instance access (public parameters) ---
  NodeId num_nodes() const { return wg_->num_nodes(); }
  const Graph& graph() const { return wg_->graph(); }
  const WeightedGraph& weighted_graph() const { return *wg_; }
  Weight weight(NodeId v) const { return wg_->weight(v); }
  std::span<const NodeId> neighbors(NodeId v) const {
    return wg_->graph().neighbors(v);
  }
  NodeId degree(NodeId v) const { return wg_->graph().degree(v); }

  int max_message_bits() const { return max_message_bits_; }
  const MessageSizeModel& size_model() const { return size_model_; }

  /// Per-node deterministic RNG stream.
  Rng& rng(NodeId v);

  // --- communication (called from within process_round/initialize) ---
  void send(NodeId from, NodeId to, Message m);
  void broadcast(NodeId from, Message m);

  /// Messages delivered to v at the start of the current round.
  std::span<const Message> inbox(NodeId v) const;

  std::int64_t current_round() const { return round_; }

  // --- driving ---
  /// Runs until algo.finished() or max_rounds; returns statistics.
  RunStats run(DistributedAlgorithm& algo, std::int64_t max_rounds = 1'000'000);

  const RunStats& stats() const { return stats_; }

 private:
  void flip_buffers();
  void account(const Message& m);

  const WeightedGraph* wg_;
  CongestConfig config_;
  MessageSizeModel size_model_;
  int max_message_bits_ = 0;
  std::int64_t round_ = 0;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::vector<Message>> outboxes_;
  std::vector<Rng> node_rngs_;
  RunStats stats_;
};

}  // namespace arbods
