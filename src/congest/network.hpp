// Round-synchronous CONGEST network simulator.
//
// Execution model (matching Section 2 of the paper):
//   * The communication graph equals the input graph.
//   * Time advances in synchronous rounds. In every round each node may
//     send one message per incident edge (possibly different per edge);
//     messages are delivered at the start of the next round.
//   * Message width is capped at O(log n) bits: `max_message_bits`
//     (default 4 * ceil(log2(n+1)), at least 64). Oversized sends throw.
//   * Initially a node knows only: its id, its weight, its neighbor count,
//     and the globally known parameters the algorithm is promised
//     (Delta, alpha, n, eps) — what an algorithm reads is by discipline
//     restricted to the NodeView API plus its own per-node state.
//
// Delivery internals (the scaling hot path):
//   * Messages live bit-packed in two flat std::uint64_t arenas (double
//     buffering; see message.hpp for the record layout). Each directed
//     edge owns a fixed word region (a "lane") in both arenas, indexed by
//     CSR edge offsets: the lane for a message u->v sits inside v's
//     contiguous CSR range, so inbox(v) is a pointer walk over v's region
//     and messages arrive ordered by sender id. A precomputed mirror
//     permutation maps each outgoing arc to the receiver-side lane, so a
//     send encodes straight into its destination region — no per-message
//     heap object exists anywhere on the path, and a steady-state round
//     performs zero allocations.
//   * A lane that outgrows its region in one round spills to a per-worker
//     side buffer; the next flip merges the spill back and permanently
//     doubles that lane's region (amortized re-layout), so chatty edges
//     stop allocating after warm-up too.
//   * Each directed edge has exactly one writer (its tail), so sends from
//     distinct nodes never race: per-round work is partitioned across a
//     worker pool (`CongestConfig::threads`) with no locks on the delivery
//     path. Per-worker statistics slots and per-node RNG streams keep runs
//     bit-identical regardless of thread count.
//   * Only lanes actually written are cleared between rounds (tracked per
//     worker), so a round costs O(delivered messages), not O(m).
//   * The simulator additionally maintains an *active set*: the nodes that
//     received at least one message this round plus the nodes that called
//     arm() last round. Event-driven algorithms route their loops through
//     for_active_nodes and pay O(active + delivered) per round instead of
//     O(n) — on instances that converge region-by-region most rounds touch
//     a small and shrinking worklist.
//
// A DistributedAlgorithm owns all per-node state (struct-of-vectors) and is
// driven by Network::run(). This keeps the hot loop virtual-call-free per
// node and allocation-free per round, while the NodeView/send API preserves
// the locality discipline. Algorithms opt into the worker pool by routing
// their per-node loops through Network::for_nodes / for_active_nodes; the
// code for node v must then touch only v's own slots of the algorithm's
// per-node arrays (and must not use std::vector<bool>, whose packed bits
// are not per-element thread-safe).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/function_ref.hpp"
#include "common/random.hpp"
#include "common/types.hpp"
#include "congest/message.hpp"
#include "congest/worker_pool.hpp"
#include "fault/fault_spec.hpp"
#include "graph/weighted_graph.hpp"
#include "obs/trace.hpp"

namespace arbods {

struct CongestConfig {
  /// Message cap = max(64, log_factor * ceil(log2(n+1))) bits, unless
  /// explicitly overridden by max_message_bits_override.
  int log_factor = 4;
  int max_message_bits_override = 0;  // 0 = derive from log_factor
  /// Enforce the cap (disable only for diagnostics).
  bool enforce_message_size = true;
  /// Quantize kReal fields through the fixed-point codec at send time.
  bool quantize_reals = true;
  /// Seed for all per-node randomness.
  std::uint64_t seed = 0xa5a5a5a5ULL;
  /// Worker-pool width for for_nodes/for_active_nodes. 1 = serial
  /// (default); 0 = std::thread::hardware_concurrency(). Results are
  /// bit-identical for every value.
  int threads = 1;
  /// Initial per-lane arena region in 64-bit words (including the length
  /// word). 0 = derive from the message cap: the length word plus room
  /// for one cap-sized record; lanes that carry more in a round spill
  /// once and regrow individually. Tests set a tiny value to exercise the
  /// spill/regrow path.
  int lane_capacity_words_hint = 0;
  /// Number of shards the instance is partitioned into. 1 (default) =
  /// the classic single-arena Network; K > 1 = a ShardedNetwork facade
  /// over K per-shard Networks joined by the inter-shard message bridge
  /// (see src/shard/). Results are bit-identical for every value; the
  /// knob only changes how the lane arenas are laid out and driven.
  /// Honored by shard::make_network (constructing a plain Network
  /// ignores it).
  int shards = 1;
  /// Adversarial fault model applied to every message and node. Honored
  /// by fault::make_network, which wraps the (sharded or plain) simulator
  /// in a fault::FaultyNetwork when the spec is enabled(); constructing a
  /// Network directly ignores it. A default (inert) spec costs nothing.
  fault::FaultSpec fault{};
  /// Hard per-phase round cap applied on top of the caller's max_rounds
  /// (the effective limit is the smaller of the two); 0 = no extra cap.
  /// Faulty runs set this so a solver starved of messages (e.g. under
  /// drop-probability 1) terminates via PhaseStats::hit_round_limit
  /// instead of spinning out the default million-round budget.
  std::int64_t round_limit = 0;
  /// Pin the worker-pool threads to CPUs (WorkerPool's affinity policy:
  /// spawned worker w -> CPU w % count, worker 0 / the calling thread
  /// never pinned, graceful no-op where unsupported). With shards > 1
  /// this also turns on shard-affine dispatch: for_nodes /
  /// for_active_nodes / flip chunks follow the shard->worker-group
  /// assignment, and member arenas are first-touch-initialized by their
  /// owning group. Placement only — results are bit-identical either way.
  bool pin_threads = false;
  /// Drive enable_traffic_profile -> measured_plan -> adopt_plan
  /// automatically at phase boundaries (ProtocolRunner honors it on the
  /// sharded simulator; a plain Network ignores it). Deterministic: the
  /// measured profile is a pure function of the algorithm's traffic, so
  /// every width and shard count replans identically (tested).
  bool auto_replan = false;
  /// Auto-replan hysteresis: adopt a refined plan only when its measured
  /// cut volume is below (1 - replan_hysteresis) * the current plan's,
  /// so cheap phases don't thrash the member arenas for marginal wins.
  double replan_hysteresis = 0.05;
  /// Run every phase through the reliable-delivery adapter
  /// (resilience::ReliablePhase): exactly-once, sender-ordered delivery
  /// over drop/duplicate/reorder/delay faults. Honored by ProtocolRunner;
  /// the Network itself only grants the transport-frame cap headroom
  /// (reliable_transport_header_bits on top of congest_message_cap) —
  /// the wrapped algorithm still sees exactly the original cap.
  bool reliable_transport = false;
  /// Observability: span tracing + flight recorder (obs/trace.hpp). The
  /// outermost Network of a decorator stack owns the recorder; inner
  /// layers share it, so one run produces one trace. Default-off is free
  /// on the hot path, and enabling it cannot change results — the timing
  /// breakdown is excluded from every stats comparison.
  obs::TraceOptions trace{};

  friend bool operator==(const CongestConfig&, const CongestConfig&) = default;
};

/// The per-message bit cap a Network with this config enforces on an
/// n-node instance. Shared with tests/oracles so they assert the exact
/// number the simulator uses.
int congest_message_cap(const CongestConfig& config, NodeId n);

/// One named phase's share of a run: every run_phase() call appends one
/// entry to RunStats::phases, so composed protocols get a per-phase
/// rounds/messages/bits breakdown for free. The sum over phases equals
/// the whole-run totals (tested for every registry solver).
struct PhaseStats {
  std::string name;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t total_bits = 0;
  int max_message_bits = 0;
  bool hit_round_limit = false;
  // Fault-injection tallies (always 0 on a clean simulator); see
  // fault/faulty_network.hpp for exactly what each one counts.
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t delayed = 0;
  std::int64_t killed = 0;
  /// Wall-clock breakdown for this phase (always measured). NOT part of
  /// operator== — the determinism and differential suites compare
  /// logical results, and timing can never be bit-stable.
  obs::TimingStats timing;

  friend bool operator==(const PhaseStats& a, const PhaseStats& b) {
    return a.name == b.name && a.rounds == b.rounds &&
           a.messages == b.messages && a.total_bits == b.total_bits &&
           a.max_message_bits == b.max_message_bits &&
           a.hit_round_limit == b.hit_round_limit && a.dropped == b.dropped &&
           a.duplicated == b.duplicated && a.delayed == b.delayed &&
           a.killed == b.killed;
  }
};

struct RunStats {
  std::int64_t rounds = 0;            // process_round invocations
  std::int64_t messages = 0;          // per-edge message deliveries
  std::int64_t total_bits = 0;        // sum of message widths
  int max_message_bits = 0;           // widest single message observed
  bool hit_round_limit = false;
  // Fault-injection tallies; each equals the sum of its per-phase
  // counterparts (tested), and all stay 0 on a clean simulator.
  std::int64_t dropped = 0;           // records discarded in flight
  std::int64_t duplicated = 0;        // adversarial extra copies injected
  std::int64_t delayed = 0;           // copies held >= 1 extra round
  std::int64_t killed = 0;            // records suppressed by dead endpoints
  /// Per-phase breakdown, one entry per run_phase() call (a plain run()
  /// is a single phase named "main").
  std::vector<PhaseStats> phases;
  /// Whole-run wall-clock breakdown (the sum of the per-phase timings).
  /// NOT part of operator== — see PhaseStats::timing.
  obs::TimingStats timing;

  friend bool operator==(const RunStats& a, const RunStats& b) {
    return a.rounds == b.rounds && a.messages == b.messages &&
           a.total_bits == b.total_bits &&
           a.max_message_bits == b.max_message_bits &&
           a.hit_round_limit == b.hit_round_limit && a.dropped == b.dropped &&
           a.duplicated == b.duplicated && a.delayed == b.delayed &&
           a.killed == b.killed && a.phases == b.phases;
  }
};

/// Per-worker cache-line-padded counter for algorithms that must maintain
/// a global tally (e.g. "number of uncovered nodes") from inside a
/// parallel section: each worker bumps its own slot via
/// Network::worker_index() and the algorithm reduces the slots serially
/// after the section — race-free and bit-identical at every pool width.
struct alignas(64) WorkerCounter {
  std::int64_t value = 0;
};

class Network;

/// Base class for round-synchronous distributed algorithms.
///
/// Contract: `initialize` and `process_round` must treat per-node state in
/// a local manner — the code for node v may read only v's own state, v's
/// inbox, and the public instance parameters. Verified by code review and
/// by the message-size/round statistics the simulator reports.
class DistributedAlgorithm {
 public:
  virtual ~DistributedAlgorithm() = default;

  /// Set up per-node state; may send round-0 messages and arm() nodes.
  virtual void initialize(Network& net) = 0;

  /// One synchronous round: every node reads its inbox and sends.
  virtual void process_round(Network& net) = 0;

  /// Global termination predicate (checked by the driver after each round;
  /// in a real network this is knowledge of the a-priori round bound).
  virtual bool finished(const Network& net) const = 0;
};

/// Iterable view over the messages delivered to one node this round: a
/// cursor walk over the node's contiguous CSR lane regions in the arena,
/// skipping empty lanes. Word 0 of every lane region is its used length
/// (so length check and record read hit the same cache line); records
/// start at word 1. Messages appear ordered by sender id (adjacency lists
/// are sorted), with per-sender send order preserved within a lane.
/// Dereferencing yields MessageView values; they (and the InboxView) are
/// valid only for the current round.
class InboxView {
 public:
  class const_iterator {
   public:
    using value_type = MessageView;
    using reference = MessageView;
    using difference_type = std::ptrdiff_t;

    MessageView operator*() const {
      ARBODS_DCHECK(lane_ != view_->end_lane_);
      return MessageView(view_->arena_ + view_->lane_base_[lane_] + 1 + word_,
                         view_->model_, view_->quantized_);
    }
    const_iterator& operator++() {
      word_ += (**this).words();
      settle();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.lane_ == b.lane_ && a.word_ == b.word_;
    }

   private:
    friend class InboxView;
    const_iterator(const InboxView* view, std::size_t lane)
        : view_(view), lane_(lane) {
      settle();
    }
    void settle() {
      while (lane_ != view_->end_lane_ &&
             word_ >= view_->arena_[view_->lane_base_[lane_]]) {
        ++lane_;
        word_ = 0;
      }
      if (lane_ == view_->end_lane_) word_ = 0;
    }

    const InboxView* view_ = nullptr;
    std::size_t lane_ = 0;
    std::size_t word_ = 0;
  };

  const_iterator begin() const { return const_iterator(this, first_lane_); }
  const_iterator end() const { return const_iterator(this, end_lane_); }
  bool empty() const { return begin() == end(); }
  /// First delivered message; the inbox must be non-empty.
  MessageView front() const {
    const const_iterator it = begin();
    ARBODS_DCHECK(!(it == end()));
    return *it;
  }
  /// Number of delivered messages (O(degree + messages)).
  std::size_t size() const;

 private:
  friend class Network;
  InboxView(const std::uint64_t* arena, const std::uint64_t* lane_base,
            std::size_t first_lane, std::size_t end_lane,
            const MessageSizeModel* model, bool quantized)
      : arena_(arena), lane_base_(lane_base), first_lane_(first_lane),
        end_lane_(end_lane), model_(model), quantized_(quantized) {}

  const std::uint64_t* arena_;
  const std::uint64_t* lane_base_;
  std::size_t first_lane_;
  std::size_t end_lane_;
  const MessageSizeModel* model_;
  bool quantized_;
};

namespace shard {
class ShardedNetwork;
}  // namespace shard

namespace fault {
class FaultyNetwork;
}  // namespace fault

namespace resilience {
class ReliableNetwork;
}  // namespace resilience

/// The round-synchronous simulator. The class is also the *driving
/// surface* of the sharded simulator: shard::ShardedNetwork derives from
/// it and overrides the handful of virtual seams below (send/inbox/rng/
/// arm_at plus the per-round internals), so ProtocolRunner, every Phase,
/// and the scenario runner drive a sharded instance through the exact
/// same API with bit-identical results. A plain Network pays one virtual
/// dispatch per seam call and nothing else.
class Network {
 public:
  Network(const WeightedGraph& wg, CongestConfig config = {});
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology / instance access (public parameters) ---
  NodeId num_nodes() const { return wg_->num_nodes(); }
  const Graph& graph() const { return wg_->graph(); }
  const WeightedGraph& weighted_graph() const { return *wg_; }
  Weight weight(NodeId v) const { return wg_->weight(v); }
  std::span<const NodeId> neighbors(NodeId v) const {
    return wg_->graph().neighbors(v);
  }
  NodeId degree(NodeId v) const { return wg_->graph().degree(v); }

  int max_message_bits() const { return max_message_bits_; }
  const MessageSizeModel& size_model() const { return size_model_; }
  /// The config this Network was constructed with (threads/shards/fault
  /// already resolved by the make_network dispatchers upstream).
  const CongestConfig& config() const { return config_; }

  /// Per-node deterministic RNG stream.
  virtual Rng& rng(NodeId v);

  // --- communication (called from within process_round/initialize) ---
  virtual void send(NodeId from, NodeId to, const Message& m);
  virtual void broadcast(NodeId from, const Message& m);

  /// Messages delivered to v at the start of the current round.
  virtual InboxView inbox(NodeId v) const;

  std::int64_t current_round() const { return round_; }

  // --- parallel execution ---
  /// Runs fn(v) for every node, partitioned across the worker pool when
  /// CongestConfig::threads > 1 (contiguous static chunks, so the
  /// assignment — and hence every per-node result — is independent of the
  /// actual thread count). fn(v) must only touch node v's state, v's
  /// inbox, v's RNG stream, and sends/arms originating at v.
  template <typename F>
  void for_nodes(F&& fn) {
    auto chunk = [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v)
        fn(static_cast<NodeId>(v));
    };
    run_index_chunks(num_nodes(), chunk, ChunkDomain::kNodes);
  }

  /// Runs fn(v) for every *active* node: the nodes that received at least
  /// one message this round plus the nodes arm()ed during the previous
  /// round, deduplicated. Same locality contract as for_nodes; each active
  /// node is visited exactly once, on exactly one worker. The set's
  /// contents are a pure function of the algorithm (never of the pool
  /// width); only the visit order varies, which the locality contract
  /// makes unobservable.
  template <typename F>
  void for_active_nodes(F&& fn) {
    ensure_active_set();
    const NodeId* nodes = active_list_.data();
    auto chunk = [&fn, nodes](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(nodes[i]);
    };
    run_index_chunks(active_list_.size(), chunk, ChunkDomain::kActive);
  }

  /// Schedules v to be active next round even if no message arrives. May
  /// only be called from code running as node v (initialize's setup loop
  /// or a for_nodes/for_active_nodes body visiting v): an event-driven
  /// node keeps itself on the worklist by re-arming until it resolves.
  void arm(NodeId v) { arm_at(v, round_ + 1); }

  /// Generalized arm: wake v at a specific future round (> current).
  /// Backed by a per-worker timer wheel, so a node whose next action is at
  /// a locally computable future time (e.g. "when the global threshold
  /// halves below my degree") sleeps through the interim rounds at zero
  /// cost instead of re-arming every round. A message arriving earlier
  /// wakes it anyway; stale earlier wakes are safe (the node just
  /// re-checks and re-schedules). If the algorithm does not consult the
  /// active set in the target round (a for_nodes-only stage), the wake
  /// carries forward round by round and fires in the first round that
  /// does look — deferred, never dropped.
  virtual void arm_at(NodeId v, std::int64_t round);

  /// This round's active set (receivers + previously armed). Mainly for
  /// tests and diagnostics.
  std::span<const NodeId> active_nodes() {
    ensure_active_set();
    return {active_list_.data(), active_list_.size()};
  }

  /// Worker-pool width this Network executes parallel loops with.
  int num_workers() const;

  /// Index of the worker slot the calling thread accounts to (0 when
  /// called outside a parallel section); < num_workers(). For per-worker
  /// reduction state such as WorkerCounter arrays.
  int worker_index() const { return static_cast<int>(worker_slot()); }

  // --- driving ---
  /// Runs until algo.finished() or max_rounds; returns statistics.
  /// Equivalent to reset_for_reuse() followed by one run_phase("main"):
  /// the run starts from the fresh-construction observable state however
  /// dirty the Network is, so a Network can be reused across runs with
  /// bit-identical results.
  RunStats run(DistributedAlgorithm& algo, std::int64_t max_rounds = 1'000'000);

  /// Restores the fresh-construction *observable* state — round 0, empty
  /// lanes/timer wheels/active set, zeroed statistics, per-node RNG
  /// streams re-derived from the config seed — while keeping every
  /// allocation alive: arenas (at their grown sizes), worker pool,
  /// per-worker scratch, RNG stream storage. A run after reset_for_reuse
  /// is byte-identical to a run on a newly constructed Network over the
  /// same graph/config, minus the construction cost (tested).
  virtual void reset_for_reuse();

  /// Runs one named phase of a composed protocol on this Network and
  /// appends its PhaseStats to stats().phases, accumulating into the
  /// run totals. Every phase starts from the fresh-construction
  /// observable state (round 0, empty lanes/timers, freshly seeded RNG
  /// streams) exactly as if it ran on its own Network — which is what
  /// the pre-phase drivers did — but reuses all storage. Cumulative
  /// statistics (stats()) are NOT reset; callers composing several
  /// phases call reset_for_reuse() once up front (ProtocolRunner does).
  const PhaseStats& run_phase(DistributedAlgorithm& algo,
                              std::string_view phase_name,
                              std::int64_t max_rounds = 1'000'000);

  const RunStats& stats() const { return stats_; }

  /// Total arena size in 64-bit words (both double buffers have this
  /// size; a sharded facade reports the sum over its shards).
  /// Diagnostics/tests only — the alloc regression uses it to pin
  /// "arena storage is constructed exactly once per Network".
  virtual std::size_t arena_words() const { return arena_words_; }

  /// The sharded engine behind this Network's deliveries, unwrapping
  /// decorators: the ShardedNetwork facade returns itself, the fault
  /// decorator forwards to its inner engine, a plain single-arena
  /// Network returns nullptr. The seam ProtocolRunner's auto-replanning
  /// and the scenario harness reach the plan/traffic-profile surface
  /// through without knowing the decorator stack.
  virtual shard::ShardedNetwork* sharded_core() { return nullptr; }
  const shard::ShardedNetwork* sharded_core() const {
    return const_cast<Network*>(this)->sharded_core();
  }

  // --- observability ---
  /// The span recorder this Network records into, or nullptr when
  /// tracing is off. Owned by the outermost Network of a decorator stack
  /// (CongestConfig::trace.enabled) and shared down through the inner
  /// layers, so one run produces one trace. snapshot() between runs;
  /// reset_for_reuse clears it, so a post-run snapshot covers exactly
  /// the last run.
  obs::TraceRecorder* tracer() const { return tracer_; }

  /// Accounts wall-clock spent in the reliable-transport receive /
  /// transmit passes into stats().timing (resilience::ReliablePhase
  /// calls this; the passes run outside the Network's own seams).
  void account_retransmit_seconds(double s) {
    stats_.timing.retransmit_seconds += s;
  }

  /// Flight-recorder contents: the last min(flight_rounds, rounds run)
  /// per-round summaries of the current phase, oldest first. Empty when
  /// CongestConfig::trace.flight_rounds == 0.
  std::vector<obs::FlightRecord> flight_records() const;

  /// Human-readable dump of flight_records() (run_phase emits this on
  /// stderr automatically when a phase exhausts its round budget; the
  /// harness calls it when a solver throws CheckError).
  void dump_flight_recorder(std::ostream& os, std::string_view why) const;

 protected:
  /// Tag for the sharded-facade constructor: topology indices, worker
  /// pool, and per-worker encode scratch only — no lane arenas, RNG
  /// streams, timer wheels, or active-set marks (those live in the
  /// per-shard member Networks the facade owns).
  struct FacadeInit {};
  Network(const WeightedGraph& wg, CongestConfig config, FacadeInit);

  /// What an index range passed to run_index_chunks indexes, so a
  /// derived simulator with a shard-affine dispatch table can map the
  /// range onto its shard->worker-group assignment (an index count alone
  /// is ambiguous — an all-active round has as many active indices as
  /// nodes).
  enum class ChunkDomain : std::uint8_t {
    kNodes,   // global node ids [0, num_nodes())
    kActive,  // positions in the current active_list_
    kShards,  // destination shards of a facade flip [0, K)
  };

  /// The pool dispatch behind for_nodes/for_active_nodes, exposed to
  /// derived simulators for flip-time work: partitions [0, count) into
  /// contiguous static chunks (one per worker, same assignment at every
  /// call), runs chunk_fn(begin, end) on each worker with its slot
  /// installed (worker_slot()/worker_index() resolve to the executing
  /// worker inside chunk_fn), and returns after all chunks complete.
  /// Serial (inline, slot 0) when the instance owns no pool. Not
  /// reentrant — must be called from the driver thread between parallel
  /// sections, which is exactly where a flip runs.
  ///
  /// The default split is uniform (count * w / workers). A derived
  /// simulator may override affine_chunk_bounds to substitute its own
  /// contiguous per-worker bounds for a domain — placement only: every
  /// index still runs exactly once, on exactly one worker, and the
  /// locality contract makes the assignment unobservable, so results
  /// stay bit-identical under any bounds (the determinism suite pins
  /// this with affinity enabled).
  void run_index_chunks(std::size_t count,
                        FunctionRef<void(std::size_t, std::size_t)> chunk_fn,
                        ChunkDomain domain = ChunkDomain::kNodes);

  /// Worker slot the calling thread accounts to: the executing worker's
  /// index inside a run_index_chunks section, 0 outside one.
  std::size_t worker_slot() const;

 private:
  friend class shard::ShardedNetwork;
  friend class fault::FaultyNetwork;
  friend class resilience::ReliableNetwork;

  /// Lane index into the flat per-directed-edge buffers.
  using EdgeSlot = std::uint32_t;

  /// Shard-member construction: the Network owns the lane arenas for the
  /// in-arcs of the contiguous node block [node_begin, node_end), plus
  /// that block's RNG streams, timer wheels, and active-set state — all
  /// keyed by *global* node ids so behavior is bit-identical to the
  /// unsharded simulator. Per-worker scratch is sized for the facade's
  /// pool (`workers`), whose threads execute the deposits; the member
  /// itself owns no pool and is never driven via run()/run_phase().
  struct SliceInit {
    NodeId node_begin;
    NodeId node_end;
    int workers;
    /// Skip the serial lane-length/calendar/scratch initialization in the
    /// constructor; the owner must then run first_touch_lane_range /
    /// first_touch_worker_state over the whole member before first use.
    /// The sharded facade sets this under pin_threads so each arena page
    /// is first touched — and so physically placed — by the worker group
    /// that owns it, instead of by whichever thread built the members.
    bool defer_first_touch = false;
  };
  Network(const WeightedGraph& wg, CongestConfig config, SliceInit slice);

  struct alignas(64) WorkerStats {
    std::int64_t messages = 0;
    std::int64_t total_bits = 0;
    int max_message_bits = 0;
    // Fault tallies; only a FaultyNetwork's slots ever see nonzero values.
    std::int64_t dropped = 0;
    std::int64_t duplicated = 0;
    std::int64_t delayed = 0;
    std::int64_t killed = 0;
  };

  /// One worker's overflow storage: whole wire records that did not fit
  /// their lane region this round, merged back (and the lane regrown) at
  /// the next flip.
  struct SpillRec {
    EdgeSlot lane;
    std::uint32_t begin;  // word range in `words`
    std::uint32_t end;
  };
  struct WorkerSpill {
    std::vector<std::uint64_t> words;
    std::vector<SpillRec> recs;
    // Byte mark per lane (allocated lazily on a worker's first spill, freed
    // by the post-run shrink) so the has-this-lane-spilled check on every
    // deposit stays O(1) even on spill-heavy rounds; entries set here are
    // cleared from `recs` when the spill is merged.
    std::vector<std::uint8_t> lane_marked;
  };

  // Virtual per-round / per-phase seams: run(), run_phase(), and
  // reset_for_reuse() are written once against these, and the sharded
  // facade overrides them to fan the work out over its shard members
  // (inject the bridge buffers, flip every shard, union the active sets).
  virtual void flip_buffers();
  virtual void clear_all_lanes();
  virtual void reseed_node_rngs();
  virtual void rebuild_active_set();
  virtual void shrink_scratch();
  /// Deposits an already-encoded wire record into the out-arena lane
  /// addressed by a GLOBAL receiver-side arc index, from the calling
  /// worker's slot. The decorator seam fault::FaultyNetwork delivers
  /// through: the base class writes its own arena directly, while the
  /// sharded facade routes to the owning member's local lane — so fault
  /// delivery composes with sharding without knowing the layout.
  virtual void deposit_wire(EdgeSlot glane, const std::uint64_t* words,
                            std::size_t nwords);
  /// Shard-affine dispatch hook for run_index_chunks: fill `bounds`
  /// (resized to workers + 1, bounds[0] = 0, bounds[workers] = count,
  /// non-decreasing) and return true to replace the uniform split for
  /// this call. The base simulator always declines; the sharded facade
  /// answers when pinning enabled its dispatch tables and `count`
  /// matches the domain's size.
  virtual bool affine_chunk_bounds(ChunkDomain domain, std::size_t count,
                                   std::vector<std::size_t>& bounds);
  /// Wire records currently parked in spill buffers awaiting the next
  /// flip's merge (flight-recorder diagnostics; the sharded facade sums
  /// its members, the fault decorator forwards to its engine).
  virtual std::int64_t pending_spill_records() const;
  /// Build the active set if the current round's flip marked it dirty.
  /// The single seam behind for_active_nodes/active_nodes — and
  /// deliberately NOT called by the flight recorder: forcing a rebuild
  /// drains due timer buckets the flip would otherwise carry forward,
  /// which changes behavior for for_nodes-only algorithms.
  void ensure_active_set() {
    if (active_dirty_) rebuild_active_set();
  }
  /// Appends one flight-recorder line for the round just processed (a
  /// plain ring store; called by run_phase after each round).
  void flight_note_round(const obs::FlightRecord& rec);
  /// Deferred-construction halves of SliceInit::defer_first_touch: zero
  /// the length words of lanes [lane_begin, lane_end) in both arenas /
  /// initialize worker w's calendar ring and encode scratch. Idempotent
  /// on a fresh member; called by the owning facade from inside its
  /// first-touch dispatch so the touching worker places the pages.
  void first_touch_lane_range(std::size_t lane_begin, std::size_t lane_end);
  void first_touch_worker_state(std::size_t w);
  void merge_spills_and_grow();
  struct WorkerCalendar;
  void arm_into(WorkerCalendar& cal, NodeId v, std::int64_t round);
  /// Message widths + cap from the global instance (all constructors).
  void init_size_model();
  /// Full-range CSR offsets, mirror permutation, and lane -> receiver
  /// map (standalone and facade constructors); returns the arc count.
  std::size_t build_csr_topology();
  /// Arc index of edge (from, to) via binary search over from's sorted
  /// neighbors; throws on a non-edge. Full-range Networks only.
  std::size_t resolve_arc(NodeId from, NodeId to) const;
  /// Encodes m into scratch_[w] (growing it as needed) and cap-checks
  /// before anything is deposited; returns the wire word count and the
  /// accounted bits through *bits. The single encode-side contract shared
  /// by broadcast, tight-lane deposits, and the inter-shard bridge.
  std::size_t encode_into_scratch(std::size_t w, const Message& m,
                                  NodeId sender, int* bits);
  void check_cap(int bits) const;
  void account_bits(int bits);
  /// Encodes m into the lane (or spill), cap-checking before committing;
  /// returns the accounted bits from the encode pass.
  int deposit_encoded(EdgeSlot lane, const Message& m, NodeId sender);
  void deposit_words(std::size_t worker, EdgeSlot lane,
                     const std::uint64_t* words, std::size_t nwords);
  bool lane_spilled(std::size_t worker, EdgeSlot lane) const;
  void reduce_stats();

  const WeightedGraph* wg_;
  CongestConfig config_;
  MessageSizeModel size_model_;
  int max_message_bits_ = 0;
  std::int64_t round_ = 0;

  // Shard-member state: first owned global node id (0 for a full-range
  // Network — every per-node index below is `v - node_begin_`, which the
  // unsharded case compiles down to `v`), and whether this Network is a
  // facade-owned member (sends then route through the facade, never
  // through this object's send/broadcast).
  NodeId node_begin_ = 0;
  bool is_shard_member_ = false;

  // CSR arc offsets (offsets_[v]..offsets_[v+1] are v's incident lanes in
  // receiver order), the out-arc -> receiver-lane mirror permutation, and
  // the lane -> receiver map used by the active-set builder.
  std::vector<std::size_t> offsets_;
  std::vector<EdgeSlot> mirror_;
  std::vector<NodeId> lane_receiver_;

  // Shared lane layout: lane l owns words [lane_base_[l], lane_base_[l+1])
  // of both arenas; word 0 of the region is the lane's used length (same
  // cache line as the records it guards — a deposit or inbox scan costs
  // one memory touch per lane, not two), records follow from word 1.
  // Double-buffered: the in-arena holds this round's deliveries, the
  // out-arena collects next round's. Beyond the length words the storage
  // is deliberately *uninitialized* (every wire record fully initializes
  // the words it claims, and the length word guards reads), so
  // constructing a Network never pays an O(arena) zero-fill.
  std::vector<std::uint64_t> lane_base_;
  std::size_t arena_words_ = 0;
  std::unique_ptr<std::uint64_t[]> arena_a_, arena_b_;
  std::unique_ptr<std::uint64_t[]>* in_arena_ = nullptr;
  std::unique_ptr<std::uint64_t[]>* out_arena_ = nullptr;

  // Lanes written this round / holding this round's inbox, per worker, so
  // a flip clears O(messages) lanes instead of O(m).
  std::vector<std::vector<EdgeSlot>> touched_out_;
  std::vector<std::vector<EdgeSlot>> touched_in_;

  // Per-worker overflow buffers and broadcast encode scratch.
  std::vector<WorkerSpill> spills_;
  std::vector<std::vector<std::uint64_t>> scratch_;

  // Active set: nodes receiving messages this round + nodes whose timer
  // came due, deduplicated through an epoch-stamped mark array and kept in
  // ascending node order (dense rounds re-extract from the marks with one
  // sequential sweep, sparse rounds sort the short list) so chunked
  // iteration preserves the cache locality of a plain 0..n sweep. Built
  // lazily on the first for_active_nodes/active_nodes call of a round
  // (the flip only marks it dirty), so algorithms that never use the
  // active-set API pay nothing for it.
  bool active_dirty_ = false;
  std::vector<NodeId> active_list_;
  std::vector<NodeId> active_scratch_;
  std::vector<std::uint64_t> active_mark_;
  std::uint64_t active_epoch_ = 0;

  // Per-worker timer wheel behind arm()/arm_at(): a power-of-two ring of
  // round-tagged buckets. Bucket vectors are recycled as the ring wraps,
  // so steady-state arming allocates nothing; a collision with a live
  // future bucket doubles the ring (amortized, bounded by the largest
  // delay an algorithm ever uses).
  struct CalendarBucket {
    std::int64_t round = -1;
    std::vector<NodeId> nodes;
  };
  struct WorkerCalendar {
    std::vector<CalendarBucket> ring;  // size is a power of two
  };
  std::vector<WorkerCalendar> calendars_;
  // Scratch for the flip-time carry of undrained due buckets (the carried
  // nodes must survive a ring resize inside arm_into).
  std::vector<NodeId> carry_nodes_;

  // Per-run high-water marks driving the post-run scratch shrink policy.
  std::size_t touched_highwater_ = 0;
  std::size_t armed_highwater_ = 0;
  std::size_t active_highwater_ = 0;

  std::vector<WorkerStats> worker_stats_;
  // Reused bounds buffer for affine run_index_chunks dispatch (driver
  // thread only, like the dispatch itself), so an affine round allocates
  // nothing once warm.
  std::vector<std::size_t> chunk_bounds_scratch_;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<Rng> node_rngs_;
  // Untouched seed-derived copies of node_rngs_, built once at
  // construction: a phase-boundary reseed is a flat memcpy-style restore
  // of this image instead of an O(n) splitmix re-derivation per stream.
  std::vector<Rng> rng_image_;
  // True while node_rngs_ hold untouched seed-derived streams (set by
  // construction/reseed, cleared when a phase starts consuming them), so
  // back-to-back reset_for_reuse + run_phase pays one O(n) reseed, not
  // two. Driver-thread only.
  bool rng_streams_fresh_ = false;
  RunStats stats_;
  // Widest message observed since the current phase opened (the totals'
  // max is not decomposable into per-phase deltas, so it is tracked
  // separately alongside the per-round reduction).
  int phase_max_message_bits_ = 0;

  // Span recorder (obs/trace.hpp). The outermost Network of a decorator
  // stack owns one when config.trace.enabled (shard members never do —
  // their facade records for them); decorators propagate the raw sink
  // down so inner layers record into the same rings. Null = tracing off.
  std::unique_ptr<obs::TraceRecorder> tracer_owned_;
  obs::TraceRecorder* tracer_ = nullptr;

  // Flight recorder: overwrite ring of the last trace.flight_rounds
  // per-round summaries. Sized once per phase (run_phase), written with
  // plain ring stores per round — zero steady-state allocation.
  std::vector<obs::FlightRecord> flight_ring_;
  std::size_t flight_next_ = 0;
  std::size_t flight_count_ = 0;
};

}  // namespace arbods
