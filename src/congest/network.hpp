// Round-synchronous CONGEST network simulator.
//
// Execution model (matching Section 2 of the paper):
//   * The communication graph equals the input graph.
//   * Time advances in synchronous rounds. In every round each node may
//     send one message per incident edge (possibly different per edge);
//     messages are delivered at the start of the next round.
//   * Message width is capped at O(log n) bits: `max_message_bits`
//     (default 4 * ceil(log2(n+1)), at least 64). Oversized sends throw.
//   * Initially a node knows only: its id, its weight, its neighbor count,
//     and the globally known parameters the algorithm is promised
//     (Delta, alpha, n, eps) — what an algorithm reads is by discipline
//     restricted to the NodeView API plus its own per-node state.
//
// Delivery internals (the scaling hot path):
//   * Messages live in two flat per-directed-edge lane arrays indexed by
//     CSR edge offsets and swapped between rounds (double buffering). The
//     lane for a message from u to v sits inside v's contiguous CSR range,
//     so inbox(v) is a scan of v's range and messages arrive ordered by
//     sender id. A precomputed mirror permutation maps each outgoing arc
//     to the receiver-side lane, so a send is an O(1) slot write.
//   * Each directed edge has exactly one writer (its tail), so sends from
//     distinct nodes never race: process_round work may be partitioned
//     across a worker pool (`CongestConfig::threads`) with no locks on the
//     delivery path. Per-worker statistics slots and per-node RNG streams
//     keep runs bit-identical regardless of thread count.
//   * Only lanes actually written are cleared between rounds (tracked per
//     worker), so a round costs O(active messages), not O(m).
//
// A DistributedAlgorithm owns all per-node state (struct-of-vectors) and is
// driven by Network::run(). This keeps the hot loop virtual-call-free per
// node and allocation-free per round, while the NodeView/send API preserves
// the locality discipline. Algorithms opt into the worker pool by routing
// their per-node loops through Network::for_nodes; the code for node v must
// then touch only v's own slots of the algorithm's per-node arrays (and
// must not use std::vector<bool>, whose packed bits are not per-element
// thread-safe).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "congest/message.hpp"
#include "congest/worker_pool.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods {

struct CongestConfig {
  /// Message cap = max(64, log_factor * ceil(log2(n+1))) bits, unless
  /// explicitly overridden by max_message_bits_override.
  int log_factor = 4;
  int max_message_bits_override = 0;  // 0 = derive from log_factor
  /// Enforce the cap (disable only for diagnostics).
  bool enforce_message_size = true;
  /// Quantize kReal fields through the fixed-point codec at send time.
  bool quantize_reals = true;
  /// Seed for all per-node randomness.
  std::uint64_t seed = 0xa5a5a5a5ULL;
  /// Worker-pool width for Network::for_nodes. 1 = serial (default);
  /// 0 = std::thread::hardware_concurrency(). Results are bit-identical
  /// for every value.
  int threads = 1;
};

/// The per-message bit cap a Network with this config enforces on an
/// n-node instance. Shared with tests/oracles so they assert the exact
/// number the simulator uses.
int congest_message_cap(const CongestConfig& config, NodeId n);

struct RunStats {
  std::int64_t rounds = 0;            // process_round invocations
  std::int64_t messages = 0;          // per-edge message deliveries
  std::int64_t total_bits = 0;        // sum of message widths
  int max_message_bits = 0;           // widest single message observed
  bool hit_round_limit = false;

  friend bool operator==(const RunStats&, const RunStats&) = default;
};

class Network;

/// Base class for round-synchronous distributed algorithms.
///
/// Contract: `initialize` and `process_round` must treat per-node state in
/// a local manner — the code for node v may read only v's own state, v's
/// inbox, and the public instance parameters. Verified by code review and
/// by the message-size/round statistics the simulator reports.
class DistributedAlgorithm {
 public:
  virtual ~DistributedAlgorithm() = default;

  /// Set up per-node state; may send round-0 messages.
  virtual void initialize(Network& net) = 0;

  /// One synchronous round: every node reads its inbox and sends.
  virtual void process_round(Network& net) = 0;

  /// Global termination predicate (checked by the driver after each round;
  /// in a real network this is knowledge of the a-priori round bound).
  virtual bool finished(const Network& net) const = 0;
};

/// Iterable view over the messages delivered to one node this round:
/// the node's contiguous CSR lane range, skipping lanes with no message.
/// Messages appear ordered by sender id (adjacency lists are sorted),
/// with per-sender send order preserved within a lane.
class InboxView {
 public:
  class const_iterator {
   public:
    using value_type = Message;
    using reference = const Message&;
    using difference_type = std::ptrdiff_t;

    reference operator*() const { return (*lanes_)[lane_][msg_]; }
    const Message* operator->() const { return &(*lanes_)[lane_][msg_]; }
    const_iterator& operator++() {
      ++msg_;
      settle();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.lane_ == b.lane_ && a.msg_ == b.msg_;
    }

   private:
    friend class InboxView;
    const_iterator(const std::vector<std::vector<Message>>* lanes,
                   std::size_t lane, std::size_t end_lane)
        : lanes_(lanes), lane_(lane), end_lane_(end_lane) {
      settle();
    }
    void settle() {
      while (lane_ != end_lane_ && msg_ >= (*lanes_)[lane_].size()) {
        ++lane_;
        msg_ = 0;
      }
      if (lane_ == end_lane_) msg_ = 0;
    }

    const std::vector<std::vector<Message>>* lanes_ = nullptr;
    std::size_t lane_ = 0;
    std::size_t end_lane_ = 0;
    std::size_t msg_ = 0;
  };

  const_iterator begin() const {
    return const_iterator(lanes_, first_lane_, end_lane_);
  }
  const_iterator end() const {
    return const_iterator(lanes_, end_lane_, end_lane_);
  }
  bool empty() const { return begin() == end(); }
  /// First delivered message; the inbox must be non-empty.
  const Message& front() const { return *begin(); }
  /// Number of delivered messages (O(degree)).
  std::size_t size() const;

 private:
  friend class Network;
  InboxView(const std::vector<std::vector<Message>>* lanes,
            std::size_t first_lane, std::size_t end_lane)
      : lanes_(lanes), first_lane_(first_lane), end_lane_(end_lane) {}

  const std::vector<std::vector<Message>>* lanes_;
  std::size_t first_lane_;
  std::size_t end_lane_;
};

class Network {
 public:
  Network(const WeightedGraph& wg, CongestConfig config = {});

  // --- topology / instance access (public parameters) ---
  NodeId num_nodes() const { return wg_->num_nodes(); }
  const Graph& graph() const { return wg_->graph(); }
  const WeightedGraph& weighted_graph() const { return *wg_; }
  Weight weight(NodeId v) const { return wg_->weight(v); }
  std::span<const NodeId> neighbors(NodeId v) const {
    return wg_->graph().neighbors(v);
  }
  NodeId degree(NodeId v) const { return wg_->graph().degree(v); }

  int max_message_bits() const { return max_message_bits_; }
  const MessageSizeModel& size_model() const { return size_model_; }

  /// Per-node deterministic RNG stream.
  Rng& rng(NodeId v);

  // --- communication (called from within process_round/initialize) ---
  void send(NodeId from, NodeId to, Message m);
  void broadcast(NodeId from, Message m);

  /// Messages delivered to v at the start of the current round.
  InboxView inbox(NodeId v) const;

  std::int64_t current_round() const { return round_; }

  // --- parallel execution ---
  /// Runs fn(v) for every node, partitioned across the worker pool when
  /// CongestConfig::threads > 1 (contiguous static chunks, so the
  /// assignment — and hence every per-node result — is independent of the
  /// actual thread count). fn(v) must only touch node v's state, v's
  /// inbox, v's RNG stream, and sends originating at v.
  template <typename F>
  void for_nodes(F&& fn) {
    run_node_chunks([&fn](NodeId begin, NodeId end) {
      for (NodeId v = begin; v < end; ++v) fn(v);
    });
  }

  /// Worker-pool width this Network executes for_nodes with.
  int num_workers() const;

  // --- driving ---
  /// Runs until algo.finished() or max_rounds; returns statistics.
  RunStats run(DistributedAlgorithm& algo, std::int64_t max_rounds = 1'000'000);

  const RunStats& stats() const { return stats_; }

 private:
  /// Lane index into the flat per-directed-edge buffers.
  using EdgeSlot = std::uint32_t;

  struct alignas(64) WorkerStats {
    std::int64_t messages = 0;
    std::int64_t total_bits = 0;
    int max_message_bits = 0;
  };

  void flip_buffers();
  void clear_all_lanes();
  std::size_t worker_slot() const;
  void account(const Message& m);
  void deposit(std::size_t arc, Message&& m);
  void reduce_stats();
  void run_node_chunks(const std::function<void(NodeId, NodeId)>& chunk_fn);

  const WeightedGraph* wg_;
  CongestConfig config_;
  MessageSizeModel size_model_;
  int max_message_bits_ = 0;
  std::int64_t round_ = 0;

  // CSR arc offsets (offsets_[v]..offsets_[v+1] are v's incident lanes in
  // receiver order) and the out-arc -> receiver-lane mirror permutation.
  std::vector<std::size_t> offsets_;
  std::vector<EdgeSlot> mirror_;

  // Double-buffered flat lane arrays; in_/out_ point into buf_a_/buf_b_.
  std::vector<std::vector<Message>> buf_a_;
  std::vector<std::vector<Message>> buf_b_;
  std::vector<std::vector<Message>>* in_ = nullptr;
  std::vector<std::vector<Message>>* out_ = nullptr;

  // Lanes written this round / holding this round's inbox, per worker, so
  // a flip clears O(messages) lanes instead of O(m).
  std::vector<std::vector<EdgeSlot>> touched_out_;
  std::vector<std::vector<EdgeSlot>> touched_in_;

  std::vector<WorkerStats> worker_stats_;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<Rng> node_rngs_;
  RunStats stats_;
};

}  // namespace arbods
