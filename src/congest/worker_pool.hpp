// Fixed-size worker pool for the round-synchronous simulator.
//
// The pool owns `num_workers - 1` std::threads; the calling thread acts as
// worker 0, so a 1-worker pool spawns nothing and runs inline. Dispatch is
// barrier-based: run(fn) publishes fn, releases every worker through a
// start barrier, executes fn(0) itself, and joins the workers at a
// completion barrier before returning — so each run() is a synchronous
// parallel section and no task outlives the call.
//
// Exceptions thrown inside fn on any worker are captured and the first one
// (lowest worker index) is rethrown on the calling thread after all
// workers reach the completion barrier, so CONGEST contract violations
// (CheckError) surface exactly as they do single-threaded.
#pragma once

#include <barrier>
#include <exception>
#include <thread>
#include <vector>

#include "common/function_ref.hpp"

namespace arbods {

class WorkerPool {
 public:
  /// `num_workers` >= 1 total workers including the calling thread.
  ///
  /// `pin_threads` pins each SPAWNED worker w to CPU pin_cpu(w) at
  /// construction (pthread_setaffinity_np via congest/affinity.hpp).
  /// Chosen semantics, regression-tested in tests/affinity_test.cpp:
  ///   * Worker 0 is the calling thread and is NEVER pinned — the driver
  ///     may be a test runner's thread or an outer pool's worker, and
  ///     narrowing its mask would leak affinity past this pool's life.
  ///   * Over-subscription (num_workers > CPU count) wraps modulo the
  ///     CPU count: workers share cores round-robin, still valid masks.
  ///   * hardware_concurrency() == 0 (unknown CPU count) disables
  ///     pinning entirely — there is no modulus to map workers with.
  ///   * A refused syscall (restricted container, unsupported platform)
  ///     leaves that thread unpinned. Pinning is a placement hint only;
  ///     results are bit-identical pinned or not.
  WorkerPool(int num_workers, bool pin_threads = false);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Spawned workers successfully pinned (diagnostics/tests); always 0
  /// when constructed without pin_threads or when the CPU count is
  /// unknown, at most num_workers - 1.
  int pinned_workers() const { return pinned_; }

  /// The CPU a pinned worker targets: w % cpus, for spawned workers
  /// (w >= 1) and cpus > 0. Pure; exposed so tests pin the mapping.
  static int pin_cpu(int worker, int cpus) { return worker % cpus; }

  /// Executes fn(w) once for every worker index w in [0, num_workers),
  /// concurrently; returns after all have finished. Not reentrant. The
  /// callable is taken by non-owning reference (dispatch allocates
  /// nothing); it must stay alive until run() returns, which every
  /// synchronous caller guarantees.
  void run(FunctionRef<void(int)> fn);

 private:
  void worker_loop(int index);

  int num_workers_ = 1;
  int pinned_ = 0;
  FunctionRef<void(int)> fn_;
  bool stop_ = false;
  std::barrier<> start_;
  std::barrier<> done_;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
};

}  // namespace arbods
