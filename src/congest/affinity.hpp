// Thread- and memory-affinity helpers behind WorkerPool pinning and the
// sharded facade's locality-aware arena placement.
//
// Everything here is best-effort and degrades to a no-op: pinning is a
// performance knob, never a correctness one (the simulator is
// bit-identical at every placement), so an unsupported platform, a
// restricted container, or an unknown CPU count simply leaves threads
// where the scheduler puts them. Callers can read the returned bools for
// diagnostics but must not gate behavior on them.
#pragma once

#include <cstddef>
#include <thread>

namespace arbods {

/// True when the platform has a thread-pinning syscall (Linux).
bool affinity_supported();

/// The CPU count pinning maps workers onto:
/// std::thread::hardware_concurrency(), which is 0 when the platform
/// cannot tell. A 0 here disables pinning entirely (WorkerPool documents
/// this fallback) — there is no safe modulus to place threads with.
int affinity_cpu_count();

/// Pins one thread to one CPU. Returns true iff the kernel accepted the
/// mask; false on unsupported platforms or when the syscall is refused
/// (e.g. a cpuset-restricted container), in which case the thread is
/// left unpinned.
bool pin_thread_to_cpu(std::thread::native_handle_type handle, int cpu);

/// Best-effort NUMA placement: advises the kernel to keep the pages of
/// [ptr, ptr + bytes) on the node owning `cpu` (mbind with
/// MPOL_PREFERRED over the page-aligned interior). Compiled to a no-op
/// returning false unless the build enables ARBODS_USE_NUMA and libnuma
/// is present; first-touch initialization remains the primary placement
/// mechanism either way.
bool bind_memory_to_cpu(void* ptr, std::size_t bytes, int cpu);

}  // namespace arbods
