#include "congest/network.hpp"

#include <algorithm>
#include <bit>
#include <iostream>
#include <limits>
#include <thread>
#include <type_traits>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "common/shrink.hpp"

namespace arbods {

using detail::maybe_shrink;

namespace {

// Which worker slot the current thread accounts sends/statistics to.
// Worker threads set this for the duration of a run_index_chunks section;
// everywhere else it is 0, the calling thread's slot. Networks clamp the
// value to their own pool width (worker_slot below), so a Network driven
// from inside another Network's worker section — which inherits the outer
// worker's index — safely accounts to its own slot 0.
thread_local int tls_worker = 0;

// Pool width for a standalone (non-shard-member) Network.
int derive_workers(const CongestConfig& config, NodeId n) {
  int workers = config.threads;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1) workers = 1;
  }
  if (n > 0 && workers > static_cast<int>(n)) workers = static_cast<int>(n);
  if (n == 0) workers = 1;
  return workers;
}

}  // namespace

int congest_message_cap(const CongestConfig& config, NodeId n) {
  if (config.max_message_bits_override > 0)
    return config.max_message_bits_override;
  return std::max(
      64, config.log_factor * ceil_log2(static_cast<std::uint64_t>(n) + 1));
}

std::size_t InboxView::size() const {
  std::size_t count = 0;
  for (const_iterator it = begin(); it != end(); ++it) ++count;
  return count;
}

Network::Network(const WeightedGraph& wg, CongestConfig config)
    : Network(wg, config, SliceInit{0, wg.graph().num_nodes(), 0}) {}

void Network::init_size_model() {
  // All message widths derive from the GLOBAL instance: a shard member
  // must enforce exactly the cap the unsharded simulator would.
  const NodeId n = wg_->num_nodes();
  size_model_.id_bits = bit_width_for(n == 0 ? 1 : n - 1);
  size_model_.weight_bits = wg_->weight_bits();
  // Levels count (1+eps)-steps; 2 * log2(n * W) covers every algorithm here.
  size_model_.level_bits =
      std::min(31, 2 * (bit_width_for(n + 1) + size_model_.weight_bits));
  size_model_.real_bits = default_value_codec().bit_width();
  max_message_bits_ = congest_message_cap(config_, n);
  // Reliable-transport headroom: the adapter wraps every algorithm
  // record in a (tag, seq, ack, marker) frame, so the PHYSICAL cap grows
  // by exactly the frame's accounted width. The adapter's virtual
  // network is constructed with the flag off and enforces the original
  // cap on the algorithm, so the algorithm's observable world is
  // unchanged.
  if (config_.reliable_transport)
    max_message_bits_ += reliable_transport_header_bits(size_model_);
}

std::size_t Network::build_csr_topology() {
  const Graph& g = wg_->graph();
  const NodeId n = g.num_nodes();
  offsets_.resize(static_cast<std::size_t>(n) + 1);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + g.degree(v);
  const std::size_t arcs = offsets_[n];
  ARBODS_CHECK_MSG(arcs < std::numeric_limits<EdgeSlot>::max(),
                   "graph too large for 32-bit edge slots");
  mirror_.resize(arcs);
  lane_receiver_.resize(arcs);
  // O(arcs) mirror build, no binary searches: sweeping v in ascending
  // order enumerates the in-arcs of every u in ascending source order,
  // which is exactly the order of u's (sorted) lane slots — so a per-node
  // cursor yields each arc's receiver-side rank directly.
  std::vector<EdgeSlot> cursor(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const NodeId u = nb[i];
      mirror_[offsets_[v] + i] =
          static_cast<EdgeSlot>(offsets_[u] + cursor[u]++);
    }
    for (std::size_t l = offsets_[v]; l < offsets_[v + 1]; ++l)
      lane_receiver_[l] = v;
  }
  return arcs;
}

Network::Network(const WeightedGraph& wg, CongestConfig config,
                 SliceInit slice)
    : wg_(&wg), config_(config), node_begin_(slice.node_begin),
      is_shard_member_(slice.workers > 0) {
  const Graph& g = wg.graph();
  const NodeId n = g.num_nodes();
  ARBODS_CHECK(slice.node_begin <= slice.node_end && slice.node_end <= n);
  const NodeId ns = slice.node_end - slice.node_begin;
  init_size_model();

  // CSR arc offsets and the lane -> receiver map. A shard member covers
  // only the owned block (lane indices are block-local; receivers keep
  // their global ids) and skips the out-arc -> receiver-lane mirror: its
  // deposits arrive pre-routed from the facade, which owns the global
  // mirror.
  std::size_t arcs;
  if (is_shard_member_) {
    offsets_.resize(static_cast<std::size_t>(ns) + 1);
    offsets_[0] = 0;
    for (NodeId i = 0; i < ns; ++i)
      offsets_[i + 1] = offsets_[i] + g.degree(node_begin_ + i);
    arcs = offsets_[ns];
    ARBODS_CHECK_MSG(arcs < std::numeric_limits<EdgeSlot>::max(),
                     "graph too large for 32-bit edge slots");
    lane_receiver_.resize(arcs);
    for (NodeId i = 0; i < ns; ++i)
      for (std::size_t l = offsets_[i]; l < offsets_[i + 1]; ++l)
        lane_receiver_[l] = node_begin_ + i;
  } else {
    arcs = build_csr_topology();
  }

  // Uniform initial lane regions: the length word plus room for one
  // cap-sized record (header + one kind word + cap payload). Lanes that
  // overflow a round regrow individually at the next flip, so edges that
  // regularly carry more settle at their own size after one round.
  std::size_t base_words;
  if (config_.lane_capacity_words_hint > 0) {
    base_words = static_cast<std::size_t>(config_.lane_capacity_words_hint);
  } else {
    const std::size_t per_record =
        2 + (static_cast<std::size_t>(max_message_bits_) + 63) / 64;
    base_words = 1 + per_record;
  }
  lane_base_.resize(arcs + 1);
  for (std::size_t l = 0; l <= arcs; ++l) lane_base_[l] = l * base_words;
  arena_words_ = lane_base_[arcs];
  arena_a_ = std::make_unique_for_overwrite<std::uint64_t[]>(arena_words_);
  arena_b_ = std::make_unique_for_overwrite<std::uint64_t[]>(arena_words_);
  // Under defer_first_touch the owning facade zeroes the length words
  // (and builds the calendars/scratch below) from its own parallel
  // first-touch dispatch, so the pages land with the worker group that
  // will run the lanes — not with whichever thread constructs members.
  if (!slice.defer_first_touch) {
    for (std::size_t l = 0; l < arcs; ++l) {
      arena_a_[lane_base_[l]] = 0;
      arena_b_[lane_base_[l]] = 0;
    }
  }
  in_arena_ = &arena_a_;
  out_arena_ = &arena_b_;

  // A shard member sizes its per-worker scratch for the facade's pool,
  // whose threads execute the deposits; only a standalone Network owns a
  // pool of its own.
  const int workers =
      is_shard_member_ ? slice.workers : derive_workers(config_, n);
  worker_stats_.assign(static_cast<std::size_t>(workers), WorkerStats{});
  touched_out_.assign(static_cast<std::size_t>(workers), {});
  touched_in_.assign(static_cast<std::size_t>(workers), {});
  spills_.assign(static_cast<std::size_t>(workers), WorkerSpill{});
  scratch_.assign(static_cast<std::size_t>(workers), {});
  calendars_.assign(static_cast<std::size_t>(workers), {});
  if (!slice.defer_first_touch)
    for (std::size_t w = 0; w < static_cast<std::size_t>(workers); ++w)
      first_touch_worker_state(w);
  if (!is_shard_member_ && workers > 1)
    pool_ = std::make_unique<WorkerPool>(workers, config_.pin_threads);
  // Only the outermost Network of a decorator stack owns a recorder
  // (facade-owned members record through their owner's sink, installed
  // by the facade after construction).
  if (config_.trace.enabled && !is_shard_member_) {
    tracer_owned_ = std::make_unique<obs::TraceRecorder>(
        workers, config_.trace.ring_capacity);
    tracer_ = tracer_owned_.get();
  }

  active_mark_.assign(ns, 0);
  active_list_.reserve(64);

  node_rngs_.reserve(ns);
  Rng base(config_.seed);
  for (NodeId i = 0; i < ns; ++i)
    node_rngs_.push_back(base.split(node_begin_ + i));
  rng_image_ = node_rngs_;
  rng_streams_fresh_ = true;
}

void Network::first_touch_lane_range(std::size_t lane_begin,
                                     std::size_t lane_end) {
  for (std::size_t l = lane_begin; l < lane_end; ++l) {
    arena_a_[lane_base_[l]] = 0;
    arena_b_[lane_base_[l]] = 0;
  }
}

void Network::first_touch_worker_state(std::size_t w) {
  // Uniform at construction time (the only time this runs); the reserve
  // is the same warm-start hint the non-deferred constructor applies.
  const std::size_t base_words =
      lane_base_.size() > 1 ? lane_base_[1] - lane_base_[0] : 0;
  scratch_[w].reserve(std::max<std::size_t>(2 * base_words, 64));
  if (calendars_[w].ring.empty()) calendars_[w].ring.resize(16);
}

Network::Network(const WeightedGraph& wg, CongestConfig config, FacadeInit)
    : wg_(&wg), config_(config) {
  const NodeId n = wg.graph().num_nodes();
  init_size_model();
  // Global topology only: the facade routes every send through the
  // out-arc -> lane mirror, but the lane arenas (and every other
  // per-node structure) live in the shard members it owns.
  build_csr_topology();

  const int workers = derive_workers(config_, n);
  worker_stats_.assign(static_cast<std::size_t>(workers), WorkerStats{});
  scratch_.assign(static_cast<std::size_t>(workers), {});
  for (auto& s : scratch_) s.reserve(64);
  if (workers > 1)
    pool_ = std::make_unique<WorkerPool>(workers, config_.pin_threads);
  if (config_.trace.enabled) {
    tracer_owned_ = std::make_unique<obs::TraceRecorder>(
        workers, config_.trace.ring_capacity);
    tracer_ = tracer_owned_.get();
  }
  active_list_.reserve(64);
  rng_streams_fresh_ = true;
}

void Network::reseed_node_rngs() {
  if (rng_streams_fresh_) return;
  // Phase-boundary restore: copy the cached seed-derived images (built
  // once at construction) back over the consumed streams — a flat copy
  // of trivially copyable state instead of an O(n) splitmix
  // re-derivation per stream.
  static_assert(std::is_trivially_copyable_v<Rng>);
  std::copy(rng_image_.begin(), rng_image_.end(), node_rngs_.begin());
  rng_streams_fresh_ = true;
}

int Network::num_workers() const { return pool_ ? pool_->num_workers() : 1; }

Rng& Network::rng(NodeId v) {
  ARBODS_DCHECK(v >= node_begin_ && v - node_begin_ < node_rngs_.size());
  return node_rngs_[v - node_begin_];
}

void Network::check_cap(int bits) const {
  if (config_.enforce_message_size) {
    ARBODS_CHECK_MSG(bits <= max_message_bits_,
                     "CONGEST violation: message of " << bits << " bits > cap "
                                                      << max_message_bits_);
  }
}

void Network::account_bits(int bits) {
  WorkerStats& slot = worker_stats_[worker_slot()];
  ++slot.messages;
  slot.total_bits += bits;
  slot.max_message_bits = std::max(slot.max_message_bits, bits);
}

std::size_t Network::worker_slot() const {
  const std::size_t w = static_cast<std::size_t>(tls_worker);
  return w < worker_stats_.size() ? w : 0;
}

bool Network::lane_spilled(std::size_t worker, EdgeSlot lane) const {
  const WorkerSpill& sp = spills_[worker];
  if (sp.recs.empty()) return false;  // the steady-state answer
  return sp.lane_marked[lane] != 0;
}

std::size_t Network::encode_into_scratch(std::size_t w, const Message& m,
                                         NodeId sender, int* bits) {
  std::vector<std::uint64_t>& scratch = scratch_[w];
  const std::size_t bound = wire_words_bound(m);
  if (scratch.size() < bound) scratch.resize(bound);
  const std::size_t need = wire_encode(m, sender, size_model_,
                                       config_.quantize_reals, scratch.data(),
                                       bits);
  check_cap(*bits);
  return need;
}

int Network::deposit_encoded(EdgeSlot lane, const Message& m, NodeId sender) {
  const std::size_t w = worker_slot();
  // wire_words_bound is O(1); the exact size and the accounted bits fall
  // out of the single encode pass below.
  const std::size_t bound = wire_words_bound(m);
  std::uint64_t* lane_words = out_arena_->get() + lane_base_[lane];
  std::uint64_t& len = lane_words[0];
  // Once a lane spills, later records must spill too or send order within
  // the lane would be lost.
  const bool spilled = lane_spilled(w, lane);
  const std::size_t cap = lane_base_[lane + 1] - lane_base_[lane] - 1;
  int bits = 0;
  if (!spilled && len + bound <= cap) {
    // Encode straight into the lane. The length word is only committed
    // after the cap check, so an oversized message throws with no side
    // effects (words beyond the length are never read).
    const std::size_t need = wire_encode(
        m, sender, size_model_, config_.quantize_reals, lane_words + 1 + len,
        &bits);
    check_cap(bits);
    if (len == 0) touched_out_[w].push_back(lane);
    len += need;
  } else {
    // Tight or spilled lane: encode into the worker scratch first, check,
    // then route through the ordinary word-deposit path.
    const std::size_t need = encode_into_scratch(w, m, sender, &bits);
    deposit_words(w, lane, scratch_[w].data(), need);
  }
  return bits;
}

void Network::deposit_words(std::size_t w, EdgeSlot lane,
                            const std::uint64_t* words, std::size_t nwords) {
  std::uint64_t* lane_words = out_arena_->get() + lane_base_[lane];
  std::uint64_t& len = lane_words[0];
  const bool spilled = lane_spilled(w, lane);
  if (len == 0 && !spilled) touched_out_[w].push_back(lane);
  const std::size_t cap = lane_base_[lane + 1] - lane_base_[lane] - 1;
  if (!spilled && len + nwords <= cap) {
    std::copy_n(words, nwords, lane_words + 1 + len);
    len += nwords;
  } else {
    WorkerSpill& sp = spills_[w];
    if (sp.lane_marked.empty()) sp.lane_marked.assign(lane_receiver_.size(), 0);
    sp.lane_marked[lane] = 1;
    const std::size_t b = sp.words.size();
    sp.words.insert(sp.words.end(), words, words + nwords);
    sp.recs.push_back({lane, static_cast<std::uint32_t>(b),
                       static_cast<std::uint32_t>(b + nwords)});
  }
}

void Network::deposit_wire(EdgeSlot glane, const std::uint64_t* words,
                           std::size_t nwords) {
  deposit_words(worker_slot(), glane, words, nwords);
}

std::size_t Network::resolve_arc(NodeId from, NodeId to) const {
  const auto nb = graph().neighbors(from);
  const auto it = std::lower_bound(nb.begin(), nb.end(), to);
  ARBODS_CHECK_MSG(it != nb.end() && *it == to,
                   "send along non-edge (" << from << "," << to << ")");
  return offsets_[from] + static_cast<std::size_t>(it - nb.begin());
}

void Network::send(NodeId from, NodeId to, const Message& m) {
  ARBODS_DCHECK(!is_shard_member_);  // members receive pre-routed deposits
  account_bits(deposit_encoded(mirror_[resolve_arc(from, to)], m, from));
}

void Network::broadcast(NodeId from, const Message& m) {
  ARBODS_DCHECK(!is_shard_member_);  // members receive pre-routed deposits
  const std::size_t begin = offsets_[from];
  const std::size_t end = offsets_[from + 1];
  if (begin == end) return;
  // Encode once into the worker's scratch — the CONGEST accounting falls
  // out of the same pass — then copy words per lane; the statistics for
  // the whole fan-out are folded into one slot update. The cap check runs
  // before anything is deposited, so an oversized broadcast still throws
  // without side effects.
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, from, &bits);
  for (std::size_t arc = begin; arc != end; ++arc)
    deposit_words(w, mirror_[arc], scratch_[w].data(), need);
  const std::int64_t fanout = static_cast<std::int64_t>(end - begin);
  WorkerStats& slot = worker_stats_[w];
  slot.messages += fanout;
  slot.total_bits += bits * fanout;
  slot.max_message_bits = std::max(slot.max_message_bits, bits);
}

InboxView Network::inbox(NodeId v) const {
  const std::size_t i = static_cast<std::size_t>(v) - node_begin_;
  ARBODS_DCHECK(v >= node_begin_ && i + 1 < offsets_.size());
  return InboxView(in_arena_->get(), lane_base_.data(), offsets_[i],
                   offsets_[i + 1], &size_model_, config_.quantize_reals);
}

void Network::arm_at(NodeId v, std::int64_t round) {
  ARBODS_DCHECK(v >= node_begin_ && v - node_begin_ < active_mark_.size());
  ARBODS_CHECK_MSG(round > round_,
                   "arm_at(" << v << ", " << round << ") is not in the future"
                             << " (current round " << round_ << ")");
  arm_into(calendars_[worker_slot()], v, round);
}

void Network::arm_into(WorkerCalendar& cal, NodeId v, std::int64_t round) {
  for (;;) {
    CalendarBucket& bucket =
        cal.ring[static_cast<std::size_t>(round) & (cal.ring.size() - 1)];
    if (bucket.round == round) {
      bucket.nodes.push_back(v);
      return;
    }
    if (bucket.round <= round_) {  // empty or already drained: recycle
      bucket.round = round;
      bucket.nodes.clear();
      bucket.nodes.push_back(v);
      return;
    }
    // Collision with a different live round: double the ring and rehash
    // the live buckets (amortized; the ring settles at the largest delay).
    std::vector<CalendarBucket> bigger(cal.ring.size() * 2);
    for (CalendarBucket& b : cal.ring) {
      if (b.round <= round_) continue;
      bigger[static_cast<std::size_t>(b.round) & (bigger.size() - 1)] =
          std::move(b);
    }
    cal.ring = std::move(bigger);
  }
}

void Network::flip_buffers() {
  // The in-buffer holds last round's (already consumed) messages; clear
  // exactly the lanes that were written, then promote the out-buffer.
  std::uint64_t* in_words = in_arena_->get();
  for (auto& list : touched_in_) {
    touched_highwater_ = std::max(touched_highwater_, list.size());
    for (const EdgeSlot lane : list) in_words[lane_base_[lane]] = 0;
    list.clear();
  }
  std::swap(in_arena_, out_arena_);
  std::swap(touched_in_, touched_out_);
  // A timer bucket due in the round that just ended survives to the flip
  // only if the algorithm never consulted the active set this round (a
  // for_nodes-only stage). Carry its arms into the next round instead of
  // dropping them when the slot is eventually recycled: an arm_at wake is
  // deferred until the first round the algorithm looks, never lost.
  for (WorkerCalendar& cal : calendars_) {
    CalendarBucket& due =
        cal.ring[static_cast<std::size_t>(round_) & (cal.ring.size() - 1)];
    if (due.round != round_ || due.nodes.empty()) continue;
    carry_nodes_.swap(due.nodes);  // arm_into may resize the ring
    due.round = -1;
    due.nodes.clear();
    for (const NodeId v : carry_nodes_) arm_into(cal, v, round_ + 1);
    carry_nodes_.clear();
  }
  bool any_spill = false;
  for (const WorkerSpill& sp : spills_) any_spill |= !sp.recs.empty();
  if (any_spill) merge_spills_and_grow();
  // The active set is rebuilt lazily on first use within the round;
  // algorithms that never touch the active-set API pay nothing here.
  active_dirty_ = true;
}

void Network::merge_spills_and_grow() {
  // Records that overflowed their lane last round, now sitting on the
  // in-side after the swap. Each lane has a single writer, so all of a
  // lane's chunks live in one worker's buffer in send order; a stable sort
  // groups lanes without reordering chunks.
  struct Chunk {
    EdgeSlot lane;
    const std::uint64_t* src;
    std::size_t nwords;
  };
  std::vector<Chunk> chunks;
  for (const WorkerSpill& sp : spills_)
    for (const SpillRec& r : sp.recs)
      chunks.push_back({r.lane, sp.words.data() + r.begin,
                        static_cast<std::size_t>(r.end - r.begin)});
  std::stable_sort(chunks.begin(), chunks.end(),
                   [](const Chunk& a, const Chunk& b) { return a.lane < b.lane; });

  // New layout: overflowed lanes at least double so repeated traffic on a
  // chatty edge regrows O(log) times, then never again.
  const std::size_t arcs = lane_receiver_.size();
  std::vector<std::uint64_t> new_base(arcs + 1);
  new_base[0] = 0;
  const std::uint64_t* old_in = in_arena_->get();
  std::size_t ci = 0;
  for (std::size_t lane = 0; lane < arcs; ++lane) {
    std::size_t cap = lane_base_[lane + 1] - lane_base_[lane];
    std::size_t extra = 0;
    for (std::size_t j = ci; j < chunks.size() && chunks[j].lane == lane; ++j)
      extra += chunks[j].nwords;
    if (extra > 0) {
      const std::size_t needed = 1 + old_in[lane_base_[lane]] + extra;
      cap = std::max(2 * cap, std::bit_ceil(needed));
    }
    while (ci < chunks.size() && chunks[ci].lane == lane) ++ci;
    new_base[lane + 1] = new_base[lane] + cap;
  }

  // Rebuild both arenas under the new layout: zero every length word, copy
  // the in-side's resident regions (length + records), then append each
  // lane's spill chunks in order. The out-side is empty at this point (the
  // flip just zeroed and swapped it), so its lanes only need zero lengths.
  const std::size_t new_words = new_base[arcs];
  auto new_in = std::make_unique_for_overwrite<std::uint64_t[]>(new_words);
  auto new_out = std::make_unique_for_overwrite<std::uint64_t[]>(new_words);
  for (std::size_t lane = 0; lane < arcs; ++lane) {
    new_in[new_base[lane]] = 0;
    new_out[new_base[lane]] = 0;
  }
  for (const auto& list : touched_in_)
    for (const EdgeSlot lane : list)
      std::copy_n(old_in + lane_base_[lane], 1 + old_in[lane_base_[lane]],
                  new_in.get() + new_base[lane]);
  for (const Chunk& c : chunks) {
    std::uint64_t& len = new_in[new_base[c.lane]];
    std::copy_n(c.src, c.nwords, new_in.get() + new_base[c.lane] + 1 + len);
    len += c.nwords;
  }
  lane_base_ = std::move(new_base);
  arena_words_ = new_words;
  *in_arena_ = std::move(new_in);
  *out_arena_ = std::move(new_out);
  for (WorkerSpill& sp : spills_) {
    for (const SpillRec& r : sp.recs) sp.lane_marked[r.lane] = 0;
    sp.words.clear();
    sp.recs.clear();
  }
}

void Network::rebuild_active_set() {
  const std::int64_t span_t0 = tracer_ != nullptr ? obs::monotonic_ns() : 0;
  active_dirty_ = false;
  ++active_epoch_;
  const std::uint64_t epoch = active_epoch_;
  active_list_.clear();
  for (const auto& list : touched_in_) {
    for (const EdgeSlot lane : list) {
      const NodeId v = lane_receiver_[lane];
      if (active_mark_[v - node_begin_] != epoch) {
        active_mark_[v - node_begin_] = epoch;
        active_list_.push_back(v);
      }
    }
  }
  // Drain every worker's timer bucket that is due for the current round
  // (the lazy rebuild runs from inside the round, after the advance).
  const std::int64_t due = round_;
  for (WorkerCalendar& cal : calendars_) {
    CalendarBucket& bucket =
        cal.ring[static_cast<std::size_t>(due) & (cal.ring.size() - 1)];
    if (bucket.round != due) continue;
    armed_highwater_ = std::max(armed_highwater_, bucket.nodes.size());
    for (const NodeId v : bucket.nodes) {
      if (active_mark_[v - node_begin_] != epoch) {
        active_mark_[v - node_begin_] = epoch;
        active_list_.push_back(v);
      }
    }
    bucket.round = -1;
    bucket.nodes.clear();
  }
  // Keep the worklist in ascending node order so chunked iteration touches
  // per-node arrays (and the lane arena) as sequentially as a 0..n sweep —
  // the list arrives in delivery order, which is cache-hostile when dense.
  // Dense rounds re-extract from the marks with one sequential pass;
  // sparse rounds sort the short list. Either way the order (not just the
  // contents) is now independent of the pool width.
  const std::size_t ns = active_mark_.size();
  if (active_list_.size() >= ns / 8) {
    active_scratch_.clear();
    for (std::size_t i = 0; i < ns; ++i)
      if (active_mark_[i] == epoch)
        active_scratch_.push_back(node_begin_ + static_cast<NodeId>(i));
    active_list_.swap(active_scratch_);
  } else {
    std::sort(active_list_.begin(), active_list_.end());
  }
  active_highwater_ = std::max(active_highwater_, active_list_.size());
  if (tracer_ != nullptr)
    tracer_->record(0, "active:rebuild", span_t0, obs::monotonic_ns(), 0,
                    static_cast<std::int64_t>(active_list_.size()));
}

void Network::clear_all_lanes() {
  for (auto& list : touched_in_) {
    for (const EdgeSlot lane : list) (*in_arena_)[lane_base_[lane]] = 0;
    list.clear();
  }
  for (auto& list : touched_out_) {
    for (const EdgeSlot lane : list) (*out_arena_)[lane_base_[lane]] = 0;
    list.clear();
  }
  for (WorkerSpill& sp : spills_) {
    for (const SpillRec& r : sp.recs) sp.lane_marked[r.lane] = 0;
    sp.words.clear();
    sp.recs.clear();
  }
  for (WorkerCalendar& cal : calendars_) {
    for (CalendarBucket& bucket : cal.ring) {
      bucket.round = -1;
      bucket.nodes.clear();
    }
  }
  active_list_.clear();
  active_dirty_ = false;
}

void Network::shrink_scratch() {
  for (auto& list : touched_in_) maybe_shrink(list, touched_highwater_);
  for (auto& list : touched_out_) maybe_shrink(list, touched_highwater_);
  for (WorkerCalendar& cal : calendars_)
    for (CalendarBucket& bucket : cal.ring)
      maybe_shrink(bucket.nodes, armed_highwater_);
  maybe_shrink(active_list_, active_highwater_);
  maybe_shrink(active_scratch_, active_highwater_);
  for (WorkerSpill& sp : spills_) {
    // A run that ends right after a spilling round leaves records that were
    // never merged (and never delivered); drop them before releasing the
    // mark array they index, which costs O(arcs) bytes per worker that
    // spilled this run and must not outlive the run.
    sp.words.clear();
    sp.recs.clear();
    maybe_shrink(sp.words, 0);
    maybe_shrink(sp.recs, 0);
    std::vector<std::uint8_t>().swap(sp.lane_marked);
  }
}

void Network::reduce_stats() {
  for (WorkerStats& slot : worker_stats_) {
    stats_.messages += slot.messages;
    stats_.total_bits += slot.total_bits;
    stats_.max_message_bits =
        std::max(stats_.max_message_bits, slot.max_message_bits);
    phase_max_message_bits_ =
        std::max(phase_max_message_bits_, slot.max_message_bits);
    stats_.dropped += slot.dropped;
    stats_.duplicated += slot.duplicated;
    stats_.delayed += slot.delayed;
    stats_.killed += slot.killed;
    slot = WorkerStats{};
  }
  // int64 gives headroom of ~9e18 bits; a wrap would show up as a sign
  // flip, which we refuse to silently report.
  ARBODS_CHECK_MSG(stats_.messages >= 0 && stats_.total_bits >= 0,
                   "RunStats counter overflow");
}

bool Network::affine_chunk_bounds(ChunkDomain, std::size_t,
                                  std::vector<std::size_t>&) {
  return false;  // plain Networks always use the uniform split
}

void Network::run_index_chunks(
    std::size_t count, FunctionRef<void(std::size_t, std::size_t)> chunk_fn,
    ChunkDomain domain) {
  const char* span_name = domain == ChunkDomain::kActive    ? "chunk:active"
                          : domain == ChunkDomain::kShards  ? "chunk:shards"
                                                            : "chunk:nodes";
  if (!pool_) {
    obs::ScopedSpan span(tracer_, 0, span_name, 0,
                         static_cast<std::int64_t>(count));
    chunk_fn(0, count);
    return;
  }
  const int workers = pool_->num_workers();
  // Shard-affine dispatch: a derived simulator may substitute its own
  // contiguous per-worker bounds so each index runs on the worker group
  // owning its shard's arenas. The assignment is placement only — every
  // index still runs exactly once — so the uniform fallback and any
  // affine table produce bit-identical results.
  const std::size_t* bounds =
      affine_chunk_bounds(domain, count, chunk_bounds_scratch_)
          ? chunk_bounds_scratch_.data()
          : nullptr;
  auto worker_fn = [&](int w) {
    tls_worker = w;
    const std::size_t begin =
        bounds ? bounds[w]
               : count * static_cast<std::size_t>(w) /
                     static_cast<std::size_t>(workers);
    const std::size_t end =
        bounds ? bounds[w + 1]
               : count * (static_cast<std::size_t>(w) + 1) /
                     static_cast<std::size_t>(workers);
    {
      obs::ScopedSpan span(tracer_, static_cast<std::size_t>(w), span_name, 0,
                           static_cast<std::int64_t>(end - begin));
      chunk_fn(begin, end);
    }
    tls_worker = 0;
  };
  pool_->run(worker_fn);
}

void Network::reset_for_reuse() {
  stats_ = RunStats{};
  for (WorkerStats& slot : worker_stats_) slot = WorkerStats{};
  round_ = 0;
  phase_max_message_bits_ = 0;
  touched_highwater_ = 0;
  armed_highwater_ = 0;
  active_highwater_ = 0;
  // Drop the previous run's spans (owner only — a shared sink belongs to
  // the outer decorator, whose own reset clears it) and flight records,
  // so a post-run snapshot covers exactly the next run.
  if (tracer_owned_) tracer_owned_->clear();
  flight_next_ = 0;
  flight_count_ = 0;
  clear_all_lanes();
  reseed_node_rngs();
}

const PhaseStats& Network::run_phase(DistributedAlgorithm& algo,
                                     std::string_view phase_name,
                                     std::int64_t max_rounds) {
  // Phase-local reset: a phase begins exactly where a freshly constructed
  // Network would (round 0, no pending messages or timers, fresh RNG
  // streams), so decomposing a driver that ran one Network per phase into
  // run_phase calls on one reused Network is bit-identical. Undelivered
  // messages from the previous phase are dropped, matching the old
  // drivers' per-phase Networks; statistics counted them at send time.
  round_ = 0;
  // Discard per-worker stat deltas that a mid-round exception left
  // unreduced (e.g. a solver CheckError before a `<solver>+repair` retry):
  // which nodes ran before the throw depends on worker scheduling, so
  // folding the partial round in would make this phase's counters vary
  // with the pool width. Every completed round was already reduced; only
  // the aborted round's partial accounting is dropped. A no-op after a
  // phase that finished normally.
  for (WorkerStats& slot : worker_stats_) slot = WorkerStats{};
  clear_all_lanes();
  reseed_node_rngs();
  rng_streams_fresh_ = false;  // this phase now owns (and advances) them
  const std::int64_t messages_before = stats_.messages;
  const std::int64_t bits_before = stats_.total_bits;
  const std::int64_t dropped_before = stats_.dropped;
  const std::int64_t duplicated_before = stats_.duplicated;
  const std::int64_t delayed_before = stats_.delayed;
  const std::int64_t killed_before = stats_.killed;
  phase_max_message_bits_ = 0;
  std::int64_t phase_rounds = 0;
  bool hit_limit = false;
  // The config's hard cap composes with the caller's budget (smaller wins)
  // so a fault-starved solver terminates via hit_round_limit.
  if (config_.round_limit > 0)
    max_rounds = std::min(max_rounds, config_.round_limit);

  const obs::TimingStats timing_before = stats_.timing;
  // Flight recorder: (re)size the ring once per phase — the per-round
  // writes below are plain ring stores, preserving the zero-allocation
  // guarantee of a steady-state round.
  const std::size_t flight_cap =
      static_cast<std::size_t>(std::max(config_.trace.flight_rounds, 0));
  if (flight_ring_.size() != flight_cap) flight_ring_.assign(flight_cap, {});
  flight_next_ = 0;
  flight_count_ = 0;
  // Interned once per phase (alloc-safe: before the round loop), so the
  // per-round spans can store a stable const char*.
  const char* phase_span = nullptr;
  if (tracer_ != nullptr) {
    std::string label = "phase:";
    label += phase_name;
    phase_span = tracer_->intern(label);
  }
  const std::int64_t phase_t0 = obs::monotonic_ns();

  {
    const std::int64_t t0 = phase_t0;
    algo.initialize(*this);
    const std::int64_t t1 = obs::monotonic_ns();
    stats_.timing.compute_seconds += static_cast<double>(t1 - t0) * 1e-9;
    if (tracer_ != nullptr) tracer_->record(0, "initialize", t0, t1);
  }
  reduce_stats();
  while (!algo.finished(*this)) {
    if (phase_rounds >= max_rounds) {
      hit_limit = true;
      stats_.hit_round_limit = true;
      break;
    }
    {
      const std::int64_t t0 = obs::monotonic_ns();
      flip_buffers();
      const std::int64_t t1 = obs::monotonic_ns();
      stats_.timing.flip_seconds += static_cast<double>(t1 - t0) * 1e-9;
      if (tracer_ != nullptr) tracer_->record(0, "flip", t0, t1);
    }
    ++round_;
    ++stats_.rounds;
    ++phase_rounds;
    obs::FlightRecord before;
    if (flight_cap > 0) {
      before.delivered = stats_.messages;
      before.bits = stats_.total_bits;
      before.dropped = stats_.dropped;
      before.duplicated = stats_.duplicated;
      before.delayed = stats_.delayed;
      before.killed = stats_.killed;
    }
    {
      const std::int64_t t0 = obs::monotonic_ns();
      algo.process_round(*this);
      const std::int64_t t1 = obs::monotonic_ns();
      stats_.timing.compute_seconds += static_cast<double>(t1 - t0) * 1e-9;
      if (tracer_ != nullptr) tracer_->record(0, "round", t0, t1, 0, round_);
    }
    reduce_stats();
    if (flight_cap > 0) {
      obs::FlightRecord rec;
      rec.round = round_;
      // Never force a rebuild here: it would drain due timer buckets the
      // next flip should carry forward (behavior change). -1 = the
      // algorithm did not consult the active set this round.
      rec.active = active_dirty_
                       ? -1
                       : static_cast<std::int64_t>(active_list_.size());
      rec.delivered = stats_.messages - before.delivered;
      rec.bits = stats_.total_bits - before.bits;
      rec.spilled = pending_spill_records();
      rec.dropped = stats_.dropped - before.dropped;
      rec.duplicated = stats_.duplicated - before.duplicated;
      rec.delayed = stats_.delayed - before.delayed;
      rec.killed = stats_.killed - before.killed;
      flight_note_round(rec);
    }
  }
  shrink_scratch();
  if (tracer_ != nullptr)
    tracer_->record(0, phase_span, phase_t0, obs::monotonic_ns());
  if (hit_limit && flight_count_ > 0) {
    std::string why = "phase '";
    why += phase_name;
    why += "' hit its round limit";
    dump_flight_recorder(std::cerr, why);
  }

  PhaseStats ps;
  ps.name.assign(phase_name);
  ps.rounds = phase_rounds;
  ps.messages = stats_.messages - messages_before;
  ps.total_bits = stats_.total_bits - bits_before;
  ps.max_message_bits = phase_max_message_bits_;
  ps.hit_round_limit = hit_limit;
  ps.dropped = stats_.dropped - dropped_before;
  ps.duplicated = stats_.duplicated - duplicated_before;
  ps.delayed = stats_.delayed - delayed_before;
  ps.killed = stats_.killed - killed_before;
  ps.timing = stats_.timing - timing_before;
  stats_.phases.push_back(std::move(ps));
  return stats_.phases.back();
}

std::int64_t Network::pending_spill_records() const {
  std::int64_t total = 0;
  for (const WorkerSpill& sp : spills_)
    total += static_cast<std::int64_t>(sp.recs.size());
  return total;
}

void Network::flight_note_round(const obs::FlightRecord& rec) {
  if (flight_ring_.empty()) return;
  flight_ring_[flight_next_] = rec;
  flight_next_ = (flight_next_ + 1) % flight_ring_.size();
  if (flight_count_ < flight_ring_.size()) ++flight_count_;
}

std::vector<obs::FlightRecord> Network::flight_records() const {
  std::vector<obs::FlightRecord> out;
  if (flight_count_ == 0) return out;
  out.reserve(flight_count_);
  const std::size_t cap = flight_ring_.size();
  const std::size_t start = (flight_next_ + cap - flight_count_) % cap;
  for (std::size_t i = 0; i < flight_count_; ++i)
    out.push_back(flight_ring_[(start + i) % cap]);
  return out;
}

void Network::dump_flight_recorder(std::ostream& os,
                                   std::string_view why) const {
  obs::dump_flight_records(os, why, flight_records());
}

RunStats Network::run(DistributedAlgorithm& algo, std::int64_t max_rounds) {
  reset_for_reuse();
  run_phase(algo, "main", max_rounds);
  return stats_;
}

}  // namespace arbods
