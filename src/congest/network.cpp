#include "congest/network.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace arbods {

namespace {

// Which worker slot the current thread accounts sends/statistics to.
// Worker threads set this for the duration of a run_node_chunks section;
// everywhere else it is 0, the calling thread's slot. Networks clamp the
// value to their own pool width (worker_slot below), so a Network driven
// from inside another Network's worker section — which inherits the outer
// worker's index — safely accounts to its own slot 0.
thread_local int tls_worker = 0;

}  // namespace

int congest_message_cap(const CongestConfig& config, NodeId n) {
  if (config.max_message_bits_override > 0)
    return config.max_message_bits_override;
  return std::max(
      64, config.log_factor * ceil_log2(static_cast<std::uint64_t>(n) + 1));
}

std::size_t InboxView::size() const {
  std::size_t count = 0;
  for (std::size_t lane = first_lane_; lane != end_lane_; ++lane)
    count += (*lanes_)[lane].size();
  return count;
}

Network::Network(const WeightedGraph& wg, CongestConfig config)
    : wg_(&wg), config_(config) {
  const Graph& g = wg.graph();
  const NodeId n = g.num_nodes();
  size_model_.id_bits = bit_width_for(n == 0 ? 1 : n - 1);
  size_model_.weight_bits = wg.weight_bits();
  // Levels count (1+eps)-steps; 2 * log2(n * W) covers every algorithm here.
  size_model_.level_bits =
      std::min(31, 2 * (bit_width_for(n + 1) + size_model_.weight_bits));
  size_model_.real_bits = default_value_codec().bit_width();
  max_message_bits_ = congest_message_cap(config_, n);

  // CSR arc offsets and the mirror permutation (out-arc -> receiver lane).
  offsets_.resize(static_cast<std::size_t>(n) + 1);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + g.degree(v);
  const std::size_t arcs = offsets_[n];
  ARBODS_CHECK_MSG(arcs < std::numeric_limits<EdgeSlot>::max(),
                   "graph too large for 32-bit edge slots");
  mirror_.resize(arcs);
  for (NodeId v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const NodeId u = nb[i];
      const auto unb = g.neighbors(u);
      const auto it = std::lower_bound(unb.begin(), unb.end(), v);
      mirror_[offsets_[v] + i] =
          static_cast<EdgeSlot>(offsets_[u] +
                                static_cast<std::size_t>(it - unb.begin()));
    }
  }
  buf_a_.resize(arcs);
  buf_b_.resize(arcs);
  in_ = &buf_a_;
  out_ = &buf_b_;

  int workers = config_.threads;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1) workers = 1;
  }
  if (n > 0 && workers > static_cast<int>(n)) workers = static_cast<int>(n);
  if (n == 0) workers = 1;
  worker_stats_.assign(static_cast<std::size_t>(workers), WorkerStats{});
  touched_out_.assign(static_cast<std::size_t>(workers), {});
  touched_in_.assign(static_cast<std::size_t>(workers), {});
  if (workers > 1) pool_ = std::make_unique<WorkerPool>(workers);

  node_rngs_.reserve(n);
  Rng base(config_.seed);
  for (NodeId v = 0; v < n; ++v) node_rngs_.push_back(base.split(v));
}

int Network::num_workers() const { return pool_ ? pool_->num_workers() : 1; }

Rng& Network::rng(NodeId v) {
  ARBODS_DCHECK(v < num_nodes());
  return node_rngs_[v];
}

void Network::account(const Message& m) {
  const int bits = m.bit_size(size_model_);
  if (config_.enforce_message_size) {
    ARBODS_CHECK_MSG(bits <= max_message_bits_,
                     "CONGEST violation: message of " << bits << " bits > cap "
                                                      << max_message_bits_);
  }
  WorkerStats& slot = worker_stats_[worker_slot()];
  ++slot.messages;
  slot.total_bits += bits;
  slot.max_message_bits = std::max(slot.max_message_bits, bits);
}

std::size_t Network::worker_slot() const {
  const std::size_t w = static_cast<std::size_t>(tls_worker);
  return w < worker_stats_.size() ? w : 0;
}

void Network::deposit(std::size_t arc, Message&& m) {
  const EdgeSlot lane = mirror_[arc];
  std::vector<Message>& slot = (*out_)[lane];
  if (slot.empty()) touched_out_[worker_slot()].push_back(lane);
  slot.push_back(std::move(m));
}

void Network::send(NodeId from, NodeId to, Message m) {
  const auto nb = graph().neighbors(from);
  const auto it = std::lower_bound(nb.begin(), nb.end(), to);
  ARBODS_CHECK_MSG(it != nb.end() && *it == to,
                   "send along non-edge (" << from << "," << to << ")");
  if (config_.quantize_reals) m.quantize_reals(default_value_codec());
  m.sender_ = from;
  account(m);
  deposit(offsets_[from] + static_cast<std::size_t>(it - nb.begin()),
          std::move(m));
}

void Network::broadcast(NodeId from, Message m) {
  if (config_.quantize_reals) m.quantize_reals(default_value_codec());
  m.sender_ = from;
  const std::size_t begin = offsets_[from];
  const std::size_t end = offsets_[from + 1];
  for (std::size_t arc = begin; arc != end; ++arc) {
    account(m);
    if (arc + 1 == end) {
      deposit(arc, std::move(m));
      break;
    }
    deposit(arc, Message(m));
  }
}

InboxView Network::inbox(NodeId v) const {
  ARBODS_DCHECK(v < num_nodes());
  return InboxView(in_, offsets_[v], offsets_[v + 1]);
}

void Network::flip_buffers() {
  // The in-buffer holds last round's (already consumed) messages; clear
  // exactly the lanes that were written, then promote the out-buffer.
  for (auto& list : touched_in_) {
    for (const EdgeSlot lane : list) (*in_)[lane].clear();
    list.clear();
  }
  std::swap(in_, out_);
  std::swap(touched_in_, touched_out_);
}

void Network::clear_all_lanes() {
  for (auto& list : touched_in_) {
    for (const EdgeSlot lane : list) (*in_)[lane].clear();
    list.clear();
  }
  for (auto& list : touched_out_) {
    for (const EdgeSlot lane : list) (*out_)[lane].clear();
    list.clear();
  }
}

void Network::reduce_stats() {
  for (WorkerStats& slot : worker_stats_) {
    stats_.messages += slot.messages;
    stats_.total_bits += slot.total_bits;
    stats_.max_message_bits =
        std::max(stats_.max_message_bits, slot.max_message_bits);
    slot = WorkerStats{};
  }
  // int64 gives headroom of ~9e18 bits; a wrap would show up as a sign
  // flip, which we refuse to silently report.
  ARBODS_CHECK_MSG(stats_.messages >= 0 && stats_.total_bits >= 0,
                   "RunStats counter overflow");
}

void Network::run_node_chunks(
    const std::function<void(NodeId, NodeId)>& chunk_fn) {
  const NodeId n = num_nodes();
  if (!pool_) {
    chunk_fn(0, n);
    return;
  }
  const int workers = pool_->num_workers();
  pool_->run([&](int w) {
    tls_worker = w;
    const NodeId begin = static_cast<NodeId>(
        static_cast<std::uint64_t>(n) * static_cast<unsigned>(w) / workers);
    const NodeId end = static_cast<NodeId>(
        static_cast<std::uint64_t>(n) * (static_cast<unsigned>(w) + 1) /
        workers);
    chunk_fn(begin, end);
    tls_worker = 0;
  });
}

RunStats Network::run(DistributedAlgorithm& algo, std::int64_t max_rounds) {
  stats_ = RunStats{};
  for (WorkerStats& slot : worker_stats_) slot = WorkerStats{};
  round_ = 0;
  clear_all_lanes();

  algo.initialize(*this);
  reduce_stats();
  while (!algo.finished(*this)) {
    if (stats_.rounds >= max_rounds) {
      stats_.hit_round_limit = true;
      break;
    }
    flip_buffers();
    ++round_;
    ++stats_.rounds;
    algo.process_round(*this);
    reduce_stats();
  }
  return stats_;
}

}  // namespace arbods
