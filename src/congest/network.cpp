#include "congest/network.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace arbods {

int congest_message_cap(const CongestConfig& config, NodeId n) {
  if (config.max_message_bits_override > 0)
    return config.max_message_bits_override;
  return std::max(
      64, config.log_factor * ceil_log2(static_cast<std::uint64_t>(n) + 1));
}

Network::Network(const WeightedGraph& wg, CongestConfig config)
    : wg_(&wg), config_(config) {
  const NodeId n = wg.num_nodes();
  size_model_.id_bits = bit_width_for(n == 0 ? 1 : n - 1);
  size_model_.weight_bits = wg.weight_bits();
  // Levels count (1+eps)-steps; 2 * log2(n * W) covers every algorithm here.
  size_model_.level_bits =
      std::min(31, 2 * (bit_width_for(n + 1) + size_model_.weight_bits));
  size_model_.real_bits = default_value_codec().bit_width();
  max_message_bits_ = congest_message_cap(config_, n);
  inboxes_.resize(n);
  outboxes_.resize(n);
  node_rngs_.reserve(n);
  Rng base(config_.seed);
  for (NodeId v = 0; v < n; ++v) node_rngs_.push_back(base.split(v));
}

Rng& Network::rng(NodeId v) {
  ARBODS_DCHECK(v < num_nodes());
  return node_rngs_[v];
}

void Network::account(const Message& m) {
  const int bits = m.bit_size(size_model_);
  if (config_.enforce_message_size) {
    ARBODS_CHECK_MSG(bits <= max_message_bits_,
                     "CONGEST violation: message of " << bits << " bits > cap "
                                                      << max_message_bits_);
  }
  ++stats_.messages;
  stats_.total_bits += bits;
  stats_.max_message_bits = std::max(stats_.max_message_bits, bits);
}

void Network::send(NodeId from, NodeId to, Message m) {
  ARBODS_CHECK_MSG(graph().has_edge(from, to),
                   "send along non-edge (" << from << "," << to << ")");
  if (config_.quantize_reals) m.quantize_reals(default_value_codec());
  m.sender_ = from;
  account(m);
  outboxes_[to].push_back(std::move(m));
}

void Network::broadcast(NodeId from, Message m) {
  if (config_.quantize_reals) m.quantize_reals(default_value_codec());
  m.sender_ = from;
  for (NodeId to : neighbors(from)) {
    account(m);
    outboxes_[to].push_back(m);
  }
}

std::span<const Message> Network::inbox(NodeId v) const {
  ARBODS_DCHECK(v < num_nodes());
  return inboxes_[v];
}

void Network::flip_buffers() {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    inboxes_[v].clear();
    std::swap(inboxes_[v], outboxes_[v]);
  }
}

RunStats Network::run(DistributedAlgorithm& algo, std::int64_t max_rounds) {
  stats_ = RunStats{};
  round_ = 0;
  for (auto& box : inboxes_) box.clear();
  for (auto& box : outboxes_) box.clear();

  algo.initialize(*this);
  while (!algo.finished(*this)) {
    if (stats_.rounds >= max_rounds) {
      stats_.hit_round_limit = true;
      break;
    }
    flip_buffers();
    ++round_;
    ++stats_.rounds;
    algo.process_round(*this);
  }
  return stats_;
}

}  // namespace arbods
