#include "congest/worker_pool.hpp"

#include "common/check.hpp"
#include "congest/affinity.hpp"

namespace arbods {

WorkerPool::WorkerPool(int num_workers, bool pin_threads)
    : num_workers_(num_workers),
      start_(num_workers),
      done_(num_workers),
      errors_(static_cast<std::size_t>(num_workers)) {
  ARBODS_CHECK_MSG(num_workers >= 1, "pool needs >= 1 worker");
  // Pin each spawned thread right after creation, synchronously on this
  // thread via the native handle — no handshake with the worker, and
  // pinned_workers() is stable once the constructor returns. An unknown
  // CPU count (cpus == 0) disables pinning: see the header contract.
  const int cpus = pin_threads ? affinity_cpu_count() : 0;
  threads_.reserve(static_cast<std::size_t>(num_workers - 1));
  for (int w = 1; w < num_workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
    if (cpus > 0 &&
        pin_thread_to_cpu(threads_.back().native_handle(), pin_cpu(w, cpus)))
      ++pinned_;
  }
}

WorkerPool::~WorkerPool() {
  if (!threads_.empty()) {
    stop_ = true;
    start_.arrive_and_wait();  // release workers into the stop check
    for (auto& t : threads_) t.join();
  }
}

void WorkerPool::worker_loop(int index) {
  for (;;) {
    start_.arrive_and_wait();
    if (stop_) return;
    try {
      fn_(index);
    } catch (...) {
      errors_[static_cast<std::size_t>(index)] = std::current_exception();
    }
    done_.arrive_and_wait();
  }
}

void WorkerPool::run(FunctionRef<void(int)> fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  fn_ = fn;
  start_.arrive_and_wait();
  try {
    fn(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  done_.arrive_and_wait();
  fn_ = FunctionRef<void(int)>();
  for (auto& err : errors_) {
    if (err) {
      std::exception_ptr first = err;
      for (auto& e : errors_) e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

}  // namespace arbods
