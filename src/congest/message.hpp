// CONGEST messages with explicit bit accounting, and their packed wire
// format.
//
// A message is a sequence of typed fields. Field widths come from a
// MessageSizeModel derived from the instance (ids: ceil(log2 n) bits,
// weights: bits of the max weight, etc.), so a message's size in bits is
// well-defined and the Network can enforce the CONGEST O(log n) cap.
//
// Two representations exist:
//
//   * `Message` — the sender-side builder. Fields live in a small inline
//     array (no heap allocation for <= kInlineFields fields; a vector
//     overflow keeps larger diagnostic messages working). A Message never
//     crosses the network as an object.
//   * the wire format — at send time the Network bit-packs the fields into
//     a flat std::uint64_t arena using exactly the MessageSizeModel widths,
//     so the CONGEST bit accounting is the wire length by construction.
//     Receivers read through `MessageView`, a two-pointer cursor over the
//     arena with the same typed accessors as Message; no per-message object
//     is ever materialized on the delivery path.
//
// Wire layout of one message (64-bit little-endian words, each message
// word-aligned so a cursor can hop records in O(1)):
//
//   word 0        sender id (32) | field count (16) | total words (16)
//   kind words    ceil(nf/16) words of 4-bit FieldKind nibbles
//   payload       bit-packed field values; integer kinds use the model
//                 width, reals use the fixed-point codec encoding (or the
//                 raw 64-bit double when quantization is disabled)
//
// The header and kind nibbles are simulator bookkeeping and do not count
// toward the CONGEST bit volume; `wire_payload_bits` (== Message::bit_size
// under the same model when quantization is on) is what the Network
// accounts and caps.
//
// Real-valued fields carry packing values. They are quantized through
// FixedPointCodec at send time — the wire carries the codec's bits, so a
// receiver observes only the quantized value and an algorithm cannot
// smuggle extra information through the mantissa of a double.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/types.hpp"

namespace arbods {

enum class FieldKind : std::uint8_t {
  kNodeId,   // a node identifier
  kWeight,   // a node weight
  kLevel,    // a small iteration counter / level number
  kFlag,     // one bit
  kReal,     // quantized real (packing value)
  kTag,      // message type discriminator (small enum)
};

/// Wire tags reserved for the reliable-transport adapter
/// (src/resilience/reliable_channel.hpp). Algorithm tags stay below
/// these two values; the transport owns every physical message while it
/// is active, so the reservation is a convention, not an enforced split.
inline constexpr int kTransportDataTag = 14;  // seq + ack + payload
inline constexpr int kTransportAckTag = 15;   // standalone cumulative ack

/// Per-instance field widths in bits.
struct MessageSizeModel {
  int id_bits = 32;
  int weight_bits = 32;
  int level_bits = 16;
  int flag_bits = 1;
  int real_bits = 32;
  int tag_bits = 4;

  int width_of(FieldKind kind) const;
};

/// Accounted bits of the reliable-transport DATA header under `model`:
/// one kTag (record discriminator) + two kLevel (sequence number and
/// piggybacked cumulative ack) + one kFlag (round marker). The Network
/// raises its cap by exactly this much when
/// CongestConfig::reliable_transport is set, so a transport frame
/// wrapping a cap-sized algorithm payload still fits; a standalone ACK
/// (kTag + kLevel) is strictly smaller.
inline int reliable_transport_header_bits(const MessageSizeModel& model) {
  return model.tag_bits + 2 * model.level_bits + model.flag_bits;
}

struct Field {
  FieldKind kind;
  std::int64_t ivalue = 0;  // used by all kinds except kReal
  double rvalue = 0.0;      // used by kReal
};

/// Sender-side message builder. Cheap to construct and move: fields are
/// stored inline (no heap) up to kInlineFields; only oversized diagnostic
/// messages (cap-enforcement tests and the like) spill to a vector.
///
/// Integer fields must be non-negative and fit the MessageSizeModel width
/// for their kind (ids < 2^id_bits, etc.) — the wire format carries
/// exactly those bits, and encoding a wider value throws rather than
/// truncating.
class Message {
 public:
  static constexpr std::size_t kInlineFields = 8;

  Message() = default;

  /// Tags let one algorithm multiplex message types; by convention the tag
  /// is the first field.
  static Message tagged(int tag);

  Message& add_id(NodeId v);
  Message& add_weight(Weight w);
  Message& add_level(std::int64_t level);
  Message& add_flag(bool b);
  Message& add_real(double x);
  /// Appends a kTag field at the current position (tagged() only places
  /// one at field 0). Needed by relays that re-encode a received record
  /// field-for-field, e.g. the reliable-transport payload unwrap.
  Message& add_tag(int tag);

  std::size_t num_fields() const { return size_; }

  /// Typed accessors; kind mismatches are contract violations.
  int tag() const;  // tag of field 0 (kTag); -1 if untagged
  int tag_at(std::size_t i) const;
  NodeId id_at(std::size_t i) const;
  Weight weight_at(std::size_t i) const;
  std::int64_t level_at(std::size_t i) const;
  bool flag_at(std::size_t i) const;
  double real_at(std::size_t i) const;

  /// Raw field access (bounds-checked); used by the wire encoder.
  const Field& field(std::size_t i) const;
  FieldKind kind_at(std::size_t i) const { return field(i).kind; }

  /// Total width under the given model.
  int bit_size(const MessageSizeModel& model) const;

  /// Rounds every real field through the codec. The Network's wire encoder
  /// quantizes implicitly; this mutating variant exists for reference
  /// delivery loops and tests that bypass the wire format.
  void quantize_reals(const FixedPointCodec& codec);

 private:
  Message& push(const Field& f);
  const Field& field_checked(std::size_t i, FieldKind kind) const;

  std::uint32_t size_ = 0;
  std::array<Field, kInlineFields> inline_{};
  std::vector<Field> overflow_;  // fields beyond kInlineFields (rare)
};

// ---------------------------------------------------------------------------
// Packed wire format.

/// Bits field `kind` occupies in the wire payload. Equal to the model width
/// for every kind except kReal with quantization disabled, which ships the
/// raw 64-bit double (the *accounted* size still uses the model width, as
/// it always has).
int wire_field_bits(FieldKind kind, const MessageSizeModel& model,
                    bool quantized_reals);

/// CONGEST-accounted payload bits of `m` (== m.bit_size(model)).
int wire_payload_bits(const Message& m, const MessageSizeModel& model);

/// Total 64-bit words the wire record of `m` occupies (header + kinds +
/// payload).
std::size_t wire_words(const Message& m, const MessageSizeModel& model,
                       bool quantized_reals);

/// Upper bound on wire_words(m) computable without scanning fields
/// (every stored field width is <= 64 bits). For sizing encode scratch.
inline std::size_t wire_words_bound(const Message& m) {
  const std::size_t nf = m.num_fields();
  return 1 + (nf + 15) / 16 + nf;
}

/// Encodes `m` into dst[0 .. wire_words(m)). Fully initializes every word
/// it claims. Returns the number of words written; when accounted_bits is
/// non-null, stores the CONGEST-accounted payload size (== bit_size under
/// `model`) there — accounting is a by-product of encoding, not a second
/// pass.
std::size_t wire_encode(const Message& m, NodeId sender,
                        const MessageSizeModel& model, bool quantized_reals,
                        std::uint64_t* dst, int* accounted_bits = nullptr);

/// Receiver-side cursor over one wire record. Two pointers and a flag;
/// copying is free. Views are only valid for the round in which the inbox
/// was delivered (the arena is recycled by the next round's flip).
class MessageView {
 public:
  MessageView(const std::uint64_t* words, const MessageSizeModel* model,
              bool quantized_reals)
      : words_(words), model_(model), quantized_(quantized_reals) {}

  NodeId sender() const { return static_cast<NodeId>(words_[0] & 0xffffffffu); }
  std::size_t num_fields() const {
    return static_cast<std::size_t>((words_[0] >> 32) & 0xffffu);
  }
  /// Total record length in words (cursor hop to the next message).
  std::size_t words() const {
    return static_cast<std::size_t>((words_[0] >> 48) & 0xffffu);
  }

  FieldKind kind_at(std::size_t i) const;

  /// Typed accessors; kind mismatches are contract violations, exactly as
  /// on the builder.
  int tag() const;  // tag of field 0 (kTag); -1 if untagged
  int tag_at(std::size_t i) const;
  NodeId id_at(std::size_t i) const;
  Weight weight_at(std::size_t i) const;
  std::int64_t level_at(std::size_t i) const;
  bool flag_at(std::size_t i) const;
  double real_at(std::size_t i) const;

 private:
  std::uint64_t payload_bits_at(std::size_t i, FieldKind kind) const;

  const std::uint64_t* words_;
  const MessageSizeModel* model_;
  bool quantized_;
};

}  // namespace arbods
