// CONGEST messages with explicit bit accounting.
//
// A message is a sequence of typed fields. Field widths come from a
// MessageSizeModel derived from the instance (ids: ceil(log2 n) bits,
// weights: bits of the max weight, etc.), so a message's size in bits is
// well-defined and the Network can enforce the CONGEST O(log n) cap.
//
// Real-valued fields carry packing values. They are quantized through
// FixedPointCodec at send time — receivers observe only the quantized
// value, so an algorithm cannot smuggle extra information through the
// mantissa of a double.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/types.hpp"

namespace arbods {

enum class FieldKind : std::uint8_t {
  kNodeId,   // a node identifier
  kWeight,   // a node weight
  kLevel,    // a small iteration counter / level number
  kFlag,     // one bit
  kReal,     // quantized real (packing value)
  kTag,      // message type discriminator (small enum)
};

/// Per-instance field widths in bits.
struct MessageSizeModel {
  int id_bits = 32;
  int weight_bits = 32;
  int level_bits = 16;
  int flag_bits = 1;
  int real_bits = 32;
  int tag_bits = 4;

  int width_of(FieldKind kind) const;
};

struct Field {
  FieldKind kind;
  std::int64_t ivalue = 0;  // used by all kinds except kReal
  double rvalue = 0.0;      // used by kReal
};

class Message {
 public:
  Message() = default;

  /// Tags let one algorithm multiplex message types; by convention the tag
  /// is the first field.
  static Message tagged(int tag);

  Message& add_id(NodeId v);
  Message& add_weight(Weight w);
  Message& add_level(std::int64_t level);
  Message& add_flag(bool b);
  Message& add_real(double x);

  std::size_t num_fields() const { return fields_.size(); }

  /// Typed accessors; kind mismatches are contract violations.
  int tag() const;  // tag of field 0 (kTag); -1 if untagged
  NodeId id_at(std::size_t i) const;
  Weight weight_at(std::size_t i) const;
  std::int64_t level_at(std::size_t i) const;
  bool flag_at(std::size_t i) const;
  double real_at(std::size_t i) const;

  NodeId sender() const { return sender_; }

  /// Total width under the given model.
  int bit_size(const MessageSizeModel& model) const;

  /// Rounds every real field through the codec (called by the Network).
  void quantize_reals(const FixedPointCodec& codec);

 private:
  friend class Network;
  NodeId sender_ = kInvalidNode;
  std::vector<Field> fields_;

  const Field& field_checked(std::size_t i, FieldKind kind) const;
};

}  // namespace arbods
