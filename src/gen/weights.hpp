// Node-weight assigners for the weighted MDS experiments.
//
// The paper assumes integer weights in [1, n^c]; every scheme here
// respects that.
#pragma once

#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::gen {

/// All weights 1.
std::vector<Weight> unit_weights(NodeId n);

/// Uniform integers in [1, max_weight].
std::vector<Weight> uniform_weights(NodeId n, Weight max_weight, Rng& rng);

/// Discretized Pareto-ish heavy tail in [1, cap]: w = min(cap,
/// floor(1/u^{1/shape})). Small shape => heavier tail.
std::vector<Weight> power_law_weights(NodeId n, double shape, Weight cap,
                                      Rng& rng);

/// w_v = 1 + degree(v): high-degree nodes are expensive, the adversarial
/// case for degree-greedy baselines.
std::vector<Weight> degree_proportional_weights(const Graph& g);

/// w_v = 1 + max_degree - degree(v): high-degree nodes are cheap.
std::vector<Weight> inverse_degree_weights(const Graph& g);

/// Convenience: attach weights by scheme name
/// ("unit" | "uniform" | "powerlaw" | "degree" | "invdegree").
WeightedGraph with_weights(Graph g, const std::string& scheme, Rng& rng,
                           Weight max_weight = 100);

}  // namespace arbods::gen
