// Random trees and forests (arboricity exactly 1).
#pragma once

#include "common/random.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods::gen {

/// Uniform random labeled tree via a random Prüfer sequence (n >= 1).
Graph random_tree_prufer(NodeId n, Rng& rng);

/// Random recursive tree: node i attaches to a uniform node in [0, i).
/// Depth O(log n) in expectation; degrees more skewed than Prüfer trees.
Graph random_recursive_tree(NodeId n, Rng& rng);

/// Random tree with maximum degree <= max_degree (attachment rejects
/// saturated parents). max_degree >= 2.
Graph random_bounded_degree_tree(NodeId n, NodeId max_degree, Rng& rng);

/// Forest of `k` random Prüfer trees with sizes split uniformly at random
/// (each part >= 1, n >= k).
Graph random_forest(NodeId n, NodeId k, Rng& rng);

}  // namespace arbods::gen
