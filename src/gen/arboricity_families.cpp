#include "gen/arboricity_families.hpp"

#include <numeric>

#include "common/check.hpp"
#include "gen/trees.hpp"
#include "graph/builder.hpp"

namespace arbods::gen {

Graph k_tree_union(NodeId n, NodeId k, Rng& rng) {
  ARBODS_CHECK(n >= 2 && k >= 1);
  GraphBuilder b(n);
  for (NodeId layer = 0; layer < k; ++layer) {
    Graph t = random_tree_prufer(n, rng);
    for (const Edge& e : t.edges()) b.add_edge(e.u, e.v);
  }
  return std::move(b).build();
}

Graph k_pseudoforest_union(NodeId n, NodeId k, Rng& rng) {
  ARBODS_CHECK(n >= 3 && k >= 1);
  GraphBuilder b(n);
  std::vector<NodeId> perm(n);
  for (NodeId layer = 0; layer < k; ++layer) {
    std::iota(perm.begin(), perm.end(), NodeId{0});
    rng.shuffle(perm);
    for (NodeId i = 0; i < n; ++i) {
      NodeId u = perm[i];
      NodeId v = perm[(i + 1) % n];
      if (u != v) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph planar_stacked_triangulation(NodeId n, Rng& rng) {
  ARBODS_CHECK(n >= 3);
  GraphBuilder b(n);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  struct Tri {
    NodeId a, b, c;
  };
  std::vector<Tri> faces{{0, 1, 2}};
  for (NodeId v = 3; v < n; ++v) {
    std::size_t f = static_cast<std::size_t>(rng.next_below(faces.size()));
    Tri t = faces[f];
    b.add_edge(v, t.a);
    b.add_edge(v, t.b);
    b.add_edge(v, t.c);
    // Replace the chosen face by the three new ones.
    faces[f] = {t.a, t.b, v};
    faces.push_back({t.a, t.c, v});
    faces.push_back({t.b, t.c, v});
  }
  return std::move(b).build();
}

Graph random_maximal_outerplanar(NodeId n, Rng& rng) {
  ARBODS_CHECK(n >= 3);
  GraphBuilder b(n);
  // Polygon boundary.
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  // Random triangulation of the polygon by recursive ear splitting.
  struct Range {
    NodeId lo, hi;  // chord (lo, hi) with the open interval to triangulate
  };
  std::vector<Range> stack{{0, n - 1}};
  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi - lo < 2) continue;
    // Pick the apex strictly inside (lo, hi); add the two chords unless
    // they coincide with boundary edges.
    NodeId apex = lo + 1 + static_cast<NodeId>(rng.next_below(hi - lo - 1));
    if (apex != lo + 1) b.add_edge(lo, apex);
    if (apex + 1 != hi) b.add_edge(apex, hi);
    stack.push_back({lo, apex});
    stack.push_back({apex, hi});
  }
  return std::move(b).build();
}

Graph clique_tree(NodeId cliques, NodeId clique_size, Rng& rng) {
  ARBODS_CHECK(cliques >= 1 && clique_size >= 2);
  // Clique i occupies [i*(s-1), i*(s-1)+s) so consecutive cliques in the
  // random attachment tree share one node.
  const NodeId s = clique_size;
  const NodeId n = cliques * (s - 1) + 1;
  GraphBuilder b(n);
  std::vector<NodeId> anchor(cliques);  // shared node of clique i with parent
  anchor[0] = 0;
  for (NodeId c = 0; c < cliques; ++c) {
    if (c > 0) {
      NodeId parent = static_cast<NodeId>(rng.next_below(c));
      // Anchor on a random node of the parent clique.
      NodeId base = parent * (s - 1);
      anchor[c] = base + static_cast<NodeId>(rng.next_below(s));
    }
    // Members: anchor + the c-th fresh block.
    std::vector<NodeId> members{anchor[c]};
    NodeId base = c * (s - 1) + 1;
    for (NodeId i = 0; i + 1 < s; ++i) members.push_back(base + i);
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j)
        b.add_edge(members[i], members[j]);
  }
  return std::move(b).build();
}

Graph planted_dominating_set(NodeId n, NodeId centers, NodeId max_links,
                             Rng& rng) {
  ARBODS_CHECK(centers >= 1 && n >= centers && max_links >= 1);
  GraphBuilder b(n);
  for (NodeId c = 0; c + 1 < centers; ++c) b.add_edge(c, c + 1);
  for (NodeId v = centers; v < n; ++v) {
    NodeId links = 1 + static_cast<NodeId>(rng.next_below(max_links));
    auto hubs = rng.sample_without_replacement(centers, std::min(links, centers));
    for (auto h : hubs) b.add_edge(v, static_cast<NodeId>(h));
  }
  return std::move(b).build();
}

}  // namespace arbods::gen
