#include "gen/random_graphs.hpp"

#include <cmath>
#include <unordered_set>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace arbods::gen {

Graph erdos_renyi_gnp(NodeId n, double p, Rng& rng) {
  ARBODS_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p <= 0.0 || n < 2) return std::move(b).build();
  if (p >= 1.0) {
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
    return std::move(b).build();
  }
  // Batagelj–Brandes geometric skipping over pairs (w, v) with w < v.
  const double log1mp = std::log1p(-p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  while (v < static_cast<std::int64_t>(n)) {
    double u = rng.next_double();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-u) / log1mp));
    while (w >= v && v < static_cast<std::int64_t>(n)) {
      w -= v;
      ++v;
    }
    if (v < static_cast<std::int64_t>(n))
      b.add_edge(static_cast<NodeId>(w), static_cast<NodeId>(v));
  }
  return std::move(b).build();
}

Graph erdos_renyi_gnm(NodeId n, std::size_t m, Rng& rng) {
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  ARBODS_CHECK_MSG(m <= total, "m=" << m << " exceeds max " << total);
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.next_below(n));
    NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (chosen.insert(key).second) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph barabasi_albert(NodeId n, NodeId edges_per_node, Rng& rng) {
  ARBODS_CHECK(edges_per_node >= 1);
  ARBODS_CHECK(n >= edges_per_node + 1);
  const NodeId m0 = edges_per_node + 1;
  GraphBuilder b(n);
  // `targets` holds one entry per edge endpoint => sampling from it is
  // degree-proportional.
  std::vector<NodeId> targets;
  targets.reserve(2 * static_cast<std::size_t>(n) * edges_per_node);
  for (NodeId i = 0; i < m0; ++i) {
    for (NodeId j = i + 1; j < m0; ++j) {
      b.add_edge(i, j);
      targets.push_back(i);
      targets.push_back(j);
    }
  }
  std::unordered_set<NodeId> picked;
  for (NodeId v = m0; v < n; ++v) {
    picked.clear();
    while (picked.size() < edges_per_node) {
      NodeId t = targets[rng.next_below(targets.size())];
      picked.insert(t);
    }
    for (NodeId t : picked) {
      b.add_edge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return std::move(b).build();
}

Graph random_geometric(NodeId n, double radius, Rng& rng) {
  ARBODS_CHECK(radius > 0.0);
  std::vector<double> xs(n), ys(n);
  for (NodeId i = 0; i < n; ++i) {
    xs[i] = rng.next_double();
    ys[i] = rng.next_double();
  }
  // Bucket grid with cell size = radius.
  const int cells = std::max(1, static_cast<int>(std::floor(1.0 / radius)));
  auto cell_of = [&](double coord) {
    int c = static_cast<int>(coord * cells);
    return std::min(c, cells - 1);
  };
  std::vector<std::vector<NodeId>> bucket(
      static_cast<std::size_t>(cells) * cells);
  for (NodeId i = 0; i < n; ++i)
    bucket[static_cast<std::size_t>(cell_of(xs[i])) * cells + cell_of(ys[i])]
        .push_back(i);
  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (NodeId i = 0; i < n; ++i) {
    int cx = cell_of(xs[i]);
    int cy = cell_of(ys[i]);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        int nx = cx + dx, ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (NodeId j : bucket[static_cast<std::size_t>(nx) * cells + ny]) {
          if (j <= i) continue;
          double ddx = xs[i] - xs[j], ddy = ys[i] - ys[j];
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(i, j);
        }
      }
    }
  }
  return std::move(b).build();
}

Graph random_bipartite(NodeId a, NodeId b_count, double p, Rng& rng) {
  ARBODS_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(a + b_count);
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b_count; ++j)
      if (rng.next_bernoulli(p)) b.add_edge(i, a + j);
  return std::move(b).build();
}

}  // namespace arbods::gen
