// Random graph models.
#pragma once

#include "common/random.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods::gen {

/// Erdős–Rényi G(n, p) via geometric edge skipping, O(n + m) expected.
Graph erdos_renyi_gnp(NodeId n, double p, Rng& rng);

/// G(n, m): exactly m distinct edges sampled uniformly (m <= n(n-1)/2).
Graph erdos_renyi_gnm(NodeId n, std::size_t m, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `edges_per_node + 1` nodes; every later node attaches to
/// `edges_per_node` distinct existing nodes, preferentially by degree.
/// Degeneracy (and hence arboricity) <= edges_per_node.
Graph barabasi_albert(NodeId n, NodeId edges_per_node, Rng& rng);

/// Random geometric graph on the unit square with connection radius r,
/// bucketed for near-linear construction. Models sensor networks.
Graph random_geometric(NodeId n, double radius, Rng& rng);

/// Random bipartite graph: sides of size a and b, each cross pair
/// independently an edge with probability p.
Graph random_bipartite(NodeId a, NodeId b, double p, Rng& rng);

}  // namespace arbods::gen
