#include "gen/trees.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "graph/builder.hpp"
#include "graph/transform.hpp"

namespace arbods::gen {

Graph random_tree_prufer(NodeId n, Rng& rng) {
  ARBODS_CHECK(n >= 1);
  if (n == 1) return Graph(1);
  if (n == 2) return Graph::from_edges(2, {{0, 1}});
  // Prüfer decoding in O(n log n) using residual degree counts.
  std::vector<NodeId> prufer(n - 2);
  for (auto& p : prufer) p = static_cast<NodeId>(rng.next_below(n));
  std::vector<NodeId> degree(n, 1);
  for (NodeId p : prufer) ++degree[p];
  GraphBuilder b(n);
  // Min-heap of current leaves.
  std::vector<NodeId> heap;
  for (NodeId v = 0; v < n; ++v)
    if (degree[v] == 1) heap.push_back(v);
  std::make_heap(heap.begin(), heap.end(), std::greater<>{});
  for (NodeId p : prufer) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    NodeId leaf = heap.back();
    heap.pop_back();
    b.add_edge(leaf, p);
    if (--degree[p] == 1) {
      heap.push_back(p);
      std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    }
  }
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  NodeId u = heap.back();
  heap.pop_back();
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  NodeId v = heap.back();
  b.add_edge(u, v);
  return std::move(b).build();
}

Graph random_recursive_tree(NodeId n, Rng& rng) {
  ARBODS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i)
    b.add_edge(i, static_cast<NodeId>(rng.next_below(i)));
  return std::move(b).build();
}

Graph random_bounded_degree_tree(NodeId n, NodeId max_degree, Rng& rng) {
  ARBODS_CHECK(n >= 1);
  ARBODS_CHECK(max_degree >= 2);
  GraphBuilder b(n);
  // `open` holds nodes with residual capacity; attach each new node to a
  // uniformly random open node.
  std::vector<NodeId> open{0};
  std::vector<NodeId> deg(n, 0);
  for (NodeId i = 1; i < n; ++i) {
    ARBODS_CHECK(!open.empty());
    std::size_t idx = static_cast<std::size_t>(rng.next_below(open.size()));
    NodeId parent = open[idx];
    b.add_edge(i, parent);
    ++deg[parent];
    ++deg[i];
    if (deg[parent] >= max_degree) {
      open[idx] = open.back();
      open.pop_back();
    }
    if (deg[i] < max_degree) open.push_back(i);
  }
  return std::move(b).build();
}

Graph random_forest(NodeId n, NodeId k, Rng& rng) {
  ARBODS_CHECK(k >= 1 && n >= k);
  // Split n into k parts, each >= 1, via random cut points.
  auto cuts = rng.sample_without_replacement(n - 1, k - 1);
  std::vector<NodeId> sizes;
  NodeId prev = 0;
  for (auto c : cuts) {
    sizes.push_back(static_cast<NodeId>(c + 1) - prev);
    prev = static_cast<NodeId>(c + 1);
  }
  sizes.push_back(n - prev);
  Graph out(0);
  for (NodeId s : sizes) out = disjoint_union(out, random_tree_prufer(s, rng));
  return out;
}

}  // namespace arbods::gen
