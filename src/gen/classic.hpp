// Deterministic classic graph families.
#pragma once

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods::gen {

/// Path P_n (n >= 1). Arboricity 1.
Graph path(NodeId n);

/// Cycle C_n (n >= 3). Arboricity 2 (as a pseudoforest it is 1).
Graph cycle(NodeId n);

/// Star K_{1,n-1} with center 0. Arboricity 1, Delta = n-1.
Graph star(NodeId n);

/// Complete graph K_n. Arboricity ceil(n/2).
Graph clique(NodeId n);

/// Complete bipartite K_{a,b}; side A is [0,a), side B is [a,a+b).
Graph complete_bipartite(NodeId a, NodeId b);

/// rows x cols grid. Arboricity 2.
Graph grid(NodeId rows, NodeId cols);

/// rows x cols grid with both diagonals per cell ("king graph").
/// Arboricity <= 4.
Graph king_grid(NodeId rows, NodeId cols);

/// rows x cols torus (wrap-around grid); rows, cols >= 3. Arboricity <= 2.
Graph torus(NodeId rows, NodeId cols);

/// Complete binary tree with n nodes (heap indexing). Arboricity 1.
Graph binary_tree(NodeId n);

/// Caterpillar: spine path of length `spine`, each spine node gets `legs`
/// pendant leaves. Arboricity 1.
Graph caterpillar(NodeId spine, NodeId legs);

/// "Book" graph: `pages` triangles sharing one edge {0,1}. Arboricity 2,
/// useful as a small non-forest instance.
Graph book(NodeId pages);

/// Spider: `legs` paths of length `leg_len` joined at a center node.
Graph spider(NodeId legs, NodeId leg_len);

}  // namespace arbods::gen
