// Families with controlled arboricity — the paper's target graph class.
#pragma once

#include "common/random.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods::gen {

/// Union of k independent uniform random spanning trees on the same node
/// set. Arboricity <= k by construction; for n >> k the Nash-Williams
/// density bound makes it exactly k with high probability (duplicate edges
/// across trees are collapsed). This is the canonical "arboricity = alpha"
/// workload of the experiments.
Graph k_tree_union(NodeId n, NodeId k, Rng& rng);

/// Union of k random "augmented cycles" (each a Hamiltonian cycle on a
/// random permutation): every component of each layer has exactly one
/// cycle, so the graph decomposes into k pseudoforests (see footnote 2 of
/// the paper). Out-degree-k orientable but arboricity may be k+... up to
/// k+1; use for the pseudoforest extension tests.
Graph k_pseudoforest_union(NodeId n, NodeId k, Rng& rng);

/// Planar 3-tree ("stacked triangulation" / Apollonian-like): repeatedly
/// inserts a node into a uniformly random existing triangular face,
/// connecting it to the face's corners. Planar, 3-degenerate,
/// arboricity <= 3. n >= 3.
Graph planar_stacked_triangulation(NodeId n, Rng& rng);

/// Random maximal outerplanar graph (fan triangulation of a random
/// polygon): arboricity <= 2. n >= 3.
Graph random_maximal_outerplanar(NodeId n, Rng& rng);

/// A tree of `cliques` cliques, each of size `clique_size`, adjacent
/// cliques sharing a single cut node. Arboricity = ceil(clique_size/2);
/// models social-network-like communities.
Graph clique_tree(NodeId cliques, NodeId clique_size, Rng& rng);

/// Graph with a planted small dominating set: `centers` hub nodes, every
/// other node attached to 1..max_links random hubs (and hubs connected in
/// a path so the graph is connected). OPT <= centers; arboricity <=
/// max_links + 1. Useful for measuring approximation quality against a
/// known-good solution.
Graph planted_dominating_set(NodeId n, NodeId centers, NodeId max_links,
                             Rng& rng);

}  // namespace arbods::gen
