#include "gen/classic.hpp"

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace arbods::gen {

Graph path(NodeId n) {
  ARBODS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

Graph cycle(NodeId n) {
  ARBODS_CHECK(n >= 3);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return std::move(b).build();
}

Graph star(NodeId n) {
  ARBODS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return std::move(b).build();
}

Graph clique(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  return std::move(b).build();
}

Graph complete_bipartite(NodeId a, NodeId b_count) {
  GraphBuilder b(a + b_count);
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b_count; ++j) b.add_edge(i, a + j);
  return std::move(b).build();
}

namespace {
NodeId grid_id(NodeId r, NodeId c, NodeId cols) { return r * cols + c; }
}  // namespace

Graph grid(NodeId rows, NodeId cols) {
  ARBODS_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(grid_id(r, c, cols), grid_id(r, c + 1, cols));
      if (r + 1 < rows) b.add_edge(grid_id(r, c, cols), grid_id(r + 1, c, cols));
    }
  }
  return std::move(b).build();
}

Graph king_grid(NodeId rows, NodeId cols) {
  ARBODS_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(grid_id(r, c, cols), grid_id(r, c + 1, cols));
      if (r + 1 < rows) b.add_edge(grid_id(r, c, cols), grid_id(r + 1, c, cols));
      if (r + 1 < rows && c + 1 < cols) {
        b.add_edge(grid_id(r, c, cols), grid_id(r + 1, c + 1, cols));
        b.add_edge(grid_id(r, c + 1, cols), grid_id(r + 1, c, cols));
      }
    }
  }
  return std::move(b).build();
}

Graph torus(NodeId rows, NodeId cols) {
  ARBODS_CHECK(rows >= 3 && cols >= 3);
  GraphBuilder b(rows * cols);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(grid_id(r, c, cols), grid_id(r, (c + 1) % cols, cols));
      b.add_edge(grid_id(r, c, cols), grid_id((r + 1) % rows, c, cols));
    }
  }
  return std::move(b).build();
}

Graph binary_tree(NodeId n) {
  ARBODS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(i, (i - 1) / 2);
  return std::move(b).build();
}

Graph caterpillar(NodeId spine, NodeId legs) {
  ARBODS_CHECK(spine >= 1);
  GraphBuilder b(spine * (legs + 1));
  for (NodeId i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  NodeId next = spine;
  for (NodeId i = 0; i < spine; ++i)
    for (NodeId l = 0; l < legs; ++l) b.add_edge(i, next++);
  return std::move(b).build();
}

Graph book(NodeId pages) {
  ARBODS_CHECK(pages >= 1);
  GraphBuilder b(2 + pages);
  b.add_edge(0, 1);
  for (NodeId p = 0; p < pages; ++p) {
    b.add_edge(0, 2 + p);
    b.add_edge(1, 2 + p);
  }
  return std::move(b).build();
}

Graph spider(NodeId legs, NodeId leg_len) {
  ARBODS_CHECK(legs >= 1 && leg_len >= 1);
  GraphBuilder b(1 + legs * leg_len);
  NodeId next = 1;
  for (NodeId l = 0; l < legs; ++l) {
    NodeId prev = 0;
    for (NodeId i = 0; i < leg_len; ++i) {
      b.add_edge(prev, next);
      prev = next++;
    }
  }
  return std::move(b).build();
}

}  // namespace arbods::gen
