#include "gen/weights.hpp"

#include <cmath>
#include <string>

#include "common/check.hpp"

namespace arbods::gen {

std::vector<Weight> unit_weights(NodeId n) {
  return std::vector<Weight>(n, 1);
}

std::vector<Weight> uniform_weights(NodeId n, Weight max_weight, Rng& rng) {
  ARBODS_CHECK(max_weight >= 1);
  std::vector<Weight> w(n);
  for (auto& x : w) x = rng.next_int(1, max_weight);
  return w;
}

std::vector<Weight> power_law_weights(NodeId n, double shape, Weight cap,
                                      Rng& rng) {
  ARBODS_CHECK(shape > 0 && cap >= 1);
  std::vector<Weight> w(n);
  for (auto& x : w) {
    double u = rng.next_double();
    if (u <= 0) u = 1e-12;
    double raw = std::pow(1.0 / u, 1.0 / shape);
    x = std::min<Weight>(cap, std::max<Weight>(1, static_cast<Weight>(raw)));
  }
  return w;
}

std::vector<Weight> degree_proportional_weights(const Graph& g) {
  std::vector<Weight> w(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) w[v] = 1 + g.degree(v);
  return w;
}

std::vector<Weight> inverse_degree_weights(const Graph& g) {
  const Weight dmax = g.max_degree();
  std::vector<Weight> w(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) w[v] = 1 + dmax - g.degree(v);
  return w;
}

WeightedGraph with_weights(Graph g, const std::string& scheme, Rng& rng,
                           Weight max_weight) {
  std::vector<Weight> w;
  if (scheme == "unit") {
    w = unit_weights(g.num_nodes());
  } else if (scheme == "uniform") {
    w = uniform_weights(g.num_nodes(), max_weight, rng);
  } else if (scheme == "powerlaw") {
    w = power_law_weights(g.num_nodes(), 1.2, max_weight, rng);
  } else if (scheme == "degree") {
    w = degree_proportional_weights(g);
  } else if (scheme == "invdegree") {
    w = inverse_degree_weights(g);
  } else {
    ARBODS_CHECK_MSG(false, "unknown weight scheme '" << scheme << "'");
  }
  return WeightedGraph(std::move(g), std::move(w));
}

}  // namespace arbods::gen
