// Post-kill solution repair: an O(1)-round local re-cover protocol that
// survivors run after crash-stop kills have punched holes in a computed
// dominating set.
//
// Semantics (kill-only fault ladders; see the surviving-subgraph oracle
// in src/harness/oracle.hpp for the matching validity notion):
//
//   * Dead set members are stripped — a killed dominator covers nobody.
//   * Each surviving node probes its closed neighborhood for a live
//     dominator (1 round: set members announce themselves).
//   * Uncovered survivors run one seeded-greedy election round: every
//     candidate announces its residual coverage c(v) = |uncovered nodes
//     in N[v] it would newly cover|; each uncovered node votes for the
//     highest-c candidate in its closed neighborhood, ties broken toward
//     the smaller node id; every candidate receiving a vote (including a
//     self-vote) joins. Each uncovered node's chosen candidate joins, so
//     one election suffices: after it, every survivor is dominated by a
//     live member.
//
// The protocol is 5 process_round calls — constant, independent of n —
// and deterministic at every worker-pool width and shard count (no RNG,
// node-local decisions only). It is weight-blind by design: the repair
// objective is restoring coverage fast, not re-optimizing weight; the
// weight impact is reported as post_repair_weight and judged by the
// surviving-subgraph oracle's certificate-free mode.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "congest/network.hpp"

namespace arbods::resilience {

/// What a repair pass did, for the scenario schema's repair columns.
struct RepairOutcome {
  /// The repaired dominating set over the surviving subgraph (sorted).
  NodeSet repaired_set;
  /// Total weight of repaired_set.
  Weight post_weight = 0;
  /// Rounds the repair phase consumed (constant 5 unless truncated).
  std::int64_t repair_rounds = 0;
  /// Nodes the election added to the set.
  std::int64_t repaired_nodes = 0;
};

/// Runs the repair protocol on `net` starting from `base_set`. When
/// `net` is (or wraps) a fault::FaultyNetwork, the kill schedule defines
/// the surviving subgraph; on a clean network everyone survives and the
/// pass is a (cheap) no-op election. Appends one "repair" entry to
/// net.stats().phases.
RepairOutcome run_repair(Network& net, const NodeSet& base_set);

}  // namespace arbods::resilience
