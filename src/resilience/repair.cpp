#include "resilience/repair.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "fault/faulty_network.hpp"

namespace arbods::resilience {

namespace {

// Wire tags of the repair protocol (all messages are tag + nothing or
// tag + one level, far under any cap).
constexpr int kTagDominator = 1;  // "I am a live set member"
constexpr int kTagNeed = 2;       // "I am a surviving uncovered node"
constexpr int kTagOffer = 3;      // "my residual coverage is c" (level)
constexpr int kTagVote = 4;       // "you are my chosen candidate"
constexpr int kTagJoined = 5;     // "I just joined the set"

/// The 5-round protocol described in the header. Every per-node stage
/// guards on alive_[v]: dead nodes are silent and deaf, matching the
/// crash-stop suppression a FaultyNetwork applies on the wire.
class RepairAlgorithm final : public DistributedAlgorithm {
 public:
  RepairAlgorithm(NodeId n, const NodeSet& base_set,
                  std::vector<std::uint8_t> alive)
      : alive_(std::move(alive)), in_set_(n, 0), covered_(n, 0),
        joined_(n, 0), voted_self_(n, 0), offer_(n, 0) {
    for (const NodeId v : base_set)
      if (alive_[v]) in_set_[v] = 1;  // dead members are stripped
  }

  void initialize(Network& net) override {
    stage_ = 0;
    net.for_nodes([&](NodeId v) {
      if (!alive_[v]) return;
      if (in_set_[v]) net.broadcast(v, Message::tagged(kTagDominator));
    });
  }

  void process_round(Network& net) override {
    ++stage_;
    static constexpr const char* kStageNames[] = {
        "repair:coverage", "repair:offer", "repair:vote", "repair:join",
        "repair:confirm"};
    obs::ScopedSpan span(net.tracer(), 0,
                         stage_ >= 1 && stage_ <= 5 ? kStageNames[stage_ - 1]
                                                    : "repair:stage");
    switch (stage_) {
      case 1:  // learn coverage; the uncovered raise their hand
        net.for_nodes([&](NodeId v) {
          if (!alive_[v]) return;
          bool cov = in_set_[v] != 0;
          for (const MessageView mv : net.inbox(v))
            cov |= (mv.tag() == kTagDominator);
          covered_[v] = cov ? 1 : 0;
          if (!cov) net.broadcast(v, Message::tagged(kTagNeed));
        });
        break;
      case 2:  // candidates announce residual coverage
        net.for_nodes([&](NodeId v) {
          if (!alive_[v]) return;
          std::int64_t c = covered_[v] ? 0 : 1;  // would cover itself
          for (const MessageView mv : net.inbox(v))
            if (mv.tag() == kTagNeed) ++c;
          offer_[v] = c;
          if (c > 0)
            net.broadcast(v, Message::tagged(kTagOffer).add_level(c));
        });
        break;
      case 3:  // the uncovered vote for the best candidate in N[v]
        net.for_nodes([&](NodeId v) {
          if (!alive_[v] || covered_[v]) return;
          // Highest residual coverage wins, ties toward the smaller id;
          // v itself is a candidate (offer_[v] >= 1 here).
          std::int64_t best_c = offer_[v];
          NodeId best = v;
          for (const MessageView mv : net.inbox(v)) {
            if (mv.tag() != kTagOffer) continue;
            const std::int64_t c = mv.level_at(1);
            const NodeId u = mv.sender();
            if (c > best_c || (c == best_c && u < best)) {
              best_c = c;
              best = u;
            }
          }
          if (best == v)
            voted_self_[v] = 1;
          else
            net.send(v, best, Message::tagged(kTagVote));
        });
        break;
      case 4:  // elected candidates join and announce it
        net.for_nodes([&](NodeId v) {
          if (!alive_[v]) return;
          bool elected = voted_self_[v] != 0;
          for (const MessageView mv : net.inbox(v))
            elected |= (mv.tag() == kTagVote);
          if (elected && !in_set_[v]) {
            in_set_[v] = 1;
            joined_[v] = 1;
          }
          if (elected) net.broadcast(v, Message::tagged(kTagJoined));
        });
        break;
      case 5:  // the uncovered confirm their elected dominator
        net.for_nodes([&](NodeId v) {
          if (!alive_[v] || covered_[v]) return;
          bool cov = in_set_[v] != 0;
          for (const MessageView mv : net.inbox(v))
            cov |= (mv.tag() == kTagJoined);
          covered_[v] = cov ? 1 : 0;
        });
        break;
      default:
        break;
    }
  }

  bool finished(const Network& net) const override {
    (void)net;
    return stage_ >= 5;
  }

  const std::vector<std::uint8_t>& in_set() const { return in_set_; }
  const std::vector<std::uint8_t>& joined() const { return joined_; }

 private:
  int stage_ = 0;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> in_set_;
  std::vector<std::uint8_t> covered_;
  std::vector<std::uint8_t> joined_;
  std::vector<std::uint8_t> voted_self_;
  std::vector<std::int64_t> offer_;
};

}  // namespace

RepairOutcome run_repair(Network& net, const NodeSet& base_set) {
  const NodeId n = net.num_nodes();
  std::vector<std::uint8_t> alive(n, 1);
  if (const auto* faulty = dynamic_cast<const fault::FaultyNetwork*>(&net)) {
    for (NodeId v = 0; v < n; ++v) alive[v] = faulty->alive(v) ? 1 : 0;
  }
  for (const NodeId v : base_set)
    ARBODS_CHECK_MSG(v < n, "repair: base set contains node " << v
                                << " of an " << n << "-node graph");
  RepairAlgorithm algo(n, base_set, std::move(alive));
  const PhaseStats& ps = net.run_phase(algo, "repair", 64);
  RepairOutcome out;
  out.repair_rounds = ps.rounds;
  for (NodeId v = 0; v < n; ++v) {
    if (algo.in_set()[v]) {
      out.repaired_set.push_back(v);
      out.post_weight += net.weight(v);
    }
    if (algo.joined()[v]) ++out.repaired_nodes;
  }
  return out;
}

}  // namespace arbods::resilience
