// ReliableChannel: exactly-once, sender-ordered delivery over a faulty
// CONGEST simulator, packaged as a Phase adapter.
//
// The problem: a FaultyNetwork drops, duplicates, delays, and reorders
// records, so a registry solver run on one either diverges or starves.
// The classic fix (sequence numbers + cumulative acknowledgments +
// bounded retransmission, as in accountable-delivery designs) turns the
// lossy channel back into the reliable one the paper's protocols assume
// — at the price of extra physical rounds and transport traffic.
//
// Architecture — two cooperating objects per wrapped phase:
//
//   * ReliableNetwork: the *virtual* network the wrapped algorithm runs
//     on. It derives from Network through the facade seams (like
//     ShardedNetwork/FaultyNetwork) and owns a private *staging* engine —
//     a plain Network in shard-member mode over the full node range —
//     whose arenas hold exactly the messages of the current VIRTUAL
//     round. The algorithm's sends are captured into per-out-arc unit
//     queues instead of hitting the wire; inbox/rng/arm delegate to the
//     staging engine. The virtual network enforces the ORIGINAL message
//     cap and exposes the original round counter, so the algorithm's
//     observable world is bit-identical to a clean run.
//
//   * ReliablePhase: the Phase wrapper (`reliable(phase)`) driven by the
//     OUTER (physical, possibly faulty) network. Each physical round it
//     (1) receives transport frames from the outer inbox — dedup by
//     per-arc sequence number, buffer out-of-order arrivals, apply
//     cumulative acks; (2) when every arc has closed the next virtual
//     round (seen its end-of-round MARKER in order), deposits that
//     round's payloads into the staging engine in canonical per-lane seq
//     order, flips it, and runs the wrapped algorithm's next
//     process_round; (3) transmits due units — DATA frames carrying
//     (seq, piggybacked cumulative ack, marker flag, payload fields) —
//     plus standalone ACK frames where a delivery consumed something but
//     no reverse DATA is flying.
//
// Retransmission: each unit carries a per-arc deadline (`next_tx`); an
// arc-level `next_due` minimum lets the per-round scan skip quiet arcs.
// The backoff schedule is the pure function
//
//   gap(arc, seq, attempt) = 2 + 2^min(attempt,5)
//                              + mix64(arc, seq, attempt) % 2^min(attempt,5)
//
// (an RTT guard of 2 rounds, bounded exponential growth, deterministic
// jitter) — no RNG state anywhere in the transport, so a run is
// bit-identical at every worker-pool width and shard count, and
// composes with FaultyNetwork/ShardedNetwork unchanged.
//
// Determinism contract (tested in tests/resilience_test.cpp): for every
// registry solver, `reliable(phase)` over a drop/duplicate/reorder/delay
// FaultSpec produces bit-identical solver OUTPUT (set, weight, packing,
// iterations) to the fault-free run — the statistics differ, since the
// physical transport traffic is the honest cost of reliability.
// Crash-stop kills are out of scope: a dead endpoint acks nothing, the
// wrapped algorithm starves, and the phase ends via the round limit
// (pair with RepairPhase for that failure mode).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "protocol/phase.hpp"

namespace arbods::resilience {

class ReliablePhase;

/// Deterministic retransmission schedule: rounds to wait before attempt
/// `attempt`+1 of unit `seq` on receiver-side arc `arc`. Pure function,
/// exposed for tests.
std::int64_t retransmit_gap(std::uint32_t arc, std::uint32_t seq,
                            std::uint8_t attempt);

/// The virtual network a reliable()-wrapped algorithm runs on. Public
/// surface is the unchanged Network API; construction is per wrapped
/// phase (ReliablePhase::initialize builds one over the outer network).
class ReliableNetwork final : public Network {
 public:
  explicit ReliableNetwork(const Network& outer);
  ~ReliableNetwork() override;

  // --- Network seams the wrapped algorithm drives ---
  Rng& rng(NodeId v) override { return staging_->rng(v); }
  void send(NodeId from, NodeId to, const Message& m) override;
  void broadcast(NodeId from, const Message& m) override;
  InboxView inbox(NodeId v) const override { return staging_->inbox(v); }
  void arm_at(NodeId v, std::int64_t round) override {
    staging_->arm_at(v, round);
  }
  std::size_t arena_words() const override { return staging_->arena_words(); }
  void reset_for_reuse() override;

  /// Virtual rounds fully delivered to the wrapped algorithm so far.
  std::int64_t delivered_rounds() const { return delivered_; }

 private:
  friend class ReliablePhase;

  /// One captured send (or round marker) awaiting reliable delivery.
  struct OutUnit {
    Message msg;             // empty for a marker
    std::int64_t next_tx = 0;
    std::uint8_t attempt = 0;
    bool marker = false;
  };
  /// Sender-side state of one arc; single writer = the arc's tail node.
  struct OutArc {
    std::deque<OutUnit> units;    // units[i] has seq base_seq + i
    std::uint32_t base_seq = 0;   // acked prefix is popped, so this > 0
    std::uint32_t next_seq = 0;   // seq of the next captured unit
    std::uint32_t acked = 0;      // all seq < acked are acknowledged
    std::int64_t next_due = 0;    // min next_tx over in-flight units
    std::int64_t last_data_tx = -1;  // physical round of the last DATA send
  };
  /// One buffered out-of-order arrival.
  struct BufUnit {
    std::uint32_t seq;
    bool marker;
    Message msg;
  };
  /// One in-order payload awaiting its virtual round's global delivery.
  struct PendingMsg {
    std::int64_t vround;
    Message msg;
  };
  /// Receiver-side state of one arc; single writer = the arc's head node.
  struct InArc {
    std::uint32_t next = 0;        // next expected seq == cumulative ack
    std::int64_t rounds_done = 0;  // markers consumed in order
    std::vector<BufUnit> buffer;
    std::vector<PendingMsg> pending;
    std::size_t pending_head = 0;
    bool ack_due = false;
  };

  // Seam overrides (the virtual network is never driven through
  // run()/run_phase(); these keep incidental calls well-defined by
  // delegating to the staging engine, FaultyNetwork-style).
  void flip_buffers() override;
  void clear_all_lanes() override;
  void reseed_node_rngs() override;
  void rebuild_active_set() override;
  void shrink_scratch() override;

  /// Capture one algorithm send (or marker) on receiver-side arc glane.
  void enqueue_unit(std::uint32_t glane, const Message& m, bool marker);
  /// Appends the end-of-round marker on every arc (one per out-arc per
  /// virtual round; the frame contract receivers count rounds by).
  void close_virtual_round();
  /// True when every arc has closed virtual round delivered_rounds()
  /// (recomputed by the last receive_pass).
  bool virtual_round_complete() const;
  /// Deposits the completed virtual round's payloads into the staging
  /// engine in canonical per-lane seq order and flips it.
  void deliver_and_flip();
  /// Drops every captured-but-undelivered unit (wrapped phase finished;
  /// whatever is still in flight dies with the phase).
  void abandon_outstanding();

  /// Physical receive: consume the outer inbox — dedup, reorder-buffer,
  /// acks, marker counting. Also recounts ready arcs for
  /// virtual_round_complete().
  void receive_pass(Network& outer);
  /// Physical transmit: due DATA units + standalone ACKs.
  void transmit_pass(Network& outer);

  void receive_frame(NodeId v, const MessageView& mv);
  void transmit_unit(Network& outer, NodeId sender, NodeId receiver,
                     std::uint32_t glane, std::uint32_t seq, OutUnit& unit);

  std::unique_ptr<Network> staging_;
  std::vector<OutArc> out_;
  std::vector<InArc> in_;
  /// Per-worker tally of arcs that already closed virtual round
  /// delivered_ (reduced against the arc count by
  /// virtual_round_complete()).
  std::vector<WorkerCounter> ready_arcs_;
  std::int64_t delivered_ = 0;
  std::int64_t seq_limit_ = 0;  // 2^level_bits, the transport seq ceiling
};

/// Phase adapter: wraps `inner` so it runs with exactly-once,
/// sender-ordered delivery on any (faulty, sharded) Network. Appears in
/// per-phase statistics as "<inner>+rel". ProtocolRunner applies it
/// automatically when CongestConfig::reliable_transport is set.
class ReliablePhase final : public protocol::Phase {
 public:
  explicit ReliablePhase(protocol::Phase& inner);
  ~ReliablePhase() override;

  std::string_view name() const override { return name_; }
  void bind(protocol::PhaseContext& ctx) override { inner_->bind(ctx); }
  void publish(Network& net, protocol::PhaseContext& ctx) override;

  void initialize(Network& outer) override;
  void process_round(Network& outer) override;
  bool finished(const Network& outer) const override;

 private:
  protocol::Phase* inner_;
  std::string name_;
  std::unique_ptr<ReliableNetwork> vnet_;
  bool inner_finished_ = false;
};

/// The wrapper spelled as a combinator: reliable(phase).
inline ReliablePhase reliable(protocol::Phase& phase) {
  return ReliablePhase(phase);
}

}  // namespace arbods::resilience
