#include "resilience/reliable_channel.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "common/random.hpp"
#include "fault/fault_spec.hpp"

namespace arbods::resilience {

std::int64_t retransmit_gap(std::uint32_t arc, std::uint32_t seq,
                            std::uint8_t attempt) {
  // 2 rounds of RTT guard (send + ack each take one physical round), then
  // bounded exponential growth with deterministic jitter so retransmit
  // storms of co-created units spread out without any RNG state.
  const int a = attempt < 5 ? attempt : 5;
  const std::int64_t base = std::int64_t{1} << a;
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(arc) << 32) ^
            (static_cast<std::uint64_t>(seq) << 8) ^ attempt);
  return 2 + base + static_cast<std::int64_t>(
                        h % static_cast<std::uint64_t>(base));
}

namespace {

/// The config the wrapped algorithm's world is built from: the outer
/// config with the adversary and the transport stripped (the staging
/// engine is clean by construction, and reliable_transport=false keeps
/// the ORIGINAL message cap — the headroom belongs to the physical
/// frames only). The worker width is pinned to the outer pool's
/// resolved width so chunk assignment matches a clean run exactly.
CongestConfig algo_config(const Network& outer) {
  CongestConfig cfg = outer.config();
  cfg.fault = fault::FaultSpec{};
  cfg.reliable_transport = false;
  cfg.shards = 1;
  cfg.threads = outer.num_workers();
  // One recorder per run, owned by the outer stack — the staging engine
  // must not construct its own (a fresh ReliableNetwork is built per
  // wrapped phase).
  cfg.trace = obs::TraceOptions{};
  return cfg;
}

/// Re-appends the payload fields of a received DATA frame (everything
/// after the 4-field transport header) onto a builder Message. Reals
/// come back codec-decoded, so the later staging re-encode is
/// idempotent — the algorithm observes exactly the bits a clean send
/// would have delivered.
Message decode_payload(const MessageView& mv) {
  Message m;
  const std::size_t nf = mv.num_fields();
  for (std::size_t i = 4; i < nf; ++i) {
    switch (mv.kind_at(i)) {
      case FieldKind::kNodeId:
        m.add_id(mv.id_at(i));
        break;
      case FieldKind::kWeight:
        m.add_weight(mv.weight_at(i));
        break;
      case FieldKind::kLevel:
        m.add_level(mv.level_at(i));
        break;
      case FieldKind::kFlag:
        m.add_flag(mv.flag_at(i));
        break;
      case FieldKind::kReal:
        m.add_real(mv.real_at(i));
        break;
      case FieldKind::kTag:
        m.add_tag(mv.tag_at(i));
        break;
    }
  }
  return m;
}

}  // namespace

ReliableNetwork::ReliableNetwork(const Network& outer)
    : Network(outer.weighted_graph(), algo_config(outer), FacadeInit{}) {
  const int workers = num_workers();
  staging_ = std::unique_ptr<Network>(
      new Network(*wg_, config_, SliceInit{0, num_nodes(), workers}));
  out_.resize(mirror_.size());
  in_.resize(mirror_.size());
  ready_arcs_.resize(static_cast<std::size_t>(workers));
  seq_limit_ = std::int64_t{1} << size_model_.level_bits;
}

ReliableNetwork::~ReliableNetwork() = default;

void ReliableNetwork::send(NodeId from, NodeId to, const Message& m) {
  enqueue_unit(mirror_[resolve_arc(from, to)], m, /*marker=*/false);
}

void ReliableNetwork::broadcast(NodeId from, const Message& m) {
  const std::size_t begin = offsets_[from];
  const std::size_t end = offsets_[from + 1];
  for (std::size_t arc = begin; arc != end; ++arc)
    enqueue_unit(mirror_[arc], m, /*marker=*/false);
}

void ReliableNetwork::enqueue_unit(std::uint32_t glane, const Message& m,
                                   bool marker) {
  if (!marker) {
    // The wrapped algorithm's CONGEST discipline: cap-check against the
    // ORIGINAL limit at capture time, exactly where a clean send would
    // have thrown (before any side effect).
    const int bits = wire_payload_bits(m, size_model_);
    check_cap(bits);
  }
  OutArc& oa = out_[glane];
  ARBODS_CHECK_MSG(
      static_cast<std::int64_t>(oa.next_seq) < seq_limit_,
      "reliable-transport sequence number overflow on arc "
          << glane << " (limit " << seq_limit_
          << "): the phase outlived the level-field width of this instance");
  OutUnit unit;
  unit.msg = m;
  unit.marker = marker;
  oa.units.push_back(std::move(unit));
  ++oa.next_seq;
  oa.next_due = 0;  // the new unit is due immediately
}

void ReliableNetwork::close_virtual_round() {
  for_nodes([&](NodeId v) {
    const std::size_t begin = offsets_[v];
    const std::size_t end = offsets_[v + 1];
    for (std::size_t arc = begin; arc != end; ++arc)
      enqueue_unit(mirror_[arc], Message{}, /*marker=*/true);
  });
}

bool ReliableNetwork::virtual_round_complete() const {
  std::int64_t ready = 0;
  for (const WorkerCounter& c : ready_arcs_) ready += c.value;
  return ready == static_cast<std::int64_t>(mirror_.size());
}

void ReliableNetwork::abandon_outstanding() {
  // The wrapped phase finished: whatever is captured but unacked dies
  // with the phase, exactly as a clean run drops the final round's
  // undelivered out-arena records.
  for (OutArc& oa : out_) {
    oa.base_seq = oa.next_seq;
    oa.acked = oa.next_seq;
    oa.units.clear();
    oa.next_due = std::numeric_limits<std::int64_t>::max();
  }
}

void ReliableNetwork::receive_pass(Network& outer) {
  for (WorkerCounter& c : ready_arcs_) c.value = 0;
  for_nodes([&](NodeId v) {
    for (const MessageView mv : outer.inbox(v)) receive_frame(v, mv);
    // Recount v's arcs that have closed the next virtual round. A sender
    // only creates vround r+1 units after the global advance to r+1, so
    // rounds_done never runs more than one round ahead of delivered_.
    std::int64_t ready = 0;
    const std::size_t begin = offsets_[v];
    const std::size_t end = offsets_[v + 1];
    for (std::size_t q = begin; q < end; ++q)
      if (in_[q].rounds_done > delivered_) ++ready;
    ready_arcs_[worker_slot()].value += ready;
  });
}

void ReliableNetwork::receive_frame(NodeId v, const MessageView& mv) {
  // The true sender rides in the record, so a reorder-diverted frame
  // still resolves to its real arc; everything below touches only state
  // owned by v (its in-arcs and out-arcs), keeping the pass race-free.
  const NodeId u = mv.sender();
  const std::size_t q = resolve_arc(v, u);  // v's in-arc from u
  const int t = mv.tag();
  const auto apply_ack = [&](std::int64_t ack) {
    OutArc& oa = out_[mirror_[q]];  // v's out-arc to u
    if (ack > static_cast<std::int64_t>(oa.acked))
      oa.acked = static_cast<std::uint32_t>(ack);
    while (oa.base_seq < oa.acked && !oa.units.empty()) {
      oa.units.pop_front();
      ++oa.base_seq;
    }
  };
  if (t == kTransportAckTag) {
    apply_ack(mv.level_at(1));
    return;
  }
  if (t != kTransportDataTag) return;  // not ours (defensive)
  apply_ack(mv.level_at(2));  // piggybacked cumulative ack
  const std::uint32_t seq = static_cast<std::uint32_t>(mv.level_at(1));
  const bool marker = mv.flag_at(3);
  InArc& ia = in_[q];
  if (seq < ia.next) {
    // Duplicate or stale retransmit: the sender may have missed an ack.
    ia.ack_due = true;
    return;
  }
  bool present = false;
  for (const BufUnit& b : ia.buffer) present |= (b.seq == seq);
  if (present) {
    ia.ack_due = true;
  } else {
    ia.buffer.push_back(BufUnit{seq, marker, decode_payload(mv)});
  }
  // Consume the in-order prefix. Payloads are labeled with the virtual
  // round they belong to (= markers consumed so far on this arc, since a
  // round's payloads precede its marker in seq order).
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (std::size_t j = 0; j < ia.buffer.size(); ++j) {
      if (ia.buffer[j].seq != ia.next) continue;
      BufUnit b = std::move(ia.buffer[j]);
      ia.buffer[j] = std::move(ia.buffer.back());
      ia.buffer.pop_back();
      if (b.marker) {
        ++ia.rounds_done;
      } else {
        ia.pending.push_back(PendingMsg{ia.rounds_done, std::move(b.msg)});
      }
      ++ia.next;
      ia.ack_due = true;
      advanced = true;
      break;
    }
  }
}

void ReliableNetwork::transmit_pass(Network& outer) {
  const std::int64_t now = outer.current_round();
  for_nodes([&](NodeId v) {
    const std::size_t begin = offsets_[v];
    const std::size_t end = offsets_[v + 1];
    // Due DATA units, in arc order then seq order (deterministic
    // per-lane record order at every pool width).
    for (std::size_t arc = begin; arc < end; ++arc) {
      const std::uint32_t g = mirror_[arc];
      OutArc& oa = out_[g];
      if (oa.units.empty() || oa.next_due > now) continue;
      const NodeId u = neighbors(v)[arc - begin];
      std::int64_t min_next = std::numeric_limits<std::int64_t>::max();
      for (std::size_t j = 0; j < oa.units.size(); ++j) {
        OutUnit& unit = oa.units[j];
        if (unit.next_tx <= now) {
          transmit_unit(outer, v, u, g,
                        oa.base_seq + static_cast<std::uint32_t>(j), unit);
        }
        min_next = std::min(min_next, unit.next_tx);
      }
      oa.next_due = min_next;
    }
    // Standalone cumulative ACKs where no reverse DATA carried one.
    for (std::size_t q = begin; q < end; ++q) {
      InArc& ia = in_[q];
      if (!ia.ack_due) continue;
      ia.ack_due = false;
      if (out_[mirror_[q]].last_data_tx == now) continue;  // piggybacked
      const NodeId u = neighbors(v)[q - begin];
      outer.send(v, u,
                 Message::tagged(kTransportAckTag).add_level(ia.next));
    }
  });
}

void ReliableNetwork::transmit_unit(Network& outer, NodeId sender,
                                    NodeId receiver, std::uint32_t glane,
                                    std::uint32_t seq, OutUnit& unit) {
  Message frame = Message::tagged(kTransportDataTag);
  frame.add_level(seq);
  // Piggyback the cumulative ack of the reverse arc (sender's in-arc
  // from this receiver) — written and read only by `sender`.
  frame.add_level(in_[mirror_[glane]].next);
  frame.add_flag(unit.marker);
  const Message& payload = unit.msg;
  const std::size_t nf = payload.num_fields();
  for (std::size_t i = 0; i < nf; ++i) {
    const Field& f = payload.field(i);
    switch (f.kind) {
      case FieldKind::kNodeId:
        frame.add_id(static_cast<NodeId>(f.ivalue));
        break;
      case FieldKind::kWeight:
        frame.add_weight(f.ivalue);
        break;
      case FieldKind::kLevel:
        frame.add_level(f.ivalue);
        break;
      case FieldKind::kFlag:
        frame.add_flag(f.ivalue != 0);
        break;
      case FieldKind::kReal:
        frame.add_real(f.rvalue);
        break;
      case FieldKind::kTag:
        frame.add_tag(static_cast<int>(f.ivalue));
        break;
    }
  }
  outer.send(sender, receiver, frame);
  const std::int64_t now = outer.current_round();
  unit.next_tx = now + retransmit_gap(glane, seq, unit.attempt);
  if (unit.attempt < 255) ++unit.attempt;
  out_[glane].last_data_tx = now;
}

void ReliableNetwork::deliver_and_flip() {
  // Deposit the completed virtual round's payloads into the staging
  // engine: per in-lane, in seq order — the canonical order a clean
  // sender would have written them in, from the lane's single writer
  // (the receiving node's chunk worker).
  for_nodes([&](NodeId v) {
    const std::size_t w = worker_slot();
    const std::size_t begin = offsets_[v];
    const std::size_t end = offsets_[v + 1];
    for (std::size_t q = begin; q < end; ++q) {
      InArc& ia = in_[q];
      const NodeId sender = neighbors(v)[q - begin];
      while (ia.pending_head < ia.pending.size() &&
             ia.pending[ia.pending_head].vround == delivered_) {
        int bits = 0;
        const std::size_t need = encode_into_scratch(
            w, ia.pending[ia.pending_head].msg, sender, &bits);
        staging_->deposit_wire(static_cast<EdgeSlot>(q), scratch_[w].data(),
                               need);
        ++ia.pending_head;
      }
      if (ia.pending_head == ia.pending.size()) {
        ia.pending.clear();
        ia.pending_head = 0;
      }
    }
  });
  // Same flip/round lockstep as FaultyNetwork: flip with the old round
  // installed (the calendar drain keys off it), then advance both
  // counters to the new virtual round.
  staging_->flip_buffers();
  ++delivered_;
  staging_->round_ = delivered_;
  round_ = delivered_;
  active_dirty_ = true;
}

// --- seam overrides -------------------------------------------------------
// The virtual network is never driven through run()/run_phase(), but the
// seams delegate to the staging engine anyway (FaultyNetwork-style) so
// incidental calls — e.g. via the base-class reset_for_reuse — stay
// well-defined on this arena-less facade.

void ReliableNetwork::flip_buffers() {
  staging_->flip_buffers();
  staging_->round_ = round_ + 1;
  active_dirty_ = true;
}

void ReliableNetwork::clear_all_lanes() {
  staging_->round_ = round_;
  staging_->clear_all_lanes();
  active_list_.clear();
  active_dirty_ = false;
}

void ReliableNetwork::reseed_node_rngs() {
  if (rng_streams_fresh_) return;
  staging_->rng_streams_fresh_ = false;  // the facade tracks freshness
  staging_->reseed_node_rngs();
  rng_streams_fresh_ = true;
}

void ReliableNetwork::rebuild_active_set() {
  active_dirty_ = false;
  if (staging_->active_dirty_) staging_->rebuild_active_set();
  active_list_ = staging_->active_list_;
}

void ReliableNetwork::shrink_scratch() { staging_->shrink_scratch(); }

void ReliableNetwork::reset_for_reuse() {
  staging_->reset_for_reuse();
  rng_streams_fresh_ = true;
  for (OutArc& oa : out_) oa = OutArc{};
  for (InArc& ia : in_) ia = InArc{};
  for (WorkerCounter& c : ready_arcs_) c.value = 0;
  delivered_ = 0;
  Network::reset_for_reuse();
}

// --- ReliablePhase --------------------------------------------------------

ReliablePhase::ReliablePhase(protocol::Phase& inner)
    : inner_(&inner), name_(std::string(inner.name()) + "+rel") {}

ReliablePhase::~ReliablePhase() = default;

void ReliablePhase::publish(Network& net, protocol::PhaseContext& ctx) {
  // The wrapped phase's world is the virtual network, not the physical
  // one it was driven on.
  (void)net;
  inner_->publish(*vnet_, ctx);
}

void ReliablePhase::initialize(Network& outer) {
  inner_finished_ = false;
  vnet_ = std::make_unique<ReliableNetwork>(outer);
  // Virtual round 0: the wrapped algorithm's initialize, captured. The
  // finished check mirrors the clean driver loop (checked after
  // initialize, before any flip) so a phase that is done at round 0
  // delivers nothing — exactly like the clean run.
  inner_->initialize(*vnet_);
  if (inner_->finished(*vnet_)) {
    inner_finished_ = true;
    vnet_->abandon_outstanding();
    return;
  }
  vnet_->close_virtual_round();
  {
    // First physical transmissions (round 0). The passes run outside the
    // Network's own seams, so their wall-clock is accounted explicitly
    // (retransmit is a sub-interval of the round's compute time).
    const std::int64_t t0 = obs::monotonic_ns();
    vnet_->transmit_pass(outer);
    const std::int64_t t1 = obs::monotonic_ns();
    outer.account_retransmit_seconds(static_cast<double>(t1 - t0) * 1e-9);
    if (outer.tracer() != nullptr)
      outer.tracer()->record(0, "rel:xmit", t0, t1);
  }
}

void ReliablePhase::process_round(Network& outer) {
  {
    const std::int64_t t0 = obs::monotonic_ns();
    vnet_->receive_pass(outer);
    const std::int64_t t1 = obs::monotonic_ns();
    outer.account_retransmit_seconds(static_cast<double>(t1 - t0) * 1e-9);
    if (outer.tracer() != nullptr)
      outer.tracer()->record(0, "rel:recv", t0, t1);
  }
  if (!inner_finished_ && vnet_->virtual_round_complete()) {
    vnet_->deliver_and_flip();
    inner_->process_round(*vnet_);
    if (inner_->finished(*vnet_)) {
      inner_finished_ = true;
      vnet_->abandon_outstanding();
      return;
    }
    vnet_->close_virtual_round();
  }
  {
    const std::int64_t t0 = obs::monotonic_ns();
    vnet_->transmit_pass(outer);
    const std::int64_t t1 = obs::monotonic_ns();
    outer.account_retransmit_seconds(static_cast<double>(t1 - t0) * 1e-9);
    if (outer.tracer() != nullptr)
      outer.tracer()->record(0, "rel:xmit", t0, t1);
  }
}

bool ReliablePhase::finished(const Network& outer) const {
  (void)outer;
  return inner_finished_;
}

}  // namespace arbods::resilience
