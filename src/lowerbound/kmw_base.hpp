// Base graphs for the Theorem 1.4 reduction.
//
// The true Kuhn–Moscibroda–Wattenhofer lower-bound instances are cluster
// trees with girth and degree constraints that only bind asymptotically;
// reproducing the *reduction* (graph H) needs a bipartite base graph G
// with m >= n and integrality gap 1 for vertex cover. These generators
// provide such bases at laptop scale; the substitution is documented in
// DESIGN.md.
#pragma once

#include "common/random.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods::lowerbound {

/// d-regular-ish bipartite circulant: sides A = [0,a), B = [a,a+b);
/// B-node j connects to A-nodes (j+i) mod a for i < min(d,a).
/// Deterministic, m = b*min(d,a).
Graph circulant_bipartite(NodeId a, NodeId b, NodeId d);

/// KMW-flavoured layered cluster graph: `levels` layers, layer l holding
/// width * delta^l nodes is fully matched to layer l+1 in a delta-regular
/// bipartite pattern (layer l node feeds delta children; each child keeps
/// one parent). Bipartite (layers alternate), high-degree hubs at the top.
Graph layered_cluster_tree(NodeId levels, NodeId delta, NodeId width);

/// Fractional minimum vertex cover value of g (LP optimum; on bipartite
/// graphs this equals the integral optimum by König).
double fractional_vc_value(const Graph& g);

/// True iff the assignment y is a feasible fractional vertex cover.
bool is_fractional_vc(const Graph& g, const std::vector<double>& y,
                      double tol = 1e-9);

}  // namespace arbods::lowerbound
