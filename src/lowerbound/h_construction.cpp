#include "lowerbound/h_construction.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace arbods::lowerbound {

HConstruction::HConstruction(const Graph& base, NodeId copies)
    : base_(base), base_edges_(base.edges()), copies_(copies),
      block_(base.num_nodes() + static_cast<NodeId>(base_edges_.size())) {
  ARBODS_CHECK(copies >= 1);
  const NodeId n = base_.num_nodes();
  const NodeId m = static_cast<NodeId>(base_edges_.size());
  GraphBuilder b(copies_ * block_ + n);
  for (NodeId c = 0; c < copies_; ++c) {
    for (NodeId j = 0; j < m; ++j) {
      const Edge& e = base_edges_[j];
      b.add_edge(copy_node(c, e.u), middle_node(c, j));
      b.add_edge(middle_node(c, j), copy_node(c, e.v));
    }
    for (NodeId v = 0; v < n; ++v) b.add_edge(t_node(v), copy_node(c, v));
  }
  h_ = std::move(b).build();
}

NodeId HConstruction::copy_node(NodeId copy, NodeId g_node) const {
  ARBODS_DCHECK(copy < copies_ && g_node < base_.num_nodes());
  return copy * block_ + g_node;
}

NodeId HConstruction::middle_node(NodeId copy, NodeId edge_index) const {
  ARBODS_DCHECK(copy < copies_ &&
                edge_index < static_cast<NodeId>(base_edges_.size()));
  return copy * block_ + base_.num_nodes() + edge_index;
}

NodeId HConstruction::t_node(NodeId g_node) const {
  ARBODS_DCHECK(g_node < base_.num_nodes());
  return copies_ * block_ + g_node;
}

HRole HConstruction::role(NodeId h_node) const {
  ARBODS_DCHECK(h_node < h_.num_nodes());
  if (h_node >= copies_ * block_) return HRole::kT;
  return (h_node % block_) < base_.num_nodes() ? HRole::kCopy : HRole::kMiddle;
}

NodeId HConstruction::origin(NodeId h_node) const {
  if (role(h_node) == HRole::kT) return h_node - copies_ * block_;
  const NodeId within = h_node % block_;
  return role(h_node) == HRole::kCopy ? within : within - base_.num_nodes();
}

NodeId HConstruction::copy_of(NodeId h_node) const {
  if (role(h_node) == HRole::kT) return kInvalidNode;
  return h_node / block_;
}

Orientation HConstruction::witness_orientation() const {
  std::vector<std::vector<NodeId>> out(h_.num_nodes());
  const NodeId n = base_.num_nodes();
  const NodeId m = static_cast<NodeId>(base_edges_.size());
  for (NodeId c = 0; c < copies_; ++c) {
    for (NodeId j = 0; j < m; ++j) {
      const Edge& e = base_edges_[j];
      out[middle_node(c, j)].push_back(copy_node(c, e.u));
      out[middle_node(c, j)].push_back(copy_node(c, e.v));
    }
    for (NodeId v = 0; v < n; ++v)
      out[copy_node(c, v)].push_back(t_node(v));
  }
  Orientation o(h_, std::move(out));
  o.validate();
  ARBODS_CHECK(o.max_out_degree() <= 2);
  return o;
}

std::vector<double> HConstruction::project_to_fractional_vc(
    const std::vector<NodeId>& h_dominating_set) const {
  const NodeId n = base_.num_nodes();
  // count[v] = number of copies i with v (or a middle node replaced by an
  // endpoint adjacent to it) in S_i.
  std::vector<std::vector<bool>> in_copy(
      copies_, std::vector<bool>(n, false));
  for (NodeId h_node : h_dominating_set) {
    switch (role(h_node)) {
      case HRole::kT:
        break;  // T nodes do not contribute to the vertex cover
      case HRole::kCopy:
        in_copy[copy_of(h_node)][origin(h_node)] = true;
        break;
      case HRole::kMiddle: {
        // Replace the middle node by one endpoint of its edge.
        const Edge& e = base_edges_[origin(h_node)];
        in_copy[copy_of(h_node)][e.u] = true;
        break;
      }
    }
  }
  std::vector<double> y(n, 0.0);
  for (NodeId c = 0; c < copies_; ++c)
    for (NodeId v = 0; v < n; ++v)
      if (in_copy[c][v]) y[v] += 1.0;
  for (NodeId v = 0; v < n; ++v) y[v] /= static_cast<double>(copies_);
  return y;
}

}  // namespace arbods::lowerbound
