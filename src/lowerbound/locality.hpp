// Locality experiment for Theorem 1.4.
//
// A lower bound cannot be "measured", but its phenomenon can be exhibited:
// truncate the Theorem 3.1 algorithm to R simulator rounds, force-complete
// (every still-undominated node joins), and watch the solution quality
// degrade as R shrinks — on the H construction the quality-vs-rounds curve
// flattens only after Omega(log Delta) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "congest/network.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::lowerbound {

struct TruncatedRun {
  std::int64_t rounds_allowed = 0;
  std::int64_t rounds_used = 0;
  Weight weight = 0;            // weight of the force-completed set
  std::size_t forced = 0;       // nodes added by force-completion
  double packing_lower_bound = 0.0;  // feasible even mid-run (Obs. 4.2)
  NodeSet set;
};

/// Runs the unweighted primal-dual algorithm truncated to `max_rounds`
/// simulator rounds and force-completes.
TruncatedRun run_truncated(const WeightedGraph& wg, NodeId alpha, double eps,
                           std::int64_t max_rounds, CongestConfig config = {});

}  // namespace arbods::lowerbound
