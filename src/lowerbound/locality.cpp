#include "lowerbound/locality.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/partial_ds.hpp"
#include "graph/verify.hpp"

namespace arbods::lowerbound {

TruncatedRun run_truncated(const WeightedGraph& wg, NodeId alpha, double eps,
                           std::int64_t max_rounds, CongestConfig config) {
  Network net(wg, config);
  PartialDsParams params;
  params.eps = eps;
  params.alpha = alpha;
  params.lambda = 1.0 / ((2.0 * static_cast<double>(alpha) + 1.0) * (1.0 + eps));
  PartialDominatingSet algo(params);
  RunStats stats = net.run(algo, max_rounds);

  TruncatedRun out;
  out.rounds_allowed = max_rounds;
  out.rounds_used = stats.rounds;
  out.set = algo.partial_set();
  // Force-complete: every node not dominated by the truncated S joins.
  const auto dom = dominated_mask(wg.graph(), out.set);
  for (NodeId v = 0; v < wg.num_nodes(); ++v) {
    if (!dom[v]) {
      out.set.push_back(v);
      ++out.forced;
    }
  }
  std::sort(out.set.begin(), out.set.end());
  out.weight = wg.total_weight(out.set);
  out.packing_lower_bound = packing_lower_bound(algo.packing());
  return out;
}

}  // namespace arbods::lowerbound
