// The Section 5 lower-bound graph H (Figure 1).
//
// From a base graph G with n nodes and m edges:
//   * `copies` disjoint copies G_1..G_k of G (the paper uses k = Delta^2),
//   * every edge of every copy subdivided by a fresh middle node,
//   * a set T of n fresh nodes, t_v adjacent to every copy of v.
// Properties (verified by structure_report / tests):
//   * |V(H)| = k(n+m) + n, |E(H)| = k(2m + n),
//   * max degree: middle nodes 2, copy nodes deg_G(v) + 1, t_v exactly k,
//   * arboricity 2, witnessed by the explicit orientation of the paper
//     (middle nodes orient outward, T-edges orient into T).
#pragma once

#include <cstdint>
#include <vector>

#include "arboricity/orientation.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods::lowerbound {

enum class HRole : std::uint8_t { kCopy, kMiddle, kT };

class HConstruction {
 public:
  /// copies >= 1. The paper's choice is copies = Delta(G)^2; smaller values
  /// keep experiments tractable and preserve the structure.
  HConstruction(const Graph& base, NodeId copies);

  const Graph& h() const { return h_; }
  const Graph& base() const { return base_; }
  NodeId copies() const { return copies_; }

  HRole role(NodeId h_node) const;
  /// For kCopy/kT nodes: the original G node. For kMiddle: the edge index
  /// into base_edges().
  NodeId origin(NodeId h_node) const;
  /// Copy index for kCopy/kMiddle nodes (kInvalidNode for T).
  NodeId copy_of(NodeId h_node) const;

  NodeId copy_node(NodeId copy, NodeId g_node) const;
  NodeId middle_node(NodeId copy, NodeId edge_index) const;
  NodeId t_node(NodeId g_node) const;

  const std::vector<Edge>& base_edges() const { return base_edges_; }

  /// The paper's arboricity-2 witness orientation (validated).
  Orientation witness_orientation() const;

  /// Projects a dominating set of H to a fractional vertex cover of G per
  /// the reduction in Theorem 1.4's proof: middle nodes are replaced by an
  /// endpoint, and y_v = |{i : v in S_i}| / copies.
  std::vector<double> project_to_fractional_vc(
      const std::vector<NodeId>& h_dominating_set) const;

 private:
  Graph base_;
  std::vector<Edge> base_edges_;
  NodeId copies_;
  NodeId block_;  // n + m, nodes per copy block
  Graph h_;
};

}  // namespace arbods::lowerbound
