#include "lowerbound/kmw_base.hpp"

#include <algorithm>

#include "baselines/simplex.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"
#include "graph/builder.hpp"

namespace arbods::lowerbound {

Graph circulant_bipartite(NodeId a, NodeId b, NodeId d) {
  ARBODS_CHECK(a >= 1 && b >= 1 && d >= 1);
  GraphBuilder builder(a + b);
  const NodeId dd = std::min(d, a);
  for (NodeId j = 0; j < b; ++j)
    for (NodeId i = 0; i < dd; ++i)
      builder.add_edge((j + i) % a, a + j);
  return std::move(builder).build();
}

Graph layered_cluster_tree(NodeId levels, NodeId delta, NodeId width) {
  ARBODS_CHECK(levels >= 2 && delta >= 1 && width >= 1);
  // Layer sizes: width * delta^l, l = 0..levels-1.
  std::vector<NodeId> layer_start(levels + 1);
  NodeId total = 0;
  for (NodeId l = 0; l < levels; ++l) {
    layer_start[l] = total;
    const std::int64_t size =
        static_cast<std::int64_t>(width) * ipow_saturating(delta, l);
    ARBODS_CHECK_MSG(size < (1 << 24), "layered cluster tree too large");
    total += static_cast<NodeId>(size);
  }
  layer_start[levels] = total;
  GraphBuilder b(total);
  for (NodeId l = 0; l + 1 < levels; ++l) {
    const NodeId cur = layer_start[l + 1] - layer_start[l];
    for (NodeId i = 0; i < cur; ++i) {
      const NodeId parent = layer_start[l] + i;
      for (NodeId c = 0; c < delta; ++c) {
        const NodeId child = layer_start[l + 1] + i * delta + c;
        b.add_edge(parent, child);
      }
    }
  }
  return std::move(b).build();
}

double fractional_vc_value(const Graph& g) {
  const auto edges = g.edges();
  std::vector<baselines::SparseRow> rows;
  rows.reserve(edges.size());
  std::vector<double> rhs(edges.size(), 1.0);
  std::vector<double> costs(g.num_nodes(), 1.0);
  for (const Edge& e : edges)
    rows.push_back({{static_cast<int>(e.u), 1.0}, {static_cast<int>(e.v), 1.0}});
  auto res = baselines::solve_covering_lp(static_cast<int>(g.num_nodes()),
                                          rows, rhs, costs);
  ARBODS_CHECK(res.feasible);
  return res.objective;
}

bool is_fractional_vc(const Graph& g, const std::vector<double>& y,
                      double tol) {
  ARBODS_CHECK(y.size() == g.num_nodes());
  for (const Edge& e : g.edges())
    if (y[e.u] + y[e.v] < 1.0 - tol) return false;
  return true;
}

}  // namespace arbods::lowerbound
