// Solver registry: stable string names for every one-call driver in
// core/solvers.hpp, with parameter schemas and analytic approximation
// bounds. Tests, benches, and the CLI enumerate solvers through this
// table instead of hand-rolled per-file lists, so adding a solver is a
// one-line registration and every harness picks it up.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "congest/network.hpp"
#include "core/mds_result.hpp"
#include "graph/weighted_graph.hpp"

namespace arbods::harness {

/// The union of every driver's tunables; each solver reads only the
/// fields its schema declares (see SolverInfo::schema).
struct SolverParams {
  NodeId alpha = 1;      // arboricity / out-degree promise (>= 1)
  double eps = 0.25;     // slack, in (0, 1)
  std::int64_t t = 2;    // Theorem 1.2 round/quality trade-off (>= 1)
  int k = 2;             // Theorem 1.3 round/quality trade-off (>= 1)
  /// Simulator worker-pool width: > 0 explicit, 0 = all hardware
  /// threads, -1 = inherit CongestConfig::threads (the default). Results
  /// are bit-identical for every width.
  int threads = -1;
  /// Simulator shard count: >= 1 explicit (1 = the classic single-arena
  /// Network, K > 1 = a ShardedNetwork over K shards), -1 = inherit
  /// CongestConfig::shards (the default). Results are bit-identical for
  /// every count.
  int shards = -1;
};

/// Which SolverParams fields a solver consumes. `threads` is consumed by
/// every solver (they all run on the simulator), so it has no flag here.
struct ParamSchema {
  bool alpha = false;
  bool eps = false;
  bool t = false;
  bool k = false;
};

struct SolverInfo {
  std::string_view name;       // stable registry key, e.g. "det"
  std::string_view theorem;    // paper reference, e.g. "Theorem 1.1"
  std::string_view guarantee;  // human-readable approximation guarantee
  ParamSchema schema;
  bool randomized = false;          // uses per-node randomness
  bool forests_only = false;        // defined only on forests
  bool bound_needs_unit_weights = false;  // guarantee stated for w == 1

  /// Throws CheckError when the fields the schema declares are out of
  /// range (other fields are ignored).
  void (*check_params)(const SolverParams&);

  /// Analytic approximation factor for this instance/parameter choice.
  /// For randomized solvers this is the expectation-level bound inflated
  /// by a fixed slack so fixed-seed regression runs stay under it.
  double (*approx_bound)(const WeightedGraph&, const SolverParams&);

  /// Runs the driver's phase list on the caller's Network (which fixes
  /// the graph, seed, and worker-pool width; SolverParams::threads is
  /// ignored here). The Network is reset and reused — this is the entry
  /// the scenario batch runner pools Networks through.
  MdsResult (*run_on)(Network&, const SolverParams&);
};

/// All registered solvers, in theorem order. Deliberately excludes the
/// self-healing variants so exhaustive clean/fault sweeps keep their
/// cost; see repair_solvers().
std::span<const SolverInfo> all_solvers();

/// The "<solver>+repair" self-healing variants (src/resilience/repair.hpp):
/// the base driver followed by the O(1)-round post-kill repair protocol,
/// with MdsResult's repair columns filled in. find_solver()/solver()
/// resolve these names too.
std::span<const SolverInfo> repair_solvers();

/// Registered names, in theorem order.
std::vector<std::string_view> solver_names();

/// Lookup; nullptr when unknown.
const SolverInfo* find_solver(std::string_view name);

/// Lookup; throws CheckError naming the known solvers when unknown.
const SolverInfo& solver(std::string_view name);

/// Convenience: look up, validate params, construct a Network (honoring
/// params.threads), run.
MdsResult run_solver(std::string_view name, const WeightedGraph& wg,
                     const SolverParams& params = {},
                     const CongestConfig& config = {});

/// Convenience: look up, validate params, run on the caller's (reused)
/// Network. params.threads must be -1 — the width is fixed by the
/// Network's own config.
MdsResult run_solver_on(std::string_view name, Network& net,
                        const SolverParams& params = {});

}  // namespace arbods::harness
