#include "harness/corpus.hpp"

#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/random.hpp"
#include "gen/arboricity_families.hpp"
#include "gen/classic.hpp"
#include "gen/random_graphs.hpp"
#include "gen/trees.hpp"
#include "gen/weights.hpp"
#include "graph/stats.hpp"

namespace arbods::harness {

namespace {

CorpusInstance make(std::string name, Graph g, NodeId alpha,
                    const std::string& profile, Rng& rng) {
  const bool forest = is_forest(g);
  const bool unit = profile == "unit";
  WeightedGraph wg = gen::with_weights(std::move(g), profile, rng,
                                       /*max_weight=*/16);
  return {std::move(name), std::move(wg), alpha, forest, unit, {}};
}

}  // namespace

std::vector<CorpusInstance> small_corpus(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CorpusInstance> out;
  // Forests (alpha = 1): classic shapes plus random trees.
  out.push_back(make("path12_unit", gen::path(12), 1, "unit", rng));
  out.push_back(make("star16_unit", gen::star(16), 1, "unit", rng));
  out.push_back(make("star16_degree", gen::star(16), 1, "degree", rng));
  out.push_back(make("tree24_unit", gen::random_tree_prufer(24, rng), 1,
                     "unit", rng));
  out.push_back(make("tree24_uniform", gen::random_tree_prufer(24, rng), 1,
                     "uniform", rng));
  out.push_back(make("forest20x3_unit", gen::random_forest(20, 3, rng), 1,
                     "unit", rng));
  out.push_back(make("caterpillar_unit", gen::caterpillar(6, 3), 1,
                     "unit", rng));
  // Arboricity 2: cycles, grids, outerplanar, 2-tree unions.
  out.push_back(make("cycle15_unit", gen::cycle(15), 2, "unit", rng));
  out.push_back(make("grid5x5_uniform", gen::grid(5, 5), 2, "uniform", rng));
  out.push_back(make("outerplanar24_unit",
                     gen::random_maximal_outerplanar(24, rng), 2, "unit",
                     rng));
  out.push_back(make("forest2x30_uniform", gen::k_tree_union(30, 2, rng), 2,
                     "uniform", rng));
  out.push_back(make("book8_degree", gen::book(8), 2, "degree", rng));
  // Arboricity 3: planar stacked triangulations, BA graphs.
  out.push_back(make("planar24_unit",
                     gen::planar_stacked_triangulation(24, rng), 3, "unit",
                     rng));
  out.push_back(make("ba3_30_uniform", gen::barabasi_albert(30, 3, rng), 3,
                     "uniform", rng));
  return out;
}

std::vector<CorpusInstance> standard_corpus(bool weighted,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CorpusInstance> out;
  auto add = [&](std::string name, Graph g, NodeId alpha) {
    const bool forest = is_forest(g);
    const NodeId n = g.num_nodes();
    WeightedGraph wg =
        weighted ? WeightedGraph(std::move(g), gen::uniform_weights(n, 100, rng))
                 : WeightedGraph::uniform(std::move(g));
    out.push_back(
        {std::move(name), std::move(wg), alpha, forest, !weighted, {}});
  };
  add("tree_n4096", gen::random_tree_prufer(4096, rng), 1);
  add("forest2_n4096", gen::k_tree_union(4096, 2, rng), 2);
  add("forest5_n4096", gen::k_tree_union(4096, 5, rng), 5);
  add("grid_64x64", gen::grid(64, 64), 2);
  add("planar3tree_n4096", gen::planar_stacked_triangulation(4096, rng), 3);
  add("outerplanar_n4096", gen::random_maximal_outerplanar(4096, rng), 2);
  add("ba2_n4096", gen::barabasi_albert(4096, 2, rng), 2);
  add("ba4_n4096", gen::barabasi_albert(4096, 4, rng), 4);
  add("star_n4096", gen::star(4096), 1);
  return out;
}

namespace {

Graph build_scaling_graph(const ScalingSpec& spec, Rng& rng) {
  if (spec.family == "tree") return gen::random_tree_prufer(spec.n, rng);
  if (spec.family == "forest2") return gen::k_tree_union(spec.n, 2, rng);
  if (spec.family == "forest5") return gen::k_tree_union(spec.n, 5, rng);
  if (spec.family == "ba3") return gen::barabasi_albert(spec.n, 3, rng);
  if (spec.family == "grid") {
    NodeId side = 1;
    while (side * side < spec.n) ++side;
    return gen::grid(side, side);
  }
  throw CheckError("unknown scaling family '" + spec.family + "'");
}

}  // namespace

std::vector<ScalingSpec> scaling_corpus() {
  std::vector<ScalingSpec> out;
  auto add = [&](const char* family, NodeId n, NodeId alpha) {
    std::ostringstream name;
    name << family << "_n" << n;
    out.push_back({name.str(), family, n, alpha});
  };
  for (const NodeId n : {10'000, 50'000, 100'000, 500'000}) {
    add("tree", n, 1);
    add("forest2", n, 2);
    add("ba3", n, 3);
    add("grid", n, 2);
    if (n <= 100'000) add("forest5", n, 5);  // m = 5n; cap the memory bill
  }
  return out;
}

const CorpusInstance& scaling_instance(const ScalingSpec& spec,
                                       std::uint64_t seed) {
  static std::mutex mutex;
  static std::map<std::pair<std::string, std::uint64_t>, CorpusInstance>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  const auto key = std::make_pair(spec.name, seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Rng rng(mix64(seed) ^ mix64(spec.n));
    Graph g = build_scaling_graph(spec, rng);
    const bool forest = spec.alpha == 1;
    CorpusInstance inst{spec.name, WeightedGraph::uniform(std::move(g)),
                        spec.alpha, forest, /*unit_weights=*/true,
                        spec.family};
    it = cache.emplace(key, std::move(inst)).first;
  }
  return it->second;
}

}  // namespace arbods::harness
