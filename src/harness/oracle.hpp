// Oracle checks for solver results on corpus instances: domination
// validity (via graph/verify.hpp), weight/packing certificate
// consistency, CONGEST round/message accounting against the enforced
// cap, and — on instances small enough for baselines/exact.hpp — cost
// against the solver's analytic approximation bound times the true OPT.
#pragma once

#include <string>

#include "congest/network.hpp"
#include "core/mds_result.hpp"
#include "harness/corpus.hpp"
#include "harness/registry.hpp"

namespace arbods::harness {

struct OracleOptions {
  double packing_tol = 1e-5;     // feasibility slack for quantized duals
  NodeId exact_limit = 40;       // compute exact OPT up to this many nodes
  bool check_approx_bound = true;
  /// Config the solver ran under (for the message-cap assertion).
  CongestConfig config = {};
  /// Surviving-subgraph mode: when non-null (size n, nonzero = alive —
  /// see fault::alive_mask), checks are restricted to the subgraph the
  /// kill schedule leaves behind. Domination is required of alive nodes
  /// only, by alive set members only (dead members cover nobody but
  /// still count toward the recorded weight, which must stay internally
  /// consistent); hit_round_limit is reported, not failed (a starved
  /// solver is the raw-vs-repair story, not an oracle bug); the
  /// analytic approx bound is skipped and the reported OPT/ratio are
  /// against the exact optimum of the INDUCED alive subgraph, using the
  /// alive members' weight. Null = classic clean-run checks.
  const std::vector<std::uint8_t>* alive = nullptr;
};

struct OracleReport {
  bool ok = true;
  std::string failure;  // first failed check, human-readable; empty if ok
  double opt = -1.0;    // exact OPT weight when computed, else -1
  double ratio = -1.0;  // res.weight / opt when opt computed, else -1
};

/// Runs every applicable check; stops at the first failure.
OracleReport check_solver_result(const SolverInfo& info,
                                 const SolverParams& params,
                                 const CorpusInstance& inst,
                                 const MdsResult& res,
                                 const OracleOptions& opts = {});

/// True iff the solver can run on this instance (forest requirement).
/// Unit-weight-only *guarantees* still run on weighted instances; gate on
/// info.bound_needs_unit_weights when comparing weighted quality.
bool solver_applicable(const SolverInfo& info, const CorpusInstance& inst);

/// Suggested params for running `info` on `inst` (alpha from the
/// instance's promise; defaults elsewhere).
SolverParams params_for(const SolverInfo& info, const CorpusInstance& inst);

}  // namespace arbods::harness
