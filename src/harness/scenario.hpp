// Scenario batch runner: the harness layer of the protocol engine.
//
// A ScenarioSpec describes a sweep {solvers x instances x thread widths x
// shard counts x seeds x fault levels x repeats}; run_scenario expands it
// over POOLED Networks — one Network per (instance, width, shard count,
// seed, fault level), constructed once and reset between
// runs via Network::reset_for_reuse — and returns one row per cell with
// the full MdsResult (per-phase stats included), a median wall-clock
// timing, and a cross-width/cross-repeat determinism verdict. The old
// hand-rolled exp* driver loops (instance x solver x width with ad-hoc
// reference checking) are this function now; exp12_scaling, exp4, exp6,
// arbods_cli, and examples/content_mirrors all drive it.
//
// write_scenario_json emits the rows in the exp12 JSON schema (one object
// per row) for plotting / CI artifact upload / the perf-regression gate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/fault_spec.hpp"
#include "harness/corpus.hpp"
#include "harness/registry.hpp"
#include "obs/trace.hpp"

namespace arbods::harness {

/// One solver column of a scenario: a registry solver plus optional
/// parameter overrides and a display label.
struct ScenarioSolver {
  std::string name;                    // registry key
  /// nullopt = derive via params_for(info, instance) (alpha from the
  /// instance promise). threads is ignored either way — the sweep's
  /// thread_widths drive the Network config.
  std::optional<SolverParams> params;
  std::string label;                   // defaults to `name`
};

/// One fault level of a scenario sweep: a display label (the rows' JSON
/// `fault` field; empty = derive via fault::fault_label) plus the
/// FaultSpec installed into the cell's CongestConfig. The default level
/// is inert, so an unconfigured scenario stays a clean sweep.
struct ScenarioFault {
  std::string label;
  fault::FaultSpec spec{};
};

struct ScenarioSpec {
  std::vector<ScenarioSolver> solvers;
  std::vector<int> thread_widths = {1};
  /// Simulator shard counts (one pass per count, like thread_widths; the
  /// simulator promises bit-identical results for every count, which the
  /// determinism audit re-checks against the same cell reference).
  std::vector<int> shard_counts = {1};
  /// Simulator seeds (one pass per seed); defaults to the CongestConfig
  /// default so an unconfigured scenario matches an unconfigured solver
  /// call bit-for-bit.
  std::vector<std::uint64_t> seeds = {CongestConfig{}.seed};
  /// Fault levels (one pass per level, like thread_widths): each level's
  /// spec overrides base_config.fault and labels its rows, so one sweep
  /// emits a robustness envelope per solver. The determinism audit keys
  /// its reference per (instance, solver, seed, fault level) — faulty
  /// runs promise bit-identical results across every width and shard
  /// count just like clean ones.
  std::vector<ScenarioFault> fault_levels = {{}};
  /// Catch a solver CheckError per cell (a heavy fault level can starve
  /// a solver into a violated invariant) and mark the row failed=true —
  /// with a default result and zero seconds — instead of aborting the
  /// whole sweep. Failed cells are excluded from the determinism audit.
  bool tolerate_failures = false;
  /// Timed runs per cell (the reported seconds is their median); > 1
  /// adds one untimed warm-up run first.
  int repeats = 1;
  /// Require bit-identical results (set, weight, stats incl. per-phase)
  /// across every width and repeat of an (instance, solver, seed) cell.
  bool check_determinism = true;
  /// Skip (solver, instance) pairs the solver cannot run on
  /// (forests_only) instead of throwing.
  bool skip_inapplicable = true;
  /// res.validate() every cell (small corpora only — it walks the graph).
  bool validate = false;
  /// Keep each row's O(n) packing certificate. Large sweeps that only
  /// consume the scalar fields (exp12's JSON) set this false so the
  /// returned rows do not accumulate one certificate vector per cell;
  /// determinism checking still compares full certificates per cell
  /// before the drop.
  bool keep_certificates = true;
  /// Write a Chrome trace-event JSON file here after the sweep (empty =
  /// tracing off). Enables base_config.trace for every cell; each cell
  /// contributes one labeled group covering its FINAL repeat (pooled
  /// Networks clear the recorder at every run() start), so the file
  /// shows one process-row block per cell with per-worker tracks.
  /// Tracing cannot change results — the determinism audit still runs.
  std::string trace_out;
  /// Base simulator config; seed and threads are overridden per cell.
  CongestConfig base_config{};
};

struct ScenarioRow {
  std::string instance;
  std::string family;
  NodeId n = 0;
  std::int64_t m = 0;
  std::string solver;      // the ScenarioSolver label
  int threads = 1;
  int shards = 1;
  std::uint64_t seed = 0;
  /// The fault level's label ("none" for a clean cell).
  std::string fault = "none";
  int repeats = 1;
  double seconds = 0.0;    // median over the timed repeats
  MdsResult result;
  bool identical = true;   // determinism verdict for this cell
  /// The solver threw a CheckError (only under tolerate_failures).
  bool failed = false;
  /// Bytes that crossed each of the shard plan's K-1 boundaries during
  /// the cell's final run (ShardedNetwork::boundary_bridged_bytes).
  /// Empty when shards == 1 — a plain Network has no bridge.
  std::vector<std::int64_t> bridged_bytes;
  /// The cell ran with CongestConfig::pin_threads (worker threads pinned
  /// to CPUs, shard-affine dispatch) — placement metadata, never part of
  /// the row key: pinning cannot change results, only timing.
  bool pinned = false;
  /// Shard plans adopted during the cell's final run (phase-boundary
  /// auto-replans under CongestConfig::auto_replan; 0 when unsharded or
  /// replanning off). Deterministic across widths and repeats — on a
  /// pooled Network later repeats start from the already-refined plan,
  /// so a converged cell reports 0 here.
  int replans = 0;
  /// Flight-recorder context for diagnosable incidents: the last N
  /// per-round summaries of the run that failed (CheckError under
  /// tolerate_failures) or terminated via the round budget. Empty for
  /// healthy rows and whenever trace.flight_rounds resolves to 0 —
  /// run_scenario defaults it to 8 under tolerate_failures.
  std::vector<obs::FlightRecord> last_rounds;
};

/// Pools Networks keyed by (graph, config): every run that shares the
/// pool reuses one Network per key, constructed once and reset between
/// runs (a config with shards > 1 pools a ShardedNetwork — the caller
/// only ever sees the Network surface). The construction count is
/// exposed so tests can pin the reuse.
class NetworkPool {
 public:
  Network& acquire(const WeightedGraph& wg, const CongestConfig& config);
  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t constructed() const { return constructed_; }

 private:
  struct Entry {
    const WeightedGraph* wg;
    CongestConfig config;
    std::unique_ptr<Network> net;
  };
  std::vector<Entry> entries_;
  std::size_t constructed_ = 0;
};

/// Runs the whole expansion. Networks are pooled per instance and
/// released when the sweep moves to the next instance, so a scaling
/// sweep never holds more than one instance's arenas.
std::vector<ScenarioRow> run_scenario(
    const ScenarioSpec& spec,
    std::span<const CorpusInstance* const> instances);
std::vector<ScenarioRow> run_scenario(
    const ScenarioSpec& spec, const std::vector<CorpusInstance>& instances);

/// True iff every row's determinism verdict holds.
bool all_identical(std::span<const ScenarioRow> rows);

/// True midpoint median of the samples (sorted in place): the average of
/// the two central elements for even sizes, 0.0 for an empty vector.
/// Exposed so the even-count bias fix is unit-testable — the old
/// samples[size / 2] reported the UPPER central element, biasing
/// --repeats 4 timings upward.
double median_of(std::vector<double>& samples);

/// The exp12 JSON row schema version emitted by write_scenario_json.
/// v2 added `schema_version` and the per-row `shards` count, so
/// artifacts from different shard configs are distinguishable. v3 added
/// `bridged_bytes`, the per-boundary inter-shard byte volume of the
/// cell's final run (an empty array for unsharded rows) — the measured
/// quantity traffic-aware shard placement optimizes. v4 added `seed`
/// (multi-seed sweeps used to emit indistinguishable rows), the fault
/// axis (`fault` label plus the dropped/duplicated/delayed/killed
/// counters), and `failed` (solver threw under tolerate_failures). v5
/// added `hit_round_limit` (the row's run terminated via the round
/// budget — under heavy faults that is data, not an error) and the
/// self-healing columns `repair_rounds`/`repaired_nodes`/
/// `post_repair_weight` (nonzero only for "<solver>+repair" rows). v6
/// added `pinned` (the cell ran with worker threads pinned and
/// shard-affine dispatch) and `replans` (phase-boundary auto-replans in
/// the final run); compare_bench.py compares optional counters only
/// when both sides carry them, so v5 and v6 artifacts keep matching on
/// their shared fields. v7 added the wall-clock breakdown columns
/// `compute_seconds`/`flip_seconds`/`merge_seconds`/
/// `retransmit_seconds` (informational only — compare_bench.py prints
/// them but never fails on timing drift), switched `seconds` and the
/// breakdown to explicit fixed 9-decimal formatting (sub-millisecond
/// rows used to collapse under 6-significant-digit stream defaults),
/// and added `last_rounds`, the flight-recorder context of failed /
/// round-limited rows (an empty array for healthy ones).
inline constexpr int kScenarioJsonSchemaVersion = 7;

/// One JSON object per row, as a JSON array (the exp12 schema):
/// schema_version/instance/family/n/m/solver/threads/shards/seed/fault/
/// seconds/repeats/rounds/messages/total_bits/set_size/weight/dropped/
/// duplicated/delayed/killed/hit_round_limit/repair_rounds/
/// repaired_nodes/post_repair_weight/pinned/replans/compute_seconds/
/// flip_seconds/merge_seconds/retransmit_seconds/identical/failed/
/// bridged_bytes/last_rounds.
void write_scenario_json(std::ostream& os, std::span<const ScenarioRow> rows);

}  // namespace arbods::harness
