// Canonical instance corpora shared by tests and benches.
//
// `small_corpus` crosses the gen/ families with the weight profiles at
// sizes where baselines/exact.hpp can certify OPT (n <= 40), so oracle
// checks can compare every solver against the true optimum.
// `standard_corpus` is the bench-scale family set (formerly duplicated in
// bench/bench_util.hpp).
// The scaling tier (`scaling_corpus` / `scaling_instance`) is the
// large-instance set behind bench/exp12_scaling.cpp: bounded-arboricity
// families at n = 10k..500k, described cheaply up front and built lazily
// on first use (then cached in-process, so a sweep touching the same
// instance at several thread counts generates it once).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace arbods::harness {

struct CorpusInstance {
  std::string name;
  WeightedGraph wg;
  NodeId alpha;            // arboricity promise handed to the solvers
  bool forest = false;     // wg.graph() is a forest
  bool unit_weights = false;
  /// Generator family the instance came from ("" for ad-hoc instances);
  /// carried into scenario reports.
  std::string family;
};

/// Deterministic small instances (n <= 40): generator families x weight
/// profiles (unit / uniform / degree-proportional).
std::vector<CorpusInstance> small_corpus(std::uint64_t seed);

/// The standard laptop-scale experiment families (n ~ 4096).
std::vector<CorpusInstance> standard_corpus(bool weighted, std::uint64_t seed);

/// A scaling-tier instance: cheap description now, graph on demand.
struct ScalingSpec {
  std::string name;    // e.g. "forest2_n100000"
  std::string family;  // tree | forest2 | forest5 | ba3 | grid
  NodeId n;
  NodeId alpha;        // arboricity promise of the family
};

/// Bounded-arboricity families crossed with n in {10k, 50k, 100k, 500k}
/// (the densest families stop at 100k to keep memory in check).
std::vector<ScalingSpec> scaling_corpus();

/// Builds the spec's unit-weight instance, caching it in-process keyed on
/// (name, seed): the first call pays the generation cost, later calls are
/// lookups. Thread-safe. The reference stays valid for the process
/// lifetime.
const CorpusInstance& scaling_instance(const ScalingSpec& spec,
                                       std::uint64_t seed = 12345);

}  // namespace arbods::harness
