// Canonical instance corpora shared by tests and benches.
//
// `small_corpus` crosses the gen/ families with the weight profiles at
// sizes where baselines/exact.hpp can certify OPT (n <= 40), so oracle
// checks can compare every solver against the true optimum.
// `standard_corpus` is the bench-scale family set (formerly duplicated in
// bench/bench_util.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace arbods::harness {

struct CorpusInstance {
  std::string name;
  WeightedGraph wg;
  NodeId alpha;            // arboricity promise handed to the solvers
  bool forest = false;     // wg.graph() is a forest
  bool unit_weights = false;
};

/// Deterministic small instances (n <= 40): generator families x weight
/// profiles (unit / uniform / degree-proportional).
std::vector<CorpusInstance> small_corpus(std::uint64_t seed);

/// The standard laptop-scale experiment families (n ~ 4096).
std::vector<CorpusInstance> standard_corpus(bool weighted, std::uint64_t seed);

}  // namespace arbods::harness
