#include "harness/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <utility>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "fault/faulty_network.hpp"
#include "harness/oracle.hpp"
#include "shard/sharded_network.hpp"

namespace arbods::harness {

Network& NetworkPool::acquire(const WeightedGraph& wg,
                              const CongestConfig& config) {
  for (Entry& e : entries_)
    if (e.wg == &wg && e.config == config) return *e.net;
  entries_.push_back(Entry{&wg, config, fault::make_network(wg, config)});
  ++constructed_;
  return *entries_.back().net;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

/// Explicit fixed 9-decimal seconds (nanosecond resolution): the stream
/// default of 6 significant digits collapses sub-millisecond rows into
/// indistinguishable values.
std::string json_fixed(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9f", v);
  return std::string(buf);
}

}  // namespace

std::vector<ScenarioRow> run_scenario(
    const ScenarioSpec& spec,
    std::span<const CorpusInstance* const> instances) {
  ARBODS_CHECK_MSG(!spec.solvers.empty(), "scenario has no solvers");
  ARBODS_CHECK_MSG(!spec.thread_widths.empty(), "scenario has no widths");
  ARBODS_CHECK_MSG(!spec.shard_counts.empty(), "scenario has no shard counts");
  for (const int shard_count : spec.shard_counts)
    ARBODS_CHECK_MSG(shard_count >= 1,
                     "shard counts must be >= 1, got " << shard_count);
  ARBODS_CHECK_MSG(!spec.seeds.empty(), "scenario has no seeds");
  ARBODS_CHECK_MSG(!spec.fault_levels.empty(), "scenario has no fault levels");
  ARBODS_CHECK_MSG(spec.repeats >= 1, "repeats must be >= 1");

  // Observability defaults for the sweep: --trace-out turns span
  // recording on, and tolerate_failures arms the flight recorder (the
  // whole point of tolerating a failure is diagnosing it). Applied to a
  // copy — the caller's spec stays untouched.
  CongestConfig base_config = spec.base_config;
  if (!spec.trace_out.empty()) base_config.trace.enabled = true;
  if (spec.tolerate_failures && base_config.trace.flight_rounds == 0)
    base_config.trace.flight_rounds = 8;
  std::vector<obs::TraceGroup> trace_groups;

  std::vector<ScenarioRow> rows;
  for (const CorpusInstance* inst_ptr : instances) {
    ARBODS_CHECK(inst_ptr != nullptr);
    const CorpusInstance& inst = *inst_ptr;
    // Pool scope = one instance: every (width, seed) Network is reused
    // across all solvers and repeats on this graph, then released before
    // the next instance so a scaling sweep holds one instance's arenas.
    NetworkPool pool;
    for (const ScenarioSolver& scenario_solver : spec.solvers) {
      const SolverInfo& info = solver(scenario_solver.name);
      if (!solver_applicable(info, inst)) {
        ARBODS_CHECK_MSG(spec.skip_inapplicable,
                         "solver '" << info.name << "' requires a forest; '"
                                    << inst.name << "' is not one");
        continue;
      }
      SolverParams params =
          scenario_solver.params.value_or(params_for(info, inst));
      params.threads = -1;  // the width lives in the Network config
      params.shards = -1;   // so does the shard count
      // Validate once per cell, outside the timed repeat loop (the
      // forests_only check walks the whole graph; run_solver_on would
      // redo it per repeat inside the Stopwatch window).
      info.check_params(params);

      for (const std::uint64_t seed : spec.seeds) {
      for (const ScenarioFault& level : spec.fault_levels) {
        // One reference per (instance, solver, seed, fault level): every
        // width, every shard count, and every repeat must reproduce it
        // bit-for-bit — a sweep doubles as an end-to-end determinism
        // audit, for faulty cells exactly as for clean ones.
        MdsResult reference;
        bool have_reference = false;

        for (const int width : spec.thread_widths) {
        for (const int shard_count : spec.shard_counts) {
          CongestConfig cfg = base_config;
          cfg.seed = seed;
          cfg.threads = width;
          cfg.shards = shard_count;
          cfg.fault = level.spec;
          Network& net = pool.acquire(inst.wg, cfg);

          bool identical = true;
          bool failed = false;
          std::vector<obs::FlightRecord> last_rounds;
          MdsResult res;
          std::vector<double> samples;
          samples.reserve(static_cast<std::size_t>(spec.repeats));
          const int total_runs =
              spec.repeats > 1 ? spec.repeats + 1 : spec.repeats;
          for (int rep = 0; rep < total_runs; ++rep) {
            Stopwatch timer;
            MdsResult run;
            if (spec.tolerate_failures) {
              try {
                run = info.run_on(net, params);
              } catch (const CheckError&) {
                // The solver's invariants broke under this fault level;
                // record the casualty — with the flight recorder's
                // last-rounds context — and keep sweeping. The pooled
                // Network is safe to reuse: every run starts from
                // reset_for_reuse.
                failed = true;
                last_rounds = net.flight_records();
                if (!last_rounds.empty()) {
                  std::string why = "solver '";
                  why += scenario_solver.name;
                  why += "' threw CheckError on '";
                  why += inst.name;
                  why += "'";
                  net.dump_flight_recorder(std::cerr, why);
                }
                break;
              }
            } else {
              run = info.run_on(net, params);
            }
            const double seconds = timer.elapsed_seconds();
            const bool warmup = spec.repeats > 1 && rep == 0;
            if (!warmup) samples.push_back(seconds);
            if (spec.check_determinism) {
              if (!have_reference) {
                reference = run;
                have_reference = true;
              } else {
                identical &= run == reference;
              }
            }
            res = std::move(run);
          }
          if (failed) {
            res = MdsResult{};
            samples.clear();
            identical = true;  // excluded from the audit
          }
          // Round-limited rows get the same context as failed ones: the
          // final run's last rounds show what the phase was doing when
          // the budget ran out.
          if (!failed && res.stats.hit_round_limit)
            last_rounds = net.flight_records();
          if (spec.validate && !failed) res.validate(inst.wg, 1e-5);
          if (!spec.keep_certificates) {
            res.packing.clear();
            res.packing.shrink_to_fit();
          }
          const double seconds = median_of(samples);

          ScenarioRow row;
          row.instance = inst.name;
          row.family = inst.family;
          row.n = inst.wg.num_nodes();
          row.m = inst.wg.graph().num_edges();
          row.solver = scenario_solver.label.empty() ? scenario_solver.name
                                                     : scenario_solver.label;
          row.threads = width;
          row.shards = shard_count;
          row.seed = seed;
          row.fault =
              level.label.empty() ? fault::fault_label(level.spec) : level.label;
          row.repeats = spec.repeats;
          row.seconds = seconds;
          row.result = std::move(res);
          row.identical = identical;
          row.failed = failed;
          row.pinned = cfg.pin_threads;
          // Bridge counters reset at each run() start, so this reads the
          // final repeat's per-boundary volume — deterministic, hence
          // identical across repeats anyway. A FaultyNetwork over shards
          // keeps its bridge private, so faulty rows skip the field.
          if (const auto* sharded =
                  dynamic_cast<const shard::ShardedNetwork*>(&net))
            row.bridged_bytes = sharded->boundary_bridged_bytes();
          // Replans, by contrast, come through the decorator-unwrapping
          // seam: a faulty sharded cell with auto_replan still reports
          // its inner engine's plan adoptions.
          if (const auto* core = net.sharded_core())
            row.replans = core->replans();
          row.last_rounds = std::move(last_rounds);
          // One trace group per cell: the recorder holds the FINAL
          // repeat's spans (reset_for_reuse clears it at each run start).
          if (!spec.trace_out.empty() && net.tracer() != nullptr) {
            obs::TraceGroup group;
            group.label = inst.name + " · " + row.solver +
                          " · t" + std::to_string(width) + " s" +
                          std::to_string(shard_count) + " seed" +
                          std::to_string(seed);
            if (row.fault != "none") group.label += " · " + row.fault;
            group.events = net.tracer()->snapshot();
            if (!group.events.empty())
              trace_groups.push_back(std::move(group));
          }
          rows.push_back(std::move(row));
        }
        }
      }
      }
    }
  }
  if (!spec.trace_out.empty()) {
    std::ofstream out(spec.trace_out);
    ARBODS_CHECK_MSG(out.good(),
                     "cannot open trace output '" << spec.trace_out << "'");
    obs::write_chrome_json(out, trace_groups);
  }
  return rows;
}

std::vector<ScenarioRow> run_scenario(
    const ScenarioSpec& spec, const std::vector<CorpusInstance>& instances) {
  std::vector<const CorpusInstance*> ptrs;
  ptrs.reserve(instances.size());
  for (const CorpusInstance& inst : instances) ptrs.push_back(&inst);
  return run_scenario(spec, ptrs);
}

bool all_identical(std::span<const ScenarioRow> rows) {
  for (const ScenarioRow& row : rows)
    if (!row.identical) return false;
  return true;
}

double median_of(std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t half = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[half];
  return 0.5 * (samples[half - 1] + samples[half]);
}

void write_scenario_json(std::ostream& os, std::span<const ScenarioRow> rows) {
  os << "[\n";
  bool first = true;
  for (const ScenarioRow& row : rows) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"schema_version\": " << kScenarioJsonSchemaVersion
       << ", \"instance\": " << json_string(row.instance)
       << ", \"family\": " << json_string(row.family)
       << ", \"n\": " << row.n << ", \"m\": " << row.m
       << ", \"solver\": " << json_string(row.solver)
       << ", \"threads\": " << row.threads
       << ", \"shards\": " << row.shards
       << ", \"seed\": " << row.seed
       << ", \"fault\": " << json_string(row.fault)
       << ", \"seconds\": " << json_fixed(row.seconds)
       << ", \"repeats\": " << row.repeats
       << ", \"rounds\": " << row.result.stats.rounds
       << ", \"messages\": " << row.result.stats.messages
       << ", \"total_bits\": " << row.result.stats.total_bits
       << ", \"set_size\": " << row.result.dominating_set.size()
       << ", \"weight\": " << row.result.weight
       << ", \"dropped\": " << row.result.stats.dropped
       << ", \"duplicated\": " << row.result.stats.duplicated
       << ", \"delayed\": " << row.result.stats.delayed
       << ", \"killed\": " << row.result.stats.killed
       << ", \"hit_round_limit\": "
       << (row.result.stats.hit_round_limit ? "true" : "false")
       << ", \"repair_rounds\": " << row.result.repair_rounds
       << ", \"repaired_nodes\": " << row.result.repaired_nodes
       << ", \"post_repair_weight\": " << row.result.post_repair_weight
       << ", \"pinned\": " << (row.pinned ? "true" : "false")
       << ", \"replans\": " << row.replans
       << ", \"compute_seconds\": "
       << json_fixed(row.result.stats.timing.compute_seconds)
       << ", \"flip_seconds\": "
       << json_fixed(row.result.stats.timing.flip_seconds)
       << ", \"merge_seconds\": "
       << json_fixed(row.result.stats.timing.merge_seconds)
       << ", \"retransmit_seconds\": "
       << json_fixed(row.result.stats.timing.retransmit_seconds)
       << ", \"identical\": " << (row.identical ? "true" : "false")
       << ", \"failed\": " << (row.failed ? "true" : "false")
       << ", \"bridged_bytes\": [";
    for (std::size_t i = 0; i < row.bridged_bytes.size(); ++i) {
      if (i > 0) os << ", ";
      os << row.bridged_bytes[i];
    }
    os << "], \"last_rounds\": [";
    for (std::size_t i = 0; i < row.last_rounds.size(); ++i) {
      const obs::FlightRecord& r = row.last_rounds[i];
      if (i > 0) os << ", ";
      os << "{\"round\": " << r.round << ", \"active\": " << r.active
         << ", \"delivered\": " << r.delivered << ", \"bits\": " << r.bits
         << ", \"spilled\": " << r.spilled << ", \"dropped\": " << r.dropped
         << ", \"duplicated\": " << r.duplicated
         << ", \"delayed\": " << r.delayed << ", \"killed\": " << r.killed
         << "}";
    }
    os << "]}";
  }
  os << "\n]\n";
}

}  // namespace arbods::harness
