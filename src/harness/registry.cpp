#include "harness/registry.hpp"

#include <array>
#include <cmath>
#include <sstream>

#include "arboricity/pseudoarboricity.hpp"
#include "common/check.hpp"
#include "core/solvers.hpp"
#include "graph/stats.hpp"
#include "fault/faulty_network.hpp"
#include "resilience/repair.hpp"

namespace arbods::harness {

namespace {

void check_alpha(const SolverParams& p) {
  ARBODS_CHECK_MSG(p.alpha >= 1, "alpha must be >= 1, got " << p.alpha);
}

void check_eps(const SolverParams& p) {
  ARBODS_CHECK_MSG(p.eps > 0.0 && p.eps < 1.0,
                   "eps must be in (0, 1), got " << p.eps);
}

void check_alpha_eps(const SolverParams& p) {
  check_alpha(p);
  check_eps(p);
}

void check_alpha_t(const SolverParams& p) {
  check_alpha(p);
  ARBODS_CHECK_MSG(p.t >= 1, "t must be >= 1, got " << p.t);
}

void check_k(const SolverParams& p) {
  ARBODS_CHECK_MSG(p.k >= 1, "k must be >= 1, got " << p.k);
}

void check_nothing(const SolverParams&) {}

double deterministic_bound(const WeightedGraph&, const SolverParams& p) {
  return (2.0 * static_cast<double>(p.alpha) + 1.0) * (1.0 + p.eps);
}

// Theorem 1.2 bounds E[weight] by alpha + O(alpha / t) + O(1). The
// per-run slack keeps fixed-seed regression runs under the bound while
// still separating the randomized factor (~alpha) from the deterministic
// one (~2 alpha) for large alpha.
double randomized_bound(const WeightedGraph&, const SolverParams& p) {
  const double a = static_cast<double>(p.alpha);
  return 2.0 * (a + a / static_cast<double>(p.t)) + 3.0;
}

// Theorem 1.3: O(k Delta^{2/k}). Constant calibrated against the exact
// optimum on the small corpus (fixed seeds).
double general_bound(const WeightedGraph& wg, const SolverParams& p) {
  const double delta =
      std::max<double>(1.0, static_cast<double>(wg.graph().max_degree()));
  return 2.0 * static_cast<double>(p.k) *
             std::pow(delta, 2.0 / static_cast<double>(p.k)) +
         3.0;
}

// Remark 4.5: alpha is not promised, so the guarantee is in terms of the
// instance's true pseudoarboricity; the doubling orientation prologue may
// settle on an out-degree up to twice that, hence the factor 2.
double unknown_alpha_bound(const WeightedGraph& wg, const SolverParams& p) {
  const double a =
      std::max<double>(1.0, static_cast<double>(pseudoarboricity(wg.graph())));
  return (4.0 * a + 1.0) * (1.0 + p.eps);
}

// Observation A.1: every-internal-node is a 3-approximation on forests
// with unit weights.
double tree_bound(const WeightedGraph&, const SolverParams&) { return 3.0; }

// LW10-shape baseline: each of the O(log Delta) phases adds O(alpha)*OPT
// nodes on arboricity-alpha graphs with unit weights. Constant calibrated
// against the exact optimum on the small corpus (fixed seeds).
double greedy_threshold_bound(const WeightedGraph& wg, const SolverParams& p) {
  const double delta =
      std::max<double>(1.0, static_cast<double>(wg.graph().max_degree()));
  const double phases = std::log2(delta) + 2.0;
  return 2.0 * (2.0 * static_cast<double>(p.alpha) + 1.0) * phases + 3.0;
}

// The election heuristic has no worst-case guarantee; on unit weights any
// dominating set trivially costs at most n <= n * OPT.
double greedy_election_bound(const WeightedGraph& wg, const SolverParams&) {
  return std::max<double>(1.0, static_cast<double>(wg.num_nodes()));
}

MdsResult run_det(Network& net, const SolverParams& p) {
  return solve_mds_deterministic(net, p.alpha, p.eps);
}

MdsResult run_unweighted(Network& net, const SolverParams& p) {
  return solve_mds_unweighted(net, p.alpha, p.eps);
}

MdsResult run_randomized(Network& net, const SolverParams& p) {
  return solve_mds_randomized(net, p.alpha, p.t);
}

MdsResult run_general(Network& net, const SolverParams& p) {
  return solve_mds_general(net, p.k);
}

MdsResult run_unknown_delta(Network& net, const SolverParams& p) {
  return solve_mds_unknown_delta(net, p.alpha, p.eps);
}

MdsResult run_unknown_alpha(Network& net, const SolverParams& p) {
  return solve_mds_unknown_alpha(net, p.eps);
}

MdsResult run_tree(Network& net, const SolverParams&) {
  return solve_mds_tree(net);
}

MdsResult run_greedy_threshold(Network& net, const SolverParams&) {
  return solve_mds_greedy_threshold(net);
}

MdsResult run_greedy_election(Network& net, const SolverParams&) {
  return solve_mds_greedy_election(net);
}

// Self-healing wrapper behind every "<solver>+repair" variant: run the
// base driver (a solver starved by crash-stop kills terminates via the
// round budget's CheckError — then the base set is empty), then run the
// O(1)-round repair protocol from whatever the base produced. The
// repaired set replaces the result set/weight; packing and iterations
// stay the base solver's (empty/zero when it starved). Judged by the
// surviving-subgraph oracle, not the clean-run certificate checks.
MdsResult run_with_repair(Network& net, const SolverParams& p,
                          MdsResult (*base)(Network&, const SolverParams&)) {
  MdsResult res;
  try {
    res = base(net, p);
  } catch (const CheckError&) {
    res = MdsResult{};
  }
  const resilience::RepairOutcome out =
      resilience::run_repair(net, res.dominating_set);
  res.dominating_set = out.repaired_set;
  res.weight = out.post_weight;
  res.post_repair_weight = out.post_weight;
  res.repair_rounds = out.repair_rounds;
  res.repaired_nodes = out.repaired_nodes;
  res.stats = net.stats();
  return res;
}

MdsResult run_det_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_det);
}
MdsResult run_unweighted_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_unweighted);
}
MdsResult run_randomized_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_randomized);
}
MdsResult run_general_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_general);
}
MdsResult run_unknown_delta_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_unknown_delta);
}
MdsResult run_unknown_alpha_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_unknown_alpha);
}
MdsResult run_tree_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_tree);
}
MdsResult run_greedy_threshold_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_greedy_threshold);
}
MdsResult run_greedy_election_repair(Network& net, const SolverParams& p) {
  return run_with_repair(net, p, run_greedy_election);
}

constexpr std::array<SolverInfo, 9> kSolvers{{
    {"det", "Theorem 1.1", "(2a+1)(1+eps)",
     {.alpha = true, .eps = true}, false, false, false,
     check_alpha_eps, deterministic_bound, run_det},
    {"unweighted", "Theorem 3.1", "(2a+1)(1+eps), unit weights",
     {.alpha = true, .eps = true}, false, false, true,
     check_alpha_eps, deterministic_bound, run_unweighted},
    {"randomized", "Theorem 1.2", "a + O(a/t) in expectation",
     {.alpha = true, .t = true}, true, false, false,
     check_alpha_t, randomized_bound, run_randomized},
    {"general", "Theorem 1.3", "O(k Delta^{2/k})",
     {.k = true}, true, false, false,
     check_k, general_bound, run_general},
    {"unknown-delta", "Remark 4.4", "(2a+1)(1+eps), Delta unknown",
     {.alpha = true, .eps = true}, false, false, false,
     check_alpha_eps, deterministic_bound, run_unknown_delta},
    {"unknown-alpha", "Remark 4.5", "(2a+1)(1+eps), alpha unknown",
     {.eps = true}, false, false, false,
     check_eps, unknown_alpha_bound, run_unknown_alpha},
    {"tree", "Observation A.1", "3 on forests, unit weights",
     {}, false, true, true,
     check_nothing, tree_bound, run_tree},
    {"greedy-threshold", "LW10 baseline", "O(a log Delta), unit weights",
     {.alpha = true}, false, false, true,
     check_alpha, greedy_threshold_bound, run_greedy_threshold},
    {"greedy-election", "LW10 baseline", "heuristic, no worst-case bound",
     {}, false, false, true,
     check_nothing, greedy_election_bound, run_greedy_election},
}};

// The self-healing variants, one per base solver, same schemas and
// bounds (the guarantee text applies to the pre-kill computation; the
// repaired set is judged by the surviving-subgraph oracle). A separate
// table so exhaustive all_solvers() sweeps in the clean/fault suites
// keep their cost; the lookup functions search both.
constexpr std::array<SolverInfo, 9> kRepairSolvers{{
    {"det+repair", "Theorem 1.1", "(2a+1)(1+eps), then post-kill repair",
     {.alpha = true, .eps = true}, false, false, false,
     check_alpha_eps, deterministic_bound, run_det_repair},
    {"unweighted+repair", "Theorem 3.1",
     "(2a+1)(1+eps), unit weights, then post-kill repair",
     {.alpha = true, .eps = true}, false, false, true,
     check_alpha_eps, deterministic_bound, run_unweighted_repair},
    {"randomized+repair", "Theorem 1.2",
     "a + O(a/t) in expectation, then post-kill repair",
     {.alpha = true, .t = true}, true, false, false,
     check_alpha_t, randomized_bound, run_randomized_repair},
    {"general+repair", "Theorem 1.3",
     "O(k Delta^{2/k}), then post-kill repair",
     {.k = true}, true, false, false,
     check_k, general_bound, run_general_repair},
    {"unknown-delta+repair", "Remark 4.4",
     "(2a+1)(1+eps), Delta unknown, then post-kill repair",
     {.alpha = true, .eps = true}, false, false, false,
     check_alpha_eps, deterministic_bound, run_unknown_delta_repair},
    {"unknown-alpha+repair", "Remark 4.5",
     "(2a+1)(1+eps), alpha unknown, then post-kill repair",
     {.eps = true}, false, false, false,
     check_eps, unknown_alpha_bound, run_unknown_alpha_repair},
    {"tree+repair", "Observation A.1",
     "3 on forests, unit weights, then post-kill repair",
     {}, false, true, true,
     check_nothing, tree_bound, run_tree_repair},
    {"greedy-threshold+repair", "LW10 baseline",
     "O(a log Delta), unit weights, then post-kill repair",
     {.alpha = true}, false, false, true,
     check_alpha, greedy_threshold_bound, run_greedy_threshold_repair},
    {"greedy-election+repair", "LW10 baseline",
     "heuristic, then post-kill repair",
     {}, false, false, true,
     check_nothing, greedy_election_bound, run_greedy_election_repair},
}};

}  // namespace

std::span<const SolverInfo> all_solvers() { return kSolvers; }

std::span<const SolverInfo> repair_solvers() { return kRepairSolvers; }

std::vector<std::string_view> solver_names() {
  std::vector<std::string_view> names;
  names.reserve(kSolvers.size());
  for (const auto& s : kSolvers) names.push_back(s.name);
  return names;
}

const SolverInfo* find_solver(std::string_view name) {
  for (const auto& s : kSolvers)
    if (s.name == name) return &s;
  for (const auto& s : kRepairSolvers)
    if (s.name == name) return &s;
  return nullptr;
}

const SolverInfo& solver(std::string_view name) {
  const SolverInfo* s = find_solver(name);
  if (s == nullptr) {
    std::ostringstream os;
    os << "unknown solver '" << name << "'; known:";
    for (const auto& info : kSolvers) os << " " << info.name;
    for (const auto& info : kRepairSolvers) os << " " << info.name;
    throw CheckError(os.str());
  }
  return *s;
}

MdsResult run_solver(std::string_view name, const WeightedGraph& wg,
                     const SolverParams& params, const CongestConfig& config) {
  const SolverInfo& info = solver(name);
  ARBODS_CHECK_MSG(params.threads >= -1,
                   "threads must be >= -1 (-1 = inherit, 0 = hardware), got "
                       << params.threads);
  ARBODS_CHECK_MSG(params.shards == -1 || params.shards >= 1,
                   "shards must be >= 1 or -1 (inherit), got "
                       << params.shards);
  info.check_params(params);
  if (info.forests_only) {
    ARBODS_CHECK_MSG(is_forest(wg.graph()),
                     "solver '" << name << "' requires a forest");
  }
  CongestConfig cfg = config;
  if (params.threads >= 0) cfg.threads = params.threads;
  if (params.shards >= 1) cfg.shards = params.shards;
  const std::unique_ptr<Network> net = fault::make_network(wg, cfg);
  return info.run_on(*net, params);
}

MdsResult run_solver_on(std::string_view name, Network& net,
                        const SolverParams& params) {
  const SolverInfo& info = solver(name);
  ARBODS_CHECK_MSG(params.threads == -1,
                   "run_solver_on: the worker-pool width is fixed by the "
                   "Network's config; leave params.threads at -1");
  ARBODS_CHECK_MSG(params.shards == -1,
                   "run_solver_on: the shard count is fixed by the "
                   "Network's config; leave params.shards at -1");
  info.check_params(params);
  if (info.forests_only) {
    ARBODS_CHECK_MSG(is_forest(net.graph()),
                     "solver '" << name << "' requires a forest");
  }
  return info.run_on(net, params);
}

}  // namespace arbods::harness
