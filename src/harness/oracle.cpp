#include "harness/oracle.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "baselines/exact.hpp"
#include "graph/verify.hpp"

namespace arbods::harness {

namespace {

std::string describe(const char* what, double got, double limit) {
  std::ostringstream os;
  os << what << " (got " << got << ", limit " << limit << ")";
  return os.str();
}

}  // namespace

bool solver_applicable(const SolverInfo& info, const CorpusInstance& inst) {
  if (info.forests_only && !inst.forest) return false;
  return true;
}

SolverParams params_for(const SolverInfo& info, const CorpusInstance& inst) {
  SolverParams p;
  if (info.schema.alpha) p.alpha = inst.alpha;
  return p;
}

OracleReport check_solver_result(const SolverInfo& info,
                                 const SolverParams& params,
                                 const CorpusInstance& inst,
                                 const MdsResult& res,
                                 const OracleOptions& opts) {
  OracleReport rep;
  auto fail = [&](std::string why) {
    rep.ok = false;
    rep.failure = std::move(why);
    return rep;
  };

  const Graph& g = inst.wg.graph();
  const std::vector<std::uint8_t>* alive = opts.alive;
  if (alive != nullptr && alive->size() != g.num_nodes())
    return fail("alive mask size does not match the instance");

  // 1. The set is well-formed and dominating. In surviving mode only
  // alive nodes need a dominator, and only alive members provide one.
  if (!is_valid_node_set(g, res.dominating_set))
    return fail("result set has duplicates or out-of-range ids");
  if (alive == nullptr) {
    if (!is_dominating_set(g, res.dominating_set)) {
      std::ostringstream os;
      os << undominated_nodes(g, res.dominating_set).size()
         << " nodes undominated";
      return fail(os.str());
    }
  } else {
    std::vector<std::uint8_t> covered(g.num_nodes(), 0);
    for (const NodeId s : res.dominating_set) {
      if (!(*alive)[s]) continue;  // a killed dominator covers nobody
      covered[s] = 1;
      for (const NodeId u : g.neighbors(s)) covered[u] = 1;
    }
    std::int64_t uncovered = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if ((*alive)[v] && !covered[v]) ++uncovered;
    if (uncovered > 0) {
      std::ostringstream os;
      os << uncovered << " surviving nodes undominated in the alive subgraph";
      return fail(os.str());
    }
  }

  // 2. The recorded weight matches the set.
  if (inst.wg.total_weight(res.dominating_set) != res.weight)
    return fail("recorded weight does not match the set");

  // 3. The dual certificate is feasible and its sum matches.
  if (!res.packing.empty()) {
    if (!is_feasible_packing(inst.wg, res.packing, opts.packing_tol))
      return fail("packing certificate infeasible");
    const double sum =
        std::accumulate(res.packing.begin(), res.packing.end(), 0.0);
    if (std::abs(sum - res.packing_lower_bound) >
        1e-6 * std::max(1.0, std::abs(sum)))
      return fail("packing_lower_bound does not match the packing sum");
  }

  // 4. CONGEST accounting: the simulator enforced the cap; re-assert it
  // here so a stats-reporting bug cannot mask a violation.
  const int cap = congest_message_cap(opts.config, inst.wg.num_nodes());
  if (res.stats.max_message_bits > cap)
    return fail(describe("message width over CONGEST cap",
                         res.stats.max_message_bits, cap));
  if (res.stats.messages > 0 && res.stats.max_message_bits <= 0)
    return fail("messages sent but max_message_bits not accounted");
  if (res.stats.total_bits <
      static_cast<std::int64_t>(res.stats.messages))
    return fail("total_bits below one bit per message");
  // In surviving mode a round-limit hit is data (the raw-vs-repair
  // comparison), not a failure — scenario JSON carries it as its own
  // column.
  if (alive == nullptr && res.stats.hit_round_limit)
    return fail("round budget exhausted");
  if (res.used_fallback) return fail("defensive fallback path ran");

  // 5'. Surviving mode: no analytic bound applies post-kill; report the
  // ratio of the alive members' weight against the exact optimum of the
  // induced alive subgraph when it is small enough.
  if (alive != nullptr) {
    NodeId alive_count = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if ((*alive)[v]) ++alive_count;
    if (opts.check_approx_bound && alive_count > 0 &&
        alive_count <= opts.exact_limit) {
      std::vector<NodeId> dense(g.num_nodes(), 0);
      NodeId next = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        if ((*alive)[v]) dense[v] = next++;
      std::vector<Edge> edges;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!(*alive)[v]) continue;
        for (const NodeId u : g.neighbors(v))
          if (u > v && (*alive)[u]) edges.push_back({dense[v], dense[u]});
      }
      std::vector<Weight> weights(alive_count, 0);
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        if ((*alive)[v]) weights[dense[v]] = inst.wg.weight(v);
      const WeightedGraph sub(Graph::from_edges(alive_count, edges),
                              std::move(weights));
      auto exact = baselines::exact_dominating_set(sub);
      if (!exact.has_value())
        return fail("exact solver exhausted its budget (alive subgraph)");
      Weight alive_weight = 0;
      for (const NodeId s : res.dominating_set)
        if ((*alive)[s]) alive_weight += inst.wg.weight(s);
      rep.opt = static_cast<double>(exact->weight);
      rep.ratio = rep.opt > 0
                      ? static_cast<double>(alive_weight) / rep.opt
                      : 1.0;
    }
    return rep;
  }

  // 5. Cost against the exact optimum (small instances only).
  if (opts.check_approx_bound && inst.wg.num_nodes() <= opts.exact_limit) {
    auto exact = baselines::exact_dominating_set(inst.wg);
    if (!exact.has_value()) return fail("exact solver exhausted its budget");
    rep.opt = static_cast<double>(exact->weight);
    rep.ratio = rep.opt > 0 ? static_cast<double>(res.weight) / rep.opt : 1.0;
    // The dual lower bound must not exceed OPT.
    if (res.packing_lower_bound > rep.opt * (1.0 + 1e-6))
      return fail(describe("packing lower bound exceeds OPT",
                           res.packing_lower_bound, rep.opt));
    const bool bound_applies =
        solver_applicable(info, inst) &&
        (!info.bound_needs_unit_weights || inst.unit_weights);
    if (bound_applies) {
      const double bound = info.approx_bound(inst.wg, params);
      if (static_cast<double>(res.weight) > bound * rep.opt * (1.0 + 1e-9))
        return fail(describe("weight over approx bound x OPT",
                             static_cast<double>(res.weight),
                             bound * rep.opt));
    }
  }
  return rep;
}

}  // namespace arbods::harness
