#include "harness/oracle.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "baselines/exact.hpp"
#include "graph/verify.hpp"

namespace arbods::harness {

namespace {

std::string describe(const char* what, double got, double limit) {
  std::ostringstream os;
  os << what << " (got " << got << ", limit " << limit << ")";
  return os.str();
}

}  // namespace

bool solver_applicable(const SolverInfo& info, const CorpusInstance& inst) {
  if (info.forests_only && !inst.forest) return false;
  return true;
}

SolverParams params_for(const SolverInfo& info, const CorpusInstance& inst) {
  SolverParams p;
  if (info.schema.alpha) p.alpha = inst.alpha;
  return p;
}

OracleReport check_solver_result(const SolverInfo& info,
                                 const SolverParams& params,
                                 const CorpusInstance& inst,
                                 const MdsResult& res,
                                 const OracleOptions& opts) {
  OracleReport rep;
  auto fail = [&](std::string why) {
    rep.ok = false;
    rep.failure = std::move(why);
    return rep;
  };

  const Graph& g = inst.wg.graph();

  // 1. The set is well-formed and dominating.
  if (!is_valid_node_set(g, res.dominating_set))
    return fail("result set has duplicates or out-of-range ids");
  if (!is_dominating_set(g, res.dominating_set)) {
    std::ostringstream os;
    os << undominated_nodes(g, res.dominating_set).size()
       << " nodes undominated";
    return fail(os.str());
  }

  // 2. The recorded weight matches the set.
  if (inst.wg.total_weight(res.dominating_set) != res.weight)
    return fail("recorded weight does not match the set");

  // 3. The dual certificate is feasible and its sum matches.
  if (!res.packing.empty()) {
    if (!is_feasible_packing(inst.wg, res.packing, opts.packing_tol))
      return fail("packing certificate infeasible");
    const double sum =
        std::accumulate(res.packing.begin(), res.packing.end(), 0.0);
    if (std::abs(sum - res.packing_lower_bound) >
        1e-6 * std::max(1.0, std::abs(sum)))
      return fail("packing_lower_bound does not match the packing sum");
  }

  // 4. CONGEST accounting: the simulator enforced the cap; re-assert it
  // here so a stats-reporting bug cannot mask a violation.
  const int cap = congest_message_cap(opts.config, inst.wg.num_nodes());
  if (res.stats.max_message_bits > cap)
    return fail(describe("message width over CONGEST cap",
                         res.stats.max_message_bits, cap));
  if (res.stats.messages > 0 && res.stats.max_message_bits <= 0)
    return fail("messages sent but max_message_bits not accounted");
  if (res.stats.total_bits <
      static_cast<std::int64_t>(res.stats.messages))
    return fail("total_bits below one bit per message");
  if (res.stats.hit_round_limit) return fail("round budget exhausted");
  if (res.used_fallback) return fail("defensive fallback path ran");

  // 5. Cost against the exact optimum (small instances only).
  if (opts.check_approx_bound && inst.wg.num_nodes() <= opts.exact_limit) {
    auto exact = baselines::exact_dominating_set(inst.wg);
    if (!exact.has_value()) return fail("exact solver exhausted its budget");
    rep.opt = static_cast<double>(exact->weight);
    rep.ratio = rep.opt > 0 ? static_cast<double>(res.weight) / rep.opt : 1.0;
    // The dual lower bound must not exceed OPT.
    if (res.packing_lower_bound > rep.opt * (1.0 + 1e-6))
      return fail(describe("packing lower bound exceeds OPT",
                           res.packing_lower_bound, rep.opt));
    const bool bound_applies =
        solver_applicable(info, inst) &&
        (!info.bound_needs_unit_weights || inst.unit_weights);
    if (bound_applies) {
      const double bound = info.approx_bound(inst.wg, params);
      if (static_cast<double>(res.weight) > bound * rep.opt * (1.0 + 1e-9))
        return fail(describe("weight over approx bound x OPT",
                             static_cast<double>(res.weight),
                             bound * rep.opt));
    }
  }
  return rep;
}

}  // namespace arbods::harness
