// Deterministic graph partitioning for the sharded simulator.
//
// A ShardPlan splits an n-node instance into K *contiguous* blocks of
// global node ids. Contiguity is load-bearing twice over:
//
//   * the node -> (shard, local-id) mapping is a subtraction
//     (local = v - node_begin[shard]), stable across runs and machines;
//   * in the global CSR the in-arcs of a contiguous node block are one
//     contiguous arc range, so each shard's lane arena is a slice of the
//     unsharded arena layout and a global lane id converts to a shard
//     lane id with one subtraction — no per-arc lookup tables.
//
// Two partitioners are provided. `partition_contiguous` balances blocks
// by arc count (each shard's arena and per-round work are proportional to
// its in-arcs, not its node count). `refine_boundaries` is the optional
// greedy edge-cut reducer: holding the block *order* fixed, it slides
// each boundary within the balance-slack window to the position crossed
// by the fewest edges — cut edges are exactly the bridge traffic, so
// fewer crossings means smaller relay buffers. Both are pure functions
// of (graph, K): the plan, and therefore every sharded run, is
// deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods::shard {

/// K contiguous blocks: shard s owns global node ids
/// [node_begin[s], node_begin[s + 1]). node_begin.front() == 0 and
/// node_begin.back() == n; blocks are non-empty whenever n >= K.
struct ShardPlan {
  std::vector<NodeId> node_begin;

  int num_shards() const { return static_cast<int>(node_begin.size()) - 1; }
  NodeId shard_begin(int s) const { return node_begin[s]; }
  NodeId shard_end(int s) const { return node_begin[s + 1]; }
  NodeId shard_size(int s) const { return shard_end(s) - shard_begin(s); }

  /// The shard owning global node v (O(log K)). Hot paths cache a dense
  /// per-node map instead (see ShardedNetwork).
  int shard_of(NodeId v) const;

  /// v's stable block-local id: v - node_begin[shard_of(v)].
  NodeId local_id(NodeId v) const;

  friend bool operator==(const ShardPlan&, const ShardPlan&) = default;
};

/// Directed arcs (u, v) with shard_of(u) != shard_of(v): the per-round
/// worst-case bridge record count.
std::int64_t cut_arcs(const Graph& g, const ShardPlan& plan);

/// Measured cost of the cut: sum over directed cut arcs of
/// `in_arc_volume[l] + 1`, where l is the receiver-side CSR arc index
/// (arc (u -> v) sits in v's contiguous in-arc range at u's neighbor
/// rank — the same indexing ShardedNetwork's traffic profile uses). The
/// +1 keeps zero-traffic arcs ordered by raw cut count, so an empty or
/// all-zero volume reduces exactly to cut_arcs. `in_arc_volume` must be
/// empty or cover all 2m arcs.
std::int64_t cut_volume(const Graph& g, const ShardPlan& plan,
                        std::span<const std::uint64_t> in_arc_volume);

/// Contiguous blocks balanced by arc count (node count for arc-free
/// graphs). `num_shards` is clamped to [1, max(1, n)].
ShardPlan partition_contiguous(const Graph& g, int num_shards);

/// Greedy edge-cut reducer: slides every boundary (left to right, others
/// fixed) to the minimum-crossing position whose weight prefix stays
/// within (1 +/- balance_slack) of the ideal arc share. A boundary moves
/// only when strictly fewer edges cross the new position (among equal
/// improvements the smallest position wins), so the result is
/// deterministic and never worse than the input plan.
ShardPlan refine_boundaries(const Graph& g, ShardPlan plan,
                            double balance_slack = 0.2);

/// Traffic-aware reducer: identical sweep, but every directed arc is
/// weighted by its *measured* volume (`in_arc_volume[l] + 1`, receiver-
/// side CSR indexing as in cut_volume) instead of counting 1 — so the
/// boundaries move to the positions the bridge actually pays least for,
/// per the run's own traffic, not the static structure. Empty volume =
/// the unweighted reducer, bit-for-bit (weights collapse to a constant
/// per arc, preserving every comparison and tie-break). Guarded like the
/// unweighted sweep: if per-boundary greed grows the measured union cut
/// (cut_volume), the input plan is returned unchanged.
ShardPlan refine_boundaries(const Graph& g, ShardPlan plan,
                            std::span<const std::uint64_t> in_arc_volume,
                            double balance_slack = 0.2);

/// The default pipeline: partition_contiguous, then refine_boundaries
/// when `refine` is set.
ShardPlan make_shard_plan(const Graph& g, int num_shards, bool refine = true);

}  // namespace arbods::shard
