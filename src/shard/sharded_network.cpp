#include "shard/sharded_network.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/shrink.hpp"

namespace arbods::shard {

using detail::maybe_shrink;

ShardedNetwork::ShardedNetwork(const WeightedGraph& wg, CongestConfig config)
    : ShardedNetwork(wg, config,
                     make_shard_plan(wg.graph(), config.shards)) {}

ShardedNetwork::ShardedNetwork(const WeightedGraph& wg, CongestConfig config,
                               ShardPlan plan)
    : Network(wg, config, FacadeInit{}), plan_(std::move(plan)) {
  workers_ = worker_stats_.size();
  bridge_slots_.assign(workers_, BridgeSlot{});
  build_members();
}

void ShardedNetwork::build_members() {
  const NodeId n = wg_->graph().num_nodes();
  ARBODS_CHECK_MSG(!plan_.node_begin.empty() && plan_.node_begin.front() == 0 &&
                       plan_.node_begin.back() == n &&
                       std::is_sorted(plan_.node_begin.begin(),
                                      plan_.node_begin.end()),
                   "shard plan does not cover [0, " << n << ")");
  const std::size_t k = static_cast<std::size_t>(plan_.num_shards());

  shards_.clear();
  node_shard_.assign(n, 0);
  shard_lane_begin_.assign(k + 1, 0);
  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    const NodeId begin = plan_.shard_begin(static_cast<int>(s));
    const NodeId end = plan_.shard_end(static_cast<int>(s));
    for (NodeId v = begin; v < end; ++v)
      node_shard_[v] = static_cast<std::uint32_t>(s);
    shard_lane_begin_[s] = offsets_[begin];
    shards_.emplace_back(new Network(
        *wg_, config_, SliceInit{begin, end, static_cast<int>(workers_)}));
  }
  shard_lane_begin_[k] = offsets_[n];
  relay_.assign(k * k * workers_, RelaySegment{});
  pair_bridged_words_.assign(k * k, 0);
  bridge_records_ = 0;
}

void ShardedNetwork::adopt_plan(ShardPlan plan) {
  plan_ = std::move(plan);
  // Fresh members start in the fresh-construction observable state
  // (empty lanes/timers, image-fresh RNG streams), so the facade does
  // too: run()/run_phase() pick up from here exactly as after
  // reset_for_reuse. The traffic profile survives — per-arc volume is a
  // property of the instance's traffic, not of any plan — so repeated
  // profile -> adopt cycles keep refining from live measurements.
  ShardedNetwork::build_members();
  active_list_.clear();
  active_dirty_ = false;
  rng_streams_fresh_ = true;
}

ShardedNetwork::~ShardedNetwork() = default;

Rng& ShardedNetwork::rng(NodeId v) {
  ARBODS_DCHECK(v < num_nodes());
  return shards_[node_shard_[v]]->rng(v);
}

InboxView ShardedNetwork::inbox(NodeId v) const {
  ARBODS_DCHECK(v < num_nodes());
  return shards_[node_shard_[v]]->inbox(v);
}

void ShardedNetwork::arm_at(NodeId v, std::int64_t round) {
  ARBODS_DCHECK(v < num_nodes());
  shards_[node_shard_[v]]->arm_at(v, round);
}

std::size_t ShardedNetwork::arena_words() const {
  std::size_t words = 0;
  for (const auto& sh : shards_) words += sh->arena_words();
  return words;
}

void ShardedNetwork::enable_traffic_profile() {
  lane_traffic_.assign(mirror_.size(), 0);
}

ShardPlan ShardedNetwork::measured_plan(double balance_slack) const {
  return refine_boundaries(graph(), plan_, lane_traffic_, balance_slack);
}

std::vector<std::int64_t> ShardedNetwork::boundary_bridged_bytes() const {
  const int k = num_shards();
  std::vector<std::int64_t> out(k > 0 ? static_cast<std::size_t>(k - 1) : 0,
                                0);
  for (int s = 0; s < k; ++s) {
    for (int d = 0; d < k; ++d) {
      const std::int64_t bytes = 8 * bridged_words(s, d);
      if (bytes == 0) continue;
      // A record from shard s to shard d crosses every boundary between
      // them: b in (min, max].
      for (int b = std::min(s, d) + 1; b <= std::max(s, d); ++b)
        out[static_cast<std::size_t>(b - 1)] += bytes;
    }
  }
  return out;
}

void ShardedNetwork::send(NodeId from, NodeId to, const Message& m) {
  const std::size_t arc = resolve_arc(from, to);
  const std::uint32_t dst = node_shard_[to];
  const std::uint32_t src = node_shard_[from];
  const std::uint32_t glane = mirror_[arc];
  const std::uint32_t lane =
      static_cast<std::uint32_t>(glane - shard_lane_begin_[dst]);
  const int bits = src == dst ? shards_[dst]->deposit_encoded(lane, m, from)
                              : relay_deposit(src, dst, lane, m, from);
  account_bits(bits);
  if (!lane_traffic_.empty())
    lane_traffic_[glane] += static_cast<std::uint64_t>(bits);
}

void ShardedNetwork::broadcast(NodeId from, const Message& m) {
  const auto nb = graph().neighbors(from);
  if (nb.empty()) return;
  // Encode once into the facade's worker scratch, cap-check before any
  // deposit, then route word copies per neighbor; the statistics for the
  // whole fan-out fold into one slot update — exactly the unsharded
  // broadcast, with the copy targets spread over members and bridge.
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, from, &bits);
  const std::size_t begin = offsets_[from];
  const std::uint32_t src = node_shard_[from];
  const bool profile = !lane_traffic_.empty();
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const std::uint32_t glane = mirror_[begin + i];
    const std::uint32_t dst = node_shard_[nb[i]];
    const std::uint32_t lane =
        static_cast<std::uint32_t>(glane - shard_lane_begin_[dst]);
    if (dst == src)
      shards_[dst]->deposit_words(w, lane, scratch_[w].data(), need);
    else
      relay_append(src, dst, w, lane, scratch_[w].data(), need);
    if (profile) lane_traffic_[glane] += static_cast<std::uint64_t>(bits);
  }
  const std::int64_t fanout = static_cast<std::int64_t>(nb.size());
  WorkerStats& slot = worker_stats_[w];
  slot.messages += fanout;
  slot.total_bits += bits * fanout;
  slot.max_message_bits = std::max(slot.max_message_bits, bits);
}

int ShardedNetwork::relay_deposit(std::uint32_t src, std::uint32_t dst,
                                  std::uint32_t lane, const Message& m,
                                  NodeId sender) {
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, sender, &bits);
  relay_append(src, dst, w, lane, scratch_[w].data(), need);
  return bits;
}

void ShardedNetwork::relay_append(std::uint32_t src, std::uint32_t dst,
                                  std::size_t worker, std::uint32_t lane,
                                  const std::uint64_t* words,
                                  std::size_t nwords) {
  RelaySegment& seg = segment(src, dst, worker);
  const std::size_t b = seg.words.size();
  seg.words.insert(seg.words.end(), words, words + nwords);
  seg.recs.push_back({lane, static_cast<std::uint32_t>(b),
                      static_cast<std::uint32_t>(b + nwords)});
}

void ShardedNetwork::deposit_wire(std::uint32_t glane,
                                  const std::uint64_t* words,
                                  std::size_t nwords) {
  // The fault decorator's delivery path: a global receiver-side arc
  // resolves to (owning member, member-local lane). The deposit runs on
  // the calling worker's slot of the member, exactly like an intra-shard
  // send, so the single-writer-per-lane contract is the caller's.
  const std::uint32_t dst = node_shard_[lane_receiver_[glane]];
  shards_[dst]->deposit_words(
      shards_[dst]->worker_slot(),
      static_cast<std::uint32_t>(glane - shard_lane_begin_[dst]), words,
      nwords);
}

void ShardedNetwork::flip_buffers() {
  // Merge the bridge into the destination members' out-arenas, then let
  // every member run its own flip (consumed-lane clear, buffer swap,
  // spill merge / lane regrow, timer carry) — so a bridged record is
  // delivered, spilled, or regrown by exactly the machinery a local one
  // uses. Destination members are independent at this point, so the
  // whole per-destination pipeline (merge + member flip) is dispatched
  // as one task per destination shard on the facade's worker pool; each
  // task drains its (src, worker) segments in that fixed order, so a cut
  // lane — whose records all sit in one segment in send order — keeps
  // the sender-ordered inbox contract at every pool width. Deposits go
  // through the executing worker's own slot (touched lists, spill
  // buffers), and the bridge tallies land in per-worker padded slots or
  // per-destination cells, folded serially below — nothing races.
  const std::size_t k = shards_.size();
  run_index_chunks(k, [&](std::size_t begin, std::size_t end) {
    const std::size_t wslot = worker_slot();
    std::int64_t records = 0;
    for (std::size_t dst = begin; dst < end; ++dst) {
      Network& member = *shards_[dst];
      for (std::size_t src = 0; src < k; ++src) {
        if (src == dst) continue;
        for (std::size_t w = 0; w < workers_; ++w) {
          RelaySegment& seg = segment(static_cast<std::uint32_t>(src),
                                      static_cast<std::uint32_t>(dst), w);
          if (seg.recs.empty()) continue;
          seg.words_highwater =
              std::max(seg.words_highwater, seg.words.size());
          seg.recs_highwater = std::max(seg.recs_highwater, seg.recs.size());
          for (const RelayRec& r : seg.recs)
            member.deposit_words(wslot, r.lane, seg.words.data() + r.begin,
                                 r.end - r.begin);
          records += static_cast<std::int64_t>(seg.recs.size());
          pair_bridged_words_[src * k + dst] +=
              static_cast<std::int64_t>(seg.words.size());
          seg.words.clear();
          seg.recs.clear();
        }
      }
      member.flip_buffers();
      member.round_ = round_ + 1;  // the caller (run_phase) advances next
    }
    bridge_slots_[wslot].records += records;
  });
  for (BridgeSlot& slot : bridge_slots_) {
    bridge_records_ += slot.records;
    slot.records = 0;
  }
  active_dirty_ = true;
}

void ShardedNetwork::retire_segment(std::size_t src, std::size_t dst,
                                    RelaySegment& seg) {
  if (seg.words.empty() && seg.recs.empty()) return;
  // Pending records were sent but never merged (the phase/run ended
  // before the next flip). Their size is part of the segment's realistic
  // steady-state need — fold it into the high-water marks (and the
  // bridged-volume matrix: they crossed the bridge at send time) before
  // discarding, or an end-of-run burst would be shrunk away and paid for
  // again next phase.
  seg.words_highwater = std::max(seg.words_highwater, seg.words.size());
  seg.recs_highwater = std::max(seg.recs_highwater, seg.recs.size());
  pair_bridged_words_[src * shards_.size() + dst] +=
      static_cast<std::int64_t>(seg.words.size());
  seg.words.clear();
  seg.recs.clear();
}

void ShardedNetwork::clear_all_lanes() {
  for (auto& sh : shards_) {
    sh->clear_all_lanes();
    sh->round_ = round_;  // phase/reuse reset: lockstep from round 0
  }
  const std::size_t k = shards_.size();
  for (std::size_t src = 0; src < k; ++src)
    for (std::size_t dst = 0; dst < k; ++dst)
      for (std::size_t w = 0; w < workers_; ++w)
        retire_segment(src, dst,
                       segment(static_cast<std::uint32_t>(src),
                               static_cast<std::uint32_t>(dst), w));
  active_list_.clear();
  active_dirty_ = false;
}

void ShardedNetwork::reset_for_reuse() {
  // The members' per-run scratch-shrink high-water marks reset with the
  // facade's, exactly as a standalone Network's do (their stats slots
  // are never written — every send accounts to the facade's).
  for (auto& sh : shards_) {
    sh->touched_highwater_ = 0;
    sh->armed_highwater_ = 0;
    sh->active_highwater_ = 0;
  }
  Network::reset_for_reuse();  // clears lanes (retiring pending segments)
  for (RelaySegment& seg : relay_) {
    seg.words_highwater = 0;
    seg.recs_highwater = 0;
  }
  std::fill(pair_bridged_words_.begin(), pair_bridged_words_.end(), 0);
  bridge_records_ = 0;
  std::fill(lane_traffic_.begin(), lane_traffic_.end(), 0);
}

void ShardedNetwork::reseed_node_rngs() {
  if (rng_streams_fresh_) return;
  for (auto& sh : shards_) {
    sh->rng_streams_fresh_ = false;  // the facade owns freshness tracking
    sh->reseed_node_rngs();
  }
  rng_streams_fresh_ = true;
}

void ShardedNetwork::rebuild_active_set() {
  // Shard blocks are ascending, and each member keeps its list in
  // ascending node order, so concatenation in shard order reproduces the
  // unsharded worklist exactly — same contents, same order.
  active_dirty_ = false;
  active_list_.clear();
  for (auto& sh : shards_) {
    if (sh->active_dirty_) sh->rebuild_active_set();
    active_list_.insert(active_list_.end(), sh->active_list_.begin(),
                        sh->active_list_.end());
  }
  active_highwater_ = std::max(active_highwater_, active_list_.size());
}

void ShardedNetwork::shrink_scratch() {
  for (auto& sh : shards_) sh->shrink_scratch();
  // Retire any end-of-run pending records (folding their sizes into the
  // marks), then shrink every segment against its OWN per-run peak: a
  // segment that stayed quiet this run releases its capacity even while
  // its busiest sibling keeps a large one.
  const std::size_t k = shards_.size();
  for (std::size_t src = 0; src < k; ++src)
    for (std::size_t dst = 0; dst < k; ++dst)
      for (std::size_t w = 0; w < workers_; ++w) {
        RelaySegment& seg = segment(static_cast<std::uint32_t>(src),
                                    static_cast<std::uint32_t>(dst), w);
        retire_segment(src, dst, seg);
        maybe_shrink(seg.words, seg.words_highwater);
        maybe_shrink(seg.recs, seg.recs_highwater);
      }
  maybe_shrink(active_list_, active_highwater_);
}

std::unique_ptr<Network> make_network(const WeightedGraph& wg,
                                      const CongestConfig& config) {
  const NodeId n = wg.graph().num_nodes();
  const int k = std::clamp(config.shards, 1,
                           std::max<int>(1, static_cast<int>(n)));
  if (k <= 1) return std::make_unique<Network>(wg, config);
  CongestConfig cfg = config;
  cfg.shards = k;
  return std::make_unique<ShardedNetwork>(wg, cfg);
}

}  // namespace arbods::shard
