#include "shard/sharded_network.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/shrink.hpp"

namespace arbods::shard {

using detail::maybe_shrink;

ShardedNetwork::ShardedNetwork(const WeightedGraph& wg, CongestConfig config)
    : ShardedNetwork(wg, config,
                     make_shard_plan(wg.graph(), config.shards)) {}

ShardedNetwork::ShardedNetwork(const WeightedGraph& wg, CongestConfig config,
                               ShardPlan plan)
    : Network(wg, config, FacadeInit{}), plan_(std::move(plan)) {
  const NodeId n = wg.graph().num_nodes();
  ARBODS_CHECK_MSG(!plan_.node_begin.empty() && plan_.node_begin.front() == 0 &&
                       plan_.node_begin.back() == n &&
                       std::is_sorted(plan_.node_begin.begin(),
                                      plan_.node_begin.end()),
                   "shard plan does not cover [0, " << n << ")");
  const std::size_t k = static_cast<std::size_t>(plan_.num_shards());
  workers_ = worker_stats_.size();

  node_shard_.resize(n);
  shard_lane_begin_.resize(k + 1);
  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    const NodeId begin = plan_.shard_begin(static_cast<int>(s));
    const NodeId end = plan_.shard_end(static_cast<int>(s));
    for (NodeId v = begin; v < end; ++v)
      node_shard_[v] = static_cast<std::uint32_t>(s);
    shard_lane_begin_[s] = offsets_[begin];
    shards_.emplace_back(new Network(
        wg, config, SliceInit{begin, end, static_cast<int>(workers_)}));
  }
  shard_lane_begin_[k] = offsets_[n];
  relay_.resize(k * k * workers_);
}

ShardedNetwork::~ShardedNetwork() = default;

Rng& ShardedNetwork::rng(NodeId v) {
  ARBODS_DCHECK(v < num_nodes());
  return shards_[node_shard_[v]]->rng(v);
}

InboxView ShardedNetwork::inbox(NodeId v) const {
  ARBODS_DCHECK(v < num_nodes());
  return shards_[node_shard_[v]]->inbox(v);
}

void ShardedNetwork::arm_at(NodeId v, std::int64_t round) {
  ARBODS_DCHECK(v < num_nodes());
  shards_[node_shard_[v]]->arm_at(v, round);
}

std::size_t ShardedNetwork::arena_words() const {
  std::size_t words = 0;
  for (const auto& sh : shards_) words += sh->arena_words();
  return words;
}

void ShardedNetwork::send(NodeId from, NodeId to, const Message& m) {
  const std::size_t arc = resolve_arc(from, to);
  const std::uint32_t dst = node_shard_[to];
  const std::uint32_t src = node_shard_[from];
  const std::uint32_t lane =
      static_cast<std::uint32_t>(mirror_[arc] - shard_lane_begin_[dst]);
  if (src == dst) {
    account_bits(shards_[dst]->deposit_encoded(lane, m, from));
  } else {
    account_bits(relay_deposit(src, dst, lane, m, from));
  }
}

void ShardedNetwork::broadcast(NodeId from, const Message& m) {
  const auto nb = graph().neighbors(from);
  if (nb.empty()) return;
  // Encode once into the facade's worker scratch, cap-check before any
  // deposit, then route word copies per neighbor; the statistics for the
  // whole fan-out fold into one slot update — exactly the unsharded
  // broadcast, with the copy targets spread over members and bridge.
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, from, &bits);
  const std::size_t begin = offsets_[from];
  const std::uint32_t src = node_shard_[from];
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const std::uint32_t dst = node_shard_[nb[i]];
    const std::uint32_t lane = static_cast<std::uint32_t>(
        mirror_[begin + i] - shard_lane_begin_[dst]);
    if (dst == src)
      shards_[dst]->deposit_words(w, lane, scratch_[w].data(), need);
    else
      relay_append(src, dst, w, lane, scratch_[w].data(), need);
  }
  const std::int64_t fanout = static_cast<std::int64_t>(nb.size());
  WorkerStats& slot = worker_stats_[w];
  slot.messages += fanout;
  slot.total_bits += bits * fanout;
  slot.max_message_bits = std::max(slot.max_message_bits, bits);
}

int ShardedNetwork::relay_deposit(std::uint32_t src, std::uint32_t dst,
                                  std::uint32_t lane, const Message& m,
                                  NodeId sender) {
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, sender, &bits);
  relay_append(src, dst, w, lane, scratch_[w].data(), need);
  return bits;
}

void ShardedNetwork::relay_append(std::uint32_t src, std::uint32_t dst,
                                  std::size_t worker, std::uint32_t lane,
                                  const std::uint64_t* words,
                                  std::size_t nwords) {
  RelaySegment& seg = segment(src, dst, worker);
  const std::size_t b = seg.words.size();
  seg.words.insert(seg.words.end(), words, words + nwords);
  seg.recs.push_back({lane, static_cast<std::uint32_t>(b),
                      static_cast<std::uint32_t>(b + nwords)});
}

void ShardedNetwork::flip_buffers() {
  // Merge the bridge into the destination members' out-arenas, then let
  // every member run its own flip (consumed-lane clear, buffer swap,
  // spill merge / lane regrow, timer carry) — so a bridged record is
  // delivered, spilled, or regrown by exactly the machinery a local one
  // uses. A cut lane's records all sit in one (src, worker) segment in
  // send order, so the fixed (dst, src, worker) merge order preserves
  // the sender-ordered inbox contract.
  const std::size_t k = shards_.size();
  for (std::size_t dst = 0; dst < k; ++dst) {
    Network& member = *shards_[dst];
    for (std::size_t src = 0; src < k; ++src) {
      if (src == dst) continue;
      for (std::size_t w = 0; w < workers_; ++w) {
        RelaySegment& seg = segment(static_cast<std::uint32_t>(src),
                                    static_cast<std::uint32_t>(dst), w);
        if (seg.recs.empty()) continue;
        relay_words_highwater_ =
            std::max(relay_words_highwater_, seg.words.size());
        relay_recs_highwater_ =
            std::max(relay_recs_highwater_, seg.recs.size());
        for (const RelayRec& r : seg.recs)
          member.deposit_words(0, r.lane, seg.words.data() + r.begin,
                               r.end - r.begin);
        bridge_records_ += static_cast<std::int64_t>(seg.recs.size());
        seg.words.clear();
        seg.recs.clear();
      }
    }
  }
  for (auto& sh : shards_) {
    sh->flip_buffers();
    sh->round_ = round_ + 1;  // the caller (run_phase) advances next
  }
  active_dirty_ = true;
}

void ShardedNetwork::clear_all_lanes() {
  for (auto& sh : shards_) {
    sh->clear_all_lanes();
    sh->round_ = round_;  // phase/reuse reset: lockstep from round 0
  }
  for (RelaySegment& seg : relay_) {
    seg.words.clear();
    seg.recs.clear();
  }
  active_list_.clear();
  active_dirty_ = false;
}

void ShardedNetwork::reset_for_reuse() {
  // The members' per-run scratch-shrink high-water marks reset with the
  // facade's, exactly as a standalone Network's do (their stats slots
  // are never written — every send accounts to the facade's).
  for (auto& sh : shards_) {
    sh->touched_highwater_ = 0;
    sh->armed_highwater_ = 0;
    sh->active_highwater_ = 0;
  }
  relay_words_highwater_ = 0;
  relay_recs_highwater_ = 0;
  bridge_records_ = 0;
  Network::reset_for_reuse();
}

void ShardedNetwork::reseed_node_rngs() {
  if (rng_streams_fresh_) return;
  for (auto& sh : shards_) {
    sh->rng_streams_fresh_ = false;  // the facade owns freshness tracking
    sh->reseed_node_rngs();
  }
  rng_streams_fresh_ = true;
}

void ShardedNetwork::rebuild_active_set() {
  // Shard blocks are ascending, and each member keeps its list in
  // ascending node order, so concatenation in shard order reproduces the
  // unsharded worklist exactly — same contents, same order.
  active_dirty_ = false;
  active_list_.clear();
  for (auto& sh : shards_) {
    if (sh->active_dirty_) sh->rebuild_active_set();
    active_list_.insert(active_list_.end(), sh->active_list_.begin(),
                        sh->active_list_.end());
  }
  active_highwater_ = std::max(active_highwater_, active_list_.size());
}

void ShardedNetwork::shrink_scratch() {
  for (auto& sh : shards_) sh->shrink_scratch();
  for (RelaySegment& seg : relay_) {
    maybe_shrink(seg.words, relay_words_highwater_);
    maybe_shrink(seg.recs, relay_recs_highwater_);
  }
  maybe_shrink(active_list_, active_highwater_);
}

std::unique_ptr<Network> make_network(const WeightedGraph& wg,
                                      const CongestConfig& config) {
  const NodeId n = wg.graph().num_nodes();
  const int k = std::clamp(config.shards, 1,
                           std::max<int>(1, static_cast<int>(n)));
  if (k <= 1) return std::make_unique<Network>(wg, config);
  CongestConfig cfg = config;
  cfg.shards = k;
  return std::make_unique<ShardedNetwork>(wg, cfg);
}

}  // namespace arbods::shard
