#include "shard/sharded_network.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/shrink.hpp"
#include "congest/affinity.hpp"

namespace arbods::shard {

using detail::maybe_shrink;

ShardedNetwork::ShardedNetwork(const WeightedGraph& wg, CongestConfig config)
    : ShardedNetwork(wg, config,
                     make_shard_plan(wg.graph(), config.shards)) {}

ShardedNetwork::ShardedNetwork(const WeightedGraph& wg, CongestConfig config,
                               ShardPlan plan)
    : Network(wg, config, FacadeInit{}), plan_(std::move(plan)) {
  workers_ = worker_stats_.size();
  bridge_slots_.assign(workers_, BridgeSlot{});
  build_members();
}

void ShardedNetwork::build_members() {
  const NodeId n = wg_->graph().num_nodes();
  ARBODS_CHECK_MSG(!plan_.node_begin.empty() && plan_.node_begin.front() == 0 &&
                       plan_.node_begin.back() == n &&
                       std::is_sorted(plan_.node_begin.begin(),
                                      plan_.node_begin.end()),
                   "shard plan does not cover [0, " << n << ")");
  const std::size_t k = static_cast<std::size_t>(plan_.num_shards());

  // Shard-affine mode: dispatch tables plus worker-group first touch.
  // Only worth the machinery when there is a real pool to place work on.
  const bool affine = config_.pin_threads && workers_ > 1;

  shards_.clear();
  node_shard_.assign(n, 0);
  shard_lane_begin_.assign(k + 1, 0);
  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    const NodeId begin = plan_.shard_begin(static_cast<int>(s));
    const NodeId end = plan_.shard_end(static_cast<int>(s));
    for (NodeId v = begin; v < end; ++v)
      node_shard_[v] = static_cast<std::uint32_t>(s);
    shard_lane_begin_[s] = offsets_[begin];
    shards_.emplace_back(new Network(
        *wg_, config_,
        SliceInit{begin, end, static_cast<int>(workers_), affine}));
  }
  shard_lane_begin_[k] = offsets_[n];
  relay_.assign(k * k * workers_, RelaySegment{});
  pair_bridged_words_.assign(k * k, 0);
  bridge_records_ = 0;

  if (affine) {
    build_affine_tables();
    first_touch_members();
  } else {
    affine_node_bounds_.clear();
    affine_flip_bounds_.clear();
    shard_leader_.clear();
  }
}

void ShardedNetwork::build_affine_tables() {
  const NodeId n = wg_->graph().num_nodes();
  const std::size_t k = shards_.size();
  const std::size_t W = workers_;
  const std::size_t total_arcs = offsets_[n];

  // Group starts: worker gw[s] is the first worker of shard s's group.
  // W >= K: arc-proportional starts, clamped so every shard keeps at
  // least one worker. W < K: workers own contiguous runs of whole shards
  // (gw snaps each worker boundary to the next shard boundary), so a
  // shard's arenas are still touched by exactly one worker.
  std::vector<std::size_t> gw(k + 1, 0);
  gw[k] = W;
  if (W >= k) {
    for (std::size_t s = 1; s < k; ++s) {
      const std::size_t prefix = offsets_[plan_.shard_begin(static_cast<int>(s))];
      std::size_t ideal = total_arcs > 0 ? W * prefix / total_arcs : W * s / k;
      ideal = std::max(ideal, gw[s - 1] + 1);
      ideal = std::min(ideal, W - (k - s));
      gw[s] = ideal;
    }
  } else {
    // Invert: worker j starts at the shard whose arc prefix first
    // reaches j's share; monotone and start-anchored so every worker's
    // run is well-formed (possibly empty).
    std::vector<std::size_t> worker_first_shard(W + 1, k);
    worker_first_shard[0] = 0;
    for (std::size_t j = 1; j < W; ++j) {
      const std::size_t target = total_arcs > 0 ? total_arcs * j / W
                                                : k * j / W;
      std::size_t s = worker_first_shard[j - 1];
      while (s < k &&
             (total_arcs > 0
                  ? offsets_[plan_.shard_begin(static_cast<int>(s))] < target
                  : s < target))
        ++s;
      worker_first_shard[j] = s;
    }
    for (std::size_t s = 1; s < k; ++s) {
      // gw[s] = the worker owning shard s (last j with first_shard <= s).
      std::size_t j = gw[s - 1];
      while (j + 1 < W && worker_first_shard[j + 1] <= s) ++j;
      gw[s] = j;
    }
  }

  shard_leader_.assign(k, 0);
  for (std::size_t s = 0; s < k; ++s)
    shard_leader_[s] = static_cast<int>(gw[s]);

  // Flip bounds: destination shard s's merge+flip task runs on its group
  // leader gw[s]. bounds[w] = #shards with leader < w — each shard lands
  // in exactly worker gw[s]'s chunk.
  affine_flip_bounds_.assign(W + 1, 0);
  for (std::size_t w = 1; w <= W; ++w) {
    std::size_t cnt = 0;
    while (cnt < k && gw[cnt] < w) ++cnt;
    affine_flip_bounds_[w] = cnt;
  }

  // Node bounds: within shard s, its group's workers split the shard's
  // nodes by arc share (binary search over the global CSR offsets); at
  // group boundaries the bound is the shard boundary itself, so each
  // worker's range never crosses into another group's shard.
  affine_node_bounds_.assign(W + 1, 0);
  affine_node_bounds_[W] = n;
  for (std::size_t s = 0; s < k; ++s) {
    const NodeId sbegin = plan_.shard_begin(static_cast<int>(s));
    const NodeId send = plan_.shard_end(static_cast<int>(s));
    const std::size_t a0 = offsets_[sbegin];
    const std::size_t a1 = offsets_[send];
    const std::size_t g = gw[s + 1] > gw[s] ? gw[s + 1] - gw[s] : 0;
    if (g == 0) continue;  // W < K: this shard shares its owner's range
    for (std::size_t t = 0; t < g; ++t) {
      const std::size_t w = gw[s] + t;
      if (t == 0) {
        affine_node_bounds_[w] = sbegin;
        continue;
      }
      const std::size_t target = a0 + (a1 - a0) * t / g;
      const auto it = std::lower_bound(offsets_.begin() + sbegin,
                                       offsets_.begin() + send, target);
      affine_node_bounds_[w] = std::max<std::size_t>(
          static_cast<std::size_t>(it - offsets_.begin()),
          affine_node_bounds_[w - 1]);
    }
  }
  // W < K: a worker owning several shards has only its first shard's
  // begin written; carry bounds forward so unwritten slots inherit the
  // run structure (bounds stay non-decreasing, covering [0, n)).
  for (std::size_t w = 1; w < W; ++w)
    affine_node_bounds_[w] =
        std::max(affine_node_bounds_[w], affine_node_bounds_[w - 1]);
}

void ShardedNetwork::first_touch_members() {
  // Deferred member initialization (SliceInit::defer_first_touch), run
  // as one affine dispatch so every arena length word, calendar ring,
  // and scratch buffer is first written — and its pages physically
  // placed — by the worker group that owns it in steady state. Each
  // worker touches only its own node range's lanes and its own slot of
  // every member, so nothing races.
  const NodeId n = wg_->graph().num_nodes();
  run_index_chunks(
      n,
      [&](std::size_t begin, std::size_t end) {
        const std::size_t w = worker_slot();
        for (auto& sh : shards_) sh->first_touch_worker_state(w);
        while (begin < end) {
          Network& member = *shards_[node_shard_[begin]];
          const std::size_t stop = std::min<std::size_t>(
              end, member.node_begin_ + member.active_mark_.size());
          member.first_touch_lane_range(
              member.offsets_[begin - member.node_begin_],
              member.offsets_[stop - member.node_begin_]);
          begin = stop;
        }
      },
      ChunkDomain::kNodes);

  // Optional explicit NUMA advice on top of first touch (no-op unless
  // built with ARBODS_USE_NUMA): keep each member's arenas on the node
  // of its group leader's CPU.
  const int cpus = affinity_cpu_count();
  if (cpus > 0) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Network& member = *shards_[s];
      const int cpu = shard_leader_[s] % cpus;
      bind_memory_to_cpu(member.arena_a_.get(),
                         member.arena_words_ * sizeof(std::uint64_t), cpu);
      bind_memory_to_cpu(member.arena_b_.get(),
                         member.arena_words_ * sizeof(std::uint64_t), cpu);
    }
  }
}

bool ShardedNetwork::affine_chunk_bounds(ChunkDomain domain, std::size_t count,
                                         std::vector<std::size_t>& bounds) {
  if (affine_node_bounds_.empty()) return false;
  const std::size_t W = workers_;
  switch (domain) {
    case ChunkDomain::kNodes:
      if (count != static_cast<std::size_t>(num_nodes())) return false;
      bounds.assign(affine_node_bounds_.begin(), affine_node_bounds_.end());
      return true;
    case ChunkDomain::kActive: {
      // Project the node bounds onto the (ascending) active list: each
      // worker visits exactly the active nodes inside its node range.
      bounds.resize(W + 1);
      bounds[0] = 0;
      bounds[W] = count;
      for (std::size_t w = 1; w < W; ++w) {
        const NodeId cut = static_cast<NodeId>(affine_node_bounds_[w]);
        bounds[w] = static_cast<std::size_t>(
            std::lower_bound(active_list_.begin(),
                             active_list_.begin() +
                                 static_cast<std::ptrdiff_t>(count),
                             cut) -
            active_list_.begin());
      }
      return true;
    }
    case ChunkDomain::kShards:
      if (count != shards_.size()) return false;
      bounds.assign(affine_flip_bounds_.begin(), affine_flip_bounds_.end());
      return true;
  }
  return false;
}

void ShardedNetwork::adopt_plan(ShardPlan plan) {
  plan_ = std::move(plan);
  // Fresh members start in the fresh-construction observable state
  // (empty lanes/timers, image-fresh RNG streams), so the facade does
  // too: run()/run_phase() pick up from here exactly as after
  // reset_for_reuse. The traffic profile survives — per-arc volume is a
  // property of the instance's traffic, not of any plan — so repeated
  // profile -> adopt cycles keep refining from live measurements.
  {
    // The whole rebuild as one driver-thread span; replan adoptions are
    // rare (phase boundaries) but expensive, so they should be visible
    // on the trace timeline.
    obs::ScopedSpan span(tracer_, 0, "replan:adopt", 0,
                         static_cast<std::int64_t>(replans_ + 1));
    ShardedNetwork::build_members();
  }
  active_list_.clear();
  active_dirty_ = false;
  rng_streams_fresh_ = true;
  ++replans_;  // per-run tally (reset_for_reuse zeroes it); see replans()
}

ShardedNetwork::~ShardedNetwork() = default;

Rng& ShardedNetwork::rng(NodeId v) {
  ARBODS_DCHECK(v < num_nodes());
  return shards_[node_shard_[v]]->rng(v);
}

InboxView ShardedNetwork::inbox(NodeId v) const {
  ARBODS_DCHECK(v < num_nodes());
  return shards_[node_shard_[v]]->inbox(v);
}

void ShardedNetwork::arm_at(NodeId v, std::int64_t round) {
  ARBODS_DCHECK(v < num_nodes());
  shards_[node_shard_[v]]->arm_at(v, round);
}

std::size_t ShardedNetwork::arena_words() const {
  std::size_t words = 0;
  for (const auto& sh : shards_) words += sh->arena_words();
  return words;
}

std::int64_t ShardedNetwork::pending_spill_records() const {
  // The members' spill buffers hold the overflow (the facade owns none);
  // bridged records still parked in relay segments count too — both are
  // "sent but not yet merged" from the flight recorder's point of view.
  std::int64_t total = 0;
  for (const auto& sh : shards_) total += sh->pending_spill_records();
  for (const RelaySegment& seg : relay_)
    total += static_cast<std::int64_t>(seg.recs.size());
  return total;
}

void ShardedNetwork::enable_traffic_profile() {
  lane_traffic_.assign(mirror_.size(), 0);
}

ShardPlan ShardedNetwork::measured_plan(double balance_slack) const {
  return refine_boundaries(graph(), plan_, lane_traffic_, balance_slack);
}

std::vector<std::int64_t> ShardedNetwork::boundary_bridged_bytes() const {
  const int k = num_shards();
  std::vector<std::int64_t> out(k > 0 ? static_cast<std::size_t>(k - 1) : 0,
                                0);
  for (int s = 0; s < k; ++s) {
    for (int d = 0; d < k; ++d) {
      const std::int64_t bytes = 8 * bridged_words(s, d);
      if (bytes == 0) continue;
      // A record from shard s to shard d crosses every boundary between
      // them: b in (min, max].
      for (int b = std::min(s, d) + 1; b <= std::max(s, d); ++b)
        out[static_cast<std::size_t>(b - 1)] += bytes;
    }
  }
  return out;
}

void ShardedNetwork::send(NodeId from, NodeId to, const Message& m) {
  const std::size_t arc = resolve_arc(from, to);
  const std::uint32_t dst = node_shard_[to];
  const std::uint32_t src = node_shard_[from];
  const std::uint32_t glane = mirror_[arc];
  const std::uint32_t lane =
      static_cast<std::uint32_t>(glane - shard_lane_begin_[dst]);
  const int bits = src == dst ? shards_[dst]->deposit_encoded(lane, m, from)
                              : relay_deposit(src, dst, lane, m, from);
  account_bits(bits);
  if (!lane_traffic_.empty())
    lane_traffic_[glane] += static_cast<std::uint64_t>(bits);
}

void ShardedNetwork::broadcast(NodeId from, const Message& m) {
  const auto nb = graph().neighbors(from);
  if (nb.empty()) return;
  // Encode once into the facade's worker scratch, cap-check before any
  // deposit, then route word copies per neighbor; the statistics for the
  // whole fan-out fold into one slot update — exactly the unsharded
  // broadcast, with the copy targets spread over members and bridge.
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, from, &bits);
  const std::size_t begin = offsets_[from];
  const std::uint32_t src = node_shard_[from];
  const bool profile = !lane_traffic_.empty();
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const std::uint32_t glane = mirror_[begin + i];
    const std::uint32_t dst = node_shard_[nb[i]];
    const std::uint32_t lane =
        static_cast<std::uint32_t>(glane - shard_lane_begin_[dst]);
    if (dst == src)
      shards_[dst]->deposit_words(w, lane, scratch_[w].data(), need);
    else
      relay_append(src, dst, w, lane, scratch_[w].data(), need);
    if (profile) lane_traffic_[glane] += static_cast<std::uint64_t>(bits);
  }
  const std::int64_t fanout = static_cast<std::int64_t>(nb.size());
  WorkerStats& slot = worker_stats_[w];
  slot.messages += fanout;
  slot.total_bits += bits * fanout;
  slot.max_message_bits = std::max(slot.max_message_bits, bits);
}

int ShardedNetwork::relay_deposit(std::uint32_t src, std::uint32_t dst,
                                  std::uint32_t lane, const Message& m,
                                  NodeId sender) {
  const std::size_t w = worker_slot();
  int bits = 0;
  const std::size_t need = encode_into_scratch(w, m, sender, &bits);
  relay_append(src, dst, w, lane, scratch_[w].data(), need);
  return bits;
}

void ShardedNetwork::relay_append(std::uint32_t src, std::uint32_t dst,
                                  std::size_t worker, std::uint32_t lane,
                                  const std::uint64_t* words,
                                  std::size_t nwords) {
  RelaySegment& seg = segment(src, dst, worker);
  const std::size_t b = seg.words.size();
  seg.words.insert(seg.words.end(), words, words + nwords);
  seg.recs.push_back({lane, static_cast<std::uint32_t>(b),
                      static_cast<std::uint32_t>(b + nwords)});
}

void ShardedNetwork::deposit_wire(std::uint32_t glane,
                                  const std::uint64_t* words,
                                  std::size_t nwords) {
  // The fault decorator's delivery path: a global receiver-side arc
  // resolves to (owning member, member-local lane). The deposit runs on
  // the calling worker's slot of the member, exactly like an intra-shard
  // send, so the single-writer-per-lane contract is the caller's.
  const std::uint32_t dst = node_shard_[lane_receiver_[glane]];
  shards_[dst]->deposit_words(
      shards_[dst]->worker_slot(),
      static_cast<std::uint32_t>(glane - shard_lane_begin_[dst]), words,
      nwords);
}

void ShardedNetwork::flip_buffers() {
  // Merge the bridge into the destination members' out-arenas, then let
  // every member run its own flip (consumed-lane clear, buffer swap,
  // spill merge / lane regrow, timer carry) — so a bridged record is
  // delivered, spilled, or regrown by exactly the machinery a local one
  // uses. Destination members are independent at this point, so the
  // whole per-destination pipeline (merge + member flip) is dispatched
  // as one task per destination shard on the facade's worker pool; each
  // task drains its (src, worker) segments in that fixed order, so a cut
  // lane — whose records all sit in one segment in send order — keeps
  // the sender-ordered inbox contract at every pool width. Deposits go
  // through the executing worker's own slot (touched lists, spill
  // buffers), and the bridge tallies land in per-worker padded slots or
  // per-destination cells, folded serially below — nothing races.
  const std::size_t k = shards_.size();
  run_index_chunks(
      k,
      [&](std::size_t begin, std::size_t end) {
        const std::size_t wslot = worker_slot();
        std::int64_t records = 0;
        for (std::size_t dst = begin; dst < end; ++dst) {
          Network& member = *shards_[dst];
          std::int64_t dst_records = 0;
          const std::int64_t merge_t0 = obs::monotonic_ns();
          for (std::size_t src = 0; src < k; ++src) {
            if (src == dst) continue;
            for (std::size_t w = 0; w < workers_; ++w) {
              RelaySegment& seg = segment(static_cast<std::uint32_t>(src),
                                          static_cast<std::uint32_t>(dst), w);
              if (seg.recs.empty()) continue;
              seg.words_highwater =
                  std::max(seg.words_highwater, seg.words.size());
              seg.recs_highwater =
                  std::max(seg.recs_highwater, seg.recs.size());
              for (const RelayRec& r : seg.recs)
                member.deposit_words(wslot, r.lane,
                                     seg.words.data() + r.begin,
                                     r.end - r.begin);
              dst_records += static_cast<std::int64_t>(seg.recs.size());
              pair_bridged_words_[src * k + dst] +=
                  static_cast<std::int64_t>(seg.words.size());
              seg.words.clear();
              seg.recs.clear();
            }
          }
          const std::int64_t merge_t1 = obs::monotonic_ns();
          bridge_slots_[wslot].merge_ns += merge_t1 - merge_t0;
          records += dst_records;
          if (tracer_ != nullptr)
            tracer_->record(wslot, "bridge:merge", merge_t0, merge_t1,
                            static_cast<int>(dst) + 1, dst_records);
          {
            obs::ScopedSpan span(tracer_, wslot, "shard:flip",
                                 static_cast<int>(dst) + 1);
            member.flip_buffers();
          }
          member.round_ = round_ + 1;  // run_phase advances the facade next
        }
        bridge_slots_[wslot].records += records;
      },
      ChunkDomain::kShards);
  for (BridgeSlot& slot : bridge_slots_) {
    bridge_records_ += slot.records;
    stats_.timing.merge_seconds += static_cast<double>(slot.merge_ns) * 1e-9;
    slot.records = 0;
    slot.merge_ns = 0;
  }
  active_dirty_ = true;
}

void ShardedNetwork::retire_segment(std::size_t src, std::size_t dst,
                                    RelaySegment& seg) {
  if (seg.words.empty() && seg.recs.empty()) return;
  // Pending records were sent but never merged (the phase/run ended
  // before the next flip). Their size is part of the segment's realistic
  // steady-state need — fold it into the high-water marks (and the
  // bridged-volume matrix: they crossed the bridge at send time) before
  // discarding, or an end-of-run burst would be shrunk away and paid for
  // again next phase.
  seg.words_highwater = std::max(seg.words_highwater, seg.words.size());
  seg.recs_highwater = std::max(seg.recs_highwater, seg.recs.size());
  pair_bridged_words_[src * shards_.size() + dst] +=
      static_cast<std::int64_t>(seg.words.size());
  seg.words.clear();
  seg.recs.clear();
}

void ShardedNetwork::clear_all_lanes() {
  for (auto& sh : shards_) {
    sh->clear_all_lanes();
    sh->round_ = round_;  // phase/reuse reset: lockstep from round 0
  }
  const std::size_t k = shards_.size();
  for (std::size_t src = 0; src < k; ++src)
    for (std::size_t dst = 0; dst < k; ++dst)
      for (std::size_t w = 0; w < workers_; ++w)
        retire_segment(src, dst,
                       segment(static_cast<std::uint32_t>(src),
                               static_cast<std::uint32_t>(dst), w));
  active_list_.clear();
  active_dirty_ = false;
}

void ShardedNetwork::reset_for_reuse() {
  // The members' per-run scratch-shrink high-water marks reset with the
  // facade's, exactly as a standalone Network's do (their stats slots
  // are never written — every send accounts to the facade's).
  for (auto& sh : shards_) {
    sh->touched_highwater_ = 0;
    sh->armed_highwater_ = 0;
    sh->active_highwater_ = 0;
  }
  Network::reset_for_reuse();  // clears lanes (retiring pending segments)
  for (RelaySegment& seg : relay_) {
    seg.words_highwater = 0;
    seg.recs_highwater = 0;
  }
  std::fill(pair_bridged_words_.begin(), pair_bridged_words_.end(), 0);
  bridge_records_ = 0;
  std::fill(lane_traffic_.begin(), lane_traffic_.end(), 0);
  replans_ = 0;
}

void ShardedNetwork::reseed_node_rngs() {
  if (rng_streams_fresh_) return;
  for (auto& sh : shards_) {
    sh->rng_streams_fresh_ = false;  // the facade owns freshness tracking
    sh->reseed_node_rngs();
  }
  rng_streams_fresh_ = true;
}

void ShardedNetwork::rebuild_active_set() {
  // Shard blocks are ascending, and each member keeps its list in
  // ascending node order, so concatenation in shard order reproduces the
  // unsharded worklist exactly — same contents, same order.
  active_dirty_ = false;
  active_list_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Network* sh = shards_[s].get();
    if (sh->active_dirty_) {
      // Members never hold a tracer (the facade owns the stack's recorder),
      // so attribute the member rebuild to its shard row from here.
      const std::int64_t t0 = tracer_ != nullptr ? obs::monotonic_ns() : 0;
      sh->rebuild_active_set();
      if (tracer_ != nullptr)
        tracer_->record(0, "active:rebuild", t0, obs::monotonic_ns(),
                        static_cast<int>(s) + 1,
                        static_cast<std::int64_t>(sh->active_list_.size()));
    }
    active_list_.insert(active_list_.end(), sh->active_list_.begin(),
                        sh->active_list_.end());
  }
  active_highwater_ = std::max(active_highwater_, active_list_.size());
}

void ShardedNetwork::shrink_scratch() {
  for (auto& sh : shards_) sh->shrink_scratch();
  // Retire any end-of-run pending records (folding their sizes into the
  // marks), then shrink every segment against its OWN per-run peak: a
  // segment that stayed quiet this run releases its capacity even while
  // its busiest sibling keeps a large one.
  const std::size_t k = shards_.size();
  for (std::size_t src = 0; src < k; ++src)
    for (std::size_t dst = 0; dst < k; ++dst)
      for (std::size_t w = 0; w < workers_; ++w) {
        RelaySegment& seg = segment(static_cast<std::uint32_t>(src),
                                    static_cast<std::uint32_t>(dst), w);
        retire_segment(src, dst, seg);
        maybe_shrink(seg.words, seg.words_highwater);
        maybe_shrink(seg.recs, seg.recs_highwater);
      }
  maybe_shrink(active_list_, active_highwater_);
}

std::unique_ptr<Network> make_network(const WeightedGraph& wg,
                                      const CongestConfig& config) {
  const NodeId n = wg.graph().num_nodes();
  const int k = std::clamp(config.shards, 1,
                           std::max<int>(1, static_cast<int>(n)));
  if (k <= 1) return std::make_unique<Network>(wg, config);
  CongestConfig cfg = config;
  cfg.shards = k;
  return std::make_unique<ShardedNetwork>(wg, cfg);
}

}  // namespace arbods::shard
