// ShardedNetwork: one CONGEST instance as K per-shard Networks behind
// the ordinary Network driving surface.
//
// The facade derives from Network and overrides its virtual seams, so
// ProtocolRunner, every Phase, the solver registry, and the scenario
// batch runner drive a sharded instance completely unmodified. Each
// shard member is a real Network built over a contiguous node block of
// the ShardPlan: it owns the lane arenas for the in-arcs of its block,
// that block's RNG streams (seeded by *global* node id), timer wheels,
// and active-set state. The facade owns the worker pool and the global
// out-arc -> lane mirror; per-node loops chunk over global ids exactly
// as the unsharded simulator does, so each shard's block is processed by
// a contiguous slice of the workers.
//
// Message routing:
//   * intra-shard send: the facade resolves the receiver-side lane
//     (global lane - shard lane base = the member's local lane) and
//     deposits straight into the owning member's out-arena — the same
//     single-writer-per-lane path as the unsharded simulator;
//   * cut-edge send: the wire record is appended to the per-
//     (src-shard, dst-shard) relay buffer (per-worker segments, so the
//     send half-round stays lock-free). At the flip the facade merges
//     every relay record into its destination member's lanes *before*
//     flipping the members, so bridged records ride the members' spill /
//     regrow machinery and are delivered next round exactly like local
//     ones. A cut lane's records all come from its single remote writer
//     through one relay segment, so sender order within the lane — and
//     therefore the sender-ordered inbox scan — is preserved.
//
// The flip itself is PARALLEL: destination members are independent once
// the send half-round has closed, so the facade dispatches one task per
// destination shard on its worker pool (the same static chunk assignment
// as for_nodes). Each task drains its shard's (src, worker) relay
// segments in that fixed order — preserving the sender-ordered inbox
// contract exactly as the old serial drain did — deposits through the
// executing worker's own slot, then runs the member's flip (lane clear,
// buffer swap, spill merge/regrow, timer carry) before moving on. All
// bridge accounting lands in per-worker padded slots or in single-writer
// per-destination cells, folded serially after the dispatch returns, so
// nothing races and the result stays bit-identical at every pool width.
//
// The facade also measures its own traffic: every flip folds each
// segment's byte volume into a per-(src, dst) matrix (surfaced per plan
// boundary for exp12 rows), and enable_traffic_profile() additionally
// accumulates wire bits per receiver-side arc. measured_plan() feeds
// that profile to the traffic-aware refine_boundaries overload and
// adopt_plan() rebuilds the members onto the result between phases or
// runs — placement driven by measured volume, not static structure.
// Because results are bit-identical under EVERY plan, re-planning never
// changes the bits, only the bridge volume; the plan is part of the
// configuration (same plan => same layout => same performance profile).
//
// Determinism contract: for every plan, shard count, and worker-pool
// width, a run is bit-identical to the unsharded Network — same
// MdsResults, same delivery traces, same RunStats including the
// per-phase breakdown (the facade accounts every send in its own
// per-worker slots; rounds advance in lockstep across shards). Verified
// by tests/shard_test.cpp against every registry solver.
//
// This is the in-process half of the multi-process direction: the relay
// buffers are exactly the byte streams a process boundary would carry.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "congest/network.hpp"
#include "shard/partition.hpp"

namespace arbods::shard {

class ShardedNetwork final : public Network {
 public:
  /// Partitions with make_shard_plan(graph, config.shards).
  ShardedNetwork(const WeightedGraph& wg, CongestConfig config);
  /// Runs over a caller-supplied plan (must cover [0, n)).
  ShardedNetwork(const WeightedGraph& wg, CongestConfig config,
                 ShardPlan plan);
  ~ShardedNetwork() override;

  const ShardPlan& plan() const { return plan_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Shard member s (diagnostics/tests; e.g. its arena_words()).
  const Network& shard(int s) const { return *shards_[s]; }

  /// Total wire records carried by the inter-shard bridge so far
  /// (cumulative across phases until the next reset_for_reuse).
  std::int64_t bridge_records() const { return bridge_records_; }

  /// Bridged 64-bit words sent from shard `src` to shard `dst` so far
  /// (same lifecycle as bridge_records). Unlike bridge_records this
  /// includes records still pending at a phase/reuse discard — they
  /// crossed the bridge at send time, which is what placement cares
  /// about.
  std::int64_t bridged_words(int src, int dst) const {
    return pair_bridged_words_[static_cast<std::size_t>(src) * shards_.size() +
                               static_cast<std::size_t>(dst)];
  }

  /// Bytes that crossed each of the plan's K-1 boundaries so far: entry
  /// b-1 counts every bridged record whose (src, dst) pair straddles
  /// boundary b (a record from shard 0 to shard 3 crosses boundaries 1,
  /// 2, and 3). The per-boundary counters exp12 rows carry (schema v3).
  std::vector<std::int64_t> boundary_bridged_bytes() const;

  /// Start accumulating wire bits per receiver-side CSR arc (the
  /// indexing cut_volume/refine_boundaries consume). Costs one add per
  /// message while enabled plus one word per arc; lanes have a single
  /// writer per round, so the profile is race-free and deterministic.
  /// Cleared by reset_for_reuse (i.e. at each run() start), so a
  /// profile read after run() covers exactly that run.
  void enable_traffic_profile();

  /// The measured per-arc profile (empty unless enabled).
  std::span<const std::uint64_t> traffic_profile() const {
    return lane_traffic_;
  }

  /// The traffic-refined plan: refine_boundaries driven by the measured
  /// per-arc volumes, starting from (and never worse than) the current
  /// plan. Meaningful after a profiled run; without a profile it is the
  /// structural reducer.
  ShardPlan measured_plan(double balance_slack = 0.2) const;

  /// Plan-rebuild hook: re-partition this facade onto `plan` (typically
  /// measured_plan() after a profiling run), rebuilding the per-shard
  /// members in place while keeping the facade's pool, topology, and
  /// traffic profile. Call between phases or runs (the facade returns
  /// to the fresh-construction observable state, like reset_for_reuse);
  /// results are bit-identical under every plan, so adopting a new one
  /// changes bridge volume, never bits. Bridge counters restart at 0.
  void adopt_plan(ShardPlan plan);

  /// Plans adopted (adopt_plan calls) since the last reset_for_reuse —
  /// i.e. during the current run when driven through run()/run_phase().
  /// With CongestConfig::auto_replan this counts the phase-boundary
  /// replans ProtocolRunner performed; deterministic across widths and
  /// shard counts because the traffic profile it keys on is.
  int replans() const { return replans_; }

  /// Leader worker of shard s's worker group under shard-affine dispatch
  /// (the worker that runs s's flip/merge task); 0 when affinity is off.
  /// Diagnostics/tests.
  int shard_leader(int s) const {
    return affine_node_bounds_.empty() ? 0 : shard_leader_[s];
  }

  shard::ShardedNetwork* sharded_core() override { return this; }

  /// Capacity (in elements) of one relay segment's word / record
  /// buffers. Diagnostics for the shrink-policy regression tests: after
  /// shrink_scratch a quiet segment must not retain capacity sized for
  /// the busiest segment's peak.
  std::size_t relay_words_capacity(int src, int dst, int worker) const {
    return segment_at(src, dst, worker).words.capacity();
  }
  std::size_t relay_recs_capacity(int src, int dst, int worker) const {
    return segment_at(src, dst, worker).recs.capacity();
  }

  // --- Network seams ---
  Rng& rng(NodeId v) override;
  void send(NodeId from, NodeId to, const Message& m) override;
  void broadcast(NodeId from, const Message& m) override;
  InboxView inbox(NodeId v) const override;
  void arm_at(NodeId v, std::int64_t round) override;
  std::size_t arena_words() const override;
  void reset_for_reuse() override;

 private:
  struct RelayRec {
    std::uint32_t lane;   // destination member's local lane
    std::uint32_t begin;  // word range in the segment's `words`
    std::uint32_t end;
  };
  /// One (src-shard, dst-shard, worker) segment of the bridge: packed
  /// wire records plus their destination lanes, in send order. Each
  /// segment tracks its OWN per-run high-water marks so the post-run
  /// shrink releases a quiet segment's capacity even while another
  /// segment stays busy (a single global mark would size every one of
  /// the k*k*workers segments for the busiest segment's peak).
  struct RelaySegment {
    std::vector<std::uint64_t> words;
    std::vector<RelayRec> recs;
    std::size_t words_highwater = 0;
    std::size_t recs_highwater = 0;
  };

  /// Per-worker bridge tally for the parallel flip merge: each merge
  /// task bumps its executing worker's padded slot, folded into
  /// bridge_records_ serially after the dispatch returns.
  struct alignas(64) BridgeSlot {
    std::int64_t records = 0;
    /// Wall-clock this worker spent in per-destination merge tasks,
    /// folded into stats().timing.merge_seconds after the dispatch.
    std::int64_t merge_ns = 0;
  };

  void flip_buffers() override;
  void clear_all_lanes() override;
  void reseed_node_rngs() override;
  void rebuild_active_set() override;
  void shrink_scratch() override;
  void deposit_wire(std::uint32_t glane, const std::uint64_t* words,
                    std::size_t nwords) override;
  bool affine_chunk_bounds(ChunkDomain domain, std::size_t count,
                           std::vector<std::size_t>& bounds) override;
  std::int64_t pending_spill_records() const override;

  /// (Re)builds the per-shard members, relay segments, and node/lane
  /// maps from plan_ (constructor + adopt_plan). Bridge counters and
  /// per-segment high-waters restart at zero. Under pin_threads this
  /// also (re)builds the shard-affine dispatch tables and runs the
  /// deferred parallel first-touch pass over the fresh member arenas.
  void build_members();
  /// Shard->worker-group assignment: fills affine_node_bounds_ (per-
  /// worker contiguous node ranges, arc-balanced and snapped to shard
  /// boundaries so every shard is owned by a contiguous worker group),
  /// affine_flip_bounds_ (each shard's flip task on its group leader),
  /// and shard_leader_. Pure function of (plan, offsets, workers).
  void build_affine_tables();
  /// The deferred parallel first-touch pass over freshly built members
  /// (plus the optional explicit NUMA binding of their arenas).
  void first_touch_members();
  /// Folds a segment's pending sizes into its high-water marks and the
  /// bridged-volume matrix, then discards the contents — records
  /// dropped undelivered at a phase/reuse boundary still count toward
  /// the capacity the next phase will realistically need.
  void retire_segment(std::size_t src, std::size_t dst, RelaySegment& seg);

  RelaySegment& segment(std::uint32_t src, std::uint32_t dst,
                        std::size_t worker) {
    return relay_[(static_cast<std::size_t>(src) * shards_.size() + dst) *
                      workers_ +
                  worker];
  }
  const RelaySegment& segment_at(int src, int dst, int worker) const {
    return relay_[(static_cast<std::size_t>(src) * shards_.size() +
                   static_cast<std::size_t>(dst)) *
                      workers_ +
                  static_cast<std::size_t>(worker)];
  }
  int relay_deposit(std::uint32_t src, std::uint32_t dst, std::uint32_t lane,
                    const Message& m, NodeId sender);
  void relay_append(std::uint32_t src, std::uint32_t dst, std::size_t worker,
                    std::uint32_t lane, const std::uint64_t* words,
                    std::size_t nwords);

  ShardPlan plan_;
  std::vector<std::unique_ptr<Network>> shards_;
  /// Dense node -> shard map (the plan's shard_of is O(log K)).
  std::vector<std::uint32_t> node_shard_;
  /// Global arc offset of each shard's first lane; global lane -
  /// shard_lane_begin_[shard] = the member's local lane.
  std::vector<std::size_t> shard_lane_begin_;
  std::size_t workers_ = 1;
  std::vector<RelaySegment> relay_;
  std::vector<BridgeSlot> bridge_slots_;
  std::int64_t bridge_records_ = 0;
  /// Bridged words per (src * K + dst). Written only by dst's merge
  /// task (or the driver thread at retire time) — single writer per
  /// cell, folded reads on the driver thread only.
  std::vector<std::int64_t> pair_bridged_words_;
  /// Wire bits per receiver-side arc; empty until
  /// enable_traffic_profile(). Single writer per lane per round.
  std::vector<std::uint64_t> lane_traffic_;
  /// Shard-affine dispatch tables (empty = affinity off, uniform
  /// chunking). affine_node_bounds_[w]..[w+1] is worker w's global node
  /// range — arc-balanced, snapped to shard boundaries so each shard's
  /// nodes run on one contiguous worker group; affine_flip_bounds_ maps
  /// destination shards of the flip onto the groups' leader workers;
  /// shard_leader_[s] is that leader.
  std::vector<std::size_t> affine_node_bounds_;
  std::vector<std::size_t> affine_flip_bounds_;
  std::vector<int> shard_leader_;
  /// adopt_plan calls since the last reset_for_reuse (see replans()).
  int replans_ = 0;
};

/// The construction point the harness layers use: a plain Network when
/// the (clamped) shard count is 1, a ShardedNetwork otherwise. Callers
/// hold the result as Network& and never learn which they got.
std::unique_ptr<Network> make_network(const WeightedGraph& wg,
                                      const CongestConfig& config);

}  // namespace arbods::shard
