// ShardedNetwork: one CONGEST instance as K per-shard Networks behind
// the ordinary Network driving surface.
//
// The facade derives from Network and overrides its virtual seams, so
// ProtocolRunner, every Phase, the solver registry, and the scenario
// batch runner drive a sharded instance completely unmodified. Each
// shard member is a real Network built over a contiguous node block of
// the ShardPlan: it owns the lane arenas for the in-arcs of its block,
// that block's RNG streams (seeded by *global* node id), timer wheels,
// and active-set state. The facade owns the worker pool and the global
// out-arc -> lane mirror; per-node loops chunk over global ids exactly
// as the unsharded simulator does, so each shard's block is processed by
// a contiguous slice of the workers.
//
// Message routing:
//   * intra-shard send: the facade resolves the receiver-side lane
//     (global lane - shard lane base = the member's local lane) and
//     deposits straight into the owning member's out-arena — the same
//     single-writer-per-lane path as the unsharded simulator;
//   * cut-edge send: the wire record is appended to the per-
//     (src-shard, dst-shard) relay buffer (per-worker segments, so the
//     send half-round stays lock-free). At the flip the facade merges
//     every relay record into its destination member's lanes *before*
//     flipping the members, so bridged records ride the members' spill /
//     regrow machinery and are delivered next round exactly like local
//     ones. A cut lane's records all come from its single remote writer
//     through one relay segment, so sender order within the lane — and
//     therefore the sender-ordered inbox scan — is preserved.
//
// Determinism contract: for every plan, shard count, and worker-pool
// width, a run is bit-identical to the unsharded Network — same
// MdsResults, same delivery traces, same RunStats including the
// per-phase breakdown (the facade accounts every send in its own
// per-worker slots; rounds advance in lockstep across shards). Verified
// by tests/shard_test.cpp against every registry solver.
//
// This is the in-process half of the multi-process direction: the relay
// buffers are exactly the byte streams a process boundary would carry.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "shard/partition.hpp"

namespace arbods::shard {

class ShardedNetwork final : public Network {
 public:
  /// Partitions with make_shard_plan(graph, config.shards).
  ShardedNetwork(const WeightedGraph& wg, CongestConfig config);
  /// Runs over a caller-supplied plan (must cover [0, n)).
  ShardedNetwork(const WeightedGraph& wg, CongestConfig config,
                 ShardPlan plan);
  ~ShardedNetwork() override;

  const ShardPlan& plan() const { return plan_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Shard member s (diagnostics/tests; e.g. its arena_words()).
  const Network& shard(int s) const { return *shards_[s]; }

  /// Total wire records carried by the inter-shard bridge so far
  /// (cumulative across phases until the next reset_for_reuse).
  std::int64_t bridge_records() const { return bridge_records_; }

  // --- Network seams ---
  Rng& rng(NodeId v) override;
  void send(NodeId from, NodeId to, const Message& m) override;
  void broadcast(NodeId from, const Message& m) override;
  InboxView inbox(NodeId v) const override;
  void arm_at(NodeId v, std::int64_t round) override;
  std::size_t arena_words() const override;
  void reset_for_reuse() override;

 private:
  struct RelayRec {
    std::uint32_t lane;   // destination member's local lane
    std::uint32_t begin;  // word range in the segment's `words`
    std::uint32_t end;
  };
  /// One (src-shard, dst-shard, worker) segment of the bridge: packed
  /// wire records plus their destination lanes, in send order.
  struct RelaySegment {
    std::vector<std::uint64_t> words;
    std::vector<RelayRec> recs;
  };

  void flip_buffers() override;
  void clear_all_lanes() override;
  void reseed_node_rngs() override;
  void rebuild_active_set() override;
  void shrink_scratch() override;

  RelaySegment& segment(std::uint32_t src, std::uint32_t dst,
                        std::size_t worker) {
    return relay_[(static_cast<std::size_t>(src) * shards_.size() + dst) *
                      workers_ +
                  worker];
  }
  int relay_deposit(std::uint32_t src, std::uint32_t dst, std::uint32_t lane,
                    const Message& m, NodeId sender);
  void relay_append(std::uint32_t src, std::uint32_t dst, std::size_t worker,
                    std::uint32_t lane, const std::uint64_t* words,
                    std::size_t nwords);

  ShardPlan plan_;
  std::vector<std::unique_ptr<Network>> shards_;
  /// Dense node -> shard map (the plan's shard_of is O(log K)).
  std::vector<std::uint32_t> node_shard_;
  /// Global arc offset of each shard's first lane; global lane -
  /// shard_lane_begin_[shard] = the member's local lane.
  std::vector<std::size_t> shard_lane_begin_;
  std::size_t workers_ = 1;
  std::vector<RelaySegment> relay_;
  std::int64_t bridge_records_ = 0;
  std::size_t relay_words_highwater_ = 0;
  std::size_t relay_recs_highwater_ = 0;
};

/// The construction point the harness layers use: a plain Network when
/// the (clamped) shard count is 1, a ShardedNetwork otherwise. Callers
/// hold the result as Network& and never learn which they got.
std::unique_ptr<Network> make_network(const WeightedGraph& wg,
                                      const CongestConfig& config);

}  // namespace arbods::shard
