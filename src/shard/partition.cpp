#include "shard/partition.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace arbods::shard {

int ShardPlan::shard_of(NodeId v) const {
  ARBODS_DCHECK(!node_begin.empty() && v < node_begin.back());
  const auto it =
      std::upper_bound(node_begin.begin(), node_begin.end(), v);
  return static_cast<int>(it - node_begin.begin()) - 1;
}

NodeId ShardPlan::local_id(NodeId v) const {
  return v - node_begin[shard_of(v)];
}

std::int64_t cut_arcs(const Graph& g, const ShardPlan& plan) {
  std::int64_t cut = 0;
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const int s = plan.shard_of(v);
    for (const NodeId u : g.neighbors(v))
      cut += plan.shard_of(u) != s;
  }
  return cut;
}

std::int64_t cut_volume(const Graph& g, const ShardPlan& plan,
                        std::span<const std::uint64_t> in_arc_volume) {
  const NodeId n = g.num_nodes();
  ARBODS_CHECK_MSG(in_arc_volume.empty() ||
                       in_arc_volume.size() == 2 * g.num_edges(),
                   "arc volume profile covers " << in_arc_volume.size()
                                                << " arcs, graph has "
                                                << 2 * g.num_edges());
  std::int64_t cost = 0;
  std::size_t l = 0;  // receiver-side CSR arc index: v's range, sender order
  for (NodeId v = 0; v < n; ++v) {
    const int s = plan.shard_of(v);
    for (const NodeId u : g.neighbors(v)) {
      if (plan.shard_of(u) != s)
        cost += 1 + (in_arc_volume.empty()
                         ? 0
                         : static_cast<std::int64_t>(in_arc_volume[l]));
      ++l;
    }
  }
  return cost;
}

namespace {

// Per-node balance weight: in-arcs + 1, so isolated nodes still spread
// across shards and arc-free graphs fall back to node-count balance.
std::int64_t node_weight(const Graph& g, NodeId v) {
  return static_cast<std::int64_t>(g.degree(v)) + 1;
}

}  // namespace

ShardPlan partition_contiguous(const Graph& g, int num_shards) {
  const NodeId n = g.num_nodes();
  const int k = std::clamp(num_shards, 1, std::max<int>(1, static_cast<int>(n)));
  std::vector<std::int64_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    prefix[v + 1] = prefix[v] + node_weight(g, v);
  const std::int64_t total = prefix[n];

  ShardPlan plan;
  plan.node_begin.resize(static_cast<std::size_t>(k) + 1);
  plan.node_begin[0] = 0;
  plan.node_begin[static_cast<std::size_t>(k)] = n;
  for (int s = 1; s < k; ++s) {
    const std::int64_t target = total * s / k;
    // Smallest v with prefix[v] >= target: the first v nodes carry at
    // least the ideal s/k share of the arcs.
    const NodeId v = static_cast<NodeId>(
        std::lower_bound(prefix.begin(), prefix.end(), target) -
        prefix.begin());
    // Keep every block non-empty: at least one node per shard on each
    // side of the boundary.
    const NodeId lo = plan.node_begin[s - 1] + 1;
    const NodeId hi = n - static_cast<NodeId>(k - s);
    plan.node_begin[s] = std::clamp(v, lo, hi);
  }
  return plan;
}

ShardPlan refine_boundaries(const Graph& g, ShardPlan plan,
                            double balance_slack) {
  return refine_boundaries(g, std::move(plan), {}, balance_slack);
}

ShardPlan refine_boundaries(const Graph& g, ShardPlan plan,
                            std::span<const std::uint64_t> in_arc_volume,
                            double balance_slack) {
  const NodeId n = g.num_nodes();
  const int k = plan.num_shards();
  if (k <= 1 || n == 0) return plan;
  ARBODS_CHECK_MSG(in_arc_volume.empty() ||
                       in_arc_volume.size() == 2 * g.num_edges(),
                   "arc volume profile covers " << in_arc_volume.size()
                                                << " arcs, graph has "
                                                << 2 * g.num_edges());

  // crossings[b] = total weight of the directed arcs (u, v) with
  // min < b <= max, i.e. what the bridge pays for a boundary placed at
  // position b. Each directed arc contributes its measured volume + 1
  // (both directions of an edge carry independent traffic); without a
  // profile every arc weighs 1, a constant multiple of the old per-edge
  // count, so the unweighted sweep's argmin and tie-breaks are preserved
  // exactly. One difference-array sweep either way.
  std::vector<std::int64_t> crossings(static_cast<std::size_t>(n) + 1, 0);
  std::size_t l = 0;  // receiver-side CSR arc index
  for (NodeId v = 0; v < n; ++v)
    for (const NodeId u : g.neighbors(v)) {
      const std::int64_t w =
          1 + (in_arc_volume.empty()
                   ? 0
                   : static_cast<std::int64_t>(in_arc_volume[l]));
      crossings[std::min(u, v) + 1] += w;
      crossings[std::max(u, v) + 1] -= w;
      ++l;
    }
  for (std::size_t b = 1; b < crossings.size(); ++b)
    crossings[b] += crossings[b - 1];

  std::vector<std::int64_t> weight_prefix(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    weight_prefix[v + 1] = weight_prefix[v] + node_weight(g, v);
  const std::int64_t total = weight_prefix[n];

  // Slide each boundary, left to right, to the least-crossed position
  // whose weight prefix stays within the slack band around the ideal
  // s/k split (so no block starves or bloats).
  const ShardPlan input = plan;
  for (int s = 1; s < k; ++s) {
    const double ideal =
        static_cast<double>(total) * s / static_cast<double>(k);
    const auto in_band = [&](NodeId b) {
      const double w = static_cast<double>(weight_prefix[b]);
      return w >= ideal - balance_slack * ideal &&
             w <= ideal + balance_slack * ideal;
    };
    const NodeId lo = plan.node_begin[s - 1] + 1;
    const NodeId hi = plan.node_begin[s + 1] - 1;
    NodeId best = plan.node_begin[s];
    std::int64_t best_cost = crossings[best];
    for (NodeId b = lo; b <= hi; ++b) {
      if (!in_band(b)) continue;
      if (crossings[b] < best_cost) {
        best_cost = crossings[b];
        best = b;
      }
    }
    plan.node_begin[s] = best;
  }
  // Each move minimizes its own boundary's crossings, but the *union* of
  // cut traffic over all boundaries is what the bridge pays; guard
  // against the rare case where per-boundary greed grows the union.
  if (cut_volume(g, plan, in_arc_volume) > cut_volume(g, input, in_arc_volume))
    return input;
  return plan;
}

ShardPlan make_shard_plan(const Graph& g, int num_shards, bool refine) {
  ShardPlan plan = partition_contiguous(g, num_shards);
  if (refine) plan = refine_boundaries(g, plan);
  return plan;
}

}  // namespace arbods::shard
