#include "arboricity/dinic.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/check.hpp"

namespace arbods {

Dinic::Dinic(int num_vertices) : head_(num_vertices) {
  ARBODS_CHECK(num_vertices >= 0);
}

int Dinic::add_edge(int u, int v, std::int64_t capacity) {
  ARBODS_CHECK(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices());
  ARBODS_CHECK(capacity >= 0);
  const int idx = static_cast<int>(arcs_.size());
  head_[u].push_back(idx);
  arcs_.push_back({v, capacity});
  head_[v].push_back(idx + 1);
  arcs_.push_back({u, 0});
  original_cap_.push_back(capacity);
  original_cap_.push_back(0);
  return idx / 2;
}

bool Dinic::bfs(int s, int t) {
  level_.assign(head_.size(), -1);
  level_[s] = 0;
  std::deque<int> queue{s};
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    for (int idx : head_[v]) {
      const Arc& a = arcs_[idx];
      if (a.cap > 0 && level_[a.to] < 0) {
        level_[a.to] = level_[v] + 1;
        queue.push_back(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t Dinic::dfs(int v, int t, std::int64_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < head_[v].size(); ++i) {
    int idx = head_[v][i];
    Arc& a = arcs_[idx];
    if (a.cap <= 0 || level_[a.to] != level_[v] + 1) continue;
    std::int64_t got = dfs(a.to, t, std::min(pushed, a.cap));
    if (got > 0) {
      a.cap -= got;
      arcs_[idx ^ 1].cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t Dinic::max_flow(int s, int t) {
  ARBODS_CHECK(s != t);
  std::int64_t flow = 0;
  while (bfs(s, t)) {
    iter_.assign(head_.size(), 0);
    for (;;) {
      std::int64_t pushed = dfs(s, t, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t Dinic::flow_on(int edge_index) const {
  const std::size_t fwd = static_cast<std::size_t>(edge_index) * 2;
  ARBODS_CHECK(fwd < arcs_.size());
  return original_cap_[fwd] - arcs_[fwd].cap;
}

}  // namespace arbods
