#include "arboricity/barenboim_elkin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace arbods {

BarenboimElkinOrientation::BarenboimElkinOrientation(NodeId alpha, double eps)
    : alpha_(alpha), eps_(eps), alpha_known_(true), guess_(alpha) {
  ARBODS_CHECK(alpha >= 1);
  ARBODS_CHECK(eps > 0.0 && eps <= 2.0);
  set_threshold_from_guess();
}

BarenboimElkinOrientation BarenboimElkinOrientation::with_unknown_alpha(
    double eps) {
  BarenboimElkinOrientation algo(1, eps);
  algo.alpha_ = 0;
  algo.alpha_known_ = false;
  algo.guess_ = 1;
  algo.set_threshold_from_guess();
  return algo;
}

void BarenboimElkinOrientation::set_threshold_from_guess() {
  threshold_ = static_cast<NodeId>(std::floor((2.0 + eps_) * guess_));
}

void BarenboimElkinOrientation::initialize(Network& net) {
  const NodeId n = net.num_nodes();
  active_.assign(n, true);
  active_degree_.resize(n);
  level_.assign(n, -1);
  num_active_ = n;
  for (NodeId v = 0; v < n; ++v) active_degree_[v] = net.degree(v);
  // Phases needed once the guess reaches the true arboricity: the active
  // set shrinks by the factor 2/(2+eps) per phase.
  budget_per_guess_ =
      1 + static_cast<std::int64_t>(std::ceil(
              std::log(static_cast<double>(n) + 1.0) /
              std::log((2.0 + eps_) / 2.0)));
  phase_budget_ = alpha_known_ ? std::numeric_limits<std::int64_t>::max()
                               : budget_per_guess_;
}

void BarenboimElkinOrientation::process_round(Network& net) {
  const NodeId n = net.num_nodes();
  const std::int64_t phase = net.current_round();
  // First absorb last round's retirement announcements, then decide from
  // the updated local active degree, then broadcast one 1-bit flag.
  for (NodeId v = 0; v < n; ++v) {
    for (const MessageView m : net.inbox(v)) {
      if (m.tag() == 0 && m.flag_at(1)) {
        ARBODS_CHECK(active_degree_[v] > 0);
        --active_degree_[v];
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (active_[v] && active_degree_[v] <= threshold_) {
      active_[v] = false;
      level_[v] = phase;
      --num_active_;
      net.broadcast(v, Message::tagged(0).add_flag(true));
    }
  }
  // Unknown alpha: when a guess exhausts its phase budget without emptying
  // the graph, the guess was too small — double it. (Every node detects
  // this locally from the globally known n and phase counter.)
  if (!alpha_known_ && num_active_ > 0 && --phase_budget_ <= 0) {
    guess_ *= 2;
    set_threshold_from_guess();
    phase_budget_ = budget_per_guess_;
  }
}

bool BarenboimElkinOrientation::finished(const Network& net) const {
  (void)net;
  return num_active_ == 0;
}

void BarenboimElkinOrientation::publish(Network& net,
                                        protocol::PhaseContext& ctx) {
  const Orientation o = extract_orientation(net.graph());
  OrientationHandoff handoff;
  handoff.out_degree.resize(net.num_nodes());
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    handoff.out_degree[v] = o.out_degree(v);
  handoff.final_guess = guess_;
  ctx.put(std::move(handoff));
}

Orientation BarenboimElkinOrientation::extract_orientation(
    const Graph& g) const {
  ARBODS_CHECK(level_.size() == g.num_nodes());
  std::vector<std::vector<NodeId>> out(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (level_[u] < level_[v] || (level_[u] == level_[v] && u < v))
        out[u].push_back(v);
    }
  }
  return Orientation(g, std::move(out));
}

std::vector<NodeId> BarenboimElkinOrientation::local_out_degree(
    const Graph& g) const {
  Orientation o = extract_orientation(g);
  std::vector<NodeId> est(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    NodeId m = o.out_degree(v);
    for (NodeId u : g.neighbors(v)) m = std::max(m, o.out_degree(u));
    est[v] = m;
  }
  return est;
}

BeOrientationResult barenboim_elkin_orient(const Graph& g, NodeId alpha,
                                           double eps) {
  WeightedGraph wg = WeightedGraph::uniform(Graph(g));
  Network net(wg);
  BarenboimElkinOrientation algo(alpha, eps);
  RunStats stats = net.run(algo, 10 * static_cast<std::int64_t>(g.num_nodes()) + 64);
  ARBODS_CHECK_MSG(!stats.hit_round_limit,
                   "Barenboim-Elkin did not converge; alpha promise too low?");
  // Build the orientation against the caller's graph (not the local copy
  // the simulation ran on) so the returned view outlives this function.
  Orientation o = algo.extract_orientation(g);
  return {std::move(o), stats.rounds, algo.levels()};
}

}  // namespace arbods
