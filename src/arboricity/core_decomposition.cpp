#include "arboricity/core_decomposition.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace arbods {

CoreDecomposition core_decomposition(const Graph& g) {
  const NodeId n = g.num_nodes();
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.reserve(n);
  out.position.assign(n, kInvalidNode);
  if (n == 0) return out;

  // Bucket-sorted peeling, O(n + m).
  NodeId max_deg = g.max_degree();
  std::vector<NodeId> deg(n);
  std::vector<std::vector<NodeId>> bucket(max_deg + 1);
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    bucket[deg[v]].push_back(v);
  }
  std::vector<bool> removed(n, false);
  NodeId current_core = 0;
  NodeId cursor = 0;
  NodeId removed_count = 0;
  while (removed_count < n) {
    while (cursor > 0 && !bucket[cursor - 1].empty()) --cursor;
    while (bucket[cursor].empty()) ++cursor;
    NodeId v = bucket[cursor].back();
    bucket[cursor].pop_back();
    if (removed[v] || deg[v] != cursor) continue;  // stale entry
    removed[v] = true;
    ++removed_count;
    current_core = std::max(current_core, cursor);
    out.core[v] = current_core;
    out.position[v] = static_cast<NodeId>(out.order.size());
    out.order.push_back(v);
    for (NodeId u : g.neighbors(v)) {
      if (!removed[u] && deg[u] > cursor) {
        --deg[u];
        bucket[deg[u]].push_back(u);
      }
    }
  }
  out.degeneracy = current_core;
  return out;
}

ArboricityBounds arboricity_bounds(const Graph& g) {
  ArboricityBounds b;
  const auto cores = core_decomposition(g);
  b.upper = cores.degeneracy;

  // Density bound evaluated on each suffix of the peeling order (the
  // k-cores): nodes order[i..n) induce the subgraph remaining when order[i]
  // was removed; count its edges incrementally from the back.
  const NodeId n = g.num_nodes();
  if (n <= 1) {
    b.lower = 0;
    return b;
  }
  std::vector<bool> added(n, false);
  std::uint64_t edges_in_suffix = 0;
  NodeId lower = (g.num_edges() > 0) ? 1 : 0;
  NodeId suffix_size = 0;
  for (NodeId i = n; i-- > 0;) {
    NodeId v = cores.order[i];
    for (NodeId u : g.neighbors(v))
      if (added[u]) ++edges_in_suffix;
    added[v] = true;
    ++suffix_size;
    if (suffix_size >= 2) {
      NodeId den = suffix_size - 1;
      NodeId bound = static_cast<NodeId>((edges_in_suffix + den - 1) / den);
      lower = std::max(lower, bound);
    }
  }
  b.lower = lower;
  return b;
}

}  // namespace arbods
