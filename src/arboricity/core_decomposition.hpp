// k-core decomposition (Matula–Beck peeling).
//
// Relation to arboricity alpha (Nash–Williams):
//   ceil(max_S m_S / (n_S - 1)) = alpha   and   alpha <= degeneracy <= 2*alpha - 1,
// so the peeling order yields both an orientation with out-degree <=
// degeneracy and two-sided bounds on alpha.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods {

struct CoreDecomposition {
  /// core[v] = core number of v.
  std::vector<NodeId> core;
  /// Nodes in peeling order (first removed first).
  std::vector<NodeId> order;
  /// position[v] = index of v in `order`.
  std::vector<NodeId> position;
  /// Maximum core number = degeneracy.
  NodeId degeneracy = 0;
};

CoreDecomposition core_decomposition(const Graph& g);

/// Two-sided bounds on arboricity.
struct ArboricityBounds {
  NodeId lower = 0;  // max density bound: ceil(m_S / (n_S - 1)) over probed S
  NodeId upper = 0;  // degeneracy
};

/// lower is evaluated on the whole graph and on every k-core subgraph
/// (the densest cores give the strongest bound).
ArboricityBounds arboricity_bounds(const Graph& g);

}  // namespace arbods
