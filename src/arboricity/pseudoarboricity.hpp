// Exact minimum-max-out-degree orientation via max-flow.
//
// The minimum over orientations of the maximum out-degree equals the
// pseudoarboricity p = ceil(max_S m_S / n_S), and p <= alpha <= p + 1
// (Picard–Queyranne / Frank–Gyárfás). Together with the Nash–Williams
// density lower bound this pins the arboricity of generated instances to
// within one, which is all the experiments need.
#pragma once

#include "arboricity/orientation.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods {

/// True iff g admits an orientation with out-degree <= d (flow check).
bool orientable_with_out_degree(const Graph& g, NodeId d);

/// Smallest d such that g is orientable with out-degree <= d.
NodeId pseudoarboricity(const Graph& g);

/// An orientation achieving out-degree <= d (d must be feasible).
Orientation min_out_degree_orientation(const Graph& g, NodeId d);

/// Convenience: orientation with the optimum out-degree.
Orientation optimal_orientation(const Graph& g);

}  // namespace arbods
