#include "arboricity/pseudoarboricity.hpp"

#include <algorithm>

#include "arboricity/core_decomposition.hpp"
#include "arboricity/dinic.hpp"
#include "common/check.hpp"

namespace arbods {

namespace {

// Flow network: source -> edge-node (cap 1), edge-node -> endpoints (cap 1),
// vertex -> sink (cap d). Full flow == m iff orientable with out-degree <= d;
// the endpoint that absorbs an edge's unit of flow becomes its tail.
struct OrientFlow {
  Dinic dinic;
  std::vector<int> edge_to_u_arc;  // per edge: arc id edge-node -> u
  std::vector<int> edge_to_v_arc;
  std::vector<Edge> edges;
  int s, t;

  OrientFlow(const Graph& g, NodeId d)
      : dinic(static_cast<int>(g.num_nodes() + g.num_edges() + 2)),
        edges(g.edges()) {
    const int n = static_cast<int>(g.num_nodes());
    const int m = static_cast<int>(edges.size());
    s = n + m;
    t = n + m + 1;
    edge_to_u_arc.reserve(m);
    edge_to_v_arc.reserve(m);
    for (int e = 0; e < m; ++e) {
      dinic.add_edge(s, n + e, 1);
      edge_to_u_arc.push_back(dinic.add_edge(n + e, static_cast<int>(edges[e].u), 1));
      edge_to_v_arc.push_back(dinic.add_edge(n + e, static_cast<int>(edges[e].v), 1));
    }
    for (int v = 0; v < n; ++v) dinic.add_edge(v, t, d);
  }
};

}  // namespace

bool orientable_with_out_degree(const Graph& g, NodeId d) {
  if (g.num_edges() == 0) return true;
  OrientFlow net(g, d);
  return net.dinic.max_flow(net.s, net.t) ==
         static_cast<std::int64_t>(g.num_edges());
}

NodeId pseudoarboricity(const Graph& g) {
  if (g.num_edges() == 0) return 0;
  // Binary search in [ceil(m/n), degeneracy]; degeneracy is always feasible.
  const auto cores = core_decomposition(g);
  NodeId lo = static_cast<NodeId>(
      (g.num_edges() + g.num_nodes() - 1) / g.num_nodes());
  lo = std::max<NodeId>(lo, 1);
  NodeId hi = std::max<NodeId>(cores.degeneracy, 1);
  while (lo < hi) {
    NodeId mid = lo + (hi - lo) / 2;
    if (orientable_with_out_degree(g, mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

Orientation min_out_degree_orientation(const Graph& g, NodeId d) {
  OrientFlow net(g, d);
  const std::int64_t flow = net.dinic.max_flow(net.s, net.t);
  ARBODS_CHECK_MSG(flow == static_cast<std::int64_t>(g.num_edges()),
                   "graph not orientable with out-degree " << d);
  std::vector<std::vector<NodeId>> out(g.num_nodes());
  for (std::size_t e = 0; e < net.edges.size(); ++e) {
    const Edge& edge = net.edges[e];
    if (net.dinic.flow_on(net.edge_to_u_arc[e]) > 0) {
      out[edge.u].push_back(edge.v);  // u pays for the edge: u -> v
    } else {
      ARBODS_CHECK(net.dinic.flow_on(net.edge_to_v_arc[e]) > 0);
      out[edge.v].push_back(edge.u);
    }
  }
  Orientation o(g, std::move(out));
  o.validate();
  return o;
}

Orientation optimal_orientation(const Graph& g) {
  return min_out_degree_orientation(g, pseudoarboricity(g));
}

}  // namespace arbods
