// Dinic's maximum-flow algorithm on unit-ish capacity networks.
//
// Substrate for the exact minimum-max-out-degree orientation
// (pseudoarboricity); kept general so tests can exercise it directly.
#pragma once

#include <cstdint>
#include <vector>

namespace arbods {

class Dinic {
 public:
  explicit Dinic(int num_vertices);

  /// Adds a directed edge u -> v with the given capacity; returns the edge
  /// index (usable with flow_on()).
  int add_edge(int u, int v, std::int64_t capacity);

  /// Computes the max flow from s to t. May be called once per instance.
  std::int64_t max_flow(int s, int t);

  /// Flow routed through the edge returned by add_edge.
  std::int64_t flow_on(int edge_index) const;

  int num_vertices() const { return static_cast<int>(head_.size()); }

 private:
  struct Arc {
    int to;
    std::int64_t cap;  // residual capacity
  };

  bool bfs(int s, int t);
  std::int64_t dfs(int v, int t, std::int64_t pushed);

  std::vector<std::vector<int>> head_;  // adjacency: arc indices per vertex
  std::vector<Arc> arcs_;               // arc 2i is forward, 2i+1 backward
  std::vector<std::int64_t> original_cap_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace arbods
