// Distributed (2+eps)*alpha orientation (Barenboim & Elkin, "Sublogarithmic
// distributed MIS algorithm for sparse graphs using Nash-Williams
// decomposition", Distributed Computing 2010).
//
// H-partition: in each phase, every still-active node whose active degree
// is at most (2+eps)*alpha retires into the current level; by Nash-Williams
// at least an eps/(2+eps) fraction retires per phase, so O(log n / eps)
// phases empty the graph. Orienting every edge from lower to higher level
// (ties broken by id) bounds the out-degree by floor((2+eps)*alpha).
//
// This is the substrate for Remark 4.5 (MDS with unknown alpha). It runs as
// a genuine CONGEST algorithm on the simulator: one broadcast of a 1-bit
// "retired" flag per phase. As a protocol::Phase it is the reusable
// orientation prologue: it publishes an OrientationHandoff (per-node
// out-degrees of the low-to-high-level orientation) that the adaptive MDS
// phase — or any future consumer — binds against.
#pragma once

#include <vector>

#include "arboricity/orientation.hpp"
#include "common/types.hpp"
#include "congest/network.hpp"
#include "protocol/phase.hpp"

namespace arbods {

/// Published by the orientation prologue for downstream phases: the
/// out-degree every node ends up with under the low-to-high-level
/// orientation (node v's local arboricity proxy), plus the final alpha
/// guess the doubling variant settled on.
struct OrientationHandoff {
  std::vector<NodeId> out_degree;
  NodeId final_guess = 1;
};

class BarenboimElkinOrientation final : public protocol::Phase {
 public:
  /// alpha: the promise on the arboricity (or an upper bound guess).
  /// eps in (0, 2].
  BarenboimElkinOrientation(NodeId alpha, double eps);

  /// Unknown-alpha variant: sequential doubling of the guess, each guess
  /// granted the O(log n / eps) phase budget that suffices once the guess
  /// reaches the true arboricity. Final guess <= 2*alpha, so the
  /// orientation out-degree is <= (2+eps)*2*alpha; rounds grow by a
  /// log(alpha) factor relative to the known-alpha run (documented
  /// substitution for Remark 4.5 — see DESIGN.md).
  static BarenboimElkinOrientation with_unknown_alpha(double eps);

  std::string_view name() const override { return "be_orientation"; }
  void initialize(Network& net) override;
  void process_round(Network& net) override;
  bool finished(const Network& net) const override;
  /// Publishes the OrientationHandoff for downstream phases.
  void publish(Network& net, protocol::PhaseContext& ctx) override;

  /// Level (phase index at retirement) per node; valid once finished.
  const std::vector<std::int64_t>& levels() const { return level_; }

  /// The low-to-high-level orientation; valid once finished.
  Orientation extract_orientation(const Graph& g) const;

  /// Per-node local arboricity estimate used by Remark 4.5:
  /// hat_alpha_v = max out-degree over N+(v) — here returned after one
  /// extra exchange simulated locally from levels.
  std::vector<NodeId> local_out_degree(const Graph& g) const;

  NodeId threshold() const { return threshold_; }

  /// Final guess used (== alpha when alpha was known).
  NodeId final_guess() const { return guess_; }

 private:
  void set_threshold_from_guess();

  NodeId alpha_;  // 0 when unknown
  double eps_;
  bool alpha_known_ = true;
  NodeId guess_ = 1;
  NodeId threshold_ = 0;
  std::int64_t phase_budget_ = 0;   // phases remaining for current guess
  std::int64_t budget_per_guess_ = 0;
  std::vector<bool> active_;
  std::vector<NodeId> active_degree_;
  std::vector<std::int64_t> level_;
  NodeId num_active_ = 0;
};

/// Convenience wrapper: runs the algorithm on `g` (unit weights), returns
/// the orientation and reports the number of CONGEST rounds used.
struct BeOrientationResult {
  Orientation orientation;
  std::int64_t rounds = 0;
  std::vector<std::int64_t> levels;
};
BeOrientationResult barenboim_elkin_orient(const Graph& g, NodeId alpha,
                                           double eps);

}  // namespace arbods
