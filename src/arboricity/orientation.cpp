#include "arboricity/orientation.hpp"

#include <algorithm>

#include "arboricity/core_decomposition.hpp"
#include "common/check.hpp"

namespace arbods {

Orientation::Orientation(const Graph& g,
                         std::vector<std::vector<NodeId>> out_neighbors)
    : g_(&g), out_(std::move(out_neighbors)) {
  ARBODS_CHECK(out_.size() == g.num_nodes());
}

std::span<const NodeId> Orientation::out_neighbors(NodeId v) const {
  ARBODS_DCHECK(v < out_.size());
  return out_[v];
}

NodeId Orientation::out_degree(NodeId v) const {
  ARBODS_DCHECK(v < out_.size());
  return static_cast<NodeId>(out_[v].size());
}

NodeId Orientation::max_out_degree() const {
  NodeId d = 0;
  for (const auto& o : out_) d = std::max(d, static_cast<NodeId>(o.size()));
  return d;
}

std::vector<std::vector<NodeId>> Orientation::in_neighbors() const {
  std::vector<std::vector<NodeId>> in(g_->num_nodes());
  for (NodeId v = 0; v < g_->num_nodes(); ++v)
    for (NodeId head : out_[v]) in[head].push_back(v);
  return in;
}

void Orientation::validate() const {
  std::size_t arcs = 0;
  for (NodeId v = 0; v < g_->num_nodes(); ++v) {
    for (NodeId head : out_[v]) {
      ARBODS_CHECK_MSG(g_->has_edge(v, head),
                       "oriented non-edge (" << v << "," << head << ")");
      ++arcs;
    }
  }
  ARBODS_CHECK_MSG(arcs == g_->num_edges(),
                   "orientation has " << arcs << " arcs for "
                                      << g_->num_edges() << " edges");
  // Each edge oriented exactly once: total arc count matches and each arc is
  // an edge, so it remains to exclude double orientation (u->v and v->u).
  for (NodeId v = 0; v < g_->num_nodes(); ++v) {
    for (NodeId head : out_[v]) {
      const auto& back = out_[head];
      ARBODS_CHECK_MSG(std::find(back.begin(), back.end(), v) == back.end(),
                       "edge (" << v << "," << head << ") oriented both ways");
    }
  }
}

std::vector<std::vector<Edge>> Orientation::pseudoforest_layers() const {
  std::vector<std::vector<Edge>> layers(max_out_degree());
  for (NodeId v = 0; v < g_->num_nodes(); ++v)
    for (std::size_t i = 0; i < out_[v].size(); ++i)
      layers[i].push_back({v, out_[v][i]});
  return layers;
}

Orientation orientation_from_order(const Graph& g,
                                   std::span<const NodeId> position) {
  ARBODS_CHECK(position.size() == g.num_nodes());
  std::vector<std::vector<NodeId>> out(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.neighbors(u))
      if (position[u] < position[v]) out[u].push_back(v);
  return Orientation(g, std::move(out));
}

Orientation degeneracy_orientation(const Graph& g) {
  const auto cores = core_decomposition(g);
  return orientation_from_order(g, cores.position);
}

}  // namespace arbods
