// Edge orientations with bounded out-degree (Observation 3.5 machinery).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace arbods {

/// An orientation assigns every undirected edge a direction.
class Orientation {
 public:
  /// out_neighbors[v] lists the heads of edges oriented v -> head.
  Orientation(const Graph& g, std::vector<std::vector<NodeId>> out_neighbors);

  const Graph& graph() const { return *g_; }

  std::span<const NodeId> out_neighbors(NodeId v) const;
  NodeId out_degree(NodeId v) const;
  NodeId max_out_degree() const;

  /// In-neighbors of every node (computed once on demand, O(m)).
  std::vector<std::vector<NodeId>> in_neighbors() const;

  /// Validates that every edge of the graph is oriented exactly once and
  /// no non-edges are oriented. Throws CheckError otherwise.
  void validate() const;

  /// Splits the edges into max_out_degree() layers, layer i holding the
  /// i-th out-edge of every node. Each layer has out-degree <= 1, i.e. is
  /// a pseudoforest (footnote 2 of the paper).
  std::vector<std::vector<Edge>> pseudoforest_layers() const;

 private:
  const Graph* g_;
  std::vector<std::vector<NodeId>> out_;
};

/// Orients each edge from the endpoint peeled earlier to the one peeled
/// later in the degeneracy order: out-degree <= degeneracy <= 2*alpha - 1.
Orientation degeneracy_orientation(const Graph& g);

/// Orients by the given total order (position[v] = rank): edge {u,v} is
/// oriented u->v iff position[u] < position[v].
Orientation orientation_from_order(const Graph& g,
                                   std::span<const NodeId> position);

}  // namespace arbods
