#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>

namespace arbods::obs {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRecorder::TraceRecorder(int workers, int ring_capacity)
    : rings_(static_cast<std::size_t>(std::max(workers, 1))),
      epoch_ns_(monotonic_ns()) {
  const std::size_t cap = static_cast<std::size_t>(std::max(ring_capacity, 1));
  for (WorkerRing& ring : rings_) ring.events.resize(cap);
}

void TraceRecorder::record(std::size_t worker, const char* name,
                           std::int64_t begin_ns, std::int64_t end_ns,
                           int pid, std::int64_t arg) {
  if (worker >= rings_.size()) worker = 0;
  WorkerRing& ring = rings_[worker];
  Event& slot = ring.events[ring.count % ring.events.size()];
  slot.name = name;
  slot.ts_ns = begin_ns - epoch_ns_;
  slot.dur_ns = std::max<std::int64_t>(end_ns - begin_ns, 0);
  slot.arg = arg;
  slot.pid = pid;
  ++ring.count;
}

const char* TraceRecorder::intern(std::string_view name) {
  for (const auto& s : interned_) {
    if (*s == name) return s->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(name));
  return interned_.back()->c_str();
}

void TraceRecorder::clear() {
  for (WorkerRing& ring : rings_) ring.count = 0;
  epoch_ns_ = monotonic_ns();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  for (std::size_t w = 0; w < rings_.size(); ++w) {
    const WorkerRing& ring = rings_[w];
    const std::size_t cap = ring.events.size();
    const std::size_t kept = std::min(ring.count, cap);
    // Oldest surviving event first: a wrapped ring's window starts at
    // the next overwrite position.
    const std::size_t start = ring.count > cap ? ring.count % cap : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      const Event& e = ring.events[(start + i) % cap];
      TraceEvent ev;
      ev.name = e.name;
      ev.ts_ns = e.ts_ns;
      ev.dur_ns = e.dur_ns;
      ev.pid = e.pid;
      ev.tid = static_cast<int>(w);
      ev.arg = e.arg;
      out.push_back(std::move(ev));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.tid < b.tid;
            });
  return out;
}

std::int64_t TraceRecorder::dropped_events() const {
  std::int64_t dropped = 0;
  for (const WorkerRing& ring : rings_) {
    if (ring.count > ring.events.size()) {
      dropped += static_cast<std::int64_t>(ring.count - ring.events.size());
    }
  }
  return dropped;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Microseconds with nanosecond resolution, fixed three decimals — the
// trace-event spec's ts/dur unit.
void append_us(std::string& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03d",
                static_cast<long long>(ns / 1000),
                static_cast<int>(ns % 1000));
  out += buf;
}

}  // namespace

void write_chrome_json(std::ostream& os, std::span<const TraceGroup> groups) {
  std::string out;
  out += "{\"traceEvents\":[\n";
  bool first = true;
  int pid_base = 0;
  for (const TraceGroup& group : groups) {
    // Each group claims a contiguous global pid block: local pid 0 is
    // the driver row, local pid s+1 is shard s.
    int max_local_pid = 0;
    int max_tid = 0;
    for (const TraceEvent& e : group.events) {
      max_local_pid = std::max(max_local_pid, e.pid);
      max_tid = std::max(max_tid, e.tid);
    }
    for (int p = 0; p <= max_local_pid; ++p) {
      std::string row = group.label.empty() ? std::string("trace")
                                            : group.label;
      if (max_local_pid > 0) {
        row += p == 0 ? " · driver" : " · shard " + std::to_string(p - 1);
      }
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(pid_base + p);
      out += ",\"tid\":0,\"args\":{\"name\":\"";
      append_escaped(out, row);
      out += "\"}}";
      for (int t = 0; t <= max_tid; ++t) {
        out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
        out += std::to_string(pid_base + p);
        out += ",\"tid\":";
        out += std::to_string(t);
        out += ",\"args\":{\"name\":\"worker ";
        out += std::to_string(t);
        out += "\"}}";
      }
    }
    for (const TraceEvent& e : group.events) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"";
      append_escaped(out, e.name);
      out += "\",\"ph\":\"X\",\"ts\":";
      append_us(out, e.ts_ns);
      out += ",\"dur\":";
      append_us(out, e.dur_ns);
      out += ",\"pid\":";
      out += std::to_string(pid_base + e.pid);
      out += ",\"tid\":";
      out += std::to_string(e.tid);
      if (e.arg >= 0) {
        out += ",\"args\":{\"count\":";
        out += std::to_string(e.arg);
        out += "}";
      }
      out += "}";
    }
    pid_base += max_local_pid + 1;
  }
  out += "\n]}\n";
  os << out;
}

void dump_flight_records(std::ostream& os, std::string_view header,
                         std::span<const FlightRecord> records) {
  std::string out;
  out += "[flight recorder] ";
  out += header;
  out += " — last ";
  out += std::to_string(records.size());
  out += " round(s):\n";
  for (const FlightRecord& r : records) {
    char buf[256];
    const std::string active =
        r.active < 0 ? std::string("-") : std::to_string(r.active);
    std::snprintf(buf, sizeof buf,
                  "  round %-6lld active %-8s delivered %-10lld bits %-12lld"
                  " spilled %-8lld",
                  static_cast<long long>(r.round), active.c_str(),
                  static_cast<long long>(r.delivered),
                  static_cast<long long>(r.bits),
                  static_cast<long long>(r.spilled));
    out += buf;
    if (r.dropped || r.duplicated || r.delayed || r.killed) {
      std::snprintf(buf, sizeof buf,
                    " dropped %lld duplicated %lld delayed %lld killed %lld",
                    static_cast<long long>(r.dropped),
                    static_cast<long long>(r.duplicated),
                    static_cast<long long>(r.delayed),
                    static_cast<long long>(r.killed));
      out += buf;
    }
    out += '\n';
  }
  os << out;
}

}  // namespace arbods::obs
