// Observability layer: span tracing, timing breakdowns, and the crash
// flight recorder.
//
// The simulator spans five subsystems (congest/shard/fault/resilience/
// protocol); the logical counters in RunStats say nothing about *where
// wall-clock time goes* — the send half-round, the bridge merge, the
// flip, or retransmission. This header is the substrate every perf
// investigation reports against:
//
//   * TraceRecorder — per-worker, cache-line-padded event ring buffers
//     (fixed capacity, zero steady-state allocation, monotonic-clock
//     begin/end records). Created by the outermost Network when
//     CongestConfig::trace.enabled; decorator inners share the owner's
//     recorder through a sink pointer, so one run = one recorder no
//     matter how deep the ShardedNetwork/FaultyNetwork stack is. A full
//     ring overwrites its oldest events (flight-recorder semantics), so
//     a long run keeps the most recent window instead of allocating.
//   * TimingStats — the compute/flip/merge/retransmit seconds breakdown
//     carried alongside RunStats/PhaseStats. Deliberately EXCLUDED from
//     their operator==: the determinism and differential suites compare
//     logical results, and wall-clock can never be bit-stable.
//   * FlightRecord — one per-round summary line of the flight recorder
//     (CongestConfig::trace.flight_rounds): the last N of these are
//     dumped to stderr/JSON when a phase hits its round limit or a
//     solver throws CheckError, turning an opaque `failed=true` row
//     into a diagnosable incident.
//   * write_chrome_json — Chrome trace-event export (chrome://tracing /
//     Perfetto): one track per worker, one process row per shard.
//
// This header is deliberately free of congest/ includes — the Network
// depends on it, never the other way around.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace arbods::obs {

/// The CongestConfig::trace knob. Default-off costs nothing on the hot
/// path: no recorder is constructed, every instrumentation site is one
/// null-pointer test, and the flight recorder stays empty.
struct TraceOptions {
  /// Construct a TraceRecorder on the outermost Network and record spans
  /// at the instrumented seams (rounds, flips, active-set rebuilds,
  /// chunk dispatch, bridge merges, retransmit batches, repair stages).
  bool enabled = false;
  /// Events per worker ring. The ring is allocated once at Network
  /// construction and overwrites its oldest events when full, so this
  /// bounds both memory and export size, never allocation.
  int ring_capacity = 1 << 14;
  /// Keep a ring of the last N per-round FlightRecords (0 = off). Dumped
  /// on round-limit exhaustion / CheckError; independent of `enabled`.
  int flight_rounds = 0;

  friend bool operator==(const TraceOptions&, const TraceOptions&) = default;
};

/// Wall-clock breakdown of a phase or run, in seconds. compute covers
/// initialize + process_round (the send half-round and all per-node
/// work); flip covers flip_buffers (for a sharded run this INCLUDES the
/// bridge merge, which merge additionally reports on its own);
/// retransmit covers the reliable-transport receive/transmit passes and
/// is a sub-interval of compute. Always measured (a handful of
/// monotonic-clock reads per round), tracing enabled or not.
struct TimingStats {
  double compute_seconds = 0.0;
  double flip_seconds = 0.0;
  double merge_seconds = 0.0;
  double retransmit_seconds = 0.0;

  TimingStats& operator+=(const TimingStats& o) {
    compute_seconds += o.compute_seconds;
    flip_seconds += o.flip_seconds;
    merge_seconds += o.merge_seconds;
    retransmit_seconds += o.retransmit_seconds;
    return *this;
  }
  friend TimingStats operator-(TimingStats a, const TimingStats& b) {
    a.compute_seconds -= b.compute_seconds;
    a.flip_seconds -= b.flip_seconds;
    a.merge_seconds -= b.merge_seconds;
    a.retransmit_seconds -= b.retransmit_seconds;
    return a;
  }
};

/// One per-round summary line of the flight recorder. Deltas are per
/// round; `delivered`/`bits` count sends accounted during the round
/// (delivery follows at the next flip). `active` is the active-set size
/// as of the round's last rebuild, or -1 when the algorithm never
/// consulted the active set that round — the recorder must NOT force a
/// rebuild, which would drain timer buckets early and change behavior.
struct FlightRecord {
  std::int64_t round = 0;
  std::int64_t active = -1;
  std::int64_t delivered = 0;
  std::int64_t bits = 0;
  /// Overflow records awaiting the next flip's spill merge.
  std::int64_t spilled = 0;
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t delayed = 0;
  std::int64_t killed = 0;
};

/// One exported span (snapshot form; the in-ring representation is a
/// compact POD). Timestamps are nanoseconds since the recorder's epoch
/// (construction or last clear()).
struct TraceEvent {
  std::string name;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  int pid = 0;  // process row: 0 = driver, s + 1 = shard s
  int tid = 0;  // worker track
  std::int64_t arg = -1;  // optional counter (round number, item count)
};

/// One run's (or cell's) worth of events under a display label; the
/// Chrome export gives each group its own process-id block so a
/// multi-cell scenario trace shows per-cell rows.
struct TraceGroup {
  std::string label;
  std::vector<TraceEvent> events;
};

/// Nanoseconds on the process-wide monotonic clock (steady_clock).
/// Shared by the timing breakdown and the recorder so one clock pair
/// serves both at an instrumented seam.
std::int64_t monotonic_ns();

/// Per-worker span rings. record() is called from inside parallel
/// sections — each worker writes only its own cache-line-padded ring, so
/// there is no synchronization and no allocation on the recording path.
/// intern()/clear()/snapshot() are driver-thread-only (between parallel
/// sections), like the flip itself.
class TraceRecorder {
 public:
  TraceRecorder(int workers, int ring_capacity);

  /// Now, relative to the recorder epoch.
  std::int64_t now_ns() const { return monotonic_ns() - epoch_ns_; }

  /// Records a completed span on `worker`'s ring (absolute monotonic
  /// timestamps, as returned by monotonic_ns()). `name` must outlive the
  /// recorder: a string literal or an intern()ed string.
  void record(std::size_t worker, const char* name, std::int64_t begin_ns,
              std::int64_t end_ns, int pid = 0, std::int64_t arg = -1);

  /// Stable storage for a dynamic span name (phase names). Deduplicates
  /// by content, so pooled reuse across many runs stays bounded.
  const char* intern(std::string_view name);

  /// Drops all recorded events and restarts the epoch (reset_for_reuse
  /// calls this, so a snapshot after run() covers exactly that run).
  void clear();

  /// All rings merged, ordered by begin timestamp (ties: longer span
  /// first, so nested reconstruction works on the sorted sequence).
  std::vector<TraceEvent> snapshot() const;

  /// Events overwritten because a ring was full (since last clear).
  std::int64_t dropped_events() const;

  int workers() const { return static_cast<int>(rings_.size()); }

 private:
  struct Event {
    const char* name;
    std::int64_t ts_ns;
    std::int64_t dur_ns;
    std::int64_t arg;
    std::int32_t pid;
  };
  struct alignas(64) WorkerRing {
    std::vector<Event> events;  // fixed capacity, sized at construction
    std::size_t count = 0;      // total recorded; > capacity = wrapped
  };

  std::vector<WorkerRing> rings_;
  std::vector<std::unique_ptr<std::string>> interned_;
  std::int64_t epoch_ns_ = 0;
};

/// RAII span: begin at construction, record at destruction. A null
/// recorder makes both ends no-ops, so call sites stay branch-light.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* rec, std::size_t worker, const char* name,
             int pid = 0, std::int64_t arg = -1)
      : rec_(rec), worker_(worker), name_(name), pid_(pid), arg_(arg),
        begin_ns_(rec ? monotonic_ns() : 0) {}
  ~ScopedSpan() {
    if (rec_) rec_->record(worker_, name_, begin_ns_, monotonic_ns(),
                           pid_, arg_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* rec_;
  std::size_t worker_;
  const char* name_;
  int pid_;
  std::int64_t arg_;
  std::int64_t begin_ns_;
};

/// Chrome trace-event JSON (the {"traceEvents": [...]} object form):
/// one "X" (complete) event per span with microsecond timestamps, plus
/// "M" metadata naming each process row ("<label> · driver" /
/// "<label> · shard S") and each worker track. Loads in chrome://tracing
/// and Perfetto. Groups get disjoint global pid blocks in order.
void write_chrome_json(std::ostream& os, std::span<const TraceGroup> groups);

/// Human-readable flight-recorder dump: a header line plus one line per
/// record, oldest first.
void dump_flight_records(std::ostream& os, std::string_view header,
                         std::span<const FlightRecord> records);

}  // namespace arbods::obs
