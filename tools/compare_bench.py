#!/usr/bin/env python3
"""Compare a fresh exp12 scenario JSON against the checked-in baseline.

Usage: compare_bench.py BASELINE.json FRESH.json [--tolerance 0.25]
                        [--uniform-slack 2.0]

Rows are matched on (instance, solver, threads, shards); rows from
schema v1 files (no `shards` field) match as shards=1, so pre-shard
baselines keep working. For every matched row:
  * counter fields (n, m, rounds, messages, total_bits, set_size, weight)
    must be exactly equal — the simulator promises bit-identical results,
    so any drift is a correctness regression, not noise. `bridged_bytes`
    (per-boundary bridge volume, new in schema v3) is compared the same
    way, but only when BOTH rows carry it, so v2 rows and v3 baselines
    (or vice versa) still match on the shared counters. A mismatch
    prints a per-field diff table (baseline vs fresh vs delta) so the
    failure is diagnosable from the CI log alone;
  * the `identical` determinism verdict must be true in the fresh run.

Timing is judged robustly against runner-speed differences (the baseline
is regenerated on whatever machine last shifted the engine's numbers, CI
runs on another): each row's seconds ratio is normalized by the geometric
mean ratio over all rows (the "machine factor"), and a row fails when its
NORMALIZED ratio exceeds 1 + threshold — i.e. when it regressed relative
to the rest of the suite. A uniform slowdown hides from that check, so
the machine factor itself fails the gate only past --uniform-slack
(default 2.0x), generous enough for runner-class variance but not for a
catastrophic engine-wide regression.

Exit code 0 = pass, 1 = regression / mismatch, 2 = usage or missing rows.
"""
import argparse
import json
import math
import sys


def key(row):
    return (row["instance"], row["solver"], row["threads"],
            row.get("shards", 1))


def print_counter_diff(k, base, new, counters):
    """One aligned row per counter so a mismatch reads as a table."""
    print(f"  counter diff for {k}:")
    print(f"    {'field':<12} {'baseline':>16} {'fresh':>16} {'delta':>12}")
    for field in counters:
        b, f = base.get(field), new.get(field)
        delta = "" if not (isinstance(b, (int, float)) and
                           isinstance(f, (int, float))) else f"{f - b:+}"
        marker = "" if b == f else "   <-- MISMATCH"
        print(f"    {field:<12} {b!r:>16} {f!r:>16} {delta:>12}{marker}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", "--threshold", type=float,
                        dest="tolerance", default=0.25,
                        help="allowed fractional per-row regression after "
                             "machine-speed normalization (default keeps "
                             "the 25%% gate; --threshold is a deprecated "
                             "alias)")
    parser.add_argument("--uniform-slack", type=float, default=2.0,
                        help="allowed uniform (machine-factor) slowdown")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = {key(r): r for r in json.load(f)}
    with open(args.fresh) as f:
        fresh = {key(r): r for r in json.load(f)}

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print(f"FAIL: fresh run is missing baseline rows: {missing}")
        return 2

    counters = ("n", "m", "rounds", "messages", "total_bits", "set_size",
                "weight")
    # Deterministic but only present from schema v3 on: compared exactly
    # when both sides carry the field, ignored across schema versions.
    optional_counters = ("bridged_bytes",)
    failures = 0
    ratios = {}
    for k, base in sorted(baseline.items()):
        new = fresh[k]
        row_counters = counters + tuple(
            f for f in optional_counters if f in base and f in new)
        mismatched = [f for f in row_counters if base[f] != new[f]]
        if mismatched:
            print(f"FAIL {k}: counters changed (must match exactly): "
                  f"{', '.join(mismatched)}")
            print_counter_diff(k, base, new, row_counters)
            failures += len(mismatched)
        if not new.get("identical", False):
            print(f"FAIL {k}: determinism verdict is false")
            failures += 1
        ratios[k] = (new["seconds"] / base["seconds"]
                     if base["seconds"] > 0 else 1.0)

    machine = math.exp(sum(math.log(max(r, 1e-12)) for r in ratios.values())
                       / len(ratios)) if ratios else 1.0
    print(f"machine factor (geomean seconds ratio): {machine:.3f}x")
    if machine > args.uniform_slack:
        print(f"FAIL: uniform slowdown {machine:.2f}x exceeds "
              f"--uniform-slack {args.uniform_slack:.2f}x")
        failures += 1

    for k, ratio in sorted(ratios.items()):
        normalized = ratio / machine
        verdict = "ok"
        if normalized > 1.0 + args.tolerance:
            verdict = f"REGRESSION (> +{args.tolerance:.0%} normalized)"
            failures += 1
        print(f"{k}: {baseline[k]['seconds']:.6f}s -> "
              f"{fresh[k]['seconds']:.6f}s "
              f"(raw {ratio - 1.0:+.1%}, normalized {normalized - 1.0:+.1%}) "
              f"{verdict}")

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all rows within threshold; counters exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
