#!/usr/bin/env python3
"""Compare a fresh exp12/exp13 scenario JSON against the checked-in baseline.

Usage: compare_bench.py BASELINE.json FRESH.json [--tolerance 0.25]
                        [--uniform-slack 2.0]
       compare_bench.py --speedup SWEEP.json

The second form is not a gate: it reads ONE exp12 JSON that sweeps both
shards=1 and shards=K>1 cells and prints a per-(solver, n, threads)
sharded/unsharded seconds-ratio table (ratio < 1 = sharded faster),
pairing rows on (instance, solver, seed, fault, threads) and folding
multiple instances of the same (solver, n) with a geometric mean. Use it
on a `--pin --auto-replan` sweep to check the "sharding is free" claim
per thread width; it always exits 0 unless no pair exists (exit 2).

Rows are matched on (instance, solver, threads, shards) plus, when BOTH
files carry the field, `seed` and `fault` (new in schema v4 — a
multi-seed or fault-level sweep emits one row per seed and per level, so
the key must include them to stay unique). Rows from older schemas keep
matching: v1 files (no `shards`) match as shards=1, and pre-v4 rows
missing `seed`/`fault` take the defaults (seed None, fault "none") when
the other file forces the field into the key. A duplicate key within
EITHER file is a hard usage error (exit 2): the old dict build silently
kept only the last duplicate, so a baseline regenerated from a
multi-seed sweep could "pass" while comparing a fraction of its rows.

For every matched row:
  * counter fields (n, m, rounds, messages, total_bits, set_size, weight)
    must be exactly equal — the simulator promises bit-identical results,
    so any drift is a correctness regression, not noise. Deterministic
    fields that only exist from a later schema on are compared the same
    way when BOTH rows carry them, so older baselines still match on the
    shared counters: `bridged_bytes` (per-boundary bridge volume, v3),
    the v4 fault axis — the `dropped` / `duplicated` / `delayed` /
    `killed` counters and the `failed` flag — and the v5 self-healing
    columns (`hit_round_limit`, `repair_rounds`, `repaired_nodes`,
    `post_repair_weight`). Columns present in only one file are listed
    in a one-line notice and skipped. A mismatch prints a per-field diff
    table (baseline vs fresh vs delta) so the failure is diagnosable
    from the CI log alone;
  * the `identical` determinism verdict must be true in the fresh run.

Rows only present in the fresh file (new instances, new fault levels)
are reported but do not fail the gate; rows only present in the baseline
do (exit 2) — the fresh run must cover everything the baseline pins.

Timing is judged robustly against runner-speed differences (the baseline
is regenerated on whatever machine last shifted the engine's numbers, CI
runs on another): each row's seconds ratio is normalized by the geometric
mean ratio over all rows (the "machine factor"), and a row fails when its
NORMALIZED ratio exceeds 1 + threshold — i.e. when it regressed relative
to the rest of the suite. A uniform slowdown hides from that check, so
the machine factor itself fails the gate only past --uniform-slack
(default 2.0x), generous enough for runner-class variance but not for a
catastrophic engine-wide regression. Rows a heavy fault level failed
(`failed` true on both sides) carry no meaningful seconds and are
excluded from the timing gate.

The schema v7 timing-breakdown columns (`compute_seconds`,
`flip_seconds`, `merge_seconds`, `retransmit_seconds`) are
INFORMATIONAL ONLY: when both files carry them a baseline/fresh/delta
table is printed per column, but timing drift there never fails the
gate — only the median-seconds check above gates builds.

Exit code 0 = pass, 1 = regression / mismatch, 2 = usage, missing rows,
or duplicate keys.
"""
import argparse
import json
import math
import sys

# Fields a row may lack when it predates the schema that added them; the
# default keeps old rows addressable under the extended key.
KEY_DEFAULTS = {"shards": 1, "seed": None, "fault": "none"}


def make_key(row, key_fields):
    return tuple(row.get(f, KEY_DEFAULTS.get(f)) for f in key_fields)


def key_fields_for(baseline_rows, fresh_rows):
    """(instance, solver, threads, shards) plus each v4 axis field that
    both files actually stamp — a v4/v3 comparison must not split on a
    field the v3 side cannot distinguish."""
    fields = ["instance", "solver", "threads", "shards"]
    for axis in ("seed", "fault"):
        if (any(axis in r for r in baseline_rows)
                and any(axis in r for r in fresh_rows)):
            fields.append(axis)
    return tuple(fields)


def build_index(rows, key_fields, label):
    """{key: row}, failing loudly on duplicates instead of silently
    keeping the last one."""
    index = {}
    duplicates = []
    for row in rows:
        k = make_key(row, key_fields)
        if k in index:
            duplicates.append(k)
        index[k] = row
    if duplicates:
        print(f"FAIL: duplicate row keys in {label} "
              f"(key = {', '.join(key_fields)}):")
        for k in sorted(set(duplicates)):
            print(f"  {k}")
        print("  (a multi-seed or multi-fault sweep needs a schema v4 "
              "file so seed/fault can join the key)")
        return None
    return index


def print_counter_diff(k, base, new, counters):
    """One aligned row per counter so a mismatch reads as a table."""
    print(f"  counter diff for {k}:")
    print(f"    {'field':<12} {'baseline':>16} {'fresh':>16} {'delta':>12}")
    for field in counters:
        b, f = base.get(field), new.get(field)
        delta = "" if not (isinstance(b, (int, float)) and
                           isinstance(f, (int, float))) else f"{f - b:+}"
        marker = "" if b == f else "   <-- MISMATCH"
        print(f"    {field:<12} {b!r:>16} {f!r:>16} {delta:>12}{marker}")


def speedup_table(rows):
    """Prints the per-(solver, n, threads) sharded/unsharded seconds
    ratios from one sweep. Returns the exit code."""
    # Pair each sharded cell with the unsharded cell of the SAME
    # (instance, solver, seed, fault, threads) — the only axes timing may
    # legitimately vary on within one file.
    base = {}
    for row in rows:
        if row.get("failed", False) or row.get("seconds", 0) <= 0:
            continue
        pair = (row["instance"], row["solver"], row.get("seed"),
                row.get("fault", "none"), row["threads"])
        if row.get("shards", 1) == 1:
            base[pair] = row["seconds"]
    # (solver, n, threads, shards) -> list of per-pair ratios; instances
    # that share (solver, n) fold into one geomean line.
    cells = {}
    for row in rows:
        if row.get("failed", False) or row.get("seconds", 0) <= 0:
            continue
        if row.get("shards", 1) == 1:
            continue
        pair = (row["instance"], row["solver"], row.get("seed"),
                row.get("fault", "none"), row["threads"])
        if pair not in base:
            continue
        cell = (row["solver"], row["n"], row["threads"], row["shards"])
        cells.setdefault(cell, []).append(row["seconds"] / base[pair])
    if not cells:
        print("FAIL: no (sharded, unsharded) row pair in the sweep; "
              "run exp12 with --shards 1,K")
        return 2
    print(f"{'solver':<20} {'n':>8} {'threads':>7} {'shards':>6} "
          f"{'sharded/unsharded':>18}")
    per_k = {}
    for (solver, n, threads, shards), rs in sorted(cells.items()):
        ratio = math.exp(sum(math.log(r) for r in rs) / len(rs))
        per_k.setdefault(shards, []).append(ratio)
        print(f"{solver:<20} {n:>8} {threads:>7} {shards:>6} "
              f"{ratio:>17.3f}x")
    for shards, rs in sorted(per_k.items()):
        geo = math.exp(sum(math.log(r) for r in rs) / len(rs))
        print(f"geomean K={shards}: {geo:.3f}x "
              f"({'sharded faster' if geo < 1.0 else 'sharded slower'})")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh", nargs="?", default=None)
    parser.add_argument("--speedup", action="store_true",
                        help="read ONE sweep JSON (the first positional) "
                             "and print the sharded/unsharded seconds "
                             "ratio table instead of gating")
    parser.add_argument("--tolerance", "--threshold", type=float,
                        dest="tolerance", default=0.25,
                        help="allowed fractional per-row regression after "
                             "machine-speed normalization (default keeps "
                             "the 25%% gate; --threshold is a deprecated "
                             "alias)")
    parser.add_argument("--uniform-slack", type=float, default=2.0,
                        help="allowed uniform (machine-factor) slowdown")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline_rows = json.load(f)
    if args.speedup:
        if args.fresh is not None:
            print("usage: --speedup takes exactly one JSON file")
            return 2
        return speedup_table(baseline_rows)
    if args.fresh is None:
        print("usage: compare_bench.py BASELINE.json FRESH.json")
        return 2
    with open(args.fresh) as f:
        fresh_rows = json.load(f)

    key_fields = key_fields_for(baseline_rows, fresh_rows)
    print(f"row key: ({', '.join(key_fields)})")
    baseline = build_index(baseline_rows, key_fields, "baseline")
    fresh = build_index(fresh_rows, key_fields, "fresh run")
    if baseline is None or fresh is None:
        return 2

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print(f"FAIL: fresh run is missing baseline rows: {missing}")
        return 2
    fresh_only = sorted(set(fresh) - set(baseline))
    if fresh_only:
        print(f"note: {len(fresh_only)} fresh row(s) have no baseline "
              f"(unpinned, not compared): {fresh_only}")

    counters = ("n", "m", "rounds", "messages", "total_bits", "set_size",
                "weight")
    # Deterministic but schema-gated: compared exactly when both sides
    # carry the field (bridged_bytes from v3; the fault axis from v4;
    # hit_round_limit and the repair columns from v5), ignored across
    # schema versions.
    # `replans` (v6) joins them: plan adoptions are deterministic, so a
    # drift under identical flags is an engine change. `pinned` (also v6)
    # stays OUT on purpose — it is placement metadata, and comparing a
    # pinned fresh run against an unpinned baseline is a supported way to
    # check that pinning itself is perf-neutral on counters.
    optional_counters = ("bridged_bytes", "dropped", "duplicated",
                         "delayed", "killed", "failed", "hit_round_limit",
                         "repair_rounds", "repaired_nodes",
                         "post_repair_weight", "replans")
    # Schema v7 wall-clock breakdown: printed, never gated — timing is
    # noise across machines, and the per-row median gate already covers
    # end-to-end regressions.
    timing_columns = ("compute_seconds", "flip_seconds", "merge_seconds",
                      "retransmit_seconds")

    # One-line schema-drift notice: columns only one side carries are
    # skipped by the both-sides rule above — say so instead of silently
    # narrowing the comparison.
    baseline_cols = set().union(*(r.keys() for r in baseline_rows)) \
        if baseline_rows else set()
    fresh_cols = set().union(*(r.keys() for r in fresh_rows)) \
        if fresh_rows else set()
    only_fresh = sorted(fresh_cols - baseline_cols)
    only_baseline = sorted(baseline_cols - fresh_cols)
    if only_fresh:
        print(f"note: columns only in fresh (not compared): "
              f"{', '.join(only_fresh)}")
    if only_baseline:
        print(f"note: columns only in baseline (not compared): "
              f"{', '.join(only_baseline)}")

    failures = 0
    ratios = {}
    for k, base in sorted(baseline.items()):
        new = fresh[k]
        row_counters = counters + tuple(
            f for f in optional_counters if f in base and f in new)
        mismatched = [f for f in row_counters if base[f] != new[f]]
        if mismatched:
            print(f"FAIL {k}: counters changed (must match exactly): "
                  f"{', '.join(mismatched)}")
            print_counter_diff(k, base, new, row_counters)
            failures += len(mismatched)
        if not new.get("identical", False):
            print(f"FAIL {k}: determinism verdict is false")
            failures += 1
        if base.get("failed", False) and new.get("failed", False):
            continue  # no meaningful seconds on either side
        ratios[k] = (new["seconds"] / base["seconds"]
                     if base["seconds"] > 0 else 1.0)

    machine = math.exp(sum(math.log(max(r, 1e-12)) for r in ratios.values())
                       / len(ratios)) if ratios else 1.0
    print(f"machine factor (geomean seconds ratio): {machine:.3f}x")
    if machine > args.uniform_slack:
        print(f"FAIL: uniform slowdown {machine:.2f}x exceeds "
              f"--uniform-slack {args.uniform_slack:.2f}x")
        failures += 1

    for k, ratio in sorted(ratios.items()):
        normalized = ratio / machine
        verdict = "ok"
        if normalized > 1.0 + args.tolerance:
            verdict = f"REGRESSION (> +{args.tolerance:.0%} normalized)"
            failures += 1
        print(f"{k}: {baseline[k]['seconds']:.6f}s -> "
              f"{fresh[k]['seconds']:.6f}s "
              f"(raw {ratio - 1.0:+.1%}, normalized {normalized - 1.0:+.1%}) "
              f"{verdict}")

    # Informational v7 timing breakdown: one line per matched row and
    # column both sides carry. Never touches `failures`.
    timing_lines = []
    for k, base in sorted(baseline.items()):
        new = fresh[k]
        for col in timing_columns:
            b, f = base.get(col), new.get(col)
            if not (isinstance(b, (int, float)) and isinstance(f, (int, float))):
                continue
            timing_lines.append(
                f"  {str(k):<60} {col:<20} {b:>12.6f}s {f:>12.6f}s "
                f"{f - b:>+12.6f}s")
    if timing_lines:
        print("timing breakdown (informational, never gates):")
        print(f"  {'row':<60} {'column':<20} {'baseline':>13} "
              f"{'fresh':>13} {'delta':>13}")
        for line in timing_lines:
            print(line)

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all rows within threshold; counters exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
