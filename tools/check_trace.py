#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by trace::write_chrome_json.

Checks (stdlib only, so CI can run it anywhere):
  * the file parses and has a non-empty traceEvents array
  * every "X" (complete) event carries name/ts/dur/pid/tid with dur >= 0
  * spans nest properly per (pid, tid) track: sorted by (ts, -dur), each
    span either starts after the enclosing span ends or ends within it —
    partial overlap means the recorder's begin/end pairing is broken
  * every pid that owns an "X" event has a process_name metadata row

Exit status 0 on success (prints a one-line summary), 1 on any violation.

Usage: check_trace.py TRACE.json
"""
import json
import sys

# Clock reads straddle span boundaries, so a child's recorded end can
# exceed its parent's by the cost of the reads themselves; tolerate a
# few microseconds before calling the nesting broken.
NEST_EPSILON_US = 10.0


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = []
    named_pids = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            continue
        if ph != "X":
            fail(f"event {i}: unexpected ph {ph!r} (only X and M are emitted)")
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in ev:
                fail(f"event {i}: missing field {field!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"event {i}: empty name")
        if ev["dur"] < 0:
            fail(f"event {i}: negative dur {ev['dur']}")
        spans.append(ev)

    if not spans:
        fail("no X (complete) events")

    used_pids = {ev["pid"] for ev in spans}
    unnamed = used_pids - named_pids
    if unnamed:
        fail(f"pids without process_name metadata: {sorted(unnamed)}")

    # Per-track nesting: walk spans in start order with a stack of open
    # end-times. A span starting inside the enclosing one must also end
    # inside it (within epsilon).
    tracks = {}
    for ev in spans:
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    worst = 0.0
    for (pid, tid), track in tracks.items():
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # open span end-times
        for ev in track:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1] - NEST_EPSILON_US:
                stack.pop()
            if stack and end > stack[-1] + NEST_EPSILON_US:
                fail(
                    f"track pid={pid} tid={tid}: span {ev['name']!r} "
                    f"[{start}, {end}] overlaps the enclosing span ending "
                    f"at {stack[-1]} without nesting"
                )
            if stack:
                worst = max(worst, end - stack[-1])
            stack.append(end)

    names = sorted({ev["name"] for ev in spans})
    print(
        f"check_trace: OK: {len(spans)} spans on {len(tracks)} track(s) "
        f"across {len(used_pids)} process row(s); "
        f"span kinds: {', '.join(names[:12])}"
        + (" ..." if len(names) > 12 else "")
    )


if __name__ == "__main__":
    main()
